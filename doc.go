// Package jitsu is a from-scratch Go reproduction of "Jitsu:
// Just-In-Time Summoning of Unikernels" (Madhavapeddy et al., NSDI
// 2015): a Xen toolstack that launches unikernels in response to
// inbound traffic, masking boot latency with the Synjitsu connection
// proxy.
//
// # Activation layering
//
// The paper's insight is that any inbound signal can summon a
// unikernel. The code is layered accordingly:
//
//   - core.Activation is the single lifecycle state machine per board:
//     admission (does the image fit), claim-IP → launch/restore →
//     flush-waiters → reap. Every launch in the system goes through its
//     Fire(service, Summon) call, which returns a Decision
//     (serve / cold-start / no-memory / retired).
//   - core.Trigger is the pluggable frontend interface. The built-ins —
//     synchronous DNS (slow and zero-allocation fast path), delayed DNS
//     (the rejected §3.3.1 ablation), raw SYN, and the jitsud conduit
//     protocol — each resolve their own signal to a service, Fire the
//     machine, and render the Decision in their own wire format. The
//     cluster scheduler attaches as another Trigger on board 0, and
//     core.PrewarmTrigger summons services predictively, ahead of
//     recurring arrivals, with no packet at all. New workloads are a
//     Trigger implementation, not a fork of the lifecycle.
//   - internal/api is the typed control-plane surface (Register /
//     Activate / Checkpoint / Restore / Migrate / Transfer / Stop /
//     Stats with error codes). cmd/jitsud and the cluster's migration
//     path speak it; api.ForBoard adapts one board, Cluster.API a whole
//     cluster; Transfer is the federation leg that hands a service —
//     optionally with its checkpointed warm state — to another cluster.
//
// # Federation layering
//
// Above the cluster sits the cluster-of-clusters tier
// (cluster.NewFederation), shaped by the hierarchical-directory
// literature: per-cluster directories stay the authoritative leaves,
// and the root holds only summaries:
//
//	client ──DNS──> root directory        state: one Summary per cluster
//	                  │                    (bloom over names, load/memory
//	                  │ delegate            aggregates) — O(clusters)
//	                  v
//	            owning cluster's board-0 directory — authoritative,
//	            schedules the placement and answers; the root caches
//	            the delegation (and negatives) stamped with
//	            dns.Server.Epoch, invalidated wholesale on any
//	            member directory change
//
// Placement is hierarchical too: services home on the least-loaded
// cluster, a refused admission spills the service to a cluster with
// room, and sustained load skew across the gossiped per-cluster EWMAs
// sheds warm replicas between clusters (Checkpoint -> Transfer ->
// Restore, make-before-break) — rebalance is a detector, not an
// operator call.
//
// # Wire and congestion-control layering
//
// The control plane has a wire form. internal/wire sits ABOVE
// internal/api: it serializes every api.ControlPlane verb as versioned,
// length-prefixed binary frames with request ids and typed error codes
// — wire.ServeWith exposes any api backend on a simulated management
// endpoint behind a capability keyring (protocol v2 sessions present a
// token and are granted a verb scope: read-only, operator or admin;
// out-of-scope verbs answer api.CodeUnauthorized without killing the
// session; v1 peers negotiate down and fall under the server's
// anonymous-session policy), wire.DialSession implements
// api.ControlPlane over a dialled netstack connection, and the async
// verbs (Activate/Promote ready, Migrate done, WatchStats snapshots)
// come back as server-pushed event frames. A server carries any number
// of concurrent operator sessions, each with its own request-id space
// and watch registry. Anything that speaks api — a board, a cluster, a
// test fake — is remotable without change, and `jitsud -connect`
// drives a whole cluster through three concurrently connected scoped
// consoles.
//
// internal/cc sits BELOW the bulk movers: it is a pure window/RTO state
// machine (AIMD with delay-based backoff, no wire knowledge) that the
// cluster's migration pre-copy and the federation's Transfer leg
// consult per management uplink before each checkpoint chunk. Pacing
// bounds how much bulk may queue ahead of a control datagram on the
// shared FIFO links — the Stampede experiment measures exactly that —
// while netsim.WANProfile presets (wan20ms/wan50ms/wan100ms) shape the
// links those transfers share with gossip and delegation traffic.
//
// # Observability layering
//
// internal/obs is the deterministic observability plane, and it sits
// BELOW every subsystem it observes: core, dns, cluster and the
// federation all import obs; obs imports none of them (only the
// standard library). Timestamps come exclusively from the simulation's
// virtual clock — a *Tracer is handed to a board/cluster/federation at
// construction and bound to its engine — so two same-seed runs export
// byte-identical traces, and the determinism gate fingerprints the
// trace streams alongside the latency series. Instrumentation follows
// two rules: hot paths guard every trace call behind a nil check (a
// deployment without a tracer pays zero allocations — the bench gate
// holds the DNS fast path and the recorder itself at 0 allocs/op), and
// counters live in per-subsystem obs.Registry mirrors snapshot via
// api.StatsResponse.Registries / streamed via api.WatchStats rather
// than scattering ad-hoc getters.
//
// Boards and clusters are built with functional options (core.New,
// core.NewOnEngine, cluster.NewCluster, cluster.NewFederation); the
// positional constructors (core.NewBoard, core.NewBoardOnEngine,
// cluster.New) remain as thin deprecated shims, as does the
// single-func Activation().Trace hook superseded by the Subscribe
// fan-out.
//
// The implementation lives under internal/ (one package per subsystem —
// see DESIGN.md for the inventory); runnable entry points are in cmd/
// and examples/; bench_test.go regenerates every table and figure of
// the paper's evaluation.
package jitsu
