// Package jitsu is a from-scratch Go reproduction of "Jitsu:
// Just-In-Time Summoning of Unikernels" (Madhavapeddy et al., NSDI
// 2015): a Xen toolstack that launches unikernels in response to DNS
// traffic, masking boot latency with the Synjitsu connection proxy.
//
// The implementation lives under internal/ (one package per subsystem —
// see DESIGN.md for the inventory); runnable entry points are in cmd/
// and examples/; bench_test.go regenerates every table and figure of
// the paper's evaluation.
package jitsu
