package xenstore

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in    string
		want  []string
		valid bool
	}{
		{"/", nil, true},
		{"/local", []string{"local"}, true},
		{"/local/domain/3", []string{"local", "domain", "3"}, true},
		{"/local/domain/3/", []string{"local", "domain", "3"}, true},
		{"/conduit/http_server/listen/conn-1", []string{"conduit", "http_server", "listen", "conn-1"}, true},
		{"/a.b/c:d/e@f", []string{"a.b", "c:d", "e@f"}, true},
		{"", nil, false},
		{"relative/path", nil, false},
		{"//double", nil, false},
		{"/with space", nil, false},
		{"/with\x00nul", nil, false},
		{"/" + strings.Repeat("x", MaxPathLen), nil, false},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if c.valid && err != nil {
			t.Errorf("SplitPath(%q) unexpected error %v", c.in, err)
			continue
		}
		if !c.valid {
			if err == nil {
				t.Errorf("SplitPath(%q) should fail", c.in)
			}
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestJoinParentBasename(t *testing.T) {
	if got := JoinPath("local", "domain", "3"); got != "/local/domain/3" {
		t.Errorf("JoinPath = %q", got)
	}
	if got := JoinPath(); got != "/" {
		t.Errorf("JoinPath() = %q", got)
	}
	if got := ParentPath("/local/domain/3"); got != "/local/domain" {
		t.Errorf("ParentPath = %q", got)
	}
	if got := ParentPath("/local"); got != "/" {
		t.Errorf("ParentPath top = %q", got)
	}
	if got := Basename("/local/domain/3"); got != "3" {
		t.Errorf("Basename = %q", got)
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		w, p string
		want bool
	}{
		{"/", "/anything/at/all", true},
		{"/local", "/local", true},
		{"/local", "/local/domain", true},
		{"/local", "/localhost", false},
		{"/local/domain", "/local", false},
		{"/conduit/http", "/conduit/http_server", false},
	}
	for _, c := range cases {
		if got := IsPrefix(c.w, c.p); got != c.want {
			t.Errorf("IsPrefix(%q, %q) = %v, want %v", c.w, c.p, got, c.want)
		}
	}
}

// Property: SplitPath then JoinPath round-trips for valid canonical paths.
func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(seed []uint8) bool {
		// Construct a valid path from the seed.
		comps := []string{}
		for _, b := range seed {
			comps = append(comps, string('a'+rune(b%26)))
			if len(comps) == 8 {
				break
			}
		}
		if len(comps) == 0 {
			return true
		}
		p := JoinPath(comps...)
		parts, err := SplitPath(p)
		if err != nil {
			return false
		}
		return JoinPath(parts...) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IsPrefix(w, p) implies IsPrefix(parent(w), p).
func TestIsPrefixTransitiveToParent(t *testing.T) {
	w := "/a/b/c"
	p := "/a/b/c/d/e"
	if !IsPrefix(w, p) || !IsPrefix(ParentPath(w), p) {
		t.Fatal("prefix property violated")
	}
}
