package xenstore

import (
	"fmt"
	"sort"
)

// node is one entry in the store tree. Two generation counters let the
// reconcilers distinguish "this node's value changed" from "this node's
// set of children changed" — the distinction the Jitsu merge exploits.
type node struct {
	value    string
	children map[string]*node
	perms    Perms
	valueGen uint64 // store seq when value last written (or node created)
	childGen uint64 // store seq when children set last changed
}

func (n *node) clone() *node {
	c := &node{
		value:    n.value,
		perms:    n.perms.clone(),
		valueGen: n.valueGen,
		childGen: n.childGen,
	}
	if len(n.children) > 0 {
		c.children = make(map[string]*node, len(n.children))
		for name, ch := range n.children {
			c.children[name] = ch.clone()
		}
	}
	return c
}

func (n *node) child(name string) *node {
	if n.children == nil {
		return nil
	}
	return n.children[name]
}

func (n *node) setChild(name string, ch *node) {
	if n.children == nil {
		n.children = make(map[string]*node)
	}
	n.children[name] = ch
}

// Stats counts store activity; the Figure 3 driver uses it to verify the
// conflict behaviour that separates the three reconcilers.
type Stats struct {
	Ops       uint64 // individual operations performed (incl. inside transactions)
	Commits   uint64 // successful commits (incl. immediate operations)
	Conflicts uint64 // commits rejected with ErrAgain
	Watches   uint64 // watch events delivered
}

// WatchFn receives watch events: the modified path and the registration
// token. Callbacks run synchronously after the commit that triggered them.
type WatchFn func(path, token string)

// Watch is a registered watch; keep it to Unwatch later.
type Watch struct {
	dom   DomID
	path  string
	token string
	fn    WatchFn
	dead  bool
}

// Store is a XenStore instance. It is not safe for concurrent use by
// multiple goroutines; the simulation is single-threaded by design.
type Store struct {
	root     *node
	rec      Reconciler
	seq      uint64
	commits  uint64 // total mutating commits, for the C reconciler
	watches  []*Watch
	stats    Stats
	nextTxID uint64
	firing   bool
	pending  []string // watch events queued while already firing

	// NodeQuota caps nodes created by each unprivileged domain (Dom0 is
	// exempt); 0 disables the check. Matches xenstored's quota knob.
	NodeQuota int
	owned     map[DomID]int
}

// NewStore creates a store with the given reconciliation engine and the
// standard /local/domain and /conduit top-level directories.
func NewStore(rec Reconciler) *Store {
	s := &Store{
		root:  &node{perms: Perms{Owner: Dom0, Others: AccessRead}},
		rec:   rec,
		owned: make(map[DomID]int),
	}
	for _, p := range []string{"/tool", "/local", "/local/domain", "/conduit"} {
		if err := s.Mkdir(Dom0, nil, p); err != nil {
			panic(fmt.Sprintf("xenstore: init %s: %v", p, err))
		}
	}
	// Any VM may register a named endpoint under /conduit (§3.2.2).
	// RestrictCreate makes each registration owned by its creator, who
	// then opens read access for resolution.
	if err := s.SetPerms(Dom0, nil, "/conduit", Perms{Owner: Dom0, Others: AccessReadWrite, RestrictCreate: true}); err != nil {
		panic(fmt.Sprintf("xenstore: init /conduit perms: %v", err))
	}
	return s
}

// Reconciler returns the engine the store was built with.
func (s *Store) Reconciler() Reconciler { return s.rec }

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats { return s.stats }

// DomainPath returns the standard per-domain subtree root.
func DomainPath(dom DomID) string { return fmt.Sprintf("/local/domain/%d", dom) }

// lookup walks root for path components; returns nil if absent.
func lookup(root *node, parts []string) *node {
	n := root
	for _, p := range parts {
		n = n.child(p)
		if n == nil {
			return nil
		}
	}
	return n
}

// ---- Public operations ----
//
// Every operation takes the calling domain and an optional transaction.
// With tx == nil the operation applies immediately (and fires watches);
// inside a transaction it applies to the transaction's snapshot and
// becomes visible only on successful Commit.

// Read returns the value at path.
func (s *Store) Read(dom DomID, tx *Tx, path string) (string, error) {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return "", err
	}
	root, err := s.viewRoot(tx)
	if err != nil {
		return "", err
	}
	n := lookup(root, parts)
	if n == nil {
		tx.recordAbsent(path)
		return "", ErrNotFound
	}
	if !n.perms.CanRead(dom) {
		return "", ErrPerm
	}
	tx.recordValueRead(path, n)
	return n.value, nil
}

// Exists reports whether path names a node readable-or-not by anyone.
// It never returns ErrPerm: existence is not secret in XenStore.
func (s *Store) Exists(dom DomID, tx *Tx, path string) (bool, error) {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return false, err
	}
	root, err := s.viewRoot(tx)
	if err != nil {
		return false, err
	}
	n := lookup(root, parts)
	if n == nil {
		tx.recordAbsent(path)
		return false, nil
	}
	tx.recordValueRead(path, n)
	return true, nil
}

// List returns the sorted child names of a directory.
func (s *Store) List(dom DomID, tx *Tx, path string) ([]string, error) {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	root, err := s.viewRoot(tx)
	if err != nil {
		return nil, err
	}
	n := lookup(root, parts)
	if n == nil {
		tx.recordAbsent(path)
		return nil, ErrNotFound
	}
	if !n.perms.CanRead(dom) {
		return nil, ErrPerm
	}
	tx.recordList(path, n)
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Write sets the value at path, creating the node (and any missing
// intermediate directories) if necessary, as the real daemon does.
func (s *Store) Write(dom DomID, tx *Tx, path, value string) error {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrPerm // cannot write the root node
	}
	return s.mutate(tx, func(m *mutCtx) error {
		return m.write(dom, path, parts, value, false)
	})
}

// Mkdir creates a directory node (empty value) and missing parents.
// Creating an existing node is a no-op, as in XenStore.
func (s *Store) Mkdir(dom DomID, tx *Tx, path string) error {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return nil
	}
	return s.mutate(tx, func(m *mutCtx) error {
		return m.write(dom, path, parts, "", true)
	})
}

// Rm removes path and its whole subtree. Removing a missing node returns
// ErrNotFound; removing the root is forbidden.
func (s *Store) Rm(dom DomID, tx *Tx, path string) error {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrPerm
	}
	return s.mutate(tx, func(m *mutCtx) error {
		return m.rm(dom, path, parts)
	})
}

// GetPerms returns the node's permission descriptor.
func (s *Store) GetPerms(dom DomID, tx *Tx, path string) (Perms, error) {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return Perms{}, err
	}
	root, err := s.viewRoot(tx)
	if err != nil {
		return Perms{}, err
	}
	n := lookup(root, parts)
	if n == nil {
		tx.recordAbsent(path)
		return Perms{}, ErrNotFound
	}
	if !n.perms.CanRead(dom) {
		return Perms{}, ErrPerm
	}
	tx.recordValueRead(path, n)
	return n.perms.clone(), nil
}

// SetPerms replaces the node's permission descriptor. Only the node owner
// or Dom0 may do so.
func (s *Store) SetPerms(dom DomID, tx *Tx, path string, perms Perms) error {
	s.stats.Ops++
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	return s.mutate(tx, func(m *mutCtx) error {
		return m.setPerms(dom, path, parts, perms)
	})
}

// ---- mutation plumbing ----

// mutCtx is the context a mutating operation runs in: the tree it edits,
// the transaction recording dependencies (nil outside transactions) and
// the event list for watches (immediate ops only).
type mutCtx struct {
	s      *Store
	root   *node
	tx     *Tx
	gen    uint64 // generation stamped onto modified nodes
	events []string
}

// mutate runs fn against either the transaction snapshot or the live
// tree. Immediate mutations bump the store sequence and fire watches.
func (s *Store) mutate(tx *Tx, fn func(*mutCtx) error) error {
	if tx != nil {
		if tx.closed {
			return ErrTxClosed
		}
		m := &mutCtx{s: s, root: tx.root, tx: tx, gen: tx.startSeq}
		return fn(m)
	}
	m := &mutCtx{s: s, root: s.root, gen: s.seq + 1}
	if err := fn(m); err != nil {
		return err
	}
	s.seq++
	s.commits++
	s.stats.Commits++
	s.fire(m.events)
	return nil
}

// viewRoot picks the tree a read operates on.
func (s *Store) viewRoot(tx *Tx) (*node, error) {
	if tx == nil {
		return s.root, nil
	}
	if tx.closed {
		return nil, ErrTxClosed
	}
	return tx.root, nil
}

// write creates/updates parts under m.root. mkdir distinguishes Mkdir
// (no-op when the node exists) from Write (value update).
func (m *mutCtx) write(dom DomID, path string, parts []string, value string, mkdir bool) error {
	n := m.root
	cur := ""
	for i, p := range parts {
		cur += "/" + p
		ch := n.child(p)
		last := i == len(parts)-1
		if ch == nil {
			// Creating: need write access on the deepest existing parent.
			if !n.perms.CanWrite(dom) {
				return ErrPerm
			}
			childPerms := n.perms.clone()
			childPerms.RestrictCreate = false
			if n.perms.RestrictCreate {
				childPerms = restrictedChildPerms(n.perms.Owner, dom)
			}
			// Quota is charged to the node's resulting owner.
			if err := m.chargeQuota(childPerms.Owner); err != nil {
				return err
			}
			ch = &node{perms: childPerms, valueGen: m.gen, childGen: m.gen}
			n.setChild(p, ch)
			n.childGen = m.gen
			m.tx.recordCreate(cur, ParentPath(cur))
			m.noteEvent(cur)
		} else if last && !mkdir {
			if !ch.perms.CanWrite(dom) {
				return ErrPerm
			}
		}
		if last && !mkdir {
			ch.value = value
			ch.valueGen = m.gen
			m.tx.recordValueWrite(cur)
			m.noteEvent(cur)
		}
		n = ch
	}
	return nil
}

func (m *mutCtx) rm(dom DomID, path string, parts []string) error {
	parent := lookup(m.root, parts[:len(parts)-1])
	if parent == nil {
		m.tx.recordAbsent(path)
		return ErrNotFound
	}
	name := parts[len(parts)-1]
	n := parent.child(name)
	if n == nil {
		m.tx.recordAbsent(path)
		return ErrNotFound
	}
	if !n.perms.CanWrite(dom) {
		return ErrPerm
	}
	delete(parent.children, name)
	parent.childGen = m.gen
	m.tx.recordRemove(path, ParentPath(path))
	m.noteEvent(path)
	if m.tx == nil {
		m.s.releaseSubtree(n)
	}
	return nil
}

// chargeQuota accounts one node creation against owner's quota. Inside
// a transaction the charge is provisional (tx-local) and becomes real
// at replay; an aborted transaction never pays.
func (m *mutCtx) chargeQuota(owner DomID) error {
	s := m.s
	if owner == Dom0 {
		return nil
	}
	delta := 0
	if m.tx != nil {
		delta = m.tx.created[owner]
	}
	if s.NodeQuota > 0 && s.owned[owner]+delta >= s.NodeQuota {
		return ErrQuota
	}
	if m.tx != nil {
		if m.tx.created == nil {
			m.tx.created = make(map[DomID]int)
		}
		m.tx.created[owner]++
	} else {
		s.owned[owner]++
	}
	return nil
}

// releaseSubtree returns quota for every node in a removed subtree.
func (s *Store) releaseSubtree(n *node) {
	if n.perms.Owner != Dom0 {
		if c := s.owned[n.perms.Owner]; c > 0 {
			s.owned[n.perms.Owner] = c - 1
		}
	}
	for _, ch := range n.children {
		s.releaseSubtree(ch)
	}
}

// OwnedNodes reports how many nodes dom has created (diagnostics).
func (s *Store) OwnedNodes(dom DomID) int { return s.owned[dom] }

func (m *mutCtx) setPerms(dom DomID, path string, parts []string, perms Perms) error {
	n := lookup(m.root, parts)
	if n == nil {
		m.tx.recordAbsent(path)
		return ErrNotFound
	}
	if dom != Dom0 && dom != n.perms.Owner {
		return ErrPerm
	}
	n.perms = perms.clone()
	n.valueGen = m.gen
	m.tx.recordValueWrite(path)
	m.tx.recordSetPerms(path, perms)
	m.noteEvent(path)
	return nil
}

func (m *mutCtx) noteEvent(path string) {
	if m.tx == nil {
		m.events = append(m.events, path)
	}
}

// ---- watches ----

// Special watch paths: the toolstack watches these to learn of domain
// lifecycle events, as in the real protocol.
const (
	SpecialIntroduceDomain = "@introduceDomain"
	SpecialReleaseDomain   = "@releaseDomain"
)

// FireSpecial delivers a special event (domain introduced/released) to
// its watchers.
func (s *Store) FireSpecial(name string) {
	s.fire([]string{name})
}

// WatchPath registers fn for changes at or below path. Per the XenStore
// protocol, the watch fires once immediately upon registration so the
// watcher can never miss an update that raced with registration.
// The special paths @introduceDomain and @releaseDomain may be watched;
// they fire via FireSpecial.
func (s *Store) WatchPath(dom DomID, path, token string, fn WatchFn) (*Watch, error) {
	if path != SpecialIntroduceDomain && path != SpecialReleaseDomain {
		if _, err := SplitPath(path); err != nil {
			return nil, err
		}
	}
	w := &Watch{dom: dom, path: path, token: token, fn: fn}
	s.watches = append(s.watches, w)
	s.stats.Watches++
	fn(path, token)
	return w, nil
}

// Unwatch removes a previously registered watch.
func (s *Store) Unwatch(w *Watch) {
	if w == nil || w.dead {
		return
	}
	w.dead = true
	for i, x := range s.watches {
		if x == w {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			break
		}
	}
}

// fire delivers watch events for the given modified paths. Callbacks may
// mutate the store (conduit does); events generated while firing are
// queued and delivered afterwards to keep delivery ordered.
func (s *Store) fire(paths []string) {
	if len(paths) == 0 {
		return
	}
	if s.firing {
		s.pending = append(s.pending, paths...)
		return
	}
	s.firing = true
	queue := append([]string(nil), paths...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		// Copy: callbacks may register/unregister watches.
		ws := append([]*Watch(nil), s.watches...)
		for _, w := range ws {
			if !w.dead && IsPrefix(w.path, p) {
				s.stats.Watches++
				w.fn(p, w.token)
			}
		}
		if len(s.pending) > 0 {
			queue = append(queue, s.pending...)
			s.pending = nil
		}
	}
	s.firing = false
}
