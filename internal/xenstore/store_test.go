package xenstore

import (
	"errors"
	"fmt"
	"testing"
)

func newTestStore() *Store { return NewStore(OCamlReconciler{}) }

func TestBasicReadWrite(t *testing.T) {
	s := newTestStore()
	if err := s.Write(Dom0, nil, "/local/domain/3/name", "http_server"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(Dom0, nil, "/local/domain/3/name")
	if err != nil || got != "http_server" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	// Intermediate directories were created implicitly.
	if ok, _ := s.Exists(Dom0, nil, "/local/domain/3"); !ok {
		t.Fatal("intermediate dir not created")
	}
	// Overwrite.
	if err := s.Write(Dom0, nil, "/local/domain/3/name", "other"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Read(Dom0, nil, "/local/domain/3/name"); got != "other" {
		t.Fatalf("overwrite lost: %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	s := newTestStore()
	if _, err := s.Read(Dom0, nil, "/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Read(Dom0, nil, "bad path"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v, want ErrBadPath", err)
	}
}

func TestList(t *testing.T) {
	s := newTestStore()
	for _, n := range []string{"charlie", "alice", "bob"} {
		if err := s.Mkdir(Dom0, nil, "/tool/"+n); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List(Dom0, nil, "/tool")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alice", "bob", "charlie"}
	if len(names) != 3 {
		t.Fatalf("List = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v (not sorted?)", names)
		}
	}
	if _, err := s.List(Dom0, nil, "/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("List missing = %v", err)
	}
}

func TestRm(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/a/b/c", "v")
	if err := s.Rm(Dom0, nil, "/tool/a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists(Dom0, nil, "/tool/a/b/c"); ok {
		t.Fatal("subtree survived Rm")
	}
	if err := s.Rm(Dom0, nil, "/tool/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Rm = %v", err)
	}
	if err := s.Rm(Dom0, nil, "/"); !errors.Is(err, ErrPerm) {
		t.Fatalf("Rm / = %v", err)
	}
}

func TestMkdirIdempotent(t *testing.T) {
	s := newTestStore()
	if err := s.Mkdir(Dom0, nil, "/tool/x"); err != nil {
		t.Fatal(err)
	}
	s.Write(Dom0, nil, "/tool/x/y", "keep")
	if err := s.Mkdir(Dom0, nil, "/tool/x"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Read(Dom0, nil, "/tool/x/y"); got != "keep" {
		t.Fatal("Mkdir on existing dir destroyed children")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	s := newTestStore()
	// Dom0 sets up a private node for domain 3.
	s.Write(Dom0, nil, "/local/domain/3/private", "secret")
	s.SetPerms(Dom0, nil, "/local/domain/3/private", Perms{Owner: 3, Others: AccessNone})

	if _, err := s.Read(7, nil, "/local/domain/3/private"); !errors.Is(err, ErrPerm) {
		t.Fatalf("foreign read = %v, want ErrPerm", err)
	}
	if got, err := s.Read(3, nil, "/local/domain/3/private"); err != nil || got != "secret" {
		t.Fatalf("owner read = %q, %v", got, err)
	}
	if _, err := s.Read(Dom0, nil, "/local/domain/3/private"); err != nil {
		t.Fatalf("dom0 must bypass perms: %v", err)
	}
	if err := s.Write(7, nil, "/local/domain/3/private", "x"); !errors.Is(err, ErrPerm) {
		t.Fatalf("foreign write = %v, want ErrPerm", err)
	}
}

func TestPermEntriesAndOthers(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/shared", "v")
	s.SetPerms(Dom0, nil, "/tool/shared", Perms{
		Owner:   3,
		Others:  AccessRead,
		Entries: []PermEntry{{Dom: 7, Access: AccessReadWrite}, {Dom: 9, Access: AccessNone}},
	})
	if _, err := s.Read(5, nil, "/tool/shared"); err != nil {
		t.Fatalf("others read = %v", err)
	}
	if err := s.Write(5, nil, "/tool/shared", "x"); !errors.Is(err, ErrPerm) {
		t.Fatalf("others write = %v", err)
	}
	if err := s.Write(7, nil, "/tool/shared", "x"); err != nil {
		t.Fatalf("entry write = %v", err)
	}
	if _, err := s.Read(9, nil, "/tool/shared"); !errors.Is(err, ErrPerm) {
		t.Fatalf("AccessNone entry read = %v", err)
	}
}

func TestSetPermsOnlyOwner(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/n", "v")
	s.SetPerms(Dom0, nil, "/tool/n", Perms{Owner: 3, Others: AccessReadWrite})
	if err := s.SetPerms(7, nil, "/tool/n", Perms{Owner: 7}); !errors.Is(err, ErrPerm) {
		t.Fatalf("non-owner SetPerms = %v", err)
	}
	if err := s.SetPerms(3, nil, "/tool/n", Perms{Owner: 3, Others: AccessNone}); err != nil {
		t.Fatalf("owner SetPerms = %v", err)
	}
}

func TestChildInheritsPerms(t *testing.T) {
	s := newTestStore()
	s.Mkdir(Dom0, nil, "/tool/dir")
	s.SetPerms(Dom0, nil, "/tool/dir", Perms{Owner: 3, Others: AccessNone})
	// Domain 3 creates a child: it inherits the parent's perms.
	if err := s.Write(3, nil, "/tool/dir/child", "v"); err != nil {
		t.Fatal(err)
	}
	p, err := s.GetPerms(3, nil, "/tool/dir/child")
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != 3 || p.Others != AccessNone {
		t.Fatalf("child perms = %+v", p)
	}
	if _, err := s.Read(7, nil, "/tool/dir/child"); !errors.Is(err, ErrPerm) {
		t.Fatal("inherited perms not enforced")
	}
}

func TestRestrictCreate(t *testing.T) {
	// §3.2.3: the listen directory is writable by all, but keys created
	// in it are visible only to the directory owner and the creator.
	s := newTestStore()
	s.Mkdir(Dom0, nil, "/conduit/http_server/listen")
	s.SetPerms(Dom0, nil, "/conduit/http_server/listen", Perms{
		Owner: 3, Others: AccessWrite, RestrictCreate: true,
	})
	// Client domain 7 registers a connection request.
	if err := s.Write(7, nil, "/conduit/http_server/listen/conn1", "domid=7"); err != nil {
		t.Fatal(err)
	}
	// Creator reads it.
	if got, err := s.Read(7, nil, "/conduit/http_server/listen/conn1"); err != nil || got != "domid=7" {
		t.Fatalf("creator read = %q, %v", got, err)
	}
	// Directory owner (the server, dom 3) reads it.
	if got, err := s.Read(3, nil, "/conduit/http_server/listen/conn1"); err != nil || got != "domid=7" {
		t.Fatalf("dir owner read = %q, %v", got, err)
	}
	// A third domain cannot observe the connection.
	if _, err := s.Read(9, nil, "/conduit/http_server/listen/conn1"); !errors.Is(err, ErrPerm) {
		t.Fatalf("third-party read = %v, want ErrPerm", err)
	}
	// Nor interfere with it.
	if err := s.Write(9, nil, "/conduit/http_server/listen/conn1", "hijack"); !errors.Is(err, ErrPerm) {
		t.Fatalf("third-party write = %v, want ErrPerm", err)
	}
	// RestrictCreate does not propagate to the created key itself:
	// children of conn1 are plain private keys of the creator.
	if err := s.Write(7, nil, "/conduit/http_server/listen/conn1/port", "p1"); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPerms(7, nil, "/conduit/http_server/listen/conn1")
	if p.RestrictCreate {
		t.Fatal("RestrictCreate leaked onto created key")
	}
}

func TestWatchFiresOnRegistrationAndChange(t *testing.T) {
	s := newTestStore()
	var events []string
	w, err := s.WatchPath(Dom0, "/tool/svc", "tok", func(path, token string) {
		events = append(events, fmt.Sprintf("%s:%s", path, token))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Registration fires immediately with the watched path.
	if len(events) != 1 || events[0] != "/tool/svc:tok" {
		t.Fatalf("registration event = %v", events)
	}
	s.Write(Dom0, nil, "/tool/svc/state", "up")
	found := false
	for _, e := range events[1:] {
		if e == "/tool/svc/state:tok" {
			found = true
		}
	}
	if !found {
		t.Fatalf("change event missing: %v", events)
	}
	// Unrelated writes don't fire.
	n := len(events)
	s.Write(Dom0, nil, "/tool/other", "x")
	if len(events) != n {
		t.Fatalf("unrelated write fired watch: %v", events)
	}
	// Unwatch stops delivery.
	s.Unwatch(w)
	s.Write(Dom0, nil, "/tool/svc/state", "down")
	if len(events) != n {
		t.Fatal("unwatched watch fired")
	}
	s.Unwatch(w) // double unwatch is a no-op
}

func TestWatchFiresOnRm(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/svc/state", "up")
	var fired []string
	s.WatchPath(Dom0, "/tool/svc", "t", func(p, _ string) { fired = append(fired, p) })
	fired = nil
	s.Rm(Dom0, nil, "/tool/svc")
	if len(fired) != 1 || fired[0] != "/tool/svc" {
		t.Fatalf("rm events = %v", fired)
	}
}

func TestWatchNotFiredByAbortedTx(t *testing.T) {
	s := newTestStore()
	n := 0
	s.WatchPath(Dom0, "/tool", "t", func(p, _ string) { n++ })
	n = 0
	tx := s.Begin(Dom0)
	s.Write(Dom0, tx, "/tool/x", "v")
	if n != 0 {
		t.Fatal("tx write fired watch before commit")
	}
	tx.Abort()
	if n != 0 {
		t.Fatal("aborted tx fired watch")
	}
	tx2 := s.Begin(Dom0)
	s.Write(Dom0, tx2, "/tool/x", "v")
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("committed tx did not fire watch")
	}
}

func TestWatchReentrantMutation(t *testing.T) {
	// A watch callback that writes back into the store (the conduit
	// rendezvous does this) must not deadlock or lose events.
	s := newTestStore()
	replied := false
	s.WatchPath(Dom0, "/tool/req", "t", func(p, _ string) {
		if p == "/tool/req/in" && !replied {
			replied = true
			s.Write(Dom0, nil, "/tool/resp", "ack")
		}
	})
	got := ""
	s.WatchPath(Dom0, "/tool/resp", "t", func(p, _ string) {
		if p == "/tool/resp" {
			got, _ = s.Read(Dom0, nil, "/tool/resp")
		}
	})
	s.Write(Dom0, nil, "/tool/req/in", "hello")
	if got != "ack" {
		t.Fatalf("reentrant watch chain broken: %q", got)
	}
}

func TestTxSnapshotIsolation(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/k", "v0")
	tx := s.Begin(Dom0)
	// Outside the tx the value changes.
	s.Write(Dom0, nil, "/tool/k", "v1")
	// The tx still sees its snapshot.
	if got, _ := s.Read(Dom0, tx, "/tool/k"); got != "v0" {
		t.Fatalf("tx read = %q, want snapshot v0", got)
	}
	tx.Abort()
}

func TestTxWriteVisibility(t *testing.T) {
	s := newTestStore()
	tx := s.Begin(Dom0)
	s.Write(Dom0, tx, "/tool/k", "in-tx")
	// Invisible outside until commit.
	if ok, _ := s.Exists(Dom0, nil, "/tool/k"); ok {
		t.Fatal("tx write visible before commit")
	}
	// Visible inside.
	if got, _ := s.Read(Dom0, tx, "/tool/k"); got != "in-tx" {
		t.Fatal("tx write invisible inside tx")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Read(Dom0, nil, "/tool/k"); got != "in-tx" {
		t.Fatal("committed write lost")
	}
}

func TestTxUseAfterEnd(t *testing.T) {
	s := newTestStore()
	tx := s.Begin(Dom0)
	tx.Abort()
	if _, err := s.Read(Dom0, tx, "/tool"); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("read after abort = %v", err)
	}
	if err := s.Write(Dom0, tx, "/tool/x", "v"); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("write after abort = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("commit after abort = %v", err)
	}
}

func TestTxRmThenWrite(t *testing.T) {
	s := newTestStore()
	s.Write(Dom0, nil, "/tool/a/b", "old")
	tx := s.Begin(Dom0)
	if err := s.Rm(Dom0, tx, "/tool/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(Dom0, tx, "/tool/a/b", "new"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Read(Dom0, nil, "/tool/a/b"); got != "new" {
		t.Fatalf("rm-then-write = %q", got)
	}
}

func TestStatsCounting(t *testing.T) {
	s := newTestStore()
	before := s.Stats()
	s.Write(Dom0, nil, "/tool/x", "v")
	s.Read(Dom0, nil, "/tool/x")
	after := s.Stats()
	if after.Ops != before.Ops+2 {
		t.Fatalf("ops delta = %d", after.Ops-before.Ops)
	}
	if after.Commits != before.Commits+1 {
		t.Fatalf("commits delta = %d", after.Commits-before.Commits)
	}
}
