package xenstore

// DomID identifies a Xen domain. Domain 0 is the privileged control
// domain and bypasses all permission checks, exactly as in Xen.
type DomID int

// Dom0 is the privileged control domain.
const Dom0 DomID = 0

// Access is the permission a domain holds on a node.
type Access uint8

// Access levels, ordered so that higher values imply more rights for the
// comparisons in allows().
const (
	// AccessNone grants nothing.
	AccessNone Access = iota
	// AccessRead grants read and directory listing.
	AccessRead
	// AccessWrite grants write/create/remove but not read (XenStore's 'w').
	AccessWrite
	// AccessReadWrite grants everything.
	AccessReadWrite
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "r"
	case AccessWrite:
		return "w"
	case AccessReadWrite:
		return "b"
	default:
		return "n"
	}
}

func (a Access) canRead() bool  { return a == AccessRead || a == AccessReadWrite }
func (a Access) canWrite() bool { return a == AccessWrite || a == AccessReadWrite }

// PermEntry grants a specific domain a specific access level.
type PermEntry struct {
	Dom    DomID
	Access Access
}

// Perms is the access-control descriptor of a node. Owner always has full
// access; Others is the default for unlisted domains; Entries override
// Others per domain.
//
// RestrictCreate is the Jitsu extension from §3.2.3: on a directory with
// RestrictCreate set, any domain that can write may create new keys, but
// each new key is readable only by the directory owner and the key's
// creator — analogous to setgid+sticky bits on POSIX directories. This is
// what lets mutually distrusting VMs share the /conduit/<name>/listen
// queue without observing each other's connection attempts.
type Perms struct {
	Owner          DomID
	Others         Access
	Entries        []PermEntry
	RestrictCreate bool
}

// access resolves the effective access of dom on these perms.
func (p Perms) access(dom DomID) Access {
	if dom == Dom0 || dom == p.Owner {
		return AccessReadWrite
	}
	for _, e := range p.Entries {
		if e.Dom == dom {
			return e.Access
		}
	}
	return p.Others
}

// CanRead reports whether dom may read a node with these perms.
func (p Perms) CanRead(dom DomID) bool { return p.access(dom).canRead() }

// CanWrite reports whether dom may write a node with these perms.
func (p Perms) CanWrite(dom DomID) bool { return p.access(dom).canWrite() }

// clone returns a deep copy.
func (p Perms) clone() Perms {
	c := p
	if len(p.Entries) > 0 {
		c.Entries = append([]PermEntry(nil), p.Entries...)
	}
	return c
}

// restrictedChildPerms computes the perms a key created inside a
// RestrictCreate directory receives: owned by the creator, readable and
// writable by the directory owner, invisible to everyone else.
func restrictedChildPerms(dirOwner, creator DomID) Perms {
	return Perms{
		Owner:  creator,
		Others: AccessNone,
		Entries: []PermEntry{
			{Dom: dirOwner, Access: AccessReadWrite},
		},
	}
}
