package xenstore

import (
	"errors"
	"fmt"
	"testing"
)

func quotaStore(limit int) *Store {
	s := NewStore(JitsuReconciler{})
	s.NodeQuota = limit
	// A guest-writable area.
	s.Mkdir(Dom0, nil, "/tool/guest")
	s.SetPerms(Dom0, nil, "/tool/guest", Perms{Owner: 3, Others: AccessNone})
	return s
}

func TestQuotaBlocksCreation(t *testing.T) {
	s := quotaStore(5)
	var err error
	created := 0
	for i := 0; i < 10; i++ {
		err = s.Write(3, nil, fmt.Sprintf("/tool/guest/k%d", i), "v")
		if err != nil {
			break
		}
		created++
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	if created != 5 {
		t.Fatalf("created %d nodes before quota, want 5", created)
	}
	if s.OwnedNodes(3) != 5 {
		t.Fatalf("owned = %d", s.OwnedNodes(3))
	}
}

func TestQuotaDom0Exempt(t *testing.T) {
	s := quotaStore(2)
	for i := 0; i < 20; i++ {
		if err := s.Write(Dom0, nil, fmt.Sprintf("/tool/d%d", i), "v"); err != nil {
			t.Fatalf("dom0 hit quota: %v", err)
		}
	}
}

func TestQuotaReleasedOnRm(t *testing.T) {
	s := quotaStore(3)
	for i := 0; i < 3; i++ {
		if err := s.Write(3, nil, fmt.Sprintf("/tool/guest/k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Write(3, nil, "/tool/guest/k9", "v"); !errors.Is(err, ErrQuota) {
		t.Fatalf("expected quota, got %v", err)
	}
	if err := s.Rm(3, nil, "/tool/guest/k0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, nil, "/tool/guest/k9", "v"); err != nil {
		t.Fatalf("quota not released after rm: %v", err)
	}
}

func TestQuotaSubtreeRelease(t *testing.T) {
	s := quotaStore(10)
	// Build a little subtree of 5 nodes: a, a/b, a/b/c, a/d, a/e.
	for _, p := range []string{"/tool/guest/a/b/c", "/tool/guest/a/d", "/tool/guest/a/e"} {
		if err := s.Write(3, nil, p, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.OwnedNodes(3); got != 5 {
		t.Fatalf("owned = %d, want 5", got)
	}
	s.Rm(3, nil, "/tool/guest/a")
	if got := s.OwnedNodes(3); got != 0 {
		t.Fatalf("owned after subtree rm = %d", got)
	}
}

func TestQuotaInsideTransaction(t *testing.T) {
	s := quotaStore(4)
	tx := s.Begin(3)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = s.Write(3, tx, fmt.Sprintf("/tool/guest/k%d", i), "v")
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("tx quota err = %v", err)
	}
	tx.Abort()
	// An aborted transaction pays nothing.
	if got := s.OwnedNodes(3); got != 0 {
		t.Fatalf("owned after abort = %d", got)
	}
	// A committed one pays for what it created.
	tx2 := s.Begin(3)
	for i := 0; i < 3; i++ {
		if err := s.Write(3, tx2, fmt.Sprintf("/tool/guest/c%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.OwnedNodes(3); got != 3 {
		t.Fatalf("owned after commit = %d", got)
	}
}

func TestQuotaDisabledByDefault(t *testing.T) {
	s := NewStore(JitsuReconciler{})
	s.Mkdir(Dom0, nil, "/tool/guest")
	s.SetPerms(Dom0, nil, "/tool/guest", Perms{Owner: 3, Others: AccessNone})
	for i := 0; i < 100; i++ {
		if err := s.Write(3, nil, fmt.Sprintf("/tool/guest/k%d", i), "v"); err != nil {
			t.Fatalf("quota fired with NodeQuota=0: %v", err)
		}
	}
}

func TestSpecialWatches(t *testing.T) {
	s := NewStore(JitsuReconciler{})
	intro, release := 0, 0
	if _, err := s.WatchPath(Dom0, SpecialIntroduceDomain, "t", func(p, _ string) {
		if p == SpecialIntroduceDomain {
			intro++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchPath(Dom0, SpecialReleaseDomain, "t", func(p, _ string) {
		if p == SpecialReleaseDomain {
			release++
		}
	}); err != nil {
		t.Fatal(err)
	}
	intro, release = 0, 0 // discard registration fires
	s.FireSpecial(SpecialIntroduceDomain)
	s.FireSpecial(SpecialIntroduceDomain)
	s.FireSpecial(SpecialReleaseDomain)
	if intro != 2 || release != 1 {
		t.Fatalf("intro=%d release=%d", intro, release)
	}
	// Normal writes must not trigger special watches.
	s.Write(Dom0, nil, "/tool/x", "v")
	if intro != 2 || release != 1 {
		t.Fatal("normal write fired special watch")
	}
	// Invalid non-special paths are still rejected.
	if _, err := s.WatchPath(Dom0, "@bogus", "t", func(string, string) {}); err == nil {
		t.Fatal("bogus special accepted")
	}
}
