package xenstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// The reconciler tests drive the exact scenario of Figure 3: concurrent
// transactions performing domain-build-style writes, where the engines
// must disagree about what constitutes a conflict.

func TestCReconcilerAnyCommitConflicts(t *testing.T) {
	s := NewStore(CReconciler{})
	tx := s.Begin(Dom0)
	s.Write(Dom0, tx, "/local/domain/3/name", "a")
	// A completely unrelated immediate write lands while tx is open.
	s.Write(Dom0, nil, "/tool/unrelated", "x")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("C reconciler should conflict on any commit, got %v", err)
	}
	if s.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d", s.Stats().Conflicts)
	}
}

func TestCReconcilerNoConcurrencyCommits(t *testing.T) {
	s := NewStore(CReconciler{})
	tx := s.Begin(Dom0)
	s.Write(Dom0, tx, "/local/domain/3/name", "a")
	if err := tx.Commit(); err != nil {
		t.Fatalf("uncontended commit = %v", err)
	}
	if got, _ := s.Read(Dom0, nil, "/local/domain/3/name"); got != "a" {
		t.Fatal("commit lost")
	}
}

func TestOCamlDisjointTransactionsMerge(t *testing.T) {
	s := NewStore(OCamlReconciler{})
	s.Mkdir(Dom0, nil, "/local/domain/3")
	s.Mkdir(Dom0, nil, "/local/domain/7")
	txA := s.Begin(Dom0)
	txB := s.Begin(Dom0)
	// Each writes inside its own pre-existing subtree: fully disjoint.
	s.Write(Dom0, txA, "/local/domain/3/name", "a")
	s.Write(Dom0, txB, "/local/domain/7/name", "b")
	if err := txA.Commit(); err != nil {
		t.Fatalf("txA = %v", err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatalf("txB should merge (disjoint subtrees): %v", err)
	}
}

func TestOCamlSiblingCreationConflicts(t *testing.T) {
	// Both transactions create distinct children under a shared,
	// pre-existing directory. OCaml xenstored treats the parent's child
	// list as touched state: conflict.
	s := NewStore(OCamlReconciler{})
	s.Mkdir(Dom0, nil, "/local/domain/0/backend/vif")
	txA := s.Begin(Dom0)
	txB := s.Begin(Dom0)
	s.Write(Dom0, txA, "/local/domain/0/backend/vif/3", "cfgA")
	s.Write(Dom0, txB, "/local/domain/0/backend/vif/7", "cfgB")
	if err := txA.Commit(); err != nil {
		t.Fatalf("txA = %v", err)
	}
	if err := txB.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("txB should conflict under OCaml (shared parent), got %v", err)
	}
}

func TestJitsuSiblingCreationMerges(t *testing.T) {
	// The same scenario merges under the Jitsu reconciler: this is the
	// common-directory-root merge the paper adds.
	s := NewStore(JitsuReconciler{})
	s.Mkdir(Dom0, nil, "/local/domain/0/backend/vif")
	txA := s.Begin(Dom0)
	txB := s.Begin(Dom0)
	s.Write(Dom0, txA, "/local/domain/0/backend/vif/3", "cfgA")
	s.Write(Dom0, txB, "/local/domain/0/backend/vif/7", "cfgB")
	if err := txA.Commit(); err != nil {
		t.Fatalf("txA = %v", err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatalf("txB should merge under Jitsu, got %v", err)
	}
	// Both children exist.
	for _, p := range []string{"/local/domain/0/backend/vif/3", "/local/domain/0/backend/vif/7"} {
		if ok, _ := s.Exists(Dom0, nil, p); !ok {
			t.Fatalf("%s missing after merge", p)
		}
	}
}

func TestJitsuSameLeafWriteConflicts(t *testing.T) {
	s := NewStore(JitsuReconciler{})
	s.Write(Dom0, nil, "/tool/k", "v0")
	txA := s.Begin(Dom0)
	txB := s.Begin(Dom0)
	s.Write(Dom0, txA, "/tool/k", "a")
	s.Write(Dom0, txB, "/tool/k", "b")
	if err := txA.Commit(); err != nil {
		t.Fatalf("txA = %v", err)
	}
	if err := txB.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("write-write on same leaf must conflict even under Jitsu, got %v", err)
	}
}

func TestJitsuSameLeafCreateConflicts(t *testing.T) {
	s := NewStore(JitsuReconciler{})
	s.Mkdir(Dom0, nil, "/conduit/svc/listen")
	txA := s.Begin(Dom0)
	txB := s.Begin(Dom0)
	s.Write(Dom0, txA, "/conduit/svc/listen/conn1", "from=3")
	s.Write(Dom0, txB, "/conduit/svc/listen/conn1", "from=7")
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("same-key create race must conflict, got %v", err)
	}
}

func TestJitsuReadDependencyConflicts(t *testing.T) {
	// A transaction that read a value which changed concurrently must
	// retry, even under the most permissive reconciler.
	s := NewStore(JitsuReconciler{})
	s.Write(Dom0, nil, "/tool/state", "booting")
	tx := s.Begin(Dom0)
	v, _ := s.Read(Dom0, tx, "/tool/state")
	s.Write(Dom0, tx, "/tool/decision", "based-on-"+v)
	s.Write(Dom0, nil, "/tool/state", "ready") // concurrent change
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("stale read must conflict, got %v", err)
	}
}

func TestJitsuListedDirectoryConflicts(t *testing.T) {
	// Explicitly listing a directory is a read of its membership: a
	// concurrent membership change conflicts even under Jitsu.
	s := NewStore(JitsuReconciler{})
	s.Mkdir(Dom0, nil, "/conduit/svc/listen")
	tx := s.Begin(Dom0)
	if _, err := s.List(Dom0, tx, "/conduit/svc/listen"); err != nil {
		t.Fatal(err)
	}
	s.Write(Dom0, tx, "/tool/out", "v")
	s.Write(Dom0, nil, "/conduit/svc/listen/conn9", "x") // membership change
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("listed-directory change must conflict, got %v", err)
	}
}

func TestJitsuRemovedSubtreeConflict(t *testing.T) {
	s := NewStore(JitsuReconciler{})
	s.Write(Dom0, nil, "/tool/dying/k", "v")
	tx := s.Begin(Dom0)
	if err := s.Rm(Dom0, tx, "/tool/dying"); err != nil {
		t.Fatal(err)
	}
	// Concurrent write into the subtree being removed.
	s.Write(Dom0, nil, "/tool/dying/k2", "new")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("rm of concurrently-modified subtree = %v", err)
	}
}

func TestReadDeletedNodeConflicts(t *testing.T) {
	for _, rec := range []Reconciler{OCamlReconciler{}, JitsuReconciler{}} {
		s := NewStore(rec)
		s.Write(Dom0, nil, "/tool/k", "v")
		tx := s.Begin(Dom0)
		s.Read(Dom0, tx, "/tool/k")
		s.Write(Dom0, tx, "/tool/out", "x")
		s.Rm(Dom0, nil, "/tool/k")
		if err := tx.Commit(); !errors.Is(err, ErrAgain) {
			t.Errorf("%s: read-then-deleted should conflict, got %v", rec.Name(), err)
		}
	}
}

func TestAbsentReadThenCreatedConflicts(t *testing.T) {
	for _, rec := range []Reconciler{OCamlReconciler{}, JitsuReconciler{}} {
		s := NewStore(rec)
		tx := s.Begin(Dom0)
		if _, err := s.Read(Dom0, tx, "/tool/flag"); !errors.Is(err, ErrNotFound) {
			t.Fatal("setup")
		}
		s.Write(Dom0, tx, "/tool/out", "assumed-no-flag")
		s.Write(Dom0, nil, "/tool/flag", "appeared")
		if err := tx.Commit(); !errors.Is(err, ErrAgain) {
			t.Errorf("%s: absent-then-created should conflict, got %v", rec.Name(), err)
		}
	}
}

func TestReadOnlyTxAlwaysCommitsUnderMergers(t *testing.T) {
	for _, rec := range []Reconciler{OCamlReconciler{}, JitsuReconciler{}} {
		s := NewStore(rec)
		s.Write(Dom0, nil, "/tool/k", "v")
		tx := s.Begin(Dom0)
		s.Read(Dom0, tx, "/tool/k")
		// Unrelated concurrent write.
		s.Write(Dom0, nil, "/tool/other", "x")
		if err := tx.Commit(); err != nil {
			t.Errorf("%s: read-only tx with unrelated concurrency = %v", rec.Name(), err)
		}
	}
}

// domainBuildTx simulates the transactional flavour of one domain build:
// keys under the domain's own tree plus an entry in the shared dom0
// backend directory (the contention point).
func domainBuildTx(s *Store, dom DomID) error {
	tx := s.Begin(Dom0)
	base := DomainPath(dom)
	s.Write(Dom0, tx, base+"/name", fmt.Sprintf("vm%d", dom))
	s.Write(Dom0, tx, base+"/memory/target", "16384")
	s.Write(Dom0, tx, base+"/console/ring-ref", "1")
	s.Write(Dom0, tx, base+"/device/vif/0/state", "1")
	s.Write(Dom0, tx, fmt.Sprintf("/local/domain/0/backend/vif/%d/0/state", dom), "1")
	return tx.Commit()
}

func TestParallelDomainBuilds(t *testing.T) {
	// N interleaved domain-build transactions (all open before any
	// commits). Expected first-pass behaviour:
	//   C:      1 success, N-1 conflicts
	//   OCaml:  1 success, N-1 conflicts (shared backend dir)
	//   Jitsu:  N successes
	const n = 8
	cases := []struct {
		rec           Reconciler
		wantConflicts int
	}{
		{CReconciler{}, n - 1},
		{OCamlReconciler{}, n - 1},
		{JitsuReconciler{}, 0},
	}
	for _, c := range cases {
		s := NewStore(c.rec)
		s.Mkdir(Dom0, nil, "/local/domain/0/backend/vif")
		txs := make([]*Tx, n)
		for i := range txs {
			txs[i] = s.Begin(Dom0)
			dom := DomID(i + 1)
			base := DomainPath(dom)
			s.Write(Dom0, txs[i], base+"/name", fmt.Sprintf("vm%d", dom))
			s.Write(Dom0, txs[i], fmt.Sprintf("/local/domain/0/backend/vif/%d/0/state", dom), "1")
		}
		conflicts := 0
		for _, tx := range txs {
			if err := tx.Commit(); errors.Is(err, ErrAgain) {
				conflicts++
			} else if err != nil {
				t.Fatalf("%s: unexpected error %v", c.rec.Name(), err)
			}
		}
		if conflicts != c.wantConflicts {
			t.Errorf("%s: conflicts = %d, want %d", c.rec.Name(), conflicts, c.wantConflicts)
		}
	}
}

func TestRetryLoopEventuallySucceeds(t *testing.T) {
	// The toolstack retry loop (redo tx on EAGAIN) must converge for
	// every reconciler.
	for _, rec := range []Reconciler{CReconciler{}, OCamlReconciler{}, JitsuReconciler{}} {
		s := NewStore(rec)
		s.Mkdir(Dom0, nil, "/local/domain/0/backend/vif")
		pendingDoms := []DomID{1, 2, 3, 4, 5}
		retries := 0
		for len(pendingDoms) > 0 && retries < 1000 {
			next := pendingDoms[:0:0]
			for _, d := range pendingDoms {
				if err := domainBuildTx(s, d); errors.Is(err, ErrAgain) {
					next = append(next, d)
					retries++
				} else if err != nil {
					t.Fatalf("%s: %v", rec.Name(), err)
				}
			}
			pendingDoms = next
		}
		if len(pendingDoms) > 0 {
			t.Fatalf("%s: retry loop did not converge", rec.Name())
		}
		for _, d := range []DomID{1, 2, 3, 4, 5} {
			if ok, _ := s.Exists(Dom0, nil, DomainPath(d)+"/name"); !ok {
				t.Fatalf("%s: domain %d build lost", rec.Name(), d)
			}
		}
	}
}

// Property: for any interleaving of two transactions writing distinct
// leaf keys under distinct parents, Jitsu never conflicts.
func TestJitsuDisjointNeverConflictsProperty(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		s := NewStore(JitsuReconciler{})
		txA := s.Begin(Dom0)
		txB := s.Begin(Dom0)
		for _, k := range aKeys {
			s.Write(Dom0, txA, fmt.Sprintf("/local/domain/1/k%d", k), "a")
		}
		for _, k := range bKeys {
			s.Write(Dom0, txB, fmt.Sprintf("/local/domain/2/k%d", k), "b")
		}
		if err := txA.Commit(); err != nil {
			return false
		}
		return txB.Commit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: committed transactions are durable — every key written by a
// successful commit is readable afterwards with the committed value.
func TestCommitDurabilityProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		if len(keys) == 0 {
			return true
		}
		s := NewStore(OCamlReconciler{})
		tx := s.Begin(Dom0)
		want := map[string]string{}
		for i, k := range keys {
			v := "v"
			if i < len(vals) {
				v = fmt.Sprintf("v%d", vals[i])
			}
			p := fmt.Sprintf("/tool/k%d", k)
			s.Write(Dom0, tx, p, v)
			want[p] = v
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		for p, v := range want {
			got, err := s.Read(Dom0, nil, p)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
