package xenstore

// accessRecord accumulates what a transaction depended on at one path.
// The reconcilers interpret these flags differently — that is the whole
// difference between the three xenstored implementations of Figure 3.
type accessRecord struct {
	existed      bool // node existed in the snapshot at first access
	sawAbsent    bool // tx observed the path missing
	valueRead    bool // tx read the node's value (or perms)
	valueWritten bool // tx wrote the node's value (or perms)
	listed       bool // tx listed the node's children explicitly
	childTouched bool // tx created/removed a child of this node
	created      bool // tx created this node
	removed      bool // tx removed this node
}

// txOp is one replayable mutation, applied to the live tree at commit.
type txOp struct {
	kind  opKind
	path  string
	value string
	perms Perms
	dom   DomID
}

type opKind uint8

const (
	opWrite opKind = iota
	opMkdir
	opRm
	opSetPerms
)

// Tx is an open transaction: a full snapshot of the tree at Begin plus
// the dependency records and the operation log to replay at Commit.
type Tx struct {
	ID       uint64
	st       *Store
	dom      DomID
	root     *node
	startSeq uint64 // store seq at Begin: any node gen beyond this is concurrent
	startCom uint64 // store commit count at Begin (for the C reconciler)
	access   map[string]*accessRecord
	ops      []txOp
	closed   bool
	// created holds provisional per-owner quota charges for nodes this
	// transaction creates; they become real at replay.
	created map[DomID]int
}

// Begin opens a transaction for dom. The transaction sees a stable
// snapshot of the store; Commit applies it atomically or fails with
// ErrAgain.
func (s *Store) Begin(dom DomID) *Tx {
	s.nextTxID++
	return &Tx{
		ID:       s.nextTxID,
		st:       s,
		dom:      dom,
		root:     s.root.clone(),
		startSeq: s.seq,
		startCom: s.commits,
		access:   make(map[string]*accessRecord),
	}
}

// Dom returns the domain that opened the transaction.
func (t *Tx) Dom() DomID { return t.dom }

// Ops returns the number of mutations logged so far (cost accounting).
func (t *Tx) Ops() int { return len(t.ops) }

// Abort discards the transaction.
func (t *Tx) Abort() {
	t.closed = true
}

// Commit attempts to apply the transaction. On conflict it returns
// ErrAgain and the caller must redo the transaction from Begin, exactly
// like the EAGAIN loop in the real toolstack.
func (t *Tx) Commit() error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	s := t.st
	if err := s.rec.Check(s, t); err != nil {
		s.stats.Conflicts++
		return err
	}
	if len(t.ops) == 0 {
		return nil // read-only transactions always succeed once checked
	}
	s.seq++
	gen := s.seq
	var events []string
	for i := range t.ops {
		events = t.replay(&t.ops[i], gen, events)
	}
	s.commits++
	s.stats.Commits++
	s.fire(events)
	return nil
}

// replay applies one logged op to the live tree. Permission checks were
// done against the snapshot; replay is merge-tolerant: missing parents
// are recreated, missing rm targets are skipped.
func (t *Tx) replay(op *txOp, gen uint64, events []string) []string {
	s := t.st
	parts, err := SplitPath(op.path)
	if err != nil {
		return events
	}
	switch op.kind {
	case opWrite, opMkdir:
		n := s.root
		cur := ""
		for i, p := range parts {
			cur += "/" + p
			ch := n.child(p)
			if ch == nil {
				childPerms := n.perms.clone()
				childPerms.RestrictCreate = false
				if n.perms.RestrictCreate {
					childPerms = restrictedChildPerms(n.perms.Owner, op.dom)
				}
				ch = &node{perms: childPerms, valueGen: gen, childGen: gen}
				n.setChild(p, ch)
				n.childGen = gen
				events = append(events, cur)
				if ch.perms.Owner != Dom0 {
					s.owned[ch.perms.Owner]++
				}
			}
			if i == len(parts)-1 && op.kind == opWrite {
				ch.value = op.value
				ch.valueGen = gen
				events = append(events, cur)
			}
			n = ch
		}
	case opRm:
		parent := lookup(s.root, parts[:len(parts)-1])
		if parent == nil {
			return events
		}
		name := parts[len(parts)-1]
		victim := parent.child(name)
		if victim == nil {
			return events
		}
		delete(parent.children, name)
		parent.childGen = gen
		s.releaseSubtree(victim)
		events = append(events, op.path)
	case opSetPerms:
		n := lookup(s.root, parts)
		if n == nil {
			return events
		}
		n.perms = op.perms.clone()
		n.valueGen = gen
		events = append(events, op.path)
	}
	return events
}

// ---- dependency recording (all nil-receiver safe: immediate operations
// pass a nil *Tx and record nothing) ----

func (t *Tx) rec(path string) *accessRecord {
	r := t.access[path]
	if r == nil {
		r = &accessRecord{}
		t.access[path] = r
	}
	return r
}

func (t *Tx) recordValueRead(path string, n *node) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.existed = true
	r.valueRead = true
}

func (t *Tx) recordAbsent(path string) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.sawAbsent = true
}

func (t *Tx) recordList(path string, n *node) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.existed = true
	r.listed = true
}

func (t *Tx) recordValueWrite(path string) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.valueWritten = true
	r.existed = true // the snapshot holds the node by now
	t.logOp(txOp{kind: opWrite, path: path, dom: t.dom})
}

func (t *Tx) recordCreate(path, parent string) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.created = true
	pr := t.rec(parent)
	pr.childTouched = true
	t.logOp(txOp{kind: opMkdir, path: path, dom: t.dom})
}

func (t *Tx) recordRemove(path, parent string) {
	if t == nil {
		return
	}
	r := t.rec(path)
	r.removed = true
	pr := t.rec(parent)
	pr.childTouched = true
	t.logOp(txOp{kind: opRm, path: path, dom: t.dom})
}

func (t *Tx) recordSetPerms(path string, perms Perms) {
	if t == nil {
		return
	}
	t.logOp(txOp{kind: opSetPerms, path: path, perms: perms, dom: t.dom})
}

// logOp appends to the replay log, folding consecutive writes to the same
// path (the last value wins, matching snapshot semantics).
func (t *Tx) logOp(op txOp) {
	if op.kind == opWrite {
		// Fill the value from the snapshot: recordValueWrite is called
		// after the snapshot tree already holds the new value.
		if parts, err := SplitPath(op.path); err == nil {
			if n := lookup(t.root, parts); n != nil {
				op.value = n.value
			}
		}
		for i := len(t.ops) - 1; i >= 0; i-- {
			prev := &t.ops[i]
			if prev.path == op.path && prev.kind == opWrite {
				prev.value = op.value
				return
			}
			if prev.kind == opRm && IsPrefix(prev.path, op.path) {
				break // write after rm must be a fresh op
			}
		}
	}
	t.ops = append(t.ops, op)
}
