// Package xenstore implements the XenStore hierarchical, transactional
// key-value store shared between all VMs on a host (§3.1 of the paper).
//
// The store supports three transaction-reconciliation engines, matching
// the three xenstored implementations compared in Figure 3:
//
//   - CReconciler: the default C xenstored with filesystem-style
//     transactions — any concurrent commit aborts the transaction.
//   - OCamlReconciler: oxenstored's in-memory transactions with per-node
//     comparison — transactions conflict when they touch the same node,
//     including sibling creations under a shared directory.
//   - JitsuReconciler: the paper's fork — a custom merge function that
//     handles common directory roots, so transactions creating disjoint
//     children under the same parent merge instead of aborting.
//
// The package is pure logic (no simulated time); callers charge per-op
// costs on their own clocks.
package xenstore

import (
	"errors"
	"strings"
)

// Errors returned by store operations. They mirror the errno values the
// real wire protocol uses (ENOENT, EACCES, EAGAIN, EINVAL).
var (
	// ErrNotFound is returned when a path or its parent does not exist.
	ErrNotFound = errors.New("xenstore: no such node (ENOENT)")
	// ErrPerm is returned when the calling domain lacks access.
	ErrPerm = errors.New("xenstore: permission denied (EACCES)")
	// ErrAgain is returned by Commit when the transaction conflicts and
	// must be retried from scratch.
	ErrAgain = errors.New("xenstore: transaction conflict, retry (EAGAIN)")
	// ErrBadPath is returned for malformed paths.
	ErrBadPath = errors.New("xenstore: invalid path (EINVAL)")
	// ErrTxClosed is returned when using a committed or aborted transaction.
	ErrTxClosed = errors.New("xenstore: transaction already ended")
	// ErrQuota is returned when an unprivileged domain exceeds its node
	// quota (EQUOTA) — the resource-exhaustion guard multi-tenant hosts
	// need so one guest cannot fill the store.
	ErrQuota = errors.New("xenstore: domain over node quota (EQUOTA)")
)

// MaxPathLen mirrors XENSTORE_ABS_PATH_MAX from the Xen public headers.
const MaxPathLen = 3072

// SplitPath validates an absolute path and returns its components.
// "/" is the root and yields an empty slice.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' || len(path) > MaxPathLen {
		return nil, ErrBadPath
	}
	if path == "/" {
		return nil, nil
	}
	// Trailing slash is tolerated on directories, as in the C daemon.
	path = strings.TrimSuffix(path, "/")
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if !validComponent(p) {
			return nil, ErrBadPath
		}
	}
	return parts, nil
}

// JoinPath joins components into an absolute path.
func JoinPath(parts ...string) string {
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// ParentPath returns the parent of an absolute path ("/" for top-level
// nodes and for the root itself).
func ParentPath(path string) string {
	idx := strings.LastIndexByte(path, '/')
	if idx <= 0 {
		return "/"
	}
	return path[:idx]
}

// Basename returns the final component of an absolute path.
func Basename(path string) string {
	idx := strings.LastIndexByte(path, '/')
	return path[idx+1:]
}

// IsPrefix reports whether watch-path w covers path p in the XenStore
// sense: p equals w or is a descendant of w, component-wise.
func IsPrefix(w, p string) bool {
	if w == "/" {
		return true
	}
	if !strings.HasPrefix(p, w) {
		return false
	}
	return len(p) == len(w) || p[len(w)] == '/'
}

func validComponent(c string) bool {
	if c == "" || len(c) > 256 {
		return false
	}
	for i := 0; i < len(c); i++ {
		ch := c[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9':
		case ch == '-' || ch == '_' || ch == '@' || ch == ':' || ch == '.' || ch == '+':
		default:
			return false
		}
	}
	return true
}
