package xenstore

// Reconciler decides whether a transaction may commit against the
// store's current state. The three implementations reproduce the three
// xenstored variants of Figure 3.
type Reconciler interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Check returns nil to allow the commit or ErrAgain to force a retry.
	Check(s *Store, tx *Tx) error
}

// CReconciler models the default C xenstored with filesystem-based
// transactions: a transaction aborts if *any* other commit landed while
// it was open. This is what makes parallel VM starts collapse into a
// retry storm in Figure 3 — every successful domain-build commit aborts
// every other in-flight transaction.
type CReconciler struct{}

// Name implements Reconciler.
func (CReconciler) Name() string { return "C xenstored" }

// Check implements Reconciler.
func (CReconciler) Check(s *Store, tx *Tx) error {
	if s.commits != tx.startCom {
		return ErrAgain
	}
	return nil
}

// OCamlReconciler models oxenstored's in-memory transactions with merge
// functions [Gazagnaire & Hanquez 2009]: only the nodes a transaction
// actually touched are compared, so disjoint transactions merge. But a
// node's child-set counts as part of the node — two transactions creating
// different children under the same directory (every parallel domain
// build does, under /local/domain and the dom0 backend directories)
// still conflict.
type OCamlReconciler struct{}

// Name implements Reconciler.
func (OCamlReconciler) Name() string { return "OCaml xenstored" }

// Check implements Reconciler.
func (OCamlReconciler) Check(s *Store, tx *Tx) error {
	for path, r := range tx.access {
		parts, err := SplitPath(path)
		if err != nil {
			continue
		}
		n := lookup(s.root, parts)
		if err := checkExistence(n, r); err != nil {
			return err
		}
		if n == nil {
			continue
		}
		touched := r.valueRead || r.valueWritten || r.listed || r.childTouched ||
			r.created || r.removed
		if !touched {
			continue
		}
		// Any concurrent change to a touched node conflicts: value or
		// children alike.
		if n.valueGen > tx.startSeq || n.childGen > tx.startSeq {
			return ErrAgain
		}
	}
	return nil
}

// JitsuReconciler is the paper's custom merge: directory child-set
// changes under common roots merge silently. A conflict needs one of:
//
//   - a value this transaction read or wrote was changed concurrently;
//   - a directory this transaction explicitly listed changed membership;
//   - the same leaf was created or removed by both sides;
//   - a node this transaction removed was modified concurrently.
//
// Parallel domain builds touch shared directories only by creating
// disjoint children, so they all merge — the flat line in Figure 3.
type JitsuReconciler struct{}

// Name implements Reconciler.
func (JitsuReconciler) Name() string { return "Jitsu xenstored" }

// Check implements Reconciler.
func (JitsuReconciler) Check(s *Store, tx *Tx) error {
	for path, r := range tx.access {
		parts, err := SplitPath(path)
		if err != nil {
			continue
		}
		n := lookup(s.root, parts)
		// Creation merge: if the tx created this node, it conflicts only
		// when somebody else also created it concurrently.
		if r.created {
			if n != nil && (n.valueGen > tx.startSeq || n.childGen > tx.startSeq) {
				return ErrAgain
			}
			continue
		}
		if err := checkExistence(n, r); err != nil {
			return err
		}
		if n == nil {
			continue
		}
		if (r.valueRead || r.valueWritten) && n.valueGen > tx.startSeq {
			return ErrAgain
		}
		if r.listed && n.childGen > tx.startSeq {
			return ErrAgain
		}
		if r.removed && (n.valueGen > tx.startSeq || n.childGen > tx.startSeq) {
			return ErrAgain
		}
		// r.childTouched alone (created/removed a child) does NOT
		// conflict: this is the common-directory-root merge.
	}
	return nil
}

// checkExistence flags snapshot-vs-now existence flips for nodes the
// transaction depended on.
func checkExistence(n *node, r *accessRecord) error {
	switch {
	case r.created || r.removed:
		// Structural ops get their own rules in the callers.
		return nil
	case r.sawAbsent && !r.existed && n != nil:
		// Tx saw the path missing; it exists now.
		return ErrAgain
	case r.existed && n == nil:
		// Tx depended on the node; it is gone now.
		return ErrAgain
	}
	return nil
}
