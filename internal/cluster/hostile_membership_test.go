package cluster

import (
	"testing"
	"time"

	"jitsu/internal/netsim"
)

// ---- membership under hostile management networks ----

// probedConfig is the common failure-detector tuning for these tests.
func probedConfig(boards int) Config {
	cfg := DefaultConfig()
	cfg.Boards = boards
	cfg.ProbeEvery = 500 * time.Millisecond
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.SuspectTimeout = 3 * time.Second
	return cfg
}

func TestAsymmetricFailureDeafBoardConfirmed(t *testing.T) {
	// One-way failure, deaf side: board 1 can still transmit but hears
	// nothing (its bridge->NIC direction is cut). It cannot ack probes —
	// direct or relayed — and it never hears the suspicion rumor, so it
	// cannot refute. The detector must confirm it dead: a member that
	// cannot receive is genuinely unusable, indirection or not.
	c := build(probedConfig(3))
	m := c.members[1]

	c.RunUntil(1 * time.Second)
	c.MgmtLink(1).PartitionBtoA()
	c.RunUntil(15 * time.Second)
	if m.State != MemberDead {
		t.Fatalf("deaf board state = %v, want dead", m.State)
	}
	if c.Confirms != 1 {
		t.Fatalf("confirms = %d, want 1", c.Confirms)
	}
	c.StopMembership()
	c.RunAll()
}

func TestAsymmetricFailureMuteBoardConfirmed(t *testing.T) {
	// One-way failure, mute side: board 1 hears everything but its
	// transmissions are lost (NIC->bridge cut). Probes reach it, acks
	// vanish; it hears the suspicion and refutes — but the refutation
	// cannot leave the board. Suspect must stand and confirm.
	c := build(probedConfig(3))
	m := c.members[1]

	c.RunUntil(1 * time.Second)
	c.MgmtLink(1).PartitionAtoB()
	c.RunUntil(15 * time.Second)
	if m.State != MemberDead {
		t.Fatalf("mute board state = %v, want dead", m.State)
	}
	// The board did try to refute (it heard the rumor) — the refutation
	// just never escaped its cut uplink.
	if c.Refutes == 0 {
		t.Fatal("mute board never heard the suspicion it should refute")
	}
	if c.Confirms != 1 {
		t.Fatalf("confirms = %d, want 1", c.Confirms)
	}
	c.StopMembership()
	c.RunAll()
}

func TestIndirectProbesAvertFalseConfirms(t *testing.T) {
	// A lossy (not dead) probe path: board 0's uplink drops half of
	// everything. Direct probes from board 0 often lose the ping or the
	// ack and would turn peers suspect; the ping-req round gives each
	// detection another independent path through a relay. The ablation
	// (IndirectProbes=0) must show strictly more suspicion flaps, and
	// the hardened run must avert at least some of them via indirect
	// acks. Both runs are fully seeded and deterministic.
	run := func(indirect int) *Cluster {
		cfg := probedConfig(4)
		cfg.IndirectProbes = indirect
		c := build(cfg)
		c.RunUntil(500 * time.Millisecond) // settle before the weather turns
		c.MgmtLink(0).Impair(netsim.Impairment{Loss: 0.5}, 77)
		c.RunUntil(60 * time.Second)
		c.StopMembership()
		c.RunAll()
		return c
	}
	hardened := run(2)
	ablation := run(0)

	if hardened.PingReqs == 0 || hardened.IndirectAcks == 0 {
		t.Fatalf("indirection never engaged: pingreqs=%d indirect_acks=%d",
			hardened.PingReqs, hardened.IndirectAcks)
	}
	if ablation.PingReqs != 0 {
		t.Fatalf("ablation sent %d ping-reqs", ablation.PingReqs)
	}
	if hardened.Suspects >= ablation.Suspects {
		t.Fatalf("suspects: hardened %d >= ablation %d — ping-req did not help",
			hardened.Suspects, ablation.Suspects)
	}
	if hardened.Confirms > ablation.Confirms {
		t.Fatalf("confirms: hardened %d > ablation %d", hardened.Confirms, ablation.Confirms)
	}
}
