// Package cluster is the control plane above core.Board: a single
// cluster-wide directory and authoritative DNS that *places* unikernels
// across N boards instead of making clients walk the NS set on
// SERVFAIL (§3.3.2's "conventional failover"). One query is answered by
// the board the scheduler picks; warm pools keep hot services
// pre-booted so they skip the cold-start path entirely.
//
// Membership is dynamic: boards join and leave at runtime through a
// SWIM-style gossip layer (membership.go), and warm replicas *move*
// between boards by live migration (migrate.go) instead of being
// preempted and cold-booted.
package cluster

import (
	"fmt"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/cc"
	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/power"
	"jitsu/internal/sim"
)

// Config sizes the cluster and tunes its control loops.
type Config struct {
	// Boards is the number of core.Boards fronted by the directory at
	// construction; more may join (AddBoard) and boards may leave later.
	Boards int
	// Board configures each member board (DelayDNSUntilReady is forced
	// off: the cluster answers synchronously like stock Jitsu).
	Board core.BoardConfig
	// DefaultPolicy places services that don't pick their own
	// (nil = LeastLoaded).
	DefaultPolicy Policy
	// RateAlpha is the EWMA weight for arrival-rate estimation (0..1].
	RateAlpha float64
	// WarmFactor scales rate×boot-time into a warm-pool target.
	WarmFactor float64
	// MaxWarmPerService caps any one service's pool (0 = one per board).
	MaxWarmPerService int
	// MinRate is the arrivals/sec below which a pool drains to MinWarm.
	MinRate float64
	// PreemptMargin gates rate-based preemption: a full cluster evicts
	// the coldest ready replica only for a service at least this many
	// times hotter (≤1 disables preemption; default 2 resists flapping
	// between similar services).
	PreemptMargin float64
	// BootEstimate is the expected cold-boot latency used to size pools.
	BootEstimate sim.Duration
	// PowerModel supplies per-board power models for PowerAware
	// placement (nil = Cubieboard2 everywhere).
	PowerModel func(board int) *power.Board

	// ProbeEvery is the gossip failure-detector period. 0 (the default)
	// keeps the detector passive — joins and graceful leaves still
	// disseminate, but no periodic probing keeps the event queue alive,
	// so Engine.Run drains as before. Churn runs turn it on and drive
	// the engine with RunUntil.
	ProbeEvery sim.Duration
	// ProbeTimeout is how long a probe waits for its ack before the
	// target turns suspect.
	ProbeTimeout sim.Duration
	// SuspectTimeout is how long a suspicion may stand unrefuted before
	// the member is confirmed dead.
	SuspectTimeout sim.Duration
	// IndirectProbes is the SWIM ping-req fan-out: when a direct probe
	// times out, this many other members are asked to probe the target
	// before it turns suspect. 0 disables indirection — a single lossy
	// link then produces false suspicions (and, unrefuted, false
	// confirms).
	IndirectProbes int
	// MigrateOnLeave moves warm replicas off a gracefully leaving board
	// (checkpoint + restore) instead of stopping them (the
	// preempt-and-reboot baseline the Churn experiment compares against).
	MigrateOnLeave bool
	// MigrateBitsPerSec is the checkpoint-copy rate across the
	// management link (default 1 Gb/s).
	MigrateBitsPerSec float64
	// MigrateChunkMiB sizes the pre-copy chunks; each chunk is one
	// acknowledged datagram exchange on the management network
	// (default 8 MiB).
	MigrateChunkMiB int
	// MigrateChunkRTO is the per-chunk retransmit timeout, doubled per
	// retry (default 50ms); MigrateChunkRetries bounds retransmissions
	// of one chunk before the whole transfer is abandoned (default 5).
	MigrateChunkRTO     sim.Duration
	MigrateChunkRetries int
	// MigrateRetryDelay and MigrateMaxAttempts govern the mandatory-
	// evacuation reschedule: a transfer that died (management-link
	// partition mid-copy) is retried after the delay, up to the attempt
	// bound, before the replica is finally written off (defaults 1s, 3).
	MigrateRetryDelay  sim.Duration
	MigrateMaxAttempts int
	// MgmtBitsPerSec is the management network's link rate, used by the
	// gossip substrate (default 1 Gb/s).
	MgmtBitsPerSec float64
	// UnpacedTransfers disables the per-uplink congestion controller:
	// checkpoint copies blast every chunk immediately with the fixed
	// doubling MigrateChunkRTO, the pre-controller behaviour kept as the
	// Stampede experiment's ablation arm.
	UnpacedTransfers bool

	// Tracer, when set, is shared by every board and control loop of the
	// cluster: gossip, migration and scheduling events land in it next
	// to each board's activation spans. Nil disables tracing.
	Tracer *obs.Tracer
	// TraceTIDBase offsets the tracer lanes: board i renders on lane
	// TraceTIDBase+i. A federation gives each member cluster its own
	// hundred-lane block.
	TraceTIDBase int
}

// DefaultConfig is a 4-board Cubieboard2 cluster with least-loaded
// placement, EWMA-sized warm pools, and live migration on graceful
// leave. The failure detector is passive until ProbeEvery is set.
func DefaultConfig() Config {
	return Config{
		Boards:            4,
		Board:             core.DefaultConfig(),
		RateAlpha:         0.1,
		WarmFactor:        1.0,
		MinRate:           0.02,
		PreemptMargin:     2.0,
		BootEstimate:      350 * time.Millisecond,
		ProbeTimeout:      200 * time.Millisecond,
		SuspectTimeout:    2 * time.Second,
		IndirectProbes:    2,
		MigrateOnLeave:    true,
		MigrateBitsPerSec: 1e9,
		MgmtBitsPerSec:    1e9,

		MigrateChunkMiB:     8,
		MigrateChunkRTO:     50 * time.Millisecond,
		MigrateChunkRetries: 5,
		MigrateRetryDelay:   1 * time.Second,
		MigrateMaxAttempts:  3,
	}
}

// Cluster fronts its boards with one directory, one scheduler and one
// warm-pool manager. Board 0 additionally hosts the cluster's
// authoritative DNS endpoint and the authoritative membership view; the
// other boards never see client queries, only placed traffic.
type Cluster struct {
	Cfg Config
	// Boards holds every board ever part of the cluster, indexed by its
	// stable id; departed boards stay in the slice (marked dead/left in
	// members) so ids, replica slots and client attachments never shift.
	Boards []*core.Board
	// Models holds each board's power model (for PowerAware).
	Models []*power.Board
	// Pools is the warm-pool manager.
	Pools *PoolManager

	eng     *sim.Engine
	dir     *Directory
	members []*Member
	// apis holds each board's typed control plane (api.ForBoard); the
	// management paths — migration above all — speak it instead of
	// reaching into the board's Jitsu directly.
	apis []api.ControlPlane
	// mgmt is the management network the gossip agents (and checkpoint
	// copies) ride on.
	mgmt    *netsim.Bridge
	clients []*Client
	// onDirChange (set by the federation agent) observes every service
	// registration and unregistration, so the cluster's summary row at
	// the federation root can follow the directory.
	onDirChange func()
	// movedTo records services this cluster handed to another cluster
	// (federation spill or skew shed): resolution redirects there.
	movedTo map[string]int
	// xferSenders tracks in-flight checkpoint transfers by id (xfer.go).
	xferSenders map[uint32]*xferSend
	nextXferID  uint32
	// ccs holds each board's management-uplink congestion controller,
	// indexed by board id, built on first transfer (nil entries until
	// then; unused entirely when Cfg.UnpacedTransfers).
	ccs []*cc.Controller

	// WarmHits counts queries answered by an already-ready replica.
	WarmHits uint64
	// Placed counts queries that scheduled a boot (cold or in-flight).
	Placed uint64
	// ServFails counts queries refused cluster-wide (no board fits).
	ServFails uint64
	// Preempts counts cold replicas evicted to make room for hot ones.
	Preempts uint64
	// Migrations counts warm replicas moved live between boards.
	Migrations uint64
	// Lost counts live replicas destroyed by departures (not migrated).
	Lost uint64
	// Demotions counts preemption victims parked on their board's disk
	// tier instead of evicted (warm-pool demotions are counted by the
	// pool manager).
	Demotions uint64
	// Chunks counts checkpoint chunk datagrams sent (including
	// retransmits); ChunkRetx counts just the retransmits; XferAborts
	// counts transfers abandoned after a chunk exhausted its retries.
	Chunks     uint64
	ChunkRetx  uint64
	XferAborts uint64
	// Parks counts checkpoints rescued from a dead migration onto a
	// surviving board's disk tier instead of dying with the replica.
	Parks uint64
	// Joins counts boards the directory admitted after construction;
	// Leaves counts graceful departures; Confirms counts members the
	// failure detector confirmed dead.
	Joins    uint64
	Leaves   uint64
	Confirms uint64

	// Reg is the cluster-level metric registry: control-plane counters
	// and gossip accounting, mirrored at snapshot time. Per-board
	// metrics stay in each Board.Reg.
	Reg *obs.Registry
	// Probes/Suspects/Refutes count gossip failure-detector traffic:
	// pings sent, members turned suspect in the local view, and
	// self-refutations (a live member clearing its own suspicion).
	Probes   uint64
	Suspects uint64
	Refutes  uint64
	// PingReqs counts indirect probe requests fanned out after a direct
	// probe timeout; IndirectAcks counts suspicions averted because a
	// relay's probe got through when the direct path did not.
	PingReqs     uint64
	IndirectAcks uint64
}

// tracer returns the cluster's shared flight recorder (nil when off).
func (c *Cluster) tracer() *obs.Tracer { return c.Cfg.Tracer }

// tidFor is the tracer lane for one board's events.
func (c *Cluster) tidFor(board int) int { return c.Cfg.TraceTIDBase + board }

// build wires the cluster on its own engine.
func build(cfg Config) *Cluster {
	return buildOn(sim.New(cfg.Board.Seed), cfg)
}

// buildOn wires the cluster: n boards on the given engine, the gossip
// membership substrate, the directory, and the DNS trigger on board 0
// that routes every cluster service through the scheduler. A federation
// passes one shared engine so its member clusters advance through one
// coherent virtual time.
func buildOn(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Boards <= 0 {
		cfg.Boards = 1
	}
	if cfg.DefaultPolicy == nil {
		cfg.DefaultPolicy = LeastLoaded{}
	}
	if cfg.RateAlpha <= 0 || cfg.RateAlpha > 1 {
		cfg.RateAlpha = 0.1
	}
	if cfg.WarmFactor <= 0 {
		cfg.WarmFactor = 1.0
	}
	if cfg.BootEstimate <= 0 {
		cfg.BootEstimate = 350 * time.Millisecond
	}
	if cfg.MaxWarmPerService <= 0 {
		cfg.MaxWarmPerService = cfg.Boards
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 200 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 2 * time.Second
	}
	if cfg.IndirectProbes < 0 {
		cfg.IndirectProbes = 0
	}
	if cfg.MigrateBitsPerSec <= 0 {
		cfg.MigrateBitsPerSec = 1e9
	}
	if cfg.MigrateChunkMiB <= 0 {
		cfg.MigrateChunkMiB = 8
	}
	if cfg.MigrateChunkRTO <= 0 {
		cfg.MigrateChunkRTO = 50 * time.Millisecond
	}
	if cfg.MigrateChunkRetries <= 0 {
		cfg.MigrateChunkRetries = 5
	}
	if cfg.MigrateRetryDelay <= 0 {
		cfg.MigrateRetryDelay = 1 * time.Second
	}
	if cfg.MigrateMaxAttempts <= 0 {
		cfg.MigrateMaxAttempts = 3
	}
	if cfg.MgmtBitsPerSec <= 0 {
		cfg.MgmtBitsPerSec = 1e9
	}
	cfg.Board.DelayDNSUntilReady = false

	c := &Cluster{Cfg: cfg, dir: newDirectory(), movedTo: make(map[string]int),
		xferSenders: make(map[uint32]*xferSend)}
	c.eng = eng
	c.mgmt = netsim.NewBridge(c.eng, "mgmt", 10*time.Microsecond)
	for i := 0; i < cfg.Boards; i++ {
		c.newMember()
	}
	// Construction-time members know each other without a join round.
	for _, m := range c.members {
		m.State = MemberAlive
		m.agent.bootstrap(c.members)
		m.agent.startProbing()
	}
	c.Pools = newPoolManager(c)

	// The scheduler is just another activation frontend: a core.Trigger
	// on board 0 whose firings drive the same Activation machines the
	// per-board DNS/SYN/conduit triggers do.
	if err := c.front().AddTrigger(&clusterTrigger{c: c}); err != nil {
		panic(fmt.Sprintf("cluster: attach scheduler trigger: %v", err))
	}

	c.Reg = obs.NewRegistry("cluster")
	c.Reg.CounterFunc("sched.warm_hits", func() uint64 { return c.WarmHits })
	c.Reg.CounterFunc("sched.placed", func() uint64 { return c.Placed })
	c.Reg.CounterFunc("sched.servfails", func() uint64 { return c.ServFails })
	c.Reg.CounterFunc("sched.preempts", func() uint64 { return c.Preempts })
	c.Reg.CounterFunc("sched.demotions", func() uint64 { return c.Demotions + c.Pools.Demotions })
	c.Reg.CounterFunc("migrate.migrations", func() uint64 { return c.Migrations })
	c.Reg.CounterFunc("migrate.lost", func() uint64 { return c.Lost })
	c.Reg.CounterFunc("migrate.chunks", func() uint64 { return c.Chunks })
	c.Reg.CounterFunc("migrate.chunk_retx", func() uint64 { return c.ChunkRetx })
	c.Reg.CounterFunc("migrate.xfer_aborts", func() uint64 { return c.XferAborts })
	c.Reg.CounterFunc("migrate.parks", func() uint64 { return c.Parks })
	c.Reg.CounterFunc("gossip.joins", func() uint64 { return c.Joins })
	c.Reg.CounterFunc("gossip.leaves", func() uint64 { return c.Leaves })
	c.Reg.CounterFunc("gossip.confirms", func() uint64 { return c.Confirms })
	c.Reg.CounterFunc("gossip.probes", func() uint64 { return c.Probes })
	c.Reg.CounterFunc("gossip.suspects", func() uint64 { return c.Suspects })
	c.Reg.CounterFunc("gossip.refutes", func() uint64 { return c.Refutes })
	c.Reg.CounterFunc("gossip.pingreqs", func() uint64 { return c.PingReqs })
	c.Reg.CounterFunc("gossip.indirect_acks", func() uint64 { return c.IndirectAcks })
	c.Reg.GaugeFunc("members.alive", func() int64 {
		var n int64
		for _, m := range c.members {
			if m.State == MemberAlive {
				n++
			}
		}
		return n
	})
	return c
}

// newMember creates one board plus its gossip agent and registers both
// under the next stable id. State starts Joining; New flips the initial
// set to Alive directly, AddBoard waits for the join to reach board 0.
func (c *Cluster) newMember() *Member {
	id := len(c.Boards)
	b := core.NewOnEngine(c.eng, core.WithConfig(c.Cfg.Board),
		core.WithTracer(c.Cfg.Tracer, c.tidFor(id)))
	model := power.Cubieboard2()
	if c.Cfg.PowerModel != nil {
		model = c.Cfg.PowerModel(id)
	}
	m := &Member{ID: id, Board: b, Model: model, State: MemberJoining, baseDomains: b.Hyp.Domains()}
	c.Boards = append(c.Boards, b)
	c.apis = append(c.apis, api.ForBoard(b))
	c.Models = append(c.Models, model)
	c.members = append(c.members, m)
	m.agent = newAgent(c, m)
	return m
}

// AddBoard admits a new board at runtime: the board is built on the
// shared engine, every registered service gets a replica slot on it,
// existing clients attach to its network, and its gossip agent joins
// through board 0. The board becomes placeable when the directory's
// agent applies the join (a management-network round-trip later).
func (c *Cluster) AddBoard() *Member {
	m := c.newMember()
	for _, e := range c.dir.Entries() {
		c.addReplicaSlot(e, m)
	}
	for _, cl := range c.clients {
		cl.attach(m.ID)
	}
	m.agent.join()
	m.agent.startProbing()
	return m
}

// front returns the board hosting the cluster's DNS and directory.
func (c *Cluster) front() *core.Board { return c.Boards[0] }

// ServiceOpts selects per-service placement behaviour at registration.
type ServiceOpts struct {
	// Policy overrides the cluster default for this service.
	Policy Policy
	// MinWarm keeps at least this many replicas booted at all times.
	MinWarm int
}

// register wires one service into the directory. Each replica gets
// a board-specific IP (third octet = 100+board) so the client can tell
// which board a DNS answer points at. The per-board idle reaper is
// disabled — replica lifecycle belongs to the warm-pool manager.
func (c *Cluster) register(sc core.ServiceConfig, opts ServiceOpts) *Entry {
	name := dns.CanonicalName(sc.Name)
	sc.Name = name
	sc.IdleTimeout = 0
	// Pin the effective checkpoint size in Base so migration planning and
	// replica registration agree on it.
	sc.StateMiB = sc.StateSizeMiB()
	e := &Entry{
		Name:    name,
		Base:    sc,
		Policy:  opts.Policy,
		MinWarm: opts.MinWarm,
	}
	if e.Policy == nil {
		e.Policy = c.Cfg.DefaultPolicy
	}
	for _, m := range c.members {
		if m.State == MemberDead || m.State == MemberLeft {
			e.Replicas = append(e.Replicas, nil)
			continue
		}
		c.addReplicaSlot(e, m)
	}
	c.dir.entries[name] = e
	delete(c.movedTo, name) // a re-registration supersedes any old move
	c.Pools.Reconcile(e)    // honour MinWarm immediately
	if c.onDirChange != nil {
		c.onDirChange()
	}
	return e
}

// Unregister removes a service from the cluster directory: every
// replica slot is retired from its board (running VMs destroyed, DNS
// epochs bumped). The federation transfer leg calls it on the source
// cluster once a service has moved. Reports whether the name was known.
func (c *Cluster) Unregister(name string) bool {
	name = dns.CanonicalName(name)
	e := c.dir.entries[name]
	if e == nil {
		return false
	}
	for _, p := range e.Replicas {
		if p == nil || p.gone {
			continue
		}
		c.Boards[p.Board].Jitsu.Deregister(p.Svc)
		p.gone = true
		delete(c.dir.byIP, p.Svc.Cfg.IP)
	}
	delete(c.dir.entries, name)
	c.front().DNS.BumpEpoch()
	if c.onDirChange != nil {
		c.onDirChange()
	}
	return true
}

// addReplicaSlot registers e's replica on member m's board.
func (c *Cluster) addReplicaSlot(e *Entry, m *Member) *Placement {
	rc := e.Base
	rc.IP = replicaIP(e.Base.IP, m.ID)
	p := &Placement{Board: m.ID, Svc: m.Board.Jitsu.Register(rc)}
	for len(e.Replicas) <= m.ID {
		e.Replicas = append(e.Replicas, nil)
	}
	e.Replicas[m.ID] = p
	c.dir.byIP[rc.IP] = p
	return p
}

// replicaIP derives board i's replica address from the base service IP.
func replicaIP(base netstack.IP, board int) netstack.IP {
	ip := base
	ip[2] = byte(100 + board)
	return ip
}

// Directory exposes the cluster-wide directory (read-only use).
func (c *Cluster) Directory() *Directory { return c.dir }

// Eng returns the shared simulation engine.
func (c *Cluster) Eng() *sim.Engine { return c.eng }

// RunAll drains the shared engine. With active probing (ProbeEvery > 0)
// the queue never drains — use RunUntil and StopMembership instead.
func (c *Cluster) RunAll() { c.eng.Run() }

// RunUntil advances the shared engine to virtual time t.
func (c *Cluster) RunUntil(t sim.Duration) { c.eng.RunUntil(t) }

// intercept is the cluster's authoritative DNS hook on board 0: observe
// the arrival, place the query, then let the pool manager chase the new
// rate estimate.
func (c *Cluster) intercept(q dns.Question, resp *dns.Message) bool {
	if q.Type != dns.TypeA && q.Type != dns.TypeANY {
		return false
	}
	e := c.dir.Lookup(q.Name)
	if e == nil || e.moved {
		return false
	}
	p, _ := c.schedule(e, TriggerCluster, nil)
	if p == nil {
		resp.RCode = dns.RCodeServFail
		return true
	}
	resp.Answers = append(resp.Answers, dns.RR{
		Name: e.Name, Type: dns.TypeA, Class: dns.ClassIN,
		TTL: e.Base.TTL, A: p.Svc.Cfg.IP,
	})
	return true
}

// schedule is the one placement path behind every client-driven
// activation — the DNS trigger, the control-plane Activate, and the
// federation's delegated resolutions: observe the arrival, place it,
// pin the chosen replica against reclaim, and let the pool manager
// chase the new rate estimate. via names the trigger frontend for the
// Activation machine's accounting; onReady (may be nil) rides the
// summon to the chosen board.
func (c *Cluster) schedule(e *Entry, via string, onReady func(error)) (p *Placement, warm bool) {
	c.observe(e)
	p, warm = c.place(e, via, onReady)
	if p == nil {
		e.Refused++
		c.ServFails++
		c.Pools.ReconcileAll()
		return nil, false
	}
	if warm {
		c.WarmHits++
	} else {
		c.Placed++
	}
	p.lastAnswered = c.eng.Now()
	// The replica just named is pinned: reclaim must not tear it down
	// before the client's connect lands.
	c.Pools.reconcileAll(p)
	return p, warm
}

// observe feeds one arrival into the service's EWMA rate estimate.
func (c *Cluster) observe(e *Entry) {
	now := c.eng.Now()
	if e.arrivals == 0 {
		// First contact: no inter-arrival gap to measure yet. Seed the
		// estimate at the reclaim threshold so the fresh boot stays in
		// the pool until the gap-decay proves the service really is
		// one-shot, instead of reclaiming it before a second visit.
		e.rate = c.Cfg.MinRate
	} else if now > e.lastArrival {
		inst := 1 / (now - e.lastArrival).Seconds()
		e.rate = c.Cfg.RateAlpha*inst + (1-c.Cfg.RateAlpha)*e.rate
	}
	e.arrivals++
	e.lastArrival = now
	// WarmTarget is refreshed by the reconcile pass that follows every
	// placement decision.
}

// place picks the replica that answers this query:
//  1. a booted replica (round-robin among them — a warm hit),
//  2. else a replica already booting (the DNS answer rides the same
//     §3.3 race stock Jitsu does; Synjitsu absorbs the early SYNs),
//  3. else a disk-resident replica paged back in (a disk restore beats
//     any full boot),
//  4. else a cold placement on the board the policy picks,
//  5. else, if this service is markedly hotter than some booted
//     replica, preempt that replica and boot in its place,
//  6. else nil: the whole cluster is full — one SERVFAIL, no walking.
//
// onReady (nil on the DNS path, which answers without waiting) is
// delivered exactly once: immediately for a warm hit, at boot
// completion otherwise.
func (c *Cluster) place(e *Entry, via string, onReady func(error)) (p *Placement, warm bool) {
	if ready := e.ready(); len(ready) > 0 {
		e.rr++
		p := ready[e.rr%len(ready)]
		// The warm hit never fires the board's machine, so the touch —
		// LRU recency plus the WarmMemory→Running promotion — is explicit.
		c.Boards[p.Board].Jitsu.Touch(p.Svc)
		if onReady != nil {
			onReady(nil)
		}
		return p, true
	}
	if p := e.launching(); p != nil {
		if onReady != nil {
			if p.pending {
				// The boot is still queued behind a preemption (the
				// replica is Stopped until the victim's destroy lands);
				// summoning now would start it early. Park the hook for
				// the deferred summon instead.
				p.pendingReady = append(p.pendingReady, onReady)
			} else if !c.Boards[p.Board].Jitsu.Summon(p.Svc,
				core.Summon{Via: via, OnReady: onReady}).Served() {
				onReady(core.ErrNoMemory)
			}
		}
		return p, false
	}
	for i, dp := range e.Replicas {
		if dp == nil || dp.gone || dp.reserved || dp.Svc.State != core.StateColdDisk ||
			!c.members[i].Placeable() {
			continue
		}
		if c.Boards[i].Hyp.FreeMemMiB() < e.Base.Image.MemMiB {
			continue
		}
		if c.summon(dp, via, onReady) {
			return dp, false
		}
	}
	idx := e.Policy.Pick(c.views(e, nil))
	if idx < 0 {
		if p := c.preempt(e, via, onReady); p != nil {
			return p, false
		}
		return nil, false
	}
	p = e.Replicas[idx]
	if !c.summon(p, via, onReady) {
		return nil, false
	}
	return p, false
}

// preempt evicts the coldest ready replica whose service is at least
// PreemptMargin times colder than e, then boots e's replica on the
// freed board once the destroy completes. The DNS answer goes out
// immediately — the replica IP is under Synjitsu control, so the
// client's SYNs ride the same boot race a stock cold start does.
func (c *Cluster) preempt(e *Entry, via string, onReady func(error)) *Placement {
	if c.Cfg.PreemptMargin <= 1 {
		return nil
	}
	now := c.eng.Now()
	need := e.effectiveRate(now)
	var victim *Placement
	victimRate := 0.0
	for _, o := range c.dir.Entries() {
		if o == e {
			continue
		}
		or := o.effectiveRate(now)
		if or*c.Cfg.PreemptMargin >= need {
			continue
		}
		guard := 10 * c.Cfg.BootEstimate
		for _, p := range o.ready() {
			// Only boards still taking placements host preemption boots,
			// and in-flight migrations must not lose their source.
			if !c.members[p.Board].Placeable() || p.migrating {
				continue
			}
			// Hysteresis: a replica must have amortised its boot cost
			// before it can be evicted, or near-equal services thrash.
			if p.Svc.Guest == nil || p.Svc.Guest.Uptime() < guard {
				continue
			}
			// Never evict a replica whose IP went out in a recent DNS
			// answer: that client's connection may still be in flight.
			if now-p.lastAnswered < guard {
				continue
			}
			b := c.Boards[p.Board]
			if b.Hyp.FreeMemMiB()+p.Svc.Cfg.Image.MemMiB < e.Base.Image.MemMiB {
				continue
			}
			if victim == nil || or < victimRate {
				victim, victimRate = p, or
			}
		}
	}
	if victim == nil {
		return nil
	}
	rep := e.Replicas[victim.Board]
	if rep == nil || rep.reserved {
		return nil
	}
	jit := c.Boards[victim.Board].Jitsu
	freed := func() {
		rep.pending = false
		// Deliver readiness to the preempt initiator plus anyone who
		// joined while the boot was queued — including the failure: a
		// concurrent placement may have consumed the freed memory, and
		// a dropped hook would leave its caller waiting forever.
		cbs := rep.pendingReady
		rep.pendingReady = nil
		if onReady != nil {
			cbs = append([]func(error){onReady}, cbs...)
		}
		var cb func(error)
		if len(cbs) > 0 {
			cb = func(err error) {
				for _, f := range cbs {
					f(err)
				}
			}
		}
		if !c.summon(rep, via, cb) && cb != nil {
			cb(core.ErrNoMemory)
		}
	}
	// Tiered reclaim: park the victim's state on its board's disk so a
	// later activation restores it at disk cost; only a diskless board
	// (or a full checkpoint store) pays the old full eviction.
	switch err := jit.DemoteWith(victim.Svc, freed); err {
	case nil:
		c.Demotions++
	case core.ErrNoDisk, core.ErrDiskFull:
		if !jit.EvictWith(victim.Svc, freed) {
			return nil
		}
	default:
		return nil
	}
	rep.pending = true
	c.Preempts++
	return rep
}

// views summarizes every placeable board for the policy. Boards for
// which skip returns true (e.g. already hosting a live replica of e)
// are omitted, as are members that are departed, leaving or suspect.
func (c *Cluster) views(e *Entry, skip func(i int) bool) []BoardView {
	out := make([]BoardView, 0, len(c.members))
	for _, m := range c.members {
		p := replicaOn(e, m.ID)
		if !m.Placeable() || p == nil || p.reserved {
			continue
		}
		if skip != nil && skip(m.ID) {
			continue
		}
		out = append(out, BoardView{
			Index:        m.ID,
			FreeMemMiB:   m.Board.Hyp.FreeMemMiB(),
			GuestDomains: m.Board.Hyp.Domains() - m.baseDomains,
			NeedMiB:      e.Base.Image.MemMiB,
			Model:        m.Model,
		})
	}
	return out
}
