package cluster

import (
	"errors"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Live migration of warm replicas: instead of preempting a warm
// unikernel and paying a cold boot elsewhere, the cluster checkpoints
// its state, copies it across the management link while the source
// keeps serving (pre-copy), restores on the destination at a fraction
// of the boot cost, and only then retires the source — so a graceful
// board departure never turns a warm service cold.

// ErrCannotLeave is returned for departures the cluster must refuse.
var ErrCannotLeave = errors.New("cluster: board cannot leave")

// Leave starts a graceful departure of board id: the member stops
// taking placements immediately, its live replicas are migrated off
// (or stopped, when MigrateOnLeave is false — the preempt-and-reboot
// baseline), its remaining slots are retired, and its gossip agent
// broadcasts Left. done (may be nil) fires when the board is fully out.
// Board 0 hosts the directory and may not leave.
func (c *Cluster) Leave(id int, done func()) error {
	if id == 0 {
		return ErrCannotLeave
	}
	if id >= len(c.members) {
		return ErrCannotLeave
	}
	m := c.members[id]
	if m.Leaving || m.State == MemberDead || m.State == MemberLeft {
		return ErrCannotLeave
	}
	m.Leaving = true
	c.Leaves++
	c.evacuate(m, func() {
		// Synchronous state flip (the gossip blast confirms it a
		// management round-trip later); deregisterBoard retires the
		// slots and bumps the DNS epochs.
		m.State = MemberLeft
		c.deregisterBoard(id)
		m.agent.leave()
		if done != nil {
			done()
		}
	})
	return nil
}

// evacuate drains every live replica off m, then calls done. Launching
// replicas are waited for (their DNS answers are already on the wire)
// and migrated once ready. Entries() is already name-sorted, so the
// sweep order is deterministic.
func (c *Cluster) evacuate(m *Member, done func()) {
	outstanding := 1 // the sweep itself, so done can't fire early
	finish := func() {
		outstanding--
		if outstanding == 0 {
			done()
		}
	}
	for _, e := range c.dir.Entries() {
		e := e
		p := replicaOn(e, m.ID)
		if p == nil {
			continue
		}
		switch {
		case p.migrating || p.draining:
			// Already on its way out (an overlapping Rebalance move):
			// that migration's switchover/drain completes the
			// evacuation; starting a second copy would race it.
		case p.Svc.State.Booted():
			outstanding++
			c.evacuateOne(e, p, finish)
		case p.Svc.State == core.StateColdDisk:
			outstanding++
			c.evacuateDisk(e, p, finish)
		case p.Svc.State == core.StateLaunching || p.pending:
			// A boot is in flight here (a client was already answered
			// with this IP). Let it finish, then move it.
			outstanding++
			p.pending = false
			dec := m.Board.Jitsu.Summon(p.Svc, core.Summon{Via: TriggerMigrate,
				OnReady: func(err error) {
					if err != nil {
						finish()
						return
					}
					c.evacuateOne(e, p, finish)
				}})
			if !dec.Served() {
				finish()
			}
		}
	}
	finish()
}

// evacuateOne moves (or, in the baseline, stops) one ready replica.
func (c *Cluster) evacuateOne(e *Entry, p *Placement, done func()) {
	if !c.Cfg.MigrateOnLeave {
		c.loseReplica(p)
		done()
		return
	}
	c.migrate(e, p, func(bool) { done() })
}

// pickDest asks e's policy for a migration destination: any placeable
// board other than p's whose replica slot is fully cold (a slot already
// holding a disk checkpoint cannot adopt a second one). Policies may be
// stateful (RoundRobin), so callers must use the returned index rather
// than picking twice.
func (c *Cluster) pickDest(e *Entry, p *Placement) int {
	return e.Policy.Pick(c.views(e, func(i int) bool {
		return i == p.Board || e.Replicas[i].Svc.State != core.StateCold
	}))
}

// loseReplica evicts a replica whose state could not be moved.
func (c *Cluster) loseReplica(p *Placement) {
	if c.Boards[p.Board].Jitsu.Evict(p.Svc) {
		c.Lost++
	}
}

// evacuateDisk hands a disk-resident replica to another board without
// paging it in: the stored checkpoint is copied across the management
// link and adopted straight onto the destination's disk tier, falling
// back to a warm restore when the destination has no disk. Only when no
// destination fits is the checkpoint lost.
func (c *Cluster) evacuateDisk(e *Entry, p *Placement, done func()) {
	lose := func() {
		c.loseReplica(p)
		done()
	}
	if !c.Cfg.MigrateOnLeave {
		lose()
		return
	}
	cpResp := c.boardAPI(p.Board).Checkpoint(api.CheckpointRequest{Name: e.Name})
	if cpResp.Err != nil {
		lose()
		return
	}
	cp := cpResp.Checkpoint
	idx := c.pickDest(e, p)
	if idx < 0 {
		lose()
		return
	}
	dst := e.Replicas[idx]
	dst.reserved = true
	p.migrating = true
	c.copyCheckpoint(p.Board, idx, cp.StateMiB, func(copied bool) {
		p.migrating = false
		dst.reserved = false
		if !copied || dst.gone {
			lose()
			return
		}
		resp := c.boardAPI(idx).Restore(api.RestoreRequest{
			Name: e.Name, Checkpoint: cp, Board: api.OnBoard(idx), ToDisk: true})
		if resp.Err != nil {
			// Destination diskless (or its store is full): page the
			// checkpoint in warm instead of losing it.
			resp = c.boardAPI(idx).Restore(api.RestoreRequest{
				Name: e.Name, Checkpoint: cp, Board: api.OnBoard(idx)})
		}
		if resp.Err != nil {
			lose()
			return
		}
		c.Boards[p.Board].Jitsu.Evict(p.Svc)
		c.Migrations++
		done()
	})
}

// migrate moves one ready replica of e off p's board for a mandatory
// evacuation (the board is leaving): if no destination fits or the
// move fails, the replica is stopped and its warm state lost — exactly
// the baseline. done reports whether the replica arrived warm.
func (c *Cluster) migrate(e *Entry, p *Placement, done func(ok bool)) {
	c.migrateAttempt(e, p, 1, done)
}

// migrateAttempt is one try of a mandatory evacuation; a transfer that
// dies on the wire reschedules here (bounded by MigrateMaxAttempts)
// with a fresh destination pick — the first choice may be the very
// board the partition cut off.
func (c *Cluster) migrateAttempt(e *Entry, p *Placement, attempt int, done func(ok bool)) {
	idx := c.pickDest(e, p)
	if idx < 0 {
		c.loseReplica(p)
		done(false)
		return
	}
	c.migrateTo(e, p, idx, true, attempt, done)
}

// migrateTo runs the live migration to the already-picked destination.
// mandatory distinguishes an evacuation (source board is going away —
// a failed move stops the source) from an optional rebalance (a failed
// move leaves the healthy source exactly where it was).
func (c *Cluster) migrateTo(e *Entry, p *Placement, idx int, mandatory bool, attempt int, done func(ok bool)) {
	dst := e.Replicas[idx]
	// The transfer speaks the typed control-plane surface: checkpoint on
	// the source board, restore on the destination, stop on switchover —
	// the same verbs an external operator would use.
	cpResp := c.boardAPI(p.Board).Checkpoint(api.CheckpointRequest{Name: e.Name})
	if cpResp.Err != nil {
		p.migrating = false
		dst.reserved = false
		if mandatory {
			c.loseReplica(p)
		}
		done(false)
		return
	}
	cp := cpResp.Checkpoint
	abort := func() {
		p.migrating = false
		dst.reserved = false
		if mandatory {
			// The destination (or the path to it) is gone but the
			// checkpoint is already captured: park it instead of
			// discarding the state with the replica.
			if !c.parkCheckpoint(e, p, cp) {
				c.loseReplica(p)
			}
		}
		done(false)
	}
	p.migrating = true
	var precopy obs.Span
	if tr := c.tracer(); tr != nil {
		precopy = tr.Begin(c.tidFor(p.Board), "migrate", "precopy",
			obs.Str("svc", e.Name), obs.Num("state_mib", int64(cp.StateMiB)),
			obs.Num("src", int64(p.Board)), obs.Num("dst", int64(idx)))
	}
	// Claim the destination slot for the whole copy: no placement,
	// prewarm or concurrent migration may take it while the checkpoint
	// is in flight, or the restore would find the slot occupied and a
	// mandatory abort would sacrifice a healthy source.
	dst.reserved = true
	c.copyCheckpoint(p.Board, idx, cp.StateMiB, func(copied bool) {
		if !copied {
			// The management path died mid-copy (chunk retries
			// exhausted). Release the claim; a mandatory evacuation gets
			// rescheduled — crash-safe: the source is still serving, the
			// destination reserved nothing durable — until the attempt
			// budget runs out and the replica is written off.
			c.tracer().End(precopy, obs.Str("status", "copy-failed"))
			p.migrating = false
			dst.reserved = false
			if !mandatory {
				done(false)
				return
			}
			if attempt < c.Cfg.MigrateMaxAttempts {
				c.eng.After(c.Cfg.MigrateRetryDelay, func() {
					if p.gone || !p.Svc.State.Booted() {
						done(false)
						return
					}
					c.migrateAttempt(e, p, attempt+1, done)
				})
				return
			}
			// Attempt budget spent: the checkpoint exists even though no
			// copy ever landed — park it before writing the replica off.
			if !c.parkCheckpoint(e, p, cp) {
				c.loseReplica(p)
			}
			done(false)
			return
		}
		if p.gone || !p.Svc.State.Booted() {
			// The source died mid-copy; nothing to switch over.
			c.tracer().End(precopy, obs.Str("status", "source-lost"))
			p.migrating = false
			dst.reserved = false
			done(false)
			return
		}
		c.tracer().End(precopy, obs.Str("status", "copied"))
		var restore obs.Span
		if tr := c.tracer(); tr != nil {
			restore = tr.Begin(c.tidFor(idx), "migrate", "restore",
				obs.Str("svc", e.Name), obs.Num("state_mib", int64(cp.StateMiB)))
		}
		resp := c.boardAPI(idx).Restore(api.RestoreRequest{Name: e.Name, Checkpoint: cp, Board: api.OnBoard(idx), OnReady: func(err error) {
			if err != nil {
				c.tracer().End(restore, obs.Str("status", "error"))
				abort()
				return
			}
			c.tracer().End(restore, obs.Str("status", "ready"))
			// Switchover: every future DNS answer names the destination
			// (the source leaves the ready set and the answer epoch
			// moves) — but a client answered with the source IP moments
			// ago may still be connecting, so the source drains for the
			// same guard window the preemptor honours before it stops.
			p.draining = true
			dst.reserved = false
			dst.lastAnswered = p.lastAnswered
			c.Migrations++
			if tr := c.tracer(); tr != nil {
				tr.Instant(c.tidFor(idx), "migrate", "switchover",
					obs.Str("svc", e.Name), obs.Num("src", int64(p.Board)), obs.Num("dst", int64(idx)))
			}
			c.front().DNS.BumpEpoch()
			guard := 10 * c.Cfg.BootEstimate
			grace := sim.Duration(0)
			if since := c.eng.Now() - p.lastAnswered; p.lastAnswered > 0 && since < guard {
				grace = guard - since
			}
			c.eng.After(grace, func() {
				p.migrating = false
				c.Boards[p.Board].Jitsu.EvictWith(p.Svc, nil)
				done(true)
			})
		}})
		if resp.Err != nil {
			// Destination lost its memory headroom during the copy.
			c.tracer().End(restore, obs.Str("status", "refused"))
			abort()
		}
		// On success the slot stays reserved until the switchover: the
		// migration pair (ready source + restoring destination) must
		// read as ONE replica to the pool manager, or make-before-break
		// looks over-provisioned and reclaim tears down a bystander.
	})
}

// parkCheckpoint is the crash-interrupted-migration fallback: a
// mandatory evacuation died after the source's state was captured (the
// destination crashed, or the management path to it partitioned), and
// the source board is leaving. Instead of discarding the checkpoint
// with the replica, adopt it onto a surviving board's disk tier — the
// board API is in-process, so a wrecked management network cannot stop
// the hand-off — and the service's next activation resumes from
// StateColdDisk instead of cold-booting. Returns false (caller loses
// the replica, the old behaviour) when no surviving board has a cold
// slot and a disk to take it. The failed destination is NOT excluded:
// a crashed board is already unplaceable, while one that is merely
// unreachable over the management network (or out of guest memory) can
// still adopt onto its disk through the in-process board API.
func (c *Cluster) parkCheckpoint(e *Entry, p *Placement, cp *core.Checkpoint) bool {
	idx := e.Policy.Pick(c.views(e, func(i int) bool {
		return i == p.Board || e.Replicas[i].Svc.State != core.StateCold
	}))
	if idx < 0 {
		return false
	}
	resp := c.boardAPI(idx).Restore(api.RestoreRequest{
		Name: e.Name, Checkpoint: cp, Board: api.OnBoard(idx), ToDisk: true})
	if resp.Err != nil {
		return false
	}
	c.Parks++
	if tr := c.tracer(); tr != nil {
		tr.Instant(c.tidFor(idx), "migrate", "park",
			obs.Str("svc", e.Name), obs.Num("src", int64(p.Board)),
			obs.Num("state_mib", int64(cp.StateMiB)))
	}
	// The source still leaves — but its state lives on, so this is not a
	// Lost replica.
	c.Boards[p.Board].Jitsu.Evict(p.Svc)
	return true
}

// Rebalance lets each service's policy second-guess where its warm
// replicas sit: when the policy prefers a board whose free memory
// exceeds a ready replica's board by more than 2× the image size, the
// replica migrates there. Optional moves never sacrifice the source —
// a failed rebalance leaves the replica serving where it was. Invoked
// explicitly (an operator or a churn schedule), never from the
// placement hot path.
func (c *Cluster) Rebalance() int {
	moved := 0
	for _, e := range c.dir.Entries() {
		for _, p := range e.ready() {
			if p.migrating || !c.members[p.Board].Placeable() {
				continue
			}
			idx := c.pickDest(e, p)
			if idx < 0 {
				continue
			}
			gain := c.Boards[idx].Hyp.FreeMemMiB() - c.Boards[p.Board].Hyp.FreeMemMiB()
			if gain <= 2*e.Base.Image.MemMiB {
				continue
			}
			c.migrateTo(e, p, idx, false, 1, func(bool) {})
			moved++
		}
	}
	return moved
}
