package cluster

import (
	"errors"
	"testing"
	"time"

	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
)

// ---- federation delegation under hostile management networks ----

// rootMgmtLink is the root directory's uplink to the federation
// management bridge (the root NIC sits at the link's A end, so AtoB is
// the root's transmit direction — resolves and spill commands — and
// BtoA its receive direction — replies and summaries).
func rootMgmtLink(f *Federation) *netsim.Link {
	return f.root.mgmt.NIC.Link()
}

func TestFedDelegationRetransmitRecoversLoss(t *testing.T) {
	// A lossy root uplink drops delegation datagrams and replies in both
	// directions. Every query must still answer: the root's per-query
	// retransmit recovers each lost exchange.
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	f.RegisterService(testService("alice", 20))

	// Impair only after the registration's summary push has landed, so
	// the loss hits the delegation exchanges, not the bloom bootstrap.
	f.Eng().At(100*time.Millisecond, func() {
		rootMgmtLink(f).Impair(netsim.Impairment{Loss: 0.25}, 7)
	})
	outs := make([]*fedOutcome, 8)
	for i := range outs {
		outs[i] = fedFetch(f, fc, time.Duration(i+1)*time.Second, "alice.family.name")
	}
	f.RunAll()

	for i, out := range outs {
		if !out.done || out.err != nil {
			t.Fatalf("fetch %d over lossy uplink: done=%v err=%v", i, out.done, out.err)
		}
	}
	r := f.Root()
	if r.DelegRetx == 0 {
		t.Fatal("25% loss on the root uplink produced no delegation retransmits")
	}
	if r.DelegTimeouts != 0 {
		t.Fatalf("deleg timeouts = %d with a healthy retry budget, want 0", r.DelegTimeouts)
	}
}

func TestFedDelegationTimeoutServfailNoNegativeCache(t *testing.T) {
	// An outbound partition starves a delegation: the root must answer
	// SERVFAIL after its retry budget — and must NOT cache a negative,
	// because an unreachable cluster says nothing about the name. After
	// the heal the same name resolves.
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	f.RegisterService(testService("alice", 20))
	link := rootMgmtLink(f)

	f.Eng().At(1*time.Second, func() { link.PartitionAtoB() })
	during := fedFetch(f, fc, 1100*time.Millisecond, "alice.family.name")
	f.Eng().At(2*time.Second, func() { link.Heal() })
	after := fedFetch(f, fc, 3*time.Second, "alice.family.name")
	f.RunAll()

	if !during.done || !errors.Is(during.err, ErrFederationFull) {
		t.Fatalf("partitioned fetch: done=%v err=%v, want SERVFAIL", during.done, during.err)
	}
	r := f.Root()
	if r.DelegTimeouts != 1 {
		t.Fatalf("deleg timeouts = %d, want 1", r.DelegTimeouts)
	}
	if want := uint64(f.Cfg.DelegateRetries); r.DelegRetx != want {
		t.Fatalf("deleg retx = %d, want the full budget %d", r.DelegRetx, want)
	}
	if len(f.root.neg) != 0 {
		t.Fatalf("timeout poisoned the negative cache: %v", f.root.neg)
	}
	if !after.done || after.err != nil {
		t.Fatalf("post-heal fetch: done=%v err=%v — a cached negative survived the partition",
			after.done, after.err)
	}
}

func TestFedDelegationRetryAblation(t *testing.T) {
	// The same brief outage, with and without the retransmit. The
	// hardened root rides it out; the no-retry ablation turns one lost
	// datagram into a client-visible SERVFAIL.
	run := func(retries int) (*fedOutcome, *FedRootStats) {
		f := NewFederation(
			WithClusters(2),
			WithMemberOptions(WithBoards(2), WithSeed(42)),
			WithDelegateRetry(5*time.Millisecond, retries),
		)
		fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
		f.RegisterService(testService("alice", 20))
		link := rootMgmtLink(f)
		// The outage swallows the first try and the first retransmit;
		// the second retransmit (t+15ms) goes through.
		f.Eng().At(1*time.Second, func() { link.PartitionAtoB() })
		f.Eng().At(1*time.Second+8*time.Millisecond, func() { link.Heal() })
		out := fedFetch(f, fc, 1*time.Second, "alice.family.name")
		f.RunAll()
		return out, f.Root()
	}

	hardened, hstats := run(3)
	if !hardened.done || hardened.err != nil {
		t.Fatalf("hardened fetch: done=%v err=%v", hardened.done, hardened.err)
	}
	if hstats.DelegRetx == 0 {
		t.Fatal("hardened root recovered without retransmitting?")
	}
	ablated, astats := run(0)
	if !ablated.done || !errors.Is(ablated.err, ErrFederationFull) {
		t.Fatalf("ablated fetch: done=%v err=%v, want SERVFAIL", ablated.done, ablated.err)
	}
	if astats.DelegRetx != 0 || astats.DelegTimeouts != 1 {
		t.Fatalf("ablation retx=%d timeouts=%d, want 0/1", astats.DelegRetx, astats.DelegTimeouts)
	}
}
