package cluster

import (
	"testing"

	"jitsu/internal/api"
	"jitsu/internal/core"
)

func TestClusterAPIRegisterActivatePlaces(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()

	if resp := ctl.Register(api.RegisterRequest{Config: testService("alice", 20), Policy: "bogus"}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("bogus policy -> %+v, want bad-request", resp.Err)
	}
	resp := ctl.Register(api.RegisterRequest{Config: testService("alice", 20), Policy: "first-fit", MinWarm: 1})
	if resp.Err != nil {
		t.Fatalf("register: %v", resp.Err)
	}
	if dup := ctl.Register(api.RegisterRequest{Config: testService("alice", 20)}); dup.Err == nil || dup.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate -> %+v, want conflict", dup.Err)
	}
	e := c.Directory().Lookup("alice.family.name")
	if e == nil || e.MinWarm != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if _, ok := e.Policy.(FirstFit); !ok {
		t.Fatalf("policy = %T", e.Policy)
	}

	act := ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	if act.Err != nil {
		t.Fatalf("activate: %v", act.Err)
	}
	c.RunAll()
	if got := e.ready(); len(got) == 0 {
		t.Fatal("no ready replica after activate")
	}
}

func TestClusterAPIMigrateMovesReplica(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})
	ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	src := e.ready()[0].Board

	moved := false
	resp := ctl.Migrate(api.MigrateRequest{Name: "alice.family.name",
		OnDone: func(ok bool) { moved = ok }})
	if resp.Err != nil || !resp.Started {
		t.Fatalf("migrate: %+v", resp)
	}
	c.RunAll()
	if !moved {
		t.Fatal("migration did not complete warm")
	}
	ready := e.ready()
	if len(ready) != 1 || ready[0].Board == src {
		t.Fatalf("replica still on board %d (ready=%d)", src, len(ready))
	}
	if ready[0].Svc.Restores != 1 {
		t.Fatalf("restores = %d, want 1", ready[0].Svc.Restores)
	}

	stats := ctl.Stats(api.StatsRequest{})
	if len(stats.Services) != 1 || stats.Services[0].Restores != 1 {
		t.Fatalf("stats = %+v", stats.Services)
	}
}

func TestClusterAPIStopAllReplicas(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20), MinWarm: 2})
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if len(e.ready()) != 2 {
		t.Fatalf("ready = %d, want 2 (min-warm)", len(e.ready()))
	}
	resp := ctl.Stop(api.StopRequest{Name: "alice.family.name"})
	if resp.Err != nil || resp.Stopped != 2 {
		t.Fatalf("stop -> %+v", resp)
	}
	if resp := ctl.Stop(api.StopRequest{Name: "ghost.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("stop unknown -> %+v, want not-found", resp.Err)
	}
}

func TestClusterAPISpeculativeActivatePrewarms(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name", Speculative: true})
	if resp.Err != nil {
		t.Fatalf("speculative activate: %v", resp.Err)
	}
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	ready := e.ready()
	if len(ready) != 1 {
		t.Fatalf("ready = %d", len(ready))
	}
	if ready[0].Svc.ColdStarts != 0 {
		t.Fatalf("speculative boot counted a cold start: %d", ready[0].Svc.ColdStarts)
	}
	if ready[0].Svc.State != core.StateReady {
		t.Fatalf("state = %v", ready[0].Svc.State)
	}
}
