package cluster

import (
	"testing"

	"jitsu/internal/api"
	"jitsu/internal/blockdev"
	"jitsu/internal/core"
)

func TestClusterAPIRegisterActivatePlaces(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()

	if resp := ctl.Register(api.RegisterRequest{Config: testService("alice", 20), Policy: "bogus"}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("bogus policy -> %+v, want bad-request", resp.Err)
	}
	resp := ctl.Register(api.RegisterRequest{Config: testService("alice", 20), Policy: "first-fit", MinWarm: 1})
	if resp.Err != nil {
		t.Fatalf("register: %v", resp.Err)
	}
	if dup := ctl.Register(api.RegisterRequest{Config: testService("alice", 20)}); dup.Err == nil || dup.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate -> %+v, want conflict", dup.Err)
	}
	e := c.Directory().Lookup("alice.family.name")
	if e == nil || e.MinWarm != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if _, ok := e.Policy.(FirstFit); !ok {
		t.Fatalf("policy = %T", e.Policy)
	}

	act := ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	if act.Err != nil {
		t.Fatalf("activate: %v", act.Err)
	}
	c.RunAll()
	if got := e.ready(); len(got) == 0 {
		t.Fatal("no ready replica after activate")
	}
}

func TestClusterAPIMigrateMovesReplica(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})
	ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	src := e.ready()[0].Board

	moved := false
	resp := ctl.Migrate(api.MigrateRequest{Name: "alice.family.name",
		OnDone: func(ok bool) { moved = ok }})
	if resp.Err != nil || !resp.Started {
		t.Fatalf("migrate: %+v", resp)
	}
	c.RunAll()
	if !moved {
		t.Fatal("migration did not complete warm")
	}
	ready := e.ready()
	if len(ready) != 1 || ready[0].Board == src {
		t.Fatalf("replica still on board %d (ready=%d)", src, len(ready))
	}
	if ready[0].Svc.Restores != 1 {
		t.Fatalf("restores = %d, want 1", ready[0].Svc.Restores)
	}

	stats := ctl.Stats(api.StatsRequest{})
	if len(stats.Services) != 1 || stats.Services[0].Restores != 1 {
		t.Fatalf("stats = %+v", stats.Services)
	}
}

func TestClusterAPIStopAllReplicas(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20), MinWarm: 2})
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if len(e.ready()) != 2 {
		t.Fatalf("ready = %d, want 2 (min-warm)", len(e.ready()))
	}
	resp := ctl.Stop(api.StopRequest{Name: "alice.family.name"})
	if resp.Err != nil || resp.Stopped != 2 {
		t.Fatalf("stop -> %+v", resp)
	}
	if resp := ctl.Stop(api.StopRequest{Name: "ghost.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("stop unknown -> %+v, want not-found", resp.Err)
	}
}

func TestClusterAPISpeculativeActivatePrewarms(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name", Speculative: true})
	if resp.Err != nil {
		t.Fatalf("speculative activate: %v", resp.Err)
	}
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	ready := e.ready()
	if len(ready) != 1 {
		t.Fatalf("ready = %d", len(ready))
	}
	if ready[0].Svc.ColdStarts != 0 {
		t.Fatalf("speculative boot counted a cold start: %d", ready[0].Svc.ColdStarts)
	}
	if !ready[0].Svc.State.Booted() {
		t.Fatalf("state = %v", ready[0].Svc.State)
	}
}

func TestClusterAPIDemotePromoteRoundTrip(t *testing.T) {
	c := NewCluster(WithBoards(2), WithBoardOptions(core.WithDisk(blockdev.DefaultConfig())))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})
	ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	board := e.ready()[0].Board

	// Demote parks the replica on its board's disk tier.
	if resp := ctl.Demote(api.DemoteRequest{Name: "alice.family.name"}); resp.Err != nil || resp.Demoted != 1 {
		t.Fatalf("demote -> %+v", resp)
	}
	c.RunAll()
	pl := e.Replicas[board]
	if pl.Svc.State != core.StateColdDisk {
		t.Fatalf("state after demote = %v, want cold-disk", pl.Svc.State)
	}

	// A second demote finds nothing booted.
	if resp := ctl.Demote(api.DemoteRequest{Name: "alice.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeConflict {
		t.Fatalf("demote with nothing booted -> %+v, want conflict", resp.Err)
	}

	// Checkpoint on a disk-resident replica returns the stored
	// checkpoint without paging anything in.
	if resp := ctl.Checkpoint(api.CheckpointRequest{Name: "alice.family.name"}); resp.Err != nil {
		t.Fatalf("checkpoint of disk replica -> %+v", resp.Err)
	} else if resp.Checkpoint.StateMiB != e.Base.StateMiB {
		t.Fatalf("checkpoint StateMiB = %d, want %d", resp.Checkpoint.StateMiB, e.Base.StateMiB)
	}
	if pl.Svc.State != core.StateColdDisk {
		t.Fatalf("checkpoint paged the replica in: %v", pl.Svc.State)
	}

	// Promote pages it back to warm memory and names the board.
	promoted := false
	resp := ctl.Promote(api.PromoteRequest{Name: "alice.family.name",
		OnReady: func(err error) {
			if err != nil {
				t.Errorf("promote ready: %v", err)
			}
			promoted = true
		}})
	if resp.Err != nil || resp.Board != board {
		t.Fatalf("promote -> %+v, want board %d", resp, board)
	}
	c.RunAll()
	if !promoted || pl.Svc.State != core.StateWarmMemory {
		t.Fatalf("after promote: ready=%v state=%v, want warm-memory", promoted, pl.Svc.State)
	}
	if pl.Svc.DiskRestores != 1 {
		t.Fatalf("disk restores = %d, want 1", pl.Svc.DiskRestores)
	}

	// Nothing left on disk: a second promote conflicts.
	if resp := ctl.Promote(api.PromoteRequest{Name: "alice.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeConflict || resp.Board != -1 {
		t.Fatalf("promote with nothing on disk -> %+v, want conflict/-1", resp)
	}

	if resp := ctl.Demote(api.DemoteRequest{Name: "ghost.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("demote unknown -> %+v, want not-found", resp.Err)
	}
	if resp := ctl.Promote(api.PromoteRequest{Name: "ghost.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("promote unknown -> %+v, want not-found", resp.Err)
	}
}
