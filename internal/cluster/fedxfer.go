package cluster

import (
	"time"

	"jitsu/internal/cc"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Federation checkpoint copies: the shed/spill transfer leg used to be
// a single sleep sized bits/TransferBitsPerSec — the copy never touched
// the federation management network, so it could not contend with the
// root's delegated resolves and summary pushes that share those links.
// Now it is the same windowed chunk exchange the intra-cluster
// migration path runs (xfer.go), agent to agent over fedNet: chunk
// datagrams carry a header but occupy the sending agent's uplink for
// the full chunk byte count, acks return window to the per-agent
// congestion controller, lost chunks retransmit with a bounded budget,
// and an exchange that exhausts a chunk's retries aborts the transfer
// (the source keeps serving). FedConfig.UnpacedTransfers keeps the
// blast-everything ablation arm.

// fedXferChunk is one chunk's sender-side state. held mirrors
// xferChunk.held: whether the chunk currently owns granted controller
// window, so exactly one of OnAck/OnTimeout/Release settles each grant.
type fedXferChunk struct {
	mib    int
	tries  int
	sentAt sim.Duration
	sent   bool
	acked  bool
	held   bool
	timer  sim.Event
}

// fedXferSend is the sender side of one cross-cluster checkpoint copy.
type fedXferSend struct {
	a        *fedAgent
	id       uint32
	dst      int
	chunks   []fedXferChunk
	acked    int
	inflight int
	ctrl     *cc.Controller
	done     func(ok bool)
	finished bool
}

// fedCC returns (building on first use) the congestion controller
// pacing this agent's federation uplink, or nil when the unpaced
// ablation is configured. Registered under cc.c<id>.* in the federation
// registry.
func (a *fedAgent) fedCC() *cc.Controller {
	if a.f.Cfg.UnpacedTransfers {
		return nil
	}
	if a.ctrl == nil {
		a.ctrl = cc.New(a.f.eng, cc.Config{
			MSS:     a.f.Cfg.TransferChunkMiB << 20,
			RTOMin:  a.f.Cfg.TransferChunkRTO,
			InitRTO: a.f.Cfg.TransferChunkRTO,
			RTOMax:  64 * a.f.Cfg.TransferChunkRTO,
		})
		a.ctrl.Register(a.f.Reg, "cc.c"+itoa(a.m.ID))
	}
	return a.ctrl
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// fedCopy streams stateMiB from this agent to cluster dst's agent over
// the federation management network and reports success.
func (a *fedAgent) fedCopy(dst int, stateMiB int, done func(ok bool)) {
	chunk := a.f.Cfg.TransferChunkMiB
	total := (stateMiB + chunk - 1) / chunk
	if total < 1 {
		total = 1
	}
	last := stateMiB - (total-1)*chunk
	if last <= 0 {
		last = chunk
	}
	a.f.nextFedXfer++
	s := &fedXferSend{a: a, id: a.f.nextFedXfer, dst: dst,
		chunks: make([]fedXferChunk, total), ctrl: a.fedCC(), done: done}
	for i := range s.chunks {
		s.chunks[i].mib = chunk
	}
	s.chunks[total-1].mib = last
	a.f.fedXfers[s.id] = s
	a.f.eng.After(500*time.Microsecond, s.start)
}

func (s *fedXferSend) start() {
	for i := range s.chunks {
		i := i
		if s.ctrl == nil {
			s.transmit(i)
			continue
		}
		bytes := s.chunks[i].mib << 20
		s.ctrl.Acquire(bytes, func() {
			if s.finished {
				s.ctrl.Release(bytes)
				return
			}
			s.chunks[i].held = true
			s.transmit(i)
		})
	}
}

func (s *fedXferSend) transmit(idx int) {
	if s.finished {
		return
	}
	cs := &s.chunks[idx]
	buf := []byte{fedOpXferChunk,
		byte(s.id >> 24), byte(s.id >> 16), byte(s.id >> 8), byte(s.id),
		byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx),
		byte(len(s.chunks) >> 24), byte(len(s.chunks) >> 16), byte(len(s.chunks) >> 8), byte(len(s.chunks))}
	s.a.f.FedChunks++
	cs.tries++
	if !cs.sent {
		cs.sent = true
		cs.sentAt = s.a.f.eng.Now()
		s.inflight += cs.mib << 20
	}
	s.a.host.SendUDPBulk(agentMgmtIP(s.dst), fedPort, fedPort, buf, cs.mib<<20)
	s.armTimer(idx)
}

// armTimer mirrors the intra-cluster transfer's retransmit schedule:
// live (or fixed) RTO doubled per retry of this chunk, plus a
// serialisation allowance for the bytes in flight ahead of the ack.
func (s *fedXferSend) armTimer(idx int) {
	cs := &s.chunks[idx]
	rto := s.a.f.Cfg.TransferChunkRTO
	if s.ctrl != nil {
		rto = s.ctrl.RTO()
	}
	for i := 1; i < cs.tries; i++ {
		rto *= 2
	}
	rto += sim.Duration(float64(s.inflight*8) / s.a.f.Cfg.TransferBitsPerSec * float64(time.Second))
	cs.timer = s.a.f.eng.After(rto, func() {
		if s.finished || cs.acked {
			return
		}
		if cs.tries > s.a.f.Cfg.TransferChunkRetries {
			s.fail()
			return
		}
		s.a.f.FedChunkRetx++
		if s.ctrl != nil {
			// As in xfer.go: the timed-out chunk holds no window while
			// its re-Acquire queues; an ack or failure landing first
			// leaves the grant closure to return its own bytes.
			bytes := cs.mib << 20
			cs.held = false
			s.ctrl.OnTimeout(bytes)
			s.ctrl.Acquire(bytes, func() {
				if s.finished || cs.acked {
					s.ctrl.Release(bytes)
					return
				}
				cs.held = true
				s.transmit(idx)
			})
			return
		}
		s.transmit(idx)
	})
}

func (s *fedXferSend) onAck(idx int) {
	if s.finished || idx >= len(s.chunks) {
		return
	}
	cs := &s.chunks[idx]
	if !cs.sent || cs.acked {
		return
	}
	cs.acked = true
	s.a.f.eng.Cancel(cs.timer)
	bytes := cs.mib << 20
	s.inflight -= bytes
	if s.ctrl != nil && cs.held {
		cs.held = false
		var rtt sim.Duration
		if cs.tries == 1 {
			rtt = s.a.f.eng.Now() - cs.sentAt
		}
		s.ctrl.OnAck(bytes, rtt)
	}
	s.acked++
	if s.acked == len(s.chunks) {
		s.finished = true
		delete(s.a.f.fedXfers, s.id)
		s.done(true)
	}
}

func (s *fedXferSend) fail() {
	s.finished = true
	delete(s.a.f.fedXfers, s.id)
	for i := range s.chunks {
		cs := &s.chunks[i]
		if cs.timer != (sim.Event{}) {
			s.a.f.eng.Cancel(cs.timer)
		}
		if cs.held && s.ctrl != nil {
			cs.held = false
			s.ctrl.Release(cs.mib << 20)
		}
	}
	s.a.f.FedXferAborts++
	if tr := s.a.f.Cfg.Tracer; tr != nil {
		tr.Instant(s.a.lane(), "fed", "xfer-abort",
			obs.Num("xfer", int64(s.id)), obs.Num("chunk", int64(s.acked)))
	}
	s.done(false)
}

// recvFedXfer handles transfer datagrams between agents. As on the
// cluster management network, the receiver keeps no per-transfer state:
// every chunk is acknowledged back to its sender, duplicates included.
func (a *fedAgent) recvFedXfer(src netstack.IP, payload []byte) {
	if len(payload) < 9 {
		return
	}
	id := uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	idx := int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8])
	switch payload[0] {
	case fedOpXferChunk:
		ack := []byte{fedOpXferAck,
			byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id),
			byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx)}
		a.host.SendUDP(src, fedPort, fedPort, ack)
	case fedOpXferAck:
		if s, ok := a.f.fedXfers[id]; ok && s.a == a {
			s.onAck(idx)
		}
	}
}
