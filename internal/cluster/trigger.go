package cluster

import (
	"jitsu/internal/core"
	"jitsu/internal/dns"
)

// Trigger names the cluster reports into each board's Activation
// machine (core.Activation.Fired).
const (
	// TriggerCluster marks client-driven placements: the scheduler
	// answered a DNS query with this replica and summoned it.
	TriggerCluster = "cluster-dns"
	// TriggerWarmPool marks speculative boots by the pool manager.
	TriggerWarmPool = "warm-pool"
	// TriggerMigrate marks waits-for-ready fired by the migration path.
	TriggerMigrate = "migrate"
)

// clusterTrigger is the cluster's DNS frontend: a core.Trigger attached
// to board 0 that resolves each query against the cluster-wide
// directory, asks the scheduler to place it, and answers with the
// chosen replica's address. The launch itself goes through the chosen
// board's shared Activation machine — the same seam the per-board DNS,
// SYN and conduit frontends fire — so the cluster no longer re-derives
// the lifecycle in its own intercept.
type clusterTrigger struct {
	c *Cluster
	b *core.Board
	// prev is board 0's own synchronous DNS frontend: queries the
	// cluster directory doesn't know fall through to it.
	prev dns.Interceptor
	// prevFast is the displaced fast-path hook, restored on Detach.
	prevFast dns.FastInterceptor
	// prevOwner is the displaced hook owner, so Detach can hand the
	// hooks (and their ownership) back.
	prevOwner core.Trigger
}

func (t *clusterTrigger) Name() string { return TriggerCluster }

func (t *clusterTrigger) Attach(b *core.Board) error {
	t.b = b
	t.prev = b.DNS.Intercept
	t.prevFast = b.DNS.FastIntercept
	t.prevOwner = b.DNSFrontend()
	// Cluster answers vary per query (placement picks the board), so the
	// front door must not serve them from the per-board fast path.
	b.DNS.FastIntercept = nil
	b.DNS.Intercept = t.intercept
	b.ClaimDNSFrontend(t)
	return nil
}

func (t *clusterTrigger) Detach() {
	if t.b == nil || t.b.DNSFrontend() != core.Trigger(t) {
		return // displaced in turn: not ours to restore
	}
	t.b.DNS.Intercept = t.prev
	t.b.DNS.FastIntercept = t.prevFast
	t.b.ClaimDNSFrontend(t.prevOwner)
}

func (t *clusterTrigger) intercept(q dns.Question, resp *dns.Message) bool {
	if t.c.intercept(q, resp) {
		return true
	}
	if t.prev != nil {
		return t.prev(q, resp)
	}
	return false
}

// summon fires board idx's Activation machine for a client-driven
// placement, applying the cluster's refusal policy (the per-replica
// ServFail counter) on any non-served decision. via names the frontend
// that asked (the cluster's own DNS trigger, or a federation delegate).
func (c *Cluster) summon(p *Placement, via string, onReady func(error)) bool {
	dec := c.Boards[p.Board].Jitsu.Summon(p.Svc,
		core.Summon{Via: via, ColdStart: true, OnReady: onReady})
	if dec.Served() {
		return true
	}
	p.Svc.ServFails++
	return false
}
