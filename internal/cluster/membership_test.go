package cluster

import (
	"testing"
	"time"

	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// ---- dynamic membership ----

func TestAddBoardBecomesPlaceable(t *testing.T) {
	c := testCluster(1)
	c.RegisterService(testService("alice", 20))
	m := c.AddBoard()
	if m.ID != 1 || m.State != MemberJoining {
		t.Fatalf("new member id=%d state=%v, want 1/joining", m.ID, m.State)
	}
	c.RunAll() // the join message reaches board 0's agent
	if m.State != MemberAlive {
		t.Fatalf("state after join = %v, want alive", m.State)
	}
	if c.Joins != 1 {
		t.Fatalf("joins = %d, want 1", c.Joins)
	}
	// The newcomer has a replica slot and shows up in placement views.
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 1) == nil {
		t.Fatal("no replica slot on the joined board")
	}
	views := c.views(e, nil)
	if len(views) != 2 {
		t.Fatalf("views = %d boards, want 2", len(views))
	}
}

func TestJoinDuringInFlightPlacement(t *testing.T) {
	// A cold boot is in flight when a new board joins: the placement
	// must complete undisturbed, and the next cold placement may use
	// the newcomer.
	c := testCluster(2)
	c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var status int
	var served int
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			served, status = board, resp.Status
		})
	// Let the DNS answer go out and the boot start, then join mid-boot.
	c.RunUntil(50 * time.Millisecond)
	e := c.Directory().Lookup("alice.family.name")
	if e.launching() == nil {
		t.Fatal("test setup: no boot in flight at join time")
	}
	m := c.AddBoard()
	c.RunAll()
	if status != 200 {
		t.Fatalf("in-flight placement returned %d, want 200", status)
	}
	if m.State != MemberAlive {
		t.Fatalf("joiner state = %v, want alive", m.State)
	}
	// Fill the original boards and force the next service onto the
	// newcomer: register a second service and exhaust memory elsewhere.
	c.Boards[0].Hyp.TotalMemMiB = 0
	c.Boards[1].Hyp.TotalMemMiB = 0
	c.RegisterService(testService("bob", 21))
	var bobBoard int
	cl.Fetch("bob.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			bobBoard = board
		})
	c.RunAll()
	if bobBoard != m.ID {
		t.Fatalf("bob placed on board %d, want the joiner %d", bobBoard, m.ID)
	}
	_ = served
}

// ---- graceful leave: migration vs preempt-and-reboot ----

func leaveCluster(t *testing.T, migrate bool) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.MigrateOnLeave = migrate
	c := build(cfg)
	// MinWarm 2 puts ready replicas on boards 0 and 1 (least-loaded
	// breaks ties in id order).
	c.RegisterService(testService("alice", 20), WithMinWarm(2))
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 1) == nil || !e.Replicas[1].Svc.State.Booted() {
		t.Fatal("test setup: no warm replica on board 1")
	}
	return c
}

func TestLeaveMigratesWarmReplicas(t *testing.T) {
	c := leaveCluster(t, true)
	e := c.Directory().Lookup("alice.family.name")
	epochBefore := c.front().DNS.Epoch
	localBefore := c.Boards[1].DNS.Epoch

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left {
		t.Fatal("leave never completed")
	}
	if c.Migrations != 1 || c.Lost != 0 {
		t.Fatalf("migrations=%d lost=%d, want 1/0", c.Migrations, c.Lost)
	}
	// The warm replica moved: board 2 is ready, board 1 is retired.
	if replicaOn(e, 2) == nil || !e.Replicas[2].Svc.State.Booted() {
		t.Fatal("no ready replica on board 2 after migration")
	}
	if e.Replicas[2].Svc.Restores != 1 {
		t.Fatalf("restores = %d, want 1 (restored from checkpoint, not cold-booted)", e.Replicas[2].Svc.Restores)
	}
	if !e.Replicas[1].gone {
		t.Fatal("board 1's slot not retired")
	}
	if c.members[1].State != MemberLeft {
		t.Fatalf("member 1 state = %v, want left", c.members[1].State)
	}
	// Both the cluster's answer epoch and the departed board's local
	// directory epoch moved, and its registration is gone.
	if c.front().DNS.Epoch == epochBefore {
		t.Fatal("front DNS epoch did not move on departure")
	}
	if c.Boards[1].DNS.Epoch == localBefore {
		t.Fatal("departed board's DNS epoch did not move")
	}
	if _, err := c.Boards[1].Jitsu.Service("alice.family.name"); err == nil {
		t.Fatal("departed board still has the service registered")
	}
	// The service is still warm: the next query is a warm hit served in
	// milliseconds, not a cold boot.
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var rt sim.Duration
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			rt = d
		})
	c.RunAll()
	if c.WarmHits != 1 {
		t.Fatalf("warm hits = %d, want 1 after migration", c.WarmHits)
	}
	if rt > 50*time.Millisecond {
		t.Fatalf("post-migration fetch took %v, want warm-path ms", rt)
	}
}

func TestLeavePreemptBaselineGoesCold(t *testing.T) {
	c := leaveCluster(t, false)
	if err := c.Leave(1, nil); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if c.Migrations != 0 || c.Lost != 1 {
		t.Fatalf("migrations=%d lost=%d, want 0/1 in the preempt baseline", c.Migrations, c.Lost)
	}
	// The pool manager re-warms a replacement to honour MinWarm, but it
	// pays a full boot: the departed board's warm state was destroyed,
	// not moved.
	e := c.Directory().Lookup("alice.family.name")
	p := replicaOn(e, 2)
	if p == nil || !p.Svc.State.Booted() {
		t.Fatal("no replacement replica on board 2")
	}
	if p.Svc.Restores != 0 {
		t.Fatalf("restores = %d, want 0 — the baseline must cold-boot, not restore", p.Svc.Restores)
	}
	if p.Svc.Launches != 1 {
		t.Fatalf("launches = %d, want 1 fresh boot on board 2", p.Svc.Launches)
	}
}

func TestConcurrentLeavesReserveDistinctDestinations(t *testing.T) {
	// Two boards with warm replicas of the same service leave at the
	// same instant. The first migration reserves its destination slot
	// for the whole checkpoint copy, so the second must pick the other
	// free board instead of colliding and sacrificing its source.
	cfg := DefaultConfig()
	cfg.Boards = 5
	c := build(cfg)
	c.RegisterService(testService("alice", 20), WithMinWarm(3))
	c.RunAll() // replicas ready on boards 0, 1, 2
	e := c.Directory().Lookup("alice.family.name")
	for _, id := range []int{1, 2} {
		if replicaOn(e, id) == nil || !e.Replicas[id].Svc.State.Booted() {
			t.Fatalf("test setup: no warm replica on board %d", id)
		}
	}
	if err := c.Leave(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(2, nil); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if c.Migrations != 2 || c.Lost != 0 {
		t.Fatalf("migrations=%d lost=%d, want 2/0 — concurrent moves must not collide", c.Migrations, c.Lost)
	}
	for _, id := range []int{3, 4} {
		p := replicaOn(e, id)
		if p == nil || !p.Svc.State.Booted() {
			t.Fatalf("no ready replica on board %d after concurrent migrations", id)
		}
		if p.Svc.Restores != 1 {
			t.Fatalf("board %d restores = %d, want 1", id, p.Svc.Restores)
		}
	}
}

func TestLeaveRefusedForFrontAndDeparted(t *testing.T) {
	c := testCluster(2)
	if err := c.Leave(0, nil); err == nil {
		t.Fatal("board 0 must not be allowed to leave")
	}
	if err := c.Leave(1, nil); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if err := c.Leave(1, nil); err == nil {
		t.Fatal("leaving twice must be refused")
	}
}

// ---- failure detection: suspect, refute, confirm ----

func TestSuspectRefuteConfirmFlapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.ProbeEvery = 500 * time.Millisecond
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.SuspectTimeout = 3 * time.Second
	c := build(cfg)
	c.RegisterService(testService("alice", 20), WithMinWarm(2))
	m := c.members[1]

	// Short partition: board 1 drops off the management network for
	// less than the suspect timeout, then returns and refutes.
	c.RunUntil(1 * time.Second)
	m.agent.nic.Down = true
	c.RunUntil(2200 * time.Millisecond)
	if m.State != MemberSuspect {
		t.Fatalf("state during partition = %v, want suspect", m.State)
	}
	m.agent.nic.Down = false
	c.RunUntil(4800 * time.Millisecond)
	if m.State != MemberAlive {
		t.Fatalf("state after heal = %v, want alive (refuted)", m.State)
	}
	if c.Confirms != 0 {
		t.Fatalf("confirms = %d, want 0 — flapping must not kill the board", c.Confirms)
	}
	// Its warm replica survived the flap.
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 1) == nil || !e.Replicas[1].Svc.State.Booted() {
		t.Fatal("flapping destroyed the warm replica on board 1")
	}

	// Long partition: the suspicion stands unrefuted and the failure
	// detector confirms the death; the directory retires the board.
	m.agent.nic.Down = true
	c.RunUntil(12 * time.Second)
	if m.State != MemberDead {
		t.Fatalf("state after long partition = %v, want dead", m.State)
	}
	if c.Confirms != 1 {
		t.Fatalf("confirms = %d, want 1", c.Confirms)
	}
	if c.Lost == 0 {
		t.Fatal("confirmed death must count the lost warm replica")
	}
	if replicaOn(e, 1) != nil {
		t.Fatal("dead board's replica slot not retired")
	}
	c.StopMembership()
	c.RunAll()
}

// ---- DNS answer-cache invalidation on departure ----

func TestDepartureInvalidatesBoardAnswerCache(t *testing.T) {
	c := leaveCluster(t, true)
	b := c.Boards[1]

	// Prime board 1's local answer cache by querying its own DNS server
	// directly (clients normally only talk to board 0; the per-board
	// fast path still serves diagnostics and placed traffic).
	host := b.AddClient("probe", netstack.IPv4(10, 0, 0, 77))
	name := "alice.family.name"
	resolve := func() *dns.Message {
		var got *dns.Message
		r := &dns.Client{Host: host}
		r.Query(core.NSAddr, name, dns.TypeA, time.Second, func(m *dns.Message, _ sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = m
		})
		c.RunAll()
		return got
	}
	if m := resolve(); m.RCode != dns.RCodeNoError || len(m.Answers) == 0 {
		t.Fatalf("pre-departure resolve failed: %v", m.RCode)
	}
	resolve() // second hit fills + serves the packed answer cache
	if b.DNS.CacheHits == 0 {
		t.Fatal("test setup: answer cache never hit")
	}
	epoch := b.DNS.Epoch

	if err := c.Leave(1, nil); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if b.DNS.Epoch <= epoch {
		t.Fatalf("epoch = %d, want > %d after departure", b.DNS.Epoch, epoch)
	}
	// The cached answer is gone with the registration: the same query
	// now walks the zone and NXDomains instead of serving stale wire.
	hits := b.DNS.CacheHits
	if m := resolve(); m.RCode != dns.RCodeNXDomain {
		t.Fatalf("post-departure rcode = %v, want NXDomain", m.RCode)
	}
	if b.DNS.CacheHits != hits {
		t.Fatal("stale cached answer served after departure")
	}
}
