package cluster

import (
	"errors"
	"fmt"

	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// ErrClusterFull is returned when the scheduler could not place the
// query on any board. Unlike the Fleet baseline, the client learns this
// from a single SERVFAIL — there is no NS set to walk.
var ErrClusterFull = errors.New("cluster: no board can take the service")

// Client is a resolver+fetcher against the cluster. Like the Fleet
// client it holds an attachment on every board's network (the boards
// are separate hosts on the edge), but it only ever queries board 0's
// directory: the answer's replica IP tells it which board to talk to.
// When a board joins after the client was created, the cluster attaches
// the client to the newcomer's network too.
type Client struct {
	c     *Cluster
	name  string
	ip    netstack.IP
	hosts []*netstack.Host // indexed by board id; nil until attached
	// Retry, when non-zero, makes every resolution retransmit lost
	// queries with backoff (dns.DefaultRetry() is the hardened setting);
	// the zero value resolves with a single datagram — the ablation.
	Retry dns.RetryPolicy
	// ServFails counts cluster-wide refusals observed by this client;
	// DNSRetries the query retransmits its resolver paid.
	ServFails  uint64
	DNSRetries uint64
}

// NewClient attaches a client to every current board's network.
func (c *Cluster) NewClient(name string, ip netstack.IP) *Client {
	cl := &Client{c: c, name: name, ip: ip}
	for _, m := range c.members {
		cl.attach(m.ID)
	}
	c.clients = append(c.clients, cl)
	return cl
}

// attach wires the client onto board id's edge network (idempotent).
func (cl *Client) attach(id int) {
	for len(cl.hosts) <= id {
		cl.hosts = append(cl.hosts, nil)
	}
	if cl.hosts[id] == nil {
		cl.hosts[id] = cl.c.Boards[id].AddClient(fmt.Sprintf("%s-b%d", cl.name, id), cl.ip)
	}
}

// Host returns the client's attachment on board i.
func (cl *Client) Host(i int) *netstack.Host {
	cl.attach(i)
	return cl.hosts[i]
}

// Fetch resolves name at the cluster directory and fetches path from
// the board the scheduler picked. done reports the serving board index
// (-1 on refusal or error).
func (cl *Client) Fetch(name, path string, timeout sim.Duration, done func(board int, resp *netstack.HTTPResponse, elapsed sim.Duration, err error)) {
	eng := cl.c.eng
	start := eng.Now()
	resolver := &dns.Client{Host: cl.hosts[0], Retry: cl.Retry}
	resolver.Query(core.NSAddr, name, dns.TypeA, timeout, func(m *dns.Message, _ sim.Duration, err error) {
		cl.DNSRetries += resolver.Retries
		if err != nil {
			done(-1, nil, eng.Now()-start, err)
			return
		}
		if m.RCode == dns.RCodeServFail {
			cl.ServFails++
			done(-1, nil, eng.Now()-start, ErrClusterFull)
			return
		}
		if m.RCode != dns.RCodeNoError || len(m.Answers) == 0 {
			done(-1, nil, eng.Now()-start, fmt.Errorf("cluster: dns %v", m.RCode))
			return
		}
		ip := m.Answers[0].A
		board := 0
		if p, ok := cl.c.dir.byIP[ip]; ok {
			board = p.Board
		}
		remaining := timeout - (eng.Now() - start)
		if remaining <= 0 {
			// netstack arms no deadline for timeout <= 0; fail now
			// rather than fetch unbounded.
			done(-1, nil, eng.Now()-start, netstack.ErrTimeout)
			return
		}
		cl.Host(board).HTTPGet(ip, 80, path, remaining, func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
			done(board, resp, eng.Now()-start, err)
		})
	})
}
