package cluster

import (
	"math"
	"sort"

	"jitsu/internal/core"
)

// PoolManager keeps each service's warm pool at its target size: K
// pre-booted replicas, where K follows an EWMA of the observed arrival
// rate scaled by the expected boot time. Hot services therefore skip
// the cold-start path entirely; services that go quiet are reclaimed so
// their memory returns to the boards.
//
// The manager is event-driven, not periodic: it reconciles on every
// directory arrival (and on registration), so the simulation's event
// queue still drains and runs stay deterministic.
type PoolManager struct {
	c *Cluster
	// Prewarms counts speculative boots (not client-driven).
	Prewarms uint64
	// Reclaims counts replicas taken out of the warm pool because it
	// shrank — demotions and evictions both.
	Reclaims uint64
	// Demotions counts the reclaims that parked their state on disk
	// instead of discarding it (boards with a disk tier).
	Demotions uint64
}

func newPoolManager(c *Cluster) *PoolManager { return &PoolManager{c: c} }

// target computes the warm-pool size for e right now. The EWMA rate is
// additionally clamped by the time since the last arrival, so a service
// that goes quiet decays toward zero even though EWMA updates only
// happen on arrivals; MinWarm floors the result.
func (pm *PoolManager) target(e *Entry) int {
	cfg := pm.c.Cfg
	r := e.effectiveRate(pm.c.eng.Now())
	if r < cfg.MinRate {
		r = 0
	}
	k := int(math.Ceil(r * cfg.BootEstimate.Seconds() * cfg.WarmFactor))
	if r > 0 && k < 1 {
		k = 1
	}
	if k < e.MinWarm {
		k = e.MinWarm
	}
	if k > cfg.MaxWarmPerService {
		k = cfg.MaxWarmPerService
	}
	return k
}

// ReconcileAll reconciles every service's pool against its current
// target. Called after each placement decision; cheap for the handful
// of services an edge cluster hosts.
func (pm *PoolManager) ReconcileAll() { pm.reconcileAll(nil) }

// reconcileAll is ReconcileAll with a pinned replica: the placement the
// in-flight query was just answered with, which must survive this pass
// even if its pool shrank (the client's SYN for it is on the wire).
func (pm *PoolManager) reconcileAll(pinned *Placement) {
	for _, e := range pm.c.dir.Entries() {
		pm.reconcile(e, pinned)
	}
}

// Reconcile prewarms or reclaims replicas of e until ready+launching
// matches the target.
func (pm *PoolManager) Reconcile(e *Entry) { pm.reconcile(e, nil) }

// reconcile prewarms or reclaims replicas of e until ready+launching
// matches the target. Prewarms place via the service's own policy,
// skipping boards that already host a live replica; reclaims stop the
// highest-indexed ready replicas first (board 0 stays warm longest,
// since it also fields the DNS traffic), never touching pinned.
func (pm *PoolManager) reconcile(e *Entry, pinned *Placement) {
	if e.moved {
		// The service now lives on another cluster; the draining replica
		// here is neither prewarmed nor reclaimed — its delayed
		// Unregister retires it.
		return
	}
	e.WarmTarget = pm.target(e)
	alive := 0
	for _, p := range e.Replicas {
		// A live migration is one replica, not two: the destination is
		// reserved until the switchover, the source drains afterwards,
		// and counting either extra would make the pool look
		// over-provisioned and reclaim a bystander.
		// Disk-resident replicas are not alive — they cannot serve until
		// promoted — so they neither satisfy the pool nor block a prewarm
		// (a prewarm onto one pages it back in at disk-restore cost).
		if p != nil && !p.gone && !p.draining && !p.reserved &&
			(p.Svc.State.Booted() || p.Svc.State == core.StateLaunching) {
			alive++
		}
	}
	for alive < e.WarmTarget {
		idx := e.Policy.Pick(pm.c.views(e, func(i int) bool {
			st := e.Replicas[i].Svc.State
			return st.Booted() || st == core.StateLaunching
		}))
		if idx < 0 {
			return // no capacity anywhere; try again on the next arrival
		}
		p := e.Replicas[idx]
		if !pm.c.Boards[idx].Jitsu.Summon(p.Svc, core.Summon{Via: TriggerWarmPool}).Served() {
			return
		}
		pm.Prewarms++
		alive++
	}
	if alive > e.WarmTarget {
		pm.shrink(e, pinned, &alive)
	}
}

// shrink takes the pool back down to target, least-recently-used
// replica first (ties broken toward the higher board index, so board 0
// — which also fields the DNS traffic — stays warm longest). Each
// victim is demoted to its board's disk tier when it has one; a
// diskless board or a full checkpoint store falls back to eviction.
func (pm *PoolManager) shrink(e *Entry, pinned *Placement, alive *int) {
	type victim struct {
		board int
		p     *Placement
	}
	var cands []victim
	for i, p := range e.Replicas {
		if p == nil || p.gone || p.migrating || p.reserved || p == pinned || !p.Svc.State.Booted() {
			continue
		}
		cands = append(cands, victim{board: i, p: p})
	}
	sort.Slice(cands, func(i, k int) bool {
		ai, ak := cands[i].p.Svc.LastActivity(), cands[k].p.Svc.LastActivity()
		if ai != ak {
			return ai < ak
		}
		return cands[i].board > cands[k].board
	})
	for _, v := range cands {
		if *alive <= e.WarmTarget {
			return
		}
		jit := pm.c.Boards[v.board].Jitsu
		switch err := jit.Demote(v.p.Svc); err {
		case nil:
			pm.Reclaims++
			pm.Demotions++
			*alive--
		case core.ErrNoDisk, core.ErrDiskFull:
			if jit.Evict(v.p.Svc) {
				pm.Reclaims++
				*alive--
			}
		}
	}
}
