package cluster

import (
	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/dns"
)

// clusterPlane adapts the whole cluster to api.ControlPlane: the same
// verbs a single board answers, but Register fans out replica slots,
// Activate routes through the placement scheduler, and Migrate actually
// moves state. cmd/jitsud and tests speak this surface instead of
// reaching into Cluster internals.
type clusterPlane struct {
	c *Cluster
}

// API exposes the cluster's control plane as the typed api surface.
func (c *Cluster) API() api.ControlPlane { return &clusterPlane{c: c} }

// boardAPI is the per-board control plane the cluster's own management
// paths (migration) speak.
func (c *Cluster) boardAPI(id int) api.ControlPlane { return c.apis[id] }

func (p *clusterPlane) Register(req api.RegisterRequest) api.RegisterResponse {
	if req.Config.Name == "" {
		return api.RegisterResponse{Err: api.Errf(api.VerbRegister, api.CodeBadRequest, "empty service name")}
	}
	var opts []ServiceOption
	if req.Policy != "" {
		pol := PolicyByName(req.Policy)
		if pol == nil {
			return api.RegisterResponse{Err: api.Errf(api.VerbRegister, api.CodeBadRequest, "unknown policy %q", req.Policy)}
		}
		opts = append(opts, WithServicePolicy(pol))
	}
	if req.MinWarm > 0 {
		opts = append(opts, WithMinWarm(req.MinWarm))
	}
	if p.c.dir.Lookup(req.Config.Name) != nil {
		return api.RegisterResponse{Err: api.Errf(api.VerbRegister, api.CodeConflict, "%s already registered", req.Config.Name)}
	}
	e := p.c.RegisterService(req.Config, opts...)
	return api.RegisterResponse{Name: e.Name}
}

func (p *clusterPlane) Activate(req api.ActivateRequest) api.ActivateResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil || e.moved {
		if cid, ok := p.c.movedTo[dns.CanonicalName(req.Name)]; ok {
			return api.ActivateResponse{Err: api.Errf(api.VerbActivate, api.CodeMoved, "%s moved to cluster %d", req.Name, cid)}
		}
		return api.ActivateResponse{Err: api.Errf(api.VerbActivate, api.CodeNotFound, "%s", req.Name)}
	}
	if req.Speculative {
		// A prewarm: boot a stopped replica where the policy likes,
		// without client-driven accounting.
		idx := e.Policy.Pick(p.c.views(e, func(i int) bool {
			st := e.Replicas[i].Svc.State
			return st.Booted() || st == core.StateLaunching
		}))
		if idx < 0 {
			if ready := e.ready(); len(ready) > 0 {
				// Nothing to prewarm because the service is already
				// warm: that is success, not resource exhaustion.
				pl := ready[0]
				if req.OnReady != nil {
					req.OnReady(nil)
				}
				return api.ActivateResponse{IP: pl.Svc.Cfg.IP, Board: pl.Board, State: pl.Svc.State}
			}
			return api.ActivateResponse{Err: api.Errf(api.VerbActivate, api.CodeNoMemory, "%s: no board can prewarm", req.Name)}
		}
		pl := e.Replicas[idx]
		if !p.c.Boards[idx].Jitsu.Summon(pl.Svc,
			core.Summon{Via: core.TriggerControl, OnReady: req.OnReady}).Served() {
			return api.ActivateResponse{Err: api.Errf(api.VerbActivate, api.CodeNoMemory, "%s: prewarm refused", req.Name)}
		}
		return api.ActivateResponse{IP: pl.Svc.Cfg.IP, Board: idx, State: pl.Svc.State}
	}
	// Client-driven: exactly the scheduler path a DNS arrival takes,
	// minus the wire — the arrival feeds the rate estimator and the
	// chosen replica is pinned against the next pool reconcile.
	pl, _ := p.c.schedule(e, TriggerCluster, req.OnReady)
	if pl == nil {
		return api.ActivateResponse{Err: api.Errf(api.VerbActivate, api.CodeNoMemory, "%s: no board can take it", req.Name)}
	}
	return api.ActivateResponse{IP: pl.Svc.Cfg.IP, Board: pl.Board, State: pl.Svc.State}
}

func (p *clusterPlane) Checkpoint(req api.CheckpointRequest) api.CheckpointResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil {
		return api.CheckpointResponse{Err: api.Errf(api.VerbCheckpoint, api.CodeNotFound, "%s", req.Name)}
	}
	// A booted replica captures live state; failing that, a disk-resident
	// one hands back its stored checkpoint without paging in.
	pl := p.c.readyReplica(e, req.Board)
	if pl == nil {
		pl = p.c.diskReplica(e, req.Board)
	}
	if pl == nil {
		return api.CheckpointResponse{Err: api.Errf(api.VerbCheckpoint, api.CodeConflict, "%s has no replica with state", req.Name)}
	}
	resp := p.c.boardAPI(pl.Board).Checkpoint(api.CheckpointRequest{Name: req.Name})
	resp.Board = pl.Board
	return resp
}

func (p *clusterPlane) Restore(req api.RestoreRequest) api.RestoreResponse {
	board, ok := req.Board.ID()
	if !ok {
		return api.RestoreResponse{Err: api.Errf(api.VerbRestore, api.CodeBadRequest, "restore needs a target board (api.OnBoard)")}
	}
	if board < 0 || board >= len(p.c.members) {
		return api.RestoreResponse{Err: api.Errf(api.VerbRestore, api.CodeBadRequest, "board %d out of range", board)}
	}
	if !p.c.members[board].Placeable() {
		return api.RestoreResponse{Err: api.Errf(api.VerbRestore, api.CodeUnavailable, "board %d not placeable", board)}
	}
	return p.c.boardAPI(board).Restore(req)
}

func (p *clusterPlane) Migrate(req api.MigrateRequest) api.MigrateResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil {
		return api.MigrateResponse{Err: api.Errf(api.VerbMigrate, api.CodeNotFound, "%s", req.Name)}
	}
	src := p.c.readyReplica(e, req.From)
	if src == nil || src.migrating {
		return api.MigrateResponse{Err: api.Errf(api.VerbMigrate, api.CodeConflict, "%s has no movable replica", req.Name)}
	}
	done := req.OnDone
	if done == nil {
		done = func(bool) {}
	}
	to, pinned := req.To.ID()
	if !pinned {
		to = p.c.pickDest(e, src)
		if to < 0 {
			return api.MigrateResponse{Err: api.Errf(api.VerbMigrate, api.CodeNoMemory, "%s: no destination fits", req.Name)}
		}
	} else {
		if to < 0 || to >= len(p.c.members) || !p.c.members[to].Placeable() {
			return api.MigrateResponse{Err: api.Errf(api.VerbMigrate, api.CodeBadRequest, "destination board %d unusable", to)}
		}
		dst := replicaOn(e, to)
		if dst == nil || dst.reserved || dst.Svc.State != core.StateCold {
			return api.MigrateResponse{Err: api.Errf(api.VerbMigrate, api.CodeConflict, "destination slot on board %d busy", to)}
		}
	}
	p.c.migrateTo(e, src, to, false, 1, done)
	return api.MigrateResponse{Started: true}
}

// Transfer is the receiving half of the federation transfer leg: adopt
// a service from another cluster, and when warm state rides along,
// restore it onto the board the service's policy picks. A failed warm
// restore rolls the registration back, so a botched transfer never
// leaves a second (cold) home competing with the still-serving source.
func (p *clusterPlane) Transfer(req api.TransferRequest) api.TransferResponse {
	if req.Config.Name == "" {
		return api.TransferResponse{Board: -1, Err: api.Errf(api.VerbTransfer, api.CodeBadRequest, "empty service name")}
	}
	if e := p.c.dir.Lookup(req.Config.Name); e != nil {
		if !e.moved {
			return api.TransferResponse{Board: -1, Err: api.Errf(api.VerbTransfer, api.CodeConflict, "%s already registered", req.Config.Name)}
		}
		// The service was shed away from here and its old replica is
		// still draining; a transfer back re-adopts it — cut the drain
		// short so the fresh registration owns the name.
		p.c.Unregister(e.Name)
	}
	var opts []ServiceOption
	if req.Policy != "" {
		pol := PolicyByName(req.Policy)
		if pol == nil {
			return api.TransferResponse{Board: -1, Err: api.Errf(api.VerbTransfer, api.CodeBadRequest, "unknown policy %q", req.Policy)}
		}
		opts = append(opts, WithServicePolicy(pol))
	}
	if req.MinWarm > 0 {
		opts = append(opts, WithMinWarm(req.MinWarm))
	}
	e := p.c.RegisterService(req.Config, opts...)
	if req.Checkpoint == nil {
		if req.OnReady != nil {
			req.OnReady(nil)
		}
		return api.TransferResponse{Board: -1}
	}
	idx := e.Policy.Pick(p.c.views(e, nil))
	if idx < 0 {
		p.c.Unregister(e.Name)
		return api.TransferResponse{Board: -1, Err: api.Errf(api.VerbTransfer, api.CodeNoMemory, "%s: no board can restore it", req.Config.Name)}
	}
	resp := p.c.boardAPI(idx).Restore(api.RestoreRequest{
		Name: e.Name, Checkpoint: req.Checkpoint, Board: api.OnBoard(idx),
		ToDisk: req.ToDisk, OnReady: req.OnReady,
	})
	if resp.Err != nil && req.ToDisk {
		// The picked board can't park it on disk (diskless, or its store
		// is full); adopt it warm instead of bouncing the transfer.
		resp = p.c.boardAPI(idx).Restore(api.RestoreRequest{
			Name: e.Name, Checkpoint: req.Checkpoint, Board: api.OnBoard(idx), OnReady: req.OnReady,
		})
	}
	if resp.Err != nil {
		p.c.Unregister(e.Name)
		return api.TransferResponse{Board: -1, Err: resp.Err}
	}
	return api.TransferResponse{Board: idx}
}

func (p *clusterPlane) Stop(req api.StopRequest) api.StopResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil {
		return api.StopResponse{Err: api.Errf(api.VerbStop, api.CodeNotFound, "%s", req.Name)}
	}
	stopped := 0
	for _, pl := range append(e.ready(), e.onDisk()...) {
		if p.c.Boards[pl.Board].Jitsu.Evict(pl.Svc) {
			stopped++
		}
	}
	return api.StopResponse{Stopped: stopped}
}

// Demote parks booted replicas of a service on their boards' disk tier:
// every booted replica under AnyBoard, just one under a board selector.
func (p *clusterPlane) Demote(req api.DemoteRequest) api.DemoteResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil {
		return api.DemoteResponse{Err: api.Errf(api.VerbDemote, api.CodeNotFound, "%s", req.Name)}
	}
	if board, ok := req.Board.ID(); ok {
		if pl := p.c.readyReplica(e, req.Board); pl == nil || pl.migrating {
			return api.DemoteResponse{Err: api.Errf(api.VerbDemote, api.CodeConflict, "%s has no booted replica on board %d", req.Name, board)}
		}
		return p.c.boardAPI(board).Demote(api.DemoteRequest{Name: req.Name})
	}
	demoted := 0
	var firstErr *api.Error
	for _, pl := range e.ready() {
		if pl.migrating || pl.reserved {
			continue
		}
		resp := p.c.boardAPI(pl.Board).Demote(api.DemoteRequest{Name: req.Name})
		if resp.Err == nil {
			demoted += resp.Demoted
		} else if firstErr == nil {
			firstErr = resp.Err
		}
	}
	if demoted == 0 {
		if firstErr != nil {
			return api.DemoteResponse{Err: firstErr}
		}
		return api.DemoteResponse{Err: api.Errf(api.VerbDemote, api.CodeConflict, "%s has no booted replica", req.Name)}
	}
	return api.DemoteResponse{Demoted: demoted}
}

// Promote pages a disk-resident replica back into memory (warm, not
// running — the next client activation flips it). AnyBoard takes the
// first disk-resident replica in board order.
func (p *clusterPlane) Promote(req api.PromoteRequest) api.PromoteResponse {
	e := p.c.dir.Lookup(req.Name)
	if e == nil {
		return api.PromoteResponse{Board: -1, Err: api.Errf(api.VerbPromote, api.CodeNotFound, "%s", req.Name)}
	}
	pl := p.c.diskReplica(e, req.Board)
	if pl == nil {
		return api.PromoteResponse{Board: -1, Err: api.Errf(api.VerbPromote, api.CodeConflict, "%s has no disk-resident replica", req.Name)}
	}
	resp := p.c.boardAPI(pl.Board).Promote(api.PromoteRequest{Name: req.Name, OnReady: req.OnReady})
	if resp.Err != nil {
		return resp
	}
	resp.Board = pl.Board
	return resp
}

func (p *clusterPlane) Stats(api.StatsRequest) api.StatsResponse {
	var resp api.StatsResponse
	for _, t := range p.c.ServiceTotals() {
		// The aggregate row reports the hottest tier any replica occupies.
		state := core.StateCold
		switch {
		case t.Ready > 0:
			state = core.StateRunning
		case t.OnDisk > 0:
			state = core.StateColdDisk
		}
		resp.Services = append(resp.Services, api.ServiceStats{
			Name: t.Name, State: state,
			Launches: t.Launches, ColdStarts: t.ColdStarts,
			Handoffs: t.Handoffs, ServFails: t.ServFails,
			Reaps: t.Reaps, Restores: t.Restores,
			DiskRestores: t.DiskRestores, Demotions: t.Demotions,
		})
	}
	fired := map[string]uint64{}
	for _, m := range p.c.members {
		for name, n := range m.Board.Jitsu.Activation().Fired() {
			fired[name] += n
		}
	}
	resp.Triggers = api.TriggerStatsFromFired(fired)
	// Cluster-tier registry first, then one per board in board order.
	resp.Registries = append(resp.Registries, p.c.Reg.Snapshot())
	for _, m := range p.c.members {
		resp.Registries = append(resp.Registries, m.Board.Reg.Snapshot())
	}
	return resp
}

func (p *clusterPlane) WatchStats(req api.WatchStatsRequest) api.WatchStatsResponse {
	return api.StreamStats(p.c.eng, req, p.Stats)
}

// readyReplica finds e's booted replica per the selector (AnyBoard = the
// first booted one in board order).
func (c *Cluster) readyReplica(e *Entry, sel api.BoardSel) *Placement {
	if board, ok := sel.ID(); ok {
		pl := replicaOn(e, board)
		if pl == nil || pl.draining || !pl.Svc.State.Booted() {
			return nil
		}
		return pl
	}
	ready := e.ready()
	if len(ready) == 0 {
		return nil
	}
	return ready[0]
}

// diskReplica finds e's disk-resident replica per the selector (AnyBoard
// = the first one in board order).
func (c *Cluster) diskReplica(e *Entry, sel api.BoardSel) *Placement {
	if board, ok := sel.ID(); ok {
		pl := replicaOn(e, board)
		if pl == nil || pl.draining || pl.Svc.State != core.StateColdDisk {
			return nil
		}
		return pl
	}
	if disk := e.onDisk(); len(disk) > 0 {
		return disk[0]
	}
	return nil
}
