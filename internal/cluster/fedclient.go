package cluster

import (
	"errors"
	"fmt"

	"jitsu/internal/dns"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// ErrFederationFull is returned when no cluster in the federation could
// take the query (the root's SERVFAIL, after any spill attempt).
var ErrFederationFull = errors.New("cluster: no cluster can take the service")

// FedClient resolves names at the federation root and fetches from
// whichever cluster/board the answer names. The answer address encodes
// the owner — second octet the cluster, third the board — so one
// resolution tells the client exactly where to connect; per-cluster
// fetch attachments are created lazily on first use.
type FedClient struct {
	f     *Federation
	name  string
	ip    netstack.IP
	front *netstack.Host
	sub   []*Client // per-cluster attachments, indexed by cluster id

	// Retry, when non-zero, hardens the root resolution against a lossy
	// front network (zero value = single datagram, the ablation).
	Retry dns.RetryPolicy
	// ServFails counts federation-wide refusals observed by this
	// client; NXDomains counts lookups of names no cluster owns;
	// DNSRetries the root-query retransmits paid.
	ServFails  uint64
	NXDomains  uint64
	DNSRetries uint64
}

// NewClient attaches a client to the federation's front network.
func (f *Federation) NewClient(name string, ip netstack.IP) *FedClient {
	fc := &FedClient{f: f, name: name, ip: ip, sub: make([]*Client, len(f.members))}
	nic := netsim.NewNIC(f.eng, name+"-front", netsim.MACFor(0xB300+len(f.clients)))
	f.front.ConnectNIC(nic, f.Cfg.Cluster.Board.ExtLatency, f.Cfg.Cluster.Board.ExtBitsPerSec)
	fc.front = netstack.NewHost(f.eng, name+"-front", nic, ip, netstack.LinuxNativeProfile())
	f.clients = append(f.clients, fc)
	return fc
}

// cluster returns (building on first use) the client's attachment to
// member cid's boards.
func (fc *FedClient) cluster(cid int) *Client {
	for len(fc.sub) <= cid {
		fc.sub = append(fc.sub, nil)
	}
	if fc.sub[cid] == nil {
		fc.sub[cid] = fc.f.members[cid].Cluster.NewClient(fmt.Sprintf("%s-c%d", fc.name, cid), fc.ip)
	}
	return fc.sub[cid]
}

// Fetch resolves name at the federation root and fetches path from the
// cluster/board the delegated answer names. done reports the serving
// cluster and board (-1 on refusal or error).
func (fc *FedClient) Fetch(name, path string, timeout sim.Duration, done func(cluster, board int, resp *netstack.HTTPResponse, elapsed sim.Duration, err error)) {
	eng := fc.f.eng
	start := eng.Now()
	resolver := &dns.Client{Host: fc.front, Retry: fc.Retry}
	resolver.Query(FedRootAddr, name, dns.TypeA, timeout, func(m *dns.Message, _ sim.Duration, err error) {
		fc.DNSRetries += resolver.Retries
		if err != nil {
			done(-1, -1, nil, eng.Now()-start, err)
			return
		}
		if m.RCode == dns.RCodeServFail {
			fc.ServFails++
			done(-1, -1, nil, eng.Now()-start, ErrFederationFull)
			return
		}
		if m.RCode == dns.RCodeNXDomain {
			fc.NXDomains++
			done(-1, -1, nil, eng.Now()-start, fmt.Errorf("cluster: fed dns %v", m.RCode))
			return
		}
		if m.RCode != dns.RCodeNoError || len(m.Answers) == 0 {
			done(-1, -1, nil, eng.Now()-start, fmt.Errorf("cluster: fed dns %v", m.RCode))
			return
		}
		ip := m.Answers[0].A
		cid, board := int(ip[1])-10, int(ip[2])-100
		if cid < 0 || cid >= len(fc.f.members) || board < 0 {
			done(-1, -1, nil, eng.Now()-start, fmt.Errorf("cluster: unmappable answer %v", ip))
			return
		}
		remaining := timeout - (eng.Now() - start)
		if remaining <= 0 {
			done(-1, -1, nil, eng.Now()-start, netstack.ErrTimeout)
			return
		}
		fc.cluster(cid).Host(board).HTTPGet(ip, 80, path, remaining,
			func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
				done(cid, board, resp, eng.Now()-start, err)
			})
	})
}
