package cluster

import (
	"fmt"
	"sort"
	"time"

	"jitsu/internal/core"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/power"
	"jitsu/internal/sim"
)

// The membership layer is a SWIM-style gossip protocol running over a
// dedicated management network (one more netsim bridge): every board
// carries a gossip agent with its own local view, agents probe each
// other and piggyback membership deltas on every message, and the
// board-0 directory stays authoritative — it acts on *its* agent's view
// transitions (join/leave/suspect/confirm), exactly the split the
// MDS2-style directory literature argues for: membership churns in the
// gossip substrate while one summary view drives placement.

// MemberState is one board's position in the membership lifecycle.
type MemberState uint8

// Membership states. Joining is directory-local (the board exists but
// its join has not reached board 0); the rest travel in gossip updates.
const (
	MemberJoining MemberState = iota
	MemberAlive
	MemberSuspect
	MemberDead // confirmed failed (suspect timeout expired unrefuted)
	MemberLeft // left gracefully
)

func (s MemberState) String() string {
	switch s {
	case MemberJoining:
		return "joining"
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	default:
		return "left"
	}
}

// Member is one board as the directory sees it: the board itself plus
// its membership state. The State field is authoritative for placement —
// it is driven by board 0's gossip agent (and synchronously by graceful
// Leave), never written by the other agents' views.
type Member struct {
	ID    int
	Board *core.Board
	// Model is the board's power model (PowerAware placement).
	Model *power.Board
	// State is the directory's view of this member.
	State MemberState
	// Leaving marks a graceful departure in progress: warm replicas are
	// being migrated off and no new placements land here.
	Leaving bool

	agent *agent
	// baseDomains is the board's domain count before any guest ran.
	baseDomains int
}

// Placeable reports whether the scheduler may put new replicas here.
// Suspects keep serving their warm replicas (SWIM suspicion is often a
// dropped probe, not a dead board) but receive nothing new.
func (m *Member) Placeable() bool {
	return m.State == MemberAlive && !m.Leaving
}

// Gossip wire protocol: one UDP datagram per message on the management
// network, [type, fromID:2, seq:4, n, n×(id:2, state:1, inc:4)].
const (
	gossipPort = 7946

	msgPing      = 1 // probe; echoed as ack with the same seq
	msgAck       = 2
	msgJoin      = 3 // new member announcing itself to the seed (board 0)
	msgJoinReply = 4 // seed's full view back to the joiner
	msgGossip    = 5 // pure update carrier (leave blasts, refutations)
	// The SWIM indirection pair: a ping-req asks a relay to probe the
	// target on the origin's behalf (target id appended after the
	// updates block); the relay answers the origin with a ping-req-ack
	// carrying the origin's seq when its own probe is acked.
	msgPingReq    = 6
	msgPingReqAck = 7

	// maxPiggyback bounds updates per message; retransmits is each
	// rumor's dissemination budget (≈λ·log n for edge-sized clusters).
	maxPiggyback = 8
	retransmits  = 4
)

// mgmtIP is a member's address on the management network.
func mgmtIP(id int) netstack.IP { return netstack.IPv4(10, 255, 0, byte(10+id)) }

// gossipUpdate is one membership delta: member id moved to state at
// incarnation inc. Incarnations order rumors about the same member —
// only the member itself bumps its incarnation (to refute suspicion).
type gossipUpdate struct {
	ID    int
	State MemberState
	Inc   uint32
}

// memberInfo is one entry of an agent's local view.
type memberInfo struct {
	State MemberState
	Inc   uint32
}

// agent is one board's gossip participant.
type agent struct {
	c    *Cluster
	self int
	host *netstack.Host
	nic  *netsim.NIC
	// view is this agent's local membership map (includes self).
	view map[int]memberInfo
	// out is the rumor outbox: updates still owed piggyback retransmits.
	out []outboundUpdate
	// inc is the agent's own incarnation, bumped to refute suspicion.
	inc   uint32
	seq   uint32
	await map[uint32]int // outstanding ping seq -> probed member
	// relayed maps this agent's own ping seq (sent on behalf of another
	// member) to the ping-req origin it must answer.
	relayed map[uint32]relayRef
	probeEv sim.Event
	stopped bool
}

// relayRef remembers who asked for an indirect probe and under which of
// the origin's sequence numbers.
type relayRef struct {
	origin int
	seq    uint32
}

type outboundUpdate struct {
	u      gossipUpdate
	budget int
}

// newAgent wires a member onto the management network. The view starts
// empty; bootstrap (initial members) or join (later arrivals) fills it.
func newAgent(c *Cluster, m *Member) *agent {
	a := &agent{
		c: c, self: m.ID,
		view:    make(map[int]memberInfo),
		await:   make(map[uint32]int),
		relayed: make(map[uint32]relayRef),
		inc:     1,
	}
	a.nic = netsim.NewNIC(c.eng, fmt.Sprintf("mgmt%d", m.ID), netsim.MACFor(0xA000+m.ID))
	c.mgmt.ConnectNIC(a.nic, 50*time.Microsecond, c.Cfg.MgmtBitsPerSec)
	a.host = netstack.NewHost(c.eng, fmt.Sprintf("mgmt%d", m.ID), a.nic, mgmtIP(m.ID), netstack.Dom0Profile())
	if err := a.host.BindUDP(gossipPort, a.recv); err != nil {
		panic(fmt.Sprintf("cluster: gossip bind: %v", err))
	}
	if err := a.host.BindUDP(xferPort, a.recvXfer); err != nil {
		panic(fmt.Sprintf("cluster: xfer bind: %v", err))
	}
	return a
}

// bootstrap seeds the view with the construction-time member set: those
// boards know each other without a join round-trip.
func (a *agent) bootstrap(members []*Member) {
	for _, m := range members {
		a.view[m.ID] = memberInfo{State: MemberAlive, Inc: 1}
	}
}

// join announces this agent to the seed (board 0). The seed applies the
// Alive update, gossips it onward, and replies with its full view.
func (a *agent) join() {
	a.view[a.self] = memberInfo{State: MemberAlive, Inc: a.inc}
	a.send(0, msgJoin, 0, []gossipUpdate{{ID: a.self, State: MemberAlive, Inc: a.inc}})
}

// startProbing arms the periodic failure-detector tick. With
// Cfg.ProbeEvery == 0 the detector is passive (join/leave still gossip,
// but nothing keeps the event queue alive), which is what lets
// Engine.Run drain in the non-churn experiments.
func (a *agent) startProbing() {
	if a.c.Cfg.ProbeEvery <= 0 || a.stopped {
		return
	}
	a.probeEv = a.c.eng.After(a.c.Cfg.ProbeEvery, a.tick)
}

func (a *agent) stop() {
	a.stopped = true
	a.c.eng.Cancel(a.probeEv)
}

// tick probes one random live-or-suspect peer; no ack within
// ProbeTimeout marks it suspect in this agent's view.
func (a *agent) tick() {
	if a.stopped {
		return
	}
	defer a.startProbing()
	targets := a.probeCandidates()
	if len(targets) == 0 {
		return
	}
	t := targets[a.c.eng.Rand().Intn(len(targets))]
	seq := a.seq
	a.seq++
	a.await[seq] = t
	a.c.Probes++
	if tr := a.c.tracer(); tr != nil {
		tr.Instant(a.c.tidFor(a.self), "gossip", "probe", obs.Num("peer", int64(t)))
	}
	// A ping to a suspect always carries the suspicion, whatever the
	// piggyback budget — the target can only refute what it has heard.
	var extra []gossipUpdate
	if info := a.view[t]; info.State == MemberSuspect {
		extra = []gossipUpdate{{ID: t, State: MemberSuspect, Inc: info.Inc}}
	}
	a.send(t, msgPing, seq, extra)
	a.c.eng.After(a.c.Cfg.ProbeTimeout, func() {
		if a.stopped {
			return
		}
		id, ok := a.await[seq]
		if !ok {
			return
		}
		if a.indirectProbe(id, seq) {
			return
		}
		delete(a.await, seq)
		a.suspect(id)
	})
}

// indirectProbe runs the SWIM ping-req round: up to Cfg.IndirectProbes
// other members are asked to probe target on this agent's behalf; only
// if none of them answers within another ProbeTimeout does the target
// turn suspect. It reports false when indirection is disabled or no
// relay exists, in which case the caller suspects immediately.
func (a *agent) indirectProbe(target int, seq uint32) bool {
	k := a.c.Cfg.IndirectProbes
	if k <= 0 {
		return false
	}
	var relays []int
	for _, id := range a.probeCandidates() {
		if id != target {
			relays = append(relays, id)
		}
	}
	if len(relays) == 0 {
		return false
	}
	// Deterministic fan-out: shuffle with the engine RNG, take k.
	rng := a.c.eng.Rand()
	rng.Shuffle(len(relays), func(i, j int) { relays[i], relays[j] = relays[j], relays[i] })
	if len(relays) > k {
		relays = relays[:k]
	}
	tail := []byte{byte(target >> 8), byte(target)}
	for _, r := range relays {
		a.c.PingReqs++
		a.sendTail(r, msgPingReq, seq, nil, tail)
	}
	if tr := a.c.tracer(); tr != nil {
		tr.Instant(a.c.tidFor(a.self), "gossip", "ping-req",
			obs.Num("target", int64(target)), obs.Num("relays", int64(len(relays))))
	}
	a.c.eng.After(a.c.Cfg.ProbeTimeout, func() {
		if a.stopped {
			return
		}
		if id, ok := a.await[seq]; ok {
			delete(a.await, seq)
			a.suspect(id)
		}
	})
	return true
}

// probeCandidates returns the sorted ids this agent may probe: everyone
// it believes alive or suspect, except itself. Sorting keeps the RNG
// draw deterministic regardless of map iteration order.
func (a *agent) probeCandidates() []int {
	var out []int
	for id, info := range a.view {
		if id == a.self {
			continue
		}
		if info.State == MemberAlive || info.State == MemberSuspect {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// suspect starts the SWIM suspicion protocol for id in this view.
func (a *agent) suspect(id int) {
	info, ok := a.view[id]
	if !ok || info.State != MemberAlive {
		return
	}
	a.apply(gossipUpdate{ID: id, State: MemberSuspect, Inc: info.Inc})
}

// armConfirm schedules the suspect→confirm transition: if the suspicion
// at this incarnation is not refuted within SuspectTimeout, the member
// is declared dead.
func (a *agent) armConfirm(id int, inc uint32) {
	a.c.eng.After(a.c.Cfg.SuspectTimeout, func() {
		if a.stopped {
			return
		}
		if cur, ok := a.view[id]; ok && cur.State == MemberSuspect && cur.Inc == inc {
			a.apply(gossipUpdate{ID: id, State: MemberDead, Inc: inc})
		}
	})
}

// leave broadcasts this member's graceful departure to every peer it
// believes alive and stops participating. Called after the directory has
// migrated the member's warm replicas off.
func (a *agent) leave() {
	a.inc++
	if tr := a.c.tracer(); tr != nil {
		tr.Instant(a.c.tidFor(a.self), "gossip", "leave", obs.Num("inc", int64(a.inc)))
	}
	u := gossipUpdate{ID: a.self, State: MemberLeft, Inc: a.inc}
	a.view[a.self] = memberInfo{State: MemberLeft, Inc: a.inc}
	for _, id := range a.probeCandidates() {
		a.send(id, msgGossip, 0, []gossipUpdate{u})
	}
	a.stop()
}

// apply merges one update into the view per the SWIM rules: higher
// incarnations win, suspect beats alive at the same incarnation, dead
// and left are final, and rumors about self are refuted by bumping the
// incarnation. Accepted updates are re-gossiped, and — on the board-0
// agent only — reported to the directory.
func (a *agent) apply(u gossipUpdate) {
	if u.ID == a.self {
		if (u.State == MemberSuspect || u.State == MemberDead) && u.Inc >= a.inc {
			// Refute: I am alive, and I outrank the rumor now.
			a.inc = u.Inc + 1
			a.view[a.self] = memberInfo{State: MemberAlive, Inc: a.inc}
			a.enqueue(gossipUpdate{ID: a.self, State: MemberAlive, Inc: a.inc})
			a.c.Refutes++
			if tr := a.c.tracer(); tr != nil {
				tr.Instant(a.c.tidFor(a.self), "gossip", "refute", obs.Num("inc", int64(a.inc)))
			}
		}
		return
	}
	cur, known := a.view[u.ID]
	if known && (cur.State == MemberDead || cur.State == MemberLeft) {
		return // terminal states never un-happen
	}
	accept := false
	switch u.State {
	case MemberAlive:
		accept = !known || u.Inc > cur.Inc
	case MemberSuspect:
		accept = !known ||
			(cur.State == MemberAlive && u.Inc >= cur.Inc) ||
			(cur.State == MemberSuspect && u.Inc > cur.Inc)
	case MemberDead, MemberLeft:
		accept = true
	}
	if !accept {
		return
	}
	a.view[u.ID] = memberInfo{State: u.State, Inc: u.Inc}
	a.enqueue(u)
	if u.State == MemberSuspect {
		a.c.Suspects++
		if tr := a.c.tracer(); tr != nil {
			tr.Instant(a.c.tidFor(a.self), "gossip", "suspect",
				obs.Num("member", int64(u.ID)), obs.Num("inc", int64(u.Inc)))
		}
		a.armConfirm(u.ID, u.Inc)
	}
	if a.self == 0 {
		a.c.directoryObserve(u.ID, u.State)
	}
}

// enqueue adds a rumor to the piggyback outbox.
func (a *agent) enqueue(u gossipUpdate) {
	a.out = append(a.out, outboundUpdate{u: u, budget: retransmits})
}

// drain takes up to maxPiggyback rumors from the outbox (decrementing
// their budgets) and appends any caller-supplied updates.
func (a *agent) drain(extra []gossipUpdate) []gossipUpdate {
	ups := make([]gossipUpdate, 0, maxPiggyback+len(extra))
	keep := a.out[:0]
	for _, ou := range a.out {
		if len(ups) < maxPiggyback {
			ups = append(ups, ou.u)
			ou.budget--
		}
		if ou.budget > 0 {
			keep = append(keep, ou)
		}
	}
	a.out = keep
	return append(ups, extra...)
}

// send encodes and transmits one gossip message to member id.
func (a *agent) send(id int, typ byte, seq uint32, extra []gossipUpdate) {
	a.sendTail(id, typ, seq, extra, nil)
}

// sendTail is send with trailing message-specific bytes after the
// updates block (the ping-req target id).
func (a *agent) sendTail(id int, typ byte, seq uint32, extra []gossipUpdate, tail []byte) {
	ups := a.drain(extra)
	buf := make([]byte, 0, 8+7*len(ups)+len(tail))
	buf = append(buf, typ, byte(a.self>>8), byte(a.self),
		byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq), byte(len(ups)))
	for _, u := range ups {
		buf = append(buf, byte(u.ID>>8), byte(u.ID), byte(u.State),
			byte(u.Inc>>24), byte(u.Inc>>16), byte(u.Inc>>8), byte(u.Inc))
	}
	buf = append(buf, tail...)
	a.host.SendUDP(mgmtIP(id), gossipPort, gossipPort, buf)
}

// fullView renders the whole view as updates, sorted for determinism.
func (a *agent) fullView() []gossipUpdate {
	ids := make([]int, 0, len(a.view))
	for id := range a.view {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]gossipUpdate, 0, len(ids))
	for _, id := range ids {
		info := a.view[id]
		out = append(out, gossipUpdate{ID: id, State: info.State, Inc: info.Inc})
	}
	return out
}

// recv handles one gossip datagram: apply the piggybacked updates, then
// react to the message type.
func (a *agent) recv(_ netstack.IP, _ uint16, payload []byte) {
	if a.stopped || len(payload) < 8 {
		return
	}
	typ := payload[0]
	from := int(payload[1])<<8 | int(payload[2])
	seq := uint32(payload[3])<<24 | uint32(payload[4])<<16 | uint32(payload[5])<<8 | uint32(payload[6])
	n := int(payload[7])
	if len(payload) < 8+7*n {
		return
	}
	for i := 0; i < n; i++ {
		off := 8 + 7*i
		a.apply(gossipUpdate{
			ID:    int(payload[off])<<8 | int(payload[off+1]),
			State: MemberState(payload[off+2]),
			Inc: uint32(payload[off+3])<<24 | uint32(payload[off+4])<<16 |
				uint32(payload[off+5])<<8 | uint32(payload[off+6]),
		})
	}
	switch typ {
	case msgPing:
		a.send(from, msgAck, seq, nil)
	case msgAck:
		if id, ok := a.await[seq]; ok && id == from {
			delete(a.await, seq)
		}
		// An ack for a probe we relayed: forward it to the origin under
		// the origin's sequence number.
		if ref, ok := a.relayed[seq]; ok {
			delete(a.relayed, seq)
			a.send(ref.origin, msgPingReqAck, ref.seq, nil)
		}
	case msgPingReq:
		off := 8 + 7*n
		if len(payload) < off+2 {
			return
		}
		target := int(payload[off])<<8 | int(payload[off+1])
		if target == a.self {
			// Degenerate: we are the target; answer directly.
			a.send(from, msgPingReqAck, seq, nil)
			return
		}
		rseq := a.seq
		a.seq++
		a.relayed[rseq] = relayRef{origin: from, seq: seq}
		a.send(target, msgPing, rseq, nil)
		// Expire the relay slot so probes of dead members don't leak it.
		a.c.eng.After(a.c.Cfg.ProbeTimeout, func() { delete(a.relayed, rseq) })
	case msgPingReqAck:
		if _, ok := a.await[seq]; ok {
			delete(a.await, seq)
			a.c.IndirectAcks++
			if tr := a.c.tracer(); tr != nil {
				tr.Instant(a.c.tidFor(a.self), "gossip", "indirect-ack", obs.Num("relay", int64(from)))
			}
		}
	case msgJoin:
		a.send(from, msgJoinReply, 0, a.fullView())
	}
}

// ---- directory side ----

// directoryObserve is invoked by board 0's agent whenever its view
// changes: the single point where gossip becomes placement truth.
func (c *Cluster) directoryObserve(id int, s MemberState) {
	if id >= len(c.members) {
		return
	}
	m := c.members[id]
	switch s {
	case MemberAlive:
		if m.Leaving || m.State == MemberDead || m.State == MemberLeft {
			return
		}
		if m.State == MemberJoining {
			m.State = MemberAlive
			c.Joins++
			// A board arrived: placement answers may change, so no cached
			// DNS answer survives, and the pools may spread onto it.
			c.front().DNS.BumpEpoch()
			c.Pools.ReconcileAll()
		} else if m.State == MemberSuspect {
			m.State = MemberAlive // refuted
		}
	case MemberSuspect:
		if m.State == MemberAlive {
			m.State = MemberSuspect
		}
	case MemberDead:
		if m.State == MemberDead || m.State == MemberLeft {
			return
		}
		m.State = MemberDead
		c.Confirms++
		if tr := c.tracer(); tr != nil {
			tr.Instant(c.tidFor(0), "gossip", "confirm", obs.Num("member", int64(id)))
		}
		c.deregisterBoard(id)
	case MemberLeft:
		if m.State == MemberLeft || m.State == MemberDead {
			return
		}
		m.State = MemberLeft
		c.deregisterBoard(id)
	}
}

// deregisterBoard retires every replica slot on a departed board: live
// replicas are counted lost (graceful leaves already migrated or stopped
// them), the board's local directory drops the registrations (bumping
// its DNS epoch), and the cluster's answer state moves too. Idempotent.
func (c *Cluster) deregisterBoard(id int) {
	m := c.members[id]
	for _, e := range c.dir.Entries() {
		p := replicaOn(e, id)
		if p == nil || p.gone {
			continue
		}
		if p.Svc.State.Resident() {
			c.Lost++
		}
		m.Board.Jitsu.Deregister(p.Svc)
		p.gone = true
		delete(c.dir.byIP, p.Svc.Cfg.IP)
	}
	c.front().DNS.BumpEpoch()
	c.Pools.ReconcileAll()
}

// Members reports the directory's membership view, ordered by board id.
func (c *Cluster) Members() []*Member { return c.members }

// MgmtLink returns board id's uplink to the management bridge — the
// interposition point hostile-network scenarios impair or partition.
// The board's NIC sits at the link's A end, so ImpairAtoB/PartitionAtoB
// affect what the board transmits (gossip acks, checkpoint chunks) and
// the BtoA direction what it hears.
func (c *Cluster) MgmtLink(id int) *netsim.Link {
	return c.members[id].agent.nic.Link()
}

// MgmtHost returns board id's management-plane endpoint — the host the
// gossip agent and checkpoint mover already share. A wire.Server bound
// here exposes the cluster control plane at mgmtIP(id) subject to the
// same link budget (and the same impairments) as every other
// management flow.
func (c *Cluster) MgmtHost(id int) *netstack.Host {
	return c.members[id].agent.host
}

// AttachMgmtHost connects a fresh operator endpoint to the management
// bridge at 10.255.0.lastOctet — the "remote console" a wire.Client
// dials the control plane from. Pick a lastOctet outside the board
// range (boards own 10+id).
func (c *Cluster) AttachMgmtHost(name string, lastOctet byte) *netstack.Host {
	nic := netsim.NewNIC(c.eng, name, netsim.MACFor(0xC000+int(lastOctet)))
	c.mgmt.ConnectNIC(nic, 50*time.Microsecond, c.Cfg.MgmtBitsPerSec)
	return netstack.NewHost(c.eng, name, nic, netstack.IPv4(10, 255, 0, lastOctet), netstack.Dom0Profile())
}

// StopMembership quiesces every gossip agent (probe timers cancelled) so
// Engine.Run can drain — used at the end of churn runs and by jitsud
// once its trace completes.
func (c *Cluster) StopMembership() {
	for _, m := range c.members {
		m.agent.stop()
	}
}
