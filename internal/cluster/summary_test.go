package cluster

import (
	"bytes"
	"testing"
)

func sampleSummary() Summary {
	s := Summary{
		Cluster: 3, Epoch: 0x1122334455667788,
		Services: 12, Ready: 7, FreeMiB: 512, CapMiB: 3072, LoadMilli: 4250,
	}
	s.Bloom.Add("alice.family.name")
	s.Bloom.Add("bob.family.name")
	return s
}

// TestSummaryCodecRoundTrip pins the wire layout: encode -> decode must
// reproduce every field, bloom bits included.
func TestSummaryCodecRoundTrip(t *testing.T) {
	s := sampleSummary()
	wire := EncodeSummary(s, nil)
	if len(wire) != summaryWireLen {
		t.Fatalf("encoded length = %d, want %d", len(wire), summaryWireLen)
	}
	got, err := DecodeSummary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	if !got.Bloom.MayContain("alice.family.name") || !got.Bloom.MayContain("bob.family.name") {
		t.Error("bloom membership lost in round trip")
	}
	if got.Bloom.MayContain("zed.family.name") {
		t.Error("bloom false positive on a 2-entry filter (hash layout broke?)")
	}
}

// TestSummaryCodecRejects pins the error paths: short, long, and
// wrong-version datagrams must not decode.
func TestSummaryCodecRejects(t *testing.T) {
	wire := EncodeSummary(sampleSummary(), nil)
	for _, bad := range [][]byte{
		nil,
		wire[:len(wire)-1],
		append(append([]byte{}, wire...), 0),
		append([]byte{99}, wire[1:]...),
	} {
		if _, err := DecodeSummary(bad); err == nil {
			t.Errorf("decode of %d-byte corrupted summary succeeded", len(bad))
		}
	}
}

// FuzzSummaryTable fuzzes the root-directory summary codec: whatever
// decodes must re-encode to the identical bytes (the codec is
// fixed-layout, so decode -> encode is the identity on valid wire).
func FuzzSummaryTable(f *testing.F) {
	f.Add(EncodeSummary(sampleSummary(), nil))
	f.Add(EncodeSummary(Summary{}, nil))
	f.Add([]byte{summaryWireVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(data)
		if err != nil {
			return
		}
		wire := EncodeSummary(s, nil)
		if !bytes.Equal(wire, data) {
			t.Fatalf("decode->encode not identity:\n in  %x\n out %x", data, wire)
		}
		s2, err := DecodeSummary(wire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2 != s {
			t.Fatalf("re-decode mismatch: %+v vs %+v", s2, s)
		}
	})
}
