package cluster

import (
	"errors"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/blockdev"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/power"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

func testService(name string, lastOctet byte) core.ServiceConfig {
	return core.ServiceConfig{
		Name:  name + ".family.name",
		IP:    netstack.IPv4(10, 0, 0, lastOctet),
		Port:  80,
		Image: unikernel.UnikernelImage(name, unikernel.NewStaticSiteApp(name)),
	}
}

func testCluster(boards int) *Cluster {
	cfg := DefaultConfig()
	cfg.Boards = boards
	return build(cfg)
}

// ---- placement policies ----

func views(free ...int) []BoardView {
	out := make([]BoardView, len(free))
	for i, f := range free {
		out[i] = BoardView{Index: i, FreeMemMiB: f, NeedMiB: 16, Model: power.Cubieboard2()}
	}
	return out
}

func TestFirstFitPicksFirstWithRoom(t *testing.T) {
	p := FirstFit{}
	if got := p.Pick(views(8, 100, 200)); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := p.Pick(views(8, 4)); got != -1 {
		t.Fatalf("pick = %d, want -1 when nothing fits", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p := &RoundRobin{}
	v := views(100, 100, 100)
	seq := []int{p.Pick(v), p.Pick(v), p.Pick(v), p.Pick(v)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", seq, want)
		}
	}
	// Full boards are skipped.
	if got := p.Pick(views(4, 100, 4)); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestLeastLoadedPicksMostFree(t *testing.T) {
	if got := (LeastLoaded{}).Pick(views(50, 400, 100)); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestPowerAwarePrefersActiveBoards(t *testing.T) {
	v := views(400, 100)
	v[1].GuestDomains = 2 // board 1 is already awake
	if got := (PowerAware{}).Pick(v); got != 1 {
		t.Fatalf("pick = %d, want active board 1", got)
	}
	// All idle: waking is unavoidable, any fitting board will do — the
	// policy packs the tightest one so future placements consolidate.
	if got := (PowerAware{}).Pick(views(400, 100)); got != 1 {
		t.Fatalf("pick = %d, want tightest idle board 1", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"first-fit", "round-robin", "least-loaded", "power-aware"} {
		p := PolicyByName(name)
		if p == nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v", name, p)
		}
	}
	if PolicyByName("bogus") != nil {
		t.Fatal("unknown policy must return nil")
	}
}

func TestPerServicePolicySelection(t *testing.T) {
	c := testCluster(2)
	a := c.RegisterService(testService("alice", 20), WithServicePolicy(FirstFit{}))
	b := c.RegisterService(testService("bob", 21))
	if a.Policy.Name() != "first-fit" {
		t.Fatalf("alice policy = %s", a.Policy.Name())
	}
	if b.Policy.Name() != "least-loaded" {
		t.Fatalf("bob policy = %s (want the cluster default)", b.Policy.Name())
	}
}

// ---- scheduler: placed vs SERVFAIL ----

func TestClusterPlacesInsteadOfClientWalking(t *testing.T) {
	// Board 0 cannot host guests; the Fleet baseline would make the
	// client eat a SERVFAIL and retry board 1. The cluster directory
	// answers the one query with board 1's replica directly.
	c := testCluster(2)
	c.Boards[0].Hyp.TotalMemMiB = 8
	c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var servedBy, status int
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			servedBy, status = board, resp.Status
		})
	c.RunAll()
	if servedBy != 1 || status != 200 {
		t.Fatalf("served by board %d status %d, want board 1 / 200", servedBy, status)
	}
	if cl.ServFails != 0 || c.ServFails != 0 {
		t.Fatalf("servfails client=%d cluster=%d, want 0/0", cl.ServFails, c.ServFails)
	}
	if c.Placed != 1 {
		t.Fatalf("placed = %d, want 1", c.Placed)
	}
}

func TestClusterServFailWhenAllBoardsFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.Board.TotalMemMiB = 8
	c := build(cfg)
	c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var gotErr error
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			gotErr = err
		})
	c.RunAll()
	if !errors.Is(gotErr, ErrClusterFull) {
		t.Fatalf("err = %v, want ErrClusterFull", gotErr)
	}
	// One refusal, one query — no walking happened.
	if cl.ServFails != 1 || c.ServFails != 1 {
		t.Fatalf("servfails client=%d cluster=%d, want 1/1", cl.ServFails, c.ServFails)
	}
	totals := c.ServiceTotals()
	if len(totals) != 1 || totals[0].Refused != 1 {
		t.Fatalf("totals = %+v, want Refused=1", totals)
	}
}

func TestRepeatQueriesHitWarmReplica(t *testing.T) {
	c := testCluster(2)
	c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	fetch := func() sim.Duration {
		var rt sim.Duration
		cl.Fetch("alice.family.name", "/", 10*time.Second,
			func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
				if err != nil {
					t.Fatal(err)
				}
				rt = d
			})
		c.RunAll()
		return rt
	}
	cold := fetch()
	warm := fetch()
	if c.Placed != 1 || c.WarmHits != 1 {
		t.Fatalf("placed=%d warmhits=%d, want 1/1", c.Placed, c.WarmHits)
	}
	if warm >= cold {
		t.Fatalf("warm fetch (%v) not faster than cold (%v)", warm, cold)
	}
	if warm > 50*time.Millisecond {
		t.Fatalf("warm fetch took %v, want a few ms", warm)
	}
}

// ---- warm pools ----

func TestMinWarmPrebootsReplicas(t *testing.T) {
	c := testCluster(3)
	e := c.RegisterService(testService("alice", 20), WithMinWarm(2))
	c.RunAll() // let the prewarm boots complete
	ready := 0
	for _, p := range e.Replicas {
		if p.Svc.State.Booted() {
			ready++
		}
	}
	if ready != 2 {
		t.Fatalf("ready replicas = %d, want 2", ready)
	}
	if c.Pools.Prewarms != 2 {
		t.Fatalf("prewarms = %d, want 2", c.Pools.Prewarms)
	}
	// A prewarmed service answers warm on the very first client query.
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var rt sim.Duration
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			rt = d
		})
	c.RunAll()
	if c.WarmHits != 1 {
		t.Fatalf("warm hits = %d, want 1 (no cold start)", c.WarmHits)
	}
	if rt > 50*time.Millisecond {
		t.Fatalf("first fetch took %v, want warm-path ms", rt)
	}
	// Prewarms are launches but not cold starts in the aggregate view.
	tot := c.ServiceTotals()[0]
	if tot.Launches != 2 || tot.ColdStarts != 0 {
		t.Fatalf("launches=%d coldstarts=%d, want 2/0", tot.Launches, tot.ColdStarts)
	}
}

func TestEWMATargetFollowsArrivalRate(t *testing.T) {
	c := testCluster(4)
	e := c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	// A steady 2/s arrival stream: the EWMA must settle near 2/s and the
	// pool must hold at least one warm replica.
	for i := 0; i < 20; i++ {
		at := sim.Duration(i) * 500 * time.Millisecond
		c.Eng().At(at, func() {
			cl.Fetch("alice.family.name", "/", 10*time.Second,
				func(int, *netstack.HTTPResponse, sim.Duration, error) {})
		})
	}
	c.RunAll()
	if e.Rate() < 1.0 || e.Rate() > 4.0 {
		t.Fatalf("EWMA rate = %.2f/s, want ≈2/s", e.Rate())
	}
	if e.WarmTarget < 1 {
		t.Fatalf("warm target = %d, want ≥1 while hot", e.WarmTarget)
	}
	ready := 0
	for _, p := range e.Replicas {
		if p.Svc.State.Booted() {
			ready++
		}
	}
	if ready < 1 {
		t.Fatal("no warm replica despite sustained traffic")
	}
}

func TestQuietServiceIsReclaimed(t *testing.T) {
	c := testCluster(2)
	e := c.RegisterService(testService("alice", 20), WithMinWarm(1))
	hot := c.RegisterService(testService("bob", 21))
	c.RunAll()

	// Drop alice's floor; she has no traffic, so her effective rate is 0
	// and the next reconcile (driven by bob's arrival) must reclaim her.
	e.MinWarm = 0
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	c.Eng().At(60*time.Second, func() {
		cl.Fetch("bob.family.name", "/", 10*time.Second,
			func(int, *netstack.HTTPResponse, sim.Duration, error) {})
	})
	c.RunAll()

	for _, p := range e.Replicas {
		if p.Svc.State != core.StateCold {
			t.Fatalf("alice replica on board %d still %v after reclaim", p.Board, p.Svc.State)
		}
	}
	if c.Pools.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", c.Pools.Reclaims)
	}
	tot := c.ServiceTotals()
	if tot[0].Reaps != 1 {
		t.Fatalf("alice reaps = %d, want 1", tot[0].Reaps)
	}
	_ = hot
}

func TestReclaimSparesJustPlacedReplica(t *testing.T) {
	// Two ready replicas but a pool target of 1: the reconcile pass that
	// follows a warm placement must reclaim the *other* replica, never
	// the one whose IP just went out in the DNS answer.
	c := testCluster(2)
	e := c.RegisterService(testService("alice", 20), WithMinWarm(2))
	c.RunAll() // both replicas ready
	e.MinWarm = 0
	e.rate = 0.05 // above MinRate: target decays to exactly 1
	e.arrivals = 1
	// Backdated so the query's EWMA update sees a ~20s gap (rate stays
	// ≈0.05/s) instead of a µs gap that would spike the target back up.
	e.lastArrival = c.Eng().Now() - 20*time.Second

	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var rt sim.Duration
	var servedBy int
	cl.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			servedBy, rt = board, d
		})
	c.RunAll()
	if c.WarmHits != 1 {
		t.Fatalf("warm hits = %d, want 1", c.WarmHits)
	}
	if rt > 50*time.Millisecond {
		t.Fatalf("fetch took %v: the answered replica was reclaimed mid-flight", rt)
	}
	if c.Pools.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1 (the spare replica)", c.Pools.Reclaims)
	}
	if !e.Replicas[servedBy].Svc.State.Booted() {
		t.Fatalf("serving replica on board %d is %v", servedBy, e.Replicas[servedBy].Svc.State)
	}
}

// ---- aggregation ----

func TestCounterAggregationAcrossBoards(t *testing.T) {
	c := testCluster(2)
	c.Boards[0].Hyp.TotalMemMiB = 8 // force placements onto board 1
	c.RegisterService(testService("alice", 20))
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	for i := 0; i < 3; i++ {
		cl.Fetch("alice.family.name", "/", 10*time.Second,
			func(int, *netstack.HTTPResponse, sim.Duration, error) {})
		c.RunAll()
	}
	tot := c.ServiceTotals()[0]
	if tot.Launches != 1 || tot.ColdStarts != 1 {
		t.Fatalf("launches=%d coldstarts=%d, want 1/1", tot.Launches, tot.ColdStarts)
	}
	if tot.Ready != 1 {
		t.Fatalf("ready = %d, want 1", tot.Ready)
	}
	tab := c.CounterTable()
	if len(tab.Rows) != 2 { // one service + TOTAL
		t.Fatalf("table rows = %d, want 2", len(tab.Rows))
	}
}

func TestReplicaIPsIdentifyBoards(t *testing.T) {
	c := testCluster(3)
	c.RegisterService(testService("alice", 20))
	for i := 0; i < 3; i++ {
		want := netstack.IPv4(10, 0, byte(100+i), 20)
		p, ok := c.Directory().byIP[want]
		if !ok || p.Board != i {
			t.Fatalf("replica IP %v not mapped to board %d", want, i)
		}
	}
}

func TestShrinkDiskFullFallsBackToEviction(t *testing.T) {
	// One board whose checkpoint store holds exactly one 4 MiB state:
	// the first reclaim demotes to disk, the second finds the store full
	// and must fall back to plain eviction rather than leak the replica.
	c := NewCluster(WithBoards(1), WithBoardOptions(core.WithDisk(blockdev.Config{
		SlotMiB: 4, Slots: 1,
		SeekTime: 6 * time.Millisecond, BytesPerSec: 40e6,
	})))
	ctl := c.API()
	ae := c.RegisterService(testService("alice", 20), WithMinWarm(1))
	c.RegisterService(testService("dave", 21))
	c.RegisterService(testService("carol", 22))
	c.RunAll() // alice prewarmed

	// Boot dave and park him on the single disk slot via the API verb.
	ctl.Activate(api.ActivateRequest{Name: "dave.family.name"})
	c.RunAll()
	if resp := ctl.Demote(api.DemoteRequest{Name: "dave.family.name"}); resp.Err != nil || resp.Demoted != 1 {
		t.Fatalf("demote dave -> %+v", resp)
	}
	c.RunAll()
	de := c.Directory().Lookup("dave.family.name")
	if de.Replicas[0].Svc.State != core.StateColdDisk {
		t.Fatalf("dave = %v, want cold-disk", de.Replicas[0].Svc.State)
	}
	demotionsBefore := c.Pools.Demotions

	// Drop alice's floor; carol's arrival drives the reconcile that
	// shrinks alice's pool. With the slot taken, the demotion returns
	// ErrDiskFull and the reclaim falls back to full eviction.
	ae.MinWarm = 0
	cl := c.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	c.Eng().At(60*time.Second, func() {
		cl.Fetch("carol.family.name", "/", 10*time.Second,
			func(int, *netstack.HTTPResponse, sim.Duration, error) {})
	})
	c.RunAll()

	if st := ae.Replicas[0].Svc.State; st != core.StateCold {
		t.Fatalf("alice = %v, want cold (evicted, not demoted)", st)
	}
	if c.Pools.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", c.Pools.Reclaims)
	}
	if c.Pools.Demotions != demotionsBefore {
		t.Fatalf("demotions moved %d -> %d; the full store must force eviction",
			demotionsBefore, c.Pools.Demotions)
	}
	// Dave's checkpoint survived the pressure untouched.
	if de.Replicas[0].Svc.State != core.StateColdDisk {
		t.Fatalf("dave = %v after reclaim, want cold-disk", de.Replicas[0].Svc.State)
	}
}
