package cluster

import (
	"testing"
	"time"

	"jitsu/internal/blockdev"
	"jitsu/internal/core"
	"jitsu/internal/netsim"
)

// ---- migration under hostile management networks ----

// hostileLeaveCluster is leaveCluster with fast transfer-retry knobs so
// the partition scenarios run in simulated seconds, not minutes.
func hostileLeaveCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.MigrateOnLeave = true
	cfg.MigrateChunkMiB = 4
	cfg.MigrateChunkRTO = 20 * time.Millisecond
	cfg.MigrateChunkRetries = 3
	cfg.MigrateRetryDelay = 500 * time.Millisecond
	cfg.MigrateMaxAttempts = 3
	c := build(cfg)
	c.RegisterService(testService("alice", 20), WithMinWarm(2))
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 1) == nil || !e.Replicas[1].Svc.State.Booted() {
		t.Fatal("test setup: no warm replica on board 1")
	}
	return c
}

func TestMigrationChunksAcknowledged(t *testing.T) {
	// Clean network: the pre-copy is a chunked exchange now — every
	// chunk datagram acked, none retransmitted.
	c := hostileLeaveCluster(t)
	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left || c.Migrations != 1 {
		t.Fatalf("left=%v migrations=%d", left, c.Migrations)
	}
	e := c.Directory().Lookup("alice.family.name")
	state := e.Base.StateMiB // checkpoint size, not full image memory
	wantChunks := uint64((state + 3) / 4)
	if c.Chunks != wantChunks {
		t.Fatalf("chunks = %d, want %d for a %d MiB checkpoint in 4 MiB chunks",
			c.Chunks, wantChunks, state)
	}
	if c.ChunkRetx != 0 || c.XferAborts != 0 {
		t.Fatalf("clean link saw retx=%d aborts=%d", c.ChunkRetx, c.XferAborts)
	}
}

func TestMigrationRetransmitsThroughLoss(t *testing.T) {
	// A lossy management uplink on the leaving board: chunks and acks
	// drop, the per-chunk retransmit recovers each one, and the replica
	// still arrives warm.
	c := hostileLeaveCluster(t)
	c.MgmtLink(1).Impair(netsim.Impairment{Loss: 0.2}, 31)

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left || c.Migrations != 1 || c.Lost != 0 {
		t.Fatalf("left=%v migrations=%d lost=%d, want true/1/0", left, c.Migrations, c.Lost)
	}
	if c.ChunkRetx == 0 {
		t.Fatal("20% loss produced no chunk retransmits")
	}
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 2) == nil || !e.Replicas[2].Svc.State.Booted() {
		t.Fatal("replica did not arrive warm on board 2")
	}
}

func TestMigrationLateAckAfterTimeoutSettlesWindowOnce(t *testing.T) {
	// Regression: link RTT far above the chunk RTO, no loss. Every
	// chunk's timer fires before its ack arrives, so the timeout path
	// returns the chunk's window (OnTimeout) and queues a re-Acquire —
	// and then the late ack lands while that re-Acquire is still
	// waiting. Exactly one of OnAck / the queued grant's Release may
	// settle the window: the old code let the ack call OnAck (a second
	// release) and the later grant retransmit the already-acked chunk,
	// leaking the granted bytes into the controller's in-flight account
	// forever and wedging every subsequent transfer on the uplink. The
	// 18 MiB state makes the last chunk 2 MiB, so the double release
	// clamps at zero instead of cancelling the leak arithmetically —
	// the leak survives to the end where the test can see it.
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.MigrateOnLeave = true
	cfg.MigrateChunkMiB = 4
	cfg.MigrateChunkRTO = 20 * time.Millisecond
	cfg.MigrateChunkRetries = 6
	cfg.MigrateRetryDelay = 500 * time.Millisecond
	cfg.MigrateMaxAttempts = 3
	c := build(cfg)
	svc := testService("alice", 20)
	svc.StateMiB = 18
	c.RegisterService(svc, WithMinWarm(2))
	c.RunAll()
	if e := c.Directory().Lookup("alice.family.name"); replicaOn(e, 1) == nil || !e.Replicas[1].Svc.State.Booted() {
		t.Fatal("test setup: no warm replica on board 1")
	}
	c.MgmtLink(1).Impair(netsim.Impairment{Latency: 30 * time.Millisecond}, 17)

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left || c.Migrations != 1 || c.Lost != 0 || c.XferAborts != 0 {
		t.Fatalf("left=%v migrations=%d lost=%d aborts=%d, want true/1/0/0",
			left, c.Migrations, c.Lost, c.XferAborts)
	}
	if c.ChunkRetx == 0 {
		t.Fatal("RTT above RTO produced no chunk timeouts — scenario not exercised")
	}
	// The transfer is long done: all granted window must be back and no
	// stale re-Acquire may still be queued on the source's controller.
	ctrl := c.ccs[1]
	if ctrl == nil {
		t.Fatal("no congestion controller built for board 1")
	}
	if ctrl.InFlight() != 0 || ctrl.QueueLen() != 0 {
		t.Fatalf("controller leaked: inflight=%d queued=%d, want 0/0",
			ctrl.InFlight(), ctrl.QueueLen())
	}
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 2) == nil || !e.Replicas[2].Svc.State.Booted() {
		t.Fatal("replica did not arrive warm on board 2")
	}
}

func TestMigrationAbortsAndReschedulesOnPartition(t *testing.T) {
	// The mgmt link partitions mid-transfer: the chunk exchange starves,
	// the transfer aborts, and the mandatory evacuation reschedules.
	// After the heal the retry completes and the replica still arrives
	// warm — one abort, one migration, nothing lost.
	c := hostileLeaveCluster(t)
	link := c.MgmtLink(1)

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	// Cut the link while the first chunks are in flight, heal after the
	// abort (retries exhaust in ~20+40+80+160 = 300ms) but before the
	// rescheduled attempt fires.
	c.eng.After(20*time.Millisecond, func() { link.Partition() })
	c.eng.After(700*time.Millisecond, func() { link.Heal() })
	c.RunAll()

	if c.XferAborts != 1 {
		t.Fatalf("xfer aborts = %d, want 1", c.XferAborts)
	}
	if !left || c.Migrations != 1 || c.Lost != 0 {
		t.Fatalf("left=%v migrations=%d lost=%d, want true/1/0", left, c.Migrations, c.Lost)
	}
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 2) == nil || !e.Replicas[2].Svc.State.Booted() {
		t.Fatal("replica did not arrive warm after the rescheduled attempt")
	}
	if e.Replicas[2].Svc.Restores != 1 {
		t.Fatalf("restores = %d, want 1", e.Replicas[2].Svc.Restores)
	}
}

func TestMigrationGivesUpAfterAttemptBudget(t *testing.T) {
	// Permanent partition: every attempt aborts; after the budget the
	// replica is written off (the preempt baseline) and the departure
	// still completes — a dead management path must not wedge Leave.
	c := hostileLeaveCluster(t)
	c.MgmtLink(1).Partition()

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left {
		t.Fatal("leave wedged on a partitioned management link")
	}
	if c.XferAborts != 3 {
		t.Fatalf("xfer aborts = %d, want MigrateMaxAttempts=3", c.XferAborts)
	}
	if c.Migrations != 0 || c.Lost != 1 {
		t.Fatalf("migrations=%d lost=%d, want 0/1", c.Migrations, c.Lost)
	}
	if m := c.members[1]; m.State != MemberLeft {
		t.Fatalf("member state = %v, want left", m.State)
	}
}

func TestMigrationParksCheckpointAfterAttemptBudget(t *testing.T) {
	// Same permanent partition as above, but the boards have disk tiers:
	// once the attempt budget is spent, the already-captured checkpoint
	// must be parked on a surviving board (the board API is in-process —
	// a wrecked management network cannot stop the hand-off) so the next
	// activation resumes it instead of cold-booting.
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.Board = core.DefaultConfig()
	cfg.Board.Disk = blockdev.DefaultConfig()
	cfg.MigrateOnLeave = true
	cfg.MigrateChunkMiB = 4
	cfg.MigrateChunkRTO = 20 * time.Millisecond
	cfg.MigrateChunkRetries = 3
	cfg.MigrateRetryDelay = 500 * time.Millisecond
	cfg.MigrateMaxAttempts = 3
	c := build(cfg)
	c.RegisterService(testService("alice", 20), WithMinWarm(2))
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if replicaOn(e, 1) == nil || !e.Replicas[1].Svc.State.Booted() {
		t.Fatal("test setup: no warm replica on board 1")
	}
	c.MgmtLink(1).Partition()

	left := false
	if err := c.Leave(1, func() { left = true }); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !left {
		t.Fatal("leave wedged on a partitioned management link")
	}
	if c.XferAborts != 3 {
		t.Fatalf("xfer aborts = %d, want MigrateMaxAttempts=3", c.XferAborts)
	}
	if c.Parks != 1 || c.Lost != 0 {
		t.Fatalf("parks=%d lost=%d, want 1/0 (checkpoint rescued)", c.Parks, c.Lost)
	}
	// The rescued state landed on a survivor and resumed from disk: the
	// warm-pool manager pages the parked checkpoint back in (one disk
	// restore), never a cold boot.
	resumed := false
	for i, p := range e.Replicas {
		if p == nil || i == 1 {
			continue
		}
		if p.Svc.ColdStarts != 0 {
			t.Fatalf("board %d cold-booted %d times, want 0", i, p.Svc.ColdStarts)
		}
		if p.Svc.DiskRestores == 1 || p.Svc.State == core.StateColdDisk {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no survivor resumed from the parked checkpoint")
	}
}
