package cluster

import (
	"time"

	"jitsu/internal/cc"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Checkpoint transfer: the migration pre-copy is a real windowed
// datagram exchange on the management network (port 7947). The
// checkpoint is cut into chunks; each chunk datagram carries only a
// header but occupies the shared management link for the chunk's full
// byte count (netstack.SendUDPBulk), so gossip probes and anything else
// on the same uplink queue behind the copy exactly as they would behind
// the real burst. How many chunks may be in flight at once is decided
// by the per-uplink congestion controller (internal/cc): every chunk
// acquires window before it transmits and returns it on ack, loss or
// timeout, so the copy paces itself to the link instead of blasting —
// the unpaced ablation (Config.UnpacedTransfers) puts every chunk on
// the wire immediately with the old fixed doubling RTO, which is
// exactly the bufferbloat that falsely suspects gossip peers on a
// throttled link. Lost chunks retransmit (bounded per chunk); a
// management-link partition exhausts the retries and fails the
// transfer, which the migration layer answers with abort — and, for
// mandatory evacuations, a bounded reschedule.
const (
	xferPort = 7947

	xferOpChunk = 1 // [op, id:4, idx:4, total:4] — sender -> receiver
	xferOpAck   = 2 // [op, id:4, idx:4]          — receiver -> sender
)

// xferChunk is one chunk's sender-side state. held tracks whether the
// chunk currently owns granted controller window: the controller's
// contract is that every grant is settled by exactly one of
// OnAck/OnTimeout/Release, and a chunk whose timer fired has already
// settled via OnTimeout while its re-Acquire waits in the queue — a
// late ack or a transfer failure in that gap must not settle again.
type xferChunk struct {
	mib    int
	tries  int
	sentAt sim.Duration
	sent   bool
	acked  bool
	held   bool
	timer  sim.Event
}

// xferSend is the sender side of one checkpoint copy.
type xferSend struct {
	c        *Cluster
	id       uint32
	src, dst int
	chunks   []xferChunk
	acked    int
	inflight int // unacked transmitted bytes (RTO serialisation allowance)
	ctrl     *cc.Controller
	done     func(ok bool)
	finished bool
}

// ccFor returns (building on first use) the congestion controller
// pacing board id's management uplink, or nil when the unpaced
// ablation is configured. Its live window/RTT state registers under
// cc.b<id>.* in the cluster registry.
func (c *Cluster) ccFor(id int) *cc.Controller {
	if c.Cfg.UnpacedTransfers {
		return nil
	}
	for len(c.ccs) <= id {
		c.ccs = append(c.ccs, nil)
	}
	if c.ccs[id] == nil {
		ctrl := cc.New(c.eng, cc.Config{
			MSS:     c.Cfg.MigrateChunkMiB << 20,
			RTOMin:  c.Cfg.MigrateChunkRTO,
			InitRTO: c.Cfg.MigrateChunkRTO,
			RTOMax:  64 * c.Cfg.MigrateChunkRTO,
		})
		ctrl.Register(c.Reg, fmt_ccPrefix(id))
		c.ccs[id] = ctrl
	}
	return c.ccs[id]
}

func fmt_ccPrefix(id int) string {
	return "cc.b" + itoa(id)
}

// copyCheckpoint streams cp from board src to board dst over the
// management network and reports success. The 500µs lead-in models
// checkpoint serialisation on the source before the first byte moves.
func (c *Cluster) copyCheckpoint(src, dst int, stateMiB int, done func(ok bool)) {
	chunk := c.Cfg.MigrateChunkMiB
	total := (stateMiB + chunk - 1) / chunk
	if total < 1 {
		total = 1
	}
	last := stateMiB - (total-1)*chunk
	if last <= 0 {
		last = chunk
	}
	c.nextXferID++
	s := &xferSend{c: c, id: c.nextXferID, src: src, dst: dst,
		chunks: make([]xferChunk, total), ctrl: c.ccFor(src), done: done}
	for i := range s.chunks {
		s.chunks[i].mib = chunk
	}
	s.chunks[total-1].mib = last
	c.xferSenders[s.id] = s
	c.eng.After(500*time.Microsecond, s.start)
}

// start puts the copy in motion: unpaced, every chunk transmits
// immediately; paced, each chunk queues on the uplink controller and
// transmits when the window grants it.
func (s *xferSend) start() {
	for i := range s.chunks {
		i := i
		if s.ctrl == nil {
			s.transmit(i)
			continue
		}
		bytes := s.chunks[i].mib << 20
		s.ctrl.Acquire(bytes, func() {
			if s.finished {
				s.ctrl.Release(bytes)
				return
			}
			s.chunks[i].held = true
			s.transmit(i)
		})
	}
}

// transmit sends chunk idx's header datagram — charged on the wire for
// the chunk's full byte count — and arms its retransmit timer.
func (s *xferSend) transmit(idx int) {
	if s.finished {
		return
	}
	cs := &s.chunks[idx]
	buf := []byte{xferOpChunk,
		byte(s.id >> 24), byte(s.id >> 16), byte(s.id >> 8), byte(s.id),
		byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx),
		byte(len(s.chunks) >> 24), byte(len(s.chunks) >> 16), byte(len(s.chunks) >> 8), byte(len(s.chunks))}
	s.c.Chunks++
	cs.tries++
	if !cs.sent {
		cs.sent = true
		cs.sentAt = s.c.eng.Now()
		s.inflight += cs.mib << 20
	}
	s.c.agentHost(s.src).SendUDPBulk(mgmtIP(s.dst), xferPort, xferPort, buf, cs.mib<<20)
	s.armTimer(idx)
}

// armTimer schedules chunk idx's retransmit: the controller's live RTO
// (or the fixed configured one, unpaced), doubled per retry of this
// chunk, plus a serialisation allowance for everything in flight ahead
// of it — the bytes occupy the shared link before the ack can exist.
func (s *xferSend) armTimer(idx int) {
	cs := &s.chunks[idx]
	rto := s.c.Cfg.MigrateChunkRTO
	if s.ctrl != nil {
		rto = s.ctrl.RTO()
	}
	for i := 1; i < cs.tries; i++ {
		rto *= 2
	}
	rto += sim.Duration(float64(s.inflight*8) / s.c.Cfg.MigrateBitsPerSec * float64(time.Second))
	cs.timer = s.c.eng.After(rto, func() {
		if s.finished || cs.acked {
			return
		}
		if cs.tries > s.c.Cfg.MigrateChunkRetries {
			s.fail()
			return
		}
		s.c.ChunkRetx++
		if tr := s.c.tracer(); tr != nil {
			tr.Instant(s.c.tidFor(s.src), "migrate", "chunk-retx",
				obs.Num("xfer", int64(s.id)), obs.Num("chunk", int64(idx)))
		}
		if s.ctrl != nil {
			// The timeout collapses the window; the retransmit re-queues
			// for its share of whatever is left. The chunk no longer
			// holds window until the re-grant fires — and if the ack
			// (or the whole transfer's fate) lands first, the grant
			// closure hands its bytes straight back.
			bytes := cs.mib << 20
			cs.held = false
			s.ctrl.OnTimeout(bytes)
			s.ctrl.Acquire(bytes, func() {
				if s.finished || cs.acked {
					s.ctrl.Release(bytes)
					return
				}
				cs.held = true
				s.transmit(idx)
			})
			return
		}
		s.transmit(idx)
	})
}

// onAck retires one chunk: its window returns to the controller (with
// an RTT sample when the chunk was never retransmitted — Karn's rule).
func (s *xferSend) onAck(idx int) {
	if s.finished || idx >= len(s.chunks) {
		return
	}
	cs := &s.chunks[idx]
	if !cs.sent || cs.acked {
		return // duplicate or stale ack
	}
	cs.acked = true
	s.c.eng.Cancel(cs.timer)
	bytes := cs.mib << 20
	s.inflight -= bytes
	if s.ctrl != nil && cs.held {
		// A chunk awaiting its post-timeout re-grant holds no window —
		// its queued grant settles itself when it fires.
		cs.held = false
		var rtt sim.Duration
		if cs.tries == 1 {
			rtt = s.c.eng.Now() - cs.sentAt
		}
		s.ctrl.OnAck(bytes, rtt)
	}
	s.acked++
	if s.acked == len(s.chunks) {
		s.finished = true
		delete(s.c.xferSenders, s.id)
		s.done(true)
	}
}

// fail abandons the transfer after a chunk exhausted its retries (the
// management path is gone): every outstanding chunk's window returns
// to the controller so concurrent copies on the same uplink keep
// moving.
func (s *xferSend) fail() {
	s.finished = true
	delete(s.c.xferSenders, s.id)
	for i := range s.chunks {
		cs := &s.chunks[i]
		if cs.timer != (sim.Event{}) {
			s.c.eng.Cancel(cs.timer)
		}
		if cs.held && s.ctrl != nil {
			// Only chunks currently holding window return it here;
			// queued grants (initial or post-timeout) see finished and
			// release their own bytes when they fire.
			cs.held = false
			s.ctrl.Release(cs.mib << 20)
		}
	}
	s.c.XferAborts++
	if tr := s.c.tracer(); tr != nil {
		tr.Instant(s.c.tidFor(s.src), "migrate", "xfer-abort",
			obs.Num("xfer", int64(s.id)), obs.Num("chunk", int64(s.acked)))
	}
	s.done(false)
}

// agentHost is board id's management-network endpoint.
func (c *Cluster) agentHost(id int) *netstack.Host { return c.members[id].agent.host }

// recvXfer handles transfer datagrams on one agent. The receiver keeps
// no per-transfer state: every chunk datagram is simply acknowledged
// (duplicates re-acknowledged — the previous ack may be the frame that
// was lost), and the sender decides completion.
func (a *agent) recvXfer(src netstack.IP, _ uint16, payload []byte) {
	if len(payload) < 9 {
		return
	}
	id := uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	idx := int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8])
	switch payload[0] {
	case xferOpChunk:
		ack := []byte{xferOpAck,
			byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id),
			byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx)}
		a.host.SendUDP(src, xferPort, xferPort, ack)
	case xferOpAck:
		if s, ok := a.c.xferSenders[id]; ok && s.src == a.self {
			s.onAck(idx)
		}
	}
}
