package cluster

import (
	"time"

	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Checkpoint transfer: the migration pre-copy is a real stop-and-wait
// datagram exchange on the management network (port 7947), not a single
// timed sleep. The checkpoint is cut into chunks; each chunk datagram
// carries only a header (the bulk payload is modeled as serialization
// delay at the sender, so a multi-MiB copy does not explode into
// thousands of simulated frames) and must be acknowledged before the
// next chunk goes out. Lost chunks or acks retransmit with exponential
// backoff; a management-link partition exhausts the retries and fails
// the transfer, which the migration layer answers with abort — and, for
// mandatory evacuations, a bounded reschedule.
const (
	xferPort = 7947

	xferOpChunk = 1 // [op, id:4, idx:4, total:4] — sender -> receiver
	xferOpAck   = 2 // [op, id:4, idx:4]          — receiver -> sender
)

// xferSend is the sender side of one checkpoint copy.
type xferSend struct {
	c        *Cluster
	id       uint32
	src, dst int
	next     int // chunk awaiting ack
	total    int
	lastMiB  int // size of the final (possibly partial) chunk
	tries    int // transmissions of the current chunk so far
	timer    sim.Event
	done     func(ok bool)
	finished bool
}

// copyCheckpoint streams cp from board src to board dst over the
// management network and reports success. The 500µs lead-in models
// checkpoint serialisation on the source before the first byte moves.
func (c *Cluster) copyCheckpoint(src, dst int, stateMiB int, done func(ok bool)) {
	chunk := c.Cfg.MigrateChunkMiB
	total := (stateMiB + chunk - 1) / chunk
	if total < 1 {
		total = 1
	}
	last := stateMiB - (total-1)*chunk
	if last <= 0 {
		last = chunk
	}
	c.nextXferID++
	s := &xferSend{c: c, id: c.nextXferID, src: src, dst: dst,
		total: total, lastMiB: last, done: done}
	c.xferSenders[s.id] = s
	c.eng.After(500*time.Microsecond, s.sendChunk)
}

// chunkMiB is the size of chunk idx.
func (s *xferSend) chunkMiB(idx int) int {
	if idx == s.total-1 {
		return s.lastMiB
	}
	return s.c.Cfg.MigrateChunkMiB
}

// sendChunk pays the current chunk's serialisation time, then puts its
// header datagram on the wire.
func (s *xferSend) sendChunk() {
	bits := float64(s.chunkMiB(s.next)) * 8 * 1024 * 1024
	ser := sim.Duration(bits / s.c.Cfg.MigrateBitsPerSec * float64(time.Second))
	s.c.eng.After(ser, s.transmit)
}

// transmit sends the current chunk's datagram and arms the retransmit
// timer. Retransmits skip the serialisation delay model — the bytes
// were already "sent" once; what is being recovered is the exchange.
func (s *xferSend) transmit() {
	if s.finished {
		return
	}
	buf := []byte{xferOpChunk,
		byte(s.id >> 24), byte(s.id >> 16), byte(s.id >> 8), byte(s.id),
		byte(s.next >> 24), byte(s.next >> 16), byte(s.next >> 8), byte(s.next),
		byte(s.total >> 24), byte(s.total >> 16), byte(s.total >> 8), byte(s.total)}
	s.c.Chunks++
	s.tries++
	s.c.agentHost(s.src).SendUDP(mgmtIP(s.dst), xferPort, xferPort, buf)
	rto := s.c.Cfg.MigrateChunkRTO
	for i := 1; i < s.tries; i++ {
		rto *= 2
	}
	s.timer = s.c.eng.After(rto, func() {
		if s.finished {
			return
		}
		if s.tries > s.c.Cfg.MigrateChunkRetries {
			s.fail()
			return
		}
		s.c.ChunkRetx++
		if tr := s.c.tracer(); tr != nil {
			tr.Instant(s.c.tidFor(s.src), "migrate", "chunk-retx",
				obs.Num("xfer", int64(s.id)), obs.Num("chunk", int64(s.next)))
		}
		s.transmit()
	})
}

// onAck advances the window: the awaited chunk was received.
func (s *xferSend) onAck(idx int) {
	if s.finished || idx != s.next {
		return // duplicate or stale ack
	}
	s.c.eng.Cancel(s.timer)
	s.next++
	s.tries = 0
	if s.next == s.total {
		s.finished = true
		delete(s.c.xferSenders, s.id)
		s.done(true)
		return
	}
	s.sendChunk()
}

// fail abandons the transfer after the current chunk exhausted its
// retries (the management path is gone).
func (s *xferSend) fail() {
	s.finished = true
	delete(s.c.xferSenders, s.id)
	s.c.XferAborts++
	if tr := s.c.tracer(); tr != nil {
		tr.Instant(s.c.tidFor(s.src), "migrate", "xfer-abort",
			obs.Num("xfer", int64(s.id)), obs.Num("chunk", int64(s.next)))
	}
	s.done(false)
}

// agentHost is board id's management-network endpoint.
func (c *Cluster) agentHost(id int) *netstack.Host { return c.members[id].agent.host }

// recvXfer handles transfer datagrams on one agent. The receiver keeps
// no per-transfer state: stop-and-wait means every chunk datagram is
// simply acknowledged (duplicates re-acknowledged — the previous ack
// may be the frame that was lost), and the sender decides completion.
func (a *agent) recvXfer(src netstack.IP, _ uint16, payload []byte) {
	if len(payload) < 9 {
		return
	}
	id := uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	idx := int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8])
	switch payload[0] {
	case xferOpChunk:
		ack := []byte{xferOpAck,
			byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id),
			byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx)}
		a.host.SendUDP(src, xferPort, xferPort, ack)
	case xferOpAck:
		if s, ok := a.c.xferSenders[id]; ok && s.src == a.self {
			s.onAck(idx)
		}
	}
}
