package cluster

import (
	"fmt"
	"testing"
	"time"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

func testFederation(clusters, boards int) *Federation {
	return NewFederation(
		WithClusters(clusters),
		WithMemberOptions(WithBoards(boards), WithSeed(42)),
	)
}

// fedFetch schedules one Fetch at virtual time at and records the
// outcome.
type fedOutcome struct {
	cluster, board int
	err            error
	done           bool
}

func fedFetch(f *Federation, fc *FedClient, at sim.Duration, name string) *fedOutcome {
	out := &fedOutcome{cluster: -2, board: -2}
	f.Eng().At(at, func() {
		fc.Fetch(name, "/", 20*time.Second, func(cluster, board int, _ *netstack.HTTPResponse, _ sim.Duration, err error) {
			out.cluster, out.board, out.err, out.done = cluster, board, err, true
		})
	})
	return out
}

// TestFederationResolutionTable walks the root's resolution states:
// summary-scan + delegation on first contact, delegation-cache hit on
// repeat, immediate negative from the summary table for unknown names,
// negative-cache hit on repeat, and epoch invalidation when a later
// registration makes a cached negative stale.
func TestFederationResolutionTable(t *testing.T) {
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	home, _ := f.RegisterService(testService("alice", 20))
	if home.ID != 0 {
		t.Fatalf("alice homed on cluster %d, want 0 (least-loaded tie breaks low)", home.ID)
	}

	first := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	repeat := fedFetch(f, fc, 2*time.Second, "alice.family.name")
	missA := fedFetch(f, fc, 3*time.Second, "ghost.family.name")
	missB := fedFetch(f, fc, 4*time.Second, "ghost.family.name")
	// Registering the name afterwards must invalidate the cached
	// negative via the summary epoch bump.
	f.Eng().At(5*time.Second, func() { f.RegisterService(testService("ghost", 21)) })
	late := fedFetch(f, fc, 6*time.Second, "ghost.family.name")
	f.RunAll()

	for i, out := range []*fedOutcome{first, repeat} {
		if !out.done || out.err != nil {
			t.Fatalf("fetch %d: done=%v err=%v", i, out.done, out.err)
		}
		if out.cluster != 0 {
			t.Errorf("fetch %d served by cluster %d, want 0", i, out.cluster)
		}
	}
	for i, out := range []*fedOutcome{missA, missB} {
		if !out.done || out.err == nil {
			t.Fatalf("miss %d: done=%v err=%v, want NXDomain error", i, out.done, out.err)
		}
	}
	if !late.done || late.err != nil {
		t.Fatalf("post-registration fetch: done=%v err=%v", late.done, late.err)
	}

	r := f.Root()
	if r.DelegHits == 0 {
		t.Error("repeat lookup did not hit the delegation cache")
	}
	if r.NegHits == 0 {
		t.Error("repeat miss did not hit the negative cache")
	}
	if r.NXDomains < 2 {
		t.Errorf("NXDomains = %d, want >= 2", r.NXDomains)
	}
	if fc.NXDomains != 2 {
		t.Errorf("client NXDomains = %d, want 2", fc.NXDomains)
	}
	if r.Delegations == 0 || r.Scans == 0 {
		t.Errorf("delegations=%d scans=%d, want both > 0", r.Delegations, r.Scans)
	}
}

// TestFederationRootStateScalesWithClusters is the acceptance assert:
// the root directory holds one summary row per cluster no matter how
// many services register — per-service rows live only in the owning
// cluster's directory.
func TestFederationRootStateScalesWithClusters(t *testing.T) {
	f := testFederation(3, 2)
	for i := 0; i < 30; i++ {
		f.RegisterService(testService(fmt.Sprintf("svc%02d", i), byte(20+i)))
	}
	if got := f.Root().StateSize; got != 3 {
		t.Fatalf("root state size = %d after 30 services, want 3 (one row per cluster)", got)
	}
	for i := 30; i < 60; i++ {
		f.RegisterService(testService(fmt.Sprintf("svc%02d", i), byte(20+i)))
	}
	if got := f.Root().StateSize; got != 3 {
		t.Fatalf("root state size = %d after 60 services, want 3", got)
	}
	// The per-cluster directories do grow — that is where the rows live.
	total := 0
	for _, m := range f.Members() {
		total += len(m.Cluster.Directory().Entries())
	}
	if total != 60 {
		t.Fatalf("member directories hold %d entries, want 60", total)
	}
}

// TestFederationCrossClusterMigration moves a warm replica between
// clusters through the Checkpoint -> Transfer leg and checks the
// switchover: the destination restores (not cold-boots), resolution
// redirects with epoch invalidation of the stale delegation, and the
// source drains away.
func TestFederationCrossClusterMigration(t *testing.T) {
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	_, e := f.RegisterService(testService("alice", 20))

	// Warm alice up on its home cluster (and prime the root's
	// delegation cache with home = cluster 0).
	warm := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	f.Eng().At(10*time.Second, func() {
		src := e.ready()
		if len(src) == 0 {
			t.Error("no ready replica to migrate")
			return
		}
		f.members[0].agent.transferOut(e, src[0], f.members[1])
	})
	after := fedFetch(f, fc, 20*time.Second, "alice.family.name")
	f.RunAll()

	if !warm.done || warm.err != nil || warm.cluster != 0 {
		t.Fatalf("pre-migration fetch: done=%v err=%v cluster=%d", warm.done, warm.err, warm.cluster)
	}
	if !after.done || after.err != nil {
		t.Fatalf("post-migration fetch: done=%v err=%v", after.done, after.err)
	}
	if after.cluster != 1 {
		t.Errorf("post-migration fetch served by cluster %d, want 1", after.cluster)
	}
	if f.CrossMigrations != 1 {
		t.Errorf("CrossMigrations = %d, want 1", f.CrossMigrations)
	}
	// The replica arrived warm: a restore, not a cold boot, on cluster 1.
	restores := uint64(0)
	for _, tot := range f.members[1].Cluster.ServiceTotals() {
		restores += tot.Restores
	}
	if restores != 1 {
		t.Errorf("destination restores = %d, want 1 (warm transfer)", restores)
	}
	// The source cluster forgot the service and redirects.
	if f.members[0].Cluster.Directory().Lookup("alice.family.name") != nil {
		t.Error("source cluster still lists the migrated service")
	}
	if cid, ok := f.members[0].Cluster.movedTo["alice.family.name"]; !ok || cid != 1 {
		t.Errorf("source movedTo = (%d,%v), want (1,true)", cid, ok)
	}
}

// TestFederationMidTransferClusterLeave kills the destination cluster
// while the checkpoint copy is in flight: the transfer aborts, nothing
// is lost, and the source keeps serving.
func TestFederationMidTransferClusterLeave(t *testing.T) {
	f := testFederation(3, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	_, e := f.RegisterService(testService("alice", 20))

	warm := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	f.Eng().At(10*time.Second, func() {
		src := e.ready()
		if len(src) == 0 {
			t.Error("no ready replica to migrate")
			return
		}
		f.members[0].agent.transferOut(e, src[0], f.members[1])
	})
	// The 16 MiB checkpoint takes ~134ms across the 1 Gb/s federation
	// link; remove the destination 10ms into the copy.
	f.Eng().At(10*time.Second+10*time.Millisecond, func() {
		if err := f.RemoveCluster(1); err != nil {
			t.Errorf("RemoveCluster: %v", err)
		}
	})
	after := fedFetch(f, fc, 12*time.Second, "alice.family.name")
	f.RunAll()

	if !warm.done || warm.err != nil {
		t.Fatalf("pre-migration fetch: done=%v err=%v", warm.done, warm.err)
	}
	if !after.done || after.err != nil {
		t.Fatalf("post-leave fetch: done=%v err=%v", after.done, after.err)
	}
	if after.cluster != 0 {
		t.Errorf("post-leave fetch served by cluster %d, want the untouched source 0", after.cluster)
	}
	if f.CrossMigrations != 0 {
		t.Errorf("CrossMigrations = %d, want 0 (transfer aborted)", f.CrossMigrations)
	}
	if f.CrossAborts != 1 {
		t.Errorf("CrossAborts = %d, want 1", f.CrossAborts)
	}
	if e.moved {
		t.Error("source entry marked moved despite the aborted transfer")
	}
	if len(e.ready()) == 0 {
		t.Error("source replica no longer ready after the aborted transfer")
	}
}

// TestFederationRemoveClusterMidResolution removes a member while a
// delegated query is still in flight to it: the root must fail the
// parked query over to the remaining candidates (or answer negative)
// instead of leaking the pending entry and letting the client ride out
// its full DNS timeout.
func TestFederationRemoveClusterMidResolution(t *testing.T) {
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	home, _ := f.RegisterService(testService("alice", 20))
	if home.ID != 0 {
		t.Fatalf("alice homed on %d, want 0", home.ID)
	}
	var elapsed sim.Duration
	done := false
	f.Eng().At(1*time.Second, func() {
		fc.Fetch("alice.family.name", "/", 30*time.Second,
			func(_, _ int, _ *netstack.HTTPResponse, d sim.Duration, err error) {
				elapsed, done = d, true
			})
	})
	// Land the removal inside the delegation round trip: the query takes
	// ~1.1ms to cross the front link and be delegated, and the agent's
	// reply another management round trip.
	f.Eng().At(1*time.Second+1200*time.Microsecond, func() {
		if err := f.RemoveCluster(0); err != nil {
			t.Errorf("RemoveCluster: %v", err)
		}
	})
	f.RunAll()
	if !done {
		t.Fatal("fetch never completed")
	}
	if f.Root().Delegations == 0 {
		t.Fatal("query was never delegated: the removal did not land mid-flight")
	}
	if elapsed >= 29*time.Second {
		t.Fatalf("fetch rode out the DNS timeout (%v): pending delegation leaked", elapsed)
	}
	if n := len(f.root.pending); n != 0 {
		t.Fatalf("root still holds %d pending delegations after the run", n)
	}
}

// TestFederationSpillOnRefuse exhausts a service's home cluster so the
// delegated query is refused, and checks the inter-cluster policy
// spills the service to a cluster with room — the client's query still
// succeeds, one cold start later.
func TestFederationSpillOnRefuse(t *testing.T) {
	f := NewFederation(
		WithClusters(2),
		WithMemberOptions(WithBoards(1), WithSeed(42), WithBoardOptions()),
	)
	// One board per cluster; two fat services homed on cluster 0 so the
	// second cannot fit once the first is resident.
	big := testService("alice", 20)
	big.Image.MemMiB = 500
	homeA, _ := f.RegisterService(big)
	big2 := testService("bob", 21)
	big2.Image.MemMiB = 500
	// placeHome now prefers cluster 1 (least loaded); force the
	// contended layout by registering directly on cluster 0.
	f.members[0].Cluster.RegisterService(f.namespaced(big2, 0))
	if homeA.ID != 0 {
		t.Fatalf("alice homed on %d, want 0", homeA.ID)
	}

	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	warmA := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	spilled := fedFetch(f, fc, 10*time.Second, "bob.family.name")
	f.RunAll()

	if !warmA.done || warmA.err != nil || warmA.cluster != 0 {
		t.Fatalf("alice fetch: done=%v err=%v cluster=%d", warmA.done, warmA.err, warmA.cluster)
	}
	if !spilled.done || spilled.err != nil {
		t.Fatalf("bob fetch after spill: done=%v err=%v", spilled.done, spilled.err)
	}
	if spilled.cluster != 1 {
		t.Errorf("bob served by cluster %d, want spilled to 1", spilled.cluster)
	}
	if f.Spills != 1 {
		t.Errorf("Spills = %d, want 1", f.Spills)
	}
	if f.members[0].Cluster.Directory().Lookup("bob.family.name") != nil {
		t.Error("refusing cluster still lists the spilled service")
	}
}

// TestFederationDelegationOffFastPath guards the zero-allocation DNS
// fast path on member boards: attaching the federation tier (whose root
// resolution is an async, allocating path by design) must not push
// allocations into a member board's per-query hot loop.
func TestFederationDelegationOffFastPath(t *testing.T) {
	f := testFederation(2, 2)
	_, e := f.RegisterService(testService("alice", 20))
	// Board 1 of cluster 0 serves its replica through the stock
	// dnsTrigger fast path (board 0 runs the cluster trigger, which is
	// slow-path by design).
	b := f.members[0].Cluster.Boards[1]
	svc := e.Replicas[1].Svc
	if err := b.Jitsu.Activate(svc, false, nil); err != nil {
		t.Fatal(err)
	}
	f.RunAll()
	q := &dns.Message{ID: 7, Questions: []dns.Question{
		{Name: svc.Cfg.Name, Type: dns.TypeA, Class: dns.ClassIN}}}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sink := func([]byte) {}
	b.DNS.ServeWire(wire, sink) // prime the answer cache
	allocs := testing.AllocsPerRun(200, func() {
		b.DNS.ServeWire(wire, sink)
	})
	if allocs != 0 {
		t.Fatalf("member-board fast path allocates %.1f per query under the federation", allocs)
	}
}

// TestFederationAddClusterRuntime grows the federation after
// construction: the new member must be delegated at the root, count as
// a placement target, and serve delegated queries like any
// construction-time cluster.
func TestFederationAddClusterRuntime(t *testing.T) {
	f := testFederation(1, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	home, _ := f.RegisterService(testService("alice", 20))
	if home.ID != 0 {
		t.Fatalf("alice homed on %d, want 0", home.ID)
	}
	m := f.AddCluster()
	if m.ID != 1 || len(f.Members()) != 2 {
		t.Fatalf("AddCluster: id=%d members=%d, want 1 and 2", m.ID, len(f.Members()))
	}
	// The next registration must home on the new, empty member.
	home2, _ := f.RegisterService(testService("bob", 21))
	if home2.ID != 1 {
		t.Fatalf("bob homed on %d, want the new cluster 1", home2.ID)
	}
	a := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	b := fedFetch(f, fc, 2*time.Second, "bob.family.name")
	f.RunAll()
	if !a.done || a.err != nil || a.cluster != 0 {
		t.Fatalf("alice fetch: done=%v err=%v cluster=%d, want cluster 0", a.done, a.err, a.cluster)
	}
	if !b.done || b.err != nil || b.cluster != 1 {
		t.Fatalf("bob fetch: done=%v err=%v cluster=%d, want the added cluster 1", b.done, b.err, b.cluster)
	}
}

// TestFederationRemoveClusterWarmRehome removes a member whose service
// has live state: the re-homing must carry a checkpoint so the
// survivor's activation resumes it (a restore — onto its disk tier
// when it has one, warm in memory when diskless) instead of
// cold-booting.
func TestFederationRemoveClusterWarmRehome(t *testing.T) {
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	home, _ := f.RegisterService(testService("alice", 20))
	if home.ID != 0 {
		t.Fatalf("alice homed on %d, want 0", home.ID)
	}
	warm := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	f.Eng().At(10*time.Second, func() {
		if err := f.RemoveCluster(0); err != nil {
			t.Errorf("RemoveCluster: %v", err)
		}
		if f.members[1].Cluster.Directory().Lookup("alice.family.name") == nil {
			t.Error("survivor does not hold the re-homed service")
		}
	})
	after := fedFetch(f, fc, 12*time.Second, "alice.family.name")
	f.RunAll()
	if !warm.done || warm.err != nil {
		t.Fatalf("pre-removal fetch: done=%v err=%v", warm.done, warm.err)
	}
	if !after.done || after.err != nil {
		t.Fatalf("post-removal fetch: done=%v err=%v", after.done, after.err)
	}
	if after.cluster != 1 {
		t.Fatalf("post-removal fetch served by cluster %d, want the survivor 1", after.cluster)
	}
	found := false
	for _, tot := range f.members[1].Cluster.ServiceTotals() {
		if tot.Name != "alice.family.name" {
			continue
		}
		found = true
		if tot.Restores+tot.DiskRestores == 0 {
			t.Errorf("survivor activation paid no restore: warm state did not move")
		}
		if tot.ColdStarts != 0 {
			t.Errorf("survivor cold-booted %d times, want 0 (warm re-homing)", tot.ColdStarts)
		}
	}
	if !found {
		t.Error("survivor has no totals row for the re-homed service")
	}
}

// TestFederationPacedTransferChunks: a skew shed's checkpoint copy is a
// real acknowledged chunk exchange on the federation management
// network, paced by the sending agent's congestion controller.
func TestFederationPacedTransferChunks(t *testing.T) {
	f := testFederation(2, 2)
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	_, e := f.RegisterService(testService("alice", 20))
	warm := fedFetch(f, fc, 1*time.Second, "alice.family.name")
	f.Eng().At(10*time.Second, func() {
		src := e.ready()
		if len(src) == 0 {
			t.Error("no ready replica to transfer")
			return
		}
		f.members[0].agent.transferOut(e, src[0], f.members[1])
	})
	f.RunAll()
	if !warm.done || warm.err != nil {
		t.Fatalf("warm fetch: done=%v err=%v", warm.done, warm.err)
	}
	if f.CrossMigrations != 1 {
		t.Fatalf("CrossMigrations = %d, want 1", f.CrossMigrations)
	}
	if f.FedChunks == 0 {
		t.Fatal("transfer sent no chunk datagrams: the copy bypassed the federation network")
	}
	if f.FedChunkRetx != 0 || f.FedXferAborts != 0 {
		t.Fatalf("clean-path transfer paid retx=%d aborts=%d, want 0/0", f.FedChunkRetx, f.FedXferAborts)
	}
	if f.members[0].agent.ctrl == nil {
		t.Fatal("sending agent never built its congestion controller")
	}
	if f.members[0].agent.ctrl.Acks == 0 {
		t.Fatal("controller saw no acks: chunks were not window-accounted")
	}
}
