package cluster

import "jitsu/internal/power"

// BoardView is the scheduler's summarized picture of one board — free
// memory, activity, and power model — refreshed at each decision.
type BoardView struct {
	Index int
	// FreeMemMiB is the board's unallocated guest memory.
	FreeMemMiB int
	// GuestDomains counts running guest domains (dom0 excluded).
	GuestDomains int
	// NeedMiB is the candidate image's memory requirement.
	NeedMiB int
	// Model is the board's power model (Table 1 calibration).
	Model *power.Board
}

// fits reports whether the candidate image fits on this board.
func (v BoardView) fits() bool { return v.FreeMemMiB >= v.NeedMiB }

// Policy picks the board to host a new replica. Pick returns an index
// into views, or -1 when no board can take the image. Policies are
// chosen per-ServiceConfig at registration.
type Policy interface {
	Name() string
	Pick(views []BoardView) int
}

// FirstFit walks boards in order and takes the first with room — the
// cheapest possible decision, and the one that most resembles the
// paper's client-side NS-walk (but decided server-side, in one query).
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Policy.
func (FirstFit) Pick(views []BoardView) int {
	for _, v := range views {
		if v.fits() {
			return v.Index
		}
	}
	return -1
}

// RoundRobin rotates placements across boards, spreading replicas for
// fault isolation at the cost of waking more boards.
type RoundRobin struct {
	cursor int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(views []BoardView) int {
	if len(views) == 0 {
		return -1
	}
	for i := 0; i < len(views); i++ {
		v := views[(p.cursor+i)%len(views)]
		if v.fits() {
			p.cursor = (p.cursor + i + 1) % len(views)
			return v.Index
		}
	}
	return -1
}

// LeastLoaded places on the board with the most free memory, the
// classic load-balancing choice that minimizes the chance any one board
// hits the §3.3.2 resource-exhaustion SERVFAIL.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(views []BoardView) int {
	best, bestFree := -1, -1
	for _, v := range views {
		if v.fits() && v.FreeMemMiB > bestFree {
			best, bestFree = v.Index, v.FreeMemMiB
		}
	}
	return best
}

// PowerAware minimizes marginal watts using the boards' Table 1 power
// models: an already-active board costs ~nothing extra to host one more
// unikernel, while waking an idle board pays its idle→active step. Among
// active boards it packs (least free memory that still fits) so idle
// boards can stay idle — the consolidation strategy that maximizes
// battery life on the paper's USB-powered deployments.
type PowerAware struct{}

// Name implements Policy.
func (PowerAware) Name() string { return "power-aware" }

// Pick implements Policy.
func (PowerAware) Pick(views []BoardView) int {
	best := -1
	bestCost := 0.0
	bestFree := 0
	for _, v := range views {
		if !v.fits() {
			continue
		}
		cost := 0.0
		if v.GuestDomains == 0 && v.Model != nil {
			// Waking this board: pay the idle→active step of its model.
			cost = v.Model.Power(nil, 1) - v.Model.Power(nil, 0)
		}
		switch {
		case best < 0, cost < bestCost:
			best, bestCost, bestFree = v.Index, cost, v.FreeMemMiB
		case cost == bestCost && v.FreeMemMiB < bestFree:
			// Same marginal cost: pack the tighter board.
			best, bestFree = v.Index, v.FreeMemMiB
		}
	}
	return best
}

// PolicyByName maps flag values to policies (a fresh instance per call,
// since RoundRobin carries state). Unknown names return nil.
func PolicyByName(name string) Policy {
	switch name {
	case "first-fit":
		return FirstFit{}
	case "round-robin":
		return &RoundRobin{}
	case "least-loaded":
		return LeastLoaded{}
	case "power-aware":
		return PowerAware{}
	}
	return nil
}
