package cluster

// The only sanctioned callers of the deprecated positional constructors
// (cluster.New, Cluster.Register): these tests pin the shims to the
// option-built equivalents. The CI `deprecations` check excludes
// exactly this file.

import (
	"testing"

	"jitsu/internal/netstack"
)

func TestDeprecatedNewMatchesNewCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 2
	old := New(cfg)
	opt := NewCluster(WithBoards(2))
	if len(old.Boards) != len(opt.Boards) {
		t.Fatalf("boards: %d vs %d", len(old.Boards), len(opt.Boards))
	}
	a, b := old.Cfg.Board, opt.Cfg.Board
	a.Platform, b.Platform = nil, nil // fresh pointer per DefaultConfig; values match
	if old.Cfg.Boards != opt.Cfg.Boards || a != b ||
		old.Cfg.WarmFactor != opt.Cfg.WarmFactor || old.Cfg.MaxWarmPerService != opt.Cfg.MaxWarmPerService {
		t.Fatalf("configs diverge: %+v vs %+v", old.Cfg, opt.Cfg)
	}
}

func TestDeprecatedRegisterMatchesRegisterService(t *testing.T) {
	c := NewCluster(WithBoards(2))
	sc := testService("alice", 20)
	e := c.Register(sc, ServiceOpts{MinWarm: 1, Policy: FirstFit{}})
	if e.MinWarm != 1 {
		t.Fatalf("MinWarm = %d", e.MinWarm)
	}
	if _, ok := e.Policy.(FirstFit); !ok {
		t.Fatalf("policy = %T", e.Policy)
	}
	sc2 := testService("bob", 21)
	sc2.IP = netstack.IPv4(10, 0, 0, 21)
	e2 := c.RegisterService(sc2, WithMinWarm(1), WithServicePolicy(FirstFit{}))
	if e2.MinWarm != e.MinWarm {
		t.Fatalf("option-built MinWarm %d != shim %d", e2.MinWarm, e.MinWarm)
	}
}
