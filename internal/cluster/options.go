package cluster

import (
	"jitsu/internal/core"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Option tunes one aspect of a cluster under construction. Options
// apply on top of DefaultConfig, so `cluster.NewCluster()` is the
// 4-board least-loaded configuration and each deviation is named at the
// call site:
//
//	c := cluster.NewCluster(cluster.WithBoards(8),
//		cluster.WithPolicy(cluster.PowerAware{}),
//		cluster.WithSeed(7))
type Option func(*Config)

// WithClusterConfig replaces the whole configuration (migration aid for
// code that still assembles a Config by hand). Options after it apply
// on top.
func WithClusterConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithBoards sets the number of boards built at construction (more may
// join later via AddBoard).
func WithBoards(n int) Option {
	return func(c *Config) { c.Boards = n }
}

// WithTracer records every board's activation spans plus the cluster's
// gossip and migration events into tr; board i traces on lane base+i.
func WithTracer(tr *obs.Tracer, base int) Option {
	return func(c *Config) { c.Tracer, c.TraceTIDBase = tr, base }
}

// WithBoardOptions applies core board options to every member board.
func WithBoardOptions(opts ...core.Option) Option {
	return func(c *Config) {
		for _, o := range opts {
			o(&c.Board)
		}
	}
}

// WithSeed sets the shared simulation seed (shorthand for
// WithBoardOptions(core.WithSeed(seed))).
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Board.Seed = seed }
}

// WithPolicy sets the default placement policy for services that don't
// pick their own.
func WithPolicy(p Policy) Option {
	return func(c *Config) { c.DefaultPolicy = p }
}

// WithWarmPool tunes the EWMA warm-pool sizing: factor scales
// rate×boot-time into a pool target, maxPerService caps any one
// service's pool (0 = one per board).
func WithWarmPool(factor float64, maxPerService int) Option {
	return func(c *Config) {
		c.WarmFactor = factor
		c.MaxWarmPerService = maxPerService
	}
}

// WithPreemptMargin gates rate-based preemption (≤1 disables it).
func WithPreemptMargin(margin float64) Option {
	return func(c *Config) { c.PreemptMargin = margin }
}

// WithMinRate sets the arrivals/sec below which a service's warm pool
// drains to MinWarm — raise it so rarely-visited services pay a cold
// start instead of pinning memory.
func WithMinRate(r float64) Option {
	return func(c *Config) { c.MinRate = r }
}

// WithProbing turns the gossip failure detector on: probe period,
// per-probe ack timeout, and how long a suspicion may stand unrefuted.
// Zero values keep the respective default.
func WithProbing(every, timeout, suspect sim.Duration) Option {
	return func(c *Config) {
		c.ProbeEvery = every
		if timeout > 0 {
			c.ProbeTimeout = timeout
		}
		if suspect > 0 {
			c.SuspectTimeout = suspect
		}
	}
}

// WithIndirectProbes sets the SWIM ping-req fan-out (0 disables the
// indirection — the false-suspicion ablation on lossy links).
func WithIndirectProbes(k int) Option {
	return func(c *Config) { c.IndirectProbes = k }
}

// WithMigrateOnLeave selects the graceful-departure policy: live
// migration (true) or the preempt-and-reboot baseline (false).
func WithMigrateOnLeave(on bool) Option {
	return func(c *Config) { c.MigrateOnLeave = on }
}

// WithUnpacedTransfers disables checkpoint-copy congestion control:
// every chunk blasts onto the management link immediately with the
// fixed doubling RTO — the Stampede ablation arm.
func WithUnpacedTransfers(on bool) Option {
	return func(c *Config) { c.UnpacedTransfers = on }
}

// NewCluster builds the cluster from DefaultConfig plus options.
func NewCluster(opts ...Option) *Cluster {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return build(cfg)
}

// ServiceOption tunes one service registration (RegisterService).
type ServiceOption func(*ServiceOpts)

// WithMinWarm keeps at least k replicas of the service booted at all
// times, regardless of observed arrival rate.
func WithMinWarm(k int) ServiceOption {
	return func(o *ServiceOpts) { o.MinWarm = k }
}

// WithServicePolicy overrides the cluster's default placement policy
// for this service.
func WithServicePolicy(p Policy) ServiceOption {
	return func(o *ServiceOpts) { o.Policy = p }
}

// RegisterService adds a service to the cluster directory with
// per-service options; see Register for the underlying semantics.
func (c *Cluster) RegisterService(sc core.ServiceConfig, opts ...ServiceOption) *Entry {
	var o ServiceOpts
	for _, opt := range opts {
		opt(&o)
	}
	return c.register(sc, o)
}
