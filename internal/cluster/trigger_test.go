package cluster

import (
	"testing"

	"jitsu/internal/api"
	"jitsu/internal/core"
)

// TestDetachedBuiltinCannotWipeClusterHook pins the ownership rule: the
// cluster trigger chains over board 0's built-in DNS frontend, so
// removing that displaced built-in must leave the scheduler's hooks
// alone.
func TestDetachedBuiltinCannotWipeClusterHook(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})

	front := c.Boards[0]
	var builtin core.Trigger
	for _, tr := range front.Triggers() {
		if tr.Name() == core.TriggerDNS {
			builtin = tr
		}
	}
	if builtin == nil {
		t.Fatal("no built-in dns trigger on board 0")
	}
	front.RemoveTrigger(builtin)
	if front.DNS.Intercept == nil {
		t.Fatal("removing the displaced built-in wiped the cluster's DNS hook")
	}

	// The scheduler still answers: a placement succeeds end to end.
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	if resp.Err != nil {
		t.Fatalf("activate after detach: %v", resp.Err)
	}
	c.RunAll()
	e := c.Directory().Lookup("alice.family.name")
	if len(e.ready()) != 1 {
		t.Fatalf("ready = %d after detach", len(e.ready()))
	}
}

// TestClusterActivateSurvivesPoolReconcile pins the schedule() fix: a
// control-plane activation must feed the rate estimator and pin its
// replica, so the next unrelated reconcile pass doesn't reclaim it.
func TestClusterActivateSurvivesPoolReconcile(t *testing.T) {
	c := NewCluster(WithBoards(2))
	ctl := c.API()
	ctl.Register(api.RegisterRequest{Config: testService("alice", 20)})

	var readyErr error
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name",
		OnReady: func(err error) { readyErr = err }})
	if resp.Err != nil {
		t.Fatalf("activate: %v", resp.Err)
	}
	c.RunAll()
	if readyErr != nil {
		t.Fatalf("OnReady: %v", readyErr)
	}
	e := c.Directory().Lookup("alice.family.name")
	if e.Rate() == 0 {
		t.Fatal("control-plane activation did not feed the rate estimator")
	}
	// An unrelated reconcile pass (what any next arrival triggers) must
	// not tear the fresh replica down.
	c.Pools.ReconcileAll()
	c.RunAll()
	if len(e.ready()) != 1 {
		t.Fatalf("replica reclaimed right after activation (ready=%d)", len(e.ready()))
	}

	// A warm re-activation delivers OnReady immediately, exactly once.
	calls := 0
	resp = ctl.Activate(api.ActivateRequest{Name: "alice.family.name",
		OnReady: func(error) { calls++ }})
	if resp.Err != nil || calls != 1 {
		t.Fatalf("warm activate: err=%v onready-calls=%d", resp.Err, calls)
	}
}
