package cluster

import (
	"sort"

	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// Directory is the cluster-wide service directory: the single
// authoritative view of where every service's replicas live and how hot
// each service is. It is the hierarchical-summary layer the MDS2-style
// directory literature describes — per-board Jitsu directories remain
// the leaves, the Directory aggregates them for the scheduler.
type Directory struct {
	entries map[string]*Entry
	byIP    map[netstack.IP]*Placement
}

func newDirectory() *Directory {
	return &Directory{
		entries: make(map[string]*Entry),
		byIP:    make(map[netstack.IP]*Placement),
	}
}

// Lookup finds a cluster service by (canonicalised) name.
func (d *Directory) Lookup(name string) *Entry {
	return d.entries[dns.CanonicalName(name)]
}

// Entries returns all cluster services sorted by name.
func (d *Directory) Entries() []*Entry {
	out := make([]*Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Placement is one replica slot: a service registered on one board's
// local Jitsu directory.
type Placement struct {
	Board int
	Svc   *core.Service
	// pending marks a boot scheduled behind an in-flight preemption:
	// the replica is still Stopped, but its board's Synjitsu is already
	// fielding the SYNs the DNS answer attracted.
	pending bool
	// pendingReady queues completion hooks that arrived while the boot
	// was still waiting behind the preemption; the deferred summon
	// drains it (with an error if the freed memory was lost meanwhile).
	pendingReady []func(error)
	// migrating marks the source of an in-flight live migration: it
	// keeps serving (pre-copy), but reclaim and preemption must leave it
	// alone until the switchover completes (including the drain).
	migrating bool
	// draining marks a migrated-out source between switchover and its
	// delayed stop: no new DNS answer names it, but a client answered
	// just before the switchover can still connect.
	draining bool
	// reserved marks a slot claimed as a migration destination, from
	// the pick until the switchover: no placement, prewarm or second
	// migration may take it, and the pool manager counts the migration
	// pair (ready source + reserved destination) as one replica.
	reserved bool
	// gone marks a slot whose board departed: never served again.
	gone bool
	// lastAnswered is when this replica's IP last went out in a DNS
	// answer; the preemptor spares recently answered replicas so it
	// never tears down a connection that is still arriving.
	lastAnswered sim.Duration
}

// replicaOn returns e's replica slot on board id, nil when the board
// has no (live) slot — it joined after a departure retired the slot, or
// the slice simply doesn't reach that id yet.
func replicaOn(e *Entry, id int) *Placement {
	if id >= len(e.Replicas) {
		return nil
	}
	p := e.Replicas[id]
	if p == nil || p.gone {
		return nil
	}
	return p
}

// Entry is one service as the cluster sees it: its per-board replicas,
// its placement policy, and the warm-pool control state.
type Entry struct {
	Name string
	// Base is the registration template; each replica carries a
	// board-specific IP derived from it.
	Base core.ServiceConfig
	// Policy picks boards for cold placements and prewarms.
	Policy Policy
	// Replicas is indexed by board.
	Replicas []*Placement

	// MinWarm is a floor on warm replicas regardless of observed rate.
	MinWarm int
	// moved marks a service handed to another cluster (federation spill
	// or skew shed) that is still draining here: the remaining replica
	// keeps serving connections answered before the switchover, but the
	// pool manager freezes it, the summary bloom omits it, and delegated
	// resolutions redirect to the new home.
	moved bool
	// WarmTarget is the pool size the EWMA currently asks for.
	WarmTarget int
	// Refused counts cluster-wide SERVFAILs: queries no board could take.
	Refused uint64

	// Arrival-rate estimation (EWMA over instantaneous rates).
	rate        float64
	lastArrival sim.Duration
	arrivals    uint64
	// rr spreads warm hits across ready replicas.
	rr int
}

// Rate returns the current EWMA arrival-rate estimate in arrivals/sec.
func (e *Entry) Rate() float64 { return e.rate }

// Arrivals returns the number of queries observed for this service.
func (e *Entry) Arrivals() uint64 { return e.arrivals }

// ready returns the replicas currently able to serve — booted in either
// memory tier (Running or WarmMemory). Slots on departed boards,
// draining migration sources and disk-resident replicas never qualify.
func (e *Entry) ready() []*Placement {
	var out []*Placement
	for _, p := range e.Replicas {
		if p != nil && !p.gone && !p.draining && p.Svc.State.Booted() {
			out = append(out, p)
		}
	}
	return out
}

// onDisk returns the disk-resident replicas (cold-on-disk tier), in
// board order.
func (e *Entry) onDisk() []*Placement {
	var out []*Placement
	for _, p := range e.Replicas {
		if p != nil && !p.gone && !p.draining && p.Svc.State == core.StateColdDisk {
			out = append(out, p)
		}
	}
	return out
}

// launching returns a replica whose boot is in flight (or queued behind
// a preemption), if any.
func (e *Entry) launching() *Placement {
	for _, p := range e.Replicas {
		if p == nil || p.gone {
			continue
		}
		if p.Svc.State == core.StateLaunching || p.pending {
			return p
		}
	}
	return nil
}

// effectiveRate is the EWMA estimate clamped by the time since the last
// arrival, so it decays between visits even though updates only happen
// on arrivals. A never-seen service rates zero.
func (e *Entry) effectiveRate(now sim.Duration) float64 {
	if e.arrivals == 0 {
		return 0
	}
	r := e.rate
	if gap := (now - e.lastArrival).Seconds(); gap > 0 && 1/gap < r {
		r = 1 / gap
	}
	return r
}

// Totals is the cluster-wide sum of one service's per-replica counters —
// the aggregation the per-board directories cannot provide on their own.
type Totals struct {
	Name         string
	Launches     uint64
	ColdStarts   uint64
	Handoffs     uint64
	ServFails    uint64 // per-board refusals (fleet-style) summed over replicas
	Reaps        uint64
	Restores     uint64 // launches that replayed a migration checkpoint
	DiskRestores uint64 // launches that paged a checkpoint in from disk
	Demotions    uint64 // checkpoint-to-disk evictions of booted replicas
	Refused      uint64 // cluster-wide SERVFAILs issued by the scheduler
	Ready        int    // replicas currently serving
	OnDisk       int    // replicas parked on the disk tier
	WarmTarget   int
}

// ServiceTotals aggregates every service's counters across all boards,
// sorted by name. Slots on departed boards still contribute their
// history (the service *did* pay those launches).
func (c *Cluster) ServiceTotals() []Totals {
	var out []Totals
	for _, e := range c.dir.Entries() {
		t := Totals{Name: e.Name, Refused: e.Refused, WarmTarget: e.WarmTarget}
		for _, p := range e.Replicas {
			if p == nil {
				continue
			}
			t.Launches += p.Svc.Launches
			t.ColdStarts += p.Svc.ColdStarts
			t.Handoffs += p.Svc.Handoffs
			t.ServFails += p.Svc.ServFails
			t.Reaps += p.Svc.Reaps
			t.Restores += p.Svc.Restores
			t.DiskRestores += p.Svc.DiskRestores
			t.Demotions += p.Svc.Demotions
			if !p.gone && p.Svc.State.Booted() {
				t.Ready++
			}
			if !p.gone && p.Svc.State == core.StateColdDisk {
				t.OnDisk++
			}
		}
		out = append(out, t)
	}
	return out
}

// CounterTable renders the aggregated counters as a metrics table, one
// row per service plus a cluster-wide total row.
func (c *Cluster) CounterTable() *metrics.Table {
	tab := metrics.NewTable("cluster counters",
		"service", "launches", "coldstarts", "handoffs", "servfails", "reaps", "restores", "disk-restores", "demotions", "refused", "ready", "on-disk", "warm-target")
	var sum Totals
	for _, t := range c.ServiceTotals() {
		tab.AddRow(t.Name, t.Launches, t.ColdStarts, t.Handoffs, t.ServFails, t.Reaps, t.Restores, t.DiskRestores, t.Demotions, t.Refused, t.Ready, t.OnDisk, t.WarmTarget)
		sum.Launches += t.Launches
		sum.ColdStarts += t.ColdStarts
		sum.Handoffs += t.Handoffs
		sum.ServFails += t.ServFails
		sum.Reaps += t.Reaps
		sum.Restores += t.Restores
		sum.DiskRestores += t.DiskRestores
		sum.Demotions += t.Demotions
		sum.Refused += t.Refused
		sum.Ready += t.Ready
		sum.OnDisk += t.OnDisk
	}
	tab.AddRow("TOTAL", sum.Launches, sum.ColdStarts, sum.Handoffs, sum.ServFails, sum.Reaps, sum.Restores, sum.DiskRestores, sum.Demotions, sum.Refused, sum.Ready, sum.OnDisk, "")
	return tab
}
