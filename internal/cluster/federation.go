package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/cc"
	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// The federation tier: a cluster of clusters. One root directory on a
// dedicated management network holds per-cluster *summaries* (bloom
// filter over service names + aggregate load/memory) instead of
// per-service rows — the summarized-delegation design the hierarchical
// directory literature shows keeps lookup cost flat as registrations
// grow. Resolution is two-level: the root scans its O(clusters) summary
// table, delegates the query over the management link to the owning
// cluster's board-0 directory (which schedules and answers
// authoritatively), and caches the delegation — negative answers
// included — with epoch invalidation riding dns.Server.Epoch.
//
// Placement gains an inter-cluster layer: new services home on the
// least-loaded cluster, a refused admission spills the service to a
// cluster with room, and sustained load skew — detected from the
// gossiped per-cluster arrival-rate EWMAs — sheds warm replicas across
// clusters through the typed api control plane's Checkpoint → Transfer
// (restore) leg, with no operator Rebalance() call anywhere.

// FedConfig sizes the federation and tunes the root's control loops.
type FedConfig struct {
	// Clusters is the number of member clusters built at construction.
	Clusters int
	// Cluster configures every member (Boards boards each).
	Cluster Config
	// SummaryEvery is the period of each member's summary push to the
	// root. 0 (the default) pushes only on directory changes, which
	// keeps the event queue drainable but disables the skew detector.
	SummaryEvery sim.Duration
	// SkewMinRate is the cluster-wide arrival rate (arrivals/sec) below
	// which the hottest cluster is never considered skewed; <= 0
	// disables skew-triggered shedding entirely.
	SkewMinRate float64
	// SkewRatio: skew exists when the coldest cluster's rate is at or
	// below this fraction of the hottest cluster's.
	SkewRatio float64
	// SkewRounds is how many consecutive summary rounds the same
	// cluster must stay hottest before a shed fires (sustained skew,
	// not a burst).
	SkewRounds int
	// ShedBatch is how many services one shed command moves.
	ShedBatch int
	// SpillOnRefuse re-homes a service to the least-loaded cluster when
	// its own cluster's admission refuses a delegated query.
	SpillOnRefuse bool
	// DelegateTimeout is the root's per-try wait for a delegated
	// resolve (or spill) reply before retransmitting; <= 0 takes the
	// default. The timeout doubles per retry.
	DelegateTimeout sim.Duration
	// DelegateRetries is how many retransmits the root pays before a
	// delegation is written off as SERVFAIL. 0 disables retransmission
	// (one try, then SERVFAIL) — the ablation baseline.
	DelegateRetries int
	// FedLinkLatency / FedBitsPerSec characterise the root<->cluster
	// management links.
	FedLinkLatency sim.Duration
	FedBitsPerSec  float64
	// TransferBitsPerSec is the nominal checkpoint-copy rate between
	// clusters, used to size the chunk exchange's retransmit allowance
	// (the links themselves set the real rate; on WAN-shaped paths set
	// this near the WANProfile's BitsPerSec).
	TransferBitsPerSec float64
	// TransferChunkMiB sizes the cross-cluster pre-copy chunks; each
	// chunk is one acknowledged datagram exchange on the federation
	// management network (default 4 MiB). TransferChunkRTO is the
	// per-chunk retransmit floor (default 50ms), TransferChunkRetries
	// the per-chunk retransmit budget before a transfer aborts
	// (default 5).
	TransferChunkMiB     int
	TransferChunkRTO     sim.Duration
	TransferChunkRetries int
	// UnpacedTransfers disables the per-agent congestion controller on
	// cross-cluster copies: every chunk blasts immediately with the
	// fixed doubling TransferChunkRTO — the Stampede ablation arm.
	UnpacedTransfers bool
	// WAN, when set, shapes every member agent's federation management
	// link to the profile (RTT, loss, throughput) instead of the flat
	// FedLinkLatency/FedBitsPerSec LAN path.
	WAN *netsim.WANProfile
	// Tracer, when set, is shared by the root and every member cluster:
	// the root's delegation/spill/shed events render on lane 0 and
	// member cluster k's boards on lanes (k+1)*100 and up. Nil disables
	// tracing.
	Tracer *obs.Tracer
}

// DefaultFedConfig is four default clusters behind a passive root
// (summaries push on change; enable SummaryEvery for the skew
// detector), with spill-on-refuse on.
func DefaultFedConfig() FedConfig {
	return FedConfig{
		Clusters:           4,
		Cluster:            DefaultConfig(),
		SkewMinRate:        2.0,
		SkewRatio:          0.5,
		SkewRounds:         3,
		ShedBatch:          2,
		SpillOnRefuse:      true,
		DelegateTimeout:    5 * time.Millisecond,
		DelegateRetries:    3,
		FedLinkLatency:     200 * time.Microsecond,
		FedBitsPerSec:      1e9,
		TransferBitsPerSec: 1e9,

		TransferChunkMiB:     4,
		TransferChunkRTO:     50 * time.Millisecond,
		TransferChunkRetries: 5,
	}
}

// FedOption tunes one aspect of a federation under construction.
type FedOption func(*FedConfig)

// WithClusters sets the member-cluster count.
func WithClusters(n int) FedOption {
	return func(c *FedConfig) { c.Clusters = n }
}

// WithMemberOptions applies cluster options to every member cluster.
func WithMemberOptions(opts ...Option) FedOption {
	return func(c *FedConfig) {
		for _, o := range opts {
			o(&c.Cluster)
		}
	}
}

// WithSummaryEvery arms the periodic summary push (and with it the
// skew detector).
func WithSummaryEvery(d sim.Duration) FedOption {
	return func(c *FedConfig) { c.SummaryEvery = d }
}

// WithSkewPolicy tunes the skew detector: minimum hot-cluster rate,
// cold/hot ratio, sustained rounds, and services shed per trigger.
// minRate <= 0 disables shedding.
func WithSkewPolicy(minRate, ratio float64, rounds, batch int) FedOption {
	return func(c *FedConfig) {
		c.SkewMinRate = minRate
		c.SkewRatio = ratio
		c.SkewRounds = rounds
		c.ShedBatch = batch
	}
}

// WithSpillOnRefuse toggles the admission-refusal spill path.
func WithSpillOnRefuse(on bool) FedOption {
	return func(c *FedConfig) { c.SpillOnRefuse = on }
}

// WithDelegateRetry tunes the root's delegation retransmit: per-try
// timeout (doubling per retry) and retry budget. retries = 0 is the
// no-retransmit ablation.
func WithDelegateRetry(timeout sim.Duration, retries int) FedOption {
	return func(c *FedConfig) {
		c.DelegateTimeout = timeout
		c.DelegateRetries = retries
	}
}

// WithWAN shapes every member agent's federation management link to the
// profile: RTT/2 extra latency each way, the profile's loss rate, and
// its throughput cap — plus TransferBitsPerSec pinned to the profile's
// rate so the chunk exchange's retransmit allowance matches the path.
func WithWAN(p netsim.WANProfile) FedOption {
	return func(c *FedConfig) {
		prof := p
		c.WAN = &prof
		c.TransferBitsPerSec = p.BitsPerSec
	}
}

// WithUnpacedFedTransfers disables cross-cluster copy congestion
// control — the Stampede ablation arm at the federation tier.
func WithUnpacedFedTransfers(on bool) FedOption {
	return func(c *FedConfig) { c.UnpacedTransfers = on }
}

// WithTransferChunk sizes the cross-cluster pre-copy chunks. WAN-shaped
// deployments want smaller chunks than the LAN default: one chunk's
// serialisation time is the floor on how long a delegation reply can
// queue behind the bulk exchange on a shared management link.
func WithTransferChunk(mib int) FedOption {
	return func(c *FedConfig) { c.TransferChunkMiB = mib }
}

// WithFedTracer attaches the observability flight recorder to the whole
// federation: root events on lane 0, member cluster k's boards on lanes
// (k+1)*100 and up. (The name avoids colliding with the cluster-level
// WithTracer option in this package.)
func WithFedTracer(tr *obs.Tracer) FedOption {
	return func(c *FedConfig) { c.Tracer = tr }
}

// Federation owns N member clusters behind one summarized root
// directory.
type Federation struct {
	Cfg     FedConfig
	eng     *sim.Engine
	fedNet  *netsim.Bridge // root <-> member agents (management)
	front   *netsim.Bridge // clients <-> root directory
	members []*FedMember
	root    *fedRoot
	clients []*FedClient
	// fedXfers tracks in-flight cross-cluster chunk exchanges by id
	// (fedxfer.go).
	fedXfers    map[uint32]*fedXferSend
	nextFedXfer uint32

	// Spills counts services re-homed because admission refused.
	Spills uint64
	// Sheds counts skew-triggered shed commands issued by the root.
	Sheds uint64
	// CrossMigrations counts warm replicas moved between clusters.
	CrossMigrations uint64
	// CrossAborts counts cross-cluster transfers that failed (the
	// source kept serving; nothing was lost).
	CrossAborts uint64
	// FedChunks counts cross-cluster chunk datagrams sent (retransmits
	// included); FedChunkRetx counts just the retransmits;
	// FedXferAborts counts chunk exchanges abandoned after a chunk
	// exhausted its retries.
	FedChunks     uint64
	FedChunkRetx  uint64
	FedXferAborts uint64

	// Reg mirrors the federation tier's counters (fed.* and root.*
	// names) for snapshot export; always present.
	Reg *obs.Registry
}

// FedMember is one cluster as the federation sees it.
type FedMember struct {
	ID      int
	Cluster *Cluster
	// Left marks a cluster removed from the federation.
	Left  bool
	agent *fedAgent
}

// MgmtLink returns this member agent's federation management link — the
// path its summary pushes, delegation replies and checkpoint chunks
// share. Experiments tap it to capture (and fingerprint) exactly what
// the shared uplink carried.
func (m *FedMember) MgmtLink() *netsim.Link {
	return m.agent.nic.Link()
}

// ErrNoSuchCluster is returned for operations on unknown/departed
// members.
var ErrNoSuchCluster = errors.New("cluster: no such federation member")

// Federation wire protocol: one UDP datagram per message on the
// federation management network.
const (
	fedPort = 7953

	fedOpResolve      = 1 // root -> agent: [op, qid:4, name]
	fedOpResolveReply = 2 // agent -> root: [op, qid:4, status, ip:4, extra:2, ttl:4]
	fedOpSummary      = 3 // agent -> root: [op, periodic, summary]
	fedOpShed         = 4 // root -> agent: [op, target:2, batch:1]
	fedOpSpill        = 5 // root -> agent: [op, qid:4, target:2, name]
	fedOpSpillReply   = 6 // agent -> root: [op, qid:4, ok]
	fedOpXferChunk    = 7 // agent -> agent: [op, id:4, idx:4, total:4]
	fedOpXferAck      = 8 // agent -> agent: [op, id:4, idx:4]

	fedStatusOK       = 0
	fedStatusNXDomain = 1
	fedStatusServFail = 2 // admission refused cluster-wide
	fedStatusMoved    = 3 // extra names the new home cluster
)

// FedRootAddr is the root directory's client-facing DNS address.
var FedRootAddr = netstack.IPv4(10, 254, 1, 1)

// rootMgmtIP / agentMgmtIP address the federation management network.
var rootMgmtIP = netstack.IPv4(10, 254, 0, 1)

func agentMgmtIP(id int) netstack.IP { return netstack.IPv4(10, 254, 0, byte(10+id)) }

// NewFederation builds the federation: member clusters on one shared
// engine, a root directory host on the client-facing front network, and
// one federation agent per cluster on the management network.
func NewFederation(opts ...FedOption) *Federation {
	cfg := DefaultFedConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.FedLinkLatency <= 0 {
		cfg.FedLinkLatency = 200 * time.Microsecond
	}
	if cfg.FedBitsPerSec <= 0 {
		cfg.FedBitsPerSec = 1e9
	}
	if cfg.TransferBitsPerSec <= 0 {
		cfg.TransferBitsPerSec = 1e9
	}
	if cfg.TransferChunkMiB <= 0 {
		cfg.TransferChunkMiB = 4
	}
	if cfg.TransferChunkRTO <= 0 {
		cfg.TransferChunkRTO = 50 * time.Millisecond
	}
	if cfg.TransferChunkRetries <= 0 {
		cfg.TransferChunkRetries = 5
	}
	if cfg.ShedBatch <= 0 {
		cfg.ShedBatch = 1
	}
	if cfg.DelegateTimeout <= 0 {
		cfg.DelegateTimeout = 5 * time.Millisecond
	}
	if cfg.DelegateRetries < 0 {
		cfg.DelegateRetries = 0
	}
	f := &Federation{Cfg: cfg, fedXfers: make(map[uint32]*fedXferSend)}
	f.eng = sim.New(cfg.Cluster.Board.Seed)
	cfg.Tracer.BindClock(f.eng.Now)
	f.fedNet = netsim.NewBridge(f.eng, "fed-mgmt", 10*time.Microsecond)
	f.front = netsim.NewBridge(f.eng, "fed-front", 10*time.Microsecond)
	f.root = newFedRoot(f)
	f.Reg = obs.NewRegistry("federation")
	f.Reg.CounterFunc("fed.spills", func() uint64 { return f.Spills })
	f.Reg.CounterFunc("fed.sheds", func() uint64 { return f.Sheds })
	f.Reg.CounterFunc("fed.cross_migrations", func() uint64 { return f.CrossMigrations })
	f.Reg.CounterFunc("fed.cross_aborts", func() uint64 { return f.CrossAborts })
	f.Reg.CounterFunc("fed.chunks", func() uint64 { return f.FedChunks })
	f.Reg.CounterFunc("fed.chunk_retx", func() uint64 { return f.FedChunkRetx })
	f.Reg.CounterFunc("fed.xfer_aborts", func() uint64 { return f.FedXferAborts })
	f.Reg.CounterFunc("root.lookups", func() uint64 { return f.root.Lookups })
	f.Reg.CounterFunc("root.scans", func() uint64 { return f.root.Scans })
	f.Reg.CounterFunc("root.delegations", func() uint64 { return f.root.Delegations })
	f.Reg.CounterFunc("root.deleg_hits", func() uint64 { return f.root.DelegHits })
	f.Reg.CounterFunc("root.neg_hits", func() uint64 { return f.root.NegHits })
	f.Reg.CounterFunc("root.nxdomains", func() uint64 { return f.root.NXDomains })
	f.Reg.CounterFunc("root.servfails", func() uint64 { return f.root.ServFails })
	f.Reg.CounterFunc("root.deleg_retx", func() uint64 { return f.root.DelegRetx })
	f.Reg.CounterFunc("root.deleg_timeouts", func() uint64 { return f.root.DelegTimeouts })
	for i := 0; i < cfg.Clusters; i++ {
		f.addMember()
	}
	return f
}

// addMember builds one cluster on the shared engine plus its federation
// agent, delegates its subzone at the root, and bootstraps its summary
// row synchronously (construction-time members need no join round).
func (f *Federation) addMember() *FedMember {
	id := len(f.members)
	ccfg := f.Cfg.Cluster
	ccfg.Tracer = f.Cfg.Tracer
	ccfg.TraceTIDBase = (id + 1) * 100
	m := &FedMember{ID: id, Cluster: buildOn(f.eng, ccfg)}
	m.agent = newFedAgent(f, m)
	f.members = append(f.members, m)
	apex := f.root.zone.Apex
	child := fmt.Sprintf("c%d.%s", id, apex)
	f.root.zone.Delegate(child, "ns."+child, agentMgmtIP(id))
	f.root.delegated = append(f.root.delegated, child)
	if err := m.Cluster.front().AddTrigger(m.agent); err != nil {
		panic(fmt.Sprintf("cluster: attach federation agent: %v", err))
	}
	f.root.applySummary(m.agent.buildSummary(), false)
	return m
}

// member returns the live-or-left member with the given id (nil when
// out of range).
func (f *Federation) member(id int) *FedMember {
	if id < 0 || id >= len(f.members) {
		return nil
	}
	return f.members[id]
}

// Members lists the federation's clusters by id (departed included).
func (f *Federation) Members() []*FedMember { return f.members }

// Eng returns the shared simulation engine.
func (f *Federation) Eng() *sim.Engine { return f.eng }

// RunAll drains the shared engine (passive summaries only).
func (f *Federation) RunAll() { f.eng.Run() }

// RunUntil advances the shared engine to virtual time t.
func (f *Federation) RunUntil(t sim.Duration) { f.eng.RunUntil(t) }

// Stop quiesces the periodic summary pushes and every member cluster's
// gossip agents so the event queue can drain.
func (f *Federation) Stop() {
	for _, m := range f.members {
		m.agent.stop()
		m.Cluster.StopMembership()
	}
}

// namespaced gives sc a cluster-scoped address: the second octet
// encodes the owning cluster (10+id) and, per the existing replica
// convention, the third encodes the board — so any replica IP a client
// sees maps back to (cluster, board).
func (f *Federation) namespaced(sc core.ServiceConfig, cid int) core.ServiceConfig {
	sc.IP[1] = byte(10 + cid)
	return sc
}

// RegisterService homes a new service on the least-loaded cluster (by
// registered memory footprint per capacity — the inter-cluster
// placement layer) and registers it there. The returned member is the
// service's home.
func (f *Federation) RegisterService(sc core.ServiceConfig, opts ...ServiceOption) (*FedMember, *Entry) {
	m := f.placeHome()
	if m == nil {
		return nil, nil
	}
	e := m.Cluster.RegisterService(f.namespaced(sc, m.ID), opts...)
	return m, e
}

// placeHome picks the member with the lowest registered-demand share of
// its capacity (ties break toward the lowest id, so equal clusters fill
// round-robin).
func (f *Federation) placeHome() *FedMember {
	var best *FedMember
	bestScore := 0.0
	for _, m := range f.members {
		if m.Left {
			continue
		}
		demand, cap := 0, 0
		for _, mb := range m.Cluster.Members() {
			if mb.State != MemberDead && mb.State != MemberLeft {
				cap += m.Cluster.Cfg.Board.TotalMemMiB
			}
		}
		for _, e := range m.Cluster.dir.Entries() {
			if !e.moved {
				demand += e.Base.Image.MemMiB
			}
		}
		if cap == 0 {
			continue
		}
		score := float64(demand) / float64(cap)
		if best == nil || score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// AddCluster grows the federation at runtime: a new member cluster is
// built on the shared engine, its subzone delegated at the root, and
// its (empty) summary row bootstrapped — from the next summary round on
// it is a spill/shed target like any construction-time member. The new
// member reuses the federation's cluster config (tracer lanes continue
// the (id+1)*100 block convention) and starts its periodic summary push
// immediately when SummaryEvery is armed.
func (f *Federation) AddCluster() *FedMember {
	m := f.addMember()
	f.root.bumpEpoch()
	return m
}

// RemoveCluster takes a member out of the federation: its summary row
// drops (bumping the root epoch, so no cached delegation survives),
// in-flight transfers toward it abort harmlessly, and the services
// still homed there are re-homed onto the least-loaded survivors —
// warm when a replica's state can be checkpointed (it lands on the
// destination's disk tier, so the next activation resumes instead of
// cold-booting), cold only when no replica exists to capture.
func (f *Federation) RemoveCluster(id int) error {
	m := f.member(id)
	if m == nil || m.Left {
		return ErrNoSuchCluster
	}
	m.Left = true
	m.agent.stop()
	delete(f.root.summaries, id)
	f.root.bumpEpoch()
	f.root.failPendingFor(id)
	entries := m.Cluster.dir.Entries()
	for _, e := range entries {
		if e.moved {
			continue
		}
		dst := f.placeHome()
		if dst == nil {
			continue // nowhere left; the registration dies with the cluster
		}
		req := api.TransferRequest{
			Config: f.namespaced(e.Base, dst.ID), MinWarm: e.MinWarm, Policy: e.Policy.Name(),
		}
		// Departure is administrative, not a crash: surviving replicas
		// can still be checkpointed, so their warm state leaves with
		// them instead of dying with the cluster.
		var src *Placement
		for _, p := range append(e.ready(), e.onDisk()...) {
			if !p.gone {
				src = p
				break
			}
		}
		if src != nil {
			if cpResp := m.Cluster.boardAPI(src.Board).Checkpoint(api.CheckpointRequest{Name: e.Name}); cpResp.Err == nil {
				req.Checkpoint = cpResp.Checkpoint
				req.ToDisk = true
			}
		}
		if resp := dst.Cluster.API().Transfer(req); resp.Err == nil {
			e.moved = true
			m.Cluster.movedTo[e.Name] = dst.ID
		}
	}
	for _, e := range entries {
		m.Cluster.Unregister(e.Name)
	}
	m.Cluster.StopMembership()
	return nil
}

// Shed issues one shed command by hand: the root orders cluster from's
// agent to move up to batch of its hottest warm services to cluster to
// over the congestion-controlled Checkpoint -> Transfer leg. This is
// exactly the datagram the sustained-skew detector emits — same wire
// op, same agent-side sweep — minus the detection, so operator-driven
// rebalances (and the Stampede experiment's mass move) can trigger the
// transfer machinery at a chosen instant.
func (f *Federation) Shed(from, to, batch int) error {
	src, dst := f.member(from), f.member(to)
	if src == nil || src.Left || dst == nil || dst.Left {
		return ErrNoSuchCluster
	}
	if from == to || batch <= 0 || batch > 255 {
		return fmt.Errorf("cluster: bad shed %d -> %d batch %d", from, to, batch)
	}
	f.Sheds++
	if tr := f.Cfg.Tracer; tr != nil {
		tr.Instant(0, "fed", "shed",
			obs.Num("hot", int64(from)), obs.Num("cold", int64(to)),
			obs.Num("batch", int64(batch)))
	}
	buf := []byte{fedOpShed, byte(to >> 8), byte(to), byte(batch)}
	f.root.mgmt.SendUDP(agentMgmtIP(from), fedPort, fedPort, buf)
	return nil
}

// ---- federation agent (one per member cluster) ----

// TriggerFedDelegate is the delegated-resolution frontend's name: the
// root summons services through it when it delegates a query to this
// cluster's board-0 directory, so per-trigger accounting separates
// federation traffic from the cluster's own DNS front door.
const TriggerFedDelegate = "fed-delegate"

// fedAgent is a member cluster's federation endpoint: a host on the
// federation management network that answers delegated resolutions
// against the cluster directory, pushes summaries to the root, and
// executes spill/shed transfers. It attaches to board 0 as a
// core.Trigger — the delegated queries it fires drive the same
// Activation machines every other frontend does.
type fedAgent struct {
	f    *Federation
	m    *FedMember
	host *netstack.Host
	nic  *netsim.NIC
	// dirEpoch counts directory changes; it rides every summary so the
	// root knows when its caches went stale.
	dirEpoch uint64
	pushEv   sim.Event
	// pushPending coalesces change-driven pushes within one link delay.
	pushPending bool
	stopped     bool
	// ctrl paces this agent's federation uplink for chunk exchanges
	// (fedxfer.go); nil until the first transfer, or always when the
	// unpaced ablation is configured.
	ctrl *cc.Controller
}

func newFedAgent(f *Federation, m *FedMember) *fedAgent {
	a := &fedAgent{f: f, m: m}
	a.nic = netsim.NewNIC(f.eng, fmt.Sprintf("fed%d", m.ID), netsim.MACFor(0xB000+m.ID))
	f.fedNet.ConnectNIC(a.nic, f.Cfg.FedLinkLatency, f.Cfg.FedBitsPerSec)
	if f.Cfg.WAN != nil {
		f.Cfg.WAN.Apply(a.nic.Link(), int64(0xFED0+m.ID))
	}
	a.host = netstack.NewHost(f.eng, fmt.Sprintf("fed%d", m.ID), a.nic, agentMgmtIP(m.ID), netstack.Dom0Profile())
	m.Cluster.onDirChange = a.dirChanged
	return a
}

func (a *fedAgent) Name() string { return TriggerFedDelegate }

// Attach binds the agent's management endpoint and arms the periodic
// summary push; the board itself needs no hook changes — delegated
// firings enter through the shared scheduler path.
func (a *fedAgent) Attach(*core.Board) error {
	if err := a.host.BindUDP(fedPort, a.recv); err != nil {
		return err
	}
	a.startPushing()
	return nil
}

func (a *fedAgent) Detach() { a.host.UnbindUDP(fedPort) }

func (a *fedAgent) startPushing() {
	if a.f.Cfg.SummaryEvery <= 0 || a.stopped {
		return
	}
	a.pushEv = a.f.eng.After(a.f.Cfg.SummaryEvery, func() {
		if a.stopped {
			return
		}
		a.push(true)
		a.startPushing()
	})
}

func (a *fedAgent) stop() {
	a.stopped = true
	a.f.eng.Cancel(a.pushEv)
}

// dirChanged bumps the directory epoch and schedules one coalesced
// summary push a link delay out.
func (a *fedAgent) dirChanged() {
	a.dirEpoch++
	if a.stopped || a.pushPending {
		return
	}
	a.pushPending = true
	a.f.eng.After(a.f.Cfg.FedLinkLatency, func() {
		a.pushPending = false
		if !a.stopped {
			a.push(false)
		}
	})
}

func (a *fedAgent) buildSummary() Summary {
	return a.m.Cluster.buildSummary(a.m.ID, a.dirEpoch, a.f.eng.Now())
}

// push sends the cluster's current summary row to the root.
func (a *fedAgent) push(periodic bool) {
	buf := make([]byte, 0, 2+summaryWireLen)
	buf = append(buf, fedOpSummary, 0)
	if periodic {
		buf[1] = 1
	}
	buf = EncodeSummary(a.buildSummary(), buf)
	a.host.SendUDP(rootMgmtIP, fedPort, fedPort, buf)
}

// recv handles one management datagram from the root (or, for the
// chunk-exchange ops, a sibling agent).
func (a *fedAgent) recv(src netstack.IP, _ uint16, payload []byte) {
	if a.stopped || a.m.Left || len(payload) < 1 {
		return
	}
	switch payload[0] {
	case fedOpXferChunk, fedOpXferAck:
		a.recvFedXfer(src, payload)
	case fedOpResolve:
		if len(payload) < 6 {
			return
		}
		qid := getU32(payload[1:5])
		a.resolve(qid, string(payload[5:]))
	case fedOpShed:
		if len(payload) < 4 {
			return
		}
		a.shed(int(payload[1])<<8|int(payload[2]), int(payload[3]))
	case fedOpSpill:
		if len(payload) < 8 {
			return
		}
		qid := getU32(payload[1:5])
		target := int(payload[5])<<8 | int(payload[6])
		a.spill(qid, target, string(payload[7:]))
	}
}

// reply sends one resolve reply back to the root.
func (a *fedAgent) reply(qid uint32, status byte, ip netstack.IP, extra uint16, ttl uint32) {
	buf := make([]byte, 0, 16)
	buf = append(buf, fedOpResolveReply)
	var q [4]byte
	putU32(q[:], qid)
	buf = append(buf, q[:]...)
	buf = append(buf, status, ip[0], ip[1], ip[2], ip[3],
		byte(extra>>8), byte(extra))
	var t [4]byte
	putU32(t[:], ttl)
	buf = append(buf, t[:]...)
	a.host.SendUDP(rootMgmtIP, fedPort, fedPort, buf)
}

// resolve answers one delegated query authoritatively: schedule the
// placement exactly as the cluster's own DNS front door would, but
// accounted under the fed-delegate trigger.
func (a *fedAgent) resolve(qid uint32, name string) {
	c := a.m.Cluster
	name = dns.CanonicalName(name)
	e := c.dir.Lookup(name)
	if e == nil || e.moved {
		if cid, ok := c.movedTo[name]; ok {
			a.reply(qid, fedStatusMoved, netstack.IP{}, uint16(cid), 0)
			return
		}
		a.reply(qid, fedStatusNXDomain, netstack.IP{}, 0, 0)
		return
	}
	p, _ := c.schedule(e, TriggerFedDelegate, nil)
	if p == nil {
		a.reply(qid, fedStatusServFail, netstack.IP{}, 0, 0)
		return
	}
	a.reply(qid, fedStatusOK, p.Svc.Cfg.IP, 0, p.Svc.Cfg.TTL)
}

// spill re-homes one service cold after its admission refused: the
// target cluster (picked by the root from its summaries and named in
// the command, so root and agent agree) adopts the config, and this
// cluster forgets the name. Replies so the root can re-delegate the
// waiting query.
func (a *fedAgent) spill(qid uint32, target int, name string) {
	name = dns.CanonicalName(name)
	ok := a.spillNow(name, target)
	buf := make([]byte, 0, 8)
	buf = append(buf, fedOpSpillReply)
	var q [4]byte
	putU32(q[:], qid)
	buf = append(buf, q[:]...)
	if ok {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	a.host.SendUDP(rootMgmtIP, fedPort, fedPort, buf)
}

// lane is the trace lane federation-level events about this member
// cluster land on: its board-0 lane (boards occupy (ID+1)*100 + i).
func (a *fedAgent) lane() int {
	return a.m.Cluster.Cfg.TraceTIDBase
}

func (a *fedAgent) spillNow(name string, target int) bool {
	c := a.m.Cluster
	e := c.dir.Lookup(name)
	if e == nil || e.moved {
		return false
	}
	dst := a.f.member(target)
	if dst == nil || dst.Left || dst == a.m {
		return false
	}
	resp := dst.Cluster.API().Transfer(api.TransferRequest{
		Config: a.f.namespaced(e.Base, dst.ID), MinWarm: e.MinWarm, Policy: e.Policy.Name(),
	})
	if resp.Err != nil {
		return false
	}
	a.f.Spills++
	if tr := a.f.Cfg.Tracer; tr != nil {
		tr.Instant(a.lane(), "fed", "spill",
			obs.Str("svc", name), obs.Num("src", int64(a.m.ID)), obs.Num("dst", int64(dst.ID)))
	}
	e.moved = true
	c.movedTo[name] = dst.ID
	c.Unregister(name) // no live replica exists — admission just refused
	return true
}

// spillTarget picks the least-loaded live cluster other than from.
func (f *Federation) spillTarget(from int) *FedMember {
	var best *FedMember
	bestLoad := uint32(0)
	for _, id := range f.root.sortedSummaryIDs() {
		if id == from {
			continue
		}
		m := f.member(id)
		if m == nil || m.Left {
			continue
		}
		load := f.root.summaries[id].LoadMilli
		if best == nil || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best
}

// shed moves up to batch of this cluster's hottest warm services to the
// target cluster — the skew-triggered cross-cluster rebalance. Each
// move is a live migration: checkpoint here, copy across the federation
// link, restore there via the typed Transfer verb, then drain and
// retire the local registration.
func (a *fedAgent) shed(target, batch int) {
	dst := a.f.member(target)
	if dst == nil || dst.Left || a.m.Left {
		return
	}
	c := a.m.Cluster
	now := a.f.eng.Now()
	entries := c.dir.Entries() // name-sorted: deterministic sweep
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].effectiveRate(now) > entries[j].effectiveRate(now)
	})
	moved := 0
	for _, e := range entries {
		if moved >= batch {
			break
		}
		if e.moved {
			continue
		}
		var src *Placement
		for _, p := range e.ready() {
			if !p.migrating && !p.draining {
				src = p
				break
			}
		}
		if src == nil {
			// No booted replica, but a disk-resident one can still move:
			// its stored checkpoint sheds without paging it in.
			for _, p := range e.onDisk() {
				if !p.migrating {
					src = p
					break
				}
			}
		}
		if src == nil {
			continue
		}
		a.transferOut(e, src, dst)
		moved++
	}
}

// transferOut live-migrates one warm replica of e to cluster dst: the
// federation transfer leg. Make-before-break — the source serves until
// the destination's restore completes, then drains for the same guard
// window a preemptor honours before the registration retires.
func (a *fedAgent) transferOut(e *Entry, p *Placement, dst *FedMember) {
	c := a.m.Cluster
	cpResp := c.boardAPI(p.Board).Checkpoint(api.CheckpointRequest{Name: e.Name})
	if cpResp.Err != nil {
		return
	}
	cp := cpResp.Checkpoint
	p.migrating = true
	var transfer obs.Span
	if tr := a.f.Cfg.Tracer; tr != nil {
		transfer = tr.Begin(a.lane(), "fed", "transfer",
			obs.Str("svc", e.Name), obs.Num("state_mib", int64(cp.StateMiB)),
			obs.Num("dst", int64(dst.ID)))
	}
	abort := func() {
		p.migrating = false
		a.f.CrossAborts++
		a.f.Cfg.Tracer.End(transfer, obs.Str("status", "aborted"))
	}
	a.fedCopy(dst.ID, cp.StateMiB, func(ok bool) {
		if !ok {
			// The chunk exchange died (federation path partitioned, or
			// the destination agent went silent); the source keeps
			// serving untouched.
			abort()
			return
		}
		if a.m.Left || e.moved || p.gone ||
			!(p.Svc.State.Booted() || p.Svc.State == core.StateColdDisk) {
			abort()
			return
		}
		if dst.Left {
			// Mid-transfer departure of the destination: the copy has
			// nowhere to land; the source keeps serving untouched.
			abort()
			return
		}
		resp := dst.Cluster.API().Transfer(api.TransferRequest{
			Config: a.f.namespaced(e.Base, dst.ID), MinWarm: e.MinWarm,
			Policy: e.Policy.Name(), Checkpoint: cp,
			// A disk-resident source sheds its checkpoint straight onto
			// the destination's disk tier — no paging in on either side.
			ToDisk: p.Svc.State == core.StateColdDisk,
			OnReady: func(err error) {
				if err != nil {
					// The destination lost its headroom during the
					// restore; roll its adoption back and keep serving
					// here.
					dst.Cluster.Unregister(e.Name)
					abort()
					return
				}
				a.f.CrossMigrations++
				a.f.Cfg.Tracer.End(transfer, obs.Str("status", "ready"))
				a.retire(e, p, dst.ID)
			},
		})
		if resp.Err != nil {
			abort()
		}
	})
}

// retire switches a shed service over to its new home: resolutions
// redirect immediately (moved marking + summary push), while the local
// replica drains for the answer-guard window before the registration
// is unregistered — a client answered with the old address moments ago
// can still connect.
func (a *fedAgent) retire(e *Entry, p *Placement, newHome int) {
	c := a.m.Cluster
	e.moved = true
	c.movedTo[e.Name] = newHome
	p.migrating = false
	p.draining = true
	if tr := a.f.Cfg.Tracer; tr != nil {
		tr.Instant(a.lane(), "fed", "switchover",
			obs.Str("svc", e.Name), obs.Num("dst", int64(newHome)))
	}
	a.dirChanged()
	guard := 10 * c.Cfg.BootEstimate
	a.f.eng.After(guard, func() {
		// Only retire the entry this drain belongs to: the name may have
		// been re-adopted (a spill back) since, and its fresh
		// registration must survive.
		if c.dir.entries[e.Name] == e {
			c.Unregister(e.Name)
		}
	})
}

// ---- root directory ----

// maxFedCacheEntries bounds the root's delegation and negative caches;
// past the cap answers still resolve, just uncached.
const maxFedCacheEntries = 8192

// delegEntry is one cached name -> cluster delegation, valid while its
// epoch matches the root DNS server's.
type delegEntry struct {
	cluster int
	epoch   uint64
}

// pendingResolve is one client query parked while the root delegates.
type pendingResolve struct {
	query   *dns.Message
	respond func(*dns.Message)
	name    string
	cands   []int
	idx     int
	spillTo int
	hops    int
	// asked is the cluster the outstanding datagram went to, so a
	// member removal can fail (or re-route) the queries waiting on it.
	asked int
	// wire is the outstanding datagram verbatim, so a timeout can
	// retransmit exactly what was lost; timer is the armed retransmit
	// and tries the transmissions of it so far.
	wire  []byte
	timer sim.Event
	tries int
}

// fedRoot is the federation's root directory: the client-facing DNS
// server whose InterceptAsync delegates over the management network,
// the summary table (the only authoritative state — one row per
// cluster), and the epoch-stamped delegation/negative caches.
type fedRoot struct {
	f    *Federation
	mgmt *netstack.Host // on the federation management network
	fr   *netstack.Host // on the client-facing front network
	srv  *dns.Server
	zone *dns.Zone
	// summaries is the root directory proper: O(clusters) rows.
	summaries map[int]*Summary
	// delegated lists the c<k>.<apex> subzones so service-looking
	// queries under them fall through to the zone's referral path.
	delegated []string
	deleg     map[string]delegEntry
	neg       map[string]uint64
	pending   map[uint32]*pendingResolve
	nextQID   uint32
	// skew detector state: the argmax cluster of the last skewed round
	// and how many consecutive rounds it has stayed hottest.
	hotID     int
	hotStreak int

	// Lookups counts service queries the root fielded; Scans the
	// summary-table scans (cache misses); Delegations the management
	// round trips; DelegHits/NegHits the cache hits.
	Lookups     uint64
	Scans       uint64
	Delegations uint64
	DelegHits   uint64
	NegHits     uint64
	NXDomains   uint64
	ServFails   uint64
	// DelegRetx counts retransmitted delegation datagrams; DelegTimeouts
	// the delegations written off after the retry budget (answered
	// SERVFAIL, never cached negative — the name may well exist).
	DelegRetx     uint64
	DelegTimeouts uint64
}

func newFedRoot(f *Federation) *fedRoot {
	r := &fedRoot{
		f:         f,
		summaries: make(map[int]*Summary),
		deleg:     make(map[string]delegEntry),
		neg:       make(map[string]uint64),
		pending:   make(map[uint32]*pendingResolve),
		hotID:     -1,
	}
	mgmtNIC := netsim.NewNIC(f.eng, "fed-root", netsim.MACFor(0xB100))
	f.fedNet.ConnectNIC(mgmtNIC, f.Cfg.FedLinkLatency, f.Cfg.FedBitsPerSec)
	r.mgmt = netstack.NewHost(f.eng, "fed-root", mgmtNIC, rootMgmtIP, netstack.Dom0Profile())
	if err := r.mgmt.BindUDP(fedPort, r.recv); err != nil {
		panic(fmt.Sprintf("cluster: fed root bind: %v", err))
	}

	frontNIC := netsim.NewNIC(f.eng, "fed-root-dns", netsim.MACFor(0xB200))
	f.front.ConnectNIC(frontNIC, f.Cfg.Cluster.Board.ExtLatency, f.Cfg.Cluster.Board.ExtBitsPerSec)
	r.fr = netstack.NewHost(f.eng, "fed-root-dns", frontNIC, FedRootAddr, netstack.Dom0Profile())
	r.zone = dns.NewZone(f.Cfg.Cluster.Board.Zone)
	r.zone.Add(dns.RR{Name: "ns." + r.zone.Apex, Type: dns.TypeA, TTL: 300, A: FedRootAddr})
	srv, err := dns.Serve(r.fr, r.zone)
	if err != nil {
		panic(fmt.Sprintf("cluster: fed root dns: %v", err))
	}
	srv.InterceptAsync = r.interceptAsync
	r.srv = srv
	return r
}

// bumpEpoch invalidates every cached delegation and negative answer —
// the wholesale invalidation dns.Server itself uses, riding the same
// Epoch counter.
func (r *fedRoot) bumpEpoch() {
	r.srv.BumpEpoch()
	clear(r.deleg)
	clear(r.neg)
}

// StateSize reports the root directory's authoritative state: its
// summary rows. The whole point of the tier — this scales with
// clusters, never with services.
func (r *fedRoot) StateSize() int { return len(r.summaries) }

// Root exposes the root directory for stats and tests.
func (f *Federation) Root() *FedRootStats {
	r := f.root
	return &FedRootStats{
		StateSize: r.StateSize(), Epoch: r.srv.Epoch,
		Lookups: r.Lookups, Scans: r.Scans, Delegations: r.Delegations,
		DelegHits: r.DelegHits, NegHits: r.NegHits,
		NXDomains: r.NXDomains, ServFails: r.ServFails,
		DelegRetx: r.DelegRetx, DelegTimeouts: r.DelegTimeouts,
	}
}

// FedRootStats is a snapshot of the root directory's counters.
type FedRootStats struct {
	StateSize     int
	Epoch         uint64
	Lookups       uint64
	Scans         uint64
	Delegations   uint64
	DelegHits     uint64
	NegHits       uint64
	NXDomains     uint64
	ServFails     uint64
	DelegRetx     uint64
	DelegTimeouts uint64
}

// sortedSummaryIDs lists the summary rows' cluster ids in order, so
// every scan and skew decision is deterministic.
func (r *fedRoot) sortedSummaryIDs() []int {
	ids := make([]int, 0, len(r.summaries))
	for id := range r.summaries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// underDelegatedSubzone reports whether name belongs to a member's
// c<k> subzone — those take the zone's NS-referral path, not summary
// resolution.
func (r *fedRoot) underDelegatedSubzone(name string) bool {
	for _, child := range r.delegated {
		if name == child {
			return true
		}
		if len(name) > len(child) && name[len(name)-len(child)-1] == '.' && name[len(name)-len(child):] == child {
			return true
		}
	}
	return false
}

// interceptAsync is the root's resolution path: summary-table scan,
// delegation over the management link, and epoch-stamped caching of
// both positive delegations and negatives.
func (r *fedRoot) interceptAsync(query *dns.Message, respond func(*dns.Message)) bool {
	if len(query.Questions) != 1 {
		return false
	}
	q := query.Questions[0]
	if q.Type != dns.TypeA && q.Type != dns.TypeANY {
		return false
	}
	name := dns.CanonicalName(q.Name)
	if !r.zone.Contains(name) || r.underDelegatedSubzone(name) {
		return false // refused / referral: the zone path handles it
	}
	if len(r.zone.Lookup(name, dns.TypeANY)) > 0 {
		return false // root-zone infrastructure records (ns.<apex>)
	}
	r.Lookups++
	epoch := r.srv.Epoch
	if de, ok := r.deleg[name]; ok && de.epoch == epoch {
		if m := r.f.member(de.cluster); m != nil && !m.Left {
			r.DelegHits++
			r.delegate(r.track(&pendingResolve{query: query, respond: respond, name: name,
				cands: []int{de.cluster}, spillTo: -1}))
			return true
		}
	}
	if e, ok := r.neg[name]; ok && e == epoch {
		r.NegHits++
		r.NXDomains++
		respond(r.negative(query))
		return true
	}
	r.Scans++
	var cands []int
	for _, id := range r.sortedSummaryIDs() {
		if m := r.f.member(id); m == nil || m.Left {
			continue
		}
		if r.summaries[id].Bloom.MayContain(name) {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		r.cacheNegative(name)
		r.NXDomains++
		respond(r.negative(query))
		return true
	}
	r.delegate(r.track(&pendingResolve{query: query, respond: respond, name: name,
		cands: cands, spillTo: -1}))
	return true
}

// track opens a fed/delegation span for p on the root's trace lane and
// wraps p.respond so the span closes with the final response code,
// whichever of the answer / negative / servfail paths fires it — the
// span therefore covers the whole resolution including spills and
// Moved-chasing, not just the first ask.
func (r *fedRoot) track(p *pendingResolve) *pendingResolve {
	tr := r.f.Cfg.Tracer
	if tr == nil {
		return p
	}
	sp := tr.Begin(0, "fed", "delegation",
		obs.Str("name", p.name), obs.Num("cands", int64(len(p.cands))))
	inner := p.respond
	p.respond = func(m *dns.Message) {
		tr.End(sp, obs.Num("rcode", int64(m.RCode)))
		inner(m)
	}
	return p
}

// delegate parks the query and asks the current candidate cluster,
// skipping candidates that left the federation since the scan.
func (r *fedRoot) delegate(p *pendingResolve) {
	for p.idx < len(p.cands) {
		if m := r.f.member(p.cands[p.idx]); m != nil && !m.Left {
			break
		}
		p.idx++
	}
	if p.idx >= len(p.cands) {
		r.cacheNegative(p.name)
		r.NXDomains++
		p.respond(r.negative(p.query))
		return
	}
	qid := r.nextQID
	r.nextQID++
	p.asked = p.cands[p.idx]
	r.pending[qid] = p
	r.Delegations++
	buf := make([]byte, 0, 5+len(p.name))
	buf = append(buf, fedOpResolve)
	var q [4]byte
	putU32(q[:], qid)
	buf = append(buf, q[:]...)
	buf = append(buf, p.name...)
	r.send(qid, p, buf)
}

// send puts one delegation datagram for p on the wire and arms its
// retransmit. Retransmits resend the identical datagram under the same
// qid — the agent side is idempotent (a duplicate resolve re-answers
// from the directory like any repeated client query; a duplicate reply
// finds no pending row and is dropped).
func (r *fedRoot) send(qid uint32, p *pendingResolve, wire []byte) {
	r.f.eng.Cancel(p.timer)
	p.wire = wire
	p.tries = 1
	r.mgmt.SendUDP(agentMgmtIP(p.asked), fedPort, fedPort, wire)
	r.armRetransmit(qid, p)
}

// armRetransmit schedules p's next timeout, doubling per prior try.
// When the budget is gone the query answers SERVFAIL — and pointedly
// does NOT cache a negative: an unreachable cluster says nothing about
// whether the name exists, and a poisoned negative cache would keep
// refusing the name for a whole epoch after the partition heals.
func (r *fedRoot) armRetransmit(qid uint32, p *pendingResolve) {
	rto := r.f.Cfg.DelegateTimeout
	for i := 1; i < p.tries; i++ {
		rto *= 2
	}
	p.timer = r.f.eng.After(rto, func() {
		if r.pending[qid] != p {
			return // answered (or failed over) while the timer was in flight
		}
		if p.tries > r.f.Cfg.DelegateRetries {
			delete(r.pending, qid)
			r.DelegTimeouts++
			r.ServFails++
			if tr := r.f.Cfg.Tracer; tr != nil {
				tr.Instant(0, "fed", "deleg-timeout",
					obs.Str("name", p.name), obs.Num("cluster", int64(p.asked)))
			}
			p.respond(r.servfail(p.query))
			return
		}
		p.tries++
		r.DelegRetx++
		if tr := r.f.Cfg.Tracer; tr != nil {
			tr.Instant(0, "fed", "deleg-retx",
				obs.Str("name", p.name), obs.Num("cluster", int64(p.asked)), obs.Num("try", int64(p.tries)))
		}
		r.mgmt.SendUDP(agentMgmtIP(p.asked), fedPort, fedPort, p.wire)
		r.armRetransmit(qid, p)
	})
}

// failPendingFor sweeps the parked queries waiting on a removed member:
// resolves move on to their next live candidate (or answer negative);
// spills waiting on the departed cluster answer SERVFAIL. Sorted qid
// order keeps the sweep deterministic.
func (r *fedRoot) failPendingFor(cid int) {
	qids := make([]int, 0, len(r.pending))
	for qid, p := range r.pending {
		if p.asked == cid {
			qids = append(qids, int(qid))
		}
	}
	sort.Ints(qids)
	for _, qid := range qids {
		p := r.pending[uint32(qid)]
		delete(r.pending, uint32(qid))
		r.f.eng.Cancel(p.timer)
		if p.spillTo >= 0 {
			// The refusing cluster vanished mid-spill; the service's
			// fate is unknown, so refuse rather than guess.
			p.spillTo = -1
			r.ServFails++
			p.respond(r.servfail(p.query))
			continue
		}
		p.idx++
		r.delegate(p) // answers negative itself when no candidate is left
	}
}

func (r *fedRoot) cacheDelegation(name string, cid int) {
	if len(r.deleg) < maxFedCacheEntries {
		r.deleg[name] = delegEntry{cluster: cid, epoch: r.srv.Epoch}
	}
}

func (r *fedRoot) cacheNegative(name string) {
	if len(r.neg) < maxFedCacheEntries {
		r.neg[name] = r.srv.Epoch
	}
}

// negative renders the root's NXDomain (SOA in authority, like any
// authoritative miss).
func (r *fedRoot) negative(query *dns.Message) *dns.Message {
	resp := &dns.Message{ID: query.ID, Response: true, Authoritative: true,
		RecursionDesired: query.RecursionDesired,
		Questions:        query.Questions, RCode: dns.RCodeNXDomain}
	resp.Authority = append(resp.Authority, r.zone.SOA())
	return resp
}

// servfail renders the refusal a capacity-exhausted federation returns.
func (r *fedRoot) servfail(query *dns.Message) *dns.Message {
	return &dns.Message{ID: query.ID, Response: true,
		RecursionDesired: query.RecursionDesired,
		Questions:        query.Questions, RCode: dns.RCodeServFail}
}

// answer renders the delegated A answer plus the owning cluster's NS
// delegation records — the referral a resolver could chase directly.
func (r *fedRoot) answer(p *pendingResolve, cid int, ip netstack.IP, ttl uint32) *dns.Message {
	if ttl == 0 {
		ttl = 10
	}
	resp := &dns.Message{ID: p.query.ID, Response: true,
		RecursionDesired: p.query.RecursionDesired,
		Questions:        p.query.Questions}
	resp.Answers = append(resp.Answers, dns.RR{
		Name: p.name, Type: dns.TypeA, Class: dns.ClassIN, TTL: ttl, A: ip,
	})
	child := fmt.Sprintf("c%d.%s", cid, r.zone.Apex)
	for _, ns := range r.zone.Lookup(child, dns.TypeNS) {
		resp.Authority = append(resp.Authority, ns)
		resp.Additional = append(resp.Additional, r.zone.Lookup(ns.Target, dns.TypeA)...)
	}
	return resp
}

// recv handles one management datagram from a member agent.
func (r *fedRoot) recv(src netstack.IP, _ uint16, payload []byte) {
	if len(payload) < 1 {
		return
	}
	switch payload[0] {
	case fedOpSummary:
		if len(payload) != 2+summaryWireLen {
			return
		}
		s, err := DecodeSummary(payload[2:])
		if err != nil {
			return
		}
		r.applySummary(s, payload[1] == 1)
	case fedOpResolveReply:
		if len(payload) < 16 {
			return
		}
		qid := getU32(payload[1:5])
		p, ok := r.pending[qid]
		if !ok {
			return
		}
		delete(r.pending, qid)
		r.f.eng.Cancel(p.timer)
		status := payload[5]
		ip := netstack.IP{payload[6], payload[7], payload[8], payload[9]}
		extra := uint16(payload[10])<<8 | uint16(payload[11])
		ttl := getU32(payload[12:16])
		r.resolved(p, status, ip, extra, ttl)
	case fedOpSpillReply:
		if len(payload) < 6 {
			return
		}
		qid := getU32(payload[1:5])
		p, ok := r.pending[qid]
		if !ok {
			return
		}
		delete(r.pending, qid)
		r.f.eng.Cancel(p.timer)
		if payload[5] == 1 && p.spillTo >= 0 {
			// The service moved; re-delegate the waiting query to its
			// new home.
			r.cacheDelegation(p.name, p.spillTo)
			p.cands, p.idx, p.hops = []int{p.spillTo}, 0, p.hops+1
			p.spillTo = -1
			r.delegate(p)
			return
		}
		r.ServFails++
		p.respond(r.servfail(p.query))
	}
}

// resolved handles one delegation's authoritative reply.
func (r *fedRoot) resolved(p *pendingResolve, status byte, ip netstack.IP, extra uint16, ttl uint32) {
	cid := p.cands[p.idx]
	switch status {
	case fedStatusOK:
		r.cacheDelegation(p.name, cid)
		p.respond(r.answer(p, cid, ip, ttl))
	case fedStatusMoved:
		// The cluster shed/spilled this service; chase the new home
		// (bounded — a moved chain cannot ping-pong forever).
		if p.hops >= 3 {
			r.ServFails++
			p.respond(r.servfail(p.query))
			return
		}
		p.hops++
		newHome := int(extra)
		if m := r.f.member(newHome); m == nil || m.Left {
			r.ServFails++
			p.respond(r.servfail(p.query))
			return
		}
		r.cacheDelegation(p.name, newHome)
		p.cands, p.idx = []int{newHome}, 0
		r.delegate(p)
	case fedStatusNXDomain:
		// Bloom false positive (or a stale cache hop): try the next
		// candidate; none left means the name is nowhere.
		p.idx++
		if p.idx < len(p.cands) {
			r.delegate(p)
			return
		}
		r.cacheNegative(p.name)
		r.NXDomains++
		p.respond(r.negative(p.query))
	case fedStatusServFail:
		// Admission refused cluster-wide. The inter-cluster policy
		// spills the service to the least-loaded cluster and re-asks —
		// one hop, once per query.
		if r.f.Cfg.SpillOnRefuse && p.spillTo < 0 && p.hops < 3 {
			if dst := r.f.spillTarget(cid); dst != nil {
				p.spillTo = dst.ID
				r.spill(p, cid)
				return
			}
		}
		r.ServFails++
		p.respond(r.servfail(p.query))
	default:
		r.ServFails++
		p.respond(r.servfail(p.query))
	}
}

// spill asks the refusing cluster to hand the service to p.spillTo.
// The command rides the same retransmit machinery as a resolve: the
// spill is idempotent at the agent (a duplicate finds the name already
// moved and reports failure, which the root answers SERVFAIL — safe,
// never wrong).
func (r *fedRoot) spill(p *pendingResolve, from int) {
	qid := r.nextQID
	r.nextQID++
	p.asked = from
	r.pending[qid] = p
	buf := make([]byte, 0, 8+len(p.name))
	buf = append(buf, fedOpSpill)
	var q [4]byte
	putU32(q[:], qid)
	buf = append(buf, q[:]...)
	buf = append(buf, byte(p.spillTo>>8), byte(p.spillTo))
	buf = append(buf, p.name...)
	r.send(qid, p, buf)
}

// applySummary merges one pushed row into the summary table. An epoch
// move means the member's directory changed: every cached delegation
// and negative answer may be stale, so the root epoch bumps (wholesale,
// exactly like dns.Server's own answer cache).
func (r *fedRoot) applySummary(s Summary, periodic bool) {
	m := r.f.member(s.Cluster)
	if m == nil || m.Left {
		return
	}
	old := r.summaries[s.Cluster]
	if old == nil || old.Epoch != s.Epoch {
		r.bumpEpoch()
	}
	cp := s
	r.summaries[s.Cluster] = &cp
	if periodic {
		r.checkSkew(s.Cluster)
	}
}

// checkSkew runs the sustained-skew detector after a periodic push from
// cluster `from`: when the same cluster stays hottest — above
// SkewMinRate, with the coldest cluster at or below SkewRatio of it —
// for SkewRounds consecutive rounds, the root commands a shed from the
// hottest to the coldest cluster. No operator Rebalance() call anywhere.
func (r *fedRoot) checkSkew(from int) {
	if r.f.Cfg.SkewMinRate <= 0 {
		return
	}
	ids := r.sortedSummaryIDs()
	if len(ids) < 2 {
		return
	}
	hot, cold := -1, -1
	var hotLoad, coldLoad uint32
	for _, id := range ids {
		if m := r.f.member(id); m == nil || m.Left {
			continue
		}
		load := r.summaries[id].LoadMilli
		if hot < 0 || load > hotLoad {
			hot, hotLoad = id, load
		}
		if cold < 0 || load < coldLoad {
			cold, coldLoad = id, load
		}
	}
	if hot < 0 || cold < 0 || hot == cold {
		return
	}
	skewed := float64(hotLoad)/1000 >= r.f.Cfg.SkewMinRate &&
		float64(coldLoad) <= r.f.Cfg.SkewRatio*float64(hotLoad)
	if !skewed {
		r.hotID, r.hotStreak = -1, 0
		return
	}
	if hot != r.hotID {
		r.hotID, r.hotStreak = hot, 0
	}
	if from != hot {
		return // one streak tick per round, counted on the hot row's push
	}
	r.hotStreak++
	if r.hotStreak < r.f.Cfg.SkewRounds {
		return
	}
	r.hotStreak = 0
	r.f.Sheds++
	if tr := r.f.Cfg.Tracer; tr != nil {
		tr.Instant(0, "fed", "shed",
			obs.Num("hot", int64(hot)), obs.Num("cold", int64(cold)),
			obs.Num("batch", int64(r.f.Cfg.ShedBatch)))
	}
	buf := []byte{fedOpShed, byte(cold >> 8), byte(cold), byte(r.f.Cfg.ShedBatch)}
	r.mgmt.SendUDP(agentMgmtIP(hot), fedPort, fedPort, buf)
}
