package cluster

import (
	"errors"
	"hash/fnv"
	"jitsu/internal/sim"
)

// The federation root never holds per-service rows — that is the flat
// directory bottleneck the MDS2 measurements document. Each member
// cluster instead pushes one fixed-size Summary over the federation
// management link: a bloom filter over its service names (the
// "prefix/summary table" of the hierarchical-directory literature),
// aggregate free/total memory from the existing counter aggregation,
// and the cluster-wide arrival-rate EWMA the skew detector watches.
// Root lookup cost is O(clusters); the authoritative answer always
// comes from the owning cluster's board-0 directory.

// summaryBloomBytes sizes the per-cluster service-name filter: 512 bits
// with 3 hashes stays under ~2% false positives up to ~60 services per
// cluster, and a false positive only costs one extra delegation.
const summaryBloomBytes = 64

// summaryBloomHashes is the number of derived bit positions per name.
const summaryBloomHashes = 3

// SummaryBloom is the service-name membership filter in a Summary.
type SummaryBloom [summaryBloomBytes]byte

// bloomPositions derives the k bit positions for a name from one FNV-1a
// pass (double hashing: h1 + i*h2).
func bloomPositions(name string) [summaryBloomHashes]uint32 {
	h := fnv.New64a()
	h.Write([]byte(name))
	sum := h.Sum64()
	h1 := uint32(sum)
	h2 := uint32(sum>>32) | 1 // odd so the stride visits distinct bits
	var out [summaryBloomHashes]uint32
	for i := range out {
		out[i] = (h1 + uint32(i)*h2) % (summaryBloomBytes * 8)
	}
	return out
}

// Add inserts a (canonical) service name.
func (b *SummaryBloom) Add(name string) {
	for _, p := range bloomPositions(name) {
		b[p/8] |= 1 << (p % 8)
	}
}

// MayContain reports whether name could be in the set (false positives
// possible, false negatives not).
func (b *SummaryBloom) MayContain(name string) bool {
	for _, p := range bloomPositions(name) {
		if b[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// Summary is one cluster's row at the federation root.
type Summary struct {
	// Cluster is the member's federation id.
	Cluster int
	// Epoch is the member directory's change counter: any registration
	// or unregistration bumps it, and the root invalidates its
	// delegation/negative caches when a row's epoch moves.
	Epoch uint64
	// Services counts registered (non-moved) services — a count, never
	// the rows themselves.
	Services uint32
	// Ready counts replicas currently serving across the cluster.
	Ready uint32
	// FreeMiB / CapMiB aggregate guest memory over alive boards.
	FreeMiB uint32
	CapMiB  uint32
	// LoadMilli is the cluster-wide arrival-rate EWMA (Σ per-service
	// effective rates) in milli-arrivals/second — the quantity the
	// root's skew detector compares across clusters.
	LoadMilli uint32
	// Bloom may-contain filters delegations: the root only asks
	// clusters whose filter admits the queried name.
	Bloom SummaryBloom
}

// summaryWireVersion guards the fixed layout below.
const summaryWireVersion = 1

// summaryWireLen is the encoded size: version byte, cluster uint16,
// epoch uint64, five uint32 counters, and the bloom filter.
const summaryWireLen = 1 + 2 + 8 + 5*4 + summaryBloomBytes

// ErrBadSummary is returned for undecodable summary datagrams.
var ErrBadSummary = errors.New("cluster: bad summary encoding")

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// EncodeSummary appends s's wire form to buf. The layout is fixed:
//
//	[0]     version
//	[1:3]   cluster
//	[3:11]  epoch
//	[11:15] services
//	[15:19] ready
//	[19:23] freeMiB
//	[23:27] capMiB
//	[27:31] loadMilli
//	[31:]   bloom
func EncodeSummary(s Summary, buf []byte) []byte {
	var w [summaryWireLen]byte
	w[0] = summaryWireVersion
	w[1], w[2] = byte(s.Cluster>>8), byte(s.Cluster)
	for i := 0; i < 8; i++ {
		w[3+i] = byte(s.Epoch >> (56 - 8*i))
	}
	putU32(w[11:], s.Services)
	putU32(w[15:], s.Ready)
	putU32(w[19:], s.FreeMiB)
	putU32(w[23:], s.CapMiB)
	putU32(w[27:], s.LoadMilli)
	copy(w[31:], s.Bloom[:])
	return append(buf, w[:]...)
}

// DecodeSummary parses one summary datagram.
func DecodeSummary(b []byte) (Summary, error) {
	var s Summary
	if len(b) != summaryWireLen || b[0] != summaryWireVersion {
		return s, ErrBadSummary
	}
	s.Cluster = int(b[1])<<8 | int(b[2])
	for i := 0; i < 8; i++ {
		s.Epoch = s.Epoch<<8 | uint64(b[3+i])
	}
	s.Services = getU32(b[11:])
	s.Ready = getU32(b[15:])
	s.FreeMiB = getU32(b[19:])
	s.CapMiB = getU32(b[23:])
	s.LoadMilli = getU32(b[27:])
	copy(s.Bloom[:], b[31:])
	return s, nil
}

// buildSummary renders the member cluster's current row: bloom over the
// live (non-moved) service set, memory aggregated over alive boards,
// and the arrival-rate EWMA sum.
func (c *Cluster) buildSummary(id int, epoch uint64, now sim.Duration) Summary {
	s := Summary{Cluster: id, Epoch: epoch}
	for _, m := range c.members {
		if m.State == MemberDead || m.State == MemberLeft {
			continue
		}
		s.CapMiB += uint32(c.Cfg.Board.TotalMemMiB)
		s.FreeMiB += uint32(m.Board.Hyp.FreeMemMiB())
	}
	load := 0.0
	for _, e := range c.dir.Entries() {
		if e.moved {
			continue
		}
		s.Services++
		s.Bloom.Add(e.Name)
		s.Ready += uint32(len(e.ready()))
		load += e.effectiveRate(now)
	}
	s.LoadMilli = uint32(load * 1000)
	return s
}
