package cluster

import (
	"jitsu/internal/api"
	"jitsu/internal/wire"
)

// WireConfig shapes the cluster's wire-serving side: which management
// board exposes the control plane, and the session policy operators
// authenticate against.
type WireConfig struct {
	// Board picks the member whose management host binds the listener.
	Board int
	// Port is the TCP port (0 = wire.DefaultPort).
	Port uint16
	// Apps re-attaches application factories to images arriving over
	// the wire (nil = images stay app-less).
	Apps wire.AppResolver

	// Keyring maps capability tokens to granted scopes.
	Keyring map[string]api.Scope
	// Anonymous is the scope for sessions without a token (all v1
	// sessions); ScopeNone refuses them.
	Anonymous api.Scope

	// MinVersion and MaxVersion clamp the protocol range served
	// (0 = the wire package's full range).
	MinVersion, MaxVersion uint16
}

// ServeWire exposes the cluster's control plane on a management host:
// every api verb becomes reachable over the simulated management
// network, gated by the configured capability policy. Multiple
// operator sessions may be live at once; each gets its own event
// stream.
func (c *Cluster) ServeWire(cfg WireConfig) (*wire.Server, error) {
	port := cfg.Port
	if port == 0 {
		port = wire.DefaultPort
	}
	return wire.ServeWith(c.MgmtHost(cfg.Board), port, wire.ServerConfig{
		Backend:    c.API(),
		Apps:       cfg.Apps,
		Keyring:    cfg.Keyring,
		Anonymous:  cfg.Anonymous,
		MinVersion: cfg.MinVersion,
		MaxVersion: cfg.MaxVersion,
	})
}
