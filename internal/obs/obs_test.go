package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced virtual clock standing in for sim.Now.
type fakeClock struct{ at time.Duration }

func (c *fakeClock) now() time.Duration { return c.at }

func newTestTracer(capacity int) (*Tracer, *fakeClock) {
	clk := &fakeClock{}
	tr := NewTracer(capacity)
	tr.BindClock(clk.now)
	return tr, clk
}

func TestRingWraparoundAccounting(t *testing.T) {
	tr, clk := newTestTracer(4)
	for i := 0; i < 10; i++ {
		clk.at = time.Duration(i) * time.Millisecond
		tr.Instant(0, "test", "tick", Num("i", int64(i)))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events(nil)
	if len(evs) != 4 {
		t.Fatalf("Events returned %d, want 4", len(evs))
	}
	// Oldest-first order, holding the newest 4 of the 10 writes.
	for k, ev := range evs {
		want := int64(6 + k)
		if ev.Attrs[0].Num != want {
			t.Errorf("event %d: i = %d, want %d", k, ev.Attrs[0].Num, want)
		}
		if ev.At != time.Duration(want)*time.Millisecond {
			t.Errorf("event %d: At = %v, want %v", k, ev.At, time.Duration(want)*time.Millisecond)
		}
	}
	// The JSONL trailer must carry the same accounting.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{"trailer":true,"events":4,"dropped":6}`) {
		t.Fatalf("JSONL trailer missing accounting:\n%s", buf.String())
	}
}

func TestSpanNestingAcrossVirtualTimeJumps(t *testing.T) {
	tr, clk := newTestTracer(64)
	outer := tr.Begin(1, "test", "outer", Str("svc", "a"))
	clk.at = time.Hour // a huge virtual-time jump mid-span
	inner := tr.Begin(1, "test", "inner")
	clk.at = 2 * time.Hour
	tr.End(inner)
	clk.at = 3 * time.Hour
	tr.End(outer, Num("ok", 1))

	evs := tr.Events(nil)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != KindBegin || evs[1].Kind != KindBegin ||
		evs[2].Kind != KindEnd || evs[3].Kind != KindEnd {
		t.Fatalf("kinds out of order: %v %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind, evs[3].Kind)
	}
	if evs[1].Span != evs[2].Span || evs[0].Span != evs[3].Span || evs[0].Span == evs[1].Span {
		t.Fatalf("span ids do not pair: %d %d %d %d", evs[0].Span, evs[1].Span, evs[2].Span, evs[3].Span)
	}
	if evs[3].At-evs[0].At != 3*time.Hour {
		t.Fatalf("outer span duration = %v, want 3h", evs[3].At-evs[0].At)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of time order at %d", i)
		}
	}
}

func TestEndZeroSpanIsNoop(t *testing.T) {
	tr, _ := newTestTracer(8)
	tr.End(Span{})
	var nilTr *Tracer
	nilTr.Instant(0, "x", "y")
	nilTr.End(nilTr.Begin(0, "x", "y"))
	if tr.Len() != 0 || nilTr.Len() != 0 {
		t.Fatalf("no-op paths recorded events: %d %d", tr.Len(), nilTr.Len())
	}
}

// identicalRun drives the same event sequence twice and demands
// byte-identical exports and equal fingerprints.
func TestExportsDeterministic(t *testing.T) {
	run := func() *Tracer {
		tr, clk := newTestTracer(16)
		sp := tr.Begin(2, "activation", "boot", Str("svc", "svc00.family.name"), Num("mem_mib", 32))
		clk.at = 303 * time.Millisecond
		tr.End(sp, Str("state", "ready"))
		tr.Instant(2, "dns", "cache_miss", Str("name", "svc00.family.name"))
		for i := 0; i < 20; i++ { // force wraparound too
			tr.Instant(0, "gossip", "probe", Num("peer", int64(i)))
		}
		return tr
	}
	a, b := run(), run()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	var ja, jb, ca, cb bytes.Buffer
	if err := WriteJSONL(&ja, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("JSONL exports differ between identical runs")
	}
	if err := WriteChromeTrace(&ca, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&cb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("Chrome exports differ between identical runs")
	}
	if !strings.HasPrefix(ca.String(), "[\n") || !strings.HasSuffix(ca.String(), "\n]\n") {
		t.Fatalf("Chrome export not a JSON array:\n%s", ca.String())
	}
}

func TestTraceRecordingAllocFree(t *testing.T) {
	tr, clk := newTestTracer(1 << 10)
	attrs := [2]Attr{Str("svc", "svc00"), Num("mem", 32)}
	allocs := testing.AllocsPerRun(1000, func() {
		clk.at += time.Millisecond
		sp := tr.Begin(1, "activation", "boot", attrs[0], attrs[1])
		tr.Instant(1, "dns", "hit")
		tr.End(sp)
	})
	if allocs > 0 {
		t.Fatalf("tracer hot path allocates: %.1f allocs/op", allocs)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry("board0")
	c := r.Counter("dns.cache_hits")
	c.Add(7)
	if r.Counter("dns.cache_hits") != c {
		t.Fatal("Counter not idempotent per name")
	}
	ext := uint64(41)
	r.CounterFunc("dns.queries", func() uint64 { return ext })
	depth := 3
	r.GaugeFunc("sim.pending", func() int64 { return int64(depth) })
	h := r.Histogram("activation.boot")
	h.Observe(2 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	h.Observe(350 * time.Millisecond)

	s := r.Snapshot()
	if s.Name != "board0" {
		t.Fatalf("snapshot name %q", s.Name)
	}
	if len(s.Counters) != 2 || s.Counters[0].Name != "dns.cache_hits" || s.Counters[1].Name != "dns.queries" {
		t.Fatalf("counters not name-sorted: %+v", s.Counters)
	}
	if s.Counters[0].Value != 7 || s.Counters[1].Value != 41 {
		t.Fatalf("counter values wrong: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 3 {
		t.Fatalf("gauge wrong: %+v", s.Gauges)
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != 3 || s.Hists[0].Max != 350*time.Millisecond {
		t.Fatalf("hist wrong: %+v", s.Hists)
	}
	// The p50 estimate must land in the cold-boot band, p0 in the warm.
	hs := &s.Hists[0]
	if q := hs.Quantile(0.0); q > 5*time.Millisecond {
		t.Fatalf("q0 = %v, want warm band", q)
	}
	if q := hs.Quantile(0.99); q < 256*time.Millisecond {
		t.Fatalf("q99 = %v, want cold band", q)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) })
	if allocs > 0 {
		t.Fatalf("Histogram.Observe allocates: %.1f allocs/op", allocs)
	}
}
