package obs

import (
	"bufio"
	"hash/fnv"
	"io"
	"strconv"
	"time"
)

// Exports are built by walking the ring in order with hand-rolled JSON
// encoding — no map iteration, no reflection — so two same-seed runs
// write byte-identical files. That is the property the determinism CI
// job fingerprints.

// appendJSONString appends s as a JSON string literal. Metric and span
// names are ASCII dot-paths; anything else is \u-escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0',
				"0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func appendAttrs(b []byte, ev *Event) []byte {
	b = append(b, '{')
	for i := 0; i < int(ev.NAttr); i++ {
		if i > 0 {
			b = append(b, ',')
		}
		a := &ev.Attrs[i]
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		if a.IsNum {
			b = strconv.AppendInt(b, a.Num, 10)
		} else {
			b = appendJSONString(b, a.Str)
		}
	}
	return append(b, '}')
}

var kindNames = [...]string{KindBegin: "b", KindEnd: "e", KindInstant: "i"}

// WriteJSONL writes one JSON object per event — the raw flight-recorder
// form — followed by a trailer line carrying the truncation accounting.
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	var b []byte
	for _, ev := range t.Events(nil) {
		ev := ev
		b = b[:0]
		b = append(b, `{"at_ns":`...)
		b = strconv.AppendInt(b, int64(ev.At), 10)
		b = append(b, `,"kind":`...)
		b = appendJSONString(b, kindNames[ev.Kind])
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.TID), 10)
		if ev.Span != 0 {
			b = append(b, `,"span":`...)
			b = strconv.AppendUint(b, ev.Span, 10)
		}
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, ev.Name)
		if ev.NAttr > 0 {
			b = append(b, `,"attrs":`...)
			b = appendAttrs(b, &ev)
		}
		b = append(b, '}', '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	b = b[:0]
	b = append(b, `{"trailer":true,"events":`...)
	b = strconv.AppendInt(b, int64(t.Len()), 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendUint(b, t.Dropped(), 10)
	b = append(b, '}', '\n')
	if _, err := bw.Write(b); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace writes the ring in Chrome trace-event format (the
// JSON Array Format chrome://tracing and Perfetto load). Spans are
// async events ("b"/"e" matched on id+cat+name) so overlapping
// activations on one lane render as parallel tracks; instants are
// thread-scoped. Timestamps are virtual microseconds with nanosecond
// fraction.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	var b []byte
	first := true
	for _, ev := range t.Events(nil) {
		ev := ev
		b = b[:0]
		if !first {
			b = append(b, ',', '\n')
		}
		first = false
		b = append(b, `{"name":`...)
		b = appendJSONString(b, ev.Name)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
		b = append(b, `,"ph":"`...)
		b = append(b, kindNames[ev.Kind]...)
		b = append(b, `","ts":`...)
		us := int64(ev.At / time.Microsecond)
		ns := int64(ev.At % time.Microsecond)
		b = strconv.AppendInt(b, us, 10)
		b = append(b, '.')
		b = append(b, byte('0'+ns/100), byte('0'+ns/10%10), byte('0'+ns%10))
		b = append(b, `,"pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.TID), 10)
		switch ev.Kind {
		case KindBegin, KindEnd:
			b = append(b, `,"id":`...)
			b = appendJSONString(b, "0x"+strconv.FormatUint(ev.Span, 16))
		case KindInstant:
			b = append(b, `,"s":"t"`...)
		}
		if ev.NAttr > 0 {
			b = append(b, `,"args":`...)
			b = appendAttrs(b, &ev)
		}
		b = append(b, '}')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Fingerprint hashes the ring contents plus the drop count (FNV-1a).
// Two same-seed runs must produce equal fingerprints — the contract the
// determinism CI job diffs, alongside the metric series.
func (t *Tracer) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(n uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, ev := range t.Events(nil) {
		u64(uint64(ev.At))
		u64(uint64(ev.Kind))
		u64(uint64(ev.TID))
		u64(ev.Span)
		h.Write([]byte(ev.Cat))
		h.Write([]byte(ev.Name))
		for i := 0; i < int(ev.NAttr); i++ {
			a := &ev.Attrs[i]
			h.Write([]byte(a.Key))
			if a.IsNum {
				u64(uint64(a.Num))
			} else {
				h.Write([]byte(a.Str))
			}
		}
	}
	u64(t.Dropped())
	return h.Sum64()
}
