package obs

import "time"

// Event kinds, mapped 1:1 onto Chrome trace-event phases: async span
// begin/end (overlapping activations share a lane without breaking
// nesting) and thread-scoped instants.
const (
	KindBegin   uint8 = iota // span start ("b")
	KindEnd                  // span end ("e")
	KindInstant              // point event ("i")
)

// maxAttrs is the fixed attribute slot count per event. Fixed so Event
// is one flat struct in the ring: recording never allocates.
const maxAttrs = 4

// Attr is one key/value attribute on an event: either a string or a
// signed number (bytes, MiB, ids).
type Attr struct {
	Key   string
	Str   string
	Num   int64
	IsNum bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// Num builds a numeric attribute.
func Num(k string, v int64) Attr { return Attr{Key: k, Num: v, IsNum: true} }

// Event is one ring slot: a span edge or instant stamped with virtual
// time. Flat struct, fixed attr slots — the ring is allocated once.
type Event struct {
	At    time.Duration // virtual time
	Kind  uint8
	NAttr uint8
	TID   int // lane: board id, cluster base + board, 0 for roots
	Span  uint64
	Cat   string
	Name  string
	Attrs [maxAttrs]Attr
}

// Span is the handle Begin returns and End consumes. It carries the
// identity the end edge must repeat (async trace events match on
// id+cat+name), so spans may close from any callback. The zero Span is
// inert.
type Span struct {
	ID   uint64
	TID  int
	Cat  string
	Name string
}

// Tracer is a bounded flight recorder of Events. The ring is allocated
// once at construction; when full, the oldest event is overwritten and
// Dropped is bumped, so truncation is always accounted for. All
// timestamps come from the bound virtual clock — a Tracer shared by
// every subsystem of a seeded run yields a bit-identical export.
//
// A nil *Tracer is safe to call: every method is a no-op. Hot paths
// still guard with `if tr != nil` before building attributes.
type Tracer struct {
	ring     []Event
	head     int // next write slot
	n        int // live events (<= len(ring))
	dropped  uint64
	nextSpan uint64
	clock    func() time.Duration
}

// NewTracer returns a tracer with a ring of capacity events. The
// virtual clock is bound later (BindClock) by whichever engine owner
// builds on it; capacity < 1 is raised to 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// BindClock points the tracer at the virtual-time source. Engines that
// share a tracer share a clock, so rebinding to the same engine is
// harmless; the first bind wins otherwise.
func (t *Tracer) BindClock(clock func() time.Duration) {
	if t == nil || t.clock != nil {
		return
	}
	t.clock = clock
}

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

func (t *Tracer) write(ev Event) {
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.head] = ev
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
}

func fill(ev *Event, attrs []Attr) {
	k := len(attrs)
	if k > maxAttrs {
		k = maxAttrs
	}
	ev.NAttr = uint8(k)
	copy(ev.Attrs[:k], attrs)
}

// Begin opens a span on lane tid and returns its handle.
func (t *Tracer) Begin(tid int, cat, name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	t.nextSpan++
	sp := Span{ID: t.nextSpan, TID: tid, Cat: cat, Name: name}
	ev := Event{At: t.now(), Kind: KindBegin, TID: tid, Span: sp.ID, Cat: cat, Name: name}
	fill(&ev, attrs)
	t.write(ev)
	return sp
}

// End closes a span. Ending the zero Span is a no-op, so callers need
// not track whether tracing was on when the span opened.
func (t *Tracer) End(sp Span, attrs ...Attr) {
	if t == nil || sp.ID == 0 {
		return
	}
	ev := Event{At: t.now(), Kind: KindEnd, TID: sp.TID, Span: sp.ID, Cat: sp.Cat, Name: sp.Name}
	fill(&ev, attrs)
	t.write(ev)
}

// Instant records a point event on lane tid.
func (t *Tracer) Instant(tid int, cat, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	ev := Event{At: t.now(), Kind: KindInstant, TID: tid, Cat: cat, Name: name}
	fill(&ev, attrs)
	t.write(ev)
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped reports how many events were overwritten after the ring
// filled — the truncation accounting exports carry.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events appends the live events, oldest first, to dst and returns it.
// The ring itself is never handed out.
func (t *Tracer) Events(dst []Event) []Event {
	if t == nil || t.n == 0 {
		return dst
	}
	start := t.head - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		j := start + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		dst = append(dst, t.ring[j])
	}
	return dst
}
