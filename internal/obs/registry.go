// Package obs is the deterministic observability plane: a fixed-slot
// counter/gauge/histogram registry and a virtual-time span tracer whose
// ring buffer records structured events stamped exclusively from sim
// virtual time, so traces are bit-identical across seeded runs.
//
// The package is simulation-native: nothing here reads wall clocks,
// iterates maps during export, or allocates on the hot path. Counters
// are plain incremented words; histograms bucket by power-of-two
// microseconds into a fixed array; the tracer overwrites its oldest
// events once full and accounts for every drop. Registries snapshot to
// one plain struct (name-sorted) that api.StatsResponse carries whole.
//
// Naming convention: metric names are dot-paths,
// "<subsystem>.<thing>[_<unit>]" — e.g. "dns.cache_hits",
// "sim.pending", "activation.boot". Trace categories mirror the
// subsystem ("activation", "gossip", "migrate", "fed", "dns").
package obs

import (
	"math/bits"
	"sort"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; Inc/Add are single-word updates with no allocation.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v }

// histBuckets is the fixed slot count of a Histogram: bucket i counts
// observations whose microsecond value needs i bits, i.e. upper bound
// 2^i - 1 µs. 40 buckets reach past 12 days of latency — more virtual
// time than any experiment spans.
const histBuckets = 40

// Histogram is a fixed-slot latency histogram with power-of-two
// microsecond buckets. Observe is alloc-free: one bits.Len64 and three
// word updates.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    time.Duration
	max    time.Duration
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.n }

// namedGauge is a read-at-snapshot mirror of state owned elsewhere
// (queue depths, epochs). The closure runs only when Snapshot does, so
// mirrored subsystems pay nothing on their hot paths.
type namedGauge struct {
	name string
	fn   func() int64
}

type namedCounter struct {
	name string
	c    *Counter
	fn   func() uint64 // mirror of an externally owned counter
}

type namedHist struct {
	name string
	h    *Histogram
}

// Registry is one subsystem scope's metric set — instantiated per
// board or per cluster, snapshot-able as one struct. Registration
// happens at build time; the hot path only touches the returned
// Counter/Histogram pointers.
type Registry struct {
	Name     string
	counters []namedCounter
	gauges   []namedGauge
	hists    []namedHist
}

// NewRegistry returns an empty registry labelled name.
func NewRegistry(name string) *Registry { return &Registry{Name: name} }

// Counter registers (or returns the existing) owned counter under name.
func (r *Registry) Counter(name string) *Counter {
	for _, nc := range r.counters {
		if nc.name == name && nc.c != nil {
			return nc.c
		}
	}
	c := &Counter{}
	r.counters = append(r.counters, namedCounter{name: name, c: c})
	return c
}

// CounterFunc registers a mirror of a counter owned by another
// subsystem; fn is read only at snapshot time.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.counters = append(r.counters, namedCounter{name: name, fn: fn})
}

// GaugeFunc registers a point-in-time gauge read at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.gauges = append(r.gauges, namedGauge{name: name, fn: fn})
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	for _, nh := range r.hists {
		if nh.name == name {
			return nh.h
		}
	}
	h := &Histogram{}
	r.hists = append(r.hists, namedHist{name: name, h: h})
	return h
}

// CounterSnap is one counter row of a Snapshot.
type CounterSnap struct {
	Name  string
	Value uint64
}

// GaugeSnap is one gauge row of a Snapshot.
type GaugeSnap struct {
	Name  string
	Value int64
}

// HistSnap is one histogram row of a Snapshot. Buckets[i] counts
// samples whose microsecond value fits in i bits (upper bound 2^i-1µs);
// trailing empty buckets are trimmed.
type HistSnap struct {
	Name    string
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets []uint64
}

// Quantile estimates the q-th (0..1) quantile from the power-of-two
// buckets: it returns the upper bound of the bucket holding the q-th
// sample, clamped to the observed max. Coarse by construction — spans
// carry the exact latencies; this serves live dashboards.
func (h *HistSnap) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count-1))
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum > rank {
			ub := time.Duration((uint64(1)<<uint(i))-1) * time.Microsecond
			if ub > h.Max {
				ub = h.Max
			}
			return ub
		}
	}
	return h.Max
}

// Snapshot is a registry frozen as one plain struct: rows name-sorted
// so two snapshots of identical state are identical values.
type Snapshot struct {
	Name     string
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// Snapshot freezes the registry. Mirrors (CounterFunc/GaugeFunc) are
// read here, never on their owners' hot paths.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Name: r.Name}
	for _, nc := range r.counters {
		v := uint64(0)
		if nc.c != nil {
			v = nc.c.Value()
		} else if nc.fn != nil {
			v = nc.fn()
		}
		s.Counters = append(s.Counters, CounterSnap{Name: nc.name, Value: v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, ng := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: ng.name, Value: ng.fn()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for _, nh := range r.hists {
		hs := HistSnap{Name: nh.name, Count: nh.h.n, Sum: nh.h.sum, Max: nh.h.max}
		last := -1
		for i, c := range nh.h.counts {
			if c != 0 {
				last = i
			}
		}
		if last >= 0 {
			hs.Buckets = append([]uint64(nil), nh.h.counts[:last+1]...)
		}
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
