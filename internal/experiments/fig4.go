package experiments

import (
	"fmt"

	"jitsu/internal/metrics"
	"jitsu/internal/sim"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// fig4Variant is one line of Figure 4.
type fig4Variant struct {
	name     string
	platform func() *xen.Platform
	opts     xen.ToolstackOpts
}

func fig4Variants() []fig4Variant {
	return []fig4Variant{
		{"Xen 4.4.0 (bash hotplug)", xen.CubieboardARM,
			xen.ToolstackOpts{Hotplug: xen.HotplugBash, Console: true}},
		{"minimal hotplug script (dash)", xen.CubieboardARM,
			xen.ToolstackOpts{Hotplug: xen.HotplugDash, Console: true}},
		{"inline ioctl()", xen.CubieboardARM,
			xen.ToolstackOpts{Hotplug: xen.HotplugIoctl, Console: true}},
		{"parallel hotplug + build", xen.CubieboardARM,
			xen.ToolstackOpts{Hotplug: xen.HotplugIoctl, ParallelAttach: true, Console: true}},
		{"remove primary console", xen.CubieboardARM, xen.OptimisedOpts()},
		{"switch ARM -> x86", xen.AMDx86, xen.OptimisedOpts()},
	}
}

// Fig4 reproduces Figure 4: domain construction time vs memory size for
// each cumulative toolstack optimisation (construction only — guest
// boot is not included, so the numbers apply to unikernels and Linux
// VMs alike).
func Fig4() *Result {
	r := newResult("Figure 4", "Optimising Xen/ARM domain build times")
	memSizes := []int{16, 32, 64, 128, 256}
	variants := fig4Variants()

	headers := []string{"memory (MiB)"}
	for _, v := range variants {
		headers = append(headers, v.name)
	}
	tab := metrics.NewTable("", headers...)

	const repeats = 10
	for _, mem := range memSizes {
		row := []any{mem}
		for _, v := range variants {
			s := &metrics.Series{}
			for rep := 0; rep < repeats; rep++ {
				s.Add(fig4Build(v, mem, int64(rep)))
			}
			med := s.Percentile(0.5)
			row = append(row, med)
			key := fmt.Sprintf("%s@%d", v.name, mem)
			r.Series[key] = s
		}
		tab.AddRow(row...)
	}
	r.Output = tab.String()
	r.addNote("paper anchors: vanilla 16MiB ≈ 650ms, 256MiB ≈ 1s; dash ≈ 300ms; ioctl ≈ 200ms; fully optimised ≈ 120ms on ARM and ≈ 20ms on x86 (≈6x)")
	return r
}

func fig4Build(v fig4Variant, memMiB int, seed int64) sim.Duration {
	eng := sim.New(400 + seed)
	store := xenstore.NewStore(xenstore.JitsuReconciler{})
	hyp := xen.NewHypervisor(eng, store, v.platform(), memMiB+256)
	ts := xen.NewToolstack(hyp, v.opts)
	var elapsed sim.Duration
	start := eng.Now()
	ts.CreateDomain(xen.DomainConfig{Name: "vm", MemMiB: memMiB, ImageMiB: 1},
		func(d *xen.Domain, err error) {
			if err != nil {
				panic(err)
			}
			elapsed = eng.Now() - start
		})
	eng.Run()
	return elapsed
}
