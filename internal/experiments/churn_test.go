package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jitsu/internal/obs"
)

// TestChurnShape asserts the migration contract: under the same trace
// and the same membership schedule, live migration keeps the post-leave
// p95 time-to-first-response on the warm path while the
// preempt-and-reboot baseline pays boot latency behind every departure.
func TestChurnShape(t *testing.T) {
	r := Churn(75 * time.Second)
	if !strings.Contains(r.Output, "post-leave-p95") {
		t.Fatalf("missing table: %s", r.Output)
	}
	mig := r.Series["churn-migrate post-leave"]
	pre := r.Series["churn-preempt post-leave"]
	if mig.Len() == 0 || pre.Len() == 0 {
		t.Fatal("empty post-leave series")
	}
	// Identical trace → identical sample counts in the churn windows.
	if mig.Len() != pre.Len() {
		t.Errorf("post-leave samples: migrate %d vs preempt %d, want equal", mig.Len(), pre.Len())
	}
	mp95, pp95 := mig.Percentile(0.95), pre.Percentile(0.95)
	if mp95 >= pp95 {
		t.Errorf("migrate post-leave p95 (%v) not better than preempt (%v)", mp95, pp95)
	}
	// The win must be structural — warm path vs rebooting — not noise.
	if mp95 > pp95/5 {
		t.Errorf("migrate post-leave p95 (%v) less than 5x better than preempt (%v)", mp95, pp95)
	}
	if mp95 > 20*time.Millisecond {
		t.Errorf("migrate post-leave p95 = %v, want warm-path ms", mp95)
	}
	// Away from the leave windows both systems serve warm.
	if r.Series["churn-migrate"].Percentile(0.5) > 20*time.Millisecond {
		t.Errorf("migrate overall p50 = %v, want warm-path ms", r.Series["churn-migrate"].Percentile(0.5))
	}
}

// TestChurnDeterminism is the in-repo twin of the CI determinism gate:
// the same seed must reproduce every series bit-for-bit, membership
// churn, gossip and migrations included.
func TestChurnDeterminism(t *testing.T) {
	a := Churn(45*time.Second, WithTracing())
	b := Churn(45*time.Second, WithTracing())
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ across identical runs: %x vs %x", fa, fb)
	}
	for name, sa := range a.Series {
		sb := b.Series[name]
		if sb == nil {
			t.Fatalf("series %q missing from second run", name)
		}
		if FingerprintSeries(sa) != FingerprintSeries(sb) {
			t.Errorf("series %q not bit-identical across runs", name)
		}
	}
	if a.Output != b.Output {
		t.Error("rendered output differs across identical runs")
	}
	// The trace streams are part of the same contract: both runs must
	// export byte-identical Chrome traces, not just matching latencies.
	if len(a.Traces) == 0 {
		t.Fatal("churn attached no tracers")
	}
	for name, ta := range a.Traces {
		tb := b.Traces[name]
		if tb == nil {
			t.Fatalf("trace %q missing from second run", name)
		}
		if ta.Len() == 0 {
			t.Errorf("trace %q recorded no events", name)
		}
		if ta.Fingerprint() != tb.Fingerprint() {
			t.Errorf("trace %q not bit-identical across runs", name)
		}
		var ba, bb bytes.Buffer
		if err := obs.WriteChromeTrace(&ba, ta); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteChromeTrace(&bb, tb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Errorf("trace %q Chrome export differs across runs", name)
		}
	}
}
