package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// densityGain extracts the "N.Nx" figure from the density-gain note.
func densityGain(t *testing.T, r *Result) float64 {
	t.Helper()
	for _, n := range r.Notes {
		if !strings.Contains(n, "density gain") {
			continue
		}
		rest := n[strings.Index(n, ": ")+2:]
		gain, err := strconv.ParseFloat(rest[:strings.Index(rest, "x")], 64)
		if err != nil {
			t.Fatalf("unparseable density note %q: %v", n, err)
		}
		return gain
	}
	t.Fatal("no density-gain note")
	return 0
}

// TestDensityShape asserts the tentpole acceptance criteria: at equal
// memory the three-tier board holds at least 5x the services per GB of
// the warm-only baseline, and the disk-restore activation leg prices
// strictly between the warm restore and the full cold boot.
func TestDensityShape(t *testing.T) {
	r := Density(48, 128, 20)
	if !strings.Contains(r.Output, "three-tier") {
		t.Fatalf("missing density table: %s", r.Output)
	}

	boot := r.Series["density.boot"]
	warm := r.Series["density.warm_restore"]
	disk := r.Series["density.disk_restore"]
	if boot.Len() == 0 || warm.Len() == 0 || disk.Len() == 0 {
		t.Fatal("empty pricing series")
	}
	bp, wp, dp := boot.Percentile(0.95), warm.Percentile(0.95), disk.Percentile(0.95)
	if !(wp < dp && dp < bp) {
		t.Errorf("disk-restore p95 (%v) not strictly between warm restore (%v) and cold boot (%v)", dp, wp, bp)
	}

	// The sweep itself: the warm-only board refuses once memory fills,
	// the three-tier board serves every visit and holds every service.
	if r.Series["density.three_tier"].Len() != 48 {
		t.Errorf("three-tier board served %d of 48 visits", r.Series["density.three_tier"].Len())
	}
	if r.Series["density.warm_only"].Len() == 0 {
		t.Fatal("warm-only board served nothing")
	}
	if gain := densityGain(t, r); gain < 5 {
		t.Errorf("density gain %.1fx below the 5x floor", gain)
	}
}

// TestDensityDeterminism runs the experiment twice with identical
// parameters: the fingerprints (tables plus every raw series) must be
// bit-identical — seeded demotion decisions included.
func TestDensityDeterminism(t *testing.T) {
	a := Density(48, 128, 20)
	b := Density(48, 128, 20)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("density fingerprints diverge: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
}
