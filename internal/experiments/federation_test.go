package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFederationShape asserts the tentpole contract: the 4x4 federation
// recovers its post-skew p95 to the warm path (within sight of the flat
// 16-board cluster that absorbs the skew with raw capacity) with no
// Rebalance() call, while the same federation with the rebalance
// machinery frozen keeps refusing — and the root's state stays
// O(clusters) while the flat directory carries every service row.
func TestFederationShape(t *testing.T) {
	r := Federation(60 * time.Second)
	if !strings.Contains(r.Output, "root-rows") {
		t.Fatalf("missing table: %s", r.Output)
	}
	flatLate := r.Series["flat-1x16 post-skew-late"]
	fedLate := r.Series["fed-4x4 post-skew-late"]
	fedEarly := r.Series["fed-4x4 post-skew-early"]
	frozenLate := r.Series["fed-4x4-norebalance post-skew-late"]
	for name, s := range map[string]interface{ Len() int }{
		"flat late": flatLate, "fed late": fedLate, "fed early": fedEarly, "frozen late": frozenLate,
	} {
		if s.Len() == 0 {
			t.Fatalf("empty series: %s", name)
		}
	}
	// Recovery: the late window runs warm...
	if p := fedLate.Percentile(0.95); p > 20*time.Millisecond {
		t.Errorf("fed post-skew-late p95 = %v, want warm-path ms", p)
	}
	// ...after an early window dominated by the overload.
	if e, l := fedEarly.Percentile(0.95), fedLate.Percentile(0.95); e < 10*l {
		t.Errorf("fed early p95 (%v) not structurally above late p95 (%v): no skew to recover from?", e, l)
	}
	// The frozen federation does not recover.
	if p := frozenLate.Percentile(0.95); p < 20*fedLate.Percentile(0.95) {
		t.Errorf("frozen federation late p95 (%v) recovered without the rebalance machinery", p)
	}
	// Recovery came from cross-cluster moves, not an explicit call.
	if !strings.Contains(r.Output, "xmigs") {
		t.Error("missing cross-migration column")
	}
}

// TestFederationDeterminism is the in-repo twin of the CI determinism
// gate for the federation experiment: same seeds, bit-identical series —
// summary gossip, delegation, spills and cross-cluster migrations
// included.
func TestFederationDeterminism(t *testing.T) {
	a := Federation(45 * time.Second)
	b := Federation(45 * time.Second)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ across identical runs: %x vs %x", fa, fb)
	}
	for name, sa := range a.Series {
		sb := b.Series[name]
		if sb == nil {
			t.Fatalf("series %q missing from second run", name)
		}
		if FingerprintSeries(sa) != FingerprintSeries(sb) {
			t.Errorf("series %q not bit-identical across runs", name)
		}
	}
	if a.Output != b.Output {
		t.Error("rendered output differs across identical runs")
	}
}
