package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/container"
	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// fig9aConfig is one line of Figure 9a.
type fig9aConfig struct {
	name      string
	synjitsu  bool
	toolstack xen.ToolstackOpts
}

func fig9aConfigs() []fig9aConfig {
	return []fig9aConfig{
		{"cold start, no synjitsu", false, xen.OptimisedOpts()},
		{"synjitsu + vanilla toolstack", true, xen.VanillaOpts()},
		{"synjitsu + optimised toolstack", true, xen.OptimisedOpts()},
	}
}

// Fig9a reproduces Figure 9a: the CDF of end-to-end HTTP response times
// for a cold start (DNS query + TCP + HTTP against a not-running
// unikernel) under the three configurations.
func Fig9a(trials int) *Result {
	r := newResult("Figure 9a", "HTTP response times for Jitsu cold starts")
	var series []*metrics.Series
	for _, cfg := range fig9aConfigs() {
		s := &metrics.Series{Name: cfg.name}
		for i := 0; i < trials; i++ {
			rt, err := fig9aTrial(cfg, int64(i))
			if err != nil {
				continue
			}
			s.Add(rt)
		}
		r.Series[cfg.name] = s
		series = append(series, s)
	}
	r.Output = metrics.ASCIICDF("Figure 9a", series...)
	r.addNote("paper shape: without synjitsu responses cluster beyond 1s (SYN retransmission); synjitsu+vanilla lands around 0.7-1.1s; synjitsu+optimised clusters in the 300-550ms band")
	return r
}

// fig9aTrial boots a fresh board and measures one cold request.
func fig9aTrial(cfg fig9aConfig, seed int64) (sim.Duration, error) {
	b := core.New(core.WithSeed(900+seed),
		core.WithSynjitsu(cfg.synjitsu), core.WithToolstack(cfg.toolstack))
	b.Jitsu.Register(core.ServiceConfig{
		Name:  "alice.family.name",
		IP:    netstack.IPv4(10, 0, 0, 20),
		Port:  80,
		Image: unikernel.UnikernelImage("alice", unikernel.NewStaticSiteApp("alice")),
	})
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var rt sim.Duration
	var gotErr error
	b.FetchViaDNS(client, "alice.family.name", "/", 30*time.Second,
		func(resp *netstack.HTTPResponse, d sim.Duration, err error) {
			rt, gotErr = d, err
		})
	b.Eng.Run()
	return rt, gotErr
}

// Fig9b reproduces Figure 9b: Docker container start response times on
// the three storage configurations.
func Fig9b(trials int) *Result {
	r := newResult("Figure 9b", "HTTP response times for inetd-triggered Docker containers")
	configs := []struct {
		name     string
		storage  container.Storage
		underXen bool
	}{
		{"docker, ext4 on tmpfs", container.TmpfsLoopback(), false},
		{"docker, ext4 on SD card", container.SDCard(), false},
		{"docker in Xen dom0, ext4 on SD card", container.SDCard(), true},
	}
	var series []*metrics.Series
	failures := map[string]int{}
	for ci, cfg := range configs {
		s := &metrics.Series{Name: cfg.name}
		eng := sim.New(950 + int64(ci))
		rt := container.NewRuntime(eng, cfg.storage, cfg.underXen)
		svc := &container.InetdService{
			Runtime:         rt,
			Image:           container.WebServerImage(),
			RequestOverhead: sim.Exponential{Base: 4 * time.Millisecond, Mean: time.Millisecond},
		}
		done := 0
		var next func()
		next = func() {
			if done >= trials {
				return
			}
			done++
			svc.HandleRequest(func(total sim.Duration, err error) {
				if err != nil {
					failures[cfg.name]++
				} else {
					s.Add(total)
				}
				next()
			})
		}
		next()
		eng.Run()
		r.Series[cfg.name] = s
		series = append(series, s)
	}
	r.Output = metrics.ASCIICDF("Figure 9b", series...)
	for name, n := range failures {
		r.addNote("%s: %d/%d trials died with early process termination (the paper's loopback-over-tmpfs errors)", name, n, trials)
	}
	r.addNote("paper shape: tmpfs ≥ 600ms, SD card ≥ 1.1s, Xen dom0 on SD slightly slower still — all far above Jitsu's optimised cold start")
	return r
}

// Headline reproduces the §3/§6 headline numbers: cold boot + respond in
// ≈300–350ms on ARM / 20–30ms on x86, warm responses ≈5ms.
func Headline(trials int) *Result {
	r := newResult("Headline", "cold vs warm service latency, ARM vs x86")
	if trials < 3 {
		trials = 3
	}
	rows := []struct {
		name     string
		platform func() *xen.Platform
		warm     bool
	}{
		{"ARM cold start", xen.CubieboardARM, false},
		{"ARM warm request", xen.CubieboardARM, true},
		{"x86 cold start", xen.AMDx86, false},
		{"x86 warm request", xen.AMDx86, true},
	}
	tab := metrics.NewTable("", "scenario", "p50", "p90")
	for ri, row := range rows {
		s := &metrics.Series{Name: row.name}
		for i := 0; i < trials; i++ {
			b := core.New(core.WithSeed(970+int64(ri*1000+i)),
				core.WithPlatform(row.platform()))
			b.Jitsu.Register(core.ServiceConfig{
				Name: "svc.family.name", IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
				Image: unikernel.UnikernelImage("svc", unikernel.NewStaticSiteApp("svc")),
			})
			client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
			fetch := func(record bool) {
				b.FetchViaDNS(client, "svc.family.name", "/", 30*time.Second,
					func(resp *netstack.HTTPResponse, d sim.Duration, err error) {
						if err == nil && record {
							s.Add(d)
						}
					})
				b.Eng.Run()
			}
			if row.warm {
				fetch(false) // boot it
				fetch(true)  // measure warm
			} else {
				fetch(true)
			}
		}
		r.Series[row.name] = s
		d := s.Summarize()
		tab.AddRow(row.name, d.P50(), d.Percentile(0.9))
	}
	r.Output = tab.String()
	r.addNote("paper anchors: 'a service VM can cold boot and respond to a TCP client in around 300-350ms' (ARM), '20-30ms response times in datacenter environments' (x86), 'an already-booted service can respond to local traffic in around 5ms'")
	return r
}

// Throughput reproduces the §4 throughput checks: the disk-bound HTTP
// queue service (≈57.92 Mb/s ceiling) and bulk-TCP parity between a
// Linux guest and a MirageOS guest.
func Throughput() *Result {
	r := newResult("Throughput", "HTTP queue service goodput and Linux/Mirage iperf parity")
	tab := metrics.NewTable("", "workload", "goodput (Mb/s)")

	queue := measureQueueGoodput()
	tab.AddRow("HTTP queue service (disk-bound)", fmt.Sprintf("%.1f", queue))
	mirage := measureBulkTCP(true)
	linux := measureBulkTCP(false)
	tab.AddRow("bulk TCP to Mirage guest", fmt.Sprintf("%.1f", mirage))
	tab.AddRow("bulk TCP to Linux guest", fmt.Sprintf("%.1f", linux))
	r.Output = tab.String()
	qs := &metrics.Series{Name: "queue"}
	qs.Add(sim.Duration(queue * float64(time.Millisecond))) // store scalar for assertions
	r.Series["queue-mbps"] = qs
	r.addNote("paper anchors: queue service served 57.92 Mb/s, disk bound; 'an iperf test ... revealed the same performance for Linux and MirageOS VMs' (measured %.1f vs %.1f)", linux, mirage)
	return r
}

func measureQueueGoodput() float64 {
	b := core.New(core.WithSeed(990))
	app := unikernel.NewQueueServiceApp()
	b.Jitsu.Register(core.ServiceConfig{
		Name: "queue.family.name", IP: netstack.IPv4(10, 0, 0, 40), Port: 80,
		Image: unikernel.UnikernelImage("queue", app),
	})
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	// Boot.
	b.FetchViaDNS(client, "queue.family.name", "/pop", 30*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
	b.Eng.Run()
	// Measure a sustained run of fetches.
	const items = 30
	var busy sim.Duration
	var bytes int
	done := 0
	var next func()
	next = func() {
		if done >= items {
			return
		}
		done++
		start := b.Eng.Now()
		client.HTTPGet(netstack.IPv4(10, 0, 0, 40), 80, "/pop", 30*time.Second,
			func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
				if err == nil {
					busy += b.Eng.Now() - start
					bytes += len(resp.Body)
				}
				next()
			})
	}
	next()
	b.Eng.Run()
	if busy == 0 {
		return 0
	}
	return float64(bytes*8) / busy.Seconds() / 1e6
}

func measureBulkTCP(mirage bool) float64 {
	b := core.New(core.WithSeed(991))
	img := unikernel.UnikernelImage("sink", &unikernel.EchoApp{Port: 5001})
	if !mirage {
		img = unikernel.LinuxImage("sink", &unikernel.EchoApp{Port: 5001})
	}
	ip := netstack.IPv4(10, 0, 0, 50)
	b.Jitsu.Register(core.ServiceConfig{Name: "sink.family.name", IP: ip, Port: 5001, Image: img})
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	// Summon the guest with a one-byte echo (SYN-triggered launch) and
	// let everything settle so the measurement excludes boot time.
	client.DialTCP(ip, 5001, func(c *netstack.TCPConn, err error) {
		if err != nil {
			return
		}
		c.OnData(func([]byte) { c.Close() })
		c.Send([]byte{1})
	})
	b.Eng.Run()
	// Measured run: a fresh connection straight to the live guest.
	payload := make([]byte, 512*1024)
	var goodput float64
	client.DialTCP(ip, 5001, func(c *netstack.TCPConn, err error) {
		if err != nil {
			return
		}
		start := b.Eng.Now()
		received := 0
		c.OnData(func(data []byte) {
			received += len(data)
			if received >= len(payload) {
				elapsed := b.Eng.Now() - start
				goodput = float64(received*8) / elapsed.Seconds() / 1e6
				c.Close()
			}
		})
		c.Send(payload)
	})
	b.Eng.Run()
	return goodput
}
