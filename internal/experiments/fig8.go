package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/metrics"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// Fig8 reproduces Figure 8: ICMP round-trip time against payload size
// for four targets — the client's own stack (localhost), the Xen dom0,
// a Linux guest VM, and a MirageOS unikernel VM.
func Fig8(trials int) *Result {
	r := newResult("Figure 8", "ICMP RTT showing the datapath latency")
	if trials < 4 {
		trials = 4
	}
	payloads := []int{56, 128, 512, 1024, 1400}

	eng := sim.New(800)
	store := xenstore.NewStore(xenstore.JitsuReconciler{})
	hyp := xen.NewHypervisor(eng, store, xen.CubieboardARM(), 1024)
	ts := xen.NewToolstack(hyp, xen.OptimisedOpts())
	bridge := netsim.NewBridge(eng, "xenbr0", 10*time.Microsecond)
	launcher := unikernel.NewLauncher(ts, bridge)

	// External client on the 100Mb edge link.
	clientNIC := netsim.NewNIC(eng, "client", netsim.MACFor(0x900))
	bridge.ConnectNIC(clientNIC, 150*time.Microsecond, 100e6)
	client := netstack.NewHost(eng, "client", clientNIC, netstack.IPv4(10, 0, 0, 9), netstack.LinuxNativeProfile())

	// dom0's stack.
	dom0NIC := netsim.NewNIC(eng, "dom0", netsim.MACFor(0x901))
	bridge.ConnectNIC(dom0NIC, 20*time.Microsecond, 0)
	dom0 := netstack.NewHost(eng, "dom0", dom0NIC, netstack.IPv4(10, 0, 0, 1), netstack.Dom0Profile())
	_ = dom0

	// Guests.
	linuxIP := netstack.IPv4(10, 0, 0, 30)
	mirageIP := netstack.IPv4(10, 0, 0, 31)
	launcher.Launch(unikernel.LinuxImage("linux-guest", &unikernel.EchoApp{}), linuxIP, func(*unikernel.Guest, error) {})
	launcher.Launch(unikernel.UnikernelImage("mirage-guest", &unikernel.EchoApp{}), mirageIP, func(*unikernel.Guest, error) {})
	eng.Run()

	targets := []struct {
		name string
		ip   netstack.IP
	}{
		{"localhost", client.IP},
		{"dom0", dom0.IP},
		{"linux", linuxIP},
		{"mirage", mirageIP},
	}

	tab := metrics.NewTable("", "payload (B)", "localhost", "dom0", "linux", "mirage")
	for _, size := range payloads {
		row := []any{size}
		for _, tgt := range targets {
			s := &metrics.Series{Name: fmt.Sprintf("%s@%d", tgt.name, size)}
			for i := 0; i < trials; i++ {
				client.Ping(tgt.ip, size, 5*time.Second, func(rtt sim.Duration, err error) {
					if err == nil {
						s.Add(rtt)
					}
				})
				eng.Run()
			}
			r.Series[s.Name] = s
			row = append(row, s.Percentile(0.5))
		}
		tab.AddRow(row...)
	}
	r.Output = tab.String()
	r.addNote("paper shape: all RTTs < 1ms; localhost < dom0 < linux ≤ mirage; Linux-vs-Mirage gap never exceeds 0.4ms, Mirage slightly noisier")
	return r
}
