package experiments

import (
	"testing"
	"time"
)

// TestStampedeClusterGossip is the cluster-tier acceptance: a mass
// migration paced by the congestion controller must not perturb the
// failure detector at all, while the unpaced blast false-suspects
// live boards on the very same seed and byte counts.
func TestStampedeClusterGossip(t *testing.T) {
	paced := runStampedeCluster("paced", false, 2600)
	if paced.suspects != 0 || paced.confirms != 0 {
		t.Errorf("paced rebalance perturbed gossip: %d suspects, %d confirms",
			paced.suspects, paced.confirms)
	}
	if paced.migrated != stampedeServices || paced.failed != 0 {
		t.Errorf("paced rebalance: %d/%d migrated, %d failed",
			paced.migrated, stampedeServices, paced.failed)
	}
	if paced.aborts != 0 {
		t.Errorf("paced rebalance aborted %d transfers", paced.aborts)
	}

	blast := runStampedeCluster("unpaced", true, 2600)
	if blast.suspects == 0 {
		t.Error("unpaced blast did not false-suspect any board — the ablation shows nothing")
	}
	if blast.retx <= paced.retx {
		t.Errorf("unpaced retx %d <= paced %d, expected a retransmit storm",
			blast.retx, paced.retx)
	}
}

// TestStampedeFedDelegation is the federation-tier acceptance: with the
// shed paced, every fetch succeeds and delegation p95 stays within 2x
// the idle baseline; unpaced, the root's retransmit budget dies behind
// the chunk backlog and fetches SERVFAIL.
func TestStampedeFedDelegation(t *testing.T) {
	horizon := 300 * time.Second
	idle := runStampedeFed("idle", false, false, horizon)
	paced := runStampedeFed("paced", true, false, horizon)
	blast := runStampedeFed("unpaced", true, true, horizon)

	if idle.errs != 0 || idle.delegTimeouts != 0 {
		t.Fatalf("idle baseline unhealthy: %d errors, %d delegation timeouts",
			idle.errs, idle.delegTimeouts)
	}
	if paced.errs != 0 || paced.delegTimeouts != 0 {
		t.Errorf("paced shed: %d errors, %d delegation timeouts, want 0/0",
			paced.errs, paced.delegTimeouts)
	}
	if paced.xmigs != stampedeFedBatch {
		t.Errorf("paced shed moved %d services, want %d", paced.xmigs, stampedeFedBatch)
	}
	if p, i := paced.ok.Percentile(0.95), idle.ok.Percentile(0.95); p > 2*i {
		t.Errorf("paced delegation p95 %v > 2x idle %v", p, i)
	}
	if blast.delegTimeouts == 0 || blast.errs == 0 {
		t.Errorf("unpaced shed: %d delegation timeouts, %d errors — the ablation shows nothing",
			blast.delegTimeouts, blast.errs)
	}
}

// TestStampedeDeterminism: the whole experiment — latency series plus
// both tiers' management-link captures — double-runs bit-identically.
func TestStampedeDeterminism(t *testing.T) {
	a := Stampede(150 * time.Second)
	b := Stampede(150 * time.Second)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ: %016x vs %016x", fa, fb)
	}
	for name, c := range a.Captures {
		if c.Fingerprint() == 0 {
			t.Errorf("capture %q is empty", name)
		}
		if c.Fingerprint() != b.Captures[name].Fingerprint() {
			t.Errorf("capture %q differs across runs", name)
		}
	}
	if len(a.Captures) != 5 {
		t.Errorf("captures = %d, want one per arm (5)", len(a.Captures))
	}
}
