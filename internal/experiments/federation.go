package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"jitsu/internal/cluster"
	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// The federation workload: the same service population served two ways —
// one flat 16-board cluster (one directory holding every service row)
// versus a 4x4 federation (a root holding only per-cluster summaries,
// delegating to the owning cluster's directory). Midway through the
// trace the services homed on federation cluster 0 turn hot — a
// regional popularity skew. The flat cluster absorbs it with raw
// capacity; the federation must *rebalance*: admission refusals spill
// starved services to clusters with room, and the root's skew detector
// (sustained load imbalance in the gossiped per-cluster EWMAs) sheds
// warm replicas across clusters over the Checkpoint -> Transfer leg.
// Nobody calls Rebalance().
const (
	fedExpClusters  = 4
	fedExpBoardsPer = 4
	fedExpServices  = 80 // 20 per cluster
	// fedExpImageMiB: 4 replicas fill a 768 MiB board, so one cluster
	// (16 slots) cannot hold all 20 of its services warm — the skew
	// must move work, not just wake pools.
	fedExpImageMiB = 192
	fedExpColdGap  = 20 * time.Second
	fedExpHotGap   = 1500 * time.Millisecond
	// fedExpMinRate makes rarely-visited services (effective rate 0.05/s
	// at the cold gap) release their slot between visits, while a hot
	// service (0.67/s) would need a ten-second silence to be reclaimed.
	fedExpMinRate      = 0.1
	fedExpSummaryEvery = 500 * time.Millisecond
)

// fedHome is the cluster service s homes on: least-loaded registration
// over equal clusters fills round-robin. Asserted at registration.
func fedHome(s int) int { return s % fedExpClusters }

func fedServiceConfig(s int) core.ServiceConfig {
	name := fmt.Sprintf("svc%02d.family.name", s)
	img := unikernel.UnikernelImage(fmt.Sprintf("svc%02d", s), unikernel.NewStaticSiteApp(name))
	img.MemMiB = fedExpImageMiB
	return core.ServiceConfig{
		Name:  name,
		IP:    netstack.IPv4(10, 0, 0, byte(20+s)),
		Port:  80,
		Image: img,
	}
}

// fedTrace is the shared Poisson schedule: every service arrives at the
// cold mean gap; from skewAt the services homed on cluster 0 switch to
// the hot gap.
func fedTrace(seed int64, horizon, skewAt sim.Duration) []scalingArrival {
	rng := rand.New(rand.NewSource(seed))
	var trace []scalingArrival
	for s := 0; s < fedExpServices; s++ {
		hot := fedHome(s) == 0
		at := sim.Duration(rng.ExpFloat64() * float64(fedExpColdGap))
		for at < horizon {
			if hot && at >= skewAt {
				break
			}
			trace = append(trace, scalingArrival{at: at, svc: s})
			at += sim.Duration(rng.ExpFloat64() * float64(fedExpColdGap))
		}
		if !hot {
			continue
		}
		at = skewAt + sim.Duration(rng.ExpFloat64()*float64(fedExpHotGap))
		for at < horizon {
			trace = append(trace, scalingArrival{at: at, svc: s})
			at += sim.Duration(rng.ExpFloat64() * float64(fedExpHotGap))
		}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		return trace[i].svc < trace[j].svc
	})
	return trace
}

// fedWindows are the post-skew observation windows: early catches the
// overload (and the rebalance in flight), late the recovered steady
// state.
func fedWindows(horizon, skewAt sim.Duration) (earlyFrom, earlyTo, lateFrom sim.Duration) {
	return skewAt + time.Second, skewAt + 11*time.Second, skewAt + 20*time.Second
}

type fedRunOutcome struct {
	all, early, late             *metrics.Series
	refused, earlyRef, lateRef   int
	errs                         int
	cold                         uint64
	spills, xmigs, sheds         uint64
	rootRows, dirRows, rootScans uint64
}

func newFedRunOutcome(label string) *fedRunOutcome {
	return &fedRunOutcome{
		all:   &metrics.Series{Name: label},
		early: &metrics.Series{Name: label + " post-skew-early"},
		late:  &metrics.Series{Name: label + " post-skew-late"},
	}
}

// record books one outcome. The post-skew windows track only the
// skewed (hot) population — the cold background services pay a designed
// cold start per visit in every system, which would otherwise bury the
// recovery signal in the window percentiles.
func (o *fedRunOutcome) record(at sim.Duration, svc int, d sim.Duration, err error,
	earlyFrom, earlyTo, lateFrom sim.Duration) {
	refused := err == cluster.ErrClusterFull || err == cluster.ErrFederationFull
	switch {
	case refused:
		o.refused++
	case err != nil:
		o.errs++
	default:
		o.all.Add(d)
	}
	if fedHome(svc) != 0 {
		return
	}
	switch {
	case at >= earlyFrom && at < earlyTo:
		if refused {
			o.earlyRef++
		} else if err == nil {
			o.early.Add(d)
		}
	case at >= lateFrom:
		if refused {
			o.lateRef++
		} else if err == nil {
			o.late.Add(d)
		}
	}
}

// runFedFlat replays the trace against one 16-board cluster: the flat
// directory baseline whose root state is O(services).
func runFedFlat(seed int64, trace []scalingArrival, horizon, skewAt sim.Duration) *fedRunOutcome {
	c := cluster.NewCluster(
		cluster.WithBoards(fedExpClusters*fedExpBoardsPer),
		cluster.WithSeed(seed),
		cluster.WithMinRate(fedExpMinRate),
	)
	for s := 0; s < fedExpServices; s++ {
		c.RegisterService(fedServiceConfig(s))
	}
	cl := c.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	out := newFedRunOutcome("flat-1x16")
	ef, et, lf := fedWindows(horizon, skewAt)
	for _, a := range trace {
		a := a
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		c.Eng().At(a.at, func() {
			cl.Fetch(name, "/", 30*time.Second,
				func(_ int, _ *netstack.HTTPResponse, d sim.Duration, err error) {
					out.record(a.at, a.svc, d, err, ef, et, lf)
				})
		})
	}
	c.RunAll()
	for _, t := range c.ServiceTotals() {
		out.cold += t.ColdStarts
	}
	out.dirRows = uint64(len(c.Directory().Entries()))
	out.rootRows = out.dirRows // the flat directory IS the root
	return out
}

// runFedFederation replays the trace against the 4x4 federation, with
// or without the rebalance machinery (spill + skew shed).
func runFedFederation(label string, rebalance bool, seed int64, trace []scalingArrival, horizon, skewAt sim.Duration) *fedRunOutcome {
	opts := []cluster.FedOption{
		cluster.WithClusters(fedExpClusters),
		cluster.WithMemberOptions(
			cluster.WithBoards(fedExpBoardsPer),
			cluster.WithSeed(seed),
			cluster.WithMinRate(fedExpMinRate),
		),
		cluster.WithSummaryEvery(fedExpSummaryEvery),
	}
	if rebalance {
		opts = append(opts, cluster.WithSkewPolicy(2.0, 0.5, 3, 2))
	} else {
		opts = append(opts, cluster.WithSkewPolicy(0, 0.5, 3, 2), cluster.WithSpillOnRefuse(false))
	}
	f := cluster.NewFederation(opts...)
	for s := 0; s < fedExpServices; s++ {
		m, _ := f.RegisterService(fedServiceConfig(s))
		if m.ID != fedHome(s) {
			panic(fmt.Sprintf("federation: svc%02d homed on cluster %d, want %d", s, m.ID, fedHome(s)))
		}
	}
	fc := f.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	out := newFedRunOutcome(label)
	ef, et, lf := fedWindows(horizon, skewAt)
	for _, a := range trace {
		a := a
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		f.Eng().At(a.at, func() {
			fc.Fetch(name, "/", 30*time.Second,
				func(_, _ int, _ *netstack.HTTPResponse, d sim.Duration, err error) {
					out.record(a.at, a.svc, d, err, ef, et, lf)
				})
		})
	}
	// Periodic summary pushes keep the queue alive: run the horizon plus
	// slack, quiesce, drain.
	f.RunUntil(horizon + 15*time.Second)
	f.Stop()
	f.RunAll()
	for _, m := range f.Members() {
		for _, t := range m.Cluster.ServiceTotals() {
			out.cold += t.ColdStarts
		}
		out.dirRows += uint64(len(m.Cluster.Directory().Entries()))
	}
	root := f.Root()
	out.rootRows = uint64(root.StateSize)
	out.rootScans = root.Scans
	out.spills = f.Spills
	out.xmigs = f.CrossMigrations
	out.sheds = f.Sheds
	return out
}

// Federation contrasts the flat cluster with the summarized federation
// under the same regional-skew Poisson trace.
func Federation(horizon sim.Duration) *Result {
	r := newResult("Federation", "flat 1x16 cluster vs 4x4 federation under regional skew")
	skewAt := horizon * 2 / 5
	trace := fedTrace(11000, horizon, skewAt)

	flat := runFedFlat(11100, trace, horizon, skewAt)
	fed := runFedFederation("fed-4x4", true, 11100, trace, horizon, skewAt)
	frozen := runFedFederation("fed-4x4-norebalance", false, 11100, trace, horizon, skewAt)

	tab := metrics.NewTable("",
		"system", "n-ok", "refused", "p95", "early-p95", "late-p95",
		"early-refused", "late-refused", "coldstarts", "spills", "xmigs", "root-rows")
	for _, o := range []*fedRunOutcome{flat, fed, frozen} {
		tab.AddRow(o.all.Name, o.all.Len(), o.refused,
			o.all.Percentile(0.95), o.early.Percentile(0.95), o.late.Percentile(0.95),
			o.earlyRef, o.lateRef, o.cold, o.spills, o.xmigs, o.rootRows)
		r.Series[o.all.Name] = o.all
		r.Series[o.early.Name] = o.early
		r.Series[o.late.Name] = o.late
	}
	r.Output = tab.String()
	r.addNote("one Poisson trace; at t=%v the 20 services homed on federation cluster 0 go hot (mean gap %v) while the rest stay at %v — 20 warm replicas of %d MiB cannot fit cluster 0's 16 slots", skewAt, fedExpHotGap, fedExpColdGap, fedExpImageMiB)
	r.addNote("the federation root holds %d summary rows for %d services (the flat directory holds %d rows; the member directories %d between them); delegated lookups scan summaries — %d scans over the whole trace, the rest served from the epoch-stamped delegation/negative caches", fed.rootRows, fedExpServices, flat.rootRows, fed.dirRows, fed.rootScans)
	r.addNote("recovery is automatic: admission refusals spill starved services to clusters with room (%d spills) and the root's sustained-skew detector sheds warm replicas over the Checkpoint->Transfer leg (%d cross-cluster migrations, %d shed commands) — no Rebalance() call; the frozen federation keeps refusing (%d late-window refusals vs %d)", fed.spills, fed.xmigs, fed.sheds, frozen.lateRef, fed.lateRef)
	return r
}
