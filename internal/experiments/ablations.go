package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/core"
	"jitsu/internal/dns"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// The ablations quantify the design choices DESIGN.md calls out. None
// map to a single paper figure; they fill the gaps the paper argues in
// prose.

// AblationSynjitsuMatrix runs the 2x2 of {synjitsu} x {toolstack}: the
// paper plots three of the four cells in Figure 9a; the fourth (no
// synjitsu + vanilla) completes the picture.
func AblationSynjitsuMatrix(trials int) *Result {
	r := newResult("Ablation: Synjitsu x Toolstack", "cold-start medians for the full 2x2")
	tab := metrics.NewTable("", "synjitsu", "toolstack", "p50 cold start")
	for _, syn := range []bool{false, true} {
		for _, opt := range []bool{false, true} {
			opts := xen.VanillaOpts()
			name := "vanilla"
			if opt {
				opts = xen.OptimisedOpts()
				name = "optimised"
			}
			s := &metrics.Series{Name: fmt.Sprintf("syn=%v/%s", syn, name)}
			for i := 0; i < trials; i++ {
				rt, err := fig9aTrial(fig9aConfig{synjitsu: syn, toolstack: opts}, int64(i))
				if err == nil {
					s.Add(rt)
				}
			}
			r.Series[s.Name] = s
			tab.AddRow(fmt.Sprint(syn), name, s.Percentile(0.5))
		}
	}
	r.Output = tab.String()
	r.addNote("expected: synjitsu dominates; the toolstack optimisation matters much more once synjitsu removes the 1s retransmission floor")
	return r
}

// AblationPrecreatedDomains quantifies the memory-vs-latency trade the
// paper declines (§3.1: "we prefer not to pay the cost of increased
// memory usage that would result from the pre-created domains").
func AblationPrecreatedDomains() *Result {
	r := newResult("Ablation: pre-created domains", "launch latency vs standing memory cost")
	tab := metrics.NewTable("", "pool size", "claim p50", "standing memory (MiB)")
	for _, pool := range []int{0, 1, 4, 8} {
		s := &metrics.Series{}
		var standing int
		for i := 0; i < 8; i++ {
			eng := sim.New(1200 + int64(i))
			store := xenstore.NewStore(xenstore.JitsuReconciler{})
			hyp := xen.NewHypervisor(eng, store, xen.CubieboardARM(), 1024)
			opts := xen.OptimisedOpts()
			opts.PrecreatePool = pool
			opts.PoolMemMiB = 16
			ts := xen.NewToolstack(hyp, opts)
			eng.Run() // drain pool refills
			start := eng.Now()
			ts.CreateDomain(xen.DomainConfig{Name: "svc", MemMiB: 16, ImageMiB: 1},
				func(d *xen.Domain, err error) {
					if err == nil {
						s.Add(eng.Now() - start)
					}
				})
			eng.Run()
			standing = pool * opts.PoolMemMiB // the memory the paper refuses to pin
		}
		r.Series[fmt.Sprintf("pool%d", pool)] = s
		tab.AddRow(pool, s.Percentile(0.5), standing)
	}
	r.Output = tab.String()
	r.addNote("pre-creation cuts launch to image-load time (~10ms) but pins 16MiB per pooled domain — on a 1GB board that is real capacity")
	return r
}

// AblationHotplug isolates the hotplug mechanism's contribution.
func AblationHotplug() *Result {
	r := newResult("Ablation: hotplug mechanism", "domain build time at 16MiB per mechanism")
	tab := metrics.NewTable("", "mechanism", "p50 build")
	for _, mech := range []xen.HotplugMechanism{xen.HotplugBash, xen.HotplugDash, xen.HotplugIoctl} {
		s := &metrics.Series{}
		for i := 0; i < 10; i++ {
			s.Add(fig4Build(fig4Variant{
				platform: xen.CubieboardARM,
				opts:     xen.ToolstackOpts{Hotplug: mech, Console: true},
			}, 16, int64(i)))
		}
		r.Series[mech.String()] = s
		tab.AddRow(mech.String(), s.Percentile(0.5))
	}
	r.Output = tab.String()
	return r
}

// AblationParallelAttach isolates the parallel vif attachment.
func AblationParallelAttach() *Result {
	r := newResult("Ablation: parallel device attach", "serial vs parallel vif chain")
	tab := metrics.NewTable("", "mode", "p50 build")
	for _, par := range []bool{false, true} {
		s := &metrics.Series{}
		for i := 0; i < 10; i++ {
			s.Add(fig4Build(fig4Variant{
				platform: xen.CubieboardARM,
				opts:     xen.ToolstackOpts{Hotplug: xen.HotplugIoctl, ParallelAttach: par, Console: true},
			}, 16, int64(i)))
		}
		name := "serial"
		if par {
			name = "parallel"
		}
		r.Series[name] = s
		tab.AddRow(name, s.Percentile(0.5))
	}
	r.Output = tab.String()
	return r
}

// AblationDelayedDNS compares Synjitsu against the rejected alternative
// of delaying the DNS response until the unikernel network is live
// (§3.3.1).
func AblationDelayedDNS(trials int) *Result {
	r := newResult("Ablation: delayed DNS vs Synjitsu", "the §3.3.1 design alternative")
	tab := metrics.NewTable("", "strategy", "DNS p50", "total p50")

	type strat struct {
		name    string
		syn     bool
		delayed bool
	}
	for _, st := range []strat{
		{"synjitsu proxying", true, false},
		{"delay DNS until ready", false, true},
	} {
		dnsS := &metrics.Series{}
		totS := &metrics.Series{}
		for i := 0; i < trials; i++ {
			b := core.New(core.WithSeed(1300+int64(i)),
				core.WithSynjitsu(st.syn), core.WithDelayedDNS(st.delayed))
			b.Jitsu.Register(core.ServiceConfig{
				Name: "alice.family.name", IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
				Image: unikernel.UnikernelImage("alice", unikernel.NewStaticSiteApp("alice")),
			})
			client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
			resolver := &dns.Client{Host: client}
			start := b.Eng.Now()
			resolver.Query(core.NSAddr, "alice.family.name", dns.TypeA, 30*time.Second,
				func(m *dns.Message, d sim.Duration, err error) {
					if err != nil || len(m.Answers) == 0 {
						return
					}
					dnsS.Add(d)
					client.HTTPGet(m.Answers[0].A, 80, "/", 30*time.Second,
						func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
							if err == nil {
								totS.Add(b.Eng.Now() - start)
							}
						})
				})
			b.Eng.Run()
		}
		r.Series[st.name+"/dns"] = dnsS
		r.Series[st.name+"/total"] = totS
		tab.AddRow(st.name, dnsS.Percentile(0.5), totS.Percentile(0.5))
	}
	r.Output = tab.String()
	r.addNote("both avoid the 1s SYN floor; synjitsu keeps DNS sub-millisecond and overlaps the handshake with the boot, which is why the paper prefers it")
	return r
}

// AblationMergeStrategies is Figure 3 at one contention point,
// comparing conflict counts directly.
func AblationMergeStrategies(n int) *Result {
	r := newResult("Ablation: XenStore merge strategies", fmt.Sprintf("conflicts at %d parallel builds", n))
	tab := metrics.NewTable("", "reconciler", "wall time", "tx retries")
	for _, rec := range []xenstore.Reconciler{
		xenstore.CReconciler{}, xenstore.OCamlReconciler{}, xenstore.JitsuReconciler{},
	} {
		elapsed, retries := runFig3Cell(rec, n)
		tab.AddRow(rec.Name(), elapsed, fmt.Sprint(retries))
		s := &metrics.Series{Name: rec.Name()}
		s.Add(elapsed)
		r.Series[rec.Name()] = s
	}
	r.Output = tab.String()
	return r
}
