package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/metrics"
	"jitsu/internal/sim"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// Fig3 reproduces Figure 3: wall-clock time to complete N parallel VM
// start/stop sequences under the three xenstored transaction engines.
// The C daemon's abort-on-any-commit rule plus its filesystem-backed
// per-op cost produce the super-linear blow-up; the Jitsu merge stays
// near-linear.
func Fig3(parallels []int) *Result {
	r := newResult("Figure 3", "XenStore transaction reconciliation under parallel VM start/stop")
	recs := []xenstore.Reconciler{
		xenstore.CReconciler{},
		xenstore.OCamlReconciler{},
		xenstore.JitsuReconciler{},
	}
	tab := metrics.NewTable("", "parallel sequences", "C xenstored", "OCaml xenstored", "Jitsu xenstored", "C retries", "Jitsu retries")
	for _, n := range parallels {
		row := []any{n}
		var retriesByRec []uint64
		for _, rec := range recs {
			elapsed, retries := runFig3Cell(rec, n)
			row = append(row, elapsed)
			retriesByRec = append(retriesByRec, retries)
			s, ok := r.Series[rec.Name()]
			if !ok {
				s = &metrics.Series{Name: rec.Name()}
				r.Series[rec.Name()] = s
			}
			s.Add(elapsed)
		}
		row = append(row, fmt.Sprint(retriesByRec[0]), fmt.Sprint(retriesByRec[2]))
		tab.AddRow(row...)
	}
	r.Output = tab.String()
	r.addNote("paper shape: C grows super-linearly (≈1300s at 200), OCaml sits well below it, Jitsu is lowest and near-linear")
	return r
}

// runFig3Cell runs n parallel start/stop sequences and returns the wall
// time until all complete, plus the transaction retry count.
func runFig3Cell(rec xenstore.Reconciler, n int) (sim.Duration, uint64) {
	eng := sim.New(300 + int64(n))
	store := xenstore.NewStore(rec)
	// Memory sized to the experiment: the figure measures toolstack
	// behaviour, not memory pressure.
	hyp := xen.NewHypervisor(eng, store, xen.CubieboardARM(), n*16+256)
	ts := xen.NewToolstack(hyp, xen.OptimisedOpts())

	remaining := n
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("seq%d", i)
		// Stagger arrivals across a few ms, as parallel toolstack
		// invocations would be.
		start := sim.Duration(eng.Rand().Int63n(int64(5 * time.Millisecond)))
		eng.At(start, func() {
			ts.CreateDomain(xen.DomainConfig{Name: name, MemMiB: 16, ImageMiB: 1},
				func(d *xen.Domain, err error) {
					if err != nil {
						remaining--
						return
					}
					ts.DestroyDomain(d.ID, func(error) { remaining-- })
				})
		})
	}
	eng.Run()
	return eng.Now(), ts.TxRetries
}
