package experiments

import (
	"fmt"

	"jitsu/internal/metrics"
	"jitsu/internal/power"
	"jitsu/internal/security"
)

// Table1 regenerates the power table from the additive board models.
func Table1() *Result {
	r := newResult("Table 1", "Power usage of the ARM boards when running Xen")
	rows := power.Table1(power.Cubieboard2(), power.Cubietruck(), power.IntelNUC())
	tab := metrics.NewTable("", "Board / components", "Idle (W)", "Spinning+active (W)")
	for _, row := range rows {
		tab.AddRow(row.Config, fmt.Sprintf("%.2f", row.IdleW), fmt.Sprintf("%.2f", row.ActiveW))
	}
	r.Output = tab.String()
	r.addNote("paper anchors: Cubieboard2 1.43/2.61W bare; Cubietruck up to 4.91/6.26W fully loaded; Intel NUC 6.84/27.02W — the ARM boards are domestic-friendly")
	return r
}

// Table2 regenerates the CVE classification from structural attributes.
func Table2() *Result {
	r := newResult("Table 2", "Vulnerability classes and whether they still affect a Jitsu system")
	tab := metrics.NewTable("", "CVE", "Description", "Group", "Remote", "Execute", "DoS", "Exposure", "Affects Jitsu", "Why")
	for _, c := range security.Table2() {
		v := security.Classify(&c)
		tab.AddRow(c.ID, c.Description, c.Group.String(),
			mark(c.Remote), mark(c.Execute), mark(c.DoS), mark(c.Exposure),
			mark(v.AffectsJitsu), v.Reason)
	}
	var summary string
	for _, s := range security.Summarise(security.Table2()) {
		summary += fmt.Sprintf("%s: %d/%d eliminated  ", s.Group, s.Eliminated, s.Total)
	}
	r.Output = tab.String() + "\n" + summary + "\n"
	r.addNote("paper conclusion: 'the top group would be entirely eliminated and the middle group largely eliminated, while the bottom group would remain'")
	return r
}

func mark(b bool) string {
	if b {
		return "x"
	}
	return "-"
}
