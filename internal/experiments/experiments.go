// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each function is deterministic given its seed and
// returns a Result whose Output is the text rendition printed by
// cmd/jitsu-bench and checked (for shape) by the benchmark suite.
package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"jitsu/internal/metrics"
	"jitsu/internal/netsim"
	"jitsu/internal/obs"
)

// Result is one regenerated experiment.
type Result struct {
	// ID is the paper artefact ("Figure 3", "Table 1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Output is the rendered table/CDF text.
	Output string
	// Series holds raw distributions for programmatic assertions.
	Series map[string]*metrics.Series
	// Traces holds per-run flight recorders for experiments that attach
	// one (cmd/jitsu-bench -trace-dir exports them as Chrome traces).
	Traces map[string]*obs.Tracer
	// Captures holds per-link packet captures for the hostile-network
	// experiments: the post-loss delivery stream at virtual-time
	// precision, folded into the determinism fingerprint so two runs
	// must agree frame for frame, not just on the latency table.
	Captures map[string]*netsim.Capture
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title,
		Series: map[string]*metrics.Series{}, Traces: map[string]*obs.Tracer{},
		Captures: map[string]*netsim.Capture{}}
}

// Option configures an experiment run.
type Option func(*runConfig)

type runConfig struct{ trace bool }

// WithTracing attaches a flight recorder to the experiments that carry
// one (Churn, Prewarm): their spans land in Result.Traces, exported by
// cmd/jitsu-bench -trace-dir and folded into the determinism
// fingerprints. Off by default so the benchmark suite measures the
// untraced hot path the bench gate ratchets — tracing is a run-time
// opt-in, never a tax on the baseline.
func WithTracing() Option { return func(c *runConfig) { c.trace = true } }

func applyOptions(opts []Option) runConfig {
	var c runConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// addTrace attaches one run's flight recorder (nil tracers are skipped
// so runners can share one code path with tracing off).
func (r *Result) addTrace(name string, t *obs.Tracer) {
	if t != nil {
		r.Traces[name] = t
	}
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the experiment block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString(r.Output)
	if len(r.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// FingerprintSeries hashes one series' samples (FNV-1a over the raw
// nanosecond values). Two runs of the same experiment with the same
// seed must produce identical fingerprints — the determinism contract
// the CI matrix enforces by running every experiment twice.
func FingerprintSeries(s *metrics.Series) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range s.Samples {
		n := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Fingerprint combines every series of the result (in sorted name
// order) into one hash, mixing in the rendered output so table-only
// experiments are covered too.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.Output))
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf [8]byte
	for _, name := range names {
		h.Write([]byte(name))
		n := FingerprintSeries(r.Series[name])
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	// Trace streams are part of the determinism contract too: a run that
	// reproduces every latency sample but schedules its spans differently
	// must not fingerprint clean.
	tnames := make([]string, 0, len(r.Traces))
	for name := range r.Traces {
		tnames = append(tnames, name)
	}
	sort.Strings(tnames)
	for _, name := range tnames {
		h.Write([]byte(name))
		n := r.Traces[name].Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	// Packet captures too: the wire itself is part of the contract — a
	// run that lands every sample but delivers (or drops) different
	// frames at different instants must not fingerprint clean.
	cnames := make([]string, 0, len(r.Captures))
	for name := range r.Captures {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		h.Write([]byte(name))
		n := r.Captures[name].Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// All runs every experiment at the given scale (trials multiplier,
// 1 = full paper scale, smaller for quick runs). Options are forwarded
// to the experiments that take them.
func All(quick bool, opts ...Option) []*Result {
	trials := 120
	fig3N := []int{1, 25, 50, 100, 150, 200}
	scalingN := []int{1, 2, 4, 8}
	scalingHorizon := 90 * time.Second
	churnHorizon := 75 * time.Second
	federationHorizon := 60 * time.Second
	stampedeFedHorizon := 300 * time.Second
	prewarmVisits := 40
	hostileFlash := 60
	hostileSwim := 60 * time.Second
	densityServices, densityMemMiB, densitySamples := 128, 256, 40
	if quick {
		trials = 30
		fig3N = []int{1, 10, 25, 50}
		scalingN = []int{1, 4}
		churnHorizon = 45 * time.Second
		federationHorizon = 45 * time.Second
		stampedeFedHorizon = 150 * time.Second
		prewarmVisits = 24
		hostileFlash = 30
		hostileSwim = 30 * time.Second
		densityServices, densityMemMiB, densitySamples = 48, 128, 20
	}
	return []*Result{
		Fig3(fig3N),
		Fig4(),
		Fig8(trials / 2),
		Fig9a(trials),
		Fig9b(trials),
		Table1(),
		Table2(),
		Throughput(),
		Headline(trials / 4),
		Scaling(scalingN, scalingHorizon),
		Churn(churnHorizon, opts...),
		Prewarm(prewarmVisits, opts...),
		Federation(federationHorizon),
		Hostile(hostileFlash, hostileSwim),
		Stampede(stampedeFedHorizon),
		Density(densityServices, densityMemMiB, densitySamples),
	}
}
