// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each function is deterministic given its seed and
// returns a Result whose Output is the text rendition printed by
// cmd/jitsu-bench and checked (for shape) by the benchmark suite.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"jitsu/internal/metrics"
)

// Result is one regenerated experiment.
type Result struct {
	// ID is the paper artefact ("Figure 3", "Table 1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Output is the rendered table/CDF text.
	Output string
	// Series holds raw distributions for programmatic assertions.
	Series map[string]*metrics.Series
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Series: map[string]*metrics.Series{}}
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the experiment block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString(r.Output)
	if len(r.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// All runs every experiment at the given scale (trials multiplier,
// 1 = full paper scale, smaller for quick runs).
func All(quick bool) []*Result {
	trials := 120
	fig3N := []int{1, 25, 50, 100, 150, 200}
	scalingN := []int{1, 2, 4, 8}
	scalingHorizon := 90 * time.Second
	if quick {
		trials = 30
		fig3N = []int{1, 10, 25, 50}
		scalingN = []int{1, 4}
	}
	return []*Result{
		Fig3(fig3N),
		Fig4(),
		Fig8(trials / 2),
		Fig9a(trials),
		Fig9b(trials),
		Table1(),
		Table2(),
		Throughput(),
		Headline(trials / 4),
		Scaling(scalingN, scalingHorizon),
	}
}
