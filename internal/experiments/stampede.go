package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/cluster"
	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// The Stampede experiment: what happens to the *control* traffic when
// the management network suddenly has to carry a mass rebalance. Two
// tiers, same question.
//
// Cluster tier: every board's services migrate at once (the most
// violent skew-rebalance a cluster can run) while SWIM keeps probing
// over the same throttled management links. The checkpoint chunks are
// paced by the per-board congestion controller; the ablation arm blasts
// the whole backlog instead. Pacing bounds each uplink's queue to a few
// chunks, so probe acks still return inside the failure detector's
// timeout; the unpaced blast parks seconds of bulk ahead of every ack
// and the detector starts suspecting boards that are perfectly alive.
//
// Federation tier: a WAN-shaped federation (20 ms RTT, 50 Mb/s links)
// sheds a batch of warm services from cluster 0 to cluster 1 while an
// edge client keeps fetching the very names being moved — each fetch's
// DNS resolution is delegated over the donor agent's uplink, the same
// link the checkpoint chunks occupy. Paced, delegation replies queue
// behind at most a window of chunks and every fetch succeeds; unpaced,
// the replies sit behind the full backlog, the root's retransmit budget
// runs out, and delegations SERVFAIL.
const (
	stampedeBoards   = 4
	stampedeServices = 8
	// stampedeStateMiB: 16 chunks of 1 MiB per move — 8 concurrent moves
	// put 128 MiB on four 200 Mb/s uplinks at the same instant.
	stampedeStateMiB = 16
	stampedeMgmtBits = 200e6
	stampedeT0       = 30 * time.Second
	stampedeHorizon  = 90 * time.Second

	stampedeFedServices = 8
	// stampedeFedStateMiB: 8 chunks of 1 MiB per shed service; a batch of
	// four is ~5.4 s of backlog on the 50 Mb/s WAN uplink — far beyond
	// the root's whole delegation retransmit budget (100 ms × 2^k, 3
	// retries ≈ 1.5 s).
	stampedeFedStateMiB  = 8
	stampedeFedBatch     = 4
	stampedeFedT0        = 60 * time.Second
	stampedeFetchGap     = 250 * time.Millisecond
	stampedeFetchTimeout = 10 * time.Second
)

type stampedeClusterRun struct {
	label              string
	migrated, failed   int
	moveWall           sim.Duration
	probes             uint64
	suspects, confirms uint64
	chunks, retx       uint64
	aborts             uint64
	cap                *netsim.Capture
}

// runStampedeCluster boots 8 services across 4 boards, lets gossip
// settle, then migrates every service off its board at the same
// instant.
func runStampedeCluster(label string, unpaced bool, seed int64) *stampedeClusterRun {
	c := cluster.NewCluster(
		cluster.WithBoards(stampedeBoards),
		cluster.WithSeed(seed),
		cluster.WithProbing(500*time.Millisecond, 400*time.Millisecond, 2*time.Second),
		cluster.WithUnpacedTransfers(unpaced),
		cluster.Option(func(cfg *cluster.Config) {
			cfg.MgmtBitsPerSec = stampedeMgmtBits
			cfg.MigrateBitsPerSec = stampedeMgmtBits
			cfg.MigrateChunkMiB = 1
		}),
	)
	tap := netsim.NewCapture(c.Eng(), 1<<14)
	c.MgmtLink(1).Tap(tap)

	boards := make([]int, stampedeServices)
	names := make([]string, stampedeServices)
	for s := 0; s < stampedeServices; s++ {
		names[s] = fmt.Sprintf("mv%02d.%s", s, c.Cfg.Board.Zone)
		img := unikernel.UnikernelImage(fmt.Sprintf("mv%02d", s), unikernel.NewStaticSiteApp(names[s]))
		img.MemMiB = 64
		c.RegisterService(core.ServiceConfig{
			Name: names[s], IP: netstack.IPv4(10, 0, 0, byte(30+s)), Port: 80,
			Image: img, StateMiB: stampedeStateMiB, IdleTimeout: time.Hour,
		})
		resp := c.API().Activate(api.ActivateRequest{Name: names[s]})
		if resp.Err != nil {
			panic(fmt.Sprintf("stampede: activate %s: %v", names[s], resp.Err))
		}
		boards[s] = resp.Board
	}
	c.Eng().RunUntil(stampedeT0)

	out := &stampedeClusterRun{label: label, cap: tap}
	for s := 0; s < stampedeServices; s++ {
		resp := c.API().Migrate(api.MigrateRequest{
			Name: names[s], From: api.OnBoard(boards[s]),
			OnDone: func(ok bool) {
				if ok {
					out.migrated++
				} else {
					out.failed++
				}
				if w := c.Eng().Now() - stampedeT0; w > out.moveWall {
					out.moveWall = w
				}
			},
		})
		if resp.Err != nil {
			out.failed++
		}
	}
	c.Eng().RunUntil(stampedeHorizon)

	out.probes, out.suspects, out.confirms = c.Probes, c.Suspects, c.Confirms
	out.chunks, out.retx, out.aborts = c.Chunks, c.ChunkRetx, c.XferAborts
	return out
}

type stampedeFedRun struct {
	label                    string
	ok                       *metrics.Series
	errs                     int
	delegRetx, delegTimeouts uint64
	chunks, retx, aborts     uint64
	xmigs                    uint64
	cap                      *netsim.Capture
}

// runStampedeFed builds a 2-cluster federation on WAN-shaped links and
// keeps one edge client fetching the four services homed on cluster 0
// while (in the shed arms) all four are shed to cluster 1 at t0.
func runStampedeFed(label string, shed, unpaced bool, horizon sim.Duration) *stampedeFedRun {
	f := cluster.NewFederation(
		cluster.WithClusters(2),
		cluster.WithMemberOptions(cluster.WithBoards(3), cluster.WithSeed(2600)),
		cluster.WithWAN(netsim.WAN20ms()),
		cluster.WithDelegateRetry(100*time.Millisecond, 3),
		cluster.WithTransferChunk(1),
		// The shed is issued by hand at t0; the detector stays out of it.
		cluster.WithSkewPolicy(0, 0.5, 3, stampedeFedBatch),
		cluster.WithUnpacedFedTransfers(unpaced),
	)
	tap := netsim.NewCapture(f.Eng(), 1<<15)
	f.Members()[0].MgmtLink().Tap(tap)

	var donorNames []string
	for s := 0; s < stampedeFedServices; s++ {
		name := fmt.Sprintf("shed%02d.family.name", s)
		img := unikernel.UnikernelImage(fmt.Sprintf("shed%02d", s), unikernel.NewStaticSiteApp(name))
		img.MemMiB = 64
		m, _ := f.RegisterService(core.ServiceConfig{
			Name: name, IP: netstack.IPv4(10, 0, 0, byte(100+s)), Port: 80,
			Image: img, StateMiB: stampedeFedStateMiB, IdleTimeout: time.Hour,
		})
		if m.ID == 0 {
			donorNames = append(donorNames, name)
		}
	}
	if len(donorNames) != stampedeFedBatch {
		panic(fmt.Sprintf("stampede: %d services homed on cluster 0, want %d",
			len(donorNames), stampedeFedBatch))
	}

	out := &stampedeFedRun{label: label, ok: &metrics.Series{Name: label}, cap: tap}
	fc := f.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	for at, i := sim.Duration(time.Second), 0; at < horizon; at, i = at+stampedeFetchGap, i+1 {
		name := donorNames[i%len(donorNames)]
		f.Eng().At(at, func() {
			fc.Fetch(name, "/", stampedeFetchTimeout,
				func(_, _ int, _ *netstack.HTTPResponse, d sim.Duration, err error) {
					if err != nil {
						out.errs++
					} else {
						out.ok.Add(d)
					}
				})
		})
	}
	if shed {
		f.Eng().At(stampedeFedT0, func() {
			if err := f.Shed(0, 1, stampedeFedBatch); err != nil {
				panic(fmt.Sprintf("stampede: shed: %v", err))
			}
		})
	}
	f.RunUntil(horizon + 15*time.Second)
	f.Stop()
	f.RunAll()

	root := f.Root()
	out.delegRetx, out.delegTimeouts = root.DelegRetx, root.DelegTimeouts
	out.chunks, out.retx, out.aborts = f.FedChunks, f.FedChunkRetx, f.FedXferAborts
	out.xmigs = f.CrossMigrations
	return out
}

// Stampede contrasts CC-paced mass rebalances with the unpaced ablation
// at both tiers. fedHorizon stretches the federation fetch loop; the
// shed occupies a fixed ~5 s of it, so longer horizons sharpen the
// "p95 stays flat" claim.
func Stampede(fedHorizon sim.Duration) *Result {
	r := newResult("Stampede", "mass rebalance vs control traffic on shared management links")

	paced := runStampedeCluster("cluster-paced", false, 2600)
	blast := runStampedeCluster("cluster-unpaced", true, 2600)
	idle := runStampedeFed("fed-idle", false, false, fedHorizon)
	fedPaced := runStampedeFed("fed-paced-shed", true, false, fedHorizon)
	fedBlast := runStampedeFed("fed-unpaced-shed", true, true, fedHorizon)

	tab := metrics.NewTable("cluster tier: migrate every service at once, gossip watching",
		"arm", "migrated", "failed", "move-wall", "probes", "suspects", "confirms", "chunks", "chunk-retx")
	for _, o := range []*stampedeClusterRun{paced, blast} {
		tab.AddRow(o.label, o.migrated, o.failed, o.moveWall,
			o.probes, o.suspects, o.confirms, o.chunks, o.retx)
		r.Captures[o.label+" board1 mgmt"] = o.cap
	}
	fedTab := metrics.NewTable("federation tier: shed cluster 0's services over the WAN mid-fetch",
		"arm", "fetch-ok", "errors", "p50", "p95", "max", "deleg-retx", "deleg-timeouts", "xmigs", "chunk-retx")
	for _, o := range []*stampedeFedRun{idle, fedPaced, fedBlast} {
		fedTab.AddRow(o.label, o.ok.Len(), o.errs,
			o.ok.Percentile(0.50), o.ok.Percentile(0.95), o.ok.Max(),
			o.delegRetx, o.delegTimeouts, o.xmigs, o.retx)
		r.Series[o.ok.Name] = o.ok
		r.Captures[o.label+" agent0 mgmt"] = o.cap
	}
	r.Output = tab.String() + "\n" + fedTab.String()
	r.addNote("cluster tier: %d services x %d MiB of checkpoint state move concurrently over four %g Mb/s management uplinks; the congestion controller keeps each uplink's queue to a window of 1 MiB chunks, so SWIM probe acks (timeout 400ms) keep landing — %d suspects paced vs %d unpaced, on identical seeds and byte counts", stampedeServices, stampedeStateMiB, stampedeMgmtBits/1e6, paced.suspects, blast.suspects)
	r.addNote("federation tier: a batch of %d warm services (%d MiB each) sheds across a %s path while the edge client fetches those very names every %v; each fetch's delegated resolution shares the donor agent's uplink with the chunk exchange — paced p95 %v vs idle %v with %d timeouts, unpaced loses %d fetches to SERVFAIL (%d delegation timeouts)", stampedeFedBatch, stampedeFedStateMiB, netsim.WAN20ms().Name, stampedeFetchGap, fedPaced.ok.Percentile(0.95), idle.ok.Percentile(0.95), fedPaced.delegTimeouts, fedBlast.errs, fedBlast.delegTimeouts)
	r.addNote("both tiers move the same bytes in both arms — pacing trades no throughput; it only bounds how much bulk may sit ahead of a control datagram on the shared FIFO links")
	return r
}
