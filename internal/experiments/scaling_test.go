package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestScalingShape asserts the control-plane contract: at 4 boards the
// cluster's p95 time-to-first-response beats the Fleet failover
// baseline decisively, and at 1 board the scheduler refuses no more
// than the baseline does (preemption keeps the hot set placed).
func TestScalingShape(t *testing.T) {
	r := Scaling([]int{1, 4}, 90*time.Second)
	if !strings.Contains(r.Output, "boards") {
		t.Fatalf("missing table: %s", r.Output)
	}

	fleet4 := r.Series["fleet@4"]
	cluster4 := r.Series["cluster@4"]
	if fleet4.Len() == 0 || cluster4.Len() == 0 {
		t.Fatal("empty series at 4 boards")
	}
	fp95, cp95 := fleet4.Percentile(0.95), cluster4.Percentile(0.95)
	if cp95 >= fp95 {
		t.Errorf("cluster p95 (%v) not better than fleet p95 (%v) at 4 boards", cp95, fp95)
	}
	// The win must be structural (warm pools vs repeated cold starts),
	// not a few ms of walk latency.
	if cp95 > fp95/2 {
		t.Errorf("cluster p95 (%v) less than 2x better than fleet (%v)", cp95, fp95)
	}

	// At 1 board both are capacity-limited; the scheduler must serve at
	// least as many requests as the SERVFAIL-walking baseline.
	if r.Series["cluster@1"].Len() < r.Series["fleet@1"].Len() {
		t.Errorf("cluster served %d at 1 board, fleet served %d",
			r.Series["cluster@1"].Len(), r.Series["fleet@1"].Len())
	}
}
