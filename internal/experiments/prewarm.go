package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// The prewarm workload: services visited on a routine — a check-in
// roughly every ten seconds, jittered — but reaped after six idle
// seconds, so every visit's first request rides a fresh cold boot. The
// PrewarmTrigger learns the routine from the activation stream and
// boots each service just ahead of its predicted next visit; the same
// trace then lands on a warm unikernel almost every time. This is the
// trigger-API extensibility proof: no packet arrives, yet a frontend
// summons unikernels through exactly the seam DNS/SYN/conduit use.
const (
	prewarmServices = 3
	prewarmPeriod   = 10 * time.Second
	prewarmJitter   = 500 * time.Millisecond
	prewarmIdle     = 6 * time.Second
	prewarmLead     = 2 * time.Second
	// prewarmWarmup is how many visits the trigger needs before its
	// predictions arm; the "steady" series starts after them.
	prewarmWarmup = 3
)

type prewarmArrival struct {
	at    sim.Duration
	svc   int
	visit int
}

// prewarmTrace builds the jittered periodic visit schedule, shared
// verbatim by the with- and without-trigger runs.
func prewarmTrace(seed int64, visits int) []prewarmArrival {
	rng := rand.New(rand.NewSource(seed))
	var trace []prewarmArrival
	for s := 0; s < prewarmServices; s++ {
		// Stagger the services so their boots don't synchronise.
		base := sim.Duration(s+1) * 2 * time.Second
		for i := 0; i < visits; i++ {
			jit := sim.Duration((rng.Float64()*2 - 1) * float64(prewarmJitter))
			trace = append(trace, prewarmArrival{
				at: base + sim.Duration(i)*prewarmPeriod + jit, svc: s, visit: i})
		}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		return trace[i].svc < trace[j].svc
	})
	return trace
}

type prewarmOutcome struct {
	all         *metrics.Series
	steady      *metrics.Series
	trace       *obs.Tracer
	errs        int
	cold        uint64
	predictions uint64
	hits        uint64
	misses      uint64
}

// runPrewarm replays the visit schedule with or without the trigger.
func runPrewarm(on, traced bool, seed int64, trace []prewarmArrival) *prewarmOutcome {
	label := "prewarm-off"
	if on {
		label = "prewarm-on"
	}
	// The optional flight recorder (WithTracing): the exported
	// activation spans must account for the cold-vs-warm p95 gap the
	// table reports. Nil when tracing is off — the run then measures
	// the same alloc-free hot path the bench gate ratchets.
	var tracer *obs.Tracer
	if traced {
		tracer = obs.NewTracer(1 << 14)
	}
	b := core.New(core.WithSeed(seed), core.WithTracer(tracer, 0))
	var trig *core.PrewarmTrigger
	if on {
		trig = core.NewPrewarmTrigger(prewarmLead)
		if err := b.AddTrigger(trig); err != nil {
			panic(fmt.Sprintf("prewarm: attach trigger: %v", err))
		}
	}
	var svcs []*core.Service
	for s := 0; s < prewarmServices; s++ {
		name := fmt.Sprintf("svc%02d.family.name", s)
		svcs = append(svcs, b.Jitsu.Register(core.ServiceConfig{
			Name:        name,
			IP:          netstack.IPv4(10, 0, 0, byte(20+s)),
			Port:        80,
			IdleTimeout: prewarmIdle,
			Image:       unikernel.UnikernelImage(fmt.Sprintf("svc%02d", s), unikernel.NewStaticSiteApp(name)),
		}))
	}
	client := b.AddClient("visitor", netstack.IPv4(10, 0, 0, 9))

	out := &prewarmOutcome{
		all:    &metrics.Series{Name: label},
		steady: &metrics.Series{Name: label + " steady"},
		trace:  tracer,
	}
	for _, a := range trace {
		a := a
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		b.Eng.At(a.at, func() {
			b.FetchViaDNS(client, name, "/", 30*time.Second,
				func(resp *netstack.HTTPResponse, d sim.Duration, err error) {
					if err != nil {
						out.errs++
						return
					}
					out.all.Add(d)
					if a.visit >= prewarmWarmup {
						out.steady.Add(d)
					}
				})
		})
	}
	b.Eng.Run()
	for _, svc := range svcs {
		out.cold += svc.ColdStarts
	}
	if trig != nil {
		out.predictions = trig.Predictions
		out.hits = trig.Hits
		out.misses = trig.Misses
	}
	return out
}

// Prewarm contrasts the same jittered periodic visit schedule with and
// without the predictive trigger: time-to-first-response per visit,
// overall and after the warm-up visits the trigger needs to learn the
// pattern.
func Prewarm(visits int, opts ...Option) *Result {
	cfg := applyOptions(opts)
	r := newResult("Prewarm", "predictive prewarm trigger vs cold boots on recurring visits")
	trace := prewarmTrace(11000, visits)
	off := runPrewarm(false, cfg.trace, 11100, trace)
	on := runPrewarm(true, cfg.trace, 11100, trace)

	tab := metrics.NewTable("",
		"policy", "n-ok", "p50", "p95", "steady-p50", "steady-p95", "coldstarts", "predictions", "hits", "misses")
	for _, o := range []*prewarmOutcome{off, on} {
		all, steady := o.all.Summarize(), o.steady.Summarize()
		tab.AddRow(o.all.Name, all.Len(), all.P50(), all.P95(),
			steady.P50(), steady.P95(),
			o.cold, o.predictions, o.hits, o.misses)
		r.Series[o.all.Name] = o.all
		r.Series[o.steady.Name] = o.steady
		r.addTrace(o.all.Name, o.trace)
	}
	r.Output = tab.String()
	r.addNote("both runs share one jittered periodic visit schedule; the visit period (10s) exceeds the idle timeout (6s), so without the trigger every visit pays a fresh cold boot")
	r.addNote("expected shape: the trigger needs a few visits to learn each service's gap, then boots it ~2s ahead of the predicted arrival — steady-state p95 drops from the cold-boot band (~300ms) to the warm path (~ms)")
	return r
}
