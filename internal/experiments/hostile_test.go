package experiments

import (
	"testing"
	"time"
)

// TestHostileFlashRetryEnvelope is the acceptance assert: over the
// lossy edge the hardened client's p95 stays within 2x of the
// perfect-link baseline, while the single-datagram ablation's tail runs
// away to the full client timeout.
func TestHostileFlashRetryEnvelope(t *testing.T) {
	r := Hostile(60, 30*time.Second)
	perfect := r.Series["flash perfect link"]
	hardened := r.Series["flash lossy+retry"]
	ablated := r.Series["flash lossy no-retry"]
	if perfect == nil || hardened == nil || ablated == nil {
		t.Fatalf("flash series missing: %v", r.Series)
	}
	pp, hp := perfect.Percentile(0.95), hardened.Percentile(0.95)
	if hp > 2*pp {
		t.Errorf("hardened p95 = %v, want within 2x of perfect-link p95 %v", hp, pp)
	}
	// The ablation's worst fetch burns the entire client timeout — the
	// degradation is bounded only by how long the client is willing to
	// wait, not by anything the system does.
	if max := ablated.Percentile(1.0); max < hostileFetchTimeout {
		t.Errorf("ablation max = %v, want a censored %v timeout in the tail", max, hostileFetchTimeout)
	}
	if hmax := hardened.Percentile(1.0); hmax >= hostileFetchTimeout {
		t.Errorf("hardened max = %v: retry failed to keep every fetch under the timeout", hmax)
	}
}

// TestHostileDeterminism runs the family twice with identical seeds:
// every series, the rendered tables and the packet capture must be
// bit-identical — the capture is the strongest form of the contract,
// since it pins every delivered frame to a virtual-time instant.
func TestHostileDeterminism(t *testing.T) {
	a := Hostile(30, 30*time.Second)
	b := Hostile(30, 30*time.Second)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ across identical runs: %x vs %x", fa, fb)
	}
	for name, sa := range a.Series {
		sb := b.Series[name]
		if sb == nil {
			t.Fatalf("series %q missing from second run", name)
		}
		if FingerprintSeries(sa) != FingerprintSeries(sb) {
			t.Errorf("series %q not bit-identical across runs", name)
		}
	}
	if a.Output != b.Output {
		t.Error("rendered output differs across identical runs")
	}
	ca, cb := a.Captures["flash lossy edge"], b.Captures["flash lossy edge"]
	if ca == nil || cb == nil {
		t.Fatal("flash capture missing")
	}
	if len(ca.Records) == 0 {
		t.Fatal("flash capture recorded no frames")
	}
	if ca.Fingerprint() != cb.Fingerprint() {
		t.Errorf("capture not bit-identical across runs (%d vs %d frames)",
			len(ca.Records), len(cb.Records))
	}
}
