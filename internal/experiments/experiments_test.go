package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests assert the *shape* of each reproduced figure — who wins,
// by roughly what factor, where the crossovers fall — which is the
// reproduction contract stated in DESIGN.md.

func TestFig3Shape(t *testing.T) {
	r := Fig3([]int{1, 10, 30})
	c := r.Series["C xenstored"]
	ocaml := r.Series["OCaml xenstored"]
	jitsu := r.Series["Jitsu xenstored"]
	if c.Len() != 3 || ocaml.Len() != 3 || jitsu.Len() != 3 {
		t.Fatalf("series lengths: %d %d %d", c.Len(), ocaml.Len(), jitsu.Len())
	}
	// At 30 parallel sequences the ordering must be C > OCaml > Jitsu.
	cAt, oAt, jAt := c.Samples[2], ocaml.Samples[2], jitsu.Samples[2]
	if !(cAt > oAt && oAt > jAt) {
		t.Errorf("ordering at N=30: C=%v OCaml=%v Jitsu=%v", cAt, oAt, jAt)
	}
	// C must be super-linear: 30x parallelism must cost much more than
	// 30x the single-sequence time.
	if cAt < 6*c.Samples[0]*30/10 {
		t.Logf("C growth: %v at 1 vs %v at 30", c.Samples[0], cAt)
	}
	if float64(cAt) < 2.5*float64(jAt) {
		t.Errorf("C (%v) should be several times Jitsu (%v) at N=30", cAt, jAt)
	}
	if !strings.Contains(r.Output, "Jitsu xenstored") {
		t.Error("output missing series names")
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4()
	// Anchors at 16 MiB.
	vanilla := r.Series["Xen 4.4.0 (bash hotplug)@16"].Percentile(0.5)
	dash := r.Series["minimal hotplug script (dash)@16"].Percentile(0.5)
	ioctl := r.Series["inline ioctl()@16"].Percentile(0.5)
	parallel := r.Series["parallel hotplug + build@16"].Percentile(0.5)
	noconsole := r.Series["remove primary console@16"].Percentile(0.5)
	x86 := r.Series["switch ARM -> x86@16"].Percentile(0.5)
	seq := []time.Duration{vanilla, dash, ioctl, parallel, noconsole, x86}
	for i := 1; i < len(seq); i++ {
		if seq[i] >= seq[i-1] {
			t.Errorf("optimisation %d did not reduce build: %v >= %v", i, seq[i], seq[i-1])
		}
	}
	if vanilla < 520*time.Millisecond || vanilla > 820*time.Millisecond {
		t.Errorf("vanilla@16 = %v, paper ≈650ms", vanilla)
	}
	if noconsole < 80*time.Millisecond || noconsole > 170*time.Millisecond {
		t.Errorf("optimised@16 = %v, paper ≈120ms", noconsole)
	}
	if x86 > 40*time.Millisecond {
		t.Errorf("x86@16 = %v, paper ≈20ms", x86)
	}
	// Memory slope: vanilla@256 ≈ 1s.
	v256 := r.Series["Xen 4.4.0 (bash hotplug)@256"].Percentile(0.5)
	if v256 < 800*time.Millisecond || v256 > 1300*time.Millisecond {
		t.Errorf("vanilla@256 = %v, paper ≈1s", v256)
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(20)
	// Ordering at every payload: localhost < dom0 < linux; mirage within
	// 0.4ms of linux; everything under ~1.2ms.
	for _, size := range []int{56, 512, 1400} {
		local := r.Series[key("localhost", size)].Percentile(0.5)
		dom0 := r.Series[key("dom0", size)].Percentile(0.5)
		linux := r.Series[key("linux", size)].Percentile(0.5)
		mirage := r.Series[key("mirage", size)].Percentile(0.5)
		if !(local < dom0 && dom0 < linux) {
			t.Errorf("size %d: ordering local=%v dom0=%v linux=%v", size, local, dom0, linux)
		}
		gap := mirage - linux
		if gap < 0 {
			gap = -gap
		}
		if gap > 400*time.Microsecond {
			t.Errorf("size %d: |mirage-linux| = %v, paper ≤ 0.4ms", size, gap)
		}
		if mirage > 1200*time.Microsecond {
			t.Errorf("size %d: mirage RTT %v too high", size, mirage)
		}
	}
	// RTT grows with payload.
	if r.Series[key("mirage", 1400)].Percentile(0.5) <= r.Series[key("mirage", 56)].Percentile(0.5) {
		t.Error("mirage RTT did not grow with payload")
	}
}

func key(name string, size int) string {
	return name + "@" + itoa(size)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFig9aShape(t *testing.T) {
	r := Fig9a(25)
	none := r.Series["cold start, no synjitsu"]
	vanilla := r.Series["synjitsu + vanilla toolstack"]
	opt := r.Series["synjitsu + optimised toolstack"]
	if none.Len() == 0 || vanilla.Len() == 0 || opt.Len() == 0 {
		t.Fatal("empty series")
	}
	// Without synjitsu, essentially everything exceeds 1s.
	if frac := none.FracBelow(time.Second); frac > 0.05 {
		t.Errorf("no-synjitsu: %.0f%% below 1s, want ~0%%", frac*100)
	}
	// With synjitsu + optimised, everything beats the 1s floor and the
	// bulk lands in the 300–600ms band.
	if frac := opt.FracBelow(time.Second); frac < 0.95 {
		t.Errorf("optimised: only %.0f%% below 1s", frac*100)
	}
	if p50 := opt.Percentile(0.5); p50 < 250*time.Millisecond || p50 > 600*time.Millisecond {
		t.Errorf("optimised p50 = %v, want ≈300–550ms", p50)
	}
	// Vanilla toolstack sits between.
	if !(opt.Percentile(0.5) < vanilla.Percentile(0.5) && vanilla.Percentile(0.5) < none.Percentile(0.5)) {
		t.Errorf("ordering: opt=%v vanilla=%v none=%v",
			opt.Percentile(0.5), vanilla.Percentile(0.5), none.Percentile(0.5))
	}
}

func TestFig9bShape(t *testing.T) {
	r := Fig9b(60)
	tmpfs := r.Series["docker, ext4 on tmpfs"]
	sd := r.Series["docker, ext4 on SD card"]
	dom0 := r.Series["docker in Xen dom0, ext4 on SD card"]
	if tmpfs.Min() < 500*time.Millisecond {
		t.Errorf("tmpfs min = %v, paper: ≥600ms", tmpfs.Min())
	}
	if sd.Min() < 900*time.Millisecond {
		t.Errorf("sd min = %v, paper: ≥1.1s", sd.Min())
	}
	if dom0.Percentile(0.5) <= sd.Percentile(0.5) {
		t.Errorf("dom0 (%v) not slower than native (%v)", dom0.Percentile(0.5), sd.Percentile(0.5))
	}
	if tmpfs.Percentile(0.5) >= sd.Percentile(0.5) {
		t.Error("tmpfs not faster than sd")
	}
	// Crossover vs Jitsu: even tmpfs Docker is slower than an optimised
	// Jitsu cold start (≈400ms).
	if tmpfs.Percentile(0.5) < 400*time.Millisecond {
		t.Errorf("tmpfs median %v undercuts Jitsu cold start", tmpfs.Percentile(0.5))
	}
}

func TestTable1Content(t *testing.T) {
	r := Table1()
	for _, want := range []string{"Cubieboard2", "Cubietruck", "Intel Haswell NUC", "1.43", "27.02"} {
		if !strings.Contains(r.Output, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2Content(t *testing.T) {
	r := Table2()
	for _, want := range []string{"CVE-2011-3992", "embedded: 10/10 eliminated", "linux: 8/10 eliminated", "xen-arm: 0/12 eliminated"} {
		if !strings.Contains(r.Output, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestThroughputShape(t *testing.T) {
	r := Throughput()
	out := r.Output
	if !strings.Contains(out, "queue service") {
		t.Fatalf("output:\n%s", out)
	}
	queue := measureQueueGoodput()
	// Disk-bound ceiling 57.92 Mb/s; protocol overhead keeps us below.
	if queue < 25 || queue > 60 {
		t.Errorf("queue goodput = %.1f Mb/s, want 25–58", queue)
	}
	mirage := measureBulkTCP(true)
	linux := measureBulkTCP(false)
	if mirage <= 0 || linux <= 0 {
		t.Fatalf("bulk tcp: mirage=%.1f linux=%.1f", mirage, linux)
	}
	ratio := mirage / linux
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("mirage/linux parity ratio = %.2f, paper: 'the same performance'", ratio)
	}
}

func TestHeadlineShape(t *testing.T) {
	r := Headline(5)
	armCold := r.Series["ARM cold start"].Percentile(0.5)
	armWarm := r.Series["ARM warm request"].Percentile(0.5)
	x86Cold := r.Series["x86 cold start"].Percentile(0.5)
	if armCold < 250*time.Millisecond || armCold > 600*time.Millisecond {
		t.Errorf("ARM cold = %v, paper 300–350ms", armCold)
	}
	if armWarm > 10*time.Millisecond {
		t.Errorf("ARM warm = %v, paper ≈5ms", armWarm)
	}
	if x86Cold > 60*time.Millisecond {
		t.Errorf("x86 cold = %v, paper 20–30ms", x86Cold)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, r := range []*Result{
		AblationSynjitsuMatrix(6),
		AblationPrecreatedDomains(),
		AblationHotplug(),
		AblationParallelAttach(),
		AblationDelayedDNS(6),
		AblationMergeStrategies(10),
	} {
		if r.Output == "" {
			t.Errorf("%s produced no output", r.ID)
		}
	}
}

func TestAblationFindings(t *testing.T) {
	r := AblationPrecreatedDomains()
	pooled := r.Series["pool4"].Percentile(0.5)
	cold := r.Series["pool0"].Percentile(0.5)
	if pooled >= cold/3 {
		t.Errorf("pooled claim %v should be far below cold build %v", pooled, cold)
	}
	d := AblationDelayedDNS(6)
	synDNS := d.Series["synjitsu proxying/dns"].Percentile(0.5)
	delDNS := d.Series["delay DNS until ready/dns"].Percentile(0.5)
	if synDNS >= delDNS {
		t.Errorf("synjitsu DNS latency %v should be far below delayed-DNS %v", synDNS, delDNS)
	}
}
