package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"jitsu/internal/cluster"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// The churn workload: a steady Poisson request stream against a small
// cluster whose membership moves underneath it — boards leave
// gracefully and a replacement joins mid-run. The contrast is the two
// departure policies: live migration keeps every warm replica warm
// (the source serves until the destination restores from checkpoint),
// while the preempt-and-reboot baseline destroys the leaving board's
// replicas and pays fresh cold boots behind the next arrivals.
const (
	churnBoards   = 3
	churnServices = 8
	churnMeanGap  = 600 * time.Millisecond
	// churnImageMiB leaves headroom: 8 replicas of 96 MiB spread over
	// three 768 MiB boards, so a departing board's replicas always have
	// somewhere to go (a saturated cluster degenerates to the baseline —
	// migration needs free memory like any other placement).
	churnImageMiB = 96
	// churnWindow is the post-leave observation window: requests issued
	// within it after a leave event form the "under churn" series.
	churnWindow = 2 * time.Second
)

// churnTrace is one Poisson arrival schedule over all services, shared
// verbatim by the migrate and preempt runs.
func churnTrace(seed int64, horizon sim.Duration) []scalingArrival {
	rng := rand.New(rand.NewSource(seed))
	var trace []scalingArrival
	for s := 0; s < churnServices; s++ {
		at := sim.Duration(rng.ExpFloat64() * float64(churnMeanGap))
		for at < horizon {
			trace = append(trace, scalingArrival{at: at, svc: s})
			at += sim.Duration(rng.ExpFloat64() * float64(churnMeanGap))
		}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		return trace[i].svc < trace[j].svc
	})
	return trace
}

// churnSchedule scripts the membership events: two graceful departures
// with a join in between, all relative to the horizon.
type churnEvent struct {
	at    sim.Duration
	join  bool
	board int
}

func churnSchedule(horizon sim.Duration) []churnEvent {
	return []churnEvent{
		{at: horizon / 3, board: 2},
		{at: horizon * 45 / 100, join: true},
		{at: horizon * 2 / 3, board: 1},
	}
}

type churnOutcome struct {
	all       *metrics.Series
	postLeave *metrics.Series
	trace     *obs.Tracer
	refused   int
	errs      int
	migrated  uint64
	lost      uint64
	restores  uint64
	cold      uint64
}

// runChurn replays the trace against one departure policy.
func runChurn(migrate, traced bool, seed int64, trace []scalingArrival, horizon sim.Duration) *churnOutcome {
	label := "preempt"
	if migrate {
		label = "migrate"
	}
	// Exactly one warm replica per service (WithWarmPool cap): the
	// replica that must move when its board leaves, rather than a pool
	// that can mask the loss.
	// One optional flight recorder per policy run (WithTracing): gossip,
	// migration and boot spans land beside the latency table (board i on
	// lane i); nil keeps the run on the untraced hot path.
	var tracer *obs.Tracer
	if traced {
		tracer = obs.NewTracer(1 << 15)
	}
	c := cluster.NewCluster(
		cluster.WithBoards(churnBoards),
		cluster.WithSeed(seed),
		cluster.WithMigrateOnLeave(migrate),
		cluster.WithProbing(1*time.Second, 0, 0),
		cluster.WithWarmPool(1.0, 1),
		cluster.WithTracer(tracer, 0),
	)
	for s := 0; s < churnServices; s++ {
		sc := scalingServiceConfig(s, 0)
		sc.Image.MemMiB = churnImageMiB
		c.RegisterService(sc, cluster.WithMinWarm(1))
	}
	cl := c.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))

	var leaveAts []sim.Duration
	for _, ev := range churnSchedule(horizon) {
		ev := ev
		if ev.join {
			c.Eng().At(ev.at, func() { c.AddBoard() })
			continue
		}
		leaveAts = append(leaveAts, ev.at)
		c.Eng().At(ev.at, func() {
			if err := c.Leave(ev.board, nil); err != nil {
				panic(fmt.Sprintf("churn: leave board %d: %v", ev.board, err))
			}
		})
	}
	underChurn := func(at sim.Duration) bool {
		for _, l := range leaveAts {
			if at >= l && at < l+churnWindow {
				return true
			}
		}
		return false
	}

	out := &churnOutcome{
		all:       &metrics.Series{Name: fmt.Sprintf("churn-%s", label)},
		postLeave: &metrics.Series{Name: fmt.Sprintf("churn-%s post-leave", label)},
		trace:     tracer,
	}
	for _, a := range trace {
		a := a
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		c.Eng().At(a.at, func() {
			cl.Fetch(name, "/", 30*time.Second,
				func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
					switch {
					case err == cluster.ErrClusterFull:
						out.refused++
					case err != nil:
						out.errs++
					default:
						out.all.Add(d)
						if underChurn(a.at) {
							out.postLeave.Add(d)
						}
					}
				})
		})
	}
	// Active probing keeps the event queue alive; run the horizon (plus
	// slack for in-flight requests), then quiesce the gossip agents and
	// drain what remains.
	c.RunUntil(horizon + 10*time.Second)
	c.StopMembership()
	c.RunAll()

	out.migrated = c.Migrations
	out.lost = c.Lost
	for _, t := range c.ServiceTotals() {
		out.cold += t.ColdStarts
		out.restores += t.Restores
	}
	return out
}

// Churn contrasts live migration with preempt-and-reboot under dynamic
// membership: the same Poisson trace and the same join/leave schedule,
// measured on time-to-first-response — overall and in the windows right
// after each departure.
func Churn(horizon sim.Duration, opts ...Option) *Result {
	cfg := applyOptions(opts)
	r := newResult("Churn", "migration vs preempt-and-reboot under board join/leave")
	trace := churnTrace(9000, horizon)
	mig := runChurn(true, cfg.trace, 9100, trace, horizon)
	pre := runChurn(false, cfg.trace, 9100, trace, horizon)

	tab := metrics.NewTable("",
		"policy", "n-ok", "p50", "p95", "post-leave-p95", "coldstarts", "migrations", "restores", "lost")
	for _, o := range []*churnOutcome{mig, pre} {
		d := o.all.Summarize()
		tab.AddRow(o.all.Name, d.Len(), d.P50(), d.P95(),
			o.postLeave.Percentile(0.95), o.cold, o.migrated, o.restores, o.lost)
		r.Series[o.all.Name] = o.all
		r.Series[o.postLeave.Name] = o.postLeave
		r.addTrace(o.all.Name, o.trace)
	}
	r.Output = tab.String()
	r.addNote("both runs share one Poisson trace and one membership schedule (two graceful leaves, one join); the only difference is what happens to the leaving board's warm replicas")
	r.addNote("expected shape: with migration the source replica serves until the destination restores from its checkpoint, so post-leave p95 stays on the warm path; the baseline destroys the replicas and the arrivals behind each leave ride fresh cold boots")
	return r
}
