package experiments

import (
	"fmt"
	"time"

	"jitsu/internal/blockdev"
	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// The density workload: many more registered services than fit in
// memory, visited once each in sequence. The warm-only baseline holds
// replicas until admission refuses; the three-tier board demotes the
// least-recently-used replica's checkpoint to disk and keeps serving —
// the paper's density claim (§2): a board hosts orders of magnitude
// more services than fit in memory because they only materialize on
// demand.
const (
	// densityStateMiB is the declared live-state size per service: the
	// dirty heap a checkpoint captures, a quarter of the 16 MiB image.
	densityStateMiB = 4
	// densityGap spaces the visit schedule so each activation (boot +
	// any demotion it forces) completes before the next arrives.
	densityGap = time.Second
)

func densityBoard(seed int64, memMiB int, disk bool) *core.Board {
	opts := []core.Option{core.WithSeed(seed), core.WithMemory(memMiB)}
	if disk {
		opts = append(opts, core.WithDisk(blockdev.DefaultConfig()))
	}
	return core.New(opts...)
}

func densityRegister(b *core.Board, n int) []*core.Service {
	svcs := make([]*core.Service, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("svc%03d.family.name", i)
		svcs = append(svcs, b.Jitsu.Register(core.ServiceConfig{
			Name:     name,
			IP:       netstack.IPv4(10, 1, byte(i>>8), byte(i)),
			Port:     80,
			StateMiB: densityStateMiB,
			Image:    unikernel.UnikernelImage(fmt.Sprintf("svc%03d", i), unikernel.NewStaticSiteApp(name)),
		}))
	}
	return svcs
}

// densityFill is one sequential visit sweep over every service.
type densityFill struct {
	lat     *metrics.Series
	refused int
}

func runDensityFill(b *core.Board, svcs []*core.Service, label string) *densityFill {
	out := &densityFill{lat: &metrics.Series{Name: label}}
	for i, svc := range svcs {
		i, svc := i, svc
		b.Eng.At(sim.Duration(i)*densityGap, func() {
			t0 := b.Eng.Now()
			err := b.Jitsu.Activate(svc, true, func(err error) {
				if err == nil {
					out.lat.Add(b.Eng.Now() - t0)
				}
			})
			if err != nil {
				out.refused++
			}
		})
	}
	b.Eng.Run()
	return out
}

// tierCounts tallies replica residency by lifecycle tier.
func tierCounts(svcs []*core.Service) (running, warmMem, onDisk int) {
	for _, s := range svcs {
		switch s.State {
		case core.StateRunning:
			running++
		case core.StateWarmMemory:
			warmMem++
		case core.StateColdDisk:
			onDisk++
		}
	}
	return
}

// runDensityPricing isolates the three activation legs on an otherwise
// idle board: full cold boot, warm restore from an in-memory
// checkpoint, and restore paged in from the disk tier (seek + transfer
// on the virtual clock, then the warm-restore leg). The disk leg must
// price strictly between the other two.
func runDensityPricing(seed int64, samples int) (boot, warm, diskR *metrics.Series) {
	b := densityBoard(seed, 64, true)
	svc := densityRegister(b, 1)[0]
	boot = &metrics.Series{Name: "density.boot"}
	warm = &metrics.Series{Name: "density.warm_restore"}
	diskR = &metrics.Series{Name: "density.disk_restore"}

	measure := func(s *metrics.Series, start func(onReady func(error))) {
		t0 := b.Eng.Now()
		done := false
		start(func(err error) {
			if err == nil {
				s.Add(b.Eng.Now() - t0)
				done = true
			}
		})
		b.Eng.Run()
		if !done {
			panic(fmt.Sprintf("density pricing: %s leg never completed", s.Name))
		}
	}

	var cp *core.Checkpoint
	for i := 0; i < samples; i++ {
		measure(boot, func(onReady func(error)) {
			if err := b.Jitsu.Activate(svc, true, onReady); err != nil {
				panic(err)
			}
		})
		if cp == nil {
			cp, _ = b.Jitsu.Checkpoint(svc)
		}
		b.Jitsu.Evict(svc)
		b.Eng.Run()
	}
	for i := 0; i < samples; i++ {
		measure(warm, func(onReady func(error)) {
			if err := b.Jitsu.Restore(svc, cp, onReady); err != nil {
				panic(err)
			}
		})
		b.Jitsu.Evict(svc)
		b.Eng.Run()
	}
	for i := 0; i < samples; i++ {
		// Park the checkpoint on disk, then page it back in via a
		// client activation — the disk-restore launch leg.
		if err := b.Jitsu.Restore(svc, cp, nil); err != nil {
			panic(err)
		}
		b.Eng.Run()
		if err := b.Jitsu.Demote(svc); err != nil {
			panic(err)
		}
		b.Eng.Run()
		measure(diskR, func(onReady func(error)) {
			if err := b.Jitsu.Activate(svc, true, onReady); err != nil {
				panic(err)
			}
		})
		b.Jitsu.Evict(svc)
		b.Eng.Run()
	}
	return boot, warm, diskR
}

// Density contrasts a warm-only board against the same board with the
// disk checkpoint tier at equal memory: how many of `services`
// registered services each can hold resident after one visit sweep,
// and what the three activation legs cost. The three-tier board parks
// LRU checkpoints on disk under memory pressure instead of refusing,
// so its held count is bounded by the checkpoint store, not RAM.
func Density(services, memMiB, samples int) *Result {
	r := newResult("Density", "services held per GB across the three lifecycle tiers")

	base := densityBoard(31001, memMiB, false)
	baseFill := runDensityFill(base, densityRegister(base, services), "density.warm_only")
	baseSvcs := base.Jitsu.Services()

	tiered := densityBoard(31001, memMiB, true)
	tieredSvcs := densityRegister(tiered, services)
	tieredFill := runDensityFill(tiered, tieredSvcs, "density.three_tier")

	gb := float64(memMiB) / 1024
	tab := metrics.NewTable("",
		"board", "services", "held", "running", "warm-mem", "on-disk", "refused", "held/GB")
	var baseList []*core.Service
	for _, s := range baseSvcs {
		baseList = append(baseList, s)
	}
	bRun, bWarm, bDisk := tierCounts(baseList)
	tRun, tWarm, tDisk := tierCounts(tieredSvcs)
	baseHeld := bRun + bWarm + bDisk
	tieredHeld := tRun + tWarm + tDisk
	tab.AddRow("warm-only", services, baseHeld, bRun, bWarm, bDisk,
		baseFill.refused, fmt.Sprintf("%.0f", float64(baseHeld)/gb))
	tab.AddRow("three-tier", services, tieredHeld, tRun, tWarm, tDisk,
		tieredFill.refused, fmt.Sprintf("%.0f", float64(tieredHeld)/gb))

	boot, warm, diskR := runDensityPricing(31002, samples)
	price := metrics.NewTable("",
		"activation leg", "n", "p50", "p95")
	for _, s := range []*metrics.Series{warm, diskR, boot} {
		sum := s.Summarize()
		price.AddRow(s.Name, sum.Len(), sum.P50(), sum.P95())
	}

	r.Series[baseFill.lat.Name] = baseFill.lat
	r.Series[tieredFill.lat.Name] = tieredFill.lat
	r.Series[boot.Name] = boot
	r.Series[warm.Name] = warm
	r.Series[diskR.Name] = diskR
	r.Output = tab.String() + "\n" + price.String()
	if baseHeld > 0 {
		r.addNote("density gain: %.1fx services held per GB at equal memory (%d vs %d in %d MiB)",
			float64(tieredHeld)/float64(baseHeld), tieredHeld, baseHeld, memMiB)
	}
	r.addNote("expected shape: the disk-restore leg prices strictly between the warm restore (checkpoint already in memory) and the full cold boot — a seek plus a sequential read of the declared live state, then the restore path")
	return r
}
