package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"jitsu/internal/cluster"
	"jitsu/internal/core"
	"jitsu/internal/metrics"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// The scaling workload: a small edge cloud of per-person services with
// a popularity skew. Hot services arrive often enough to stay warm;
// cold ones lapse past the fleet's idle timeout between visits, so the
// baseline pays a fresh cold start (plus the SERVFAIL walk) almost
// every time, while the cluster's warm pools keep them booted.
const (
	scalingHotServices  = 4
	scalingColdServices = 6
	scalingHotMeanGap   = 1500 * time.Millisecond
	scalingColdMeanGap  = 12 * time.Second
	// scalingImageMiB makes four replicas fill one 768 MiB board, so
	// capacity pressure is real at small board counts.
	scalingImageMiB = 160
	// scalingIdleTimeout is the fleet baseline's per-board reaper.
	scalingIdleTimeout = 8 * time.Second
)

type scalingArrival struct {
	at  sim.Duration
	svc int
}

// scalingTrace builds one Poisson arrival schedule shared verbatim by
// the fleet and cluster runs, so both face the identical workload.
func scalingTrace(seed int64, horizon sim.Duration) []scalingArrival {
	rng := rand.New(rand.NewSource(seed))
	var trace []scalingArrival
	nsvc := scalingHotServices + scalingColdServices
	for s := 0; s < nsvc; s++ {
		mean := scalingHotMeanGap
		if s >= scalingHotServices {
			mean = scalingColdMeanGap
		}
		// Spread first arrivals so every service's initial cold start
		// isn't synchronized at t=0.
		at := sim.Duration(rng.ExpFloat64() * float64(mean))
		for at < horizon {
			trace = append(trace, scalingArrival{at: at, svc: s})
			at += sim.Duration(rng.ExpFloat64() * float64(mean))
		}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		return trace[i].svc < trace[j].svc
	})
	return trace
}

func scalingServiceConfig(s int, idle sim.Duration) core.ServiceConfig {
	name := fmt.Sprintf("svc%02d.family.name", s)
	img := unikernel.UnikernelImage(fmt.Sprintf("svc%02d", s), unikernel.NewStaticSiteApp(name))
	img.MemMiB = scalingImageMiB
	return core.ServiceConfig{
		Name:        name,
		IP:          netstack.IPv4(10, 0, 0, byte(20+s)),
		Port:        80,
		Image:       img,
		IdleTimeout: idle,
	}
}

// scalingOutcome is one system's run at one board count.
type scalingOutcome struct {
	lat        *metrics.Series
	refused    int
	errs       int
	total      int
	coldStarts uint64
}

func (o *scalingOutcome) refusedPct() float64 {
	if o.total == 0 {
		return 0
	}
	return 100 * float64(o.refused) / float64(o.total)
}

// runScalingFleet replays the trace against the §3.3.2 baseline: every
// board registers every service, the client walks the NS set on
// SERVFAIL.
func runScalingFleet(n int, seed int64, trace []scalingArrival) *scalingOutcome {
	fl := core.NewFleet(n, core.WithSeed(seed))
	var svcs [][]*core.Service
	for s := 0; s < scalingHotServices+scalingColdServices; s++ {
		svcs = append(svcs, fl.RegisterEverywhere(scalingServiceConfig(s, scalingIdleTimeout)))
	}
	fc := fl.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	out := &scalingOutcome{lat: &metrics.Series{Name: fmt.Sprintf("fleet@%d", n)}, total: len(trace)}
	for _, a := range trace {
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		fl.Eng().At(a.at, func() {
			fc.Fetch(name, "/", 30*time.Second,
				func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
					switch {
					case err == core.ErrAllServFail:
						out.refused++
					case err != nil:
						out.errs++
					default:
						out.lat.Add(d)
					}
				})
		})
	}
	fl.RunAll()
	for _, reps := range svcs {
		for _, svc := range reps {
			out.coldStarts += svc.ColdStarts
		}
	}
	return out
}

// runScalingCluster replays the trace against the control plane: one
// query, scheduler-picked board, EWMA-sized warm pools.
func runScalingCluster(n int, seed int64, trace []scalingArrival) *scalingOutcome {
	c := cluster.NewCluster(cluster.WithBoards(n), cluster.WithSeed(seed))
	for s := 0; s < scalingHotServices+scalingColdServices; s++ {
		c.RegisterService(scalingServiceConfig(s, 0))
	}
	cl := c.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	out := &scalingOutcome{lat: &metrics.Series{Name: fmt.Sprintf("cluster@%d", n)}, total: len(trace)}
	for _, a := range trace {
		name := fmt.Sprintf("svc%02d.family.name", a.svc)
		c.Eng().At(a.at, func() {
			cl.Fetch(name, "/", 30*time.Second,
				func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
					switch {
					case err == cluster.ErrClusterFull:
						out.refused++
					case err != nil:
						out.errs++
					default:
						out.lat.Add(d)
					}
				})
		})
	}
	c.RunAll()
	for _, t := range c.ServiceTotals() {
		out.coldStarts += t.ColdStarts
	}
	return out
}

// Scaling contrasts the paper's client-side SERVFAIL failover with the
// cluster control plane as the board count grows: time-to-first-response
// percentiles, refusal rate, and cold-start counts under one shared
// Poisson arrival trace per board count.
func Scaling(boardCounts []int, horizon sim.Duration) *Result {
	r := newResult("Scaling", "cluster placement vs fleet failover under Poisson arrivals")
	tab := metrics.NewTable("",
		"boards", "system", "n-ok", "p50", "p95", "refused%", "coldstarts")
	for _, n := range boardCounts {
		trace := scalingTrace(7000+int64(n), horizon)
		fleet := runScalingFleet(n, 7100+int64(n), trace)
		clus := runScalingCluster(n, 7100+int64(n), trace)
		for _, o := range []*scalingOutcome{fleet, clus} {
			d := o.lat.Summarize()
			tab.AddRow(n, o.lat.Name, d.Len(), d.P50(),
				d.P95(), fmt.Sprintf("%.1f", o.refusedPct()), o.coldStarts)
			r.Series[o.lat.Name] = o.lat
		}
	}
	r.Output = tab.String()
	r.addNote("the fleet client re-resolves through the NS set on SERVFAIL and re-boots idle-reaped services; the cluster answers one query from the scheduler-picked board and its EWMA warm pools keep active services booted")
	r.addNote("expected shape: at 1 board both are capacity-limited but preemption keeps the hot services placed (fewer refusals); at the capacity edge the cluster trades a point or two of refusal rate for keeping its pools warm; at ≥4 boards the cluster's p95 drops well below the baseline, which still pays repeated cold starts + walk latency")
	return r
}
