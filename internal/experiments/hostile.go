package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"jitsu/internal/cluster"
	"jitsu/internal/dns"
	"jitsu/internal/metrics"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// The hostile-network family: the same workloads the clean-room
// experiments measure, replayed over impaired links — seeded loss,
// jitter and partitions injected below the bridge — to show that the
// retry/backoff hardening keeps the system inside its envelope where
// the single-datagram ablations fall off a cliff. Every run is
// deterministic (per-link seeded RNGs) and the flash-crowd run carries
// a packet capture folded into the determinism fingerprint, so CI
// checks the wire itself, frame for frame.

const (
	// hostileFlashLoss is the uplink loss rate of the flash-crowd
	// scenario.
	hostileFlashLoss = 0.05
	// hostileFetchTimeout bounds one flash-crowd fetch; an ablated
	// client that loses its only DNS datagram burns all of it.
	hostileFetchTimeout = 10 * time.Second
	// hostileSwimLoss is the one-way loss rate of the asymmetric
	// gossip scenario — lossy, not dead: exactly where indirect probing
	// must avert false confirms.
	hostileSwimLoss = 0.5
)

// hostileFlashTrace is one flash crowd: n arrivals for a single cold
// service, Poisson-packed into ~300ms so the whole burst lands inside
// the first cold boot.
func hostileFlashTrace(seed int64, n int) []sim.Duration {
	rng := rand.New(rand.NewSource(seed))
	ats := make([]sim.Duration, n)
	at := 1 * time.Second
	for i := range ats {
		at += sim.Duration(rng.ExpFloat64() * float64(300*time.Millisecond) / float64(n))
		ats[i] = at
	}
	return ats
}

type hostileFlashOutcome struct {
	lat     *metrics.Series
	errs    int
	retries uint64
	cap     *netsim.Capture
}

// runHostileFlash replays the burst against one link condition. A
// timed-out fetch is recorded at its (censored) elapsed time, so the
// latency series shows the cliff instead of silently dropping it.
func runHostileFlash(label string, trace []sim.Duration, impaired, retry, capture bool) *hostileFlashOutcome {
	c := cluster.NewCluster(
		cluster.WithBoards(2),
		cluster.WithSeed(4200),
		cluster.WithProbing(1*time.Second, 0, 0),
	)
	sc := scalingServiceConfig(0, 0)
	sc.Name = "flash.family.name"
	c.RegisterService(sc)
	cl := c.NewClient("edge-client", netstack.IPv4(10, 0, 0, 9))
	if retry {
		cl.Retry = dns.DefaultRetry()
	}
	out := &hostileFlashOutcome{lat: &metrics.Series{Name: label}}
	link := cl.Host(0).NIC.Link()
	if impaired {
		// Uplink-only loss (the client NIC sits at the link's A end):
		// queries and requests die on the way out, answers arrive clean —
		// the classic congested-edge asymmetry. TCP's own retransmits
		// recover the fetch leg; the single-datagram DNS leg is exactly
		// what the retry policy must cover.
		link.ImpairAtoB(netsim.Impairment{Loss: hostileFlashLoss, Jitter: 1 * time.Millisecond}, 4242)
	}
	if capture {
		out.cap = netsim.NewCapture(c.Eng(), 1<<14)
		link.Tap(out.cap)
	}
	for _, at := range trace {
		c.Eng().At(at, func() {
			cl.Fetch("flash.family.name", "/", hostileFetchTimeout,
				func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
					if err != nil {
						out.errs++
					}
					out.lat.Add(d)
				})
		})
	}
	c.RunUntil(trace[len(trace)-1] + hostileFetchTimeout + time.Second)
	c.StopMembership()
	c.RunAll()
	out.retries = cl.DNSRetries
	return out
}

// runHostileSwim runs one gossiping cluster for horizon with board 1's
// management uplink lossy in its transmit direction only (acks and
// refutations die on the way out — the board is alive but hard to
// hear), and reports the false-alarm counters.
func runHostileSwim(indirect int, horizon sim.Duration) *cluster.Cluster {
	c := cluster.NewCluster(
		cluster.WithBoards(4),
		cluster.WithSeed(4300),
		cluster.WithProbing(500*time.Millisecond, 200*time.Millisecond, 3*time.Second),
		cluster.WithIndirectProbes(indirect),
	)
	c.MgmtLink(1).ImpairAtoB(netsim.Impairment{Loss: hostileSwimLoss}, 43)
	c.RunUntil(horizon)
	c.StopMembership()
	c.RunAll()
	return c
}

// runHostileMigrate evacuates a board over one management-link
// condition and reports the transfer counters. prep scripts the
// impairment right before the leave.
func runHostileMigrate(prep func(*cluster.Cluster, *netsim.Link)) *cluster.Cluster {
	c := cluster.NewCluster(
		cluster.WithBoards(3),
		cluster.WithSeed(4400),
		cluster.WithMigrateOnLeave(true),
	)
	sc := scalingServiceConfig(0, 0)
	sc.Name = "warm.family.name"
	c.RegisterService(sc, cluster.WithMinWarm(2))
	c.RunAll()
	prep(c, c.MgmtLink(1))
	if err := c.Leave(1, nil); err != nil {
		panic(fmt.Sprintf("hostile: leave: %v", err))
	}
	c.RunAll()
	return c
}

// Hostile regenerates the hostile-network scenarios: the flash crowd
// over a lossy edge (retry vs ablation vs perfect link), the SWIM
// failure detector under an asymmetric lossy uplink (indirect probing
// vs ablation), and a mandatory evacuation racing management-network
// loss and partition.
func Hostile(flashN int, swimHorizon sim.Duration) *Result {
	r := newResult("Hostile", "impaired links: retry/backoff hardening vs single-datagram ablations")

	// -- flash crowd over a lossy edge --
	trace := hostileFlashTrace(4100, flashN)
	perfect := runHostileFlash("flash perfect link", trace, false, true, false)
	hardened := runHostileFlash("flash lossy+retry", trace, true, true, true)
	ablated := runHostileFlash("flash lossy no-retry", trace, true, false, false)
	flash := metrics.NewTable("flash crowd, one cold service, "+
		fmt.Sprintf("%d arrivals, %.0f%% edge loss", flashN, hostileFlashLoss*100),
		"link", "n", "errs", "dns-retries", "p50", "p95", "max")
	for _, o := range []*hostileFlashOutcome{perfect, hardened, ablated} {
		d := o.lat.Summarize()
		flash.AddRow(o.lat.Name, d.Len(), o.errs, o.retries, d.P50(), d.P95(), d.Max())
		r.Series[o.lat.Name] = o.lat
	}
	r.Captures["flash lossy edge"] = hardened.cap

	// -- SWIM under an asymmetric lossy uplink --
	indirect := runHostileSwim(2, swimHorizon)
	direct := runHostileSwim(0, swimHorizon)
	swim := metrics.NewTable(fmt.Sprintf(
		"gossip, board 1 transmit-lossy (%.0f%%) for %v",
		hostileSwimLoss*100, time.Duration(swimHorizon)),
		"probing", "ping-reqs", "indirect-acks", "suspects", "refutes", "false-confirms")
	swim.AddRow("indirect k=2", indirect.PingReqs, indirect.IndirectAcks,
		indirect.Suspects, indirect.Refutes, indirect.Confirms)
	swim.AddRow("direct only", direct.PingReqs, direct.IndirectAcks,
		direct.Suspects, direct.Refutes, direct.Confirms)

	// -- migration racing management-network faults --
	clean := runHostileMigrate(func(*cluster.Cluster, *netsim.Link) {})
	lossy := runHostileMigrate(func(_ *cluster.Cluster, l *netsim.Link) {
		l.Impair(netsim.Impairment{Loss: 0.2}, 44)
	})
	healed := runHostileMigrate(func(c *cluster.Cluster, l *netsim.Link) {
		// Cut mid-transfer, heal after the chunk retries exhaust but
		// before the rescheduled attempt fires.
		c.Eng().After(20*time.Millisecond, func() { l.Partition() })
		c.Eng().After(2500*time.Millisecond, func() { l.Heal() })
	})
	dead := runHostileMigrate(func(_ *cluster.Cluster, l *netsim.Link) { l.Partition() })
	mig := metrics.NewTable("mandatory evacuation of board 1, chunked pre-copy",
		"mgmt link", "chunks", "retx", "aborts", "migrations", "lost")
	for _, row := range []struct {
		name string
		c    *cluster.Cluster
	}{{"clean", clean}, {"20% loss", lossy}, {"partition+heal", healed}, {"partitioned", dead}} {
		mig.AddRow(row.name, row.c.Chunks, row.c.ChunkRetx, row.c.XferAborts,
			row.c.Migrations, row.c.Lost)
	}

	r.Output = flash.String() + "\n" + swim.String() + "\n" + mig.String()
	r.addNote("all three flash-crowd runs share one burst trace; a timed-out fetch is recorded at its censored elapsed time, so the ablation's cliff shows in the percentiles instead of vanishing from them")
	r.addNote("expected shape: with retry the lost datagrams recover under the cold boot the burst is already waiting on, so p95 stays within 2x of the perfect link; the ablation turns every lost query into a full client timeout")
	r.addNote("gossip: read the false-confirms column, not suspects — the direct-only detector wrongly confirms the lossy-but-alive board dead and then stops probing it (few suspicion events, long wrongful exiles), while indirect probing keeps it in the ring: most direct-ack losses are averted by an indirect ack and the rest are refuted before the suspicion matures")
	r.addNote("migration: retransmits ride out 20%% management-link loss with zero aborts; a mid-transfer partition costs one bounded abort and the rescheduled attempt completes after the heal; only a permanent partition gives up — after the full attempt budget, never wedging the departure")
	return r
}
