// Package blockdev is the simulated per-board block device behind the
// disk checkpoint tier: a slot-allocated store (fixed-size slots over
// one bdev, ndn-dpdk style) with a seek+transfer latency model driven
// by the simulation's virtual clock.
//
// The device sits BELOW internal/core in the layering: core imports
// blockdev, blockdev imports only internal/sim. It knows nothing about
// services or checkpoints — it allocates slots, and it prices reads and
// writes. All ordering is FIFO through a single busy window, so two
// same-seed runs schedule identical transfer completions and a promote
// racing its own demotion's write is serialized by construction.
package blockdev

import (
	"fmt"
	"time"

	"jitsu/internal/sim"
)

// Config sizes one device and its latency model. The zero value means
// "no disk" (core treats a nil device as a board without storage).
type Config struct {
	// SlotMiB is the fixed allocation unit; every stored object rounds
	// up to whole slots.
	SlotMiB int
	// Slots is the device capacity in slots.
	Slots int
	// SeekTime is the fixed per-operation positioning cost.
	SeekTime sim.Duration
	// BytesPerSec is the sequential transfer rate.
	BytesPerSec float64
}

// DefaultConfig models the SD-card-class storage an embedded board
// actually carries: 16 GiB in 4 MiB slots, ~6ms seek, 40 MB/s
// sequential — slow enough that a disk restore costs visibly more than
// a warm restore, fast enough to stay well under a full cold boot.
func DefaultConfig() Config {
	return Config{
		SlotMiB:     4,
		Slots:       4096,
		SeekTime:    6 * time.Millisecond,
		BytesPerSec: 40e6,
	}
}

// Device is one board's checkpoint store.
type Device struct {
	cfg Config
	eng *sim.Engine

	// free is the slot freelist, LIFO: deterministic reuse order.
	free []int
	// busyUntil is the end of the last queued transfer: the single
	// request queue every operation serializes through.
	busyUntil sim.Duration

	// Reads / Writes count completed transfer operations; BytesRead /
	// BytesWritten total their payloads.
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	// QueueHighWaterMiB tracks the deepest backlog (in queued transfer
	// time) any operation waited behind.
	QueueHighWater sim.Duration
	// SlotHighWater is the peak slot occupancy.
	SlotHighWater int
}

// New builds a device on the engine. A Config with Slots <= 0 or
// SlotMiB <= 0 returns nil — the "board has no disk" case callers gate
// on.
func New(eng *sim.Engine, cfg Config) *Device {
	if cfg.Slots <= 0 || cfg.SlotMiB <= 0 {
		return nil
	}
	if cfg.SeekTime < 0 {
		cfg.SeekTime = 0
	}
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = 40e6
	}
	d := &Device{cfg: cfg, eng: eng, free: make([]int, 0, cfg.Slots)}
	// Freelist is LIFO; push high ids first so allocation hands out
	// slot 0, 1, 2, ... on a fresh device.
	for i := cfg.Slots - 1; i >= 0; i-- {
		d.free = append(d.free, i)
	}
	return d
}

// Cfg returns the device's resolved configuration.
func (d *Device) Cfg() Config { return d.cfg }

// SlotsTotal is the device capacity in slots.
func (d *Device) SlotsTotal() int { return d.cfg.Slots }

// SlotsUsed is the current slot occupancy.
func (d *Device) SlotsUsed() int { return d.cfg.Slots - len(d.free) }

// SlotsFor is how many slots a payload of miB occupies.
func (d *Device) SlotsFor(miB int) int {
	if miB <= 0 {
		return 1
	}
	return (miB + d.cfg.SlotMiB - 1) / d.cfg.SlotMiB
}

// Alloc claims the slots a payload of miB needs. ok is false when the
// device is full (the caller's disk-full fallback path); a failed
// allocation claims nothing.
func (d *Device) Alloc(miB int) (slots []int, ok bool) {
	n := d.SlotsFor(miB)
	if n > len(d.free) {
		return nil, false
	}
	slots = make([]int, n)
	for i := 0; i < n; i++ {
		slots[i] = d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
	}
	if used := d.SlotsUsed(); used > d.SlotHighWater {
		d.SlotHighWater = used
	}
	return slots, true
}

// Free returns slots to the freelist.
func (d *Device) Free(slots []int) {
	if len(d.free)+len(slots) > d.cfg.Slots {
		panic(fmt.Sprintf("blockdev: double free (%d slots back into %d free of %d)",
			len(slots), len(d.free), d.cfg.Slots))
	}
	d.free = append(d.free, slots...)
}

// xferTime prices one transfer: seek plus payload over the sequential
// rate.
func (d *Device) xferTime(miB int) sim.Duration {
	bytes := float64(miB) * (1 << 20)
	return d.cfg.SeekTime + sim.Duration(bytes/d.cfg.BytesPerSec*float64(time.Second))
}

// enqueue schedules one transfer through the FIFO busy window and
// fires done at its completion instant.
func (d *Device) enqueue(miB int, done func()) {
	now := d.eng.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	if wait := start - now; wait > d.QueueHighWater {
		d.QueueHighWater = wait
	}
	d.busyUntil = start + d.xferTime(miB)
	at := d.busyUntil
	d.eng.At(at, func() {
		if done != nil {
			done()
		}
	})
}

// Write streams miB onto the device; done fires when the payload is
// durable. The caller must have Alloc'd the slots already.
func (d *Device) Write(miB int, done func()) {
	d.enqueue(miB, func() {
		d.Writes++
		d.BytesWritten += uint64(miB) << 20
		if done != nil {
			done()
		}
	})
}

// Read streams miB off the device; done fires when the payload is in
// memory. A read issued behind an in-flight write of the same object
// completes after it — FIFO ordering is the device's consistency
// model.
func (d *Device) Read(miB int, done func()) {
	d.enqueue(miB, func() {
		d.Reads++
		d.BytesRead += uint64(miB) << 20
		if done != nil {
			done()
		}
	})
}
