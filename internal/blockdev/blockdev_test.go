package blockdev

import (
	"testing"
	"time"

	"jitsu/internal/sim"
)

func testDev(t *testing.T, slots int) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.New(1)
	d := New(eng, Config{SlotMiB: 4, Slots: slots, SeekTime: 5 * time.Millisecond, BytesPerSec: 40e6})
	if d == nil {
		t.Fatal("New returned nil for a valid config")
	}
	return eng, d
}

func TestAllocFreeRoundTrip(t *testing.T) {
	_, d := testDev(t, 8)
	slots, ok := d.Alloc(10) // 10 MiB -> 3 slots of 4 MiB
	if !ok || len(slots) != 3 {
		t.Fatalf("Alloc(10) = %v, %v; want 3 slots", slots, ok)
	}
	if d.SlotsUsed() != 3 {
		t.Fatalf("SlotsUsed = %d, want 3", d.SlotsUsed())
	}
	d.Free(slots)
	if d.SlotsUsed() != 0 {
		t.Fatalf("SlotsUsed after Free = %d, want 0", d.SlotsUsed())
	}
}

func TestAllocFailsWhenFullAndClaimsNothing(t *testing.T) {
	_, d := testDev(t, 2)
	if _, ok := d.Alloc(8); !ok {
		t.Fatal("first Alloc(8) should fill the device")
	}
	if _, ok := d.Alloc(1); ok {
		t.Fatal("Alloc on a full device must fail")
	}
	if d.SlotsUsed() != 2 {
		t.Fatalf("failed Alloc leaked slots: used=%d", d.SlotsUsed())
	}
}

func TestTransferLatencyModel(t *testing.T) {
	eng, d := testDev(t, 8)
	// 4 MiB at 40 MB/s = 4*2^20/40e6 s ≈ 104.9ms, plus 5ms seek.
	var doneAt sim.Duration
	d.Write(4, func() { doneAt = eng.Now() })
	eng.Run()
	want := 5*time.Millisecond + sim.Duration(float64(4<<20)/40e6*float64(time.Second))
	if doneAt != want {
		t.Fatalf("write completed at %v, want %v", doneAt, want)
	}
	if d.Writes != 1 || d.BytesWritten != 4<<20 {
		t.Fatalf("write accounting: %d writes, %d bytes", d.Writes, d.BytesWritten)
	}
}

// TestFIFOSerialization pins the consistency model: a read issued while
// a write is still streaming completes strictly after it, so a promote
// racing its own demotion's write can never observe a torn checkpoint.
func TestFIFOSerialization(t *testing.T) {
	eng, d := testDev(t, 8)
	var order []string
	d.Write(4, func() { order = append(order, "write") })
	d.Read(4, func() { order = append(order, "read") })
	eng.Run()
	if len(order) != 2 || order[0] != "write" || order[1] != "read" {
		t.Fatalf("order = %v, want [write read]", order)
	}
	if d.QueueHighWater <= 0 {
		t.Fatal("queued read recorded no wait")
	}
}

func TestNilForZeroConfig(t *testing.T) {
	if d := New(sim.New(1), Config{}); d != nil {
		t.Fatal("zero config must build no device")
	}
}

func TestDeterministicSlotOrder(t *testing.T) {
	_, a := testDev(t, 8)
	_, b := testDev(t, 8)
	sa, _ := a.Alloc(8)
	sb, _ := b.Alloc(8)
	if len(sa) != len(sb) {
		t.Fatalf("alloc sizes diverge: %v vs %v", sa, sb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("slot order diverges: %v vs %v", sa, sb)
		}
	}
}
