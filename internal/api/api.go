// Package api is the typed control-plane surface over the Jitsu
// directory: Register / Activate / Checkpoint / Restore / Migrate /
// Demote / Promote / Stop / Stats requests with structured error codes.
// cmd/jitsud and the
// cluster's management paths speak these types instead of ad-hoc method
// calls, so a single-board deployment and a whole cluster present the
// same verbs — a cluster is just a ControlPlane whose Migrate does
// something.
//
// The package sits above internal/core and below internal/cluster:
// ForBoard adapts one board; Cluster.API (in internal/cluster) adapts
// the control plane of a whole cluster to the same interface.
package api

import (
	"fmt"
	"time"

	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Code classifies a control-plane failure.
type Code int

// Error codes.
const (
	// CodeBadRequest: the request itself is malformed (empty name,
	// missing checkpoint, board index out of range).
	CodeBadRequest Code = iota + 1
	// CodeNotFound: no such service (or no replica where asked).
	CodeNotFound
	// CodeNoMemory: the image does not fit — the §3.3.2 resource
	// exhaustion a DNS client would see as SERVFAIL.
	CodeNoMemory
	// CodeConflict: the service's state precludes the operation
	// (checkpoint of a cold service, restore onto a running one,
	// registering a name twice).
	CodeConflict
	// CodeUnavailable: the deployment cannot perform the operation at
	// all (migration on a single board, departed board).
	CodeUnavailable
	// CodeMoved: the service was handed to another cluster (federation
	// spill or skew shed); the detail names the new home and callers
	// should re-resolve at the federation root.
	CodeMoved
	// CodeUnauthorized: the session's capability scope does not cover
	// the verb (or the session presented no acceptable credential at
	// all). The session itself stays healthy — only the verb is
	// refused.
	CodeUnauthorized
)

func (c Code) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeNotFound:
		return "not-found"
	case CodeNoMemory:
		return "no-memory"
	case CodeConflict:
		return "conflict"
	case CodeUnavailable:
		return "unavailable"
	case CodeMoved:
		return "moved"
	case CodeUnauthorized:
		return "unauthorized"
	default:
		return fmt.Sprintf("code(%d)", int(c))
	}
}

// Codes lists every error code, in wire order — the table the
// verb-by-code round-trip tests sweep.
func Codes() []Code {
	return []Code{CodeBadRequest, CodeNotFound, CodeNoMemory, CodeConflict,
		CodeUnavailable, CodeMoved, CodeUnauthorized}
}

// Error is a typed control-plane failure: the operation, the code a
// caller can branch on, and a human-readable detail.
type Error struct {
	Op     string
	Code   Code
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s (%s)", e.Op, e.Detail, e.Code)
}

// Errf builds an Error.
func Errf(op string, code Code, format string, args ...any) *Error {
	return &Error{Op: op, Code: code, Detail: fmt.Sprintf(format, args...)}
}

// BoardSel selects a board in control-plane requests. The zero value is
// AnyBoard — "any suitable board" — so zero-constructed requests do the
// flexible thing; pin a specific board with OnBoard(id).
type BoardSel int

// AnyBoard is the zero BoardSel: any suitable board.
const AnyBoard BoardSel = 0

// OnBoard pins the selection to board id.
func OnBoard(id int) BoardSel { return BoardSel(id + 1) }

// ID unpacks the selection: ok is false for AnyBoard.
func (s BoardSel) ID() (id int, ok bool) {
	if s == AnyBoard {
		return -1, false
	}
	return int(s) - 1, true
}

// RegisterRequest adds a service to the directory. MinWarm and Policy
// are honoured by cluster backends; a single board ignores them.
type RegisterRequest struct {
	Config core.ServiceConfig
	// MinWarm keeps at least this many replicas booted (cluster only).
	MinWarm int
	// Policy names a placement policy ("first-fit", "round-robin",
	// "least-loaded", "power-aware"); empty = the backend default.
	Policy string
}

// RegisterResponse reports the canonical name registered.
type RegisterResponse struct {
	Name string
	Err  *Error
}

// ActivateRequest summons a service: launch it if stopped, touch it if
// running. The backend picks where (a cluster routes through its
// placement policy).
type ActivateRequest struct {
	Name string
	// Speculative suppresses cold-start accounting (a prewarm).
	Speculative bool
	// OnReady (may be nil) fires when the unikernel serves or the
	// launch fails.
	OnReady func(error)
}

// ActivateResponse reports where the service is (being) served.
type ActivateResponse struct {
	IP    netstack.IP
	Board int
	State core.ServiceState
	Err   *Error
}

// CheckpointRequest captures a ready service's state for migration.
type CheckpointRequest struct {
	Name string
	// Board restricts the capture to one board's replica (AnyBoard =
	// any ready replica; ignored by single-board backends).
	Board BoardSel
}

// CheckpointResponse carries the captured state and where it came from.
type CheckpointResponse struct {
	Checkpoint *core.Checkpoint
	Board      int
	Err        *Error
}

// RestoreRequest rebuilds a service from a checkpoint (the receiving
// half of a migration).
type RestoreRequest struct {
	Name       string
	Checkpoint *core.Checkpoint
	// Board selects the restore target with OnBoard(id); a cluster
	// refuses AnyBoard (the receiving half of a migration must name its
	// destination), a single board ignores the field.
	Board BoardSel
	// ToDisk parks the checkpoint on the target board's block device
	// (cold-on-disk) instead of booting it — the handoff path that moves
	// a demoted replica without paging it in. Requires the target to
	// have a disk.
	ToDisk  bool
	OnReady func(error)
}

// RestoreResponse reports acceptance; readiness arrives via OnReady.
type RestoreResponse struct {
	Err *Error
}

// MigrateRequest moves a ready replica between boards. Only meaningful
// on a cluster; single-board backends answer CodeUnavailable.
type MigrateRequest struct {
	Name string
	// From restricts the source (AnyBoard = any ready replica).
	From BoardSel
	// To selects the destination (AnyBoard = let the service's policy
	// pick).
	To BoardSel
	// OnDone (may be nil) fires when the migration settles; ok reports
	// whether the replica arrived warm.
	OnDone func(ok bool)
}

// MigrateResponse reports that the move started (completion is OnDone).
type MigrateResponse struct {
	Started bool
	Err     *Error
}

// TransferRequest adopts a service arriving from another deployment —
// the federation transfer leg of a cross-cluster migration, or a cold
// spill when the original home's admission refused. The receiver
// registers the service under its own directory and, when a checkpoint
// rides along, restores the warm state onto a policy-picked board.
type TransferRequest struct {
	Config core.ServiceConfig
	// MinWarm and Policy carry the service's registration options to
	// the new home (cluster backends only).
	MinWarm int
	Policy  string
	// Checkpoint is the warm state to restore; nil adopts cold (the
	// service boots on demand at its new home).
	Checkpoint *core.Checkpoint
	// ToDisk parks the checkpoint on the receiver's disk tier instead of
	// booting it; receivers without a disk fall back to a warm restore.
	ToDisk bool
	// OnReady (may be nil) fires when the restored replica serves (or
	// immediately, for a cold or to-disk adoption).
	OnReady func(error)
}

// TransferResponse reports where the adopted service landed.
type TransferResponse struct {
	// Board is the restore destination (-1 for a cold adoption).
	Board int
	Err   *Error
}

// StopRequest evicts a service: every booted replica's VM is destroyed
// and every disk-resident checkpoint is dropped (all replicas, on a
// cluster). Prefer Demote when the state should survive on disk.
type StopRequest struct {
	Name string
}

// StopResponse reports how many replicas were evicted.
type StopResponse struct {
	Stopped int
	Err     *Error
}

// DemoteRequest parks a booted replica's state on its board's block
// device and destroys the VM: warm-in-memory → cold-on-disk. The freed
// memory raises the board's density ceiling; a later activation
// restores from disk at a fraction of the full boot cost.
type DemoteRequest struct {
	Name string
	// Board restricts the demotion to one board's replica (AnyBoard =
	// every booted replica; ignored by single-board backends).
	Board BoardSel
}

// DemoteResponse reports how many replicas were demoted.
type DemoteResponse struct {
	Demoted int
	Err     *Error
}

// PromoteRequest pages a disk-resident replica back into memory:
// cold-on-disk → warm-in-memory. CodeConflict when the replica is not
// on disk, CodeNoMemory when the image no longer fits in RAM.
type PromoteRequest struct {
	Name string
	// Board restricts the promotion to one board's replica (AnyBoard =
	// the first disk-resident replica in board order).
	Board BoardSel
	// OnReady (may be nil) fires when the restored unikernel serves.
	OnReady func(error)
}

// PromoteResponse reports where the promotion started; readiness
// arrives via OnReady.
type PromoteResponse struct {
	Board int
	Err   *Error
}

// StatsRequest snapshots the deployment's counters.
type StatsRequest struct{}

// ServiceStats is one service's aggregated lifecycle counters. State is
// the typed lifecycle tier (for a cluster: the most-alive tier any
// replica occupies).
type ServiceStats struct {
	Name         string
	State        core.ServiceState
	Launches     uint64
	ColdStarts   uint64
	Handoffs     uint64
	ServFails    uint64
	Reaps        uint64
	Restores     uint64
	DiskRestores uint64
	Demotions    uint64
}

// TriggerStats counts firings per activation frontend.
type TriggerStats struct {
	Name  string
	Fired uint64
}

// StatsResponse is the deployment snapshot.
type StatsResponse struct {
	Services []ServiceStats
	Triggers []TriggerStats
	// Registries carries every subsystem counter registry the backend
	// owns (one per board, plus cluster/federation tiers), name-sorted
	// rows inside each snapshot.
	Registries []obs.Snapshot
	Err        *Error
}

// WatchStatsRequest subscribes to the deployment's stats stream: OnStats
// fires with a fresh StatsResponse every Every of virtual time. The
// stream runs on the deployment's own engine, so snapshots land at
// deterministic instants and two same-seed runs observe identical
// sequences.
type WatchStatsRequest struct {
	// Every is the virtual-time snapshot period (must be positive).
	Every time.Duration
	// OnStats receives each snapshot; returning false ends the stream.
	OnStats func(StatsResponse) bool
}

// WatchStatsResponse reports stream acceptance; Stop cancels it early.
type WatchStatsResponse struct {
	Stop func()
	Err  *Error
}

// StreamStats drives a WatchStats subscription on eng, snapshotting via
// snap each period. Shared by every ControlPlane backend so the verb
// behaves identically on one board and on a cluster.
func StreamStats(eng *sim.Engine, req WatchStatsRequest, snap func(StatsRequest) StatsResponse) WatchStatsResponse {
	if req.Every <= 0 {
		return WatchStatsResponse{Err: Errf(VerbWatchStats, CodeBadRequest, "non-positive period %v", req.Every)}
	}
	if req.OnStats == nil {
		return WatchStatsResponse{Err: Errf(VerbWatchStats, CodeBadRequest, "nil OnStats")}
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if !req.OnStats(snap(StatsRequest{})) {
			stopped = true
			return
		}
		eng.After(req.Every, tick)
	}
	eng.After(req.Every, tick)
	return WatchStatsResponse{Stop: func() { stopped = true }}
}

// ControlPlane is the uniform management surface: one board or a whole
// cluster, same verbs.
type ControlPlane interface {
	Register(RegisterRequest) RegisterResponse
	Activate(ActivateRequest) ActivateResponse
	Checkpoint(CheckpointRequest) CheckpointResponse
	Restore(RestoreRequest) RestoreResponse
	Migrate(MigrateRequest) MigrateResponse
	Transfer(TransferRequest) TransferResponse
	Demote(DemoteRequest) DemoteResponse
	Promote(PromoteRequest) PromoteResponse
	Stop(StopRequest) StopResponse
	Stats(StatsRequest) StatsResponse
	// WatchStats streams periodic Stats snapshots on the deployment's
	// virtual clock.
	WatchStats(WatchStatsRequest) WatchStatsResponse
}
