package api

import "fmt"

// Scope is a session's capability level on the control plane — the
// least-authority ladder a management-plane credential maps to. Scopes
// nest: each level may issue everything the levels below it may.
//
//	ScopeReadOnly  observe:  Stats, WatchStats
//	ScopeOperator  operate:  + Activate, Demote, Promote, Stop
//	ScopeAdmin     reshape:  + Register, Checkpoint, Restore, Migrate,
//	                           Transfer
//
// The zero value, ScopeNone, authorizes nothing; a server policy that
// grants ScopeNone to anonymous sessions is refusing them.
type Scope uint8

// Capability scopes, in nesting order.
const (
	// ScopeNone authorizes no verb at all (refused sessions).
	ScopeNone Scope = iota
	// ScopeReadOnly may observe the deployment but not change it.
	ScopeReadOnly
	// ScopeOperator may drive the service lifecycle on its current
	// homes (activate, demote, promote, stop) but not reshape the
	// deployment.
	ScopeOperator
	// ScopeAdmin may issue every verb, including the ones that add
	// services or move state between boards and clusters.
	ScopeAdmin
)

func (s Scope) String() string {
	switch s {
	case ScopeNone:
		return "none"
	case ScopeReadOnly:
		return "read-only"
	case ScopeOperator:
		return "operator"
	case ScopeAdmin:
		return "admin"
	default:
		return fmt.Sprintf("scope(%d)", uint8(s))
	}
}

// Allows reports whether a session holding s may issue a verb that
// requires at least need.
func (s Scope) Allows(need Scope) bool { return need != ScopeNone && s >= need }

// Canonical verb names — the Op field every Errf carries and the keys
// of the verb-scope table. One constant per ControlPlane method.
const (
	VerbRegister   = "register"
	VerbActivate   = "activate"
	VerbCheckpoint = "checkpoint"
	VerbRestore    = "restore"
	VerbMigrate    = "migrate"
	VerbTransfer   = "transfer"
	VerbDemote     = "demote"
	VerbPromote    = "promote"
	VerbStop       = "stop"
	VerbStats      = "stats"
	VerbWatchStats = "watch-stats"
)

// Verbs lists every ControlPlane verb name, in interface order.
func Verbs() []string {
	return []string{VerbRegister, VerbActivate, VerbCheckpoint, VerbRestore,
		VerbMigrate, VerbTransfer, VerbDemote, VerbPromote, VerbStop,
		VerbStats, VerbWatchStats}
}

// RequiredScope is the verb-scope table: the minimum capability a
// session needs to issue the named verb. Unknown names require
// ScopeAdmin, so a future verb that misses the table fails closed.
func RequiredScope(verb string) Scope {
	switch verb {
	case VerbStats, VerbWatchStats:
		return ScopeReadOnly
	case VerbActivate, VerbDemote, VerbPromote, VerbStop:
		return ScopeOperator
	case VerbRegister, VerbCheckpoint, VerbRestore, VerbMigrate, VerbTransfer:
		return ScopeAdmin
	default:
		return ScopeAdmin
	}
}
