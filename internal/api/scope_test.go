package api

import "testing"

// TestScopeLadder pins the capability nesting: each scope allows
// everything below it, nothing above it, and ScopeNone allows nothing
// — not even itself.
func TestScopeLadder(t *testing.T) {
	ladder := []Scope{ScopeNone, ScopeReadOnly, ScopeOperator, ScopeAdmin}
	for _, have := range ladder {
		for _, need := range ladder {
			want := need != ScopeNone && have >= need
			if got := have.Allows(need); got != want {
				t.Errorf("%s.Allows(%s) = %v, want %v", have, need, got, want)
			}
		}
	}
}

// TestRequiredScopeTable sweeps the verb table: every declared verb
// has a non-None requirement, observation sits at read-only, the
// lifecycle at operator, reshaping at admin — and unknown verbs fail
// closed to admin.
func TestRequiredScopeTable(t *testing.T) {
	want := map[string]Scope{
		VerbStats: ScopeReadOnly, VerbWatchStats: ScopeReadOnly,
		VerbActivate: ScopeOperator, VerbDemote: ScopeOperator,
		VerbPromote: ScopeOperator, VerbStop: ScopeOperator,
		VerbRegister: ScopeAdmin, VerbCheckpoint: ScopeAdmin,
		VerbRestore: ScopeAdmin, VerbMigrate: ScopeAdmin,
		VerbTransfer: ScopeAdmin,
	}
	verbs := Verbs()
	if len(verbs) != len(want) {
		t.Fatalf("Verbs() lists %d verbs, table expects %d", len(verbs), len(want))
	}
	for _, verb := range verbs {
		if got := RequiredScope(verb); got != want[verb] {
			t.Errorf("RequiredScope(%s) = %s, want %s", verb, got, want[verb])
		}
	}
	if got := RequiredScope("future-verb"); got != ScopeAdmin {
		t.Errorf("unknown verb must fail closed to admin, got %s", got)
	}
	if n := len(Codes()); n != 7 {
		t.Errorf("Codes() lists %d codes, want 7", n)
	}
}
