package api_test

import (
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
)

func boardPlane(t *testing.T, opts ...core.Option) (*core.Board, api.ControlPlane) {
	t.Helper()
	b := core.New(opts...)
	return b, api.ForBoard(b)
}

func svcConfig(name string, lastOctet byte) core.ServiceConfig {
	return core.ServiceConfig{
		Name:  name + ".family.name",
		IP:    netstack.IPv4(10, 0, 0, lastOctet),
		Port:  80,
		Image: unikernel.UnikernelImage(name, unikernel.NewStaticSiteApp(name)),
	}
}

func TestBoardRegisterAndErrorCodes(t *testing.T) {
	_, ctl := boardPlane(t)
	if resp := ctl.Register(api.RegisterRequest{}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("empty register -> %+v, want bad-request", resp.Err)
	}
	resp := ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})
	if resp.Err != nil || resp.Name != "alice.family.name" {
		t.Fatalf("register -> %q, %v", resp.Name, resp.Err)
	}
	if resp := ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)}); resp.Err == nil || resp.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate register -> %+v, want conflict", resp.Err)
	}
	if resp := ctl.Activate(api.ActivateRequest{Name: "ghost.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("activate unknown -> %+v, want not-found", resp.Err)
	}
	if resp := ctl.Migrate(api.MigrateRequest{Name: "alice.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeUnavailable {
		t.Fatalf("single-board migrate -> %+v, want unavailable", resp.Err)
	}
}

func TestBoardActivateCheckpointRestoreStopStats(t *testing.T) {
	b, ctl := boardPlane(t)
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})

	// Checkpoint before readiness: conflict.
	if resp := ctl.Checkpoint(api.CheckpointRequest{Name: "alice.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeConflict {
		t.Fatalf("cold checkpoint -> %+v, want conflict", resp.Err)
	}

	var readyErr error
	ready := false
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name", OnReady: func(err error) {
		ready, readyErr = true, err
	}})
	if resp.Err != nil {
		t.Fatalf("activate: %v", resp.Err)
	}
	b.Eng.Run()
	if !ready || readyErr != nil {
		t.Fatalf("OnReady: ready=%v err=%v", ready, readyErr)
	}

	cp := ctl.Checkpoint(api.CheckpointRequest{Name: "alice.family.name"})
	if cp.Err != nil || cp.Checkpoint == nil {
		t.Fatalf("checkpoint: %v", cp.Err)
	}

	// Restore onto a running service: conflict.
	if resp := ctl.Restore(api.RestoreRequest{Name: "alice.family.name", Checkpoint: cp.Checkpoint}); resp.Err == nil || resp.Err.Code != api.CodeConflict {
		t.Fatalf("restore-onto-running -> %+v, want conflict", resp.Err)
	}

	if resp := ctl.Stop(api.StopRequest{Name: "alice.family.name"}); resp.Err != nil || resp.Stopped != 1 {
		t.Fatalf("stop -> %+v", resp)
	}
	b.Eng.Run()

	// Restore the stopped service from its checkpoint: the fast boot path.
	if resp := ctl.Restore(api.RestoreRequest{Name: "alice.family.name", Checkpoint: cp.Checkpoint}); resp.Err != nil {
		t.Fatalf("restore: %v", resp.Err)
	}
	b.Eng.Run()

	stats := ctl.Stats(api.StatsRequest{})
	if len(stats.Services) != 1 {
		t.Fatalf("stats services = %d", len(stats.Services))
	}
	s := stats.Services[0]
	if s.Name != "alice.family.name" || s.State != core.StateWarmMemory || s.Launches != 2 || s.Restores != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The control-plane firings show up under the control trigger.
	found := false
	for _, tr := range stats.Triggers {
		if tr.Name == core.TriggerControl && tr.Fired > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no control-trigger firings in %+v", stats.Triggers)
	}
}

func TestBoardActivateNoMemory(t *testing.T) {
	_, ctl := boardPlane(t, core.WithMemory(8))
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})
	resp := ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	if resp.Err == nil || resp.Err.Code != api.CodeNoMemory {
		t.Fatalf("activate -> %+v, want no-memory", resp.Err)
	}
}

func TestBoardRestoreValidation(t *testing.T) {
	_, ctl := boardPlane(t)
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})
	if resp := ctl.Restore(api.RestoreRequest{Name: "alice.family.name"}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("nil-checkpoint restore -> %+v, want bad-request", resp.Err)
	}
	if resp := ctl.Restore(api.RestoreRequest{Name: "ghost.family.name", Checkpoint: &core.Checkpoint{}}); resp.Err == nil || resp.Err.Code != api.CodeNotFound {
		t.Fatalf("unknown restore -> %+v, want not-found", resp.Err)
	}
}

func TestBoardSpeculativeActivateSkipsColdStartAccounting(t *testing.T) {
	b, ctl := boardPlane(t)
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})
	ctl.Activate(api.ActivateRequest{Name: "alice.family.name", Speculative: true})
	b.Eng.RunFor(2 * time.Second)
	svc, err := b.Jitsu.Service("alice.family.name")
	if err != nil {
		t.Fatal(err)
	}
	if svc.State != core.StateWarmMemory || svc.Launches != 1 || svc.ColdStarts != 0 {
		t.Fatalf("state=%v launches=%d coldstarts=%d, want warm-memory/1/0", svc.State, svc.Launches, svc.ColdStarts)
	}
}

// TestBoardTransfer exercises the federation transfer leg at the
// single-board level: a cold adoption registers the config, a warm
// transfer restores the checkpoint (counted as a restore, not a cold
// start), and the conflict/validation codes hold.
func TestBoardTransfer(t *testing.T) {
	srcBoard, src := boardPlane(t)
	if resp := src.Register(api.RegisterRequest{Config: svcConfig("alice", 20)}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := src.Activate(api.ActivateRequest{Name: "alice.family.name"}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	srcBoard.Eng.Run()
	cp := src.Checkpoint(api.CheckpointRequest{Name: "alice.family.name"})
	if cp.Err != nil {
		t.Fatal(cp.Err)
	}

	dstBoard, dst := boardPlane(t)
	if resp := dst.Transfer(api.TransferRequest{}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("empty transfer: %+v", resp.Err)
	}
	ready := false
	if resp := dst.Transfer(api.TransferRequest{
		Config: svcConfig("alice", 20), Checkpoint: cp.Checkpoint,
		OnReady: func(err error) { ready = err == nil },
	}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	dstBoard.Eng.Run()
	if !ready {
		t.Fatal("warm transfer never became ready")
	}
	stats := dst.Stats(api.StatsRequest{})
	if len(stats.Services) != 1 || stats.Services[0].Restores != 1 || stats.Services[0].ColdStarts != 0 {
		t.Fatalf("transfer accounting wrong: %+v", stats.Services)
	}
	// Adopting a name the board already serves is a conflict.
	if resp := dst.Transfer(api.TransferRequest{Config: svcConfig("alice", 20)}); resp.Err == nil || resp.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate transfer: %+v", resp.Err)
	}
	// Cold adoption: no checkpoint, registers and reports immediately.
	coldReady := false
	if resp := dst.Transfer(api.TransferRequest{
		Config:  svcConfig("bob", 21),
		OnReady: func(err error) { coldReady = err == nil },
	}); resp.Err != nil || resp.Board != -1 {
		t.Fatalf("cold transfer: board=%d err=%v", resp.Board, resp.Err)
	}
	if !coldReady {
		t.Fatal("cold adoption did not report ready")
	}
}

func TestBoardStatsCarriesRegistrySnapshot(t *testing.T) {
	b, ctl := boardPlane(t)
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})
	ctl.Activate(api.ActivateRequest{Name: "alice.family.name"})
	b.Eng.Run()
	stats := ctl.Stats(api.StatsRequest{})
	if len(stats.Registries) != 1 {
		t.Fatalf("board stats carry %d registries, want 1", len(stats.Registries))
	}
	snap := stats.Registries[0]
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["activation.launches"] != 1 || counters["activation.cold_starts"] != 1 {
		t.Fatalf("activation counters missing from snapshot: %v", counters)
	}
	if counters["sim.fired"] == 0 {
		t.Fatalf("sim.fired not mirrored: %v", counters)
	}
	found := false
	for _, h := range snap.Hists {
		if h.Name == "activation.boot" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("activation.boot histogram missing one boot: %+v", snap.Hists)
	}
}

func TestWatchStatsStreamsOnVirtualClock(t *testing.T) {
	b, ctl := boardPlane(t)
	ctl.Register(api.RegisterRequest{Config: svcConfig("alice", 20)})

	if resp := ctl.WatchStats(api.WatchStatsRequest{Every: 0, OnStats: func(api.StatsResponse) bool { return true }}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("zero period -> %+v, want bad-request", resp.Err)
	}
	if resp := ctl.WatchStats(api.WatchStatsRequest{Every: time.Second}); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("nil OnStats -> %+v, want bad-request", resp.Err)
	}

	var at []time.Duration
	resp := ctl.WatchStats(api.WatchStatsRequest{Every: time.Second, OnStats: func(s api.StatsResponse) bool {
		at = append(at, time.Duration(b.Eng.Now()))
		return len(at) < 3 // ask the stream to end itself after 3 ticks
	}})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	b.Eng.RunUntil(10 * time.Second)
	if len(at) != 3 || at[0] != time.Second || at[1] != 2*time.Second || at[2] != 3*time.Second {
		t.Fatalf("snapshots at %v, want 1s,2s,3s", at)
	}

	// A second stream cancelled via Stop delivers nothing further.
	ticks := 0
	resp = ctl.WatchStats(api.WatchStatsRequest{Every: time.Second, OnStats: func(api.StatsResponse) bool {
		ticks++
		return true
	}})
	resp.Stop()
	b.Eng.RunUntil(20 * time.Second)
	if ticks != 0 {
		t.Fatalf("stopped stream still delivered %d snapshots", ticks)
	}
}
