package api

import (
	"errors"
	"sort"

	"jitsu/internal/core"
	"jitsu/internal/obs"
)

// boardPlane adapts one core.Board's directory to the ControlPlane
// interface. Every verb resolves its name against the board's Jitsu and
// drives the shared Activation machine through the existing typed
// methods — no new lifecycle paths.
type boardPlane struct {
	b *core.Board
}

// ForBoard exposes one board's directory as a ControlPlane.
func ForBoard(b *core.Board) ControlPlane { return &boardPlane{b: b} }

func (p *boardPlane) Register(req RegisterRequest) RegisterResponse {
	if req.Config.Name == "" {
		return RegisterResponse{Err: Errf(VerbRegister, CodeBadRequest, "empty service name")}
	}
	if _, err := p.b.Jitsu.Service(req.Config.Name); err == nil {
		return RegisterResponse{Err: Errf(VerbRegister, CodeConflict, "%s already registered", req.Config.Name)}
	}
	svc := p.b.Jitsu.Register(req.Config)
	return RegisterResponse{Name: svc.Cfg.Name}
}

func (p *boardPlane) Activate(req ActivateRequest) ActivateResponse {
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return ActivateResponse{Err: Errf(VerbActivate, CodeNotFound, "%s", req.Name)}
	}
	if err := p.b.Jitsu.Activate(svc, !req.Speculative, req.OnReady); err != nil {
		return ActivateResponse{Err: activateError(err, req.Name)}
	}
	return ActivateResponse{IP: svc.Cfg.IP, State: svc.State}
}

func activateError(err error, name string) *Error {
	switch {
	case errors.Is(err, core.ErrNoMemory):
		return Errf(VerbActivate, CodeNoMemory, "%s: image does not fit", name)
	case errors.Is(err, core.ErrNoSuchService):
		return Errf(VerbActivate, CodeNotFound, "%s", name)
	default:
		return Errf(VerbActivate, CodeConflict, "%s: %v", name, err)
	}
}

func (p *boardPlane) Checkpoint(req CheckpointRequest) CheckpointResponse {
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return CheckpointResponse{Err: Errf(VerbCheckpoint, CodeNotFound, "%s", req.Name)}
	}
	cp, ok := p.b.Jitsu.Checkpoint(svc)
	if !ok {
		return CheckpointResponse{Err: Errf(VerbCheckpoint, CodeConflict, "%s has no state to capture (state %v)", req.Name, svc.State)}
	}
	return CheckpointResponse{Checkpoint: cp}
}

func (p *boardPlane) Restore(req RestoreRequest) RestoreResponse {
	if req.Checkpoint == nil {
		return RestoreResponse{Err: Errf(VerbRestore, CodeBadRequest, "nil checkpoint")}
	}
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return RestoreResponse{Err: Errf(VerbRestore, CodeNotFound, "%s", req.Name)}
	}
	if req.ToDisk {
		switch err := p.b.Jitsu.AdoptCheckpoint(svc, req.Checkpoint); {
		case err == nil:
			if req.OnReady != nil {
				req.OnReady(nil)
			}
			return RestoreResponse{}
		case errors.Is(err, core.ErrNoDisk):
			return RestoreResponse{Err: Errf(VerbRestore, CodeUnavailable, "%s: board has no disk", req.Name)}
		case errors.Is(err, core.ErrDiskFull):
			return RestoreResponse{Err: Errf(VerbRestore, CodeNoMemory, "%s: checkpoint store full", req.Name)}
		case errors.Is(err, core.ErrNoSuchService):
			return RestoreResponse{Err: Errf(VerbRestore, CodeNotFound, "%s retired", req.Name)}
		default:
			return RestoreResponse{Err: Errf(VerbRestore, CodeConflict, "%s: %v", req.Name, err)}
		}
	}
	switch err := p.b.Jitsu.Restore(svc, req.Checkpoint, req.OnReady); {
	case err == nil:
		return RestoreResponse{}
	case errors.Is(err, core.ErrNoMemory):
		return RestoreResponse{Err: Errf(VerbRestore, CodeNoMemory, "%s: checkpoint does not fit", req.Name)}
	case errors.Is(err, core.ErrNoSuchService):
		return RestoreResponse{Err: Errf(VerbRestore, CodeNotFound, "%s retired", req.Name)}
	default:
		return RestoreResponse{Err: Errf(VerbRestore, CodeConflict, "%s: %v", req.Name, err)}
	}
}

func (p *boardPlane) Migrate(req MigrateRequest) MigrateResponse {
	return MigrateResponse{Err: Errf(VerbMigrate, CodeUnavailable, "single board: nowhere to move %s", req.Name)}
}

// Transfer adopts a service arriving from elsewhere: register it here
// and, if warm state rides along, restore it on this board.
func (p *boardPlane) Transfer(req TransferRequest) TransferResponse {
	if req.Config.Name == "" {
		return TransferResponse{Board: -1, Err: Errf(VerbTransfer, CodeBadRequest, "empty service name")}
	}
	if _, err := p.b.Jitsu.Service(req.Config.Name); err == nil {
		return TransferResponse{Board: -1, Err: Errf(VerbTransfer, CodeConflict, "%s already registered", req.Config.Name)}
	}
	svc := p.b.Jitsu.Register(req.Config)
	if req.Checkpoint == nil {
		if req.OnReady != nil {
			req.OnReady(nil)
		}
		return TransferResponse{Board: -1}
	}
	if req.ToDisk {
		// Land the checkpoint on the disk tier without paging it in; a
		// diskless or full receiver falls through to the warm restore.
		if err := p.b.Jitsu.AdoptCheckpoint(svc, req.Checkpoint); err == nil {
			if req.OnReady != nil {
				req.OnReady(nil)
			}
			return TransferResponse{Board: 0}
		}
	}
	if err := p.b.Jitsu.Restore(svc, req.Checkpoint, req.OnReady); err != nil {
		p.b.Jitsu.Deregister(svc)
		if errors.Is(err, core.ErrNoMemory) {
			return TransferResponse{Board: -1, Err: Errf(VerbTransfer, CodeNoMemory, "%s: checkpoint does not fit", req.Config.Name)}
		}
		return TransferResponse{Board: -1, Err: Errf(VerbTransfer, CodeConflict, "%s: %v", req.Config.Name, err)}
	}
	return TransferResponse{Board: 0}
}

func (p *boardPlane) Demote(req DemoteRequest) DemoteResponse {
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return DemoteResponse{Err: Errf(VerbDemote, CodeNotFound, "%s", req.Name)}
	}
	switch err := p.b.Jitsu.Demote(svc); {
	case err == nil:
		return DemoteResponse{Demoted: 1}
	case errors.Is(err, core.ErrNoDisk):
		return DemoteResponse{Err: Errf(VerbDemote, CodeUnavailable, "%s: board has no disk", req.Name)}
	case errors.Is(err, core.ErrDiskFull):
		return DemoteResponse{Err: Errf(VerbDemote, CodeNoMemory, "%s: checkpoint store full", req.Name)}
	case errors.Is(err, core.ErrNoSuchService):
		return DemoteResponse{Err: Errf(VerbDemote, CodeNotFound, "%s retired", req.Name)}
	default:
		return DemoteResponse{Err: Errf(VerbDemote, CodeConflict, "%s: %v", req.Name, err)}
	}
}

func (p *boardPlane) Promote(req PromoteRequest) PromoteResponse {
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return PromoteResponse{Board: -1, Err: Errf(VerbPromote, CodeNotFound, "%s", req.Name)}
	}
	switch err := p.b.Jitsu.Promote(svc, req.OnReady); {
	case err == nil:
		return PromoteResponse{Board: 0}
	case errors.Is(err, core.ErrNoMemory):
		return PromoteResponse{Board: -1, Err: Errf(VerbPromote, CodeNoMemory, "%s: image does not fit", req.Name)}
	case errors.Is(err, core.ErrNoSuchService):
		return PromoteResponse{Board: -1, Err: Errf(VerbPromote, CodeNotFound, "%s retired", req.Name)}
	default:
		return PromoteResponse{Board: -1, Err: Errf(VerbPromote, CodeConflict, "%s: %v", req.Name, err)}
	}
}

func (p *boardPlane) Stop(req StopRequest) StopResponse {
	svc, err := p.b.Jitsu.Service(req.Name)
	if err != nil {
		return StopResponse{Err: Errf(VerbStop, CodeNotFound, "%s", req.Name)}
	}
	if p.b.Jitsu.Evict(svc) {
		return StopResponse{Stopped: 1}
	}
	return StopResponse{}
}

func (p *boardPlane) Stats(StatsRequest) StatsResponse {
	var resp StatsResponse
	svcs := p.b.Jitsu.Services()
	names := make([]string, 0, len(svcs))
	for name := range svcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		svc := svcs[name]
		resp.Services = append(resp.Services, ServiceStats{
			Name: name, State: svc.State,
			Launches: svc.Launches, ColdStarts: svc.ColdStarts,
			Handoffs: svc.Handoffs, ServFails: svc.ServFails,
			Reaps: svc.Reaps, Restores: svc.Restores,
			DiskRestores: svc.DiskRestores, Demotions: svc.Demotions,
		})
	}
	resp.Triggers = TriggerStatsFromFired(p.b.Jitsu.Activation().Fired())
	resp.Registries = []obs.Snapshot{p.b.Reg.Snapshot()}
	return resp
}

func (p *boardPlane) WatchStats(req WatchStatsRequest) WatchStatsResponse {
	return StreamStats(p.b.Eng, req, p.Stats)
}

// TriggerStatsFromFired renders an Activation.Fired map (or an
// aggregation of several) as a name-sorted slice.
func TriggerStatsFromFired(fired map[string]uint64) []TriggerStats {
	names := make([]string, 0, len(fired))
	for name := range fired {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TriggerStats, 0, len(names))
	for _, name := range names {
		out = append(out, TriggerStats{Name: name, Fired: fired[name]})
	}
	return out
}
