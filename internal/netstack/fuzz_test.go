package netstack

import (
	"testing"
	"testing/quick"
	"time"

	"jitsu/internal/netsim"
	"jitsu/internal/sim"
)

// The stack is the component that faces "an unrelenting stream of
// security exploits" in Table 2's world; our version must be total:
// arbitrary garbage on the wire may be dropped but never panics and
// never corrupts live connections.

func TestStackSurvivesRandomFrames(t *testing.T) {
	eng, a, b, _ := twoHosts(99)
	b.ListenTCP(80, func(c *TCPConn) { c.OnData(func(d []byte) { c.Send(d) }) })
	f := func(frame []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("stack panicked on %x: %v", frame, r)
			}
		}()
		if len(frame) > netsim.MaxFrame {
			frame = frame[:netsim.MaxFrame]
		}
		b.NIC.Deliver(frame)
		eng.Run()
		_ = a
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// mutateFrame builds a syntactically plausible but corrupted packet:
// valid Ethernet header, garbage protocol innards.
func TestStackSurvivesSemiValidFrames(t *testing.T) {
	eng, _, b, _ := twoHosts(98)
	b.ListenTCP(80, func(c *TCPConn) { c.OnData(func([]byte) {}) })
	f := func(etherType uint16, body []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		if len(body) > 1400 {
			body = body[:1400]
		}
		eth := Ethernet{Dst: b.NIC.Addr, Src: netsim.MACFor(77), EtherType: etherType}
		b.NIC.Deliver(eth.Encode(body))
		eng.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Force the interesting EtherTypes explicitly too.
	for _, et := range []uint16{EtherTypeARP, EtherTypeIPv4} {
		for n := 0; n < 200; n++ {
			body := make([]byte, n%64)
			for i := range body {
				body[i] = byte(n * 31 / (i + 1))
			}
			eth := Ethernet{Dst: b.NIC.Addr, Src: netsim.MACFor(77), EtherType: et}
			b.NIC.Deliver(eth.Encode(body))
		}
	}
	eng.Run()
}

func TestGarbageDoesNotDisturbLiveConnection(t *testing.T) {
	eng, a, b, _ := twoHosts(97)
	b.ListenTCP(80, func(c *TCPConn) { c.OnData(func(d []byte) { c.Send(d) }) })
	var echoed []byte
	var conn *TCPConn
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn = c
		c.OnData(func(d []byte) { echoed = append(echoed, d...) })
	})
	eng.Run()
	// Blast garbage at the server between two halves of an echo.
	conn.Send([]byte("first-"))
	eng.Run()
	rng := sim.New(5).Rand()
	for i := 0; i < 300; i++ {
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		b.NIC.Deliver(junk)
	}
	eng.Run()
	conn.Send([]byte("second"))
	eng.Run()
	if string(echoed) != "first-second" {
		t.Fatalf("echo = %q; garbage disturbed the stream", echoed)
	}
}

func TestForgedRSTRequiresValidTuple(t *testing.T) {
	// A RST for a different four-tuple must not kill a live connection.
	eng, a, b, _ := twoHosts(96)
	b.ListenTCP(80, func(c *TCPConn) { c.OnData(func([]byte) {}) })
	var conn *TCPConn
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) { conn = c })
	eng.Run()
	if conn.State() != StateEstablished {
		t.Fatal("setup")
	}
	// Forge a RST from a wrong source port.
	forged := TCPSegment{SrcPort: 9999, DstPort: 80, Seq: 1, Flags: FlagRST}
	pkt := IPv4Header{Protocol: ProtoTCP, Src: a.IP, Dst: b.IP}
	eth := Ethernet{Dst: b.NIC.Addr, Src: a.NIC.Addr, EtherType: EtherTypeIPv4}
	b.NIC.Deliver(eth.Encode(pkt.Encode(forged.Encode(a.IP, b.IP, nil))))
	eng.Run()
	// The server-side connection for the real tuple survives.
	_, lp := conn.LocalAddr()
	key := fourTuple{localIP: b.IP, remoteIP: a.IP, localPort: 80, remotePort: lp}
	if sc, ok := b.conns[key]; !ok || sc.State() != StateEstablished {
		t.Fatal("forged RST killed an unrelated connection")
	}
}

func TestTimeWaitReclaimed(t *testing.T) {
	// Connections must leave the demux table after TIME_WAIT so a busy
	// client cannot leak state forever.
	eng, a, b, _ := twoHosts(95)
	b.ListenTCP(80, func(c *TCPConn) {
		c.OnData(func([]byte) {})
		c.Close() // server closes immediately
	})
	for i := 0; i < 20; i++ {
		a.DialTCP(b.IP, 80, func(c *TCPConn, err error) {
			if err != nil {
				return
			}
			c.OnClose(func(error) { c.Close() })
		})
		eng.RunFor(time.Second)
	}
	eng.Run() // drain all TIME_WAITs
	if n := len(a.conns); n != 0 {
		t.Fatalf("%d client connections leaked", n)
	}
	if n := len(b.conns); n != 0 {
		t.Fatalf("%d server connections leaked", n)
	}
}
