package netstack

import (
	"errors"
	"fmt"
	"time"

	"jitsu/internal/netsim"
	"jitsu/internal/sim"
)

// Stack-level errors.
var (
	ErrPortInUse    = errors.New("netstack: port already bound")
	ErrNoRoute      = errors.New("netstack: no route to host")
	ErrConnClosed   = errors.New("netstack: connection closed")
	ErrConnReset    = errors.New("netstack: connection reset by peer")
	ErrTimeout      = errors.New("netstack: timed out")
	ErrNotListening = errors.New("netstack: not listening")
)

// StackProfile sets the per-packet processing costs that differentiate
// the Figure 8 targets: a native Linux stack, the dom0 stack, a Linux
// guest behind a vif, and a MirageOS unikernel (whose OCaml stack has a
// slightly higher mean and variance — "never more than 0.4ms" apart).
type StackProfile struct {
	Name string
	// ProcDelay is charged per received packet before protocol handling.
	ProcDelay sim.Duration
	// ProcJitter is the stddev of the processing delay.
	ProcJitter sim.Duration
	// PerByte is the copy+checksum cost per payload byte.
	PerByte sim.Duration
}

// Profiles used across the evaluation.
func LinuxNativeProfile() StackProfile {
	return StackProfile{Name: "linux-native", ProcDelay: 28 * time.Microsecond, ProcJitter: 3 * time.Microsecond, PerByte: 55 * time.Nanosecond}
}
func Dom0Profile() StackProfile {
	return StackProfile{Name: "dom0", ProcDelay: 40 * time.Microsecond, ProcJitter: 5 * time.Microsecond, PerByte: 60 * time.Nanosecond}
}
func LinuxGuestProfile() StackProfile {
	return StackProfile{Name: "linux-vm", ProcDelay: 70 * time.Microsecond, ProcJitter: 8 * time.Microsecond, PerByte: 75 * time.Nanosecond}
}
func MirageProfile() StackProfile {
	return StackProfile{Name: "mirage-vm", ProcDelay: 85 * time.Microsecond, ProcJitter: 22 * time.Microsecond, PerByte: 80 * time.Nanosecond}
}

// fourTuple keys established TCP connections.
type fourTuple struct {
	localIP, remoteIP     IP
	localPort, remotePort uint16
}

// UDPHandler receives datagrams on a bound UDP port.
type UDPHandler func(src IP, srcPort uint16, payload []byte)

// Host is one IP endpoint: a NIC, an address, ARP, and the transport
// demultiplexers. All methods must be called from simulation events.
type Host struct {
	Eng     *sim.Engine
	Name    string
	NIC     *netsim.NIC
	IP      IP
	Profile StackProfile

	// aliases are extra local addresses (traffic accepted, ARP
	// answered): Synjitsu claims every idle service IP this way.
	aliases map[IP]bool
	// proxyARP addresses are answered at the ARP layer only — IP
	// traffic to them is dropped. This models dom0 answering ARP for
	// service IPs it does not itself serve.
	proxyARP map[IP]bool

	arpCache   map[IP]netsim.MAC
	arpPending map[IP][]pendingPacket
	udpPorts   map[uint16]UDPHandler
	listeners  map[uint16]*TCPListener
	conns      map[fourTuple]*TCPConn
	nextPort   uint16
	icmpSeq    uint16
	pings      map[uint16]*pendingPing
	rxBusy     sim.Duration // receive-path serialisation point

	// Diagnostics.
	RxPackets, TxPackets uint64
	RxDropped            uint64
	// ARPRetries counts retransmitted ARP requests (lost broadcasts on
	// hostile links).
	ARPRetries uint64
	// TraceTCP, when set, observes every TCP segment the stack sends or
	// receives ("tx"/"rx") — a tcpdump for the simulation.
	TraceTCP func(dir string, seg *TCPSegment)

	eth  Ethernet
	arp  ARPPacket
	ip4  IPv4Header
	icmp ICMPEcho
	udp  UDPHeader
	tcp  TCPSegment
}

type pendingPacket struct {
	proto   byte
	payload []byte
	// wireBytes is the on-wire size the frame is charged for once ARP
	// resolves (0 = the frame's own length; larger for bulk stand-ins).
	wireBytes int
}

type pendingPing struct {
	sentAt sim.Duration
	size   int
	cb     func(rtt sim.Duration, err error)
	timer  sim.Event
}

// NewHost binds a stack to a NIC. The NIC's receive handler is taken
// over by the stack.
func NewHost(eng *sim.Engine, name string, nic *netsim.NIC, ip IP, profile StackProfile) *Host {
	h := &Host{
		Eng: eng, Name: name, NIC: nic, IP: ip, Profile: profile,
		aliases:    make(map[IP]bool),
		proxyARP:   make(map[IP]bool),
		arpCache:   make(map[IP]netsim.MAC),
		arpPending: make(map[IP][]pendingPacket),
		udpPorts:   make(map[uint16]UDPHandler),
		listeners:  make(map[uint16]*TCPListener),
		conns:      make(map[fourTuple]*TCPConn),
		pings:      make(map[uint16]*pendingPing),
		nextPort:   49152,
	}
	nic.SetHandler(h.rxFrame)
	return h
}

// procCost samples the stack's processing cost for a packet of n bytes.
func (h *Host) procCost(n int) sim.Duration {
	d := sim.Normal{Mean: h.Profile.ProcDelay, Stddev: h.Profile.ProcJitter}.Sample(h.Eng.Rand())
	return d + sim.Duration(n)*h.Profile.PerByte
}

// rxFrame is the NIC receive path: charge the stack cost, then demux.
// Processing is serialised (rxBusy) so jittered per-packet costs can
// never reorder a flow — the stack is a single vCPU, not a packet pool.
func (h *Host) rxFrame(frame []byte) {
	h.RxPackets++
	buf := append([]byte(nil), frame...) // own the frame beyond this event
	now := h.Eng.Now()
	if h.rxBusy < now {
		h.rxBusy = now
	}
	h.rxBusy += h.procCost(len(frame))
	h.Eng.At(h.rxBusy, func() { h.handleFrame(buf) })
}

func (h *Host) handleFrame(frame []byte) {
	if err := h.eth.DecodeFromBytes(frame); err != nil {
		h.RxDropped++
		return
	}
	if h.eth.Dst != h.NIC.Addr && !h.eth.Dst.IsBroadcast() {
		return // not for us (promiscuous snooping uses bridge mirrors)
	}
	switch h.eth.EtherType {
	case EtherTypeARP:
		h.handleARP(h.eth.Payload())
	case EtherTypeIPv4:
		h.handleIPv4(h.eth.Payload())
	default:
		h.RxDropped++
	}
}

// ---- ARP ----

func (h *Host) handleARP(payload []byte) {
	if err := h.arp.DecodeFromBytes(payload); err != nil {
		h.RxDropped++
		return
	}
	a := &h.arp
	// Learn the sender either way.
	h.arpCache[a.SenderIP] = a.SenderMAC
	h.flushPending(a.SenderIP)
	if a.Op == ARPRequest && (h.HasIP(a.TargetIP) || h.proxyARP[a.TargetIP]) {
		reply := ARPPacket{
			Op: ARPReply, SenderMAC: h.NIC.Addr, SenderIP: a.TargetIP,
			TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
		}
		h.sendEthernet(a.SenderMAC, EtherTypeARP, reply.Encode())
	}
}

func (h *Host) flushPending(ip IP) {
	pend := h.arpPending[ip]
	if pend == nil {
		return
	}
	delete(h.arpPending, ip)
	mac := h.arpCache[ip]
	for _, p := range pend {
		if p.wireBytes > 0 {
			h.sendEthernetBulk(mac, EtherTypeIPv4, p.payload, p.wireBytes)
		} else {
			h.sendEthernet(mac, EtherTypeIPv4, p.payload)
		}
	}
}

// SeedARP preloads an ARP cache entry, modelling a client that resolved
// the address earlier (e.g. from a previous connection or because dom0
// proxy-answers ARP for service IPs).
func (h *Host) SeedARP(ip IP, mac netsim.MAC) { h.arpCache[ip] = mac }

// AddIPAlias makes the stack fully own an extra address: it answers ARP
// for it and accepts IP traffic to it. Synjitsu aliases every idle
// service IP so it can complete handshakes on their behalf.
func (h *Host) AddIPAlias(ip IP) { h.aliases[ip] = true }

// RemoveIPAlias releases an alias (e.g. when the real unikernel takes
// the address over).
func (h *Host) RemoveIPAlias(ip IP) { delete(h.aliases, ip) }

// HasIP reports whether ip is the primary address or an alias.
func (h *Host) HasIP(ip IP) bool { return ip == h.IP || h.aliases[ip] }

// AnnounceIP broadcasts a gratuitous ARP claiming ip at this stack's
// MAC. Used when an address moves: a booted unikernel taking over from
// Synjitsu, or the proxy re-claiming the IP of a reaped service so
// clients' caches stop pointing at the dead guest.
func (h *Host) AnnounceIP(ip IP) {
	pkt := ARPPacket{
		Op: ARPReply, SenderMAC: h.NIC.Addr, SenderIP: ip,
		TargetMAC: netsim.Broadcast, TargetIP: ip,
	}
	h.sendEthernet(netsim.Broadcast, EtherTypeARP, pkt.Encode())
}

// ProxyARPFor answers ARP for ip without accepting its IP traffic —
// packets sent to it reach our MAC and die, which is exactly the
// baseline (no-Synjitsu) behaviour whose SYN loss Figure 9a measures.
func (h *Host) ProxyARPFor(ip IP) { h.proxyARP[ip] = true }

// RemoveProxyARP stops answering for ip.
func (h *Host) RemoveProxyARP(ip IP) { delete(h.proxyARP, ip) }

// arpRequestRTO spaces ARP request retransmissions; arpRequestTries
// bounds them (Linux-like: ~1s apart, three requests total). Only after
// the last unanswered request are the queued packets dropped — without
// the retries a single lost ARP broadcast on a lossy link blackholes
// every packet to that address for the full resolve window, which no
// amount of transport-level retry can recover from.
const (
	arpRequestRTO   = 1 * time.Second
	arpRequestTries = 3
)

// sendIPv4 routes a transport payload to dst, resolving via ARP.
func (h *Host) sendIPv4(dst IP, proto byte, payload []byte) {
	h.sendIPv4From(h.IP, dst, proto, payload)
}

// sendIPv4From sends with an explicit source address: proxied TCP
// connections answer from the service IP (an alias), not the stack's
// primary address.
func (h *Host) sendIPv4From(src, dst IP, proto byte, payload []byte) {
	if h.HasIP(dst) {
		// Loopback: re-enter the stack after the processing cost, no wire.
		hdr := IPv4Header{Protocol: proto, Src: src, Dst: dst}
		pkt := hdr.Encode(payload)
		h.Eng.After(h.procCost(len(pkt)), func() { h.handleIPv4(pkt) })
		return
	}
	hdr := IPv4Header{Protocol: proto, Src: src, Dst: dst}
	pkt := hdr.Encode(payload)
	h.TxPackets++
	if mac, ok := h.arpCache[dst]; ok {
		h.sendEthernet(mac, EtherTypeIPv4, pkt)
		return
	}
	// Queue behind an ARP resolution.
	first := len(h.arpPending[dst]) == 0
	h.arpPending[dst] = append(h.arpPending[dst], pendingPacket{proto: proto, payload: pkt})
	if first {
		h.sendARPRequest(dst, 1)
	}
}

// SendUDPBulk sends a UDP datagram that stands in for wireBytes bytes
// on the wire: the payload (a chunk header, typically) is what the
// receiver sees, but the first-hop link charges serialisation — and any
// throttle — for the full wireBytes (netsim.NIC.SendBulk). The bulk
// movers use it so checkpoint chunks occupy the shared management link
// for as long as their bytes would without one event per MTU frame.
func (h *Host) SendUDPBulk(dst IP, srcPort, dstPort uint16, payload []byte, wireBytes int) {
	u := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	udp := u.Encode(h.IP, dst, payload)
	if h.HasIP(dst) {
		h.sendIPv4(dst, ProtoUDP, udp)
		return
	}
	hdr := IPv4Header{Protocol: ProtoUDP, Src: h.IP, Dst: dst}
	pkt := hdr.Encode(udp)
	h.TxPackets++
	if mac, ok := h.arpCache[dst]; ok {
		h.sendEthernetBulk(mac, EtherTypeIPv4, pkt, wireBytes)
		return
	}
	first := len(h.arpPending[dst]) == 0
	h.arpPending[dst] = append(h.arpPending[dst],
		pendingPacket{proto: ProtoUDP, payload: pkt, wireBytes: wireBytes})
	if first {
		h.sendARPRequest(dst, 1)
	}
}

// sendARPRequest broadcasts a who-has for dst and arms the retransmit:
// if no reply lands within arpRequestRTO and packets are still queued,
// the request goes out again, up to arpRequestTries total. Exhausting
// the tries drops the queue (transport retransmission recovers).
func (h *Host) sendARPRequest(dst IP, attempt int) {
	req := ARPPacket{Op: ARPRequest, SenderMAC: h.NIC.Addr, SenderIP: h.IP, TargetIP: dst}
	h.sendEthernet(netsim.Broadcast, EtherTypeARP, req.Encode())
	h.Eng.After(arpRequestRTO, func() {
		if _, ok := h.arpCache[dst]; ok {
			return
		}
		if len(h.arpPending[dst]) == 0 {
			return
		}
		if attempt >= arpRequestTries {
			delete(h.arpPending, dst)
			return
		}
		h.ARPRetries++
		h.sendARPRequest(dst, attempt+1)
	})
}

func (h *Host) sendEthernet(dst netsim.MAC, etherType uint16, payload []byte) {
	eth := Ethernet{Dst: dst, Src: h.NIC.Addr, EtherType: etherType}
	_ = h.NIC.Send(eth.Encode(payload))
}

// sendEthernetBulk frames payload like sendEthernet but charges the
// first hop for wireBytes on the wire (bulk stand-in frames).
func (h *Host) sendEthernetBulk(dst netsim.MAC, etherType uint16, payload []byte, wireBytes int) {
	eth := Ethernet{Dst: dst, Src: h.NIC.Addr, EtherType: etherType}
	_ = h.NIC.SendBulk(eth.Encode(payload), wireBytes)
}

// ---- IPv4 demux ----

func (h *Host) handleIPv4(packet []byte) {
	if err := h.ip4.DecodeFromBytes(packet); err != nil {
		h.RxDropped++
		return
	}
	if !h.HasIP(h.ip4.Dst) {
		h.RxDropped++
		return
	}
	src, dst, payload := h.ip4.Src, h.ip4.Dst, h.ip4.Payload()
	switch h.ip4.Protocol {
	case ProtoICMP:
		h.handleICMP(src, payload)
	case ProtoUDP:
		h.handleUDP(src, payload)
	case ProtoTCP:
		h.handleTCP(src, dst, payload)
	default:
		h.RxDropped++
	}
}

// ---- ICMP ----

func (h *Host) handleICMP(src IP, payload []byte) {
	if err := h.icmp.DecodeFromBytes(payload); err != nil {
		h.RxDropped++
		return
	}
	switch h.icmp.Type {
	case ICMPEchoRequest:
		reply := ICMPEcho{Type: ICMPEchoReply, ID: h.icmp.ID, Seq: h.icmp.Seq,
			Data: append([]byte(nil), h.icmp.Data...)}
		h.sendIPv4(src, ProtoICMP, reply.Encode())
	case ICMPEchoReply:
		if p, ok := h.pings[h.icmp.Seq]; ok {
			delete(h.pings, h.icmp.Seq)
			h.Eng.Cancel(p.timer)
			p.cb(h.Eng.Now()-p.sentAt, nil)
		}
	}
}

// Ping sends an ICMP echo with payloadLen bytes of data and reports the
// RTT (Figure 8's workload).
func (h *Host) Ping(dst IP, payloadLen int, timeout sim.Duration, cb func(rtt sim.Duration, err error)) {
	h.icmpSeq++
	seq := h.icmpSeq
	data := make([]byte, payloadLen)
	for i := range data {
		data[i] = byte(i)
	}
	req := ICMPEcho{Type: ICMPEchoRequest, ID: 0x4a49, Seq: seq, Data: data}
	p := &pendingPing{sentAt: h.Eng.Now(), size: payloadLen, cb: cb}
	p.timer = h.Eng.After(timeout, func() {
		if _, ok := h.pings[seq]; ok {
			delete(h.pings, seq)
			cb(0, ErrTimeout)
		}
	})
	h.pings[seq] = p
	h.sendIPv4(dst, ProtoICMP, req.Encode())
}

// ---- UDP ----

// BindUDP registers a datagram handler on a port.
func (h *Host) BindUDP(port uint16, fn UDPHandler) error {
	if _, ok := h.udpPorts[port]; ok {
		return ErrPortInUse
	}
	h.udpPorts[port] = fn
	return nil
}

// UnbindUDP releases a port.
func (h *Host) UnbindUDP(port uint16) { delete(h.udpPorts, port) }

// SendUDP transmits one datagram.
func (h *Host) SendUDP(dst IP, srcPort, dstPort uint16, payload []byte) {
	u := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	h.sendIPv4(dst, ProtoUDP, u.Encode(h.IP, dst, payload))
}

func (h *Host) handleUDP(src IP, payload []byte) {
	if err := h.udp.DecodeFromBytes(payload, src, h.IP); err != nil {
		h.RxDropped++
		return
	}
	fn, ok := h.udpPorts[h.udp.DstPort]
	if !ok {
		h.RxDropped++
		return
	}
	fn(src, h.udp.SrcPort, h.udp.Payload())
}

// ephemeralPort allocates a client port.
func (h *Host) ephemeralPort() uint16 {
	for {
		h.nextPort++
		if h.nextPort < 49152 {
			h.nextPort = 49152
		}
		p := h.nextPort
		if _, ok := h.listeners[p]; ok {
			continue
		}
		inUse := false
		for k := range h.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

func (h *Host) String() string {
	return fmt.Sprintf("%s(%s)", h.Name, h.IP)
}
