package netstack

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"jitsu/internal/netsim"
	"jitsu/internal/sim"
)

// twoHosts wires two stacks through a bridge, like a client and a guest
// on the same edge network.
func twoHosts(seed int64) (*sim.Engine, *Host, *Host, *netsim.Bridge) {
	eng := sim.New(seed)
	br := netsim.NewBridge(eng, "xenbr0", 10*time.Microsecond)
	nicA := netsim.NewNIC(eng, "client", netsim.MACFor(1))
	nicB := netsim.NewNIC(eng, "server", netsim.MACFor(2))
	br.ConnectNIC(nicA, 150*time.Microsecond, 100e6)
	br.ConnectNIC(nicB, 20*time.Microsecond, 0)
	a := NewHost(eng, "client", nicA, IPv4(10, 0, 0, 9), LinuxNativeProfile())
	b := NewHost(eng, "server", nicB, IPv4(10, 0, 0, 20), MirageProfile())
	return eng, a, b, br
}

func TestARPResolution(t *testing.T) {
	eng, a, b, _ := twoHosts(1)
	var rtt sim.Duration
	var perr error
	a.Ping(b.IP, 56, 5*time.Second, func(d sim.Duration, err error) { rtt, perr = d, err })
	eng.Run()
	if perr != nil {
		t.Fatal(perr)
	}
	if rtt <= 0 || rtt > 5*time.Millisecond {
		t.Fatalf("ping rtt = %v", rtt)
	}
	// The caches are warm both ways now.
	if _, ok := a.arpCache[b.IP]; !ok {
		t.Fatal("client did not learn server MAC")
	}
	if _, ok := b.arpCache[a.IP]; !ok {
		t.Fatal("server did not learn client MAC (from request)")
	}
}

func TestPingRTTGrowsWithPayload(t *testing.T) {
	eng, a, b, _ := twoHosts(2)
	// Warm ARP so the first measurement doesn't pay the resolution RTT.
	a.Ping(b.IP, 8, time.Second, func(sim.Duration, error) {})
	eng.Run()
	var rtts []sim.Duration
	for _, size := range []int{56, 512, 1400} {
		size := size
		a.Ping(b.IP, size, 5*time.Second, func(d sim.Duration, err error) {
			if err != nil {
				t.Errorf("ping %d: %v", size, err)
			}
			rtts = append(rtts, d)
		})
		eng.Run()
	}
	if len(rtts) != 3 || rtts[0] >= rtts[1] || rtts[1] >= rtts[2] {
		t.Fatalf("rtts not increasing with payload: %v", rtts)
	}
}

func TestPingTimeout(t *testing.T) {
	eng, a, _, _ := twoHosts(3)
	var gotErr error
	a.Ping(IPv4(10, 0, 0, 99), 56, 2*time.Second, func(d sim.Duration, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", gotErr)
	}
}

func TestPingSelf(t *testing.T) {
	eng, a, _, _ := twoHosts(4)
	var rtt sim.Duration
	a.Ping(a.IP, 56, time.Second, func(d sim.Duration, err error) {
		if err != nil {
			t.Error(err)
		}
		rtt = d
	})
	eng.Run()
	if rtt <= 0 || rtt > time.Millisecond {
		t.Fatalf("loopback rtt = %v", rtt)
	}
}

func TestUDPExchange(t *testing.T) {
	eng, a, b, _ := twoHosts(5)
	var got string
	var from IP
	if err := b.BindUDP(53, func(src IP, sport uint16, payload []byte) {
		got, from = string(payload), src
		b.SendUDP(src, 53, sport, []byte("pong"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindUDP(53, func(IP, uint16, []byte) {}); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("double bind = %v", err)
	}
	var reply string
	a.BindUDP(5353, func(src IP, sport uint16, payload []byte) { reply = string(payload) })
	a.SendUDP(b.IP, 5353, 53, []byte("ping"))
	eng.Run()
	if got != "ping" || from != a.IP || reply != "pong" {
		t.Fatalf("udp exchange: got=%q from=%v reply=%q", got, from, reply)
	}
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	eng, a, b, _ := twoHosts(6)
	if _, err := b.ListenTCP(7, func(c *TCPConn) {
		c.OnData(func(data []byte) { c.Send(data) })
	}); err != nil {
		t.Fatal(err)
	}
	var echoed []byte
	a.DialTCP(b.IP, 7, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if c.State() != StateEstablished {
			t.Fatalf("dial state = %v", c.State())
		}
		c.OnData(func(data []byte) { echoed = append(echoed, data...) })
		c.Send([]byte("hello unikernel"))
	})
	eng.Run()
	if string(echoed) != "hello unikernel" {
		t.Fatalf("echoed %q", echoed)
	}
}

func TestTCPLargeTransferSegmentation(t *testing.T) {
	// 100 KiB crosses MSS segmentation and window-advance paths.
	eng, a, b, _ := twoHosts(7)
	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var received []byte
	done := false
	b.ListenTCP(9000, func(c *TCPConn) {
		c.OnData(func(data []byte) {
			received = append(received, data...)
		})
		c.OnClose(func(error) { done = true; c.Close() })
	})
	a.DialTCP(b.IP, 9000, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Send(payload)
		c.Close()
	})
	eng.Run()
	if !done {
		t.Fatal("server never saw close")
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("transfer corrupted: got %d bytes want %d", len(received), len(payload))
	}
}

func TestTCPOrderlyClose(t *testing.T) {
	eng, a, b, _ := twoHosts(8)
	var serverConn *TCPConn
	b.ListenTCP(80, func(c *TCPConn) {
		serverConn = c
		c.OnData(func([]byte) {})
	})
	var clientConn *TCPConn
	var clientClosed error = errors.New("unset")
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		clientConn = c
		c.OnClose(func(e error) { clientClosed = e })
	})
	eng.RunFor(time.Second)
	// Server closes; client should see orderly close (nil), then close too.
	serverConn.Close()
	eng.RunFor(time.Second)
	if clientClosed != nil {
		t.Fatalf("client close err = %v, want nil", clientClosed)
	}
	if clientConn.State() != StateCloseWait {
		t.Fatalf("client state = %v, want CLOSE_WAIT", clientConn.State())
	}
	clientConn.Close()
	eng.Run()
	if clientConn.State() != StateClosed {
		t.Fatalf("client final state = %v", clientConn.State())
	}
	if serverConn.State() != StateClosed {
		t.Fatalf("server final state = %v", serverConn.State())
	}
}

func TestTCPDialToClosedPortRST(t *testing.T) {
	eng, a, b, _ := twoHosts(9)
	_ = b
	var dialErr error
	a.DialTCP(b.IP, 81, func(c *TCPConn, err error) { dialErr = err })
	eng.Run()
	if !errors.Is(dialErr, ErrConnReset) {
		t.Fatalf("dial closed port = %v, want reset", dialErr)
	}
}

func TestTCPSynRetransmitWhenServerDown(t *testing.T) {
	// The Figure 9a failure mode: server NIC down at SYN time; the SYN
	// is lost and the client retransmits after 1s.
	eng, a, b, _ := twoHosts(10)
	b.ListenTCP(80, func(c *TCPConn) { c.OnData(func([]byte) {}) })
	// Pre-warm ARP so only the SYN is lost, not the ARP.
	a.Ping(b.IP, 8, time.Second, func(sim.Duration, error) {})
	eng.Run()
	b.NIC.Down = true
	start := eng.Now()
	var established sim.Duration
	var conn *TCPConn
	conn = a.DialTCP(b.IP, 80, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		established = eng.Now() - start
	})
	// Server comes back 300ms later (a booting unikernel).
	eng.At(start+300*time.Millisecond, func() { b.NIC.Down = false })
	eng.Run()
	if established < time.Second {
		t.Fatalf("established after %v; SYN should have waited for the 1s retransmit", established)
	}
	if established > 1100*time.Millisecond {
		t.Fatalf("established after %v; first retransmit should have landed", established)
	}
	if conn.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestTCPRetransmitTimeoutAborts(t *testing.T) {
	eng, a, b, _ := twoHosts(11)
	a.Ping(b.IP, 8, time.Second, func(sim.Duration, error) {})
	eng.Run()
	b.NIC.Down = true // and never comes back
	var dialErr error
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) { dialErr = err })
	eng.Run()
	if !errors.Is(dialErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout after max retries", dialErr)
	}
}

func TestTCPAbortSendsRST(t *testing.T) {
	eng, a, b, _ := twoHosts(12)
	var serverConn *TCPConn
	b.ListenTCP(80, func(c *TCPConn) { serverConn = c; c.OnData(func([]byte) {}) })
	var clientConn *TCPConn
	var serverErr error = errors.New("unset")
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) { clientConn = c })
	eng.RunFor(time.Second)
	serverConn.OnClose(func(e error) { serverErr = e })
	clientConn.Abort()
	eng.Run()
	if !errors.Is(serverErr, ErrConnReset) {
		t.Fatalf("server close err = %v, want reset", serverErr)
	}
}

func TestTCPDataBeforeOnDataIsBuffered(t *testing.T) {
	eng, a, b, _ := twoHosts(13)
	var conn *TCPConn
	b.ListenTCP(80, func(c *TCPConn) { conn = c }) // no OnData yet
	a.DialTCP(b.IP, 80, func(c *TCPConn, err error) {
		c.Send([]byte("early data"))
	})
	eng.Run()
	var got []byte
	conn.OnData(func(b []byte) { got = append(got, b...) })
	if string(got) != "early data" {
		t.Fatalf("buffered delivery got %q", got)
	}
}

func TestTCBHandoffBetweenStacks(t *testing.T) {
	// The Synjitsu core move: a proxy stack completes the handshake and
	// buffers client data; the connection is serialised, imported into a
	// second stack with the same IP, and the client's next bytes flow to
	// the new stack seamlessly.
	eng := sim.New(20)
	br := netsim.NewBridge(eng, "xenbr0", 10*time.Microsecond)
	serviceIP := IPv4(10, 0, 0, 20)

	nicClient := netsim.NewNIC(eng, "client", netsim.MACFor(1))
	br.ConnectNIC(nicClient, 150*time.Microsecond, 0)
	client := NewHost(eng, "client", nicClient, IPv4(10, 0, 0, 9), LinuxNativeProfile())

	nicProxy := netsim.NewNIC(eng, "synjitsu", netsim.MACFor(2))
	br.ConnectNIC(nicProxy, 20*time.Microsecond, 0)
	proxy := NewHost(eng, "synjitsu", nicProxy, serviceIP, MirageProfile())

	// Proxy listens and does NOT consume data (no OnData): bytes buffer.
	var proxyConn *TCPConn
	proxy.ListenTCP(80, func(c *TCPConn) { proxyConn = c })

	var clientConn *TCPConn
	var response []byte
	client.DialTCP(serviceIP, 80, func(c *TCPConn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		clientConn = c
		c.OnData(func(b []byte) { response = append(response, b...) })
		c.Send([]byte("GET / HTTP/1.0\r\n\r\n"))
	})
	eng.RunFor(500 * time.Millisecond)
	if proxyConn == nil || proxyConn.State() != StateEstablished {
		t.Fatal("proxy never established")
	}

	// Serialise through the XenStore-style string form.
	tcb, err := proxyConn.ExportTCB()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTCB(tcb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(parsed.Buffered) != "GET / HTTP/1.0\r\n\r\n" {
		t.Fatalf("buffered data = %q", parsed.Buffered)
	}

	// The unikernel boots: same service IP, new stack. Two-phase commit:
	// import first, then the proxy forgets, then the NIC goes live.
	nicUni := netsim.NewNIC(eng, "unikernel", netsim.MACFor(3))
	br.ConnectNIC(nicUni, 20*time.Microsecond, 0)
	uni := NewHost(eng, "unikernel", nicUni, serviceIP, MirageProfile())
	// Take the proxy's stack off that IP before the unikernel answers.
	proxyConn.Forget()
	proxy.IP = IPv4(10, 0, 0, 250) // proxy vacates the service address

	imported, err := uni.ImportTCB(parsed)
	if err != nil {
		t.Fatal(err)
	}
	// The app reads the replayed request and responds.
	var replayed []byte
	imported.OnData(func(b []byte) {
		replayed = append(replayed, b...)
		imported.Send([]byte("HTTP/1.0 200 OK\r\n\r\n"))
		imported.Close()
	})
	// Client must also reach the unikernel's MAC for the service IP now:
	// gratuitous ARP announces the move.
	announce := ARPPacket{Op: ARPReply, SenderMAC: nicUni.Addr, SenderIP: serviceIP,
		TargetMAC: netsim.Broadcast, TargetIP: serviceIP}
	uniEth := Ethernet{Dst: netsim.Broadcast, Src: nicUni.Addr, EtherType: EtherTypeARP}
	nicUni.Send(uniEth.Encode(announce.Encode()))

	eng.Run()
	if string(replayed) != "GET / HTTP/1.0\r\n\r\n" {
		t.Fatalf("replayed request = %q", replayed)
	}
	if string(response) != "HTTP/1.0 200 OK\r\n\r\n" {
		t.Fatalf("client response = %q", response)
	}
	if clientConn.State() == StateEstablished {
		t.Fatal("client connection should be closing after server FIN")
	}
}

func TestImportTCBValidation(t *testing.T) {
	eng := sim.New(21)
	nic := netsim.NewNIC(eng, "h", netsim.MACFor(1))
	h := NewHost(eng, "h", nic, IPv4(10, 0, 0, 5), MirageProfile())
	// Wrong local IP.
	if _, err := h.ImportTCB(&TCB{State: TCBStateEstablished, LocalIP: IPv4(1, 2, 3, 4)}); err == nil {
		t.Fatal("import with wrong IP should fail")
	}
	// Bad state.
	if _, err := h.ImportTCB(&TCB{State: "JUNK", LocalIP: h.IP}); err == nil {
		t.Fatal("import with bad state should fail")
	}
	// Duplicate import.
	tcb := &TCB{State: TCBStateEstablished, LocalIP: h.IP, LocalPort: 80,
		RemoteIP: IPv4(10, 0, 0, 9), RemotePort: 5555, SndNxt: 2, RcvNxt: 2}
	if _, err := h.ImportTCB(tcb); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ImportTCB(tcb); err == nil {
		t.Fatal("duplicate import should fail")
	}
}

func TestExportTCBRequiresHandshakeProgress(t *testing.T) {
	eng, a, b, _ := twoHosts(22)
	b.ListenTCP(80, func(*TCPConn) {})
	c := a.DialTCP(b.IP, 80, func(*TCPConn, error) {})
	// Still SYN_SENT (no events processed): not exportable.
	if _, err := c.ExportTCB(); err == nil {
		t.Fatal("export in SYN_SENT should fail")
	}
	eng.Run()
}

func TestHTTPEndToEnd(t *testing.T) {
	eng, a, b, _ := twoHosts(23)
	body := []byte("<html>alice's photos</html>")
	srv, err := b.ServeHTTP(80, func(req *HTTPRequest) *HTTPResponse {
		if req.Path != "/photos" {
			return &HTTPResponse{Status: 404}
		}
		return &HTTPResponse{Status: 200, Body: body}
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp *HTTPResponse
	var rt sim.Duration
	a.HTTPGet(b.IP, 80, "/photos", 10*time.Second, func(r *HTTPResponse, d sim.Duration, err error) {
		if err != nil {
			t.Fatal(err)
		}
		resp, rt = r, d
	})
	eng.Run()
	if resp == nil || resp.Status != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("resp = %+v", resp)
	}
	// Warm-path request on a local network: low single-digit ms
	// ("an already-booted service can respond to local traffic in
	// around 5ms").
	if rt > 8*time.Millisecond {
		t.Errorf("warm HTTP rt = %v, want < 8ms", rt)
	}
	if srv.Served != 1 {
		t.Errorf("served = %d", srv.Served)
	}
	// 404 path.
	var status int
	a.HTTPGet(b.IP, 80, "/missing", 10*time.Second, func(r *HTTPResponse, d sim.Duration, err error) {
		if err != nil {
			t.Fatal(err)
		}
		status = r.Status
	})
	eng.Run()
	if status != 404 {
		t.Fatalf("status = %d", status)
	}
}

func TestHTTPGetTimeout(t *testing.T) {
	eng, a, b, _ := twoHosts(24)
	a.Ping(b.IP, 8, time.Second, func(sim.Duration, error) {})
	eng.Run()
	b.NIC.Down = true
	var gotErr error
	a.HTTPGet(b.IP, 80, "/", 2*time.Second, func(r *HTTPResponse, d sim.Duration, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", gotErr)
	}
}

func TestHTTPResponseDelay(t *testing.T) {
	// ResponseDelay models app work (e.g. the disk-bound queue service).
	eng, a, b, _ := twoHosts(25)
	srv, _ := b.ServeHTTP(80, func(*HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200, Body: []byte("slow")}
	})
	srv.ResponseDelay = func(*HTTPRequest) sim.Duration { return 50 * time.Millisecond }
	var rt sim.Duration
	a.HTTPGet(b.IP, 80, "/", 10*time.Second, func(r *HTTPResponse, d sim.Duration, err error) {
		if err != nil {
			t.Fatal(err)
		}
		rt = d
	})
	eng.Run()
	if rt < 50*time.Millisecond {
		t.Fatalf("rt = %v, want >= 50ms app delay", rt)
	}
}
