package netstack

import (
	"testing"
	"time"

	"jitsu/internal/sim"
)

func TestARPRetransmitRecoversLostBroadcast(t *testing.T) {
	// The client's uplink is cut while the first ARP request goes out;
	// the retransmitted request after the heal must resolve the address
	// and flush the queued datagram — without it the queue blackholes.
	eng, a, b, _ := twoHosts(11)
	link := a.NIC.Link()
	link.PartitionAtoB()
	eng.At(500*time.Millisecond, func() { link.Heal() })

	got := 0
	b.BindUDP(5000, func(src IP, sport uint16, payload []byte) { got++ })
	a.SendUDP(b.IP, 6000, 5000, []byte("queued"))
	eng.Run()
	if got != 1 {
		t.Fatalf("datagram not delivered after ARP retransmit (got %d)", got)
	}
	if a.ARPRetries == 0 {
		t.Fatal("ARPRetries not counted")
	}
	if _, ok := a.arpCache[b.IP]; !ok {
		t.Fatal("address never resolved")
	}
}

func TestARPGivesUpAfterBoundedTries(t *testing.T) {
	// A permanently mute uplink: the resolver must stop after
	// arpRequestTries requests and drop the queue, not retry forever.
	eng, a, b, _ := twoHosts(12)
	a.NIC.Link().PartitionAtoB()

	a.SendUDP(b.IP, 6000, 5000, []byte("doomed"))
	eng.Run()
	if want := uint64(arpRequestTries - 1); a.ARPRetries != want {
		t.Fatalf("ARPRetries = %d, want %d", a.ARPRetries, want)
	}
	if len(a.arpPending[b.IP]) != 0 {
		t.Fatal("pending queue not dropped after final try")
	}
	// The whole resolution episode is bounded.
	if eng.Now() > sim.Duration(arpRequestTries)*arpRequestRTO+time.Second {
		t.Fatalf("resolution dragged to %v", eng.Now())
	}
}
