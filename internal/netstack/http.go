package netstack

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"jitsu/internal/sim"
)

// A minimal HTTP/1.0 implementation over the stack's TCP: enough for the
// paper's workloads (static sites, the persistent-queue service) with
// close-delimited or Content-Length bodies.

// HTTPRequest is a parsed request.
type HTTPRequest struct {
	Method string
	Path   string
	Header map[string]string
}

// HTTPResponse is what a handler returns (or a client receives).
type HTTPResponse struct {
	Status int
	Header map[string]string
	Body   []byte
}

// HTTPHandler serves one request.
type HTTPHandler func(req *HTTPRequest) *HTTPResponse

// HTTPServer accepts connections and answers one request per connection
// (HTTP/1.0 style, connection: close).
type HTTPServer struct {
	host     *Host
	listener *TCPListener
	handler  HTTPHandler
	// Served counts completed responses.
	Served uint64
	// ResponseDelay charges app-level work (e.g. disk reads) before the
	// response goes out; nil means instantaneous.
	ResponseDelay func(req *HTTPRequest) sim.Duration
}

// ServeHTTP starts a server on port.
func (h *Host) ServeHTTP(port uint16, handler HTTPHandler) (*HTTPServer, error) {
	srv := &HTTPServer{host: h, handler: handler}
	l, err := h.ListenTCP(port, srv.accept)
	if err != nil {
		return nil, err
	}
	srv.listener = l
	return srv, nil
}

// Close stops accepting.
func (s *HTTPServer) Close() { s.listener.Close() }

func (s *HTTPServer) accept(c *TCPConn) {
	var buf []byte
	responded := false
	c.OnData(func(b []byte) {
		if responded {
			return
		}
		buf = append(buf, b...)
		req, ok := parseRequest(buf)
		if !ok {
			return // need more bytes
		}
		responded = true
		reply := func() {
			resp := s.handler(req)
			if resp == nil {
				resp = &HTTPResponse{Status: 500}
			}
			c.Send(EncodeResponse(resp))
			c.Close()
			s.Served++
		}
		if s.ResponseDelay != nil {
			s.host.Eng.After(s.ResponseDelay(req), reply)
		} else {
			reply()
		}
	})
	c.OnClose(func(error) {})
}

// AcceptImported serves a request on a connection handed off from the
// Synjitsu proxy: buffered bytes already queued replay through OnData.
func (s *HTTPServer) AcceptImported(c *TCPConn) { s.accept(c) }

// parseRequest parses a complete request (headers terminated by CRLFCRLF).
func parseRequest(buf []byte) (*HTTPRequest, bool) {
	idx := strings.Index(string(buf), "\r\n\r\n")
	if idx < 0 {
		return nil, false
	}
	lines := strings.Split(string(buf[:idx]), "\r\n")
	parts := strings.Fields(lines[0])
	if len(parts) < 3 {
		return nil, false
	}
	req := &HTTPRequest{Method: parts[0], Path: parts[1], Header: map[string]string{}}
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok {
			req.Header[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	return req, true
}

// EncodeRequest renders a GET request.
func EncodeRequest(method, path, host string) []byte {
	return []byte(fmt.Sprintf("%s %s HTTP/1.0\r\nHost: %s\r\nUser-Agent: jitsu-sim\r\n\r\n", method, path, host))
}

// EncodeResponse renders a response with Content-Length.
func EncodeResponse(r *HTTPResponse) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.0 %d %s\r\n", r.Status, statusText(r.Status))
	keys := make([]string, 0, len(r.Header))
	for k := range r.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Header[k])
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(r.Body))
	return append([]byte(b.String()), r.Body...)
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// ParseResponse parses a full response buffer.
func ParseResponse(buf []byte) (*HTTPResponse, bool) {
	s := string(buf)
	idx := strings.Index(s, "\r\n\r\n")
	if idx < 0 {
		return nil, false
	}
	head, body := s[:idx], buf[idx+4:]
	lines := strings.Split(head, "\r\n")
	parts := strings.Fields(lines[0])
	if len(parts) < 2 {
		return nil, false
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, false
	}
	resp := &HTTPResponse{Status: status, Header: map[string]string{}}
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok {
			resp.Header[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	if cl, ok := resp.Header["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || len(body) < n {
			return nil, false
		}
		resp.Body = append([]byte(nil), body[:n]...)
		return resp, true
	}
	resp.Body = append([]byte(nil), body...)
	return resp, true
}

// HTTPGet fetches path from dst:port. done fires with the response or an
// error; the measurement clock starts at the call (Figure 9's metric is
// time from request to complete response).
func (h *Host) HTTPGet(dst IP, port uint16, path string, timeout sim.Duration, done func(*HTTPResponse, sim.Duration, error)) {
	start := h.Eng.Now()
	finished := false
	finish := func(r *HTTPResponse, err error) {
		if finished {
			return
		}
		finished = true
		done(r, h.Eng.Now()-start, err)
	}
	var deadline sim.Event
	if timeout > 0 {
		deadline = h.Eng.After(timeout, func() { finish(nil, ErrTimeout) })
	}
	h.DialTCP(dst, port, func(c *TCPConn, err error) {
		if err != nil {
			finish(nil, err)
			return
		}
		var buf []byte
		tryComplete := func() bool {
			if resp, ok := ParseResponse(buf); ok {
				h.Eng.Cancel(deadline)
				finish(resp, nil)
				return true
			}
			return false
		}
		c.OnData(func(b []byte) {
			if finished {
				return
			}
			buf = append(buf, b...)
			if tryComplete() {
				c.Close()
			}
		})
		c.OnClose(func(err error) {
			if finished {
				return
			}
			if tryComplete() {
				c.Close()
				return
			}
			if err == nil {
				err = ErrConnClosed
			}
			finish(nil, err)
		})
		c.Send(EncodeRequest("GET", path, dst.String()))
	})
}
