package netstack

import (
	"time"

	"jitsu/internal/sim"
)

// TCPState is the RFC 793 connection state.
type TCPState int

// Connection states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateClosing
	StateTimeWait
)

var tcpStateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "CLOSING", "TIME_WAIT",
}

func (s TCPState) String() string { return tcpStateNames[s] }

// TCP tuning. The stack favours fidelity of control-plane behaviour
// (handshakes, retransmission timing) over bulk-transfer sophistication:
// fixed windows, no SACK, no congestion control beyond a static cap —
// the simulated links are lossless, so the link rate is the bottleneck.
const (
	// DefaultMSS is the segment payload cap on our MTU-1500 fabric.
	DefaultMSS = 1460
	// tcpWindow is the advertised (and honoured) receive window.
	tcpWindow = 0xffff
	// synRTO is the initial SYN retransmission timeout. This 1-second
	// timer is the villain of §3.3: "The SYN packet is dropped, and the
	// client retransmits after 1s — well outside our low-latency
	// requirement."
	synRTO = 1 * time.Second
	// dataRTO is the initial retransmission timeout for data and FIN.
	dataRTO = 500 * time.Millisecond
	// maxRetries aborts a connection after this many back-offs.
	maxRetries = 6
	// timeWaitDelay is 2*MSL, shortened to keep simulations snappy.
	timeWaitDelay = 2 * time.Second
	// maxFlight caps unacknowledged bytes in flight (a static cwnd).
	maxFlight = 64 * 1024
)

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// TCPListener accepts connections on a port.
type TCPListener struct {
	host   *Host
	port   uint16
	onConn func(*TCPConn)
}

// Close stops accepting (existing connections continue).
func (l *TCPListener) Close() {
	if l.host.listeners[l.port] == l {
		delete(l.host.listeners, l.port)
	}
}

// ListenTCP binds port and invokes onConn for each connection once its
// three-way handshake completes.
func (h *Host) ListenTCP(port uint16, onConn func(*TCPConn)) (*TCPListener, error) {
	if _, ok := h.listeners[port]; ok {
		return nil, ErrPortInUse
	}
	l := &TCPListener{host: h, port: port, onConn: onConn}
	h.listeners[port] = l
	return l, nil
}

// TCPConn is one TCP connection endpoint.
type TCPConn struct {
	host  *Host
	key   fourTuple
	state TCPState

	iss, irs       uint32 // initial send / receive sequence numbers
	sndUna, sndNxt uint32
	rcvNxt         uint32
	sndWnd         uint16
	mss            int

	sndBuf    []byte // bytes from sndUna onward (unacked + unsent)
	finQueued bool
	finSent   bool

	rto     sim.Duration
	rtxEv   sim.Event
	retries int

	onData        func([]byte)
	onEstablished func()
	onClose       func(error)
	pendingData   [][]byte // delivered before OnData was installed
	closedErr     error
	closeNotified bool

	// BytesIn/BytesOut count application payload for diagnostics.
	BytesIn, BytesOut uint64
	// Retransmits counts RTO firings (visible in Figure 9a cold starts).
	Retransmits int
}

// State returns the current connection state.
func (c *TCPConn) State() TCPState { return c.state }

// LocalAddr / RemoteAddr return the endpoint addresses.
func (c *TCPConn) LocalAddr() (IP, uint16)  { return c.key.localIP, c.key.localPort }
func (c *TCPConn) RemoteAddr() (IP, uint16) { return c.key.remoteIP, c.key.remotePort }

// OnData installs the receive callback; any data that arrived earlier is
// delivered immediately, preserving order.
func (c *TCPConn) OnData(fn func([]byte)) {
	c.onData = fn
	for _, b := range c.pendingData {
		c.BytesIn += uint64(len(b))
		fn(b)
	}
	c.pendingData = nil
}

// OnClose installs the teardown callback: nil error for orderly close,
// ErrConnReset / ErrTimeout otherwise. If the connection already ended,
// it fires immediately.
func (c *TCPConn) OnClose(fn func(error)) {
	c.onClose = fn
	if c.closeNotified {
		fn(c.closedErr)
	}
}

// DialTCP opens a connection; done fires when established or failed.
func (h *Host) DialTCP(dst IP, dstPort uint16, done func(*TCPConn, error)) *TCPConn {
	c := &TCPConn{
		host: h,
		key: fourTuple{localIP: h.IP, remoteIP: dst,
			localPort: h.ephemeralPort(), remotePort: dstPort},
		state:  StateSynSent,
		iss:    h.Eng.Rand().Uint32(),
		sndWnd: tcpWindow,
		mss:    DefaultMSS,
		rto:    synRTO,
	}
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	established := false
	c.onEstablished = func() {
		established = true
		done(c, nil)
	}
	c.onClose = func(err error) {
		if !established {
			if err == nil {
				err = ErrConnClosed
			}
			done(nil, err)
		}
	}
	h.conns[c.key] = c
	c.sendSegment(FlagSYN, c.iss, 0, nil, uint16(DefaultMSS))
	c.armRtx()
	return c
}

// Send queues application data for transmission.
func (c *TCPConn) Send(data []byte) error {
	switch c.state {
	case StateEstablished, StateCloseWait:
	default:
		return ErrConnClosed
	}
	if c.finQueued {
		return ErrConnClosed
	}
	c.BytesOut += uint64(len(data))
	c.sndBuf = append(c.sndBuf, data...)
	c.trySend()
	return nil
}

// Close performs an orderly shutdown: a FIN follows any queued data.
func (c *TCPConn) Close() {
	switch c.state {
	case StateEstablished, StateSynRcvd:
		c.finQueued = true
		c.state = StateFinWait1
	case StateCloseWait:
		c.finQueued = true
		c.state = StateLastAck
	default:
		return
	}
	c.trySend()
}

// Abort sends RST and drops the connection immediately.
func (c *TCPConn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(FlagRST|FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
	c.teardown(ErrConnReset)
}

// ---- internals ----

// sendSegment emits one segment on the wire.
func (c *TCPConn) sendSegment(flags byte, seq, ack uint32, payload []byte, mssOpt uint16) {
	seg := TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Ack: ack, Flags: flags, Window: tcpWindow, MSS: mssOpt,
	}
	if c.host.TraceTCP != nil {
		traced := seg
		traced.payload = payload
		c.host.TraceTCP("tx", &traced)
	}
	c.host.sendIPv4From(c.key.localIP, c.key.remoteIP, ProtoTCP,
		seg.Encode(c.key.localIP, c.key.remoteIP, payload))
}

// trySend transmits as much of sndBuf as the windows allow, then the FIN
// if queued and fully drained.
func (c *TCPConn) trySend() {
	wnd := int(c.sndWnd)
	if wnd > maxFlight {
		wnd = maxFlight
	}
	inFlight := int(c.sndNxt - c.sndUna)
	if c.state == StateSynSent || c.state == StateSynRcvd {
		return // SYN occupies the window until acked
	}
	sent := false
	for {
		offset := int(c.sndNxt - c.sndUna)
		if c.finSent {
			offset-- // FIN consumed one sequence number past the data
		}
		avail := len(c.sndBuf) - offset
		if avail <= 0 || inFlight >= wnd || c.finSent {
			break
		}
		n := avail
		if n > c.mss {
			n = c.mss
		}
		if n > wnd-inFlight {
			n = wnd - inFlight
		}
		if n <= 0 {
			break
		}
		c.sendSegment(FlagACK|FlagPSH, c.sndNxt, c.rcvNxt, c.sndBuf[offset:offset+n], 0)
		c.sndNxt += uint32(n)
		inFlight += n
		sent = true
	}
	if c.finQueued && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.sendSegment(FlagFIN|FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
		c.sndNxt++
		c.finSent = true
		sent = true
	}
	if sent {
		c.armRtx()
	}
}

// armRtx (re)starts the retransmission timer if anything is outstanding.
func (c *TCPConn) armRtx() {
	c.host.Eng.Cancel(c.rtxEv)
	if c.sndUna == c.sndNxt {
		return
	}
	c.rtxEv = c.host.Eng.After(c.rto, c.retransmit)
}

// retransmit resends from sndUna with exponential backoff.
func (c *TCPConn) retransmit() {
	if c.sndUna == c.sndNxt || c.state == StateClosed {
		return
	}
	c.retries++
	c.Retransmits++
	if c.retries > maxRetries {
		c.teardown(ErrTimeout)
		return
	}
	c.rto *= 2
	switch c.state {
	case StateSynSent:
		c.sendSegment(FlagSYN, c.iss, 0, nil, uint16(DefaultMSS))
	case StateSynRcvd:
		c.sendSegment(FlagSYN|FlagACK, c.iss, c.rcvNxt, nil, uint16(DefaultMSS))
	default:
		offset := 0
		avail := len(c.sndBuf)
		if avail > 0 && !allAcked(c) {
			n := avail - offset
			if n > c.mss {
				n = c.mss
			}
			c.sendSegment(FlagACK|FlagPSH, c.sndUna, c.rcvNxt, c.sndBuf[offset:offset+n], 0)
		} else if c.finSent {
			c.sendSegment(FlagFIN|FlagACK, c.sndNxt-1, c.rcvNxt, nil, 0)
		}
	}
	c.rtxEv = c.host.Eng.After(c.rto, c.retransmit)
}

func allAcked(c *TCPConn) bool { return len(c.sndBuf) == 0 }

// handleTCP is the host demux: existing connection, listener, or RST.
// dst is the actual destination address (primary IP or alias), so one
// stack can serve many addresses — the Synjitsu proxy does.
func (h *Host) handleTCP(src, dst IP, payload []byte) {
	if err := h.tcp.DecodeFromBytes(payload, src, dst); err != nil {
		h.RxDropped++
		return
	}
	if h.TraceTCP != nil {
		h.TraceTCP("rx", &h.tcp)
	}
	seg := h.tcp
	key := fourTuple{localIP: dst, remoteIP: src, localPort: seg.DstPort, remotePort: seg.SrcPort}
	if c, ok := h.conns[key]; ok {
		c.handleSegment(&seg)
		return
	}
	if l, ok := h.listeners[seg.DstPort]; ok && seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		l.acceptSYN(src, dst, &seg)
		return
	}
	// No socket: RST (unless the offender was itself an RST).
	if seg.Flags&FlagRST == 0 {
		h.sendRST(src, dst, &seg)
	}
}

func (h *Host) sendRST(src, dst IP, seg *TCPSegment) {
	var rst TCPSegment
	rst.SrcPort, rst.DstPort = seg.DstPort, seg.SrcPort
	rst.Flags = FlagRST | FlagACK
	rst.Seq = seg.Ack
	rst.Ack = seg.Seq + uint32(len(seg.Payload()))
	if seg.Flags&FlagSYN != 0 {
		rst.Ack++
	}
	h.sendIPv4From(dst, src, ProtoTCP, rst.Encode(dst, src, nil))
}

// acceptSYN creates the half-open server-side connection and answers
// SYN-ACK.
func (l *TCPListener) acceptSYN(src, dst IP, seg *TCPSegment) {
	h := l.host
	c := &TCPConn{
		host: h,
		key: fourTuple{localIP: dst, remoteIP: src,
			localPort: seg.DstPort, remotePort: seg.SrcPort},
		state:  StateSynRcvd,
		iss:    h.Eng.Rand().Uint32(),
		irs:    seg.Seq,
		rcvNxt: seg.Seq + 1,
		sndWnd: seg.Window,
		mss:    DefaultMSS,
		rto:    dataRTO,
	}
	if seg.MSS != 0 && int(seg.MSS) < c.mss {
		c.mss = int(seg.MSS)
	}
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.onEstablished = func() { l.onConn(c) }
	h.conns[c.key] = c
	c.sendSegment(FlagSYN|FlagACK, c.iss, c.rcvNxt, nil, uint16(DefaultMSS))
	c.armRtx()
}

// handleSegment is the per-connection state machine.
func (c *TCPConn) handleSegment(seg *TCPSegment) {
	if seg.Flags&FlagRST != 0 {
		if c.state == StateSynSent && seg.Ack != c.iss+1 {
			return // RST for something else
		}
		c.teardown(ErrConnReset)
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack == c.iss+1 {
			c.irs = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.sndWnd = seg.Window
			if seg.MSS != 0 && int(seg.MSS) < c.mss {
				c.mss = int(seg.MSS)
			}
			c.state = StateEstablished
			c.rto = dataRTO
			c.retries = 0
			c.host.Eng.Cancel(c.rtxEv)
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
			if c.onEstablished != nil {
				c.onEstablished()
			}
			c.trySend()
		}
		return
	case StateSynRcvd:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.sndWnd = seg.Window
			c.state = StateEstablished
			c.rto = dataRTO
			c.retries = 0
			c.host.Eng.Cancel(c.rtxEv)
			if c.onEstablished != nil {
				c.onEstablished()
			}
			// Fall through to process any piggybacked payload.
		} else if seg.Flags&FlagSYN != 0 {
			// Duplicate SYN: repeat the SYN-ACK.
			c.sendSegment(FlagSYN|FlagACK, c.iss, c.rcvNxt, nil, uint16(DefaultMSS))
			return
		} else {
			return
		}
	}

	// ACK processing.
	if seg.Flags&FlagACK != 0 {
		if seqLT(c.sndUna, seg.Ack) && seqLEQ(seg.Ack, c.sndNxt) {
			acked := seg.Ack - c.sndUna
			dataAcked := acked
			if c.finSent && seg.Ack == c.sndNxt {
				dataAcked-- // the FIN's sequence slot
			}
			if int(dataAcked) <= len(c.sndBuf) {
				c.sndBuf = c.sndBuf[dataAcked:]
			} else {
				c.sndBuf = nil
			}
			c.sndUna = seg.Ack
			c.retries = 0
			c.rto = dataRTO
			c.armRtx()
			// FIN fully acknowledged?
			if c.finSent && c.sndUna == c.sndNxt {
				switch c.state {
				case StateFinWait1:
					c.state = StateFinWait2
				case StateClosing:
					c.enterTimeWait()
				case StateLastAck:
					c.teardown(nil)
					return
				}
			}
		}
		c.sndWnd = seg.Window
	}

	// In-order data.
	payload := seg.Payload()
	if len(payload) > 0 {
		switch c.state {
		case StateEstablished, StateFinWait1, StateFinWait2:
			if seg.Seq == c.rcvNxt {
				c.rcvNxt += uint32(len(payload))
				c.deliver(payload)
				c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
			} else {
				// Out of order or duplicate: re-ACK our position.
				c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
			}
		default:
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
		}
	}

	// FIN processing (only when it is the next expected sequence).
	if seg.Flags&FlagFIN != 0 && seg.Seq+uint32(len(payload)) == c.rcvNxt ||
		seg.Flags&FlagFIN != 0 && seg.Seq == c.rcvNxt {
		c.rcvNxt++
		c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
			c.notifyRemoteClosed()
		case StateFinWait1:
			if c.finSent && c.sndUna == c.sndNxt {
				c.enterTimeWait()
			} else {
				c.state = StateClosing
			}
		case StateFinWait2:
			c.enterTimeWait()
		}
	}

	c.trySend()
}

// deliver hands payload to the application (or buffers it).
func (c *TCPConn) deliver(payload []byte) {
	buf := append([]byte(nil), payload...)
	if c.onData == nil {
		c.pendingData = append(c.pendingData, buf)
		return
	}
	c.BytesIn += uint64(len(buf))
	c.onData(buf)
}

// notifyRemoteClosed signals EOF-ish closure to the app: for our
// callback API, remote FIN with no local Close yet surfaces via OnClose
// with nil error once both directions finish; apps that want half-close
// semantics can watch State() == CLOSE_WAIT.
func (c *TCPConn) notifyRemoteClosed() {
	if c.onClose != nil && !c.closeNotified {
		// Orderly remote close; the app should Close() its side.
		// We do not tear down yet.
		c.closeNotified = true
		c.closedErr = nil
		c.onClose(nil)
	}
}

func (c *TCPConn) enterTimeWait() {
	c.state = StateTimeWait
	c.host.Eng.Cancel(c.rtxEv)
	c.host.Eng.After(timeWaitDelay, func() { c.teardown(nil) })
}

// teardown finishes the connection and notifies the app.
func (c *TCPConn) teardown(err error) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.host.Eng.Cancel(c.rtxEv)
	delete(c.host.conns, c.key)
	c.closedErr = err
	if c.onClose != nil && !c.closeNotified {
		c.closeNotified = true
		c.onClose(err)
	}
}
