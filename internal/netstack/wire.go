// Package netstack is an event-driven TCP/IP stack over the netsim
// fabric — the stand-in for the OCaml mirage-tcpip stack the paper's
// unikernels run. It provides Ethernet, ARP, IPv4, ICMP, UDP and TCP,
// plus a minimal HTTP layer, and — crucially for Synjitsu (§3.3.1) — TCP
// control blocks that can be serialised through XenStore and resumed in
// another stack instance.
//
// Decoding follows the layer-struct style of gopacket's DecodingLayer:
// preallocated header structs with DecodeFromBytes that never allocate,
// and explicit zero-copy payload sub-slices.
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"jitsu/internal/netsim"
)

// Wire-format errors.
var (
	ErrTruncated   = errors.New("netstack: truncated packet")
	ErrBadChecksum = errors.New("netstack: bad checksum")
	ErrBadVersion  = errors.New("netstack: bad IP version")
)

// IP is an IPv4 address, comparable and usable as a map key.
type IP [4]byte

// String renders dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IPv4 builds an address from octets.
func IPv4(a, b, c, d byte) IP { return IP{a, b, c, d} }

// ParseIP parses a dotted quad; it returns false on malformed input.
func ParseIP(s string) (IP, bool) {
	var ip IP
	part, idx := 0, 0
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !seen || idx > 3 {
				return IP{}, false
			}
			ip[idx] = byte(part)
			idx++
			part, seen = 0, false
			continue
		}
		ch := s[i]
		if ch < '0' || ch > '9' {
			return IP{}, false
		}
		part = part*10 + int(ch-'0')
		if part > 255 {
			return IP{}, false
		}
		seen = true
	}
	if idx != 4 {
		return IP{}, false
	}
	return ip, true
}

// SameSubnet reports whether two addresses share a /24, the only subnet
// size our edge networks use.
func SameSubnet(a, b IP) bool { return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] }

// EtherType values the stack speaks.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// EthernetHeaderLen is the fixed 14-byte header size.
const EthernetHeaderLen = 14

// Ethernet is the link-layer header.
type Ethernet struct {
	Dst, Src  netsim.MAC
	EtherType uint16
	payload   []byte
}

// DecodeFromBytes parses the header; Payload returns the rest zero-copy.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// Payload returns the bytes after the header (valid until the frame is
// reused).
func (e *Ethernet) Payload() []byte { return e.payload }

// Encode prepends the header to payload in a fresh buffer.
func (e *Ethernet) Encode(payload []byte) []byte {
	buf := make([]byte, EthernetHeaderLen+len(payload))
	copy(buf[0:6], e.Dst[:])
	copy(buf[6:12], e.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], e.EtherType)
	copy(buf[EthernetHeaderLen:], payload)
	return buf
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an Ethernet/IPv4 ARP message.
type ARPPacket struct {
	Op                 uint16
	SenderMAC          netsim.MAC
	SenderIP, TargetIP IP
	TargetMAC          netsim.MAC
}

const arpLen = 28

// DecodeFromBytes parses an ARP payload.
func (a *ARPPacket) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || // hardware: ethernet
		binary.BigEndian.Uint16(data[2:4]) != EtherTypeIPv4 ||
		data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("netstack: unsupported ARP format")
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// Encode renders the 28-byte ARP payload.
func (a *ARPPacket) Encode() []byte {
	buf := make([]byte, arpLen)
	binary.BigEndian.PutUint16(buf[0:2], 1)
	binary.BigEndian.PutUint16(buf[2:4], EtherTypeIPv4)
	buf[4], buf[5] = 6, 4
	binary.BigEndian.PutUint16(buf[6:8], a.Op)
	copy(buf[8:14], a.SenderMAC[:])
	copy(buf[14:18], a.SenderIP[:])
	copy(buf[18:24], a.TargetMAC[:])
	copy(buf[24:28], a.TargetIP[:])
	return buf
}

// IP protocol numbers.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// IPv4HeaderLen is the option-free header size (the stack never emits
// options).
const IPv4HeaderLen = 20

// IPv4Header is the network-layer header.
type IPv4Header struct {
	TTL      byte
	Protocol byte
	Src, Dst IP
	ID       uint16
	totalLen int
	payload  []byte
}

// DecodeFromBytes parses and checksums the header.
func (h *IPv4Header) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrTruncated
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	h.totalLen = int(binary.BigEndian.Uint16(data[2:4]))
	if h.totalLen < ihl || h.totalLen > len(data) {
		return ErrTruncated
	}
	h.ID = binary.BigEndian.Uint16(data[4:6])
	h.TTL = data[8]
	h.Protocol = data[9]
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	h.payload = data[ihl:h.totalLen]
	return nil
}

// Payload returns the bytes covered by TotalLength after the header.
func (h *IPv4Header) Payload() []byte { return h.payload }

// Encode renders header+payload with a correct checksum.
func (h *IPv4Header) Encode(payload []byte) []byte {
	buf := make([]byte, IPv4HeaderLen+len(payload))
	buf[0] = 0x45
	binary.BigEndian.PutUint16(buf[2:4], uint16(IPv4HeaderLen+len(payload)))
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	buf[8] = ttl
	buf[9] = h.Protocol
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(buf[10:12], Checksum(buf[:IPv4HeaderLen]))
	copy(buf[IPv4HeaderLen:], payload)
	return buf
}

// ICMP types.
const (
	ICMPEchoReply   byte = 0
	ICMPEchoRequest byte = 8
)

// ICMPEcho is an echo request/reply message.
type ICMPEcho struct {
	Type    byte
	ID, Seq uint16
	Data    []byte
}

// DecodeFromBytes parses and checksums an ICMP message.
func (m *ICMPEcho) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	m.Type = data[0]
	m.ID = binary.BigEndian.Uint16(data[4:6])
	m.Seq = binary.BigEndian.Uint16(data[6:8])
	m.Data = data[8:]
	return nil
}

// Encode renders the message with checksum.
func (m *ICMPEcho) Encode() []byte {
	buf := make([]byte, 8+len(m.Data))
	buf[0] = m.Type
	binary.BigEndian.PutUint16(buf[4:6], m.ID)
	binary.BigEndian.PutUint16(buf[6:8], m.Seq)
	copy(buf[8:], m.Data)
	binary.BigEndian.PutUint16(buf[2:4], Checksum(buf))
	return buf
}

// UDPHeader is the transport header for datagrams.
type UDPHeader struct {
	SrcPort, DstPort uint16
	payload          []byte
}

// UDPHeaderLen is the fixed UDP header size.
const UDPHeaderLen = 8

// DecodeFromBytes parses a UDP datagram, verifying the checksum against
// the pseudo-header when present (non-zero).
func (u *UDPHeader) DecodeFromBytes(data []byte, src, dst IP) error {
	if len(data) < UDPHeaderLen {
		return ErrTruncated
	}
	ulen := int(binary.BigEndian.Uint16(data[4:6]))
	if ulen < UDPHeaderLen || ulen > len(data) {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[6:8]) != 0 {
		if PseudoChecksum(src, dst, ProtoUDP, data[:ulen]) != 0 {
			return ErrBadChecksum
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.payload = data[UDPHeaderLen:ulen]
	return nil
}

// Payload returns the datagram body.
func (u *UDPHeader) Payload() []byte { return u.payload }

// Encode renders the datagram with a pseudo-header checksum.
func (u *UDPHeader) Encode(src, dst IP, payload []byte) []byte {
	buf := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(buf)))
	copy(buf[UDPHeaderLen:], payload)
	ck := PseudoChecksum(src, dst, ProtoUDP, buf)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(buf[6:8], ck)
	// Re-zeroing trick: checksum was computed with field zero.
	return buf
}

// TCP flags.
const (
	FlagFIN byte = 1 << 0
	FlagSYN byte = 1 << 1
	FlagRST byte = 1 << 2
	FlagPSH byte = 1 << 3
	FlagACK byte = 1 << 4
)

// TCPSegment is the transport header plus payload view for TCP.
type TCPSegment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	MSS              uint16 // from the SYN option; 0 if absent
	payload          []byte
}

// TCPHeaderLen is the option-free header size.
const TCPHeaderLen = 20

// DecodeFromBytes parses and checksums a TCP segment.
func (t *TCPSegment) DecodeFromBytes(data []byte, src, dst IP) error {
	if len(data) < TCPHeaderLen {
		return ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen || off > len(data) {
		return ErrTruncated
	}
	if PseudoChecksum(src, dst, ProtoTCP, data) != 0 {
		return ErrBadChecksum
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.MSS = 0
	// Scan options for MSS (kind 2, len 4).
	opts := data[TCPHeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // nop
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return ErrTruncated
			}
			if opts[0] == 2 && opts[1] == 4 {
				t.MSS = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	t.payload = data[off:]
	return nil
}

// Payload returns the segment body.
func (t *TCPSegment) Payload() []byte { return t.payload }

// Encode renders the segment (with an MSS option when t.MSS != 0) and a
// pseudo-header checksum.
func (t *TCPSegment) Encode(src, dst IP, payload []byte) []byte {
	hlen := TCPHeaderLen
	if t.MSS != 0 {
		hlen += 4
	}
	buf := make([]byte, hlen+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = byte(hlen/4) << 4
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	if t.MSS != 0 {
		buf[TCPHeaderLen] = 2
		buf[TCPHeaderLen+1] = 4
		binary.BigEndian.PutUint16(buf[TCPHeaderLen+2:TCPHeaderLen+4], t.MSS)
	}
	copy(buf[hlen:], payload)
	binary.BigEndian.PutUint16(buf[16:18], PseudoChecksum(src, dst, ProtoTCP, buf))
	return buf
}

// Checksum computes the Internet checksum (RFC 1071) of data, assuming
// the checksum field within is zero (or returns 0 when verifying data
// that includes a correct checksum).
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// PseudoChecksum computes the transport checksum over the IPv4
// pseudo-header plus segment.
func PseudoChecksum(src, dst IP, proto byte, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	var sum uint32
	add := func(data []byte) {
		for i := 0; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
		}
		if len(data)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
		}
	}
	add(pseudo[:])
	add(segment)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
