package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"jitsu/internal/netsim"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"10.0.0.1", true}, {"255.255.255.255", true}, {"0.0.0.0", true},
		{"256.1.1.1", false}, {"1.2.3", false}, {"1.2.3.4.5", false},
		{"", false}, {"a.b.c.d", false}, {"1..2.3", false},
	}
	for _, c := range cases {
		ip, ok := ParseIP(c.in)
		if ok != c.ok {
			t.Errorf("ParseIP(%q) ok=%v, want %v", c.in, ok, c.ok)
		}
		if ok && ip.String() != c.in {
			t.Errorf("round trip %q -> %q", c.in, ip.String())
		}
	}
}

func TestSameSubnet(t *testing.T) {
	a, b := IPv4(10, 0, 5, 1), IPv4(10, 0, 5, 200)
	c := IPv4(10, 0, 6, 1)
	if !SameSubnet(a, b) || SameSubnet(a, c) {
		t.Fatal("subnet check wrong")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: netsim.MACFor(1), Src: netsim.MACFor(2), EtherType: EtherTypeIPv4}
	frame := e.Encode([]byte("payload"))
	var d Ethernet
	if err := d.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if d.Dst != e.Dst || d.Src != e.Src || d.EtherType != e.EtherType {
		t.Fatalf("decoded %+v", d)
	}
	if string(d.Payload()) != "payload" {
		t.Fatalf("payload %q", d.Payload())
	}
	if err := d.DecodeFromBytes(frame[:10]); err != ErrTruncated {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARPPacket{
		Op: ARPRequest, SenderMAC: netsim.MACFor(5), SenderIP: IPv4(10, 0, 0, 5),
		TargetIP: IPv4(10, 0, 0, 9),
	}
	var d ARPPacket
	if err := d.DecodeFromBytes(a.Encode()); err != nil {
		t.Fatal(err)
	}
	if d.Op != ARPRequest || d.SenderIP != a.SenderIP || d.TargetIP != a.TargetIP || d.SenderMAC != a.SenderMAC {
		t.Fatalf("decoded %+v", d)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4Header{Protocol: ProtoTCP, Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2), ID: 42}
	pkt := h.Encode([]byte("data"))
	var d IPv4Header
	if err := d.DecodeFromBytes(pkt); err != nil {
		t.Fatal(err)
	}
	if d.Src != h.Src || d.Dst != h.Dst || d.Protocol != ProtoTCP || d.ID != 42 {
		t.Fatalf("decoded %+v", d)
	}
	if string(d.Payload()) != "data" {
		t.Fatalf("payload %q", d.Payload())
	}
	// Corrupt one byte: checksum must catch it.
	pkt[15] ^= 0xff
	if err := d.DecodeFromBytes(pkt); err != ErrBadChecksum {
		t.Fatalf("corrupted err = %v", err)
	}
}

func TestIPv4TotalLengthBoundsPayload(t *testing.T) {
	h := IPv4Header{Protocol: ProtoUDP, Src: IPv4(1, 1, 1, 1), Dst: IPv4(2, 2, 2, 2)}
	pkt := h.Encode([]byte("abc"))
	// Ethernet padding: extra trailing bytes must not leak into payload.
	padded := append(pkt, 0, 0, 0, 0)
	var d IPv4Header
	if err := d.DecodeFromBytes(padded); err != nil {
		t.Fatal(err)
	}
	if string(d.Payload()) != "abc" {
		t.Fatalf("padded payload %q", d.Payload())
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := ICMPEcho{Type: ICMPEchoRequest, ID: 7, Seq: 9, Data: []byte{1, 2, 3}}
	var d ICMPEcho
	if err := d.DecodeFromBytes(m.Encode()); err != nil {
		t.Fatal(err)
	}
	if d.Type != m.Type || d.ID != 7 || d.Seq != 9 || !bytes.Equal(d.Data, m.Data) {
		t.Fatalf("decoded %+v", d)
	}
	bad := m.Encode()
	bad[9] ^= 1
	if err := d.DecodeFromBytes(bad); err != ErrBadChecksum {
		t.Fatalf("corrupted err = %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2)
	u := UDPHeader{SrcPort: 5353, DstPort: 53}
	dgram := u.Encode(src, dst, []byte("query"))
	var d UDPHeader
	if err := d.DecodeFromBytes(dgram, src, dst); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 5353 || d.DstPort != 53 || string(d.Payload()) != "query" {
		t.Fatalf("decoded %+v payload %q", d, d.Payload())
	}
	// Wrong pseudo-header (different dst IP) must fail the checksum.
	if err := d.DecodeFromBytes(dgram, src, IPv4(9, 9, 9, 9)); err != ErrBadChecksum {
		t.Fatalf("pseudo-header err = %v", err)
	}
}

func TestTCPSegmentRoundTrip(t *testing.T) {
	src, dst := IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2)
	seg := TCPSegment{
		SrcPort: 49152, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: FlagSYN | FlagACK, Window: 65535, MSS: 1460,
	}
	wire := seg.Encode(src, dst, nil)
	var d TCPSegment
	if err := d.DecodeFromBytes(wire, src, dst); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 49152 || d.DstPort != 80 || d.Seq != 1000 || d.Ack != 2000 {
		t.Fatalf("decoded %+v", d)
	}
	if d.Flags != FlagSYN|FlagACK || d.MSS != 1460 {
		t.Fatalf("flags/MSS %+v", d)
	}
	// Data segment without options.
	seg2 := TCPSegment{SrcPort: 1, DstPort: 2, Seq: 5, Ack: 6, Flags: FlagACK | FlagPSH, Window: 100}
	wire2 := seg2.Encode(src, dst, []byte("hello"))
	if err := d.DecodeFromBytes(wire2, src, dst); err != nil {
		t.Fatal(err)
	}
	if string(d.Payload()) != "hello" || d.MSS != 0 {
		t.Fatalf("payload %q MSS %d", d.Payload(), d.MSS)
	}
	// Corruption.
	wire2[len(wire2)-1] ^= 1
	if err := d.DecodeFromBytes(wire2, src, dst); err != ErrBadChecksum {
		t.Fatalf("corrupted err = %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	sum := Checksum(data)
	// Verify by appending the checksum and re-checking totals to zero,
	// with implicit zero padding of the odd byte.
	verify := []byte{0x01, 0x02, 0x03, 0x00, byte(sum >> 8), byte(sum)}
	if Checksum(verify) != 0 {
		t.Fatal("odd-length checksum inconsistent")
	}
}

// Property: every TCP segment we encode decodes to the same header and
// payload, for arbitrary field values and payloads.
func TestTCPEncodeDecodeProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags byte, wnd uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src, dst := IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2)
		seg := TCPSegment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, Window: wnd}
		wire := seg.Encode(src, dst, payload)
		var d TCPSegment
		if err := d.DecodeFromBytes(wire, src, dst); err != nil {
			return false
		}
		return d.SrcPort == sp && d.DstPort == dp && d.Seq == seq &&
			d.Ack == ack && d.Flags == flags && d.Window == wnd &&
			bytes.Equal(d.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IPv4 header checksums detect any single-byte corruption.
func TestIPv4ChecksumDetectsCorruptionProperty(t *testing.T) {
	f := func(idx uint8, flip uint8) bool {
		if flip == 0 {
			return true
		}
		h := IPv4Header{Protocol: ProtoTCP, Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2)}
		pkt := h.Encode(nil)
		i := int(idx) % IPv4HeaderLen
		pkt[i] ^= flip
		var d IPv4Header
		err := d.DecodeFromBytes(pkt)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCBRoundTrip(t *testing.T) {
	tcb := &TCB{
		State:   TCBStateSYNACK,
		LocalIP: IPv4(10, 0, 0, 20), LocalPort: 80,
		RemoteIP: IPv4(10, 0, 0, 9), RemotePort: 49152,
		ISS: 7, IRS: 9, SndNxt: 8, RcvNxt: 10, Window: 65535,
		Buffered: []byte("GET / HTTP/1.0\r\n"),
	}
	enc := tcb.Encode()
	dec, err := ParseTCB(enc)
	if err != nil {
		t.Fatalf("ParseTCB(%q): %v", enc, err)
	}
	if *&dec.State != tcb.State || dec.LocalIP != tcb.LocalIP || dec.LocalPort != tcb.LocalPort ||
		dec.RemoteIP != tcb.RemoteIP || dec.RemotePort != tcb.RemotePort ||
		dec.ISS != tcb.ISS || dec.IRS != tcb.IRS || dec.SndNxt != tcb.SndNxt ||
		dec.RcvNxt != tcb.RcvNxt || dec.Window != tcb.Window ||
		!bytes.Equal(dec.Buffered, tcb.Buffered) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", tcb, dec)
	}
}

func TestParseTCBErrors(t *testing.T) {
	bad := []string{
		"", "()", "(state)", "not-sexp",
		"((state ESTABLISHED)(sport 99999))",   // port overflow
		"((state ESTABLISHED)(src 300.0.0.1))", // bad IP
		"((state ESTABLISHED)(buf zz))",        // bad hex
		"((src 10.0.0.1))",                     // missing state
	}
	for _, s := range bad {
		if _, err := ParseTCB(s); err == nil {
			t.Errorf("ParseTCB(%q) should fail", s)
		}
	}
	// Unknown fields are tolerated.
	if _, err := ParseTCB("((state SYN)(future stuff))"); err != nil {
		t.Errorf("unknown field should be ignored: %v", err)
	}
}

// Property: TCB serialisation round-trips for arbitrary field values.
func TestTCBRoundTripProperty(t *testing.T) {
	f := func(iss, irs, snd, rcv uint32, lp, rp, wnd uint16, buf []byte) bool {
		if len(buf) > 512 {
			buf = buf[:512]
		}
		tcb := &TCB{State: TCBStateEstablished,
			LocalIP: IPv4(192, 168, 1, 20), LocalPort: lp,
			RemoteIP: IPv4(192, 168, 1, 9), RemotePort: rp,
			ISS: iss, IRS: irs, SndNxt: snd, RcvNxt: rcv, Window: wnd,
			Buffered: buf}
		dec, err := ParseTCB(tcb.Encode())
		if err != nil {
			return false
		}
		return dec.ISS == iss && dec.IRS == irs && dec.SndNxt == snd &&
			dec.RcvNxt == rcv && dec.LocalPort == lp && dec.RemotePort == rp &&
			dec.Window == wnd && bytes.Equal(dec.Buffered, buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPCodec(t *testing.T) {
	req, ok := parseRequest([]byte("GET /photos HTTP/1.0\r\nHost: alice.family.name\r\n\r\n"))
	if !ok || req.Method != "GET" || req.Path != "/photos" || req.Header["host"] != "alice.family.name" {
		t.Fatalf("parseRequest: %+v ok=%v", req, ok)
	}
	if _, ok := parseRequest([]byte("GET / HTTP/1.0\r\nHost: x\r\n")); ok {
		t.Fatal("incomplete request parsed")
	}
	resp := &HTTPResponse{Status: 200, Header: map[string]string{"X-Svc": "jitsu"}, Body: []byte("hello")}
	dec, ok := ParseResponse(EncodeResponse(resp))
	if !ok || dec.Status != 200 || string(dec.Body) != "hello" || dec.Header["x-svc"] != "jitsu" {
		t.Fatalf("response round trip: %+v ok=%v", dec, ok)
	}
	// Partial body: not complete yet.
	enc := EncodeResponse(resp)
	if _, ok := ParseResponse(enc[:len(enc)-1]); ok {
		t.Fatal("partial body parsed as complete")
	}
}
