package netstack

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// TCB is a serialisable TCP control block: everything needed to hand a
// connection from the Synjitsu proxy to the freshly booted unikernel
// (§3.3.1, Figure 7). The paper stores these as s-expressions in the
// conduit XenStore tree; we keep the same surface syntax:
//
//	((state SYN_ACK)(src 10.0.0.9)(sport 49152)(dst 10.0.0.20)
//	 (dport 80)(iss 7)(irs 9)(snd-nxt 8)(rcv-nxt 10)(wnd 65535)(buf 474554))
type TCB struct {
	State      string // "SYN", "SYN_ACK" or "ESTABLISHED"
	LocalIP    IP
	LocalPort  uint16
	RemoteIP   IP
	RemotePort uint16
	ISS, IRS   uint32
	SndNxt     uint32
	RcvNxt     uint32
	Window     uint16
	// Buffered is client payload the proxy already ACKed; RcvNxt
	// accounts for it. The importer replays it to the application.
	Buffered []byte
}

// ErrBadTCB reports a malformed serialised control block.
var ErrBadTCB = errors.New("netstack: malformed TCB")

// TCB state strings (matching Figure 7's vocabulary).
const (
	TCBStateSYN         = "SYN"
	TCBStateSYNACK      = "SYN_ACK"
	TCBStateEstablished = "ESTABLISHED"
)

// ExportTCB snapshots a proxy-side connection for handoff. Only
// half-open (SYN-ACK sent) and established connections are exportable.
func (c *TCPConn) ExportTCB() (*TCB, error) {
	var state string
	switch c.state {
	case StateSynRcvd:
		state = TCBStateSYNACK
	case StateEstablished:
		state = TCBStateEstablished
	default:
		return nil, fmt.Errorf("netstack: cannot export connection in %v", c.state)
	}
	t := &TCB{
		State:      state,
		LocalIP:    c.key.localIP,
		LocalPort:  c.key.localPort,
		RemoteIP:   c.key.remoteIP,
		RemotePort: c.key.remotePort,
		ISS:        c.iss,
		IRS:        c.irs,
		SndNxt:     c.sndNxt,
		RcvNxt:     c.rcvNxt,
		Window:     c.sndWnd,
	}
	// Anything the app side hasn't consumed plus anything pending is
	// the replay buffer. Proxy connections never install OnData, so all
	// received payload sits in pendingData.
	for _, b := range c.pendingData {
		t.Buffered = append(t.Buffered, b...)
	}
	return t, nil
}

// Forget removes a connection from its host's demux table *without*
// sending anything on the wire — the two-phase handoff's "the proxy
// stops claiming packets" step. After Forget the host ignores further
// segments for this tuple (and, having no socket, would RST them, so
// the importer must be live first — which the two-phase commit in
// XenStore guarantees).
func (c *TCPConn) Forget() {
	c.host.Eng.Cancel(c.rtxEv)
	c.state = StateClosed
	delete(c.host.conns, c.key)
}

// ImportTCB reconstructs a connection in this stack from a snapshot.
// The local IP must match the stack's address (the unikernel owns the
// service IP the proxy was answering for). Buffered payload is queued
// for the application's OnData.
func (h *Host) ImportTCB(t *TCB) (*TCPConn, error) {
	if !h.HasIP(t.LocalIP) {
		return nil, fmt.Errorf("netstack: TCB local %v != stack %v", t.LocalIP, h.IP)
	}
	key := fourTuple{localIP: t.LocalIP, remoteIP: t.RemoteIP,
		localPort: t.LocalPort, remotePort: t.RemotePort}
	if _, exists := h.conns[key]; exists {
		return nil, fmt.Errorf("netstack: connection already exists for %v", key)
	}
	c := &TCPConn{
		host:   h,
		key:    key,
		iss:    t.ISS,
		irs:    t.IRS,
		sndUna: t.ISS, // SYN(-ACK) not yet acknowledged in SYN_ACK state
		sndNxt: t.SndNxt,
		rcvNxt: t.RcvNxt,
		sndWnd: t.Window,
		mss:    DefaultMSS,
		rto:    dataRTO,
	}
	switch t.State {
	case TCBStateSYNACK:
		c.state = StateSynRcvd
		c.armRtx()
	case TCBStateEstablished:
		c.state = StateEstablished
		c.sndUna = t.SndNxt
	default:
		return nil, fmt.Errorf("netstack: cannot import TCB state %q", t.State)
	}
	if len(t.Buffered) > 0 {
		c.pendingData = append(c.pendingData, append([]byte(nil), t.Buffered...))
	}
	h.conns[key] = c
	return c, nil
}

// Encode renders the s-expression form stored in XenStore.
func (t *TCB) Encode() string {
	var b strings.Builder
	b.WriteByte('(')
	field := func(k, v string) { fmt.Fprintf(&b, "(%s %s)", k, v) }
	field("state", t.State)
	field("src", t.RemoteIP.String()) // "src" is the *client*, as in Fig 7
	field("sport", strconv.Itoa(int(t.RemotePort)))
	field("dst", t.LocalIP.String())
	field("dport", strconv.Itoa(int(t.LocalPort)))
	field("iss", strconv.FormatUint(uint64(t.ISS), 10))
	field("irs", strconv.FormatUint(uint64(t.IRS), 10))
	field("snd-nxt", strconv.FormatUint(uint64(t.SndNxt), 10))
	field("rcv-nxt", strconv.FormatUint(uint64(t.RcvNxt), 10))
	field("wnd", strconv.Itoa(int(t.Window)))
	if len(t.Buffered) > 0 {
		field("buf", hex.EncodeToString(t.Buffered))
	}
	b.WriteByte(')')
	return b.String()
}

// ParseTCB parses the s-expression form.
func ParseTCB(s string) (*TCB, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil, ErrBadTCB
	}
	inner := s[1 : len(s)-1]
	t := &TCB{}
	for len(inner) > 0 {
		inner = strings.TrimSpace(inner)
		if inner == "" {
			break
		}
		if inner[0] != '(' {
			return nil, ErrBadTCB
		}
		end := strings.IndexByte(inner, ')')
		if end < 0 {
			return nil, ErrBadTCB
		}
		pair := strings.Fields(inner[1:end])
		inner = inner[end+1:]
		if len(pair) != 2 {
			return nil, ErrBadTCB
		}
		k, v := pair[0], pair[1]
		switch k {
		case "state":
			t.State = v
		case "src":
			ip, ok := ParseIP(v)
			if !ok {
				return nil, ErrBadTCB
			}
			t.RemoteIP = ip
		case "dst":
			ip, ok := ParseIP(v)
			if !ok {
				return nil, ErrBadTCB
			}
			t.LocalIP = ip
		case "sport", "dport", "wnd":
			n, err := strconv.ParseUint(v, 10, 16)
			if err != nil {
				return nil, ErrBadTCB
			}
			switch k {
			case "sport":
				t.RemotePort = uint16(n)
			case "dport":
				t.LocalPort = uint16(n)
			case "wnd":
				t.Window = uint16(n)
			}
		case "iss", "irs", "snd-nxt", "rcv-nxt":
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				return nil, ErrBadTCB
			}
			switch k {
			case "iss":
				t.ISS = uint32(n)
			case "irs":
				t.IRS = uint32(n)
			case "snd-nxt":
				t.SndNxt = uint32(n)
			case "rcv-nxt":
				t.RcvNxt = uint32(n)
			}
		case "buf":
			buf, err := hex.DecodeString(v)
			if err != nil {
				return nil, ErrBadTCB
			}
			t.Buffered = buf
		default:
			// Unknown fields are ignored for forward compatibility.
		}
	}
	if t.State == "" {
		return nil, ErrBadTCB
	}
	return t, nil
}
