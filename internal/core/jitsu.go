package core

import (
	"errors"
	"fmt"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// ErrNoSuchService is returned for lookups of unregistered names.
var ErrNoSuchService = errors.New("core: no such service")

// ErrNoMemory is returned when a board cannot fit a service's image —
// the condition §3.3.2 surfaces to clients as a DNS SERVFAIL.
var ErrNoMemory = errors.New("core: insufficient memory for image")

// ServiceState tracks a service's lifecycle.
type ServiceState int

// Service states.
const (
	// StateStopped: no VM; traffic triggers a launch.
	StateStopped ServiceState = iota
	// StateLaunching: domain building / guest booting.
	StateLaunching
	// StateReady: unikernel serving.
	StateReady
)

func (s ServiceState) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateLaunching:
		return "launching"
	default:
		return "ready"
	}
}

// ServiceConfig maps a DNS name to a unikernel, IP, protocol and port —
// §3.3.2: "the Jitsu services are statically configured ... to map
// their unikernel with an IP address, protocol and port."
type ServiceConfig struct {
	Name  string // FQDN, e.g. alice.family.name
	IP    netstack.IP
	Port  uint16
	Image unikernel.Image
	// TTL for the DNS answer.
	TTL uint32
	// IdleTimeout stops the VM after this much inactivity; 0 = never.
	IdleTimeout sim.Duration
}

// Service is a registered service and its live state.
type Service struct {
	Cfg   ServiceConfig
	State ServiceState
	Guest *unikernel.Guest

	lastActivity sim.Duration
	launchStart  sim.Duration
	waiters      []func(ok bool) // readiness waiters (delayed DNS, control plane)
	// retired marks a deregistered service: an in-flight boot must tear
	// its guest down on completion instead of resurrecting the entry.
	retired bool
	// bootSpan is the in-flight boot/restore span on the board's tracer
	// (zero when tracing is off or no launch is in flight).
	bootSpan obs.Span

	// answerRR is the service's pre-built DNS answer: the positive
	// response never varies per query, so the hot path reuses it (and
	// the DNS server caches its wire encoding) instead of rebuilding it.
	answerRR dns.RR
	// okLine is the pre-rendered jitsud-protocol success line,
	// "ok <ip>\n", so handleResolve does not fmt.Sprintf per hit.
	okLine string

	// Counters for the evaluation.
	Launches   uint64
	ColdStarts uint64 // requests that triggered a launch
	Handoffs   uint64 // connections handed over from Synjitsu
	ServFails  uint64
	Reaps      uint64
	Restores   uint64 // launches that replayed a migration checkpoint
}

// sumCounters totals one per-service counter across the directory —
// the registry's snapshot-time mirror of activation accounting. Sum
// order does not matter, so ranging the map stays deterministic.
func (j *Jitsu) sumCounters(get func(*Service) uint64) uint64 {
	var n uint64
	for _, svc := range j.services {
		n += get(svc)
	}
	return n
}

// Jitsu is the directory service: "the Xen equivalent of the venerable
// inetd service on Unix, but instead of starting a process in response
// to incoming traffic, it starts a unikernel". Signal handling lives in
// the Trigger frontends (trigger.go); the lifecycle lives in the
// Activation machine (activation.go); Jitsu itself is the directory
// plus the typed control-plane verbs the api package exposes.
type Jitsu struct {
	board    *Board
	zone     *dns.Zone
	act      *Activation
	services map[string]*Service
	byIP     map[netstack.IP]*Service
}

func newJitsu(b *Board, zone *dns.Zone) *Jitsu {
	j := &Jitsu{board: b, zone: zone,
		services: make(map[string]*Service),
		byIP:     make(map[netstack.IP]*Service)}
	j.act = newActivation(j)
	var front Trigger
	if b.Cfg.DelayDNSUntilReady {
		front = &asyncDNSTrigger{j: j}
	} else {
		front = &dnsTrigger{j: j}
	}
	builtins := []Trigger{front, &conduitTrigger{j: j}}
	if b.Syn != nil {
		builtins = append(builtins, &synTrigger{j: j})
	}
	for _, t := range builtins {
		if err := t.Attach(b); err != nil {
			panic(fmt.Sprintf("core: attach %s trigger: %v", t.Name(), err))
		}
		b.triggers = append(b.triggers, t)
	}
	return j
}

// Activation exposes the board's shared activation state machine (the
// seam every Trigger frontend fires).
func (j *Jitsu) Activation() *Activation { return j.act }

// Summon fires the activation machine for svc on behalf of a trigger
// frontend — the single entry point behind the DNS, SYN, conduit,
// cluster and prewarm paths.
func (j *Jitsu) Summon(svc *Service, s Summon) Decision { return j.act.Fire(svc, s) }

// Register adds a service to the directory. The VM is not started —
// that is the whole point.
func (j *Jitsu) Register(cfg ServiceConfig) *Service {
	name := dns.CanonicalName(cfg.Name)
	cfg.Name = name
	if cfg.TTL == 0 {
		cfg.TTL = 10
	}
	svc := &Service{Cfg: cfg, State: StateStopped}
	svc.answerRR = dns.RR{
		Name: cfg.Name, Type: dns.TypeA, Class: dns.ClassIN,
		TTL: cfg.TTL, A: cfg.IP,
	}
	svc.okLine = fmt.Sprintf("ok %s\n", cfg.IP)
	j.services[name] = svc
	j.byIP[cfg.IP] = svc
	j.act.claimIdleIP(svc)
	// A new registration changes what queries resolve to.
	j.board.DNS.BumpEpoch()
	return svc
}

// Service looks a service up by name.
func (j *Jitsu) Service(name string) (*Service, error) {
	svc, ok := j.services[dns.CanonicalName(name)]
	if !ok {
		return nil, ErrNoSuchService
	}
	return svc, nil
}

// Services returns a snapshot of the registered services, keyed by
// canonical name. The map is a copy — mutating it does not touch the
// directory — but the *Service values are the live entries.
func (j *Jitsu) Services() map[string]*Service {
	out := make(map[string]*Service, len(j.services))
	for name, svc := range j.services {
		out[name] = svc
	}
	return out
}

// TriggerControl is the Summon.Via name for control-plane firings
// (Jitsu.Activate, api.ControlPlane.Activate, warm-pool prewarms).
const TriggerControl = "control"

// Activate is the control-plane summon used by a cluster scheduler (and
// the warm-pool manager): touch the service and launch it if stopped.
// coldStart distinguishes a client-driven launch (counted in ColdStarts)
// from a speculative prewarm. Returns ErrNoMemory — without counting a
// ServFail, that is the caller's policy decision — when the image does
// not fit. onReady may be nil.
func (j *Jitsu) Activate(svc *Service, coldStart bool, onReady func(error)) error {
	switch j.act.Fire(svc, Summon{Via: TriggerControl, ColdStart: coldStart, OnReady: onReady}) {
	case DecisionRetired:
		return ErrNoSuchService
	case DecisionNoMemory:
		return ErrNoMemory
	}
	return nil
}

// Checkpoint is the state captured from a ready replica for live
// migration: the image to rebuild the domain from plus the memory that
// must be copied to the destination board.
type Checkpoint struct {
	Image unikernel.Image
	// StateMiB is the dirty guest memory the migration has to move.
	StateMiB int
}

// Checkpoint captures a ready service's state for live migration. The
// source keeps serving (pre-copy style); ok is false unless the service
// is Ready.
func (j *Jitsu) Checkpoint(svc *Service) (*Checkpoint, bool) {
	if svc.State != StateReady {
		return nil, false
	}
	return &Checkpoint{Image: svc.Cfg.Image, StateMiB: svc.Cfg.Image.MemMiB}, true
}

// Restore is Activate for a migrated-in replica: the domain is rebuilt
// from the checkpoint and the guest resumes instead of cold-booting, so
// readiness arrives at a fraction of the usual boot latency. Counted in
// Restores, not ColdStarts.
func (j *Jitsu) Restore(svc *Service, cp *Checkpoint, onReady func(error)) error {
	return j.act.restore(svc, cp, onReady)
}

// Deregister removes a service from this board's directory: the VM (if
// any) is destroyed, the IP leaves proxy control, and the DNS state
// epoch moves so no cached answer survives. Used when a board leaves the
// cluster and its replica slots are retired. Reports whether the name
// was registered here.
func (j *Jitsu) Deregister(svc *Service) bool {
	name := svc.Cfg.Name
	if j.services[name] != svc {
		return false
	}
	svc.retired = true
	if svc.State == StateReady {
		j.act.stopNow(svc, nil) // re-claims the IP; released just below
	}
	j.act.flushWaiters(svc, false)
	j.act.releaseIdleIP(svc)
	delete(j.services, name)
	delete(j.byIP, svc.Cfg.IP)
	// The SYN trigger's admission state is keyed by service: drop the
	// retired entry so churny directories don't accumulate buckets.
	for _, t := range j.board.triggers {
		if st, ok := t.(*synTrigger); ok && st.admit != nil {
			delete(st.admit.buckets, svc)
		}
	}
	j.board.DNS.BumpEpoch()
	return true
}

// Stop destroys a ready service's VM and returns its IP to proxy
// control — the explicit counterpart of the idle reaper, used by the
// cluster warm-pool manager to reclaim over-provisioned replicas. It
// reports whether a VM was actually stopped.
func (j *Jitsu) Stop(svc *Service) bool { return j.StopWith(svc, nil) }

// StopWith is Stop with a completion hook: done (may be nil) fires once
// the domain is destroyed and its memory is back in the free pool —
// the point at which a preempting scheduler can place a replacement.
func (j *Jitsu) StopWith(svc *Service, done func()) bool {
	if svc.State != StateReady {
		return false
	}
	j.act.stopNow(svc, done)
	return true
}
