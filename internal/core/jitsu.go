package core

import (
	"errors"
	"fmt"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

// ErrNoSuchService is returned for lookups of unregistered names.
var ErrNoSuchService = errors.New("core: no such service")

// ErrNoMemory is returned when a board cannot fit a service's image —
// the condition §3.3.2 surfaces to clients as a DNS SERVFAIL.
var ErrNoMemory = errors.New("core: insufficient memory for image")

// ErrNoDisk is returned for demotions on a board without a block
// device.
var ErrNoDisk = errors.New("core: board has no disk")

// ErrDiskFull is returned when the board's checkpoint store cannot fit
// another checkpoint — callers fall back to full eviction.
var ErrDiskFull = errors.New("core: disk checkpoint store full")

// ErrNotBooted is returned for demotions of a service without a live
// VM.
var ErrNotBooted = errors.New("core: service not booted")

// ErrNotOnDisk is returned for promotions of a service that has no
// disk-resident checkpoint.
var ErrNotOnDisk = errors.New("core: service not checkpointed to disk")

// ServiceState is the typed replica lifecycle: which tier a service
// occupies. The activation machine is the only writer; every internal
// call site branches on the enum (via the tier helpers below), never on
// counters.
type ServiceState int

// The service lifecycle. A replica moves
// running ↔ warm-in-memory → cold-on-disk → cold, with Launching the
// transient between a launch leg (boot, restore, disk restore) and its
// completion.
const (
	// StateCold: no VM, no checkpoint; traffic triggers a full boot.
	StateCold ServiceState = iota
	// StateLaunching: domain building / guest booting or restoring.
	StateLaunching
	// StateRunning: unikernel booted and serving client-driven traffic.
	StateRunning
	// StateWarmMemory: unikernel booted and memory-resident, but the
	// last launch was speculative (prewarm, warm pool, migration) and no
	// client has hit it yet. A client-driven firing promotes it to
	// Running without any launch cost — the warm hit.
	StateWarmMemory
	// StateColdDisk: no VM; the replica's state is checkpointed on the
	// board's block device. Traffic triggers a disk restore — priced
	// between a warm restore and a full boot.
	StateColdDisk
)

// Deprecated lifecycle aliases from the two-tier era. StateStopped
// predates the disk tier (use StateCold, or NeedsLaunch to include
// disk-resident replicas); StateReady predates the running/warm split
// (use Booted, which covers both memory-resident tiers).
const (
	// Deprecated: use StateCold (or ServiceState.NeedsLaunch).
	StateStopped = StateCold
	// Deprecated: use StateRunning (or ServiceState.Booted).
	StateReady = StateRunning
)

func (s ServiceState) String() string {
	switch s {
	case StateCold:
		return "cold"
	case StateLaunching:
		return "launching"
	case StateRunning:
		return "running"
	case StateWarmMemory:
		return "warm-memory"
	case StateColdDisk:
		return "cold-disk"
	default:
		return "invalid"
	}
}

// Booted reports whether the replica has a live VM (Running or
// WarmMemory) — the "can serve traffic right now" predicate.
func (s ServiceState) Booted() bool {
	return s == StateRunning || s == StateWarmMemory
}

// NeedsLaunch reports whether a firing must start a launch leg to serve
// (Cold: full boot; ColdDisk: disk restore).
func (s ServiceState) NeedsLaunch() bool {
	return s == StateCold || s == StateColdDisk
}

// Resident reports whether the replica occupies board resources: memory
// (Booted or Launching) or disk slots (ColdDisk). Only a fully cold
// service is non-resident.
func (s ServiceState) Resident() bool { return s != StateCold }

// ServiceConfig maps a DNS name to a unikernel, IP, protocol and port —
// §3.3.2: "the Jitsu services are statically configured ... to map
// their unikernel with an IP address, protocol and port."
type ServiceConfig struct {
	Name  string // FQDN, e.g. alice.family.name
	IP    netstack.IP
	Port  uint16
	Image unikernel.Image
	// TTL for the DNS answer.
	TTL uint32
	// IdleTimeout stops the VM after this much inactivity; 0 = never.
	IdleTimeout sim.Duration
	// StateMiB is the live guest state a checkpoint captures — dirty
	// heap plus device state, NOT the boot image. Checkpoint copies and
	// disk slots are sized by this; 0 defaults to a quarter of the image
	// memory (minimum 1 MiB) at registration.
	StateMiB int
}

// StateSizeMiB resolves the effective checkpoint size: StateMiB when
// set, else a quarter of the image memory (minimum 1 MiB). Live state
// is the dirty working set, not the boot image — a unikernel's heap
// runs a fraction of its memory reservation.
func (cfg ServiceConfig) StateSizeMiB() int {
	if cfg.StateMiB > 0 {
		return cfg.StateMiB
	}
	s := cfg.Image.MemMiB / 4
	if s < 1 {
		s = 1
	}
	return s
}

// Service is a registered service and its live state.
type Service struct {
	Cfg   ServiceConfig
	State ServiceState
	Guest *unikernel.Guest

	lastActivity sim.Duration
	launchStart  sim.Duration
	waiters      []func(ok bool) // readiness waiters (delayed DNS, control plane)
	// retired marks a deregistered service: an in-flight boot must tear
	// its guest down on completion instead of resurrecting the entry.
	retired bool
	// bootSpan is the in-flight boot/restore span on the board's tracer
	// (zero when tracing is off or no launch is in flight).
	bootSpan obs.Span

	// answerRR is the service's pre-built DNS answer: the positive
	// response never varies per query, so the hot path reuses it (and
	// the DNS server caches its wire encoding) instead of rebuilding it.
	answerRR dns.RR
	// okLine is the pre-rendered jitsud-protocol success line,
	// "ok <ip>\n", so handleResolve does not fmt.Sprintf per hit.
	okLine string

	// launchTarget is the tier an in-flight launch completes into:
	// Running for a client-driven launch, WarmMemory for a speculative
	// one. A client-driven firing that joins an in-flight speculative
	// launch upgrades it.
	launchTarget ServiceState
	// disk is the replica's disk-resident checkpoint (ColdDisk tier);
	// nil otherwise.
	disk *diskCheckpoint

	// Counters for the evaluation.
	Launches     uint64
	ColdStarts   uint64 // requests that triggered a full boot
	Handoffs     uint64 // connections handed over from Synjitsu
	ServFails    uint64
	Reaps        uint64
	Restores     uint64 // launches that replayed a migration checkpoint
	DiskRestores uint64 // launches that paged a checkpoint in from disk
	Demotions    uint64 // checkpoint-to-disk evictions of a booted VM
}

// diskCheckpoint is a checkpoint parked on the board's block device:
// the captured state plus the slots it occupies.
type diskCheckpoint struct {
	cp    Checkpoint
	slots []int
	// durable flips when the device write completes; a handoff that
	// copies the checkpoint off-board needs the bytes, a local promote
	// is serialized behind the write by the device's FIFO queue.
	durable bool
}

// LastActivity is the virtual time of the service's most recent
// client-driven touch — the recency key LRU demotion orders on.
func (s *Service) LastActivity() sim.Duration { return s.lastActivity }

// sumCounters totals one per-service counter across the directory —
// the registry's snapshot-time mirror of activation accounting. Sum
// order does not matter, so ranging the map stays deterministic.
func (j *Jitsu) sumCounters(get func(*Service) uint64) uint64 {
	var n uint64
	for _, svc := range j.services {
		n += get(svc)
	}
	return n
}

// Jitsu is the directory service: "the Xen equivalent of the venerable
// inetd service on Unix, but instead of starting a process in response
// to incoming traffic, it starts a unikernel". Signal handling lives in
// the Trigger frontends (trigger.go); the lifecycle lives in the
// Activation machine (activation.go); Jitsu itself is the directory
// plus the typed control-plane verbs the api package exposes.
type Jitsu struct {
	board    *Board
	zone     *dns.Zone
	act      *Activation
	services map[string]*Service
	byIP     map[netstack.IP]*Service
}

func newJitsu(b *Board, zone *dns.Zone) *Jitsu {
	j := &Jitsu{board: b, zone: zone,
		services: make(map[string]*Service),
		byIP:     make(map[netstack.IP]*Service)}
	j.act = newActivation(j)
	var front Trigger
	if b.Cfg.DelayDNSUntilReady {
		front = &asyncDNSTrigger{j: j}
	} else {
		front = &dnsTrigger{j: j}
	}
	builtins := []Trigger{front, &conduitTrigger{j: j}}
	if b.Syn != nil {
		builtins = append(builtins, &synTrigger{j: j})
	}
	for _, t := range builtins {
		if err := t.Attach(b); err != nil {
			panic(fmt.Sprintf("core: attach %s trigger: %v", t.Name(), err))
		}
		b.triggers = append(b.triggers, t)
	}
	return j
}

// Activation exposes the board's shared activation state machine (the
// seam every Trigger frontend fires).
func (j *Jitsu) Activation() *Activation { return j.act }

// Summon fires the activation machine for svc on behalf of a trigger
// frontend — the single entry point behind the DNS, SYN, conduit,
// cluster and prewarm paths.
func (j *Jitsu) Summon(svc *Service, s Summon) Decision { return j.act.Fire(svc, s) }

// Register adds a service to the directory. The VM is not started —
// that is the whole point.
func (j *Jitsu) Register(cfg ServiceConfig) *Service {
	name := dns.CanonicalName(cfg.Name)
	cfg.Name = name
	if cfg.TTL == 0 {
		cfg.TTL = 10
	}
	cfg.StateMiB = cfg.StateSizeMiB()
	svc := &Service{Cfg: cfg, State: StateCold}
	svc.answerRR = dns.RR{
		Name: cfg.Name, Type: dns.TypeA, Class: dns.ClassIN,
		TTL: cfg.TTL, A: cfg.IP,
	}
	svc.okLine = fmt.Sprintf("ok %s\n", cfg.IP)
	j.services[name] = svc
	j.byIP[cfg.IP] = svc
	j.act.claimIdleIP(svc)
	// A new registration changes what queries resolve to.
	j.board.DNS.BumpEpoch()
	return svc
}

// Service looks a service up by name.
func (j *Jitsu) Service(name string) (*Service, error) {
	svc, ok := j.services[dns.CanonicalName(name)]
	if !ok {
		return nil, ErrNoSuchService
	}
	return svc, nil
}

// Services returns a snapshot of the registered services, keyed by
// canonical name. The map is a copy — mutating it does not touch the
// directory — but the *Service values are the live entries.
func (j *Jitsu) Services() map[string]*Service {
	out := make(map[string]*Service, len(j.services))
	for name, svc := range j.services {
		out[name] = svc
	}
	return out
}

// TriggerControl is the Summon.Via name for control-plane firings
// (Jitsu.Activate, api.ControlPlane.Activate, warm-pool prewarms).
const TriggerControl = "control"

// Activate is the control-plane summon used by a cluster scheduler (and
// the warm-pool manager): touch the service and launch it if stopped.
// coldStart distinguishes a client-driven launch (counted in ColdStarts)
// from a speculative prewarm. Returns ErrNoMemory — without counting a
// ServFail, that is the caller's policy decision — when the image does
// not fit. onReady may be nil.
func (j *Jitsu) Activate(svc *Service, coldStart bool, onReady func(error)) error {
	switch j.act.Fire(svc, Summon{Via: TriggerControl, ColdStart: coldStart, OnReady: onReady}) {
	case DecisionRetired:
		return ErrNoSuchService
	case DecisionNoMemory:
		return ErrNoMemory
	}
	return nil
}

// Touch records client-driven activity served without firing the board
// machine — the cluster scheduler's warm-hit fast path answers from the
// directory alone. It bumps the LRU clock (so demotion sees the
// replica as hot) and takes WarmMemory to Running, the same promotion a
// client-driven Fire applies.
func (j *Jitsu) Touch(svc *Service) {
	j.act.touch(svc)
	if svc.State == StateWarmMemory {
		j.act.setState(svc, StateRunning)
	}
}

// Checkpoint is the state captured from a booted replica for live
// migration or demotion: the image to rebuild the domain from plus the
// live guest state that must be copied (or written to disk).
type Checkpoint struct {
	Image unikernel.Image
	// StateMiB is the dirty guest state the transfer has to move —
	// ServiceConfig.StateMiB, not the boot image size.
	StateMiB int
}

// Checkpoint captures a service's state for live migration. A booted
// replica is captured live (the source keeps serving, pre-copy style);
// a disk-resident replica returns its stored checkpoint without paging
// anything in. ok is false for every other tier.
func (j *Jitsu) Checkpoint(svc *Service) (*Checkpoint, bool) {
	if svc.State == StateColdDisk {
		cp := svc.disk.cp
		return &cp, true
	}
	if !svc.State.Booted() {
		return nil, false
	}
	return &Checkpoint{Image: svc.Cfg.Image, StateMiB: svc.Cfg.StateMiB}, true
}

// Restore is Activate for a migrated-in replica: the domain is rebuilt
// from the checkpoint and the guest resumes instead of cold-booting, so
// readiness arrives at a fraction of the usual boot latency. Counted in
// Restores, not ColdStarts.
func (j *Jitsu) Restore(svc *Service, cp *Checkpoint, onReady func(error)) error {
	return j.act.restore(svc, cp, onReady)
}

// Deregister removes a service from this board's directory: the VM (if
// any) is destroyed, the IP leaves proxy control, and the DNS state
// epoch moves so no cached answer survives. Used when a board leaves the
// cluster and its replica slots are retired. Reports whether the name
// was registered here.
func (j *Jitsu) Deregister(svc *Service) bool {
	name := svc.Cfg.Name
	if j.services[name] != svc {
		return false
	}
	svc.retired = true
	if svc.State.Booted() {
		j.act.stopNow(svc, nil) // re-claims the IP; released just below
	}
	j.act.dropDiskCheckpoint(svc)
	j.act.flushWaiters(svc, false)
	j.act.releaseIdleIP(svc)
	delete(j.services, name)
	delete(j.byIP, svc.Cfg.IP)
	// The SYN trigger's admission state is keyed by service: drop the
	// retired entry so churny directories don't accumulate buckets.
	for _, t := range j.board.triggers {
		if st, ok := t.(*synTrigger); ok && st.admit != nil {
			delete(st.admit.buckets, svc)
		}
	}
	j.board.DNS.BumpEpoch()
	return true
}

// Evict is the full eviction: a booted replica's VM is destroyed (its
// warm state discarded), a disk-resident replica's checkpoint slots are
// freed. The service returns to Cold either way. It reports whether
// anything was actually evicted — false for Cold and Launching
// replicas. The explicit counterpart of the idle reaper; demotion
// (Demote) is the gentler default and callers fall back here on
// ErrNoDisk / ErrDiskFull.
func (j *Jitsu) Evict(svc *Service) bool { return j.EvictWith(svc, nil) }

// EvictWith is Evict with a completion hook: done (may be nil) fires
// once the domain is destroyed and its memory is back in the free
// pool — the point at which a preempting scheduler can place a
// replacement. For a disk-resident replica the slots free synchronously
// and done fires inline.
func (j *Jitsu) EvictWith(svc *Service, done func()) bool {
	switch {
	case svc.State.Booted():
		j.act.stopNow(svc, done)
		return true
	case svc.State == StateColdDisk:
		j.act.dropDiskCheckpoint(svc)
		j.act.setState(svc, StateCold)
		if done != nil {
			done()
		}
		return true
	}
	return false
}

// Demote checkpoints a booted replica to the board's block device and
// destroys its VM: warm-in-memory → cold-on-disk. The freed memory is
// the point of the exercise — a later activation restores from disk at
// a fraction of the full boot cost. Returns ErrNotBooted for replicas
// without a live VM (including one whose launch is still in flight),
// ErrNoDisk on a diskless board, and ErrDiskFull when the checkpoint
// store cannot take another replica (callers fall back to Evict).
func (j *Jitsu) Demote(svc *Service) error { return j.DemoteWith(svc, nil) }

// DemoteWith is Demote with a completion hook: done (may be nil) fires
// once the domain is destroyed and its memory is back in the free pool.
// The checkpoint's disk write continues asynchronously after that — a
// promote issued meanwhile is serialized behind it by the device's FIFO
// queue.
func (j *Jitsu) DemoteWith(svc *Service, done func()) error {
	return j.act.demote(svc, done)
}

// Promote pages a disk-resident replica back into memory:
// cold-on-disk → warm-in-memory (disk read, then a restore-priced
// launch). onReady (may be nil) fires when the unikernel serves.
// Returns ErrNotOnDisk unless the service is ColdDisk and ErrNoMemory
// when the image does not fit in RAM.
func (j *Jitsu) Promote(svc *Service, onReady func(error)) error {
	return j.act.promote(svc, StateWarmMemory, onReady)
}

// AdoptCheckpoint parks an incoming checkpoint (a migration or
// federation handoff) directly on this board's disk without booting it:
// cold → cold-on-disk. The replica serves later activations via the
// disk-restore path. Returns ErrNoDisk / ErrDiskFull like Demote, and
// an error for replicas that are not Cold.
func (j *Jitsu) AdoptCheckpoint(svc *Service, cp *Checkpoint) error {
	return j.act.adoptCheckpoint(svc, cp)
}
