package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"jitsu/internal/conduit"
	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xenstore"
)

// ErrNoSuchService is returned for lookups of unregistered names.
var ErrNoSuchService = errors.New("core: no such service")

// ErrNoMemory is returned when a board cannot fit a service's image —
// the condition §3.3.2 surfaces to clients as a DNS SERVFAIL.
var ErrNoMemory = errors.New("core: insufficient memory for image")

// ServiceState tracks a service's lifecycle.
type ServiceState int

// Service states.
const (
	// StateStopped: no VM; traffic triggers a launch.
	StateStopped ServiceState = iota
	// StateLaunching: domain building / guest booting.
	StateLaunching
	// StateReady: unikernel serving.
	StateReady
)

func (s ServiceState) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateLaunching:
		return "launching"
	default:
		return "ready"
	}
}

// ServiceConfig maps a DNS name to a unikernel, IP, protocol and port —
// §3.3.2: "the Jitsu services are statically configured ... to map
// their unikernel with an IP address, protocol and port."
type ServiceConfig struct {
	Name  string // FQDN, e.g. alice.family.name
	IP    netstack.IP
	Port  uint16
	Image unikernel.Image
	// TTL for the DNS answer.
	TTL uint32
	// IdleTimeout stops the VM after this much inactivity; 0 = never.
	IdleTimeout sim.Duration
}

// Service is a registered service and its live state.
type Service struct {
	Cfg   ServiceConfig
	State ServiceState
	Guest *unikernel.Guest

	lastActivity sim.Duration
	launchStart  sim.Duration
	waiters      []func(ok bool) // delayed-DNS responders (ablation)
	// retired marks a deregistered service: an in-flight boot must tear
	// its guest down on completion instead of resurrecting the entry.
	retired bool

	// answerRR is the service's pre-built DNS answer: the positive
	// response never varies per query, so the hot path reuses it (and
	// the DNS server caches its wire encoding) instead of rebuilding it.
	answerRR dns.RR
	// okLine is the pre-rendered jitsud-protocol success line,
	// "ok <ip>\n", so handleResolve does not fmt.Sprintf per hit.
	okLine string

	// Counters for the evaluation.
	Launches   uint64
	ColdStarts uint64 // requests that triggered a launch
	Handoffs   uint64 // connections handed over from Synjitsu
	ServFails  uint64
	Reaps      uint64
	Restores   uint64 // launches that replayed a migration checkpoint
}

// Jitsu is the directory service: "the Xen equivalent of the venerable
// inetd service on Unix, but instead of starting a process in response
// to incoming traffic, it starts a unikernel".
type Jitsu struct {
	board    *Board
	zone     *dns.Zone
	services map[string]*Service
	byIP     map[netstack.IP]*Service
}

func newJitsu(b *Board, zone *dns.Zone) *Jitsu {
	j := &Jitsu{board: b, zone: zone,
		services: make(map[string]*Service),
		byIP:     make(map[netstack.IP]*Service)}
	if b.Cfg.DelayDNSUntilReady {
		b.DNS.InterceptAsync = j.interceptAsync
	} else {
		b.DNS.Intercept = j.intercept
		b.DNS.FastIntercept = j.fastIntercept
	}
	j.registerConduitEndpoint()
	return j
}

// Register adds a service to the directory. The VM is not started —
// that is the whole point.
func (j *Jitsu) Register(cfg ServiceConfig) *Service {
	name := dns.CanonicalName(cfg.Name)
	cfg.Name = name
	if cfg.TTL == 0 {
		cfg.TTL = 10
	}
	svc := &Service{Cfg: cfg, State: StateStopped}
	svc.answerRR = dns.RR{
		Name: cfg.Name, Type: dns.TypeA, Class: dns.ClassIN,
		TTL: cfg.TTL, A: cfg.IP,
	}
	svc.okLine = fmt.Sprintf("ok %s\n", cfg.IP)
	j.services[name] = svc
	j.byIP[cfg.IP] = svc
	j.claimIdleIP(svc)
	// A new registration changes what queries resolve to.
	j.board.DNS.BumpEpoch()
	return svc
}

// Service looks a service up by name.
func (j *Jitsu) Service(name string) (*Service, error) {
	svc, ok := j.services[dns.CanonicalName(name)]
	if !ok {
		return nil, ErrNoSuchService
	}
	return svc, nil
}

// Services returns all registered services (stable order not needed by
// callers; they index by name).
func (j *Jitsu) Services() map[string]*Service { return j.services }

// claimIdleIP puts a stopped service's address under proxy control:
// Synjitsu aliases it (full handshake), or — without Synjitsu — the
// directory host answers only ARP so SYNs transmit and die, the
// baseline behaviour of Figure 9a.
func (j *Jitsu) claimIdleIP(svc *Service) {
	if j.board.Syn != nil {
		j.board.Syn.claim(svc)
	} else {
		j.board.NS.ProxyARPFor(svc.Cfg.IP)
		j.board.NS.AnnounceIP(svc.Cfg.IP)
	}
}

// releaseIdleIP undoes claimIdleIP when the real unikernel takes over.
func (j *Jitsu) releaseIdleIP(svc *Service) {
	if j.board.Syn != nil {
		j.board.Syn.release(svc)
	} else {
		j.board.NS.RemoveProxyARP(svc.Cfg.IP)
	}
}

// touch records service activity for the idle reaper.
func (j *Jitsu) touch(svc *Service) {
	svc.lastActivity = j.board.Eng.Now()
}

// intercept is the synchronous DNS hook: answer immediately, launching
// as a side effect — "returning a DNS response as soon as the VM
// resource allocation is complete".
func (j *Jitsu) intercept(q dns.Question, resp *dns.Message) bool {
	if q.Type != dns.TypeA && q.Type != dns.TypeANY {
		return false
	}
	svc, ok := j.services[dns.CanonicalName(q.Name)]
	if !ok {
		return false
	}
	j.touch(svc)
	if svc.State == StateStopped {
		if j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			// "resource exhaustion can thus be returned in the DNS
			// response as a SERVFAIL to indicate the client should go
			// elsewhere".
			svc.ServFails++
			resp.RCode = dns.RCodeServFail
			return true
		}
		svc.ColdStarts++
		j.ensureRunning(svc, nil)
	}
	resp.Answers = append(resp.Answers, svc.answerRR)
	return true
}

// fastIntercept is the allocation-free twin of intercept, consulted on
// the DNS server's fast path. Same state machine, but the answer is the
// service's pre-built RR, which the server caches as pre-encoded wire.
func (j *Jitsu) fastIntercept(name []byte, typ dns.Type) (dns.Verdict, *dns.RR) {
	if typ != dns.TypeA && typ != dns.TypeANY {
		return dns.VerdictMiss, nil
	}
	svc, ok := j.services[string(name)] // alloc-free map probe
	if !ok {
		return dns.VerdictMiss, nil
	}
	j.touch(svc)
	if svc.State == StateStopped {
		if j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			svc.ServFails++
			return dns.VerdictServFail, nil
		}
		svc.ColdStarts++
		j.ensureRunning(svc, nil)
	}
	return dns.VerdictAnswer, &svc.answerRR
}

// interceptAsync is the rejected alternative (ablation): the DNS answer
// is held until the unikernel is ready, removing the SYN race at the
// cost of a much slower resolution.
func (j *Jitsu) interceptAsync(query *dns.Message, respond func(*dns.Message)) bool {
	if len(query.Questions) != 1 {
		return false
	}
	q := query.Questions[0]
	svc, ok := j.services[dns.CanonicalName(q.Name)]
	if !ok || (q.Type != dns.TypeA && q.Type != dns.TypeANY) {
		return false
	}
	j.touch(svc)
	answer := func(ok bool) {
		resp := &dns.Message{ID: query.ID, Response: true, Authoritative: true,
			Questions: query.Questions}
		if !ok {
			resp.RCode = dns.RCodeServFail
		} else {
			resp.Answers = append(resp.Answers, svc.answerRR)
		}
		respond(resp)
	}
	if svc.State == StateReady {
		answer(true)
		return true
	}
	if svc.State == StateStopped {
		if j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			svc.ServFails++
			answer(false)
			return true
		}
		svc.ColdStarts++
		j.ensureRunning(svc, nil)
	}
	svc.waiters = append(svc.waiters, answer)
	return true
}

// Activate is the control-plane summon used by a cluster scheduler (and
// the warm-pool manager): touch the service and launch it if stopped.
// coldStart distinguishes a client-driven launch (counted in ColdStarts)
// from a speculative prewarm. Returns ErrNoMemory — without counting a
// ServFail, that is the caller's policy decision — when the image does
// not fit. onReady may be nil.
func (j *Jitsu) Activate(svc *Service, coldStart bool, onReady func(error)) error {
	if svc.retired {
		return ErrNoSuchService
	}
	j.touch(svc)
	if svc.State == StateStopped {
		if j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			return ErrNoMemory
		}
		if coldStart {
			svc.ColdStarts++
		}
	}
	j.ensureRunning(svc, onReady)
	return nil
}

// Checkpoint is the state captured from a ready replica for live
// migration: the image to rebuild the domain from plus the memory that
// must be copied to the destination board.
type Checkpoint struct {
	Image unikernel.Image
	// StateMiB is the dirty guest memory the migration has to move.
	StateMiB int
}

// Checkpoint captures a ready service's state for live migration. The
// source keeps serving (pre-copy style); ok is false unless the service
// is Ready.
func (j *Jitsu) Checkpoint(svc *Service) (*Checkpoint, bool) {
	if svc.State != StateReady {
		return nil, false
	}
	return &Checkpoint{Image: svc.Cfg.Image, StateMiB: svc.Cfg.Image.MemMiB}, true
}

// Restore is Activate for a migrated-in replica: the domain is rebuilt
// from the checkpoint and the guest resumes instead of cold-booting, so
// readiness arrives at a fraction of the usual boot latency. Counted in
// Restores, not ColdStarts.
func (j *Jitsu) Restore(svc *Service, cp *Checkpoint, onReady func(error)) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if svc.State != StateStopped {
		return errors.New("core: restore target not stopped")
	}
	if j.board.Hyp.FreeMemMiB() < cp.Image.MemMiB {
		return ErrNoMemory
	}
	j.touch(svc)
	svc.Restores++
	j.launchVia(svc, j.board.Launcher.Restore, onReady)
	return nil
}

// Deregister removes a service from this board's directory: the VM (if
// any) is destroyed, the IP leaves proxy control, and the DNS state
// epoch moves so no cached answer survives. Used when a board leaves the
// cluster and its replica slots are retired. Reports whether the name
// was registered here.
func (j *Jitsu) Deregister(svc *Service) bool {
	name := svc.Cfg.Name
	if j.services[name] != svc {
		return false
	}
	svc.retired = true
	if svc.State == StateReady {
		j.stopNow(svc, nil) // re-claims the IP; released just below
	}
	j.flushWaiters(svc, false)
	j.releaseIdleIP(svc)
	delete(j.services, name)
	delete(j.byIP, svc.Cfg.IP)
	j.board.DNS.BumpEpoch()
	return true
}

// Stop destroys a ready service's VM and returns its IP to proxy
// control — the explicit counterpart of the idle reaper, used by the
// cluster warm-pool manager to reclaim over-provisioned replicas. It
// reports whether a VM was actually stopped.
func (j *Jitsu) Stop(svc *Service) bool { return j.StopWith(svc, nil) }

// StopWith is Stop with a completion hook: done (may be nil) fires once
// the domain is destroyed and its memory is back in the free pool —
// the point at which a preempting scheduler can place a replacement.
func (j *Jitsu) StopWith(svc *Service, done func()) bool {
	if svc.State != StateReady {
		return false
	}
	j.stopNow(svc, done)
	return true
}

// stopNow tears a ready service down: shared by Stop and the idle reaper.
func (j *Jitsu) stopNow(svc *Service, done func()) {
	svc.Reaps++
	g := svc.Guest
	svc.Guest = nil
	svc.State = StateStopped
	j.claimIdleIP(svc)
	j.board.Launcher.Destroy(g, func(error) {
		if done != nil {
			done()
		}
	})
}

// ensureRunning launches the service's unikernel if needed. onReady (may
// be nil) fires once the unikernel serves.
func (j *Jitsu) ensureRunning(svc *Service, onReady func(error)) {
	switch svc.State {
	case StateReady:
		if onReady != nil {
			onReady(nil)
		}
		return
	case StateLaunching:
		if onReady != nil {
			prev := svc.waiters
			svc.waiters = append(prev, func(ok bool) {
				if ok {
					onReady(nil)
				} else {
					onReady(errors.New("core: launch failed"))
				}
			})
		}
		return
	}
	j.launchVia(svc, j.board.Launcher.Launch, onReady)
}

// launchVia runs the launch state machine through the given boot path —
// Launcher.Launch for a cold start, Launcher.Restore for a migrated-in
// checkpoint. The caller guarantees svc is Stopped.
func (j *Jitsu) launchVia(svc *Service, launch func(unikernel.Image, netstack.IP, func(*unikernel.Guest, error)), onReady func(error)) {
	svc.State = StateLaunching
	svc.Launches++
	svc.launchStart = j.board.Eng.Now()
	launch(svc.Cfg.Image, svc.Cfg.IP, func(g *unikernel.Guest, err error) {
		if err != nil {
			svc.State = StateStopped
			j.flushWaiters(svc, false)
			if onReady != nil {
				onReady(err)
			}
			return
		}
		if svc.retired {
			// The directory dropped this service mid-boot (its board
			// departed): destroy the guest instead of resurrecting a
			// retired registration and leaking its domain.
			svc.State = StateStopped
			j.board.Launcher.Destroy(g, nil)
			j.flushWaiters(svc, false)
			if onReady != nil {
				onReady(errors.New("core: service deregistered during launch"))
			}
			return
		}
		svc.Guest = g
		// Two-phase handoff from the proxy happens inside this same
		// event, before any network event can interleave, so exactly
		// one of Synjitsu or the unikernel ever answers a given packet.
		j.releaseIdleIP(svc)
		svc.State = StateReady
		j.touch(svc)
		j.scheduleReap(svc)
		j.flushWaiters(svc, true)
		if onReady != nil {
			onReady(nil)
		}
	})
}

func (j *Jitsu) flushWaiters(svc *Service, ok bool) {
	ws := svc.waiters
	svc.waiters = nil
	for _, w := range ws {
		w(ok)
	}
}

// scheduleReap arms the idle timer: when the service has seen no
// activity for IdleTimeout, its VM is destroyed and the IP returns to
// proxy control — "services listening on a network endpoint are always
// available ... but are otherwise not running to reduce resource
// utilisation".
func (j *Jitsu) scheduleReap(svc *Service) {
	idle := svc.Cfg.IdleTimeout
	if idle <= 0 {
		return
	}
	eng := j.board.Eng
	deadline := svc.lastActivity + idle
	eng.At(deadline, func() {
		if svc.State != StateReady {
			return
		}
		if eng.Now()-svc.lastActivity < idle {
			j.scheduleReap(svc) // activity moved the deadline
			return
		}
		j.stopNow(svc, nil)
	})
}

// registerConduitEndpoint publishes the well-known jitsud name (§3.3:
// "the Jitsu resolver is discovered via a well-known jitsud Conduit
// node"). The protocol is line-based: "resolve <name>\n" →
// "ok <ip>\n" | "servfail\n" | "nxdomain\n".
func (j *Jitsu) registerConduitEndpoint() {
	_, err := j.board.Registry.Register(xenstore.Dom0, "jitsud", func(ep *conduit.Endpoint) {
		var buf []byte
		ep.OnData(func(b []byte) {
			buf = append(buf, b...)
			for {
				idx := bytes.IndexByte(buf, '\n')
				if idx < 0 {
					return
				}
				line := string(buf[:idx])
				buf = buf[idx+1:]
				ep.Write([]byte(j.handleResolve(line)))
			}
		})
	})
	if err != nil {
		panic(fmt.Sprintf("core: register jitsud: %v", err))
	}
}

func (j *Jitsu) handleResolve(line string) string {
	name, ok := strings.CutPrefix(line, "resolve ")
	if !ok {
		return "badrequest\n"
	}
	svc, err := j.Service(strings.TrimSpace(name))
	if err != nil {
		return "nxdomain\n"
	}
	j.touch(svc)
	if svc.State == StateStopped {
		if j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			svc.ServFails++
			return "servfail\n"
		}
		svc.ColdStarts++
		j.ensureRunning(svc, nil)
	}
	return svc.okLine
}
