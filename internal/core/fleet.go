package core

import (
	"errors"
	"fmt"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// Fleet implements §3.3.2's failover model: "Conventional failover
// models are supported — multiple ARM boards could be registered in the
// DNS and return SERVFAIL responses if they do not have resources to
// serve the traffic."
//
// Each board is an independent Jitsu host with its own simulation-level
// resources, all sharing one virtual-time engine (they sit on the same
// edge network). A resolving client walks the NS set: a board that
// cannot fit the service answers SERVFAIL and the client moves on.
type Fleet struct {
	Boards []*Board
}

// ErrAllServFail is returned when every board in the fleet refused.
var ErrAllServFail = errors.New("core: all boards returned SERVFAIL")

// NewFleet builds n boards that share one simulation engine (one
// coherent virtual time). Each board keeps its own bridge — they are
// separate hosts on the edge — and clients attach to every board's
// network through per-board attachments. Options apply to every board.
func NewFleet(n int, opts ...Option) *Fleet {
	f := &Fleet{}
	cfg := configFrom(opts)
	eng := simNew(cfg.Seed)
	for i := 0; i < n; i++ {
		f.Boards = append(f.Boards, buildBoard(eng, cfg))
	}
	return f
}

// RegisterEverywhere registers the same service on every board (each
// board can summon its own replica).
func (f *Fleet) RegisterEverywhere(sc ServiceConfig) []*Service {
	var out []*Service
	for _, b := range f.Boards {
		out = append(out, b.Jitsu.Register(sc))
	}
	return out
}

// FleetClient is a resolver that walks the fleet's nameservers on
// SERVFAIL, the conventional failover the paper describes.
type FleetClient struct {
	fleet *Fleet
	// hosts[i] is this client's attachment on board i's network.
	hosts []*netstack.Host
	// ServFails counts boards that refused during lookups.
	ServFails uint64
}

// NewClient attaches a client to every board's network.
func (f *Fleet) NewClient(name string, ip netstack.IP) *FleetClient {
	fc := &FleetClient{fleet: f}
	for i, b := range f.Boards {
		fc.hosts = append(fc.hosts, b.AddClient(fmt.Sprintf("%s-b%d", name, i), ip))
	}
	return fc
}

// Host returns the client's attachment on board i (for direct traffic
// after resolution).
func (fc *FleetClient) Host(i int) *netstack.Host { return fc.hosts[i] }

// Fetch resolves name with failover and fetches path from whichever
// board accepted. done reports the serving board index.
func (fc *FleetClient) Fetch(name, path string, timeout sim.Duration, done func(board int, resp *netstack.HTTPResponse, elapsed sim.Duration, err error)) {
	if len(fc.fleet.Boards) == 0 {
		done(-1, nil, 0, ErrAllServFail)
		return
	}
	eng := fc.fleet.Boards[0].Eng
	start := eng.Now()
	var try func(i int)
	try = func(i int) {
		if i >= len(fc.fleet.Boards) {
			done(-1, nil, eng.Now()-start, ErrAllServFail)
			return
		}
		client := fc.hosts[i]
		resolver := &dns.Client{Host: client}
		resolver.Query(NSAddr, name, dns.TypeA, timeout, func(m *dns.Message, _ sim.Duration, err error) {
			if err != nil {
				done(i, nil, eng.Now()-start, err)
				return
			}
			if m.RCode == dns.RCodeServFail {
				// "to indicate the client should go elsewhere"
				fc.ServFails++
				try(i + 1)
				return
			}
			if m.RCode != dns.RCodeNoError || len(m.Answers) == 0 {
				done(i, nil, eng.Now()-start, fmt.Errorf("core: dns %v", m.RCode))
				return
			}
			client.HTTPGet(m.Answers[0].A, 80, path, timeout, func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
				done(i, resp, eng.Now()-start, err)
			})
		})
	}
	try(0)
}

// Eng returns the fleet's shared engine.
func (f *Fleet) Eng() *sim.Engine { return f.Boards[0].Eng }

// RunAll drains the shared engine.
func (f *Fleet) RunAll() { f.Eng().Run() }

// simNew indirection keeps the sim import local to construction.
func simNew(seed int64) *sim.Engine { return sim.New(seed) }
