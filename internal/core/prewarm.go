package core

import (
	"math"
	"time"

	"jitsu/internal/sim"
)

// PrewarmTrigger is a predictive activation frontend — the proof that a
// Trigger needs no inbound packet at all. It observes client-driven
// firings through the Activation machine, learns each service's
// recurring inter-arrival gap (an EWMA with a mean-absolute-deviation
// jitter bound), and summons the service Lead ahead of the predicted
// next arrival. A service whose visitors return on a routine — the
// home-hub check-in every morning, the sensor posting every ten
// seconds — then meets every "first" request of a visit warm, even
// though its idle reaper shut it down in between.
//
// The trigger is speculative on purpose: its firings never count as
// cold starts, never refuse (a bad prediction wastes one boot, nothing
// else), and a noisy arrival pattern disarms it until the deviation
// settles again.
type PrewarmTrigger struct {
	// Lead is how far ahead of the predicted arrival the boot starts.
	// It must cover the cold-boot latency plus the tolerated jitter;
	// the default is 2s.
	Lead sim.Duration
	// Alpha is the EWMA weight for the gap and deviation estimates
	// (default 0.5: recent visits dominate).
	Alpha float64
	// MinSamples is how many gaps must be observed before the trigger
	// predicts (default 2).
	MinSamples int
	// MaxJitter disarms prediction while the mean absolute deviation
	// exceeds this fraction of the gap estimate (default 0.5).
	MaxJitter float64
	// MinGap groups firings into visits: a firing within MinGap of the
	// previous one is the same visit (the SYN racing its own DNS answer,
	// a burst of requests), not a recurrence signal (default 1s).
	MinGap sim.Duration

	// Predictions counts speculative summons fired.
	Predictions uint64
	// Hits counts client arrivals that found their service ready with a
	// prediction armed — the prewarm paid off.
	Hits uint64
	// Misses counts client arrivals that still found their service
	// stopped although a prediction was armed (the visitor came too
	// early, or the pattern shifted).
	Misses uint64

	j     *Jitsu
	b     *Board
	state map[*Service]*prewarmState
}

// TriggerPrewarm is the predictive frontend's name.
const TriggerPrewarm = "prewarm"

type prewarmState struct {
	last    sim.Duration // virtual time of the previous client arrival
	gap     float64      // EWMA inter-arrival gap, seconds
	dev     float64      // EWMA absolute deviation of the gap, seconds
	samples int          // gaps observed
	timer   sim.Event    // pending prediction, if armed
	armed   bool
}

// NewPrewarmTrigger builds the trigger with the given lead time (0 =
// the 2s default).
func NewPrewarmTrigger(lead sim.Duration) *PrewarmTrigger {
	return &PrewarmTrigger{Lead: lead}
}

func (t *PrewarmTrigger) Name() string { return TriggerPrewarm }

// Attach hooks the trigger into the board's Activation machine as an
// observer of client-driven firings.
func (t *PrewarmTrigger) Attach(b *Board) error {
	if t.Lead <= 0 {
		t.Lead = 2 * time.Second
	}
	if t.Alpha <= 0 || t.Alpha > 1 {
		t.Alpha = 0.5
	}
	if t.MinSamples <= 0 {
		t.MinSamples = 2
	}
	if t.MaxJitter <= 0 {
		t.MaxJitter = 0.5
	}
	if t.MinGap <= 0 {
		t.MinGap = time.Second
	}
	t.b = b
	t.j = b.Jitsu
	t.state = make(map[*Service]*prewarmState)
	b.Jitsu.Activation().Observe(t.observe)
	return nil
}

// Detach disarms every pending prediction and stops learning. (The
// observer hook stays registered but inert — the Activation machine
// keeps no removable observer list, matching the conduit trigger's
// fire-and-forget registration.)
func (t *PrewarmTrigger) Detach() {
	for _, st := range t.state {
		t.disarm(st)
	}
	t.state = nil
}

// observe feeds one firing into the per-service arrival model. Only
// client-driven firings (ColdStart) are arrivals; the trigger's own
// speculative summons and control-plane pokes are not.
func (t *PrewarmTrigger) observe(svc *Service, s Summon, d Decision) {
	if t.state == nil || !s.ColdStart || s.Via == TriggerPrewarm {
		return
	}
	now := t.b.Eng.Now()
	st := t.state[svc]
	if st == nil {
		st = &prewarmState{last: now}
		t.state[svc] = st
		return
	}
	if now-st.last < t.MinGap {
		return // same visit: e.g. the SYN racing its own DNS answer
	}
	if st.armed {
		// Score the armed prediction against what this visit found.
		if d == DecisionColdStart || d == DecisionNoMemory {
			t.Misses++
		} else {
			t.Hits++
		}
	}
	gap := (now - st.last).Seconds()
	st.last = now
	if st.samples == 0 {
		st.gap = gap
	} else {
		st.dev = (1-t.Alpha)*st.dev + t.Alpha*math.Abs(gap-st.gap)
		st.gap = (1-t.Alpha)*st.gap + t.Alpha*gap
	}
	st.samples++
	t.rearm(svc, st, now)
}

// rearm schedules (or cancels) the next prediction for svc.
func (t *PrewarmTrigger) rearm(svc *Service, st *prewarmState, now sim.Duration) {
	t.disarm(st)
	if st.samples < t.MinSamples || st.dev > t.MaxJitter*st.gap {
		return // not enough evidence, or the pattern is too noisy
	}
	next := now + sim.Duration(st.gap*float64(time.Second))
	fireAt := next - t.Lead
	if fireAt <= now {
		// The gap is shorter than the lead: the service never has time
		// to go cold, so there is nothing to predict.
		return
	}
	st.armed = true
	st.timer = t.b.Eng.At(fireAt, func() {
		st.timer = sim.Event{}
		t.predict(svc, st)
	})
}

// predict fires the speculative summon for an armed prediction.
func (t *PrewarmTrigger) predict(svc *Service, st *prewarmState) {
	if !svc.State.NeedsLaunch() {
		return // still warm; the reaper never fired
	}
	t.Predictions++
	// Speculative: no cold-start accounting, no refusal surface. An
	// out-of-memory board simply skips the prewarm.
	t.j.Summon(svc, Summon{Via: TriggerPrewarm})
}

// disarm cancels a pending prediction.
func (t *PrewarmTrigger) disarm(st *prewarmState) {
	if st.armed {
		t.b.Eng.Cancel(st.timer)
		st.timer = sim.Event{}
	}
	st.armed = false
}
