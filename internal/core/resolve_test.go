package core

import (
	"errors"
	"testing"
	"time"

	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// resolveRig connects a guest-side endpoint to the well-known jitsud
// Conduit node and returns a helper that sends one line and collects
// the reply.
func resolveRig(t *testing.T, b *Board) func(line string) string {
	t.Helper()
	ep, err := b.Registry.Connect(42, "jitsud")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	ep.OnData(func(data []byte) { reply += string(data) })
	return func(line string) string {
		reply = ""
		ep.Write([]byte(line))
		b.Eng.Run()
		return reply
	}
}

func TestHandleResolveOK(t *testing.T) {
	b := New()
	svc := b.Jitsu.Register(aliceService())
	resolve := resolveRig(t, b)
	if got := resolve("resolve alice.family.name\n"); got != "ok 10.0.0.20\n" {
		t.Fatalf("reply = %q", got)
	}
	if svc.Launches != 1 || svc.ColdStarts != 1 {
		t.Fatalf("launches=%d coldstarts=%d, want 1/1", svc.Launches, svc.ColdStarts)
	}
	// A second resolve finds the service running: no new launch.
	if got := resolve("resolve alice.family.name\n"); got != "ok 10.0.0.20\n" {
		t.Fatalf("warm reply = %q", got)
	}
	if svc.Launches != 1 {
		t.Fatalf("warm resolve relaunched: %d", svc.Launches)
	}
}

func TestHandleResolveNXDomain(t *testing.T) {
	b := New()
	resolve := resolveRig(t, b)
	if got := resolve("resolve ghost.family.name\n"); got != "nxdomain\n" {
		t.Fatalf("reply = %q", got)
	}
}

func TestHandleResolveBadRequest(t *testing.T) {
	b := New()
	resolve := resolveRig(t, b)
	for _, line := range []string{"summon alice.family.name\n", "resolvealice\n", "\n"} {
		if got := resolve(line); got != "badrequest\n" {
			t.Fatalf("reply to %q = %q, want badrequest", line, got)
		}
	}
}

func TestHandleResolveServFail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalMemMiB = 8 // smaller than any image
	b := New(WithConfig(cfg))
	svc := b.Jitsu.Register(aliceService())
	resolve := resolveRig(t, b)
	if got := resolve("resolve alice.family.name\n"); got != "servfail\n" {
		t.Fatalf("reply = %q", got)
	}
	if svc.ServFails != 1 || svc.Launches != 0 {
		t.Fatalf("servfails=%d launches=%d, want 1/0", svc.ServFails, svc.Launches)
	}
}

func TestHandleResolvePipelinedLines(t *testing.T) {
	// Several commands in one write must each get an answer, in order —
	// the line framing over the byte stream is part of the protocol.
	b := New()
	b.Jitsu.Register(aliceService())
	resolve := resolveRig(t, b)
	got := resolve("resolve alice.family.name\nresolve ghost.family.name\nbogus\n")
	want := "ok 10.0.0.20\nnxdomain\nbadrequest\n"
	if got != want {
		t.Fatalf("pipelined reply = %q, want %q", got, want)
	}
}

func TestFleetClientAllBoardsRefuse(t *testing.T) {
	// Every board too small for the image: the client walks the whole NS
	// set, collects a SERVFAIL per board, and surfaces ErrAllServFail.
	cfg := DefaultConfig()
	cfg.TotalMemMiB = 8
	f := NewFleet(4, WithConfig(cfg))
	svcs := f.RegisterEverywhere(fleetService())
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var gotErr error
	var gotBoard int
	fc.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			gotBoard, gotErr = board, err
		})
	f.RunAll()
	if !errors.Is(gotErr, ErrAllServFail) {
		t.Fatalf("err = %v, want ErrAllServFail", gotErr)
	}
	if gotBoard != -1 {
		t.Fatalf("board = %d, want -1", gotBoard)
	}
	if fc.ServFails != 4 {
		t.Fatalf("client servfails = %d, want 4", fc.ServFails)
	}
	for i, svc := range svcs {
		if svc.ServFails != 1 {
			t.Fatalf("board %d servfails = %d, want 1", i, svc.ServFails)
		}
	}
}
