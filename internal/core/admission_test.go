package core

import (
	"testing"
	"time"

	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// synFlood fires one HTTPGet at the service IP (no DNS — a raw SYN)
// every period over span, reaping in between via a short idle timeout,
// and reports how many launches the flood caused.
func synFlood(t *testing.T, limited bool) (launches uint64, suppressed uint64) {
	t.Helper()
	opts := []Option{WithSeed(7)}
	if limited {
		// One launch burst of 2, then at most one every 4 seconds.
		opts = append(opts, WithSYNRateLimit(0.25, 2))
	}
	b := New(opts...)
	sc := aliceService()
	sc.IdleTimeout = 300 * time.Millisecond // reap fast: each SYN would re-boot
	svc := b.Jitsu.Register(sc)
	client := b.AddClient("flooder", netstack.IPv4(10, 0, 0, 9))
	const (
		period = 150 * time.Millisecond
		span   = 12 * time.Second
	)
	for at := sim.Duration(0); at < span; at += period {
		b.Eng.At(at, func() {
			client.HTTPGet(svc.Cfg.IP, 80, "/", 500*time.Millisecond,
				func(*netstack.HTTPResponse, sim.Duration, error) {})
		})
	}
	b.Eng.Run()
	return svc.Launches, b.Syn.SYNSuppressed
}

// TestSYNRateLimitBoundsBootStorm floods a service's address with raw
// SYNs (reaping between bursts, so every SYN would otherwise re-boot
// the VM) and asserts the per-service token bucket keeps the number of
// launches at the budget — burst + rate x duration — instead of one
// boot per reap cycle.
func TestSYNRateLimitBoundsBootStorm(t *testing.T) {
	unlimited, sup := synFlood(t, false)
	if sup != 0 {
		t.Fatalf("unlimited board suppressed %d launches", sup)
	}
	if unlimited < 10 {
		t.Fatalf("flood caused only %d launches without a limiter; the workload is not a boot storm", unlimited)
	}
	limited, suppressed := synFlood(t, true)
	// Budget: burst (2) + 0.25/s x 12s (3) = 5, plus one for timing
	// slack at the window edge.
	if limited > 6 {
		t.Fatalf("limited flood caused %d launches, want <= 6 (burst 2 + 0.25/s refill)", limited)
	}
	if limited == 0 {
		t.Fatal("limiter suppressed every launch; legitimate first contact must pass")
	}
	if suppressed == 0 {
		t.Fatal("limiter reported no suppressed launches under a flood")
	}
	if limited >= unlimited/2 {
		t.Fatalf("limiter barely helped: %d launches vs %d unlimited", limited, unlimited)
	}
}

// TestSYNRateLimitLeavesWarmTrafficAlone pins the limiter's scope: SYNs
// to a ready service never consume admission tokens, so steady warm
// traffic is untouched no matter how low the rate.
func TestSYNRateLimitLeavesWarmTrafficAlone(t *testing.T) {
	b := New(WithSYNRateLimit(0.01, 1))
	svc := b.Jitsu.Register(aliceService()) // no idle timeout: stays warm
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	okays := 0
	for i := 0; i < 10; i++ {
		b.Eng.At(sim.Duration(i)*time.Second, func() {
			client.HTTPGet(svc.Cfg.IP, 80, "/", 5*time.Second,
				func(r *netstack.HTTPResponse, _ sim.Duration, err error) {
					if err == nil && r.Status == 200 {
						okays++
					}
				})
		})
	}
	b.Eng.Run()
	if okays != 10 {
		t.Fatalf("warm requests served = %d, want 10", okays)
	}
	if b.Syn.SYNSuppressed != 0 {
		t.Fatalf("suppressed = %d on warm traffic, want 0", b.Syn.SYNSuppressed)
	}
	if svc.Launches != 1 {
		t.Fatalf("launches = %d, want 1 (first contact only)", svc.Launches)
	}
}
