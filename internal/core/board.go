// Package core is the paper's contribution: the Jitsu directory service
// (§3.3) that launches unikernels just-in-time in response to DNS
// requests, and the Synjitsu proxy (§3.3.1) that masks boot latency by
// completing TCP handshakes on behalf of still-booting unikernels and
// handing the connection state over through XenStore.
package core

import (
	"fmt"
	"time"

	"jitsu/internal/blockdev"
	"jitsu/internal/conduit"
	"jitsu/internal/dns"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// BoardConfig assembles one embedded Jitsu host (a Cubieboard in the
// paper's evaluation) plus its edge network.
type BoardConfig struct {
	Seed       int64
	Platform   *xen.Platform
	Reconciler xenstore.Reconciler
	Toolstack  xen.ToolstackOpts
	// TotalMemMiB is guest-available RAM (Cubieboard2: 1GB minus dom0).
	TotalMemMiB int
	// Zone is the DNS apex this board is authoritative for.
	Zone string
	// Synjitsu enables the connection proxy.
	Synjitsu bool
	// DelayDNSUntilReady is the §3.3.1 alternative the paper rejects:
	// hold the DNS answer until the unikernel network is live.
	DelayDNSUntilReady bool
	// SYNLaunchRate rate-limits SYN-triggered launches per service
	// (token bucket, launches/second): raw SYNs Force past the memory
	// gate, so without a cap a SYN flood causes a boot storm. 0 (the
	// default) disables the limiter. Warm traffic is never throttled.
	SYNLaunchRate float64
	// SYNLaunchBurst is the token bucket's depth (minimum 1).
	SYNLaunchBurst int
	// Disk sizes the board's checkpoint store — the cold-on-disk tier.
	// The zero value builds no device (DefaultConfig: a diskless board
	// keeps the two-tier admission behaviour); WithDisk opts in.
	Disk blockdev.Config
	// External link characteristics (client <-> board).
	ExtLatency    sim.Duration
	ExtBitsPerSec float64
	// Tracer, when set, is the flight recorder every subsystem on the
	// board emits spans into; its timestamps come from the board's
	// engine, so a seeded run exports bit-identically. Nil (the
	// default) disables tracing and keeps every hot path alloc-free.
	Tracer *obs.Tracer
	// TraceTID is the tracer lane this board's events render on —
	// cluster builders assign one lane per board.
	TraceTID int
}

// DefaultConfig is a Cubieboard2 running the fully optimised stack with
// Synjitsu on — the headline configuration.
func DefaultConfig() BoardConfig {
	return BoardConfig{
		Seed:          1,
		Platform:      xen.CubieboardARM(),
		Reconciler:    xenstore.JitsuReconciler{},
		Toolstack:     xen.OptimisedOpts(),
		TotalMemMiB:   768,
		Zone:          "family.name",
		Synjitsu:      true,
		ExtLatency:    150 * time.Microsecond,
		ExtBitsPerSec: 100e6, // Cubieboard2: 100Mb Ethernet
	}
}

// Board is a fully wired Jitsu host: hypervisor, store, toolstack,
// bridge, launcher, directory service, and (optionally) Synjitsu.
type Board struct {
	Cfg      BoardConfig
	Eng      *sim.Engine
	Store    *xenstore.Store
	Hyp      *xen.Hypervisor
	TS       *xen.Toolstack
	Bridge   *netsim.Bridge
	Launcher *unikernel.Launcher
	Registry *conduit.Registry
	// NS is the directory service's network endpoint (dom0-resident).
	NS  *netstack.Host
	DNS *dns.Server
	// Jitsu is the directory service.
	Jitsu *Jitsu
	// Syn is the proxy; nil when disabled.
	Syn *Synjitsu
	// Disk is the board's checkpoint store; nil on a diskless board (no
	// cold-on-disk tier, demotion returns ErrNoDisk).
	Disk *blockdev.Device
	// Tracer is the board's flight recorder (nil when tracing is off).
	Tracer *obs.Tracer
	// Reg is the board's metric registry: boot/restore latency
	// histograms plus snapshot-time mirrors of the DNS and engine
	// counters. Always present; mirrors cost nothing until Snapshot.
	Reg *obs.Registry

	bootHist        *obs.Histogram
	restoreHist     *obs.Histogram
	diskRestoreHist *obs.Histogram
	demoteHist      *obs.Histogram

	// triggers are the attached activation frontends (built-ins first;
	// AddTrigger appends).
	triggers []Trigger
	// dnsOwner is the trigger currently owning the DNS server's
	// interceptor hooks; a displaced trigger must not Detach hooks it no
	// longer owns.
	dnsOwner Trigger

	nextClient int
}

// ClaimDNSFrontend records t as the current owner of the board's DNS
// interceptor hooks. A trigger that installs (or chains over) the
// hooks claims them; Detach implementations check ownership before
// clearing, so removing a displaced frontend cannot wipe its
// successor's hooks.
func (b *Board) ClaimDNSFrontend(t Trigger) { b.dnsOwner = t }

// DNSFrontend returns the trigger currently owning the DNS hooks.
func (b *Board) DNSFrontend() Trigger { return b.dnsOwner }

// Well-known board addresses.
var (
	// NSAddr is the directory service (ns.<zone>).
	NSAddr = netstack.IPv4(10, 0, 0, 1)
	// SynAddr is the Synjitsu proxy's own address.
	SynAddr = netstack.IPv4(10, 0, 0, 2)
)

// buildBoard wires a board from a resolved config: hypervisor, store,
// toolstack, bridge, launcher, DNS, directory, proxy and the built-in
// trigger frontends, all on the given engine.
func buildBoard(eng *sim.Engine, cfg BoardConfig) *Board {
	store := xenstore.NewStore(cfg.Reconciler)
	hyp := xen.NewHypervisor(eng, store, cfg.Platform, cfg.TotalMemMiB)
	ts := xen.NewToolstack(hyp, cfg.Toolstack)
	bridge := netsim.NewBridge(eng, "xenbr0", 10*time.Microsecond)
	b := &Board{
		Cfg: cfg, Eng: eng, Store: store, Hyp: hyp, TS: ts,
		Bridge:   bridge,
		Launcher: unikernel.NewLauncher(ts, bridge),
		Registry: conduit.NewRegistry(hyp),
	}

	// The directory service runs in dom0 (in the paper it is itself a
	// unikernel launched at boot; the distinction does not affect any
	// measured quantity, and dom0 keeps the wiring readable).
	nsNIC := netsim.NewNIC(eng, "jitsu-ns", netsim.MACFor(0xFF0001))
	bridge.ConnectNIC(nsNIC, 20*time.Microsecond, 0)
	b.NS = netstack.NewHost(eng, "jitsu-ns", nsNIC, NSAddr, netstack.Dom0Profile())

	zone := dns.NewZone(cfg.Zone)
	zone.Add(dns.RR{Name: "ns." + cfg.Zone, Type: dns.TypeA, TTL: 300, A: NSAddr})
	srv, err := dns.Serve(b.NS, zone)
	if err != nil {
		panic(fmt.Sprintf("core: dns serve: %v", err))
	}
	b.DNS = srv

	if cfg.Synjitsu {
		b.Syn = newSynjitsu(b, SynAddr)
	}
	b.Disk = blockdev.New(eng, cfg.Disk)
	b.Jitsu = newJitsu(b, zone)

	b.Tracer = cfg.Tracer
	b.Tracer.BindClock(eng.Now)
	srv.Tracer = cfg.Tracer
	srv.TraceTID = cfg.TraceTID
	b.Reg = obs.NewRegistry(fmt.Sprintf("board%d", cfg.TraceTID))
	b.bootHist = b.Reg.Histogram("activation.boot")
	b.restoreHist = b.Reg.Histogram("activation.restore")
	b.diskRestoreHist = b.Reg.Histogram("activation.disk_restore")
	b.demoteHist = b.Reg.Histogram("activation.demote")
	b.Reg.CounterFunc("dns.queries", func() uint64 { return srv.Queries })
	b.Reg.CounterFunc("dns.cache_hits", func() uint64 { return srv.CacheHits })
	b.Reg.CounterFunc("dns.cache_misses", func() uint64 { return srv.CacheMisses })
	b.Reg.GaugeFunc("dns.epoch", func() int64 { return int64(srv.Epoch) })
	b.Reg.CounterFunc("sim.fired", eng.Fired)
	b.Reg.GaugeFunc("sim.pending", func() int64 { return int64(eng.Pending()) })
	b.Reg.GaugeFunc("sim.max_pending", func() int64 { return int64(eng.MaxPending()) })
	b.Reg.CounterFunc("activation.cold_starts", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.ColdStarts }) })
	b.Reg.CounterFunc("activation.launches", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.Launches }) })
	b.Reg.CounterFunc("activation.restores", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.Restores }) })
	b.Reg.CounterFunc("activation.servfails", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.ServFails }) })
	b.Reg.CounterFunc("activation.reaps", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.Reaps }) })
	b.Reg.GaugeFunc("xen.free_mem_mib", func() int64 { return int64(hyp.FreeMemMiB()) })
	countTier := func(st ServiceState) int64 {
		var n int64
		for _, svc := range b.Jitsu.services {
			if svc.State == st {
				n++
			}
		}
		return n
	}
	b.Reg.GaugeFunc("tier.running", func() int64 { return countTier(StateRunning) })
	b.Reg.GaugeFunc("tier.warm_memory", func() int64 { return countTier(StateWarmMemory) })
	b.Reg.GaugeFunc("tier.cold_disk", func() int64 { return countTier(StateColdDisk) })
	if b.Disk != nil {
		b.Reg.CounterFunc("activation.disk_restores", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.DiskRestores }) })
		b.Reg.CounterFunc("activation.demotions", func() uint64 { return b.Jitsu.sumCounters(func(s *Service) uint64 { return s.Demotions }) })
		b.Reg.GaugeFunc("disk.slots_used", func() int64 { return int64(b.Disk.SlotsUsed()) })
		b.Reg.GaugeFunc("disk.slots_total", func() int64 { return int64(b.Disk.SlotsTotal()) })
		b.Reg.CounterFunc("disk.reads", func() uint64 { return b.Disk.Reads })
		b.Reg.CounterFunc("disk.writes", func() uint64 { return b.Disk.Writes })
	}
	return b
}

// histFor picks the launch-latency histogram for a boot path kind.
func (b *Board) histFor(kind string) *obs.Histogram {
	switch kind {
	case "restore":
		return b.restoreHist
	case "disk-restore":
		return b.diskRestoreHist
	}
	return b.bootHist
}

// AddClient attaches an external client host to the board's network.
func (b *Board) AddClient(name string, ip netstack.IP) *netstack.Host {
	b.nextClient++
	nic := netsim.NewNIC(b.Eng, name, netsim.MACFor(0x9000+b.nextClient))
	b.Bridge.ConnectNIC(nic, b.Cfg.ExtLatency, b.Cfg.ExtBitsPerSec)
	return netstack.NewHost(b.Eng, name, nic, ip, netstack.LinuxNativeProfile())
}

// FetchViaDNS performs the full Figure 9a client transaction: resolve
// name at the board's nameserver, then GET path from the answered
// address. done receives the total elapsed time from query to complete
// HTTP response.
func (b *Board) FetchViaDNS(client *netstack.Host, name, path string, timeout sim.Duration, done func(*netstack.HTTPResponse, sim.Duration, error)) {
	start := b.Eng.Now()
	resolver := &dns.Client{Host: client}
	resolver.Query(NSAddr, name, dns.TypeA, timeout, func(m *dns.Message, _ sim.Duration, err error) {
		if err != nil {
			done(nil, b.Eng.Now()-start, err)
			return
		}
		if m.RCode != dns.RCodeNoError || len(m.Answers) == 0 {
			done(nil, b.Eng.Now()-start, fmt.Errorf("core: dns %v", m.RCode))
			return
		}
		ip := m.Answers[0].A
		remaining := timeout - (b.Eng.Now() - start)
		client.HTTPGet(ip, 80, path, remaining, func(resp *netstack.HTTPResponse, _ sim.Duration, err error) {
			done(resp, b.Eng.Now()-start, err)
		})
	})
}
