package core

import (
	"bytes"
	"fmt"
	"strings"

	"jitsu/internal/conduit"
	"jitsu/internal/dns"
	"jitsu/internal/xenstore"
)

// A Trigger is a pluggable activation frontend: it adapts one inbound
// signal source — a DNS wire query, a raw TCP SYN, a conduit resolve
// line, a predicted arrival — to the board's shared Activation machine.
// A frontend resolves its target to a *Service (by name or by
// endpoint), calls Activation.Fire with a Summon describing the firing,
// and renders the returned Decision in its own protocol (an A record, a
// SERVFAIL, an "ok <ip>" line, nothing at all). New workloads are a
// Trigger implementation, not another fork of the core lifecycle.
type Trigger interface {
	// Name identifies the frontend in Activation.Fired and diagnostics.
	Name() string
	// Attach wires the trigger into its signal source on board b. The
	// board attaches its built-in triggers at construction; additional
	// ones (cluster scheduler, prewarm) arrive via Board.AddTrigger.
	Attach(b *Board) error
	// Detach unwires the trigger from its signal source (idempotent).
	Detach()
}

// AddTrigger attaches an additional activation frontend to the board.
func (b *Board) AddTrigger(t Trigger) error {
	if err := t.Attach(b); err != nil {
		return err
	}
	b.triggers = append(b.triggers, t)
	return nil
}

// RemoveTrigger detaches a previously added trigger.
func (b *Board) RemoveTrigger(t Trigger) {
	for i, have := range b.triggers {
		if have == t {
			b.triggers = append(b.triggers[:i], b.triggers[i+1:]...)
			t.Detach()
			return
		}
	}
}

// Triggers lists the board's attached frontends (built-ins first).
func (b *Board) Triggers() []Trigger {
	out := make([]Trigger, len(b.triggers))
	copy(out, b.triggers)
	return out
}

// ---- DNS (synchronous): the paper's headline frontend ----

// dnsTrigger answers A/ANY queries for registered services, launching
// as a side effect — "returning a DNS response as soon as the VM
// resource allocation is complete". It installs both the slow-path
// Interceptor and its allocation-free fast-path twin; both drive the
// Activation machine through the same Fire call.
type dnsTrigger struct {
	j *Jitsu
	b *Board
}

// TriggerDNS is the synchronous DNS frontend's name.
const TriggerDNS = "dns"

func (t *dnsTrigger) Name() string { return TriggerDNS }

func (t *dnsTrigger) Attach(b *Board) error {
	t.b = b
	b.DNS.Intercept = t.intercept
	b.DNS.FastIntercept = t.fastIntercept
	b.ClaimDNSFrontend(t)
	return nil
}

func (t *dnsTrigger) Detach() {
	if t.b == nil || t.b.DNSFrontend() != t {
		return // displaced (e.g. by the cluster trigger): not ours to clear
	}
	t.b.DNS.Intercept = nil
	t.b.DNS.FastIntercept = nil
	t.b.ClaimDNSFrontend(nil)
}

// intercept is the slow-path hook: answer immediately, launching as a
// side effect.
func (t *dnsTrigger) intercept(q dns.Question, resp *dns.Message) bool {
	if q.Type != dns.TypeA && q.Type != dns.TypeANY {
		return false
	}
	svc, ok := t.j.services[dns.CanonicalName(q.Name)]
	if !ok {
		return false
	}
	if t.j.act.Fire(svc, Summon{Via: TriggerDNS, ColdStart: true, Refuse: true}) == DecisionNoMemory {
		resp.RCode = dns.RCodeServFail
		return true
	}
	resp.Answers = append(resp.Answers, svc.answerRR)
	return true
}

// fastIntercept is the allocation-free twin of intercept, consulted on
// the DNS server's fast path. Same state machine, but the answer is the
// service's pre-built RR, which the server caches as pre-encoded wire.
func (t *dnsTrigger) fastIntercept(name []byte, typ dns.Type) (dns.Verdict, *dns.RR) {
	if typ != dns.TypeA && typ != dns.TypeANY {
		return dns.VerdictMiss, nil
	}
	svc, ok := t.j.services[string(name)] // alloc-free map probe
	if !ok {
		return dns.VerdictMiss, nil
	}
	if t.j.act.Fire(svc, Summon{Via: TriggerDNS, ColdStart: true, Refuse: true}) == DecisionNoMemory {
		return dns.VerdictServFail, nil
	}
	return dns.VerdictAnswer, &svc.answerRR
}

// ---- DNS (delayed): the rejected §3.3.1 alternative (ablation) ----

// asyncDNSTrigger holds the DNS answer until the unikernel is ready,
// removing the SYN race at the cost of a much slower resolution. Its
// responders park in the Activation machine's waiter queue.
type asyncDNSTrigger struct {
	j *Jitsu
	b *Board
}

// TriggerDNSAsync is the delayed-DNS frontend's name.
const TriggerDNSAsync = "dns-async"

func (t *asyncDNSTrigger) Name() string { return TriggerDNSAsync }

func (t *asyncDNSTrigger) Attach(b *Board) error {
	t.b = b
	b.DNS.InterceptAsync = t.intercept
	b.ClaimDNSFrontend(t)
	return nil
}

func (t *asyncDNSTrigger) Detach() {
	if t.b == nil || t.b.DNSFrontend() != t {
		return
	}
	t.b.DNS.InterceptAsync = nil
	t.b.ClaimDNSFrontend(nil)
}

func (t *asyncDNSTrigger) intercept(query *dns.Message, respond func(*dns.Message)) bool {
	if len(query.Questions) != 1 {
		return false
	}
	q := query.Questions[0]
	svc, ok := t.j.services[dns.CanonicalName(q.Name)]
	if !ok || (q.Type != dns.TypeA && q.Type != dns.TypeANY) {
		return false
	}
	answer := func(ok bool) {
		resp := &dns.Message{ID: query.ID, Response: true, Authoritative: true,
			Questions: query.Questions}
		if !ok {
			resp.RCode = dns.RCodeServFail
		} else {
			resp.Answers = append(resp.Answers, svc.answerRR)
		}
		respond(resp)
	}
	if t.j.act.Fire(svc, Summon{Via: TriggerDNSAsync, ColdStart: true, Refuse: true}) == DecisionNoMemory {
		answer(false)
		return true
	}
	if svc.State.Booted() {
		answer(true)
		return true
	}
	t.j.act.AwaitReady(svc, answer)
	return true
}

// ---- SYN: connections arriving outside any DNS resolution ----

// synTrigger summons a service when a raw SYN reaches its proxied
// address with no preceding DNS query (clients ignoring TTLs, §3.3).
// Synjitsu completes the handshake either way; this trigger only owns
// the launch decision. A SYN has no refusal channel, so the firing
// forces past the memory gate — failure surfaces as the guest never
// booting and the proxied connection timing out. Because of that Force,
// the trigger carries its own admission policy: an optional per-service
// token bucket (WithSYNRateLimit) caps how often a SYN may start a
// launch, so a SYN flood cannot cause a boot storm.
type synTrigger struct {
	j     *Jitsu
	b     *Board
	admit *synAdmission // nil = unlimited
}

// TriggerSYN is the SYN frontend's name.
const TriggerSYN = "syn"

// synOutcome is one SYN firing's effect on the launch state.
type synOutcome int

const (
	synServed     synOutcome = iota // warm or already launching
	synLaunched                     // this SYN started the launch
	synSuppressed                   // launch denied by the admission rate limit
)

func (t *synTrigger) Name() string { return TriggerSYN }

func (t *synTrigger) Attach(b *Board) error {
	t.b = b
	if b.Cfg.SYNLaunchRate > 0 {
		t.admit = newSynAdmission(b.Cfg.SYNLaunchRate, b.Cfg.SYNLaunchBurst)
	}
	if b.Syn != nil {
		b.Syn.trigger = t
	}
	return nil
}

func (t *synTrigger) Detach() {
	if t.b != nil && t.b.Syn != nil && t.b.Syn.trigger == t {
		t.b.Syn.trigger = nil
	}
}

// fire is called by Synjitsu for every proxied connection. A firing
// that would start a launch first passes the admission bucket; warm
// services and in-flight boots are never throttled (the touch keeps
// the idle reaper honest for legitimate traffic).
func (t *synTrigger) fire(svc *Service) synOutcome {
	if t.admit != nil && svc.State.NeedsLaunch() && !t.admit.admit(svc, t.b.Eng.Now()) {
		return synSuppressed
	}
	if t.j.act.Fire(svc, Summon{Via: TriggerSYN, ColdStart: true, Force: true}) == DecisionColdStart {
		return synLaunched
	}
	return synServed
}

// ---- Conduit: the toolkit resolve path ----

// conduitTrigger publishes the well-known jitsud name (§3.3: "the Jitsu
// resolver is discovered via a well-known jitsud Conduit node"). The
// protocol is line-based: "resolve <name>\n" → "ok <ip>\n" |
// "servfail\n" | "nxdomain\n".
type conduitTrigger struct {
	j *Jitsu
}

// TriggerConduit is the conduit resolve frontend's name.
const TriggerConduit = "conduit"

func (t *conduitTrigger) Name() string { return TriggerConduit }

func (t *conduitTrigger) Attach(b *Board) error {
	_, err := b.Registry.Register(xenstore.Dom0, "jitsud", func(ep *conduit.Endpoint) {
		var buf []byte
		ep.OnData(func(data []byte) {
			buf = append(buf, data...)
			for {
				idx := bytes.IndexByte(buf, '\n')
				if idx < 0 {
					return
				}
				line := string(buf[:idx])
				buf = buf[idx+1:]
				ep.Write([]byte(t.handleResolve(line)))
			}
		})
	})
	if err != nil {
		return fmt.Errorf("core: register jitsud: %w", err)
	}
	return nil
}

// Detach is a no-op: the conduit registry has no deregistration, and
// the well-known node outlives any one consumer.
func (t *conduitTrigger) Detach() {}

func (t *conduitTrigger) handleResolve(line string) string {
	name, ok := strings.CutPrefix(line, "resolve ")
	if !ok {
		return "badrequest\n"
	}
	svc, err := t.j.Service(strings.TrimSpace(name))
	if err != nil {
		return "nxdomain\n"
	}
	switch t.j.act.Fire(svc, Summon{Via: TriggerConduit, ColdStart: true, Refuse: true}) {
	case DecisionNoMemory:
		return "servfail\n"
	case DecisionRetired:
		return "nxdomain\n"
	}
	return svc.okLine
}
