package core

import (
	"strings"
	"testing"
	"time"

	"jitsu/internal/blockdev"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// diskBoard is a board with the default checkpoint store attached —
// the three-tier configuration every lifecycle test runs on.
func diskBoard() *Board {
	return New(WithDisk(blockdev.DefaultConfig()))
}

// bringTo drives a fresh service into the requested lifecycle tier via
// the public verbs only.
func bringTo(t *testing.T, b *Board, svc *Service, st ServiceState) {
	t.Helper()
	switch st {
	case StateCold:
		// Registration state.
	case StateRunning:
		if err := b.Jitsu.Activate(svc, true, nil); err != nil {
			t.Fatal(err)
		}
		b.Eng.Run()
	case StateWarmMemory:
		if err := b.Jitsu.Activate(svc, false, nil); err != nil {
			t.Fatal(err)
		}
		b.Eng.Run()
	case StateColdDisk:
		if err := b.Jitsu.Activate(svc, false, nil); err != nil {
			t.Fatal(err)
		}
		b.Eng.Run()
		if err := b.Jitsu.Demote(svc); err != nil {
			t.Fatal(err)
		}
		b.Eng.Run()
	case StateLaunching:
		if err := b.Jitsu.Activate(svc, false, nil); err != nil {
			t.Fatal(err)
		}
		// No Run: the launch stays in flight.
	}
	if svc.State != st {
		t.Fatalf("bringTo(%v): state = %v", st, svc.State)
	}
}

// TestServiceStatePredicates pins the tier helpers every call site
// branches on: which states can serve, which need a launch leg, which
// occupy board resources.
func TestServiceStatePredicates(t *testing.T) {
	cases := []struct {
		st                            ServiceState
		str                           string
		booted, needsLaunch, resident bool
	}{
		{StateCold, "cold", false, true, false},
		{StateLaunching, "launching", false, false, true},
		{StateRunning, "running", true, false, true},
		{StateWarmMemory, "warm-memory", true, false, true},
		{StateColdDisk, "cold-disk", false, true, true},
		{ServiceState(99), "invalid", false, false, true},
	}
	for _, c := range cases {
		if got := c.st.String(); got != c.str {
			t.Errorf("%d.String() = %q, want %q", int(c.st), got, c.str)
		}
		if got := c.st.Booted(); got != c.booted {
			t.Errorf("%v.Booted() = %v", c.st, got)
		}
		if got := c.st.NeedsLaunch(); got != c.needsLaunch {
			t.Errorf("%v.NeedsLaunch() = %v", c.st, got)
		}
		if got := c.st.Resident(); got != c.resident {
			t.Errorf("%v.Resident() = %v", c.st, got)
		}
	}
}

// TestLifecycleVerbMatrix drives every lifecycle verb against every
// start tier and pins the (error, end-state) pair — the transition
// matrix of the running ↔ warm-memory → cold-disk → cold lifecycle.
func TestLifecycleVerbMatrix(t *testing.T) {
	type verdict struct {
		err   error
		state ServiceState
	}
	cases := []struct {
		from ServiceState
		verb string
		want verdict
	}{
		{StateCold, "demote", verdict{ErrNotBooted, StateCold}},
		{StateCold, "promote", verdict{ErrNotOnDisk, StateCold}},
		{StateCold, "evict", verdict{nil, StateCold}},
		{StateCold, "activate", verdict{nil, StateRunning}},

		// A launch in flight is not yet demotable; eviction is a no-op
		// and the speculative launch completes into WarmMemory.
		{StateLaunching, "demote", verdict{ErrNotBooted, StateWarmMemory}},
		{StateLaunching, "evict", verdict{nil, StateWarmMemory}},

		{StateRunning, "demote", verdict{nil, StateColdDisk}},
		{StateRunning, "promote", verdict{ErrNotOnDisk, StateRunning}},
		{StateRunning, "evict", verdict{nil, StateCold}},
		{StateRunning, "activate", verdict{nil, StateRunning}},

		{StateWarmMemory, "demote", verdict{nil, StateColdDisk}},
		{StateWarmMemory, "promote", verdict{ErrNotOnDisk, StateWarmMemory}},
		{StateWarmMemory, "evict", verdict{nil, StateCold}},
		// The warm hit: a client-driven firing flips the tier with no
		// launch cost.
		{StateWarmMemory, "activate", verdict{nil, StateRunning}},

		{StateColdDisk, "demote", verdict{ErrNotBooted, StateColdDisk}},
		{StateColdDisk, "promote", verdict{nil, StateWarmMemory}},
		{StateColdDisk, "evict", verdict{nil, StateCold}},
		// The disk restore: a client-driven firing pages back in and
		// lands Running.
		{StateColdDisk, "activate", verdict{nil, StateRunning}},
	}
	for _, c := range cases {
		t.Run(c.from.String()+"/"+c.verb, func(t *testing.T) {
			b := diskBoard()
			svc := b.Jitsu.Register(aliceService())
			bringTo(t, b, svc, c.from)
			var err error
			switch c.verb {
			case "demote":
				err = b.Jitsu.Demote(svc)
			case "promote":
				err = b.Jitsu.Promote(svc, nil)
			case "evict":
				b.Jitsu.Evict(svc)
			case "activate":
				err = b.Jitsu.Activate(svc, true, nil)
			}
			b.Eng.Run()
			if err != c.want.err {
				t.Fatalf("%s from %v: err = %v, want %v", c.verb, c.from, err, c.want.err)
			}
			if svc.State != c.want.state {
				t.Fatalf("%s from %v: state = %v, want %v", c.verb, c.from, svc.State, c.want.state)
			}
		})
	}
}

// TestEvictReportsWork pins Evict's boolean: true only when a VM was
// destroyed or checkpoint slots were freed.
func TestEvictReportsWork(t *testing.T) {
	cases := []struct {
		from ServiceState
		want bool
	}{
		{StateCold, false},
		{StateLaunching, false},
		{StateRunning, true},
		{StateWarmMemory, true},
		{StateColdDisk, true},
	}
	for _, c := range cases {
		b := diskBoard()
		svc := b.Jitsu.Register(aliceService())
		bringTo(t, b, svc, c.from)
		if got := b.Jitsu.Evict(svc); got != c.want {
			t.Errorf("Evict from %v = %v, want %v", c.from, got, c.want)
		}
		b.Eng.Run()
	}
}

// TestDemoteWhileActivationInFlight: a demotion racing an in-flight
// launch must refuse with ErrNotBooted — there is no live VM to
// checkpoint yet — and leave the launch to complete normally.
func TestDemoteWhileActivationInFlight(t *testing.T) {
	b := diskBoard()
	svc := b.Jitsu.Register(aliceService())
	readyCalled := false
	var ready error
	if err := b.Jitsu.Activate(svc, true, func(err error) { readyCalled, ready = true, err }); err != nil {
		t.Fatal(err)
	}
	if svc.State != StateLaunching {
		t.Fatalf("state = %v, want launching", svc.State)
	}
	if err := b.Jitsu.Demote(svc); err != ErrNotBooted {
		t.Fatalf("Demote mid-launch = %v, want ErrNotBooted", err)
	}
	b.Eng.Run()
	if !readyCalled || ready != nil {
		t.Fatalf("launch did not complete cleanly: called=%v err=%v", readyCalled, ready)
	}
	if svc.State != StateRunning || svc.Launches != 1 {
		t.Fatalf("after launch: state = %v launches = %d", svc.State, svc.Launches)
	}
	// Now booted, the demotion goes through.
	if err := b.Jitsu.Demote(svc); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if svc.State != StateColdDisk {
		t.Fatalf("state = %v, want cold-disk", svc.State)
	}
}

// TestPromoteRacingClientBoot: a control-plane Promote starts the disk
// restore toward WarmMemory; a client-driven firing arriving while the
// restore is in flight joins it (no second launch) and upgrades the
// completion tier to Running.
func TestPromoteRacingClientBoot(t *testing.T) {
	b := diskBoard()
	svc := b.Jitsu.Register(aliceService())
	bringTo(t, b, svc, StateColdDisk)
	launches := svc.Launches

	promoted := false
	if err := b.Jitsu.Promote(svc, func(err error) {
		if err != nil {
			t.Errorf("promote: %v", err)
		}
		promoted = true
	}); err != nil {
		t.Fatal(err)
	}
	if svc.State != StateLaunching {
		t.Fatalf("state after Promote = %v, want launching", svc.State)
	}

	// The race: a client activation lands mid-restore.
	served := false
	if err := b.Jitsu.Activate(svc, true, func(err error) {
		if err != nil {
			t.Errorf("activate: %v", err)
		}
		served = true
	}); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()

	if !promoted || !served {
		t.Fatalf("callbacks: promoted=%v served=%v", promoted, served)
	}
	if svc.State != StateRunning {
		t.Fatalf("state = %v, want running (client joined the promote)", svc.State)
	}
	if svc.Launches != launches+1 {
		t.Fatalf("launches = %d, want %d (single shared restore leg)", svc.Launches, launches+1)
	}
	if svc.DiskRestores != 1 {
		t.Fatalf("disk restores = %d, want 1", svc.DiskRestores)
	}
}

// TestDemoteForRoomRefusesWhenDiskFull: the memory-pressure demotion
// plans against the checkpoint store; with no free slots it demotes
// nobody and the activation refuses with ErrNoMemory, leaving the
// fallback-to-eviction decision to the caller (the cluster scheduler
// pins that half in TestPreemptDiskFullFallsBackToEviction).
func TestDemoteForRoomRefusesWhenDiskFull(t *testing.T) {
	img := aliceService().Image
	// Memory for one guest, disk for one checkpoint.
	b := New(WithMemory(img.MemMiB),
		WithDisk(blockdev.Config{
			SlotMiB: aliceService().StateSizeMiB(), Slots: 1,
			SeekTime: 6 * time.Millisecond, BytesPerSec: 40e6,
		}))
	mk := func(i byte, name string) *Service {
		cfg := aliceService()
		cfg.Name = name
		cfg.IP = netstack.IPv4(10, 0, 0, 100+i)
		return b.Jitsu.Register(cfg)
	}
	a, c, d := mk(0, "a.family.name"), mk(1, "c.family.name"), mk(2, "d.family.name")

	bringTo(t, b, a, StateRunning)
	// Pressure demotes the LRU victim onto the single disk slot.
	if err := b.Jitsu.Activate(c, true, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if a.State != StateColdDisk || c.State != StateRunning {
		t.Fatalf("after first pressure: a=%v c=%v", a.State, c.State)
	}
	// The store is full: the next pressure plan cannot park the victim,
	// so the firing refuses rather than silently evicting.
	if err := b.Jitsu.Activate(d, true, nil); err != ErrNoMemory {
		t.Fatalf("Activate with full disk = %v, want ErrNoMemory", err)
	}
	if c.State != StateRunning || d.State != StateCold {
		t.Fatalf("refusal mutated states: c=%v d=%v", c.State, d.State)
	}
	// The caller's fallback: explicit eviction frees memory, the launch
	// then proceeds.
	if !b.Jitsu.Evict(c) {
		t.Fatal("Evict refused")
	}
	b.Eng.Run()
	if err := b.Jitsu.Activate(d, true, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if d.State != StateRunning {
		t.Fatalf("d = %v, want running", d.State)
	}
}

// TestDiskRestoreAfterEpochBump: a replica parked on disk must survive
// a DNS state-epoch bump (board joins/leaves move the epoch so cached
// answers die) — the next client fetch pages it in from disk and
// serves, rather than cold-booting or failing.
func TestDiskRestoreAfterEpochBump(t *testing.T) {
	b := diskBoard()
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	bringTo(t, b, svc, StateColdDisk)

	before := b.DNS.Epoch
	b.DNS.BumpEpoch()
	if b.DNS.Epoch == before {
		t.Fatal("epoch did not move")
	}

	var resp *netstack.HTTPResponse
	var gotErr error
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(r *netstack.HTTPResponse, _ sim.Duration, err error) {
			resp, gotErr = r, err
		})
	b.Eng.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "alice") {
		t.Fatalf("resp = %+v", resp)
	}
	if svc.DiskRestores != 1 || svc.State != StateRunning {
		t.Fatalf("disk restores = %d state = %v, want 1/running", svc.DiskRestores, svc.State)
	}
}
