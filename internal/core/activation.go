package core

import (
	"errors"

	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/unikernel"
)

// launchFunc is a boot path: Launcher.Launch for a cold start,
// Launcher.Restore for a migrated-in checkpoint.
type launchFunc = func(unikernel.Image, netstack.IP, func(*unikernel.Guest, error))

// This file is the single activation state machine every trigger
// frontend drives. The paper's insight is that *any* inbound signal — a
// DNS query, a buffered TCP SYN, a toolkit resolve call — can summon a
// unikernel just in time; the code used to reproduce each signal as its
// own hard-wired path. Now the signal-specific frontends (trigger.go)
// only resolve their target and call Fire; the claim-IP →
// launch/restore → flush-waiters → reap lifecycle lives here, once.

// Summon describes one trigger firing: who fired, how the launch and
// any refusal should be accounted, and what to do when the unikernel
// serves.
type Summon struct {
	// Via names the trigger frontend for per-trigger accounting
	// (Activation.Fired). Empty firings are counted under "direct".
	Via string
	// ColdStart marks a client-driven firing: a launch it causes counts
	// in the service's ColdStarts. Speculative firings (prewarm, pool
	// manager) leave the counter alone.
	ColdStart bool
	// Refuse marks a firing whose caller surfaces out-of-memory to the
	// client (a DNS SERVFAIL, a conduit "servfail" line): the refusal
	// counts in the service's ServFails. Control-plane callers leave it
	// false and apply their own policy.
	Refuse bool
	// Force skips the memory admission gate. The SYN path uses it: a raw
	// SYN has no refusal channel, so the launch is attempted regardless
	// and failure surfaces as the guest never booting.
	Force bool
	// OnReady (may be nil) fires once the unikernel serves, or with the
	// launch error if it does not.
	OnReady func(error)
}

// Decision is the activation machine's answer to a trigger firing.
type Decision int

// Decisions.
const (
	// DecisionServe: the service is ready, or a launch is already in
	// flight — answer the client now ("returning a DNS response as soon
	// as the VM resource allocation is complete").
	DecisionServe Decision = iota
	// DecisionColdStart: DecisionServe, and this firing started the
	// launch.
	DecisionColdStart
	// DecisionNoMemory: the image does not fit — §3.3.2's resource
	// exhaustion, surfaced to clients as SERVFAIL.
	DecisionNoMemory
	// DecisionRetired: the service was deregistered; treat as unknown.
	DecisionRetired
)

func (d Decision) String() string {
	switch d {
	case DecisionServe:
		return "serve"
	case DecisionColdStart:
		return "cold-start"
	case DecisionNoMemory:
		return "no-memory"
	default:
		return "retired"
	}
}

// Served reports whether the firing should be answered positively (the
// service is usable now or will be momentarily).
func (d Decision) Served() bool {
	return d == DecisionServe || d == DecisionColdStart
}

// Activation owns the service lifecycle on one board: admission (does
// the image fit), the launch/restore state machine, the idle-IP claim
// handed between proxy and unikernel, the waiters flushed at readiness,
// and the idle reaper. Triggers fire it; it never looks at wire
// formats.
type Activation struct {
	j *Jitsu
	// fired counts firings per trigger name (Summon.Via).
	fired map[string]uint64
	// observers see every firing after its decision (predictive
	// triggers learn arrival patterns here). Empty on a stock board, so
	// the zero-allocation DNS fast path pays one nil check.
	observers []func(svc *Service, s Summon, d Decision)
	// subs see every service state transition, in subscription order —
	// the multi-subscriber fan-out behind Subscribe. The board's
	// tracer rides here next to any test or tooling subscribers.
	subs []func(svc *Service, from, to ServiceState)
	// Trace, when set, observes every service state transition after
	// the subscribers.
	//
	// Deprecated: use Subscribe; the single-func field cannot compose
	// (a second assignment silently displaces the first).
	Trace func(svc *Service, from, to ServiceState)
}

func newActivation(j *Jitsu) *Activation {
	return &Activation{j: j, fired: make(map[string]uint64)}
}

// Fired returns a copy of the per-trigger firing counters.
func (a *Activation) Fired() map[string]uint64 {
	out := make(map[string]uint64, len(a.fired))
	for k, v := range a.fired {
		out[k] = v
	}
	return out
}

// Observe registers fn to see every firing together with its decision.
// Predictive triggers (PrewarmTrigger) learn arrival patterns here;
// observers must not re-enter Fire synchronously.
func (a *Activation) Observe(fn func(svc *Service, s Summon, d Decision)) {
	a.observers = append(a.observers, fn)
}

// Subscribe registers fn to observe every service state transition.
// Subscribers run in subscription order, before the deprecated Trace
// shim; they must not re-enter the activation machine synchronously.
func (a *Activation) Subscribe(fn func(svc *Service, from, to ServiceState)) {
	a.subs = append(a.subs, fn)
}

// tracer returns the board's flight recorder (nil when tracing is off)
// and the lane its events render on.
func (a *Activation) tracer() (*obs.Tracer, int) {
	return a.j.board.Tracer, a.j.board.Cfg.TraceTID
}

// Fire runs the shared activation decision for one trigger firing:
// touch the service, admit (or refuse) a launch if it is stopped, and
// hook OnReady to its readiness. All four built-in frontends, the
// cluster scheduler and the prewarm trigger funnel through here.
func (a *Activation) Fire(svc *Service, s Summon) Decision {
	d := a.fire(svc, s)
	if tr, tid := a.tracer(); tr != nil {
		via := s.Via
		if via == "" {
			via = "direct"
		}
		tr.Instant(tid, "activation", "fire",
			obs.Str("svc", svc.Cfg.Name), obs.Str("via", via), obs.Str("decision", d.String()))
	}
	if len(a.observers) > 0 && d != DecisionRetired {
		for _, fn := range a.observers {
			fn(svc, s, d)
		}
	}
	return d
}

func (a *Activation) fire(svc *Service, s Summon) Decision {
	if svc.retired {
		return DecisionRetired
	}
	via := s.Via
	if via == "" {
		via = "direct"
	}
	a.fired[via]++
	a.touch(svc)
	launching := false
	if svc.State == StateStopped {
		if !s.Force && a.j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			// "resource exhaustion can thus be returned in the DNS
			// response as a SERVFAIL to indicate the client should go
			// elsewhere".
			if s.Refuse {
				svc.ServFails++
			}
			if tr, tid := a.tracer(); tr != nil {
				tr.Instant(tid, "activation", "admission.refuse",
					obs.Str("svc", svc.Cfg.Name),
					obs.Num("free_mib", int64(a.j.board.Hyp.FreeMemMiB())),
					obs.Num("need_mib", int64(svc.Cfg.Image.MemMiB)))
			}
			return DecisionNoMemory
		}
		if s.ColdStart {
			svc.ColdStarts++
		}
		launching = true
	}
	a.ensureRunning(svc, s.OnReady)
	if launching {
		return DecisionColdStart
	}
	return DecisionServe
}

// AwaitReady registers fn to run when svc's in-flight launch completes
// (ok reports success). The delayed-DNS frontend parks its responders
// here; FIFO order among waiters is part of the determinism contract.
func (a *Activation) AwaitReady(svc *Service, fn func(ok bool)) {
	svc.waiters = append(svc.waiters, fn)
}

// restore is Fire for a migrated-in replica: the domain is rebuilt from
// the checkpoint and the guest resumes instead of cold-booting.
func (a *Activation) restore(svc *Service, cp *Checkpoint, onReady func(error)) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if svc.State != StateStopped {
		return errors.New("core: restore target not stopped")
	}
	if a.j.board.Hyp.FreeMemMiB() < cp.Image.MemMiB {
		return ErrNoMemory
	}
	a.touch(svc)
	svc.Restores++
	a.launchVia(svc, "restore", a.j.board.Launcher.Restore, onReady)
	return nil
}

// claimIdleIP puts a stopped service's address under proxy control:
// Synjitsu aliases it (full handshake), or — without Synjitsu — the
// directory host answers only ARP so SYNs transmit and die, the
// baseline behaviour of Figure 9a.
func (a *Activation) claimIdleIP(svc *Service) {
	b := a.j.board
	if b.Tracer != nil {
		b.Tracer.Instant(b.Cfg.TraceTID, "activation", "claim_ip", obs.Str("svc", svc.Cfg.Name))
	}
	if b.Syn != nil {
		b.Syn.claim(svc)
	} else {
		b.NS.ProxyARPFor(svc.Cfg.IP)
		b.NS.AnnounceIP(svc.Cfg.IP)
	}
}

// releaseIdleIP undoes claimIdleIP when the real unikernel takes over.
func (a *Activation) releaseIdleIP(svc *Service) {
	b := a.j.board
	if b.Tracer != nil {
		b.Tracer.Instant(b.Cfg.TraceTID, "activation", "release_ip", obs.Str("svc", svc.Cfg.Name))
	}
	if b.Syn != nil {
		b.Syn.release(svc)
	} else {
		b.NS.RemoveProxyARP(svc.Cfg.IP)
	}
}

// touch records service activity for the idle reaper.
func (a *Activation) touch(svc *Service) {
	svc.lastActivity = a.j.board.Eng.Now()
}

// setState moves a service between lifecycle states, fanning the
// transition out to every subscriber (and the deprecated Trace shim).
func (a *Activation) setState(svc *Service, to ServiceState) {
	from := svc.State
	svc.State = to
	if from == to {
		return
	}
	for _, fn := range a.subs {
		fn(svc, from, to)
	}
	if a.Trace != nil {
		a.Trace(svc, from, to)
	}
}

// ensureRunning launches the service's unikernel if needed. onReady (may
// be nil) fires once the unikernel serves.
func (a *Activation) ensureRunning(svc *Service, onReady func(error)) {
	switch svc.State {
	case StateReady:
		if onReady != nil {
			onReady(nil)
		}
		return
	case StateLaunching:
		if onReady != nil {
			prev := svc.waiters
			svc.waiters = append(prev, func(ok bool) {
				if ok {
					onReady(nil)
				} else {
					onReady(errors.New("core: launch failed"))
				}
			})
		}
		return
	}
	a.launchVia(svc, "boot", a.j.board.Launcher.Launch, onReady)
}

// launchVia runs the launch state machine through the given boot path —
// Launcher.Launch for a cold start ("boot"), Launcher.Restore for a
// migrated-in checkpoint ("restore"). The caller guarantees svc is
// Stopped. The whole path is one span on the board's tracer, and the
// latency lands in the matching registry histogram.
func (a *Activation) launchVia(svc *Service, kind string, launch launchFunc, onReady func(error)) {
	a.setState(svc, StateLaunching)
	svc.Launches++
	svc.launchStart = a.j.board.Eng.Now()
	if tr, tid := a.tracer(); tr != nil {
		svc.bootSpan = tr.Begin(tid, "activation", kind,
			obs.Str("svc", svc.Cfg.Name), obs.Num("mem_mib", int64(svc.Cfg.Image.MemMiB)))
	}
	launch(svc.Cfg.Image, svc.Cfg.IP, func(g *unikernel.Guest, err error) {
		if err != nil {
			a.setState(svc, StateStopped)
			a.endBootSpan(svc, "error")
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(err)
			}
			return
		}
		if svc.retired {
			// The directory dropped this service mid-boot (its board
			// departed): destroy the guest instead of resurrecting a
			// retired registration and leaking its domain.
			a.setState(svc, StateStopped)
			a.endBootSpan(svc, "retired")
			a.j.board.Launcher.Destroy(g, nil)
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(errors.New("core: service deregistered during launch"))
			}
			return
		}
		svc.Guest = g
		// Two-phase handoff from the proxy happens inside this same
		// event, before any network event can interleave, so exactly
		// one of Synjitsu or the unikernel ever answers a given packet.
		a.releaseIdleIP(svc)
		a.setState(svc, StateReady)
		a.j.board.histFor(kind).Observe(a.j.board.Eng.Now() - svc.launchStart)
		a.endBootSpan(svc, "ready")
		a.touch(svc)
		a.scheduleReap(svc)
		a.flushWaiters(svc, true)
		if onReady != nil {
			onReady(nil)
		}
	})
}

// endBootSpan closes the service's in-flight boot/restore span, if any.
func (a *Activation) endBootSpan(svc *Service, status string) {
	if svc.bootSpan.ID == 0 {
		return
	}
	a.j.board.Tracer.End(svc.bootSpan, obs.Str("status", status))
	svc.bootSpan = obs.Span{}
}

// stopNow tears a ready service down: shared by Stop and the idle reaper.
func (a *Activation) stopNow(svc *Service, done func()) {
	svc.Reaps++
	g := svc.Guest
	svc.Guest = nil
	a.setState(svc, StateStopped)
	a.claimIdleIP(svc)
	a.j.board.Launcher.Destroy(g, func(error) {
		if done != nil {
			done()
		}
	})
}

func (a *Activation) flushWaiters(svc *Service, ok bool) {
	ws := svc.waiters
	svc.waiters = nil
	for _, w := range ws {
		w(ok)
	}
}

// scheduleReap arms the idle timer: when the service has seen no
// activity for IdleTimeout, its VM is destroyed and the IP returns to
// proxy control — "services listening on a network endpoint are always
// available ... but are otherwise not running to reduce resource
// utilisation".
func (a *Activation) scheduleReap(svc *Service) {
	idle := svc.Cfg.IdleTimeout
	if idle <= 0 {
		return
	}
	eng := a.j.board.Eng
	deadline := svc.lastActivity + idle
	eng.At(deadline, func() {
		if svc.State != StateReady {
			return
		}
		if eng.Now()-svc.lastActivity < idle {
			a.scheduleReap(svc) // activity moved the deadline
			return
		}
		a.stopNow(svc, nil)
	})
}
