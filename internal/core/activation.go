package core

import (
	"errors"
	"sort"

	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/unikernel"
)

// launchFunc is a boot path: Launcher.Launch for a cold start,
// Launcher.Restore for a migrated-in checkpoint.
type launchFunc = func(unikernel.Image, netstack.IP, func(*unikernel.Guest, error))

// This file is the single activation state machine every trigger
// frontend drives. The paper's insight is that *any* inbound signal — a
// DNS query, a buffered TCP SYN, a toolkit resolve call — can summon a
// unikernel just in time; the code used to reproduce each signal as its
// own hard-wired path. Now the signal-specific frontends (trigger.go)
// only resolve their target and call Fire; the claim-IP →
// launch/restore → flush-waiters → reap lifecycle lives here, once.

// Summon describes one trigger firing: who fired, how the launch and
// any refusal should be accounted, and what to do when the unikernel
// serves.
type Summon struct {
	// Via names the trigger frontend for per-trigger accounting
	// (Activation.Fired). Empty firings are counted under "direct".
	Via string
	// ColdStart marks a client-driven firing: a launch it causes counts
	// in the service's ColdStarts. Speculative firings (prewarm, pool
	// manager) leave the counter alone.
	ColdStart bool
	// Refuse marks a firing whose caller surfaces out-of-memory to the
	// client (a DNS SERVFAIL, a conduit "servfail" line): the refusal
	// counts in the service's ServFails. Control-plane callers leave it
	// false and apply their own policy.
	Refuse bool
	// Force skips the memory admission gate. The SYN path uses it: a raw
	// SYN has no refusal channel, so the launch is attempted regardless
	// and failure surfaces as the guest never booting.
	Force bool
	// OnReady (may be nil) fires once the unikernel serves, or with the
	// launch error if it does not.
	OnReady func(error)
}

// Decision is the activation machine's answer to a trigger firing.
type Decision int

// Decisions.
const (
	// DecisionServe: the service is ready, or a launch is already in
	// flight — answer the client now ("returning a DNS response as soon
	// as the VM resource allocation is complete").
	DecisionServe Decision = iota
	// DecisionColdStart: DecisionServe, and this firing started the
	// launch.
	DecisionColdStart
	// DecisionNoMemory: the image does not fit — §3.3.2's resource
	// exhaustion, surfaced to clients as SERVFAIL.
	DecisionNoMemory
	// DecisionRetired: the service was deregistered; treat as unknown.
	DecisionRetired
)

func (d Decision) String() string {
	switch d {
	case DecisionServe:
		return "serve"
	case DecisionColdStart:
		return "cold-start"
	case DecisionNoMemory:
		return "no-memory"
	default:
		return "retired"
	}
}

// Served reports whether the firing should be answered positively (the
// service is usable now or will be momentarily).
func (d Decision) Served() bool {
	return d == DecisionServe || d == DecisionColdStart
}

// Activation owns the service lifecycle on one board: admission (does
// the image fit), the launch/restore state machine, the idle-IP claim
// handed between proxy and unikernel, the waiters flushed at readiness,
// and the idle reaper. Triggers fire it; it never looks at wire
// formats.
type Activation struct {
	j *Jitsu
	// fired counts firings per trigger name (Summon.Via).
	fired map[string]uint64
	// observers see every firing after its decision (predictive
	// triggers learn arrival patterns here). Empty on a stock board, so
	// the zero-allocation DNS fast path pays one nil check.
	observers []func(svc *Service, s Summon, d Decision)
	// subs see every service state transition, in subscription order —
	// the multi-subscriber fan-out behind Subscribe. The board's
	// tracer rides here next to any test or tooling subscribers.
	subs []func(svc *Service, from, to ServiceState)
}

func newActivation(j *Jitsu) *Activation {
	return &Activation{j: j, fired: make(map[string]uint64)}
}

// Fired returns a copy of the per-trigger firing counters.
func (a *Activation) Fired() map[string]uint64 {
	out := make(map[string]uint64, len(a.fired))
	for k, v := range a.fired {
		out[k] = v
	}
	return out
}

// Observe registers fn to see every firing together with its decision.
// Predictive triggers (PrewarmTrigger) learn arrival patterns here;
// observers must not re-enter Fire synchronously.
func (a *Activation) Observe(fn func(svc *Service, s Summon, d Decision)) {
	a.observers = append(a.observers, fn)
}

// Subscribe registers fn to observe every service state transition.
// Subscribers run in subscription order; they must not re-enter the
// activation machine synchronously.
func (a *Activation) Subscribe(fn func(svc *Service, from, to ServiceState)) {
	a.subs = append(a.subs, fn)
}

// tracer returns the board's flight recorder (nil when tracing is off)
// and the lane its events render on.
func (a *Activation) tracer() (*obs.Tracer, int) {
	return a.j.board.Tracer, a.j.board.Cfg.TraceTID
}

// Fire runs the shared activation decision for one trigger firing:
// touch the service, admit (or refuse) a launch if it is stopped, and
// hook OnReady to its readiness. All four built-in frontends, the
// cluster scheduler and the prewarm trigger funnel through here.
func (a *Activation) Fire(svc *Service, s Summon) Decision {
	d := a.fire(svc, s)
	if tr, tid := a.tracer(); tr != nil {
		via := s.Via
		if via == "" {
			via = "direct"
		}
		tr.Instant(tid, "activation", "fire",
			obs.Str("svc", svc.Cfg.Name), obs.Str("via", via), obs.Str("decision", d.String()))
	}
	if len(a.observers) > 0 && d != DecisionRetired {
		for _, fn := range a.observers {
			fn(svc, s, d)
		}
	}
	return d
}

func (a *Activation) fire(svc *Service, s Summon) Decision {
	if svc.retired {
		return DecisionRetired
	}
	via := s.Via
	if via == "" {
		via = "direct"
	}
	a.fired[via]++
	a.touch(svc)
	if s.ColdStart && svc.State == StateWarmMemory {
		// The warm hit: a speculatively booted replica takes its first
		// client-driven traffic and becomes Running at zero launch cost.
		a.setState(svc, StateRunning)
	}
	launching := false
	if svc.State.NeedsLaunch() {
		wasCold := svc.State == StateCold
		if !s.Force && a.j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
			if a.demoteForRoom(svc, s) {
				// Memory is being reclaimed by demoting LRU victims; the
				// launch leg runs once their domains are destroyed.
				if s.ColdStart && wasCold {
					svc.ColdStarts++
				}
				return DecisionColdStart
			}
			// "resource exhaustion can thus be returned in the DNS
			// response as a SERVFAIL to indicate the client should go
			// elsewhere".
			if s.Refuse {
				svc.ServFails++
			}
			if tr, tid := a.tracer(); tr != nil {
				tr.Instant(tid, "activation", "admission.refuse",
					obs.Str("svc", svc.Cfg.Name),
					obs.Num("free_mib", int64(a.j.board.Hyp.FreeMemMiB())),
					obs.Num("need_mib", int64(svc.Cfg.Image.MemMiB)))
			}
			return DecisionNoMemory
		}
		if s.ColdStart && wasCold {
			svc.ColdStarts++
		}
		launching = true
	} else if svc.State == StateLaunching && s.ColdStart && svc.launchTarget == StateWarmMemory {
		// A client joined an in-flight speculative launch: it now
		// completes straight into Running.
		svc.launchTarget = StateRunning
	}
	a.ensureRunning(svc, launchTargetFor(s), s.OnReady)
	if launching {
		return DecisionColdStart
	}
	return DecisionServe
}

// launchTargetFor maps a firing to the tier its launch completes into:
// Running for a client-driven firing, WarmMemory for a speculative one.
func launchTargetFor(s Summon) ServiceState {
	if s.ColdStart {
		return StateRunning
	}
	return StateWarmMemory
}

// AwaitReady registers fn to run when svc's in-flight launch completes
// (ok reports success). The delayed-DNS frontend parks its responders
// here; FIFO order among waiters is part of the determinism contract.
func (a *Activation) AwaitReady(svc *Service, fn func(ok bool)) {
	svc.waiters = append(svc.waiters, fn)
}

// restore is Fire for a migrated-in replica: the domain is rebuilt from
// the checkpoint and the guest resumes instead of cold-booting.
func (a *Activation) restore(svc *Service, cp *Checkpoint, onReady func(error)) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if svc.State != StateCold {
		return errors.New("core: restore target not cold")
	}
	if a.j.board.Hyp.FreeMemMiB() < cp.Image.MemMiB {
		return ErrNoMemory
	}
	a.touch(svc)
	svc.Restores++
	a.launchVia(svc, "restore", StateWarmMemory, a.j.board.Launcher.Restore, onReady)
	return nil
}

// claimIdleIP puts a stopped service's address under proxy control:
// Synjitsu aliases it (full handshake), or — without Synjitsu — the
// directory host answers only ARP so SYNs transmit and die, the
// baseline behaviour of Figure 9a.
func (a *Activation) claimIdleIP(svc *Service) {
	b := a.j.board
	if b.Tracer != nil {
		b.Tracer.Instant(b.Cfg.TraceTID, "activation", "claim_ip", obs.Str("svc", svc.Cfg.Name))
	}
	if b.Syn != nil {
		b.Syn.claim(svc)
	} else {
		b.NS.ProxyARPFor(svc.Cfg.IP)
		b.NS.AnnounceIP(svc.Cfg.IP)
	}
}

// releaseIdleIP undoes claimIdleIP when the real unikernel takes over.
func (a *Activation) releaseIdleIP(svc *Service) {
	b := a.j.board
	if b.Tracer != nil {
		b.Tracer.Instant(b.Cfg.TraceTID, "activation", "release_ip", obs.Str("svc", svc.Cfg.Name))
	}
	if b.Syn != nil {
		b.Syn.release(svc)
	} else {
		b.NS.RemoveProxyARP(svc.Cfg.IP)
	}
}

// touch records service activity for the idle reaper.
func (a *Activation) touch(svc *Service) {
	svc.lastActivity = a.j.board.Eng.Now()
}

// setState moves a service between lifecycle states, fanning the
// transition out to every subscriber.
func (a *Activation) setState(svc *Service, to ServiceState) {
	from := svc.State
	svc.State = to
	if from == to {
		return
	}
	for _, fn := range a.subs {
		fn(svc, from, to)
	}
}

// ensureRunning gets the service to a booted tier if it is not there
// already: join an in-flight launch, page a disk checkpoint back in, or
// cold-boot. target is the tier a launch this call starts completes
// into; onReady (may be nil) fires once the unikernel serves.
func (a *Activation) ensureRunning(svc *Service, target ServiceState, onReady func(error)) {
	switch {
	case svc.State.Booted():
		if onReady != nil {
			onReady(nil)
		}
		return
	case svc.State == StateLaunching:
		if onReady != nil {
			prev := svc.waiters
			svc.waiters = append(prev, func(ok bool) {
				if ok {
					onReady(nil)
				} else {
					onReady(errors.New("core: launch failed"))
				}
			})
		}
		return
	case svc.State == StateColdDisk:
		a.promoteVia(svc, target, onReady)
		return
	}
	a.launchVia(svc, "boot", target, a.j.board.Launcher.Launch, onReady)
}

// launchVia runs the launch state machine through the given boot path —
// Launcher.Launch for a cold start ("boot"), Launcher.Restore for a
// migrated-in checkpoint ("restore") or a disk promote ("disk-restore").
// The caller guarantees svc needs a launch. The whole path is one span
// on the board's tracer, and the latency lands in the matching registry
// histogram.
func (a *Activation) launchVia(svc *Service, kind string, target ServiceState, launch launchFunc, onReady func(error)) {
	svc.launchTarget = target
	a.setState(svc, StateLaunching)
	svc.Launches++
	svc.launchStart = a.j.board.Eng.Now()
	if tr, tid := a.tracer(); tr != nil {
		svc.bootSpan = tr.Begin(tid, "activation", kind,
			obs.Str("svc", svc.Cfg.Name), obs.Num("mem_mib", int64(svc.Cfg.Image.MemMiB)))
	}
	launch(svc.Cfg.Image, svc.Cfg.IP, func(g *unikernel.Guest, err error) {
		if err != nil {
			a.setState(svc, a.revertState(svc))
			a.endBootSpan(svc, "error")
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(err)
			}
			return
		}
		if svc.retired {
			// The directory dropped this service mid-boot (its board
			// departed): destroy the guest instead of resurrecting a
			// retired registration and leaking its domain.
			a.setState(svc, StateCold)
			a.endBootSpan(svc, "retired")
			a.j.board.Launcher.Destroy(g, nil)
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(errors.New("core: service deregistered during launch"))
			}
			return
		}
		svc.Guest = g
		// Two-phase handoff from the proxy happens inside this same
		// event, before any network event can interleave, so exactly
		// one of Synjitsu or the unikernel ever answers a given packet.
		a.releaseIdleIP(svc)
		// A completed disk restore supersedes the parked checkpoint.
		a.dropDiskCheckpoint(svc)
		a.setState(svc, svc.launchTarget)
		a.j.board.histFor(kind).Observe(a.j.board.Eng.Now() - svc.launchStart)
		a.endBootSpan(svc, "ready")
		a.touch(svc)
		a.scheduleReap(svc)
		a.flushWaiters(svc, true)
		if onReady != nil {
			onReady(nil)
		}
	})
}

// revertState is where a failed launch leaves the replica: back on disk
// if its checkpoint is still parked there, fully cold otherwise.
func (a *Activation) revertState(svc *Service) ServiceState {
	if svc.disk != nil {
		return StateColdDisk
	}
	return StateCold
}

// endBootSpan closes the service's in-flight boot/restore span, if any.
func (a *Activation) endBootSpan(svc *Service, status string) {
	if svc.bootSpan.ID == 0 {
		return
	}
	a.j.board.Tracer.End(svc.bootSpan, obs.Str("status", status))
	svc.bootSpan = obs.Span{}
}

// stopNow tears a booted service down to fully cold: shared by Evict
// and the idle reaper.
func (a *Activation) stopNow(svc *Service, done func()) {
	svc.Reaps++
	g := svc.Guest
	svc.Guest = nil
	a.setState(svc, StateCold)
	a.claimIdleIP(svc)
	a.j.board.Launcher.Destroy(g, func(error) {
		if done != nil {
			done()
		}
	})
}

// demote parks a booted replica's state on the block device and
// destroys its VM: warm-in-memory → cold-on-disk. done (may be nil)
// fires at Destroy completion — the memory is back in the free pool —
// while the checkpoint bytes stream out asynchronously behind it; a
// promote racing the write is serialized by the device's FIFO queue.
func (a *Activation) demote(svc *Service, done func()) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if !svc.State.Booted() {
		return ErrNotBooted
	}
	dev := a.j.board.Disk
	if dev == nil {
		return ErrNoDisk
	}
	cp, ok := a.j.Checkpoint(svc)
	if !ok {
		return ErrNotBooted
	}
	slots, ok := dev.Alloc(cp.StateMiB)
	if !ok {
		return ErrDiskFull
	}
	svc.Demotions++
	d := &diskCheckpoint{cp: *cp, slots: slots}
	svc.disk = d
	b := a.j.board
	start := b.Eng.Now()
	var span obs.Span
	if tr, tid := a.tracer(); tr != nil {
		span = tr.Begin(tid, "activation", "demote",
			obs.Str("svc", svc.Cfg.Name), obs.Num("state_mib", int64(cp.StateMiB)))
	}
	g := svc.Guest
	svc.Guest = nil
	a.setState(svc, StateColdDisk)
	a.claimIdleIP(svc)
	b.Launcher.Destroy(g, func(error) {
		if done != nil {
			done()
		}
	})
	dev.Write(cp.StateMiB, func() {
		if svc.disk == d {
			d.durable = true
		}
		b.demoteHist.Observe(b.Eng.Now() - start)
		if span.ID != 0 {
			b.Tracer.End(span, obs.Str("status", "durable"))
		}
	})
	return nil
}

// promote is the control-plane entry for cold-on-disk →
// warm-in-memory: admission, then the disk-restore leg.
func (a *Activation) promote(svc *Service, target ServiceState, onReady func(error)) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if svc.State != StateColdDisk {
		return ErrNotOnDisk
	}
	if a.j.board.Hyp.FreeMemMiB() < svc.Cfg.Image.MemMiB {
		return ErrNoMemory
	}
	a.promoteVia(svc, target, onReady)
	return nil
}

// promoteVia runs the disk-restore launch leg: read the checkpoint off
// the device (FIFO-ordered behind any in-flight demotion write), then
// rebuild the domain restore-style — priced between a warm restore and
// a full boot. The caller guarantees svc is ColdDisk and admitted.
func (a *Activation) promoteVia(svc *Service, target ServiceState, onReady func(error)) {
	svc.DiskRestores++
	dev := a.j.board.Disk
	stateMiB := svc.disk.cp.StateMiB
	restore := a.j.board.Launcher.Restore
	a.launchVia(svc, "disk-restore", target, func(img unikernel.Image, ip netstack.IP, done func(*unikernel.Guest, error)) {
		dev.Read(stateMiB, func() {
			restore(img, ip, done)
		})
	}, onReady)
}

// adoptCheckpoint parks an incoming checkpoint on this board's disk
// without booting it: cold → cold-on-disk.
func (a *Activation) adoptCheckpoint(svc *Service, cp *Checkpoint) error {
	if svc.retired {
		return ErrNoSuchService
	}
	if svc.State != StateCold {
		return errors.New("core: adopt target not cold")
	}
	dev := a.j.board.Disk
	if dev == nil {
		return ErrNoDisk
	}
	slots, ok := dev.Alloc(cp.StateMiB)
	if !ok {
		return ErrDiskFull
	}
	d := &diskCheckpoint{cp: *cp, slots: slots}
	svc.disk = d
	a.setState(svc, StateColdDisk)
	dev.Write(cp.StateMiB, func() {
		if svc.disk == d {
			d.durable = true
		}
	})
	return nil
}

// dropDiskCheckpoint frees a replica's parked checkpoint, if any. The
// lifecycle state is the caller's concern — a completed promote moves
// to a booted tier, an eviction to Cold.
func (a *Activation) dropDiskCheckpoint(svc *Service) {
	if svc.disk == nil {
		return
	}
	a.j.board.Disk.Free(svc.disk.slots)
	svc.disk = nil
}

// demoteForRoom is the memory-pressure path: when admission fails on a
// board with a disk, the least-recently-used booted replicas are
// demoted until the projected free memory covers the launch, and the
// launch leg runs once their domains are destroyed. Plan-then-execute:
// a plan that cannot reach the target (disk full, not enough victims)
// demotes nobody and the firing refuses as before. Candidate order is
// LRU by last activity with the name as the deterministic tie-break.
func (a *Activation) demoteForRoom(svc *Service, s Summon) bool {
	dev := a.j.board.Disk
	if dev == nil {
		return false
	}
	need := svc.Cfg.Image.MemMiB
	var cands []*Service
	for _, c := range a.j.services {
		if c != svc && c.State.Booted() {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, k int) bool {
		if cands[i].lastActivity != cands[k].lastActivity {
			return cands[i].lastActivity < cands[k].lastActivity
		}
		return cands[i].Cfg.Name < cands[k].Cfg.Name
	})
	free := a.j.board.Hyp.FreeMemMiB()
	slotsFree := dev.SlotsTotal() - dev.SlotsUsed()
	var victims []*Service
	for _, c := range cands {
		if free >= need {
			break
		}
		sn := dev.SlotsFor(c.Cfg.StateMiB)
		if sn > slotsFree {
			continue
		}
		slotsFree -= sn
		free += c.Cfg.Image.MemMiB
		victims = append(victims, c)
	}
	if free < need {
		return false
	}
	if tr, tid := a.tracer(); tr != nil {
		tr.Instant(tid, "activation", "pressure.demote",
			obs.Str("svc", svc.Cfg.Name), obs.Num("victims", int64(len(victims))))
	}
	wasDisk := svc.State == StateColdDisk
	target := launchTargetFor(s)
	onReady := s.OnReady
	svc.launchTarget = target
	a.setState(svc, StateLaunching)
	pending := len(victims)
	proceed := func() {
		pending--
		if pending > 0 {
			return
		}
		if svc.retired {
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(ErrNoSuchService)
			}
			return
		}
		if a.j.board.Hyp.FreeMemMiB() < need {
			// Another placement consumed the reclaimed memory first.
			a.setState(svc, a.revertState(svc))
			a.flushWaiters(svc, false)
			if onReady != nil {
				onReady(ErrNoMemory)
			}
			return
		}
		if wasDisk {
			a.promoteVia(svc, target, onReady)
		} else {
			a.launchVia(svc, "boot", target, a.j.board.Launcher.Launch, onReady)
		}
	}
	for _, v := range victims {
		if err := a.demote(v, proceed); err != nil {
			proceed()
		}
	}
	return true
}

func (a *Activation) flushWaiters(svc *Service, ok bool) {
	ws := svc.waiters
	svc.waiters = nil
	for _, w := range ws {
		w(ok)
	}
}

// scheduleReap arms the idle timer: when the service has seen no
// activity for IdleTimeout, its VM is destroyed and the IP returns to
// proxy control — "services listening on a network endpoint are always
// available ... but are otherwise not running to reduce resource
// utilisation".
func (a *Activation) scheduleReap(svc *Service) {
	idle := svc.Cfg.IdleTimeout
	if idle <= 0 {
		return
	}
	eng := a.j.board.Eng
	deadline := svc.lastActivity + idle
	eng.At(deadline, func() {
		if !svc.State.Booted() {
			return
		}
		if eng.Now()-svc.lastActivity < idle {
			a.scheduleReap(svc) // activity moved the deadline
			return
		}
		a.stopNow(svc, nil)
	})
}
