package core

import "jitsu/internal/sim"

// Per-trigger admission policy. The SYN frontend is the dangerous one:
// a raw SYN has no refusal channel, so its firings Force past the
// memory gate — which means a SYN flood sweeping the service IPs (or
// hammering one reaped service) can drive a boot storm the directory
// never gets to refuse. A deterministic token bucket per service caps
// how often a SYN may *start a launch*; warm traffic and in-flight
// boots are never throttled, and the DNS/conduit paths keep their
// explicit SERVFAIL refusal channel instead.

// tokenBucket is a sim-time token bucket: rate tokens/second, capped at
// burst. Deterministic — it reads nothing but virtual time.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Duration
}

func newTokenBucket(rate float64, burst int, now sim.Duration) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take refills by elapsed virtual time and consumes one token; false
// means the caller is over its admission rate.
func (tb *tokenBucket) take(now sim.Duration) bool {
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// synAdmission is the per-service launch rate limit applied by the SYN
// trigger. Disabled (nil buckets, admit everything) unless the board
// sets SYNLaunchRate.
type synAdmission struct {
	rate    float64
	burst   int
	buckets map[*Service]*tokenBucket
}

func newSynAdmission(rate float64, burst int) *synAdmission {
	return &synAdmission{rate: rate, burst: burst, buckets: make(map[*Service]*tokenBucket)}
}

// admit reports whether svc may start one more SYN-triggered launch now.
func (a *synAdmission) admit(svc *Service, now sim.Duration) bool {
	tb := a.buckets[svc]
	if tb == nil {
		tb = newTokenBucket(a.rate, a.burst, now)
		a.buckets[svc] = tb
	}
	return tb.take(now)
}
