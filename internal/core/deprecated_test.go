package core

// This file is the only place the deprecated positional constructors
// may still be called: it pins the shim behaviour (NewBoard ≡ New with
// the same config) so external users migrating gradually stay safe. The
// CI `deprecations` check greps the tree for new calls and excludes
// exactly this file.

import (
	"testing"

	"jitsu/internal/sim"
)

func TestDeprecatedConstructorsMatchOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	old := NewBoard(cfg)
	new_ := New(WithSeed(42))
	a, b := old.Cfg, new_.Cfg
	// DefaultConfig hands each board a fresh platform model; the values
	// match even though the pointers differ.
	if a.Platform.Name != b.Platform.Name {
		t.Fatalf("platforms diverge: %+v vs %+v", *a.Platform, *b.Platform)
	}
	a.Platform, b.Platform = nil, nil
	if a != b {
		t.Fatalf("NewBoard(cfg) config %+v != New(WithSeed) config %+v", a, b)
	}
	if len(old.Triggers()) != len(new_.Triggers()) {
		t.Fatalf("trigger sets differ: %d vs %d", len(old.Triggers()), len(new_.Triggers()))
	}
}

func TestDeprecatedNewBoardOnEngineSharesEngine(t *testing.T) {
	eng := sim.New(1)
	b := NewBoardOnEngine(eng, DefaultConfig())
	if b.Eng != eng {
		t.Fatal("NewBoardOnEngine did not use the shared engine")
	}
}

// TestDeprecatedTraceShimStillFires pins the single-func Trace field:
// it must keep observing transitions, after the Subscribe fan-out, so
// external assignments migrating gradually stay safe.
func TestDeprecatedTraceShimStillFires(t *testing.T) {
	b := New()
	svc := b.Jitsu.Register(aliceService())
	var order []string
	b.Jitsu.Activation().Subscribe(func(_ *Service, from, to ServiceState) {
		order = append(order, "sub:"+from.String()+"->"+to.String())
	})
	b.Jitsu.Activation().Trace = func(_ *Service, from, to ServiceState) {
		order = append(order, "shim:"+from.String()+"->"+to.String())
	}
	if err := b.Jitsu.Activate(svc, false, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if len(order) < 4 || order[0] != "sub:stopped->launching" || order[1] != "shim:stopped->launching" {
		t.Fatalf("shim did not fire after subscribers: %v", order)
	}
}
