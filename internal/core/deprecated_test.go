package core

// This file is the only place the deprecated positional constructors
// may still be called: it pins the shim behaviour (NewBoard ≡ New with
// the same config) so external users migrating gradually stay safe. The
// CI `deprecations` check greps the tree for new calls and excludes
// exactly this file.

import (
	"testing"

	"jitsu/internal/sim"
)

func TestDeprecatedConstructorsMatchOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	old := NewBoard(cfg)
	new_ := New(WithSeed(42))
	a, b := old.Cfg, new_.Cfg
	// DefaultConfig hands each board a fresh platform model; the values
	// match even though the pointers differ.
	if a.Platform.Name != b.Platform.Name {
		t.Fatalf("platforms diverge: %+v vs %+v", *a.Platform, *b.Platform)
	}
	a.Platform, b.Platform = nil, nil
	if a != b {
		t.Fatalf("NewBoard(cfg) config %+v != New(WithSeed) config %+v", a, b)
	}
	if len(old.Triggers()) != len(new_.Triggers()) {
		t.Fatalf("trigger sets differ: %d vs %d", len(old.Triggers()), len(new_.Triggers()))
	}
}

func TestDeprecatedNewBoardOnEngineSharesEngine(t *testing.T) {
	eng := sim.New(1)
	b := NewBoardOnEngine(eng, DefaultConfig())
	if b.Eng != eng {
		t.Fatal("NewBoardOnEngine did not use the shared engine")
	}
}

// TestDeprecatedStopShimsStillEvict pins the two-tier-era reclaim entry
// points: Stop/StopWith must keep behaving exactly like Evict/EvictWith
// (VM destroyed, warm state discarded, service back to Cold) while
// external callers migrate to the tiered Demote/Evict verbs.
func TestDeprecatedStopShimsStillEvict(t *testing.T) {
	b := New()
	svc := b.Jitsu.Register(aliceService())
	if b.Jitsu.Stop(svc) {
		t.Fatal("Stop on a cold service reported an eviction")
	}

	if err := b.Jitsu.Activate(svc, true, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if !b.Jitsu.Stop(svc) {
		t.Fatal("Stop on a booted service refused")
	}
	b.Eng.Run()
	if svc.State != StateCold {
		t.Fatalf("state after Stop = %v, want cold", svc.State)
	}

	if err := b.Jitsu.Activate(svc, true, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	done := false
	if !b.Jitsu.StopWith(svc, func() { done = true }) {
		t.Fatal("StopWith on a booted service refused")
	}
	b.Eng.Run()
	if !done || svc.State != StateCold {
		t.Fatalf("after StopWith: done=%v state=%v, want true/cold", done, svc.State)
	}
}

// TestDeprecatedTraceShimStillFires pins the single-func Trace field:
// it must keep observing transitions, after the Subscribe fan-out, so
// external assignments migrating gradually stay safe.
func TestDeprecatedTraceShimStillFires(t *testing.T) {
	b := New()
	svc := b.Jitsu.Register(aliceService())
	var order []string
	b.Jitsu.Activation().Subscribe(func(_ *Service, from, to ServiceState) {
		order = append(order, "sub:"+from.String()+"->"+to.String())
	})
	b.Jitsu.Activation().Trace = func(_ *Service, from, to ServiceState) {
		order = append(order, "shim:"+from.String()+"->"+to.String())
	}
	if err := b.Jitsu.Activate(svc, false, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if len(order) < 4 || order[0] != "sub:cold->launching" || order[1] != "shim:cold->launching" {
		t.Fatalf("shim did not fire after subscribers: %v", order)
	}
}
