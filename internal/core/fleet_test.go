package core

import (
	"errors"
	"testing"
	"time"

	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
)

func fleetService() ServiceConfig {
	return ServiceConfig{
		Name:  "alice.family.name",
		IP:    netstack.IPv4(10, 0, 0, 20),
		Port:  80,
		Image: unikernel.UnikernelImage("alice", unikernel.NewStaticSiteApp("alice")),
	}
}

func TestFleetServesFromFirstBoard(t *testing.T) {
	f := NewFleet(2)
	f.RegisterEverywhere(fleetService())
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var servedBy int
	var status int
	fc.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			servedBy, status = board, resp.Status
		})
	f.RunAll()
	if servedBy != 0 || status != 200 {
		t.Fatalf("served by board %d status %d", servedBy, status)
	}
	if fc.ServFails != 0 {
		t.Fatalf("servfails = %d", fc.ServFails)
	}
}

func TestFleetFailsOverOnServFail(t *testing.T) {
	// Board 0 has no memory for guests: it must answer SERVFAIL and the
	// client must transparently land on board 1.
	cfg := DefaultConfig()
	f := NewFleet(2, WithConfig(cfg))
	f.Boards[0].Hyp.TotalMemMiB = 8
	svcs := f.RegisterEverywhere(fleetService())
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var servedBy int
	var status int
	fc.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			servedBy, status = board, resp.Status
		})
	f.RunAll()
	if servedBy != 1 || status != 200 {
		t.Fatalf("served by board %d status %d, want board 1 / 200", servedBy, status)
	}
	if fc.ServFails != 1 {
		t.Fatalf("servfails = %d, want 1", fc.ServFails)
	}
	if svcs[0].ServFails != 1 || svcs[0].Launches != 0 {
		t.Fatalf("board0 service: servfails=%d launches=%d", svcs[0].ServFails, svcs[0].Launches)
	}
	if svcs[1].Launches != 1 {
		t.Fatalf("board1 service launches = %d", svcs[1].Launches)
	}
}

func TestFleetAllBoardsFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalMemMiB = 8
	f := NewFleet(3, WithConfig(cfg))
	f.RegisterEverywhere(fleetService())
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var gotErr error
	fc.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			gotErr = err
		})
	f.RunAll()
	if !errors.Is(gotErr, ErrAllServFail) {
		t.Fatalf("err = %v, want ErrAllServFail", gotErr)
	}
	if fc.ServFails != 3 {
		t.Fatalf("servfails = %d", fc.ServFails)
	}
}

func TestFleetSharedVirtualTime(t *testing.T) {
	f := NewFleet(2)
	if f.Boards[0].Eng != f.Boards[1].Eng {
		t.Fatal("fleet boards must share one engine")
	}
	if f.Eng() != f.Boards[0].Eng {
		t.Fatal("Eng() mismatch")
	}
}

func TestFleetFailoverLatencyIsOneExtraRTT(t *testing.T) {
	// Failing over costs one extra DNS round trip, not a timeout.
	cfg := DefaultConfig()
	f := NewFleet(2, WithConfig(cfg))
	f.Boards[0].Hyp.TotalMemMiB = 8
	f.RegisterEverywhere(fleetService())
	fc := f.NewClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var elapsed sim.Duration
	fc.Fetch("alice.family.name", "/", 10*time.Second,
		func(board int, resp *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			elapsed = d
		})
	f.RunAll()
	// Still a normal cold start plus ~1ms of extra resolution.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("failover fetch took %v", elapsed)
	}
}
