package core

import (
	"fmt"
	"time"

	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/xenstore"
)

// Synjitsu is the connection proxy of §3.3.1: it aliases every idle
// service IP, completes TCP handshakes on their behalf ("built using
// the same OCaml TCP stack as the booting unikernel" — here, the same
// Go netstack), buffers client payload, records embryonic connections
// in the conduit XenStore tree (Figure 7), and hands the TCBs to the
// unikernel with a two-phase commit once it boots.
type Synjitsu struct {
	Host  *netstack.Host
	board *Board

	// byIP maps claimed service addresses to their services.
	byIP      map[netstack.IP]*Service
	conns     map[*Service][]*netstack.TCPConn
	listeners map[uint16]bool
	// trigger is the SYN activation frontend (set at attach time); the
	// proxy owns the handshake, the trigger owns the launch decision.
	trigger *synTrigger

	// Proxied counts handshakes completed on behalf of booting VMs.
	Proxied uint64
	// HandedOff counts TCBs transferred to unikernels.
	HandedOff uint64
	// SYNTriggeredLaunches counts launches caused by raw SYNs arriving
	// outside any DNS resolution (clients ignoring TTLs, §3.3).
	SYNTriggeredLaunches uint64
	// SYNSuppressed counts launches the per-service admission token
	// bucket denied (WithSYNRateLimit): the handshake still completes
	// and the connection waits, but the flood cannot force a boot storm.
	SYNSuppressed uint64
}

func newSynjitsu(b *Board, ip netstack.IP) *Synjitsu {
	nic := netsim.NewNIC(b.Eng, "synjitsu", netsim.MACFor(0xFF0002))
	b.Bridge.ConnectNIC(nic, 20*time.Microsecond, 0)
	s := &Synjitsu{
		board: b,
		byIP:  make(map[netstack.IP]*Service),
		conns: make(map[*Service][]*netstack.TCPConn),

		listeners: make(map[uint16]bool),
	}
	s.Host = netstack.NewHost(b.Eng, "synjitsu", nic, ip, netstack.MirageProfile())
	return s
}

// claim takes over an idle service address. The gratuitous ARP matters
// on re-claims: clients still hold the reaped guest's MAC and would
// otherwise send their SYNs into the void.
func (s *Synjitsu) claim(svc *Service) {
	s.byIP[svc.Cfg.IP] = svc
	s.Host.AddIPAlias(svc.Cfg.IP)
	s.ensureListener(svc.Cfg.Port)
	s.Host.AnnounceIP(svc.Cfg.IP)
}

// release returns an address to its unikernel, handing over any
// embryonic connections.
func (s *Synjitsu) release(svc *Service) {
	s.Host.RemoveIPAlias(svc.Cfg.IP)
	delete(s.byIP, svc.Cfg.IP)
	s.handoff(svc)
}

func (s *Synjitsu) ensureListener(port uint16) {
	if s.listeners[port] {
		return
	}
	s.listeners[port] = true
	_, err := s.Host.ListenTCP(port, s.accept)
	if err != nil {
		panic(fmt.Sprintf("core: synjitsu listen %d: %v", port, err))
	}
}

// accept handles a completed proxy handshake. The connection gets no
// OnData handler on purpose: payload accumulates in the stack's pending
// buffer and travels inside the exported TCB.
func (s *Synjitsu) accept(c *netstack.TCPConn) {
	ip, _ := c.LocalAddr()
	svc, ok := s.byIP[ip]
	if !ok {
		// Address not (or no longer) proxied: refuse.
		c.Abort()
		return
	}
	s.Proxied++
	s.conns[svc] = append(s.conns[svc], c)
	s.recordEmbryonic(svc, c)
	// A SYN with no preceding DNS query still summons the service: the
	// trigger fires the shared Activation machine (which also refreshes
	// the idle timer for warm connections).
	if s.trigger != nil {
		switch s.trigger.fire(svc) {
		case synLaunched:
			s.SYNTriggeredLaunches++
		case synSuppressed:
			s.SYNSuppressed++
		}
	}
}

// recordEmbryonic writes the Figure 7 XenStore entry for a proxied
// connection.
func (s *Synjitsu) recordEmbryonic(svc *Service, c *netstack.TCPConn) {
	tcb, err := c.ExportTCB()
	if err != nil {
		return
	}
	idx := len(s.conns[svc])
	path := fmt.Sprintf("/conduit/%s/tcpv4/%d", xsName(svc), idx)
	_ = s.board.Store.Write(xenstore.Dom0, nil, path, tcb.Encode())
}

// handoff transfers all embryonic connections for svc to its booted
// unikernel. The ordering gives the §3.3.1 guarantee that "only one of
// synjitsu or the unikernel ever replies to a packet":
//
//  1. the proxy exports and forgets each connection (it stops answering);
//  2. the commit flag flips in XenStore (two-phase commit);
//  3. the unikernel imports the TCBs and replays buffered data to the
//     app — all within one simulation event, so no packet interleaves.
func (s *Synjitsu) handoff(svc *Service) {
	pending := s.conns[svc]
	delete(s.conns, svc)
	st := s.board.Store
	base := "/conduit/" + xsName(svc) + "/tcpv4"

	// Phase 1: freeze the proxy side and (re)write final TCB state.
	var tcbs []*netstack.TCB
	for _, c := range pending {
		tcb, err := c.ExportTCB()
		c.Forget()
		if err != nil {
			continue // connection died (RST/timeout) before boot finished
		}
		tcbs = append(tcbs, tcb)
	}
	tx := st.Begin(xenstore.Dom0)
	_ = st.Rm(xenstore.Dom0, tx, base)
	for i, tcb := range tcbs {
		_ = st.Write(xenstore.Dom0, tx, fmt.Sprintf("%s/%d", base, i+1), tcb.Encode())
	}
	// Phase 2: the commit flag. After this write the unikernel owns
	// every recorded connection.
	_ = st.Write(xenstore.Dom0, tx, "/conduit/"+xsName(svc)+"/handoff", "committed")
	if err := tx.Commit(); err != nil {
		// Single-writer tree: a conflict here means a bug, not a race.
		panic(fmt.Sprintf("core: handoff commit: %v", err))
	}

	// Unikernel side: read the TCBs back from the store (exactly what
	// the real MirageOS guest does) and resurrect the connections.
	guest := svc.Guest
	if guest == nil {
		return
	}
	names, err := st.List(xenstore.Dom0, nil, base)
	if err != nil {
		return
	}
	for _, n := range names {
		raw, err := st.Read(xenstore.Dom0, nil, base+"/"+n)
		if err != nil {
			continue
		}
		tcb, err := netstack.ParseTCB(raw)
		if err != nil {
			continue
		}
		conn, err := guest.Stack.ImportTCB(tcb)
		if err != nil {
			continue
		}
		s.HandedOff++
		svc.Handoffs++
		if acceptor, ok := guest.Image.App.(interface {
			AcceptImported(*netstack.TCPConn)
		}); ok {
			acceptor.AcceptImported(conn)
		} else {
			conn.Abort()
		}
	}
	_ = st.Rm(xenstore.Dom0, nil, base)
}

// xsName is the service's XenStore component name. DNS names are valid
// XenStore components as-is ('.' is in the allowed character set).
func xsName(svc *Service) string { return svc.Cfg.Name }
