package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

func aliceService() ServiceConfig {
	return ServiceConfig{
		Name:  "alice.family.name",
		IP:    netstack.IPv4(10, 0, 0, 20),
		Port:  80,
		Image: unikernel.UnikernelImage("alice", unikernel.NewStaticSiteApp("alice")),
	}
}

func TestColdStartWithSynjitsu(t *testing.T) {
	// The headline number: DNS query → launch → Synjitsu handshake →
	// handoff → HTTP response, all within ~300–500ms on ARM.
	b := New()
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var rt sim.Duration
	var resp *netstack.HTTPResponse
	var gotErr error
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(r *netstack.HTTPResponse, d sim.Duration, err error) {
			resp, rt, gotErr = r, d, err
		})
	b.Eng.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "alice") {
		t.Fatalf("resp = %+v", resp)
	}
	if rt < 250*time.Millisecond || rt > 550*time.Millisecond {
		t.Errorf("cold start with synjitsu = %v, want ≈300–500ms", rt)
	}
	if svc.State != StateReady || svc.Launches != 1 {
		t.Fatalf("service state %v launches %d", svc.State, svc.Launches)
	}
	if b.Syn.Proxied == 0 || b.Syn.HandedOff == 0 {
		t.Fatalf("synjitsu did not proxy/handoff: proxied=%d handed=%d",
			b.Syn.Proxied, b.Syn.HandedOff)
	}
}

func TestColdStartWithoutSynjitsuExceedsOneSecond(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Synjitsu = false
	b := New(WithConfig(cfg))
	b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var rt sim.Duration
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(r *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			rt = d
		})
	b.Eng.Run()
	// "Early SYN packets are lost and the client retransmits them,
	// leading to response times of over a second."
	if rt < time.Second {
		t.Errorf("cold start without synjitsu = %v, want > 1s", rt)
	}
}

func TestWarmRequestIsMilliseconds(t *testing.T) {
	b := New()
	b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	// First request boots the unikernel.
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
	b.Eng.Run()
	// Second request is warm: "an already-booted service can respond to
	// local traffic in around 5ms".
	var rt sim.Duration
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(r *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			rt = d
		})
	b.Eng.Run()
	if rt > 10*time.Millisecond {
		t.Errorf("warm request = %v, want ≈5ms", rt)
	}
}

func TestSynjitsuBuffersMidBootData(t *testing.T) {
	// A client that connects and sends its request while the unikernel
	// is still booting: the payload must survive the handoff byte-exact.
	b := New()
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	// Trigger launch via DNS but issue HTTP immediately (mid-boot).
	resolver := &dns.Client{Host: client}
	var rt sim.Duration
	var status int
	resolver.Query(NSAddr, "alice.family.name", dns.TypeA, 5*time.Second,
		func(m *dns.Message, _ sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			start := b.Eng.Now()
			client.HTTPGet(m.Answers[0].A, 80, "/", 10*time.Second,
				func(r *netstack.HTTPResponse, _ sim.Duration, err error) {
					if err != nil {
						t.Fatal(err)
					}
					status, rt = r.Status, b.Eng.Now()-start
				})
		})
	b.Eng.Run()
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if svc.Handoffs == 0 {
		t.Fatal("no handoff happened; the request should have been proxied")
	}
	// No SYN retransmission: well under a second.
	if rt > 600*time.Millisecond {
		t.Errorf("mid-boot request = %v (SYN was retransmitted?)", rt)
	}
}

func TestSYNWithoutDNSTriggersLaunch(t *testing.T) {
	// §3.3: Synjitsu makes Jitsu "more robust in the face of TCP
	// connections arriving unexpectedly outside of DNS resolution".
	b := New()
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	var status int
	client.HTTPGet(svc.Cfg.IP, 80, "/", 10*time.Second,
		func(r *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			status = r.Status
		})
	b.Eng.Run()
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if b.Syn.SYNTriggeredLaunches != 1 {
		t.Fatalf("SYN-triggered launches = %d", b.Syn.SYNTriggeredLaunches)
	}
	if svc.Launches != 1 {
		t.Fatalf("launches = %d", svc.Launches)
	}
}

func TestServFailWhenOutOfMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalMemMiB = 8 // not enough for any unikernel
	b := New(WithConfig(cfg))
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	resolver := &dns.Client{Host: client}
	var rcode dns.RCode
	resolver.Query(NSAddr, "alice.family.name", dns.TypeA, 5*time.Second,
		func(m *dns.Message, _ sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			rcode = m.RCode
		})
	b.Eng.Run()
	if rcode != dns.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL", rcode)
	}
	if svc.ServFails != 1 || svc.Launches != 0 {
		t.Fatalf("servfails=%d launches=%d", svc.ServFails, svc.Launches)
	}
}

func TestUnknownNameFallsThroughToZone(t *testing.T) {
	b := New()
	b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	resolver := &dns.Client{Host: client}
	// ns.family.name is a plain zone record, not a service.
	var a netstack.IP
	resolver.Query(NSAddr, "ns.family.name", dns.TypeA, 5*time.Second,
		func(m *dns.Message, _ sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			a = m.Answers[0].A
		})
	b.Eng.Run()
	if a != NSAddr {
		t.Fatalf("ns A = %v", a)
	}
	// And an unknown name is NXDOMAIN.
	var rcode dns.RCode
	resolver.Query(NSAddr, "nobody.family.name", dns.TypeA, 5*time.Second,
		func(m *dns.Message, _ sim.Duration, err error) { rcode = m.RCode })
	b.Eng.Run()
	if rcode != dns.RCodeNXDomain {
		t.Fatalf("rcode = %v", rcode)
	}
}

func TestIdleReaperStopsAndRestarts(t *testing.T) {
	cfg := DefaultConfig()
	b := New(WithConfig(cfg))
	sc := aliceService()
	sc.IdleTimeout = 2 * time.Second
	svc := b.Jitsu.Register(sc)
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
	// Bounded run: Eng.Run() would drain past the idle deadline.
	b.Eng.RunFor(time.Second)
	if svc.State != StateReady {
		t.Fatal("service should be ready")
	}
	// Let it idle out.
	b.Eng.RunFor(5 * time.Second)
	if svc.State != StateStopped || svc.Reaps != 1 {
		t.Fatalf("state=%v reaps=%d, want stopped/1", svc.State, svc.Reaps)
	}
	memAfterReap := b.Hyp.FreeMemMiB()
	if memAfterReap < cfg.TotalMemMiB-1 {
		t.Fatalf("memory not reclaimed: %d", memAfterReap)
	}
	// A new request summons it again — and Synjitsu must proxy it even
	// though clients' ARP caches still hold the dead guest's MAC
	// (regression: the proxy re-announces the IP when re-claiming it).
	var status int
	var rt sim.Duration
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(r *netstack.HTTPResponse, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			status, rt = r.Status, d
		})
	b.Eng.Run()
	if status != 200 || svc.Launches != 2 {
		t.Fatalf("status=%d launches=%d", status, svc.Launches)
	}
	if rt >= time.Second {
		t.Fatalf("re-summon after reap took %v: SYN was lost, proxy did not re-claim the IP", rt)
	}
}

func TestActivityDefersReaper(t *testing.T) {
	cfg := DefaultConfig()
	b := New(WithConfig(cfg))
	sc := aliceService()
	sc.IdleTimeout = 2 * time.Second
	svc := b.Jitsu.Register(sc)
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
	b.Eng.RunFor(time.Second)
	// Keep querying every second: the service must stay up.
	for i := 0; i < 4; i++ {
		b.Eng.RunFor(time.Second)
		resolver := &dns.Client{Host: client}
		resolver.Query(NSAddr, "alice.family.name", dns.TypeA, time.Second,
			func(*dns.Message, sim.Duration, error) {})
		b.Eng.RunFor(100 * time.Millisecond)
		if svc.State != StateReady {
			t.Fatalf("iteration %d: service reaped despite activity", i)
		}
	}
}

func TestMultipleServicesIndependent(t *testing.T) {
	b := New()
	names := []string{"alice", "bob", "carol"}
	for i, n := range names {
		b.Jitsu.Register(ServiceConfig{
			Name:  n + ".family.name",
			IP:    netstack.IPv4(10, 0, 0, byte(20+i)),
			Port:  80,
			Image: unikernel.UnikernelImage(n, unikernel.NewStaticSiteApp(n)),
		})
	}
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
	got := map[string]string{}
	for _, n := range names {
		n := n
		b.FetchViaDNS(client, n+".family.name", "/", 10*time.Second,
			func(r *netstack.HTTPResponse, d sim.Duration, err error) {
				if err != nil {
					t.Errorf("%s: %v", n, err)
					return
				}
				got[n] = string(r.Body)
			})
	}
	b.Eng.Run()
	for _, n := range names {
		if !strings.Contains(got[n], n) {
			t.Errorf("%s got wrong body %q", n, got[n])
		}
	}
	if b.Hyp.Domains() != 4 { // dom0 + three unikernels
		t.Errorf("domains = %d", b.Hyp.Domains())
	}
}

func TestDelayedDNSAblation(t *testing.T) {
	// The rejected §3.3.1 alternative: correct but slower resolution,
	// and no SYN race because the client only learns the IP when the
	// unikernel is live.
	cfg := DefaultConfig()
	cfg.Synjitsu = false
	cfg.DelayDNSUntilReady = true
	b := New(WithConfig(cfg))
	b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	var dnsRT, totalRT sim.Duration
	resolver := &dns.Client{Host: client}
	start := b.Eng.Now()
	resolver.Query(NSAddr, "alice.family.name", dns.TypeA, 10*time.Second,
		func(m *dns.Message, d sim.Duration, err error) {
			if err != nil {
				t.Fatal(err)
			}
			dnsRT = d
			client.HTTPGet(m.Answers[0].A, 80, "/", 10*time.Second,
				func(r *netstack.HTTPResponse, _ sim.Duration, err error) {
					if err != nil {
						t.Fatal(err)
					}
					totalRT = b.Eng.Now() - start
				})
		})
	b.Eng.Run()
	// The DNS answer itself absorbed the whole boot.
	if dnsRT < 250*time.Millisecond {
		t.Errorf("delayed DNS answered in %v, should include boot", dnsRT)
	}
	// But no SYN retransmission: total stays under a second.
	if totalRT > time.Second {
		t.Errorf("total = %v; delayed DNS should avoid the SYN race", totalRT)
	}
}

func TestJitsudConduitResolution(t *testing.T) {
	// A local unikernel resolves (and summons) a peer via the conduit
	// instead of DNS.
	b := New()
	svc := b.Jitsu.Register(aliceService())
	ep, err := b.Registry.Connect(42, "jitsud")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	ep.OnData(func(data []byte) { reply += string(data) })
	ep.Write([]byte("resolve alice.family.name\n"))
	b.Eng.Run()
	if reply != "ok 10.0.0.20\n" {
		t.Fatalf("reply = %q", reply)
	}
	if svc.Launches != 1 {
		t.Fatalf("conduit resolve did not launch: %d", svc.Launches)
	}
	// Unknown name.
	reply = ""
	ep.Write([]byte("resolve ghost.family.name\n"))
	b.Eng.Run()
	if reply != "nxdomain\n" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestHandoffStateVisibleInXenStore(t *testing.T) {
	// Figure 7: embryonic connections appear under /conduit/<svc>/tcpv4
	// while the unikernel boots.
	b := New()
	svc := b.Jitsu.Register(aliceService())
	client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))

	client.HTTPGet(svc.Cfg.IP, 80, "/", 10*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
	// Run until the proxy has accepted but the guest hasn't booted.
	seen := false
	for i := 0; i < 4000 && !seen; i++ {
		if !b.Eng.Step() {
			break
		}
		if names, err := b.Store.List(xenstore.Dom0, nil, "/conduit/alice.family.name/tcpv4"); err == nil && len(names) > 0 {
			raw, _ := b.Store.Read(xenstore.Dom0, nil, "/conduit/alice.family.name/tcpv4/"+names[0])
			if _, err := netstack.ParseTCB(raw); err != nil {
				t.Fatalf("unparseable TCB in store: %q", raw)
			}
			seen = true
		}
	}
	if !seen {
		t.Fatal("no embryonic connection recorded in XenStore")
	}
	b.Eng.Run()
	// After handoff the records are cleaned and the commit flag is set.
	if names, _ := b.Store.List(xenstore.Dom0, nil, "/conduit/alice.family.name/tcpv4"); len(names) != 0 {
		t.Fatalf("tcpv4 records remain after handoff: %v", names)
	}
	if v, _ := b.Store.Read(xenstore.Dom0, nil, "/conduit/alice.family.name/handoff"); v != "committed" {
		t.Fatalf("handoff flag = %q", v)
	}
}

func TestVanillaToolstackSlowerColdStart(t *testing.T) {
	run := func(opts xen.ToolstackOpts) sim.Duration {
		cfg := DefaultConfig()
		cfg.Toolstack = opts
		b := New(WithConfig(cfg))
		b.Jitsu.Register(aliceService())
		client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
		var rt sim.Duration
		b.FetchViaDNS(client, "alice.family.name", "/", 10*time.Second,
			func(r *netstack.HTTPResponse, d sim.Duration, err error) {
				if err != nil {
					t.Fatal(err)
				}
				rt = d
			})
		b.Eng.Run()
		return rt
	}
	vanilla := run(xen.VanillaOpts())
	optimised := run(xen.OptimisedOpts())
	if optimised >= vanilla {
		t.Errorf("optimised (%v) not faster than vanilla (%v)", optimised, vanilla)
	}
	if vanilla-optimised < 300*time.Millisecond {
		t.Errorf("toolstack optimisation saved only %v", vanilla-optimised)
	}
}

func TestServiceLookupErrors(t *testing.T) {
	b := New()
	if _, err := b.Jitsu.Service("ghost.family.name"); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("err = %v", err)
	}
}
