package core

import (
	"jitsu/internal/blockdev"
	"jitsu/internal/obs"
	"jitsu/internal/sim"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// Option tunes one aspect of a board under construction. Options apply
// on top of DefaultConfig, so `core.New()` is the headline Cubieboard2
// configuration and each deviation is named at the call site:
//
//	b := core.New(core.WithSeed(7), core.WithSynjitsu(false))
//
// BoardConfig remains the underlying value; WithConfig replaces it
// wholesale for callers migrating from the deprecated positional
// constructors.
type Option func(*BoardConfig)

// WithConfig replaces the whole configuration (migration aid for code
// that still assembles a BoardConfig by hand). Options after it apply
// on top.
func WithConfig(cfg BoardConfig) Option {
	return func(c *BoardConfig) { *c = cfg }
}

// WithSeed sets the simulation seed.
func WithSeed(seed int64) Option {
	return func(c *BoardConfig) { c.Seed = seed }
}

// WithPlatform selects the hardware model (xen.CubieboardARM,
// xen.GenericX86, ...).
func WithPlatform(p *xen.Platform) Option {
	return func(c *BoardConfig) { c.Platform = p }
}

// WithToolstack selects the toolstack optimisation stage
// (xen.VanillaOpts, xen.OptimisedOpts, or a hand-built stage).
func WithToolstack(opts xen.ToolstackOpts) Option {
	return func(c *BoardConfig) { c.Toolstack = opts }
}

// WithReconciler selects the xenstored engine.
func WithReconciler(r xenstore.Reconciler) Option {
	return func(c *BoardConfig) { c.Reconciler = r }
}

// WithMemory sets guest-available RAM in MiB.
func WithMemory(miB int) Option {
	return func(c *BoardConfig) { c.TotalMemMiB = miB }
}

// WithZone sets the DNS apex the board is authoritative for.
func WithZone(apex string) Option {
	return func(c *BoardConfig) { c.Zone = apex }
}

// WithSynjitsu enables or disables the connection proxy.
func WithSynjitsu(on bool) Option {
	return func(c *BoardConfig) { c.Synjitsu = on }
}

// WithDelayedDNS selects the §3.3.1 alternative the paper rejects:
// hold the DNS answer until the unikernel network is live.
func WithDelayedDNS(on bool) Option {
	return func(c *BoardConfig) { c.DelayDNSUntilReady = on }
}

// WithSYNRateLimit arms the SYN trigger's per-service admission token
// bucket: at most burst launches back to back, refilled at rate
// launches/second, so a SYN flood cannot cause a boot storm. rate <= 0
// disables the limiter (the default).
func WithSYNRateLimit(rate float64, burst int) Option {
	return func(c *BoardConfig) {
		c.SYNLaunchRate = rate
		c.SYNLaunchBurst = burst
	}
}

// WithDisk attaches a simulated block device — the board's checkpoint
// store, enabling the cold-on-disk tier (Demote/Promote, pressure
// demotion instead of refusal). blockdev.DefaultConfig() models the
// SD-card-class storage an embedded board carries; the zero Config
// keeps the board diskless (the default).
func WithDisk(cfg blockdev.Config) Option {
	return func(c *BoardConfig) { c.Disk = cfg }
}

// WithExtLink sets the external (client <-> board) link characteristics.
func WithExtLink(latency sim.Duration, bitsPerSec float64) Option {
	return func(c *BoardConfig) {
		c.ExtLatency = latency
		c.ExtBitsPerSec = bitsPerSec
	}
}

// WithTracer attaches the observability flight recorder; tid is the
// tracer lane the board's events render on (cluster builders hand each
// board its own lane). A nil tracer keeps tracing off.
func WithTracer(tr *obs.Tracer, tid int) Option {
	return func(c *BoardConfig) {
		c.Tracer = tr
		c.TraceTID = tid
	}
}

// configFrom resolves DefaultConfig plus options.
func configFrom(opts []Option) BoardConfig {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// New builds and wires a board on its own simulation engine.
func New(opts ...Option) *Board {
	cfg := configFrom(opts)
	return buildBoard(sim.New(cfg.Seed), cfg)
}

// NewOnEngine builds a board on a shared engine, so several boards (a
// Fleet, a cluster) advance through one coherent virtual time.
func NewOnEngine(eng *sim.Engine, opts ...Option) *Board {
	return buildBoard(eng, configFrom(opts))
}
