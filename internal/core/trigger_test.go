package core

import (
	"fmt"
	"testing"
	"time"

	"jitsu/internal/dns"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// transitionRecorder captures every Activation state transition.
type transitionRecorder struct {
	got []string
}

func (r *transitionRecorder) hook(svc *Service, from, to ServiceState) {
	r.got = append(r.got, fmt.Sprintf("%v->%v", from, to))
}

func (r *transitionRecorder) reset() { r.got = nil }

func (r *transitionRecorder) equal(want []string) bool {
	if len(r.got) != len(want) {
		return false
	}
	for i := range want {
		if r.got[i] != want[i] {
			return false
		}
	}
	return true
}

// fireFunc drives one frontend through its real signal path.
type fireFunc func(t *testing.T, b *Board, svc *Service)

func fireDNSSlow(t *testing.T, b *Board, svc *Service) {
	// Answer() is the decode/answer/encode slow path; it consults the
	// synchronous Interceptor directly.
	q := &dns.Message{ID: 7, Questions: []dns.Question{
		{Name: svc.Cfg.Name, Type: dns.TypeA, Class: dns.ClassIN}}}
	b.DNS.Answer(q)
}

func fireDNSFast(t *testing.T, b *Board, svc *Service) {
	q := &dns.Message{ID: 7, Questions: []dns.Question{
		{Name: svc.Cfg.Name, Type: dns.TypeA, Class: dns.ClassIN}}}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	served := false
	b.DNS.ServeWire(wire, func([]byte) { served = true })
	if !served {
		t.Fatal("fast path did not answer")
	}
}

func fireSYN(t *testing.T, b *Board, svc *Service) {
	client := b.AddClient("syn-client", netstack.IPv4(10, 0, 0, 99))
	client.HTTPGet(svc.Cfg.IP, 80, "/", 5*time.Second,
		func(*netstack.HTTPResponse, sim.Duration, error) {})
}

func fireConduit(t *testing.T, b *Board, svc *Service) {
	ep, err := b.Registry.Connect(42, "jitsud")
	if err != nil {
		t.Fatal(err)
	}
	ep.Write([]byte("resolve " + svc.Cfg.Name + "\n"))
}

func fireDNSAsync(t *testing.T, b *Board, svc *Service) {
	q := &dns.Message{ID: 7, Questions: []dns.Question{
		{Name: svc.Cfg.Name, Type: dns.TypeA, Class: dns.ClassIN}}}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b.DNS.ServeWire(wire, func([]byte) {})
}

// TestTriggerMatrix asserts that every frontend drives the shared
// Activation machine through identical state transitions for the cold,
// warm and out-of-memory cases. The one sanctioned divergence is the
// SYN frontend under memory pressure: a raw SYN has no refusal channel,
// so it forces a launch attempt that fails (stopped→launching→stopped)
// where the answerable frontends refuse without touching the machine.
func TestTriggerMatrix(t *testing.T) {
	coldTransitions := []string{"cold->launching", "launching->running"}
	forcedFail := []string{"cold->launching", "launching->cold"}

	frontends := []triggerMatrixRow{
		{name: "dns-slow", fire: fireDNSSlow, oomServFail: true, warmFires: true},
		{name: "dns-fast", fire: fireDNSFast, oomServFail: true, warmFires: true},
		{name: "syn", fire: fireSYN, oomTransitions: forcedFail, warmFires: false},
		{name: "conduit", fire: fireConduit, oomServFail: true, warmFires: true},
		{name: "dns-async", delayed: true, fire: fireDNSAsync, oomServFail: true, warmFires: true},
	}

	for _, fe := range frontends {
		fe := fe
		t.Run(fe.name+"/cold", func(t *testing.T) {
			b := New(WithDelayedDNS(fe.delayed))
			svc := b.Jitsu.Register(aliceService())
			rec := &transitionRecorder{}
			b.Jitsu.Activation().Subscribe(rec.hook)
			fe.fire(t, b, svc)
			b.Eng.Run()
			if !rec.equal(coldTransitions) {
				t.Fatalf("cold transitions = %v, want %v", rec.got, coldTransitions)
			}
			if svc.ColdStarts != 1 || svc.Launches != 1 {
				t.Fatalf("coldstarts=%d launches=%d, want 1/1", svc.ColdStarts, svc.Launches)
			}
		})
		t.Run(fe.name+"/warm", func(t *testing.T) {
			b := New(WithDelayedDNS(fe.delayed))
			svc := b.Jitsu.Register(aliceService())
			// Warm the service through the control plane (client-driven, so
			// it lands Running, not WarmMemory), then watch the frontend
			// firing leave the machine alone.
			if err := b.Jitsu.Activate(svc, true, nil); err != nil {
				t.Fatal(err)
			}
			b.Eng.Run()
			if svc.State != StateRunning {
				t.Fatalf("precondition: state = %v", svc.State)
			}
			rec := &transitionRecorder{}
			b.Jitsu.Activation().Subscribe(rec.hook)
			firedBefore := b.Jitsu.Activation().Fired()[fe.viaName()]
			fe.fire(t, b, svc)
			b.Eng.Run()
			if !rec.equal(nil) {
				t.Fatalf("warm transitions = %v, want none", rec.got)
			}
			if svc.Launches != 1 {
				t.Fatalf("warm firing relaunched: %d", svc.Launches)
			}
			if fe.warmFires && b.Jitsu.Activation().Fired()[fe.viaName()] == firedBefore {
				t.Fatalf("warm firing did not reach the machine via %q", fe.viaName())
			}
		})
		t.Run(fe.name+"/oom", func(t *testing.T) {
			b := New(WithDelayedDNS(fe.delayed), WithMemory(8))
			svc := b.Jitsu.Register(aliceService())
			rec := &transitionRecorder{}
			b.Jitsu.Activation().Subscribe(rec.hook)
			fe.fire(t, b, svc)
			b.Eng.Run()
			if !rec.equal(fe.oomTransitions) {
				t.Fatalf("oom transitions = %v, want %v", rec.got, fe.oomTransitions)
			}
			wantServFails := uint64(0)
			if fe.oomServFail {
				wantServFails = 1
			}
			if svc.ServFails != wantServFails {
				t.Fatalf("servfails = %d, want %d", svc.ServFails, wantServFails)
			}
			if svc.State != StateCold {
				t.Fatalf("state = %v, want cold", svc.State)
			}
		})
	}
}

// triggerMatrixRow is one frontend of the matrix.
type triggerMatrixRow struct {
	name    string
	delayed bool // board runs the delayed-DNS ablation frontend
	fire    fireFunc
	// oomTransitions is what the OOM firing drives (nil = none: the
	// frontend refuses before the machine moves).
	oomTransitions []string
	// oomServFail: the refusal is surfaced (and counted) to a client.
	oomServFail bool
	// warmFires: a warm firing reaches the machine at all (a SYN to a
	// ready service goes straight to the unikernel instead).
	warmFires bool
}

// viaName maps the matrix row to the Summon.Via constant its frontend
// reports.
func (fe *triggerMatrixRow) viaName() string {
	switch fe.name {
	case "dns-slow", "dns-fast":
		return TriggerDNS
	case "dns-async":
		return TriggerDNSAsync
	case "syn":
		return TriggerSYN
	default:
		return TriggerConduit
	}
}

// TestServicesReturnsCopy pins the satellite fix: mutating the returned
// map must not touch the directory.
func TestServicesReturnsCopy(t *testing.T) {
	b := New()
	b.Jitsu.Register(aliceService())
	m := b.Jitsu.Services()
	delete(m, "alice.family.name")
	m["bogus.family.name"] = &Service{}
	if _, err := b.Jitsu.Service("alice.family.name"); err != nil {
		t.Fatal("deleting from the Services() snapshot removed the registration")
	}
	if _, err := b.Jitsu.Service("bogus.family.name"); err == nil {
		t.Fatal("inserting into the Services() snapshot registered a service")
	}
	if len(b.Jitsu.Services()) != 1 {
		t.Fatalf("directory size = %d, want 1", len(b.Jitsu.Services()))
	}
}

// TestFastPathStaysAllocFreeWithTrigger guards the bench gate at the
// unit level: the DNS fast path through the dnsTrigger's Fire must not
// allocate once the answer cache is warm.
func TestFastPathStaysAllocFreeWithTrigger(t *testing.T) {
	b := New()
	svc := b.Jitsu.Register(aliceService())
	if err := b.Jitsu.Activate(svc, false, nil); err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	q := &dns.Message{ID: 7, Questions: []dns.Question{
		{Name: svc.Cfg.Name, Type: dns.TypeA, Class: dns.ClassIN}}}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sink := func([]byte) {}
	b.DNS.ServeWire(wire, sink) // prime the answer cache
	allocs := testing.AllocsPerRun(200, func() {
		b.DNS.ServeWire(wire, sink)
	})
	if allocs != 0 {
		t.Fatalf("fast path allocates %.1f per query through the trigger", allocs)
	}
}

// TestPrewarmTriggerLearnsRecurrence exercises the predictive frontend
// end to end on one board: periodic visits beyond the idle timeout go
// cold without it and warm with it.
func TestPrewarmTriggerLearnsRecurrence(t *testing.T) {
	run := func(withTrigger bool) (cold uint64, trig *PrewarmTrigger) {
		b := New()
		if withTrigger {
			trig = NewPrewarmTrigger(2 * time.Second)
			if err := b.AddTrigger(trig); err != nil {
				t.Fatal(err)
			}
		}
		sc := aliceService()
		sc.IdleTimeout = 6 * time.Second
		svc := b.Jitsu.Register(sc)
		client := b.AddClient("laptop", netstack.IPv4(10, 0, 0, 9))
		for i := 0; i < 8; i++ {
			at := sim.Duration(i) * 10 * time.Second
			b.Eng.At(at, func() {
				b.FetchViaDNS(client, svc.Cfg.Name, "/", 20*time.Second,
					func(_ *netstack.HTTPResponse, _ sim.Duration, err error) {
						if err != nil {
							t.Errorf("fetch: %v", err)
						}
					})
			})
		}
		b.Eng.Run()
		return svc.ColdStarts, trig
	}
	coldWithout, _ := run(false)
	coldWith, trig := run(true)
	if coldWithout != 8 {
		t.Fatalf("baseline cold starts = %d, want 8 (every visit)", coldWithout)
	}
	if coldWith > 3 {
		t.Fatalf("cold starts with trigger = %d, want ≤3 (learning visits only)", coldWith)
	}
	if trig.Predictions == 0 || trig.Hits == 0 {
		t.Fatalf("predictions=%d hits=%d, want >0", trig.Predictions, trig.Hits)
	}
	if trig.Misses != 0 {
		t.Fatalf("misses = %d on a clean periodic pattern", trig.Misses)
	}
}
