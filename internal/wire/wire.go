// Package wire is the control plane on the wire: a versioned,
// length-prefixed binary codec for every api.ControlPlane verb, plus a
// Server that binds the protocol to a netstack TCP endpoint and a
// Client that implements api.ControlPlane over a connection. Together
// they let remote operator processes drive a board or a whole cluster
// across the simulated management network — the same verbs, the same
// typed error codes, but now subject to the link's latency, loss and
// partitions like any other traffic.
//
// Layering: wire sits ABOVE api (it serializes api's request/response
// types and delegates to an api.ControlPlane backend) and above
// netstack (frames ride ordinary TCP connections). It knows nothing of
// cluster internals; internal/cc paces the bulk movers below this
// protocol and never appears on it.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       4     length of the remainder (ver..body), <= MaxFrame
//	4       1     protocol version (V1 or V2)
//	5       1     frame type
//	6       4     request id (echoed on responses and events)
//	10      n     body (frame-type specific)
//
// Two protocol versions exist and differ ONLY in the handshake bodies;
// every post-handshake frame has an identical layout in both:
//
//	V1  Hello carries the client's supported [Min,Max] range and
//	    nothing else; HelloAck carries the chosen version. Sessions
//	    are anonymous — whether one is accepted, and with what
//	    capability scope, is server policy.
//	V2  Hello additionally carries a capability token the server
//	    validates against its keyring, mapping the session to an
//	    api.Scope; HelloAck additionally carries the granted scope
//	    and, on refusal, a typed api.Error (CodeUnauthorized for a
//	    bad credential).
//
// A connection opens with Hello/HelloAck negotiation: the client
// offers its [Min,Max] supported range, framing the Hello at its Max
// (so a v2 Hello carries its token from the first byte), and the
// server answers with the highest version both sides speak — 0 = no
// overlap or refused credential; the connection is then closed. On a
// downgrade to V1 the token is elided: the server ignores any token
// the v2-framed Hello carried and applies its anonymous-session
// policy instead. Every later frame must carry the negotiated
// version; a mismatch is a protocol violation that drops the
// connection.
//
// Request/response types pair by offset: request type t gets response
// type t+0x20. A verb outside the session's scope is answered with
// its ordinary response frame carrying api.CodeUnauthorized — the
// session itself stays up. Three extra frame kinds carry asynchrony:
// ReadyEvent (an OnReady callback firing remotely), DoneEvent (a
// Migrate OnDone), and StatsEvent (one WatchStats snapshot, tagged
// with the watch's request id); each connection has its own request-id
// space and its own subscription registry, so N operator sessions
// stream independently from one server and one session's teardown
// never disturbs its siblings.
package wire

import "errors"

// Protocol versions. V1 is frozen — its byte layout must never drift;
// V2 adds the capability token and scoped HelloAck.
const (
	V1 = 1
	V2 = 2

	// MinVersion..MaxVersion is the range this package can speak.
	MinVersion = V1
	MaxVersion = V2
)

// Version is the highest (preferred) protocol version this package
// speaks.
const Version = MaxVersion

// DefaultPort is the conventional management port wire servers bind.
const DefaultPort = 7900

// MaxFrame caps the length prefix: larger announcements are a protocol
// error, not a reason to buffer unboundedly.
const MaxFrame = 1 << 20

// headerLen is the fixed frame header: length + version + type + id.
const headerLen = 10

// Frame types. Requests and responses pair by offset: respOf(t) for a
// request type t is t + 0x20.
const (
	THello    = 0x01
	THelloAck = 0x02

	TRegisterReq   = 0x10
	TActivateReq   = 0x11
	TCheckpointReq = 0x12
	TRestoreReq    = 0x13
	TMigrateReq    = 0x14
	TTransferReq   = 0x15
	TDemoteReq     = 0x16
	TPromoteReq    = 0x17
	TStopReq       = 0x18
	TStatsReq      = 0x19
	TWatchReq      = 0x1A
	TWatchCancel   = 0x1B

	TRegisterResp   = 0x30
	TActivateResp   = 0x31
	TCheckpointResp = 0x32
	TRestoreResp    = 0x33
	TMigrateResp    = 0x34
	TTransferResp   = 0x35
	TDemoteResp     = 0x36
	TPromoteResp    = 0x37
	TStopResp       = 0x38
	TStatsResp      = 0x39
	TWatchResp      = 0x3A

	TReadyEvent = 0x40
	TDoneEvent  = 0x41
	TStatsEvent = 0x42
)

// respOf maps a request frame type to its response type.
func respOf(t byte) byte { return t + 0x20 }

// Codec errors. ErrShort is the resumable one — the buffer holds a
// frame prefix and the caller should wait for more bytes; everything
// else is a hard protocol violation that closes the connection.
var (
	ErrShort       = errors.New("wire: incomplete frame")
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrBadVersion  = errors.New("wire: unsupported protocol version")
	ErrUnknownType = errors.New("wire: unknown frame type")
	ErrBadFrame    = errors.New("wire: malformed frame body")
	ErrNoVersion   = errors.New("wire: no common protocol version")
	ErrClosed      = errors.New("wire: connection closed")
)
