// Package wire is the control plane on the wire: a versioned,
// length-prefixed binary codec for every api.ControlPlane verb, plus a
// Server that binds the protocol to a netstack TCP endpoint and a
// Client that implements api.ControlPlane over a connection. Together
// they let a remote operator process drive a board or a whole cluster
// across the simulated management network — the same verbs, the same
// typed error codes, but now subject to the link's latency, loss and
// partitions like any other traffic.
//
// Layering: wire sits ABOVE api (it serializes api's request/response
// types and delegates to an api.ControlPlane backend) and above
// netstack (frames ride ordinary TCP connections). It knows nothing of
// cluster internals; internal/cc paces the bulk movers below this
// protocol and never appears on it.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       4     length of the remainder (ver..body), <= MaxFrame
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       4     request id (echoed on responses and events)
//	10      n     body (frame-type specific)
//
// A connection opens with Hello/HelloAck version negotiation: the
// client offers its [Min,Max] supported range, the server answers with
// the highest version both sides speak (0 = no overlap; the connection
// is then closed). Every later frame carries the negotiated version.
//
// Request/response types pair by offset: request type t gets response
// type t+0x20. Three extra frame kinds carry asynchrony: ReadyEvent
// (an OnReady callback firing remotely), DoneEvent (a Migrate OnDone),
// and StatsEvent (one WatchStats snapshot, tagged with the watch's
// request id).
package wire

import "errors"

// Version is the protocol version this package speaks.
const Version = 1

// MaxFrame caps the length prefix: larger announcements are a protocol
// error, not a reason to buffer unboundedly.
const MaxFrame = 1 << 20

// headerLen is the fixed frame header: length + version + type + id.
const headerLen = 10

// Frame types. Requests and responses pair by offset: respOf(t) for a
// request type t is t + 0x20.
const (
	THello    = 0x01
	THelloAck = 0x02

	TRegisterReq   = 0x10
	TActivateReq   = 0x11
	TCheckpointReq = 0x12
	TRestoreReq    = 0x13
	TMigrateReq    = 0x14
	TTransferReq   = 0x15
	TDemoteReq     = 0x16
	TPromoteReq    = 0x17
	TStopReq       = 0x18
	TStatsReq      = 0x19
	TWatchReq      = 0x1A
	TWatchCancel   = 0x1B

	TRegisterResp   = 0x30
	TActivateResp   = 0x31
	TCheckpointResp = 0x32
	TRestoreResp    = 0x33
	TMigrateResp    = 0x34
	TTransferResp   = 0x35
	TDemoteResp     = 0x36
	TPromoteResp    = 0x37
	TStopResp       = 0x38
	TStatsResp      = 0x39
	TWatchResp      = 0x3A

	TReadyEvent = 0x40
	TDoneEvent  = 0x41
	TStatsEvent = 0x42
)

// respOf maps a request frame type to its response type.
func respOf(t byte) byte { return t + 0x20 }

// Codec errors. ErrShort is the resumable one — the buffer holds a
// frame prefix and the caller should wait for more bytes; everything
// else is a hard protocol violation that closes the connection.
var (
	ErrShort       = errors.New("wire: incomplete frame")
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrBadVersion  = errors.New("wire: unsupported protocol version")
	ErrUnknownType = errors.New("wire: unknown frame type")
	ErrBadFrame    = errors.New("wire: malformed frame body")
	ErrNoVersion   = errors.New("wire: no common protocol version")
	ErrClosed      = errors.New("wire: connection closed")
)
