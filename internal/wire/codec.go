package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/obs"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// ---- wire-only message shapes ----
//
// Most verbs serialize api's own request/response structs. The ones
// below replace fields a wire cannot carry: callbacks become Want*
// flags (the peer delivers ReadyEvent/DoneEvent frames instead), and
// unikernel.Image.App — an interface — is dropped on encode and
// re-attached by the Server's app resolver.

// Hello opens a connection: the client's supported version range and,
// when the frame itself is V2-framed, a capability token. A V1-framed
// Hello never carries the token — it is elided on encode and zero on
// decode, which is exactly the downgrade semantics: a session that
// settles on V1 is anonymous.
type Hello struct {
	Min, Max uint16
	// Token is the capability credential (V2 framing only; empty =
	// anonymous).
	Token string
}

// HelloAck answers Hello: the highest version both sides speak, or 0
// when the ranges do not overlap or the credential was refused (the
// server closes after sending). In V2 framing it also carries the
// scope the session was granted and, on refusal, a typed error.
type HelloAck struct {
	Version uint16
	// Scope is the capability level granted to the session (V2 framing
	// only).
	Scope api.Scope
	// Err explains a refusal — CodeUnauthorized for a bad or missing
	// credential (V2 framing only; nil on acceptance).
	Err *api.Error
}

// ActivateReq is api.ActivateRequest with OnReady flattened to a flag.
type ActivateReq struct {
	Name        string
	Speculative bool
	WantReady   bool
}

// RestoreReq is api.RestoreRequest with OnReady flattened to a flag.
type RestoreReq struct {
	Name       string
	Checkpoint *core.Checkpoint
	Board      api.BoardSel
	ToDisk     bool
	WantReady  bool
}

// MigrateReq is api.MigrateRequest with OnDone flattened to a flag.
type MigrateReq struct {
	Name     string
	From, To api.BoardSel
	WantDone bool
}

// TransferReq is api.TransferRequest with OnReady flattened to a flag.
type TransferReq struct {
	Config     core.ServiceConfig
	MinWarm    int
	Policy     string
	Checkpoint *core.Checkpoint
	ToDisk     bool
	WantReady  bool
}

// PromoteReq is api.PromoteRequest with OnReady flattened to a flag.
type PromoteReq struct {
	Name      string
	Board     api.BoardSel
	WantReady bool
}

// WatchReq is api.WatchStatsRequest minus the callback: snapshots
// arrive as StatsEvent frames tagged with this request's id.
type WatchReq struct {
	Every time.Duration
}

// WatchResp acknowledges (or refuses) a WatchReq.
type WatchResp struct {
	Err *api.Error
}

// ReadyEvent delivers a remote OnReady firing (nil Err = success).
type ReadyEvent struct {
	Err *api.Error
}

// DoneEvent delivers a remote Migrate OnDone firing.
type DoneEvent struct {
	OK bool
}

// ---- primitive writer ----

type wbuf struct {
	b   []byte
	err error
}

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)  { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *wbuf) str(s string) {
	if len(s) > math.MaxUint16 {
		w.err = fmt.Errorf("%w: string length %d", ErrBadFrame, len(s))
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// count writes a collection length, refusing silent truncation.
func (w *wbuf) count(n int) {
	if n > math.MaxUint16 {
		w.err = fmt.Errorf("%w: collection length %d", ErrBadFrame, n)
		n = math.MaxUint16
	}
	w.u16(uint16(n))
}

// ---- primitive reader ----

type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = ErrBadFrame
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *rbuf) u8() byte {
	if v := r.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (r *rbuf) u16() uint16 {
	if v := r.take(2); v != nil {
		return binary.BigEndian.Uint16(v)
	}
	return 0
}

func (r *rbuf) u32() uint32 {
	if v := r.take(4); v != nil {
		return binary.BigEndian.Uint32(v)
	}
	return 0
}

func (r *rbuf) u64() uint64 {
	if v := r.take(8); v != nil {
		return binary.BigEndian.Uint64(v)
	}
	return 0
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *rbuf) bool() bool   { return r.u8() != 0 }

func (r *rbuf) str() string {
	n := int(r.u16())
	if v := r.take(n); v != nil {
		return string(v)
	}
	return ""
}

// done finishes a strict decode: any sticky error or trailing bytes is
// a malformed frame.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
	}
	return nil
}

// ---- composite fields ----

func putErr(w *wbuf, e *api.Error) {
	w.bool(e != nil)
	if e != nil {
		w.str(e.Op)
		w.u8(byte(e.Code))
		w.str(e.Detail)
	}
}

func getErr(r *rbuf) *api.Error {
	if !r.bool() {
		return nil
	}
	e := &api.Error{}
	e.Op = r.str()
	e.Code = api.Code(r.u8())
	e.Detail = r.str()
	return e
}

func putSel(w *wbuf, s api.BoardSel) { w.u32(uint32(int32(s))) }
func getSel(r *rbuf) api.BoardSel    { return api.BoardSel(int32(r.u32())) }

// putImage serializes an image minus its App interface; the Server's
// app resolver re-attaches one by (Name, Kind) on the receiving side.
func putImage(w *wbuf, img unikernel.Image) {
	w.str(img.Name)
	w.u8(byte(img.Kind))
	w.u32(uint32(int32(img.MemMiB)))
	w.f64(img.BinaryMiB)
}

func getImage(r *rbuf) unikernel.Image {
	var img unikernel.Image
	img.Name = r.str()
	img.Kind = xen.GuestKind(r.u8())
	img.MemMiB = int(int32(r.u32()))
	img.BinaryMiB = r.f64()
	return img
}

func putConfig(w *wbuf, cfg core.ServiceConfig) {
	w.str(cfg.Name)
	w.b = append(w.b, cfg.IP[:]...)
	w.u16(cfg.Port)
	putImage(w, cfg.Image)
	w.u32(cfg.TTL)
	w.i64(int64(cfg.IdleTimeout))
	w.u32(uint32(int32(cfg.StateMiB)))
}

func getConfig(r *rbuf) core.ServiceConfig {
	var cfg core.ServiceConfig
	cfg.Name = r.str()
	copy(cfg.IP[:], r.take(4))
	cfg.Port = r.u16()
	cfg.Image = getImage(r)
	cfg.TTL = r.u32()
	cfg.IdleTimeout = time.Duration(r.i64())
	cfg.StateMiB = int(int32(r.u32()))
	return cfg
}

func putCp(w *wbuf, cp *core.Checkpoint) {
	w.bool(cp != nil)
	if cp != nil {
		putImage(w, cp.Image)
		w.u32(uint32(int32(cp.StateMiB)))
	}
}

func getCp(r *rbuf) *core.Checkpoint {
	if !r.bool() {
		return nil
	}
	cp := &core.Checkpoint{}
	cp.Image = getImage(r)
	cp.StateMiB = int(int32(r.u32()))
	return cp
}

func putSnapshot(w *wbuf, s obs.Snapshot) {
	w.str(s.Name)
	w.count(len(s.Counters))
	for _, c := range s.Counters {
		w.str(c.Name)
		w.u64(c.Value)
	}
	w.count(len(s.Gauges))
	for _, g := range s.Gauges {
		w.str(g.Name)
		w.i64(g.Value)
	}
	w.count(len(s.Hists))
	for _, h := range s.Hists {
		w.str(h.Name)
		w.u64(h.Count)
		w.i64(int64(h.Sum))
		w.i64(int64(h.Max))
		w.count(len(h.Buckets))
		for _, b := range h.Buckets {
			w.u64(b)
		}
	}
}

func getSnapshot(r *rbuf) obs.Snapshot {
	var s obs.Snapshot
	s.Name = r.str()
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		s.Counters = append(s.Counters, obs.CounterSnap{Name: r.str(), Value: r.u64()})
	}
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		s.Gauges = append(s.Gauges, obs.GaugeSnap{Name: r.str(), Value: r.i64()})
	}
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		h := obs.HistSnap{Name: r.str(), Count: r.u64(),
			Sum: time.Duration(r.i64()), Max: time.Duration(r.i64())}
		for j, m := 0, int(r.u16()); j < m && r.err == nil; j++ {
			h.Buckets = append(h.Buckets, r.u64())
		}
		s.Hists = append(s.Hists, h)
	}
	return s
}

func putStats(w *wbuf, s api.StatsResponse) {
	w.count(len(s.Services))
	for _, sv := range s.Services {
		w.str(sv.Name)
		w.u8(byte(sv.State))
		w.u64(sv.Launches)
		w.u64(sv.ColdStarts)
		w.u64(sv.Handoffs)
		w.u64(sv.ServFails)
		w.u64(sv.Reaps)
		w.u64(sv.Restores)
		w.u64(sv.DiskRestores)
		w.u64(sv.Demotions)
	}
	w.count(len(s.Triggers))
	for _, t := range s.Triggers {
		w.str(t.Name)
		w.u64(t.Fired)
	}
	w.count(len(s.Registries))
	for _, reg := range s.Registries {
		putSnapshot(w, reg)
	}
	putErr(w, s.Err)
}

func getStats(r *rbuf) api.StatsResponse {
	var s api.StatsResponse
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		sv := api.ServiceStats{Name: r.str(), State: core.ServiceState(r.u8())}
		sv.Launches = r.u64()
		sv.ColdStarts = r.u64()
		sv.Handoffs = r.u64()
		sv.ServFails = r.u64()
		sv.Reaps = r.u64()
		sv.Restores = r.u64()
		sv.DiskRestores = r.u64()
		sv.Demotions = r.u64()
		s.Services = append(s.Services, sv)
	}
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		s.Triggers = append(s.Triggers, api.TriggerStats{Name: r.str(), Fired: r.u64()})
	}
	for i, n := 0, int(r.u16()); i < n && r.err == nil; i++ {
		s.Registries = append(s.Registries, getSnapshot(r))
	}
	s.Err = getErr(r)
	return s
}

// ---- frame encode ----

// Append serializes one frame (header + body) onto dst, framed at
// protocol version ver (V1 or V2). The two versions differ only in
// the Hello/HelloAck bodies; every other frame encodes identically.
// The msg's Go type must match typ: the api request/response struct
// for plain verbs, or the wire-level shapes above for verbs with
// callbacks, events and negotiation frames. Empty-body frames
// (TStatsReq, TWatchCancel) take a nil msg.
func Append(dst []byte, ver byte, typ byte, id uint32, msg any) ([]byte, error) {
	if ver < MinVersion || ver > MaxVersion {
		return dst, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	w := &wbuf{b: dst}
	// Reserve the header; the length back-fills below.
	start := len(w.b)
	w.u32(0)
	w.u8(ver)
	w.u8(typ)
	w.u32(id)

	switch typ {
	case THello:
		m := msg.(Hello)
		w.u16(m.Min)
		w.u16(m.Max)
		if ver >= V2 {
			w.str(m.Token)
		}
	case THelloAck:
		m := msg.(HelloAck)
		w.u16(m.Version)
		if ver >= V2 {
			w.u8(byte(m.Scope))
			putErr(w, m.Err)
		}

	case TRegisterReq:
		m := msg.(api.RegisterRequest)
		putConfig(w, m.Config)
		w.u32(uint32(int32(m.MinWarm)))
		w.str(m.Policy)
	case TActivateReq:
		m := msg.(ActivateReq)
		w.str(m.Name)
		w.bool(m.Speculative)
		w.bool(m.WantReady)
	case TCheckpointReq:
		m := msg.(api.CheckpointRequest)
		w.str(m.Name)
		putSel(w, m.Board)
	case TRestoreReq:
		m := msg.(RestoreReq)
		w.str(m.Name)
		putCp(w, m.Checkpoint)
		putSel(w, m.Board)
		w.bool(m.ToDisk)
		w.bool(m.WantReady)
	case TMigrateReq:
		m := msg.(MigrateReq)
		w.str(m.Name)
		putSel(w, m.From)
		putSel(w, m.To)
		w.bool(m.WantDone)
	case TTransferReq:
		m := msg.(TransferReq)
		putConfig(w, m.Config)
		w.u32(uint32(int32(m.MinWarm)))
		w.str(m.Policy)
		putCp(w, m.Checkpoint)
		w.bool(m.ToDisk)
		w.bool(m.WantReady)
	case TDemoteReq:
		m := msg.(api.DemoteRequest)
		w.str(m.Name)
		putSel(w, m.Board)
	case TPromoteReq:
		m := msg.(PromoteReq)
		w.str(m.Name)
		putSel(w, m.Board)
		w.bool(m.WantReady)
	case TStopReq:
		w.str(msg.(api.StopRequest).Name)
	case TStatsReq, TWatchCancel:
		// empty body
	case TWatchReq:
		w.i64(int64(msg.(WatchReq).Every))

	case TRegisterResp:
		m := msg.(api.RegisterResponse)
		w.str(m.Name)
		putErr(w, m.Err)
	case TActivateResp:
		m := msg.(api.ActivateResponse)
		w.b = append(w.b, m.IP[:]...)
		w.u32(uint32(int32(m.Board)))
		w.u8(byte(m.State))
		putErr(w, m.Err)
	case TCheckpointResp:
		m := msg.(api.CheckpointResponse)
		putCp(w, m.Checkpoint)
		w.u32(uint32(int32(m.Board)))
		putErr(w, m.Err)
	case TRestoreResp:
		putErr(w, msg.(api.RestoreResponse).Err)
	case TMigrateResp:
		m := msg.(api.MigrateResponse)
		w.bool(m.Started)
		putErr(w, m.Err)
	case TTransferResp:
		m := msg.(api.TransferResponse)
		w.u32(uint32(int32(m.Board)))
		putErr(w, m.Err)
	case TDemoteResp:
		m := msg.(api.DemoteResponse)
		w.u32(uint32(int32(m.Demoted)))
		putErr(w, m.Err)
	case TPromoteResp:
		m := msg.(api.PromoteResponse)
		w.u32(uint32(int32(m.Board)))
		putErr(w, m.Err)
	case TStopResp:
		m := msg.(api.StopResponse)
		w.u32(uint32(int32(m.Stopped)))
		putErr(w, m.Err)
	case TStatsResp, TStatsEvent:
		putStats(w, msg.(api.StatsResponse))
	case TWatchResp:
		putErr(w, msg.(WatchResp).Err)

	case TReadyEvent:
		putErr(w, msg.(ReadyEvent).Err)
	case TDoneEvent:
		w.bool(msg.(DoneEvent).OK)

	default:
		return dst, fmt.Errorf("%w: 0x%02x", ErrUnknownType, typ)
	}
	if w.err != nil {
		return dst, w.err
	}
	n := len(w.b) - start - 4
	if n > MaxFrame {
		return dst, ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(w.b[start:], uint32(n))
	return w.b, nil
}

// ---- frame decode ----

// Decode parses one frame from the front of buf, returning the frame
// version, type, request id, decoded message and the bytes consumed.
// Both protocol versions are accepted — sessions enforce that frames
// carry their negotiated version, the codec does not. ErrShort means
// buf holds only a prefix — accumulate more and retry; any other
// error is a protocol violation.
func Decode(buf []byte) (ver byte, typ byte, id uint32, msg any, n int, err error) {
	if len(buf) < 4 {
		return 0, 0, 0, nil, 0, ErrShort
	}
	length := int(binary.BigEndian.Uint32(buf))
	if length > MaxFrame {
		return 0, 0, 0, nil, 0, ErrFrameTooBig
	}
	if length < headerLen-4 {
		return 0, 0, 0, nil, 0, fmt.Errorf("%w: length %d below header", ErrBadFrame, length)
	}
	if len(buf) < 4+length {
		return 0, 0, 0, nil, 0, ErrShort
	}
	n = 4 + length
	ver = buf[4]
	if ver < MinVersion || ver > MaxVersion {
		return ver, 0, 0, nil, n, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	typ = buf[5]
	id = binary.BigEndian.Uint32(buf[6:])
	msg, err = decodeBody(ver, typ, buf[headerLen:n])
	return ver, typ, id, msg, n, err
}

func decodeBody(ver byte, typ byte, body []byte) (any, error) {
	r := &rbuf{b: body}
	var msg any
	switch typ {
	case THello:
		m := Hello{Min: r.u16(), Max: r.u16()}
		if ver >= V2 {
			m.Token = r.str()
		}
		msg = m
	case THelloAck:
		m := HelloAck{Version: r.u16()}
		if ver >= V2 {
			m.Scope = api.Scope(r.u8())
			m.Err = getErr(r)
		}
		msg = m

	case TRegisterReq:
		var m api.RegisterRequest
		m.Config = getConfig(r)
		m.MinWarm = int(int32(r.u32()))
		m.Policy = r.str()
		msg = m
	case TActivateReq:
		msg = ActivateReq{Name: r.str(), Speculative: r.bool(), WantReady: r.bool()}
	case TCheckpointReq:
		msg = api.CheckpointRequest{Name: r.str(), Board: getSel(r)}
	case TRestoreReq:
		msg = RestoreReq{Name: r.str(), Checkpoint: getCp(r),
			Board: getSel(r), ToDisk: r.bool(), WantReady: r.bool()}
	case TMigrateReq:
		msg = MigrateReq{Name: r.str(), From: getSel(r), To: getSel(r), WantDone: r.bool()}
	case TTransferReq:
		var m TransferReq
		m.Config = getConfig(r)
		m.MinWarm = int(int32(r.u32()))
		m.Policy = r.str()
		m.Checkpoint = getCp(r)
		m.ToDisk = r.bool()
		m.WantReady = r.bool()
		msg = m
	case TDemoteReq:
		msg = api.DemoteRequest{Name: r.str(), Board: getSel(r)}
	case TPromoteReq:
		msg = PromoteReq{Name: r.str(), Board: getSel(r), WantReady: r.bool()}
	case TStopReq:
		msg = api.StopRequest{Name: r.str()}
	case TStatsReq:
		msg = api.StatsRequest{}
	case TWatchReq:
		msg = WatchReq{Every: time.Duration(r.i64())}
	case TWatchCancel:
		msg = struct{}{}

	case TRegisterResp:
		msg = api.RegisterResponse{Name: r.str(), Err: getErr(r)}
	case TActivateResp:
		var m api.ActivateResponse
		copy(m.IP[:], r.take(4))
		m.Board = int(int32(r.u32()))
		m.State = core.ServiceState(r.u8())
		m.Err = getErr(r)
		msg = m
	case TCheckpointResp:
		msg = api.CheckpointResponse{Checkpoint: getCp(r),
			Board: int(int32(r.u32())), Err: getErr(r)}
	case TRestoreResp:
		msg = api.RestoreResponse{Err: getErr(r)}
	case TMigrateResp:
		msg = api.MigrateResponse{Started: r.bool(), Err: getErr(r)}
	case TTransferResp:
		msg = api.TransferResponse{Board: int(int32(r.u32())), Err: getErr(r)}
	case TDemoteResp:
		msg = api.DemoteResponse{Demoted: int(int32(r.u32())), Err: getErr(r)}
	case TPromoteResp:
		msg = api.PromoteResponse{Board: int(int32(r.u32())), Err: getErr(r)}
	case TStopResp:
		msg = api.StopResponse{Stopped: int(int32(r.u32())), Err: getErr(r)}
	case TStatsResp, TStatsEvent:
		msg = getStats(r)
	case TWatchResp:
		msg = WatchResp{Err: getErr(r)}

	case TReadyEvent:
		msg = ReadyEvent{Err: getErr(r)}
	case TDoneEvent:
		msg = DoneEvent{OK: r.bool()}

	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, typ)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return msg, nil
}
