package wire

import (
	"jitsu/internal/api"
	"jitsu/internal/netstack"
	"jitsu/internal/sim"
)

// Client speaks the wire protocol over one TCP connection and presents
// the remote deployment as a local api.ControlPlane. Verbs are
// synchronous from the caller's perspective: each one sends a request
// frame and then pumps the simulation engine until the response frame
// arrives — so a Client must be driven from OUTSIDE engine callbacks
// (an operator loop, a test, a command main), never from inside an
// event handler, where pumping would recurse into dispatch.
//
// Remote OnReady/OnDone callbacks and WatchStats snapshots arrive as
// event frames whenever the engine runs — including during other
// verbs' pumping — and fire the locally-registered closures.
type Client struct {
	eng     *sim.Engine
	conn    *netstack.TCPConn
	rx      []byte
	nextID  uint32
	version uint16
	scope   api.Scope

	resps   map[uint32]any
	readys  map[uint32]func(error)
	dones   map[uint32]func(bool)
	watches map[uint32]func(api.StatsResponse) bool

	closed   bool
	closeErr error

	// Frames counts decoded inbound frames; Events the subset that were
	// ready/done/stats events.
	Frames, Events uint64
}

// SessionConfig shapes one operator session.
type SessionConfig struct {
	// Token is the capability credential presented in the V2 Hello;
	// empty dials anonymously. On a downgrade to V1 the token is
	// elided — whether the anonymous session is accepted is server
	// policy.
	Token string
	// Min and Max clamp the offered protocol range; zero values
	// default to the package's full MinVersion..MaxVersion range.
	Min, Max uint16
}

// DialSession connects host to the wire server at dst:port, completes
// the TCP handshake and the Hello/HelloAck negotiation (version and,
// on V2, credential), and returns a ready Client. It pumps eng until
// the handshake settles, so call it from outside engine callbacks. A
// refused credential surfaces as an *api.Error with CodeUnauthorized.
func DialSession(eng *sim.Engine, host *netstack.Host, dst netstack.IP, port uint16, cfg SessionConfig) (*Client, error) {
	if cfg.Min == 0 {
		cfg.Min = MinVersion
	}
	if cfg.Max == 0 {
		cfg.Max = MaxVersion
	}
	c := &Client{
		eng:     eng,
		resps:   make(map[uint32]any),
		readys:  make(map[uint32]func(error)),
		dones:   make(map[uint32]func(bool)),
		watches: make(map[uint32]func(api.StatsResponse) bool),
	}
	var dialErr error
	connected := false
	host.DialTCP(dst, port, func(conn *netstack.TCPConn, err error) {
		connected = true
		dialErr = err
		c.conn = conn
	})
	if err := c.pump(eng, func() bool { return connected }); err != nil {
		return nil, err
	}
	if dialErr != nil {
		return nil, dialErr
	}
	c.conn.OnData(c.onData)
	c.conn.OnClose(func(err error) {
		c.closed = true
		if err != nil {
			c.closeErr = err
		}
	})

	// The Hello is framed at the highest version we offer, so a V2
	// Hello carries the token; a V1 peer still negotiates the range
	// from the body and answers with a V1-framed ack.
	c.version = cfg.Max
	id := c.id()
	if err := c.sendFrame(THello, id, Hello{Min: cfg.Min, Max: cfg.Max, Token: cfg.Token}); err != nil {
		return nil, err
	}
	if err := c.pump(eng, func() bool { _, ok := c.resps[id]; return ok }); err != nil {
		return nil, err
	}
	ack, ok := c.resps[id].(HelloAck)
	delete(c.resps, id)
	if !ok || ack.Version == 0 {
		c.conn.Close()
		c.closed = true
		if ok && ack.Err != nil {
			return nil, ack.Err
		}
		return nil, ErrNoVersion
	}
	c.version = ack.Version
	c.scope = ack.Scope
	return c, nil
}

// Dial connects an anonymous session.
//
// Deprecated: use DialSession, which presents a capability token and
// controls the offered protocol range.
func Dial(eng *sim.Engine, host *netstack.Host, dst netstack.IP, port uint16) (*Client, error) {
	return DialSession(eng, host, dst, port, SessionConfig{})
}

// Close ends the session: outstanding watches are cancelled
// server-side via TWatchCancel frames (flushed before the FIN), every
// callback registration is dropped — Pending reads 0 afterwards — and
// the connection is shut down.
func (c *Client) Close() {
	if c.conn != nil && !c.closed {
		for id := range c.watches {
			delete(c.watches, id)
			c.sendFrame(TWatchCancel, id, nil)
		}
		c.conn.Close()
	}
	c.closed = true
	clear(c.readys)
	clear(c.dones)
	clear(c.watches)
}

// Abort kills the transport abruptly — no watch cancels, no FIN — the
// operator console that vanishes mid-stream. Server-side reclamation
// rides the connection-teardown path instead of TWatchCancel frames.
func (c *Client) Abort() {
	if c.conn != nil && !c.closed {
		c.conn.Abort()
	}
	c.closed = true
	clear(c.readys)
	clear(c.dones)
	clear(c.watches)
}

// Version is the negotiated protocol version.
func (c *Client) Version() uint16 { return c.version }

// Scope is the capability scope the server granted this session.
// Only V2 acks carry it — on a V1 session it reads ScopeNone even
// though the server accepted the session under its anonymous policy.
func (c *Client) Scope() api.Scope { return c.scope }

// Pending is the number of callback registrations still waiting for a
// Ready/Done event or streaming stats. Verbs that fail — on the
// transport or with an application error — drop their registration,
// since the matching event will never arrive; a Pending count that
// only grows is a leak.
func (c *Client) Pending() int { return len(c.readys) + len(c.dones) + len(c.watches) }

func (c *Client) id() uint32 {
	c.nextID++
	return c.nextID
}

// pump steps the engine until done() or the connection/engine dies.
func (c *Client) pump(eng *sim.Engine, done func() bool) error {
	for !done() {
		if c.closed {
			if c.closeErr != nil {
				return c.closeErr
			}
			return ErrClosed
		}
		if !eng.Step() {
			return ErrClosed // event queue drained with no answer coming
		}
	}
	return nil
}

func (c *Client) sendFrame(typ byte, id uint32, msg any) error {
	buf, err := Append(nil, byte(c.version), typ, id, msg)
	if err != nil {
		return err
	}
	return c.conn.Send(buf)
}

// onData reassembles frames and routes them: responses park in resps
// for a pumping verb to collect, events fire their registered closures
// immediately.
func (c *Client) onData(b []byte) {
	c.rx = append(c.rx, b...)
	for {
		ver, typ, id, msg, n, err := Decode(c.rx)
		if err == ErrShort {
			return
		}
		// Post-handshake frames must carry the negotiated version; the
		// HelloAck itself is exempt because it IS the downgrade signal
		// (the server frames it at the version it chose).
		if err == nil && typ != THelloAck && ver != byte(c.version) {
			err = ErrBadVersion
		}
		if err != nil {
			c.closed = true
			c.closeErr = err
			c.conn.Abort()
			return
		}
		c.rx = c.rx[n:]
		c.Frames++
		switch typ {
		case TReadyEvent:
			c.Events++
			if fn, ok := c.readys[id]; ok {
				delete(c.readys, id)
				ev := msg.(ReadyEvent)
				if ev.Err != nil {
					fn(ev.Err)
				} else {
					fn(nil)
				}
			}
		case TDoneEvent:
			c.Events++
			if fn, ok := c.dones[id]; ok {
				delete(c.dones, id)
				fn(msg.(DoneEvent).OK)
			}
		case TStatsEvent:
			c.Events++
			if fn, ok := c.watches[id]; ok {
				if !fn(msg.(api.StatsResponse)) {
					delete(c.watches, id)
					c.sendFrame(TWatchCancel, id, nil)
				}
			}
		default:
			c.resps[id] = msg
		}
	}
}

// roundTrip sends one request and pumps until its response arrives.
func (c *Client) roundTrip(typ byte, id uint32, msg any) (any, *api.Error) {
	op := opName(typ)
	if c.closed {
		return nil, api.Errf(op, api.CodeUnavailable, "wire: %v", c.closeState())
	}
	if err := c.sendFrame(typ, id, msg); err != nil {
		return nil, api.Errf(op, api.CodeUnavailable, "wire: %v", err)
	}
	if err := c.pump(c.eng, func() bool { _, ok := c.resps[id]; return ok }); err != nil {
		return nil, api.Errf(op, api.CodeUnavailable, "wire: %v", err)
	}
	resp := c.resps[id]
	delete(c.resps, id)
	return resp, nil
}

func (c *Client) closeState() error {
	if c.closeErr != nil {
		return c.closeErr
	}
	return ErrClosed
}

func opName(typ byte) string {
	switch typ {
	case TRegisterReq:
		return api.VerbRegister
	case TActivateReq:
		return api.VerbActivate
	case TCheckpointReq:
		return api.VerbCheckpoint
	case TRestoreReq:
		return api.VerbRestore
	case TMigrateReq:
		return api.VerbMigrate
	case TTransferReq:
		return api.VerbTransfer
	case TDemoteReq:
		return api.VerbDemote
	case TPromoteReq:
		return api.VerbPromote
	case TStopReq:
		return api.VerbStop
	case TStatsReq:
		return api.VerbStats
	case TWatchReq:
		return api.VerbWatchStats
	}
	return "wire"
}

// ---- api.ControlPlane ----

// Register implements api.ControlPlane.
func (c *Client) Register(req api.RegisterRequest) api.RegisterResponse {
	resp, err := c.roundTrip(TRegisterReq, c.id(), req)
	if err != nil {
		return api.RegisterResponse{Err: err}
	}
	return resp.(api.RegisterResponse)
}

// Activate implements api.ControlPlane.
func (c *Client) Activate(req api.ActivateRequest) api.ActivateResponse {
	id := c.id()
	if req.OnReady != nil {
		c.readys[id] = req.OnReady
	}
	resp, err := c.roundTrip(TActivateReq, id,
		ActivateReq{Name: req.Name, Speculative: req.Speculative, WantReady: req.OnReady != nil})
	if err != nil {
		delete(c.readys, id)
		return api.ActivateResponse{Err: err}
	}
	out := resp.(api.ActivateResponse)
	if out.Err != nil {
		// The verb failed server-side: no Ready event will ever arrive.
		delete(c.readys, id)
	}
	return out
}

// Checkpoint implements api.ControlPlane.
func (c *Client) Checkpoint(req api.CheckpointRequest) api.CheckpointResponse {
	resp, err := c.roundTrip(TCheckpointReq, c.id(), req)
	if err != nil {
		return api.CheckpointResponse{Err: err}
	}
	return resp.(api.CheckpointResponse)
}

// Restore implements api.ControlPlane.
func (c *Client) Restore(req api.RestoreRequest) api.RestoreResponse {
	id := c.id()
	if req.OnReady != nil {
		c.readys[id] = req.OnReady
	}
	resp, err := c.roundTrip(TRestoreReq, id, RestoreReq{Name: req.Name,
		Checkpoint: req.Checkpoint, Board: req.Board, ToDisk: req.ToDisk,
		WantReady: req.OnReady != nil})
	if err != nil {
		delete(c.readys, id)
		return api.RestoreResponse{Err: err}
	}
	out := resp.(api.RestoreResponse)
	if out.Err != nil {
		delete(c.readys, id)
	}
	return out
}

// Migrate implements api.ControlPlane.
func (c *Client) Migrate(req api.MigrateRequest) api.MigrateResponse {
	id := c.id()
	if req.OnDone != nil {
		c.dones[id] = req.OnDone
	}
	resp, err := c.roundTrip(TMigrateReq, id, MigrateReq{Name: req.Name,
		From: req.From, To: req.To, WantDone: req.OnDone != nil})
	if err != nil {
		delete(c.dones, id)
		return api.MigrateResponse{Err: err}
	}
	out := resp.(api.MigrateResponse)
	if out.Err != nil {
		// The migration was rejected outright: no Done event follows.
		delete(c.dones, id)
	}
	return out
}

// Transfer implements api.ControlPlane.
func (c *Client) Transfer(req api.TransferRequest) api.TransferResponse {
	id := c.id()
	if req.OnReady != nil {
		c.readys[id] = req.OnReady
	}
	resp, err := c.roundTrip(TTransferReq, id, TransferReq{Config: req.Config,
		MinWarm: req.MinWarm, Policy: req.Policy, Checkpoint: req.Checkpoint,
		ToDisk: req.ToDisk, WantReady: req.OnReady != nil})
	if err != nil {
		delete(c.readys, id)
		return api.TransferResponse{Err: err}
	}
	out := resp.(api.TransferResponse)
	if out.Err != nil {
		delete(c.readys, id)
	}
	return out
}

// Demote implements api.ControlPlane.
func (c *Client) Demote(req api.DemoteRequest) api.DemoteResponse {
	resp, err := c.roundTrip(TDemoteReq, c.id(), req)
	if err != nil {
		return api.DemoteResponse{Err: err}
	}
	return resp.(api.DemoteResponse)
}

// Promote implements api.ControlPlane.
func (c *Client) Promote(req api.PromoteRequest) api.PromoteResponse {
	id := c.id()
	if req.OnReady != nil {
		c.readys[id] = req.OnReady
	}
	resp, err := c.roundTrip(TPromoteReq, id,
		PromoteReq{Name: req.Name, Board: req.Board, WantReady: req.OnReady != nil})
	if err != nil {
		delete(c.readys, id)
		return api.PromoteResponse{Err: err}
	}
	out := resp.(api.PromoteResponse)
	if out.Err != nil {
		delete(c.readys, id)
	}
	return out
}

// Stop implements api.ControlPlane.
func (c *Client) Stop(req api.StopRequest) api.StopResponse {
	resp, err := c.roundTrip(TStopReq, c.id(), req)
	if err != nil {
		return api.StopResponse{Err: err}
	}
	return resp.(api.StopResponse)
}

// Stats implements api.ControlPlane.
func (c *Client) Stats(api.StatsRequest) api.StatsResponse {
	resp, err := c.roundTrip(TStatsReq, c.id(), nil)
	if err != nil {
		return api.StatsResponse{Err: err}
	}
	return resp.(api.StatsResponse)
}

// WatchStats implements api.ControlPlane: snapshots stream in as
// StatsEvent frames and fire OnStats; the returned Stop sends a cancel
// frame upstream.
func (c *Client) WatchStats(req api.WatchStatsRequest) api.WatchStatsResponse {
	if req.OnStats == nil {
		return api.WatchStatsResponse{Err: api.Errf(api.VerbWatchStats, api.CodeBadRequest, "nil OnStats")}
	}
	id := c.id()
	c.watches[id] = req.OnStats
	resp, err := c.roundTrip(TWatchReq, id, WatchReq{Every: req.Every})
	if err != nil {
		delete(c.watches, id)
		return api.WatchStatsResponse{Err: err}
	}
	wr := resp.(WatchResp)
	if wr.Err != nil {
		delete(c.watches, id)
		return api.WatchStatsResponse{Err: wr.Err}
	}
	return api.WatchStatsResponse{Stop: func() {
		if _, ok := c.watches[id]; ok {
			delete(c.watches, id)
			c.sendFrame(TWatchCancel, id, nil)
		}
	}}
}

var _ api.ControlPlane = (*Client)(nil)
