package wire

import (
	"jitsu/internal/api"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// AppResolver rebuilds the application factory an Image lost in
// transit (App is an interface and never crosses the wire). A nil
// resolver leaves adopted images without an app — registrations still
// succeed, but activations would fail to boot.
type AppResolver func(name string, kind xen.GuestKind) unikernel.App

// Server binds a ControlPlane backend to a TCP port on a management
// host: each connection negotiates a protocol version, then request
// frames are decoded, dispatched to the backend, and answered with
// response frames; callbacks fire back as event frames on the same
// connection.
type Server struct {
	backend api.ControlPlane
	apps    AppResolver
	ln      *netstack.TCPListener

	// Conns counts accepted connections, Frames decoded request frames,
	// ProtoErrs connections dropped for protocol violations.
	Conns, Frames, ProtoErrs uint64
}

// Serve starts a wire server for backend on host:port. The resolver
// re-attaches App factories to images arriving in Register, Restore
// and Transfer requests (nil = leave them app-less).
func Serve(host *netstack.Host, port uint16, backend api.ControlPlane, apps AppResolver) (*Server, error) {
	s := &Server{backend: backend, apps: apps}
	ln, err := host.ListenTCP(port, func(conn *netstack.TCPConn) {
		s.Conns++
		sc := &srvConn{s: s, conn: conn, watches: make(map[uint32]func())}
		conn.OnData(sc.onData)
		conn.OnClose(sc.onClose)
	})
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return s, nil
}

// Close stops accepting new connections.
func (s *Server) Close() { s.ln.Close() }

// resolve fills in the App for an image that crossed the wire.
func (s *Server) resolve(img *unikernel.Image) {
	if s.apps != nil && img.App == nil {
		img.App = s.apps(img.Name, img.Kind)
	}
}

// srvConn is one accepted connection's state: the rx reassembly
// buffer, whether Hello/HelloAck completed, and the live WatchStats
// subscriptions keyed by their request id.
type srvConn struct {
	s       *Server
	conn    *netstack.TCPConn
	rx      []byte
	hello   bool
	closed  bool
	watches map[uint32]func()
}

func (sc *srvConn) onClose(error) {
	sc.closed = true
	for id, stop := range sc.watches {
		stop()
		delete(sc.watches, id)
	}
}

// drop abandons the connection on a protocol violation.
func (sc *srvConn) drop() {
	sc.s.ProtoErrs++
	sc.onClose(nil)
	sc.conn.Abort()
}

func (sc *srvConn) send(typ byte, id uint32, msg any) {
	if sc.closed {
		return
	}
	buf, err := Append(nil, typ, id, msg)
	if err != nil {
		sc.drop()
		return
	}
	if sc.conn.Send(buf) != nil {
		sc.onClose(nil)
	}
}

func (sc *srvConn) onData(b []byte) {
	sc.rx = append(sc.rx, b...)
	for !sc.closed {
		typ, id, msg, n, err := Decode(sc.rx)
		if err == ErrShort {
			return
		}
		if err != nil {
			sc.drop()
			return
		}
		sc.rx = sc.rx[n:]
		sc.dispatch(typ, id, msg)
	}
}

func (sc *srvConn) dispatch(typ byte, id uint32, msg any) {
	// The handshake gates everything: first frame must be Hello, and
	// exactly once.
	if !sc.hello {
		h, ok := msg.(Hello)
		if typ != THello || !ok {
			sc.drop()
			return
		}
		if h.Min > Version || h.Max < Version {
			sc.send(THelloAck, id, HelloAck{Version: 0})
			sc.conn.Close()
			sc.closed = true
			return
		}
		sc.hello = true
		sc.send(THelloAck, id, HelloAck{Version: Version})
		return
	}
	sc.s.Frames++

	switch typ {
	case THello:
		sc.drop() // a second Hello is a protocol violation

	case TRegisterReq:
		req := msg.(api.RegisterRequest)
		sc.s.resolve(&req.Config.Image)
		sc.send(respOf(typ), id, sc.s.backend.Register(req))
	case TActivateReq:
		m := msg.(ActivateReq)
		req := api.ActivateRequest{Name: m.Name, Speculative: m.Speculative}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(respOf(typ), id, sc.s.backend.Activate(req))
	case TCheckpointReq:
		sc.send(respOf(typ), id, sc.s.backend.Checkpoint(msg.(api.CheckpointRequest)))
	case TRestoreReq:
		m := msg.(RestoreReq)
		if m.Checkpoint != nil {
			sc.s.resolve(&m.Checkpoint.Image)
		}
		req := api.RestoreRequest{Name: m.Name, Checkpoint: m.Checkpoint,
			Board: m.Board, ToDisk: m.ToDisk}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(respOf(typ), id, sc.s.backend.Restore(req))
	case TMigrateReq:
		m := msg.(MigrateReq)
		req := api.MigrateRequest{Name: m.Name, From: m.From, To: m.To}
		if m.WantDone {
			req.OnDone = func(ok bool) { sc.send(TDoneEvent, id, DoneEvent{OK: ok}) }
		}
		sc.send(respOf(typ), id, sc.s.backend.Migrate(req))
	case TTransferReq:
		m := msg.(TransferReq)
		sc.s.resolve(&m.Config.Image)
		if m.Checkpoint != nil {
			sc.s.resolve(&m.Checkpoint.Image)
		}
		req := api.TransferRequest{Config: m.Config, MinWarm: m.MinWarm,
			Policy: m.Policy, Checkpoint: m.Checkpoint, ToDisk: m.ToDisk}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(respOf(typ), id, sc.s.backend.Transfer(req))
	case TDemoteReq:
		sc.send(respOf(typ), id, sc.s.backend.Demote(msg.(api.DemoteRequest)))
	case TPromoteReq:
		m := msg.(PromoteReq)
		req := api.PromoteRequest{Name: m.Name, Board: m.Board}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(respOf(typ), id, sc.s.backend.Promote(req))
	case TStopReq:
		sc.send(respOf(typ), id, sc.s.backend.Stop(msg.(api.StopRequest)))
	case TStatsReq:
		sc.send(respOf(typ), id, sc.s.backend.Stats(api.StatsRequest{}))
	case TWatchReq:
		m := msg.(WatchReq)
		resp := sc.s.backend.WatchStats(api.WatchStatsRequest{
			Every: m.Every,
			OnStats: func(s api.StatsResponse) bool {
				if sc.closed {
					return false
				}
				sc.send(TStatsEvent, id, s)
				return !sc.closed
			},
		})
		if resp.Err == nil && resp.Stop != nil {
			sc.watches[id] = resp.Stop
		}
		sc.send(respOf(typ), id, WatchResp{Err: resp.Err})
	case TWatchCancel:
		if stop, ok := sc.watches[id]; ok {
			stop()
			delete(sc.watches, id)
		}

	default:
		// Response/event frames from a client (or future request types)
		// are violations at the server.
		sc.drop()
	}
}

// readyEvent builds an OnReady callback that ships the outcome back as
// a ReadyEvent frame tagged with the request id.
func (sc *srvConn) readyEvent(id uint32) func(error) {
	return func(err error) {
		ev := ReadyEvent{}
		if err != nil {
			if ae, ok := err.(*api.Error); ok {
				ev.Err = ae
			} else {
				ev.Err = api.Errf("ready", api.CodeUnavailable, "%v", err)
			}
		}
		sc.send(TReadyEvent, id, ev)
	}
}
