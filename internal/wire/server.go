package wire

import (
	"jitsu/internal/api"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// AppResolver rebuilds the application factory an Image lost in
// transit (App is an interface and never crosses the wire). A nil
// resolver leaves adopted images without an app — registrations still
// succeed, but activations would fail to boot.
type AppResolver func(name string, kind xen.GuestKind) unikernel.App

// ServerConfig shapes a wire server's session policy.
type ServerConfig struct {
	// Backend is the control plane the server fronts (required).
	Backend api.ControlPlane
	// Apps re-attaches App factories to images arriving in Register,
	// Restore and Transfer requests (nil = leave them app-less).
	Apps AppResolver

	// Keyring maps capability tokens to the scope each one grants.
	// Tokens are only usable on V2 sessions — a V1 session has no way
	// to present one.
	Keyring map[string]api.Scope
	// Anonymous is the scope granted to sessions that present no token
	// (every V1 session, and V2 sessions with an empty token).
	// ScopeNone refuses anonymous sessions outright.
	Anonymous api.Scope

	// MinVersion and MaxVersion clamp the protocol range this server
	// speaks; zero values default to the package's full MinVersion..
	// MaxVersion range. MaxVersion: V1 makes a genuine v1-only peer
	// for interop testing.
	MinVersion, MaxVersion uint16
}

// Server binds a ControlPlane backend to a TCP port on a management
// host: each connection negotiates a protocol version and a
// capability scope, then request frames are decoded, checked against
// the scope, dispatched to the backend, and answered with response
// frames; callbacks fire back as event frames on the same connection.
// Connections are independent — each has its own request-id space and
// subscription registry, and one session's teardown never disturbs
// the others.
type Server struct {
	cfg   ServerConfig
	ln    *netstack.TCPListener
	conns map[*srvConn]struct{}

	// Conns counts accepted connections, Frames decoded request
	// frames, ProtoErrs connections dropped for protocol violations,
	// Unauthorized verbs refused for insufficient scope (plus sessions
	// refused at the handshake), WatchCancels watches reclaimed by
	// explicit TWatchCancel frames.
	Conns, Frames, ProtoErrs, Unauthorized, WatchCancels uint64
}

// ServeWith starts a wire server on host:port with an explicit
// session policy.
func ServeWith(host *netstack.Host, port uint16, cfg ServerConfig) (*Server, error) {
	if cfg.MinVersion == 0 {
		cfg.MinVersion = MinVersion
	}
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = MaxVersion
	}
	s := &Server{cfg: cfg, conns: make(map[*srvConn]struct{})}
	ln, err := host.ListenTCP(port, func(conn *netstack.TCPConn) {
		s.Conns++
		sc := &srvConn{s: s, conn: conn, watches: make(map[uint32]func())}
		s.conns[sc] = struct{}{}
		conn.OnData(sc.onData)
		conn.OnClose(sc.onClose)
	})
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return s, nil
}

// Serve starts a wire server that accepts every anonymous session
// with full authority.
//
// Deprecated: use ServeWith, which configures a keyring and an
// anonymous-session policy instead of granting admin to anyone who
// can dial.
func Serve(host *netstack.Host, port uint16, backend api.ControlPlane, apps AppResolver) (*Server, error) {
	return ServeWith(host, port, ServerConfig{
		Backend: backend, Apps: apps, Anonymous: api.ScopeAdmin})
}

// Close stops accepting new connections.
func (s *Server) Close() { s.ln.Close() }

// ActiveConns is the number of live (accepted, not yet torn down)
// sessions.
func (s *Server) ActiveConns() int { return len(s.conns) }

// ActiveWatches is the number of live WatchStats subscriptions across
// every session.
func (s *Server) ActiveWatches() int {
	n := 0
	for sc := range s.conns {
		n += len(sc.watches)
	}
	return n
}

// resolve fills in the App for an image that crossed the wire.
func (s *Server) resolve(img *unikernel.Image) {
	if s.cfg.Apps != nil && img.App == nil {
		img.App = s.cfg.Apps(img.Name, img.Kind)
	}
}

// srvConn is one accepted connection's state: the rx reassembly
// buffer, the negotiated version and granted scope once Hello/HelloAck
// completed, and the live WatchStats subscriptions keyed by their
// request id.
type srvConn struct {
	s       *Server
	conn    *netstack.TCPConn
	rx      []byte
	hello   bool
	closed  bool
	ver     byte
	scope   api.Scope
	watches map[uint32]func()
}

func (sc *srvConn) onClose(error) {
	sc.closed = true
	for id, stop := range sc.watches {
		stop()
		delete(sc.watches, id)
	}
	delete(sc.s.conns, sc)
}

// drop abandons the connection on a protocol violation.
func (sc *srvConn) drop() {
	sc.s.ProtoErrs++
	sc.onClose(nil)
	sc.conn.Abort()
}

// refuse answers the handshake with a turned-away HelloAck framed at
// ackVer and closes the connection cleanly.
func (sc *srvConn) refuse(ackVer byte, id uint32, err *api.Error) {
	sc.send(ackVer, THelloAck, id, HelloAck{Version: 0, Scope: api.ScopeNone, Err: err})
	sc.conn.Close()
	sc.closed = true
	delete(sc.s.conns, sc)
}

func (sc *srvConn) send(ver byte, typ byte, id uint32, msg any) {
	if sc.closed {
		return
	}
	buf, err := Append(nil, ver, typ, id, msg)
	if err != nil {
		sc.drop()
		return
	}
	if sc.conn.Send(buf) != nil {
		sc.onClose(nil)
	}
}

func (sc *srvConn) onData(b []byte) {
	sc.rx = append(sc.rx, b...)
	for !sc.closed {
		ver, typ, id, msg, n, err := Decode(sc.rx)
		if err == ErrShort {
			return
		}
		if err != nil {
			sc.drop()
			return
		}
		sc.rx = sc.rx[n:]
		// Post-handshake frames must carry the negotiated version.
		if sc.hello && ver != sc.ver {
			sc.drop()
			return
		}
		sc.dispatch(ver, typ, id, msg)
	}
}

// handshake negotiates the protocol version and authenticates the
// session, leaving sc.ver and sc.scope set — or the connection closed.
func (sc *srvConn) handshake(ver byte, typ byte, id uint32, msg any) {
	h, ok := msg.(Hello)
	if typ != THello || !ok {
		sc.drop()
		return
	}
	// The refusal ack must be framed at a version the client can
	// decode: its offered Max, clamped to what this server speaks.
	ackVer := byte(sc.s.cfg.MaxVersion)
	if h.Max < uint16(ackVer) && h.Max >= MinVersion {
		ackVer = byte(h.Max)
	}
	// Highest version inside both [Min,Max] ranges, or refusal.
	neg := h.Max
	if uint16(sc.s.cfg.MaxVersion) < neg {
		neg = sc.s.cfg.MaxVersion
	}
	if neg < h.Min || neg < sc.s.cfg.MinVersion {
		sc.refuse(ackVer, id, nil)
		return
	}

	// Map the credential to a scope. On a V1 session the token is
	// elided — even if the Hello frame was V2-framed and carried one —
	// and the anonymous policy decides.
	scope := sc.s.cfg.Anonymous
	if neg >= V2 && h.Token != "" {
		granted, known := sc.s.cfg.Keyring[h.Token]
		if !known {
			sc.s.Unauthorized++
			sc.refuse(byte(neg), id,
				api.Errf("hello", api.CodeUnauthorized, "unknown capability token"))
			return
		}
		scope = granted
	}
	if scope == api.ScopeNone {
		sc.s.Unauthorized++
		var err *api.Error
		if neg >= V2 {
			err = api.Errf("hello", api.CodeUnauthorized,
				"anonymous sessions are refused; present a capability token")
		}
		sc.refuse(byte(neg), id, err)
		return
	}

	sc.hello = true
	sc.ver = byte(neg)
	sc.scope = scope
	sc.send(sc.ver, THelloAck, id, HelloAck{Version: neg, Scope: scope})
}

func (sc *srvConn) dispatch(ver byte, typ byte, id uint32, msg any) {
	// The handshake gates everything: first frame must be Hello, and
	// exactly once.
	if !sc.hello {
		sc.handshake(ver, typ, id, msg)
		return
	}
	sc.s.Frames++

	// Capability gate: a verb above the session's scope is refused
	// with its ordinary response frame — the session stays up.
	if typ >= TRegisterReq && typ <= TWatchReq {
		op := opName(typ)
		if need := api.RequiredScope(op); !sc.scope.Allows(need) {
			sc.s.Unauthorized++
			sc.send(sc.ver, respOf(typ), id, unauthorizedResp(typ,
				api.Errf(op, api.CodeUnauthorized,
					"scope %s does not cover %s (needs %s)", sc.scope, op, need)))
			return
		}
	}

	switch typ {
	case THello:
		sc.drop() // a second Hello is a protocol violation

	case TRegisterReq:
		req := msg.(api.RegisterRequest)
		sc.s.resolve(&req.Config.Image)
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Register(req))
	case TActivateReq:
		m := msg.(ActivateReq)
		req := api.ActivateRequest{Name: m.Name, Speculative: m.Speculative}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Activate(req))
	case TCheckpointReq:
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Checkpoint(msg.(api.CheckpointRequest)))
	case TRestoreReq:
		m := msg.(RestoreReq)
		if m.Checkpoint != nil {
			sc.s.resolve(&m.Checkpoint.Image)
		}
		req := api.RestoreRequest{Name: m.Name, Checkpoint: m.Checkpoint,
			Board: m.Board, ToDisk: m.ToDisk}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Restore(req))
	case TMigrateReq:
		m := msg.(MigrateReq)
		req := api.MigrateRequest{Name: m.Name, From: m.From, To: m.To}
		if m.WantDone {
			req.OnDone = func(ok bool) { sc.send(sc.ver, TDoneEvent, id, DoneEvent{OK: ok}) }
		}
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Migrate(req))
	case TTransferReq:
		m := msg.(TransferReq)
		sc.s.resolve(&m.Config.Image)
		if m.Checkpoint != nil {
			sc.s.resolve(&m.Checkpoint.Image)
		}
		req := api.TransferRequest{Config: m.Config, MinWarm: m.MinWarm,
			Policy: m.Policy, Checkpoint: m.Checkpoint, ToDisk: m.ToDisk}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Transfer(req))
	case TDemoteReq:
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Demote(msg.(api.DemoteRequest)))
	case TPromoteReq:
		m := msg.(PromoteReq)
		req := api.PromoteRequest{Name: m.Name, Board: m.Board}
		if m.WantReady {
			req.OnReady = sc.readyEvent(id)
		}
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Promote(req))
	case TStopReq:
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Stop(msg.(api.StopRequest)))
	case TStatsReq:
		sc.send(sc.ver, respOf(typ), id, sc.s.cfg.Backend.Stats(api.StatsRequest{}))
	case TWatchReq:
		m := msg.(WatchReq)
		resp := sc.s.cfg.Backend.WatchStats(api.WatchStatsRequest{
			Every: m.Every,
			OnStats: func(s api.StatsResponse) bool {
				if sc.closed {
					return false
				}
				sc.send(sc.ver, TStatsEvent, id, s)
				return !sc.closed
			},
		})
		if resp.Err == nil && resp.Stop != nil {
			sc.watches[id] = resp.Stop
		}
		sc.send(sc.ver, respOf(typ), id, WatchResp{Err: resp.Err})
	case TWatchCancel:
		if stop, ok := sc.watches[id]; ok {
			stop()
			delete(sc.watches, id)
			sc.s.WatchCancels++
		}

	default:
		// Response/event frames from a client (or future request types)
		// are violations at the server.
		sc.drop()
	}
}

// unauthorizedResp builds the request type's ordinary response struct
// carrying the refusal, so clients see the typed error through the
// verb they called.
func unauthorizedResp(typ byte, err *api.Error) any {
	switch typ {
	case TRegisterReq:
		return api.RegisterResponse{Err: err}
	case TActivateReq:
		return api.ActivateResponse{Err: err}
	case TCheckpointReq:
		return api.CheckpointResponse{Err: err}
	case TRestoreReq:
		return api.RestoreResponse{Err: err}
	case TMigrateReq:
		return api.MigrateResponse{Err: err}
	case TTransferReq:
		return api.TransferResponse{Err: err}
	case TDemoteReq:
		return api.DemoteResponse{Err: err}
	case TPromoteReq:
		return api.PromoteResponse{Err: err}
	case TStopReq:
		return api.StopResponse{Err: err}
	case TStatsReq:
		return api.StatsResponse{Err: err}
	case TWatchReq:
		return WatchResp{Err: err}
	}
	return WatchResp{Err: err}
}

// readyEvent builds an OnReady callback that ships the outcome back as
// a ReadyEvent frame tagged with the request id.
func (sc *srvConn) readyEvent(id uint32) func(error) {
	return func(err error) {
		ev := ReadyEvent{}
		if err != nil {
			if ae, ok := err.(*api.Error); ok {
				ev.Err = ae
			} else {
				ev.Err = api.Errf("ready", api.CodeUnavailable, "%v", err)
			}
		}
		sc.send(sc.ver, TReadyEvent, id, ev)
	}
}
