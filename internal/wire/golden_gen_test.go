package wire

import (
	"encoding/hex"
	"fmt"
	"os"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
)

// goldenVectors is the pinned frame set: known messages whose exact
// byte layout must never drift within protocol version 1. Regenerate
// (after a deliberate, version-bumping layout change) with
//
//	WIRE_GOLDEN_DUMP=1 go test ./internal/wire -run TestGoldenVectors -v
func goldenVectors() []struct {
	name string
	typ  byte
	id   uint32
	msg  any
} {
	return []struct {
		name string
		typ  byte
		id   uint32
		msg  any
	}{
		{"hello", THello, 1, Hello{Min: 1, Max: 1}},
		{"hello-ack", THelloAck, 1, HelloAck{Version: 1}},
		{"register-req", TRegisterReq, 2, api.RegisterRequest{
			Config: core.ServiceConfig{
				Name:  "alice.family.name",
				IP:    netstack.IPv4(10, 0, 0, 20),
				Port:  80,
				Image: unikernel.Image{Name: "alice", MemMiB: 16, BinaryMiB: 1},
				TTL:   30,
			},
			MinWarm: 2,
			Policy:  "least-loaded",
		}},
		{"activate-req", TActivateReq, 3, ActivateReq{Name: "alice.family.name", WantReady: true}},
		{"activate-resp", TActivateResp, 3, api.ActivateResponse{
			IP: netstack.IPv4(10, 0, 0, 20), Board: 1, State: core.StateRunning}},
		{"migrate-req", TMigrateReq, 4, MigrateReq{
			Name: "alice.family.name", From: api.OnBoard(1), To: api.AnyBoard, WantDone: true}},
		{"error-resp", TRegisterResp, 5, api.RegisterResponse{
			Err: api.Errf("register", api.CodeConflict, "name taken")}},
		{"watch-req", TWatchReq, 6, WatchReq{Every: 10 * time.Second}},
		{"done-event", TDoneEvent, 4, DoneEvent{OK: true}},
	}
}

// TestGoldenVectors pins the v1 frame layout bit-for-bit.
func TestGoldenVectors(t *testing.T) {
	want := map[string]string{
		"hello":         "0000000a01010000000100010001",
		"hello-ack":     "000000080102000000010001",
		"register-req":  "000000550110000000020011616c6963652e66616d696c792e6e616d650a00001400500005616c69636500000000103ff00000000000000000001e00000000000000000000000000000002000c6c656173742d6c6f61646564",
		"activate-req":  "0000001b0111000000030011616c6963652e66616d696c792e6e616d650001",
		"activate-resp": "000000100131000000030a000014000000010200",
		"migrate-req":   "000000220114000000040011616c6963652e66616d696c792e6e616d65000000020000000001",
		"error-resp":    "000000200130000000050000010008726567697374657204000a6e616d652074616b656e",
		"watch-req":     "0000000e011a0000000600000002540be400",
		"done-event":    "0000000701410000000401",
	}
	for _, v := range goldenVectors() {
		buf, err := Append(nil, v.typ, v.id, v.msg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := hex.EncodeToString(buf)
		if os.Getenv("WIRE_GOLDEN_DUMP") != "" {
			fmt.Printf("%q: %q,\n", v.name, got)
			continue
		}
		if got != want[v.name] {
			t.Errorf("%s frame drifted:\n got  %s\n want %s", v.name, got, want[v.name])
		}
	}
}
