package wire

import (
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
)

// goldenVectors is the pinned frame set: known messages whose exact
// byte layout must never drift within their protocol version. The V1
// vectors are FROZEN — v1 peers exist and any drift breaks them; the
// V2 vectors pin the extended handshake bodies and the invariant that
// post-handshake frames differ from V1 only in the header's version
// byte. Regenerate (after a deliberate, version-bumping layout
// change) with
//
//	WIRE_GOLDEN_DUMP=1 go test ./internal/wire -run TestGoldenVectors -v
func goldenVectors() []struct {
	name string
	ver  byte
	typ  byte
	id   uint32
	msg  any
} {
	return []struct {
		name string
		ver  byte
		typ  byte
		id   uint32
		msg  any
	}{
		{"hello", V1, THello, 1, Hello{Min: 1, Max: 1}},
		{"hello-ack", V1, THelloAck, 1, HelloAck{Version: 1}},
		{"register-req", V1, TRegisterReq, 2, api.RegisterRequest{
			Config: core.ServiceConfig{
				Name:  "alice.family.name",
				IP:    netstack.IPv4(10, 0, 0, 20),
				Port:  80,
				Image: unikernel.Image{Name: "alice", MemMiB: 16, BinaryMiB: 1},
				TTL:   30,
			},
			MinWarm: 2,
			Policy:  "least-loaded",
		}},
		{"activate-req", V1, TActivateReq, 3, ActivateReq{Name: "alice.family.name", WantReady: true}},
		{"activate-resp", V1, TActivateResp, 3, api.ActivateResponse{
			IP: netstack.IPv4(10, 0, 0, 20), Board: 1, State: core.StateRunning}},
		{"migrate-req", V1, TMigrateReq, 4, MigrateReq{
			Name: "alice.family.name", From: api.OnBoard(1), To: api.AnyBoard, WantDone: true}},
		{"error-resp", V1, TRegisterResp, 5, api.RegisterResponse{
			Err: api.Errf(api.VerbRegister, api.CodeConflict, "name taken")}},
		{"watch-req", V1, TWatchReq, 6, WatchReq{Every: 10 * time.Second}},
		{"done-event", V1, TDoneEvent, 4, DoneEvent{OK: true}},

		{"hello-v2", V2, THello, 1, Hello{Min: 1, Max: 2, Token: "jitsu-admin"}},
		{"hello-ack-v2", V2, THelloAck, 1, HelloAck{Version: 2, Scope: api.ScopeAdmin}},
		{"hello-ack-v2-refused", V2, THelloAck, 1, HelloAck{Version: 0,
			Err: api.Errf("hello", api.CodeUnauthorized, "unknown capability token")}},
		{"unauthorized-resp-v2", V2, TMigrateResp, 7, api.MigrateResponse{
			Err: api.Errf(api.VerbMigrate, api.CodeUnauthorized,
				"scope read-only does not cover migrate (needs admin)")}},
		{"activate-req-v2", V2, TActivateReq, 3, ActivateReq{Name: "alice.family.name", WantReady: true}},
		{"watch-req-v2", V2, TWatchReq, 6, WatchReq{Every: 10 * time.Second}},
	}
}

// TestGoldenVectors pins both protocol versions' frame layouts
// bit-for-bit.
func TestGoldenVectors(t *testing.T) {
	want := map[string]string{
		"hello":         "0000000a01010000000100010001",
		"hello-ack":     "000000080102000000010001",
		"register-req":  "000000550110000000020011616c6963652e66616d696c792e6e616d650a00001400500005616c69636500000000103ff00000000000000000001e00000000000000000000000000000002000c6c656173742d6c6f61646564",
		"activate-req":  "0000001b0111000000030011616c6963652e66616d696c792e6e616d650001",
		"activate-resp": "000000100131000000030a000014000000010200",
		"migrate-req":   "000000220114000000040011616c6963652e66616d696c792e6e616d65000000020000000001",
		"error-resp":    "000000200130000000050000010008726567697374657204000a6e616d652074616b656e",
		"watch-req":     "0000000e011a0000000600000002540be400",
		"done-event":    "0000000701410000000401",

		"hello-v2":             "0000001702010000000100010002000b6a697473752d61646d696e",
		"hello-ack-v2":         "0000000a02020000000100020300",
		"hello-ack-v2-refused": "0000002c02020000000100000001000568656c6c6f070018756e6b6e6f776e206361706162696c69747920746f6b656e",
		"unauthorized-resp-v2": "00000048023400000007000100076d69677261746507003473636f706520726561642d6f6e6c7920646f6573206e6f7420636f766572206d69677261746520286e656564732061646d696e29",
		"activate-req-v2":      "0000001b0211000000030011616c6963652e66616d696c792e6e616d650001",
		"watch-req-v2":         "0000000e021a0000000600000002540be400",
	}
	for _, v := range goldenVectors() {
		buf, err := Append(nil, v.ver, v.typ, v.id, v.msg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := hex.EncodeToString(buf)
		if os.Getenv("WIRE_GOLDEN_DUMP") != "" {
			fmt.Printf("%q: %q,\n", v.name, got)
			continue
		}
		if got != strings.ReplaceAll(want[v.name], " ", "") {
			t.Errorf("%s frame drifted:\n got  %s\n want %s", v.name, got, want[v.name])
		}
	}

	// The v2 invariant the vectors encode: a post-handshake frame is
	// byte-identical across versions except for the header's version
	// byte.
	for _, pair := range [][2]string{{"activate-req", "activate-req-v2"}, {"watch-req", "watch-req-v2"}} {
		v1b := strings.ReplaceAll(want[pair[0]], " ", "")
		v2b := strings.ReplaceAll(want[pair[1]], " ", "")
		if os.Getenv("WIRE_GOLDEN_DUMP") != "" {
			continue
		}
		if len(v1b) != len(v2b) || v1b[:8] != v2b[:8] || v1b[10:] != v2b[10:] ||
			v1b[8:10] != "01" || v2b[8:10] != "02" {
			t.Errorf("%s vs %s: versions must differ only in the version byte:\n v1 %s\n v2 %s",
				pair[0], pair[1], v1b, v2b)
		}
	}
}
