package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// allMessages is one representative message per frame type, with every
// field populated — the round-trip matrix.
func allMessages() []struct {
	typ byte
	msg any
} {
	cfg := core.ServiceConfig{
		Name:        "bob.family.name",
		IP:          netstack.IPv4(10, 0, 0, 21),
		Port:        443,
		Image:       unikernel.Image{Name: "bob", Kind: xen.GuestLinux, MemMiB: 64, BinaryMiB: 20.5},
		TTL:         120,
		IdleTimeout: 45 * time.Second,
		StateMiB:    12,
	}
	cp := &core.Checkpoint{
		Image:    unikernel.Image{Name: "bob", MemMiB: 16, BinaryMiB: 1},
		StateMiB: 4,
	}
	stats := api.StatsResponse{
		Services: []api.ServiceStats{{
			Name: "bob.family.name", State: core.StateRunning,
			Launches: 3, ColdStarts: 1, Handoffs: 2, ServFails: 1,
			Reaps: 1, Restores: 2, DiskRestores: 1, Demotions: 1,
		}},
		Triggers: []api.TriggerStats{{Name: "dns", Fired: 9}},
		Registries: []obs.Snapshot{{
			Name:     "cluster",
			Counters: []obs.CounterSnap{{Name: "sched.placed", Value: 7}},
			Gauges:   []obs.GaugeSnap{{Name: "members.alive", Value: 3}},
			Hists: []obs.HistSnap{{
				Name: "deleg.rtt", Count: 2, Sum: 3 * time.Millisecond,
				Max: 2 * time.Millisecond, Buckets: []uint64{0, 1, 1},
			}},
		}},
	}
	return []struct {
		typ byte
		msg any
	}{
		// Version-neutral handshake bodies: the V2-only fields are left
		// zero so the same message round-trips under either framing.
		{THello, Hello{Min: 1, Max: 3}},
		{THelloAck, HelloAck{Version: 1}},
		{TRegisterReq, api.RegisterRequest{Config: cfg, MinWarm: 2, Policy: "round-robin"}},
		{TActivateReq, ActivateReq{Name: "bob.family.name", Speculative: true, WantReady: true}},
		{TCheckpointReq, api.CheckpointRequest{Name: "bob.family.name", Board: api.OnBoard(2)}},
		{TRestoreReq, RestoreReq{Name: "bob.family.name", Checkpoint: cp,
			Board: api.OnBoard(1), ToDisk: true, WantReady: true}},
		{TMigrateReq, MigrateReq{Name: "bob.family.name", From: api.OnBoard(0),
			To: api.OnBoard(2), WantDone: true}},
		{TTransferReq, TransferReq{Config: cfg, MinWarm: 1, Policy: "first-fit",
			Checkpoint: cp, ToDisk: true, WantReady: true}},
		{TDemoteReq, api.DemoteRequest{Name: "bob.family.name", Board: api.AnyBoard}},
		{TPromoteReq, PromoteReq{Name: "bob.family.name", Board: api.OnBoard(1), WantReady: true}},
		{TStopReq, api.StopRequest{Name: "bob.family.name"}},
		{TStatsReq, api.StatsRequest{}},
		{TWatchReq, WatchReq{Every: 500 * time.Millisecond}},
		{TWatchCancel, struct{}{}},

		{TRegisterResp, api.RegisterResponse{Name: "bob.family.name"}},
		{TActivateResp, api.ActivateResponse{IP: netstack.IPv4(10, 0, 0, 21),
			Board: 2, State: core.StateWarmMemory}},
		{TCheckpointResp, api.CheckpointResponse{Checkpoint: cp, Board: 1}},
		{TRestoreResp, api.RestoreResponse{}},
		{TMigrateResp, api.MigrateResponse{Started: true}},
		{TTransferResp, api.TransferResponse{Board: -1}},
		{TDemoteResp, api.DemoteResponse{Demoted: 2}},
		{TPromoteResp, api.PromoteResponse{Board: 0}},
		{TStopResp, api.StopResponse{Stopped: 3}},
		{TStatsResp, stats},
		{TWatchResp, WatchResp{}},

		{TReadyEvent, ReadyEvent{Err: api.Errf(api.VerbActivate, api.CodeNoMemory, "image does not fit")}},
		{TDoneEvent, DoneEvent{OK: false}},
		{TStatsEvent, stats},
	}
}

// TestRoundTripAllVerbs encodes and re-decodes one fully-populated
// message per frame type, under both protocol framings.
func TestRoundTripAllVerbs(t *testing.T) {
	for _, ver := range []byte{V1, V2} {
		for _, m := range allMessages() {
			buf, err := Append(nil, ver, m.typ, 42, m.msg)
			if err != nil {
				t.Fatalf("v%d type 0x%02x: encode: %v", ver, m.typ, err)
			}
			gotVer, typ, id, got, n, err := Decode(buf)
			if err != nil {
				t.Fatalf("v%d type 0x%02x: decode: %v", ver, m.typ, err)
			}
			if gotVer != ver || typ != m.typ || id != 42 || n != len(buf) {
				t.Fatalf("v%d type 0x%02x: got ver=%d typ=0x%02x id=%d n=%d (len %d)",
					ver, m.typ, gotVer, typ, id, n, len(buf))
			}
			want := m.msg
			if m.typ == TStatsReq {
				want = api.StatsRequest{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("v%d type 0x%02x round trip:\n got  %#v\n want %#v", ver, m.typ, got, want)
			}
		}
	}
}

// TestRoundTripV2Handshake covers the fields only V2 framing carries:
// the Hello token and the HelloAck scope/refusal — and pins the V1
// downgrade semantics: a V1-framed Hello elides the token entirely.
func TestRoundTripV2Handshake(t *testing.T) {
	cases := []struct {
		typ byte
		msg any
	}{
		{THello, Hello{Min: 1, Max: 2, Token: "jitsu-ops"}},
		{THelloAck, HelloAck{Version: 2, Scope: api.ScopeOperator}},
		{THelloAck, HelloAck{Version: 0, Scope: api.ScopeNone,
			Err: api.Errf("hello", api.CodeUnauthorized, "unknown capability token")}},
	}
	for _, m := range cases {
		buf, err := Append(nil, V2, m.typ, 1, m.msg)
		if err != nil {
			t.Fatalf("type 0x%02x: %v", m.typ, err)
		}
		_, _, _, got, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("type 0x%02x: %v", m.typ, err)
		}
		if !reflect.DeepEqual(got, m.msg) {
			t.Errorf("type 0x%02x v2 round trip:\n got  %#v\n want %#v", m.typ, got, m.msg)
		}
	}

	// Downgrade: the same Hello framed at V1 drops the token on the
	// floor — the wire never carries it.
	buf, err := Append(nil, V1, THello, 1, Hello{Min: 1, Max: 2, Token: "jitsu-ops"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.(Hello); h.Token != "" || h.Min != 1 || h.Max != 2 {
		t.Errorf("v1-framed hello carried a token: %#v", h)
	}
}

// TestRoundTripVerbByCode is the full verb × code matrix: every
// ControlPlane verb's response frame carries every typed error code
// (including CodeUnauthorized) across the wire intact, under both
// framings.
func TestRoundTripVerbByCode(t *testing.T) {
	// Each verb's response carrier: how to wrap an error into the
	// verb's own response struct and how to unwrap it after decode.
	carriers := map[string]struct {
		typ  byte
		wrap func(*api.Error) any
		err  func(any) *api.Error
	}{
		api.VerbRegister: {TRegisterResp,
			func(e *api.Error) any { return api.RegisterResponse{Err: e} },
			func(m any) *api.Error { return m.(api.RegisterResponse).Err }},
		api.VerbActivate: {TActivateResp,
			func(e *api.Error) any { return api.ActivateResponse{Err: e} },
			func(m any) *api.Error { return m.(api.ActivateResponse).Err }},
		api.VerbCheckpoint: {TCheckpointResp,
			func(e *api.Error) any { return api.CheckpointResponse{Err: e} },
			func(m any) *api.Error { return m.(api.CheckpointResponse).Err }},
		api.VerbRestore: {TRestoreResp,
			func(e *api.Error) any { return api.RestoreResponse{Err: e} },
			func(m any) *api.Error { return m.(api.RestoreResponse).Err }},
		api.VerbMigrate: {TMigrateResp,
			func(e *api.Error) any { return api.MigrateResponse{Err: e} },
			func(m any) *api.Error { return m.(api.MigrateResponse).Err }},
		api.VerbTransfer: {TTransferResp,
			func(e *api.Error) any { return api.TransferResponse{Err: e} },
			func(m any) *api.Error { return m.(api.TransferResponse).Err }},
		api.VerbDemote: {TDemoteResp,
			func(e *api.Error) any { return api.DemoteResponse{Err: e} },
			func(m any) *api.Error { return m.(api.DemoteResponse).Err }},
		api.VerbPromote: {TPromoteResp,
			func(e *api.Error) any { return api.PromoteResponse{Err: e} },
			func(m any) *api.Error { return m.(api.PromoteResponse).Err }},
		api.VerbStop: {TStopResp,
			func(e *api.Error) any { return api.StopResponse{Err: e} },
			func(m any) *api.Error { return m.(api.StopResponse).Err }},
		api.VerbStats: {TStatsResp,
			func(e *api.Error) any { return api.StatsResponse{Err: e} },
			func(m any) *api.Error { return m.(api.StatsResponse).Err }},
		api.VerbWatchStats: {TWatchResp,
			func(e *api.Error) any { return WatchResp{Err: e} },
			func(m any) *api.Error { return m.(WatchResp).Err }},
	}
	if len(carriers) != len(api.Verbs()) {
		t.Fatalf("carrier table covers %d verbs, api declares %d", len(carriers), len(api.Verbs()))
	}
	for _, verb := range api.Verbs() {
		car, ok := carriers[verb]
		if !ok {
			t.Fatalf("no response carrier for verb %q", verb)
		}
		for _, code := range api.Codes() {
			for _, ver := range []byte{V1, V2} {
				in := api.Errf(verb, code, "detail for %s", code)
				buf, err := Append(nil, ver, car.typ, 7, car.wrap(in))
				if err != nil {
					t.Fatalf("%s/%s v%d: %v", verb, code, ver, err)
				}
				_, _, _, got, _, err := Decode(buf)
				if err != nil {
					t.Fatalf("%s/%s v%d: %v", verb, code, ver, err)
				}
				out := car.err(got)
				if out == nil || out.Code != code || out.Op != verb ||
					out.Detail != in.Detail {
					t.Errorf("%s/%s v%d did not survive: %#v", verb, code, ver, out)
				}
			}
		}
	}
}

// TestDecodeRejections: every malformed input is refused with the
// right sentinel, and truncation at any byte is resumable (ErrShort),
// never a misparse.
func TestDecodeRejections(t *testing.T) {
	valid, err := Append(nil, V1, TStopReq, 9, api.StopRequest{Name: "alice.family.name"})
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(valid); cut++ {
		if _, _, _, _, _, err := Decode(valid[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("truncation at %d/%d: got %v, want ErrShort", cut, len(valid), err)
		}
	}

	oversize := append([]byte(nil), valid...)
	oversize[0], oversize[1], oversize[2], oversize[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, _, _, err := Decode(oversize); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize length: got %v, want ErrFrameTooBig", err)
	}

	shortHdr := append([]byte(nil), valid...)
	shortHdr[3] = 2 // length 2 cannot even hold ver+typ+id
	if _, _, _, _, _, err := Decode(shortHdr); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("sub-header length: got %v, want ErrBadFrame", err)
	}

	badVer := append([]byte(nil), valid...)
	badVer[4] = 99
	if _, _, _, _, _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("unknown version: got %v, want ErrBadVersion", err)
	}

	badType := append([]byte(nil), valid...)
	badType[5] = 0xEE
	if _, _, _, _, _, err := Decode(badType); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}

	// Body one byte short of its announced string length.
	clipped := append([]byte(nil), valid[:len(valid)-1]...)
	clipped[3] -= 1
	if _, _, _, _, _, err := Decode(clipped); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("clipped body: got %v, want ErrBadFrame", err)
	}

	// Trailing garbage inside the announced frame length.
	padded, err := Append(nil, V1, TStopReq, 9, api.StopRequest{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	padded = append(padded, 0x00)
	padded[3] += 1
	if _, _, _, _, _, err := Decode(padded); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("padded body: got %v, want ErrBadFrame", err)
	}

	// A V1 Hello rebadged as V2 announces a token its body doesn't
	// carry — strict decode refuses it rather than inventing one.
	hello, err := Append(nil, V1, THello, 1, Hello{Min: 1, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	hello[4] = V2
	if _, _, _, _, _, err := Decode(hello); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("v1 hello rebadged v2: got %v, want ErrBadFrame", err)
	}

	// And a V2 Hello rebadged as V1 leaves the token bytes trailing.
	hello2, err := Append(nil, V2, THello, 1, Hello{Min: 1, Max: 2, Token: "jitsu-ops"})
	if err != nil {
		t.Fatal(err)
	}
	hello2[4] = V1
	if _, _, _, _, _, err := Decode(hello2); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("v2 hello rebadged v1: got %v, want ErrBadFrame", err)
	}
}

// TestEncodeRejections: unencodable messages fail loudly.
func TestEncodeRejections(t *testing.T) {
	if _, err := Append(nil, V1, 0xEE, 1, nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}
	long := make([]byte, 1<<17)
	if _, err := Append(nil, V1, TStopReq, 1, api.StopRequest{Name: string(long)}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong string: got %v, want ErrBadFrame", err)
	}
	for _, ver := range []byte{0, MaxVersion + 1, 99} {
		if _, err := Append(nil, ver, TStopReq, 1, api.StopRequest{Name: "a"}); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("frame version %d: got %v, want ErrBadVersion", ver, err)
		}
	}
}
