package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/core"
	"jitsu/internal/netstack"
	"jitsu/internal/obs"
	"jitsu/internal/unikernel"
	"jitsu/internal/xen"
)

// allMessages is one representative message per frame type, with every
// field populated — the round-trip matrix.
func allMessages() []struct {
	typ byte
	msg any
} {
	cfg := core.ServiceConfig{
		Name:        "bob.family.name",
		IP:          netstack.IPv4(10, 0, 0, 21),
		Port:        443,
		Image:       unikernel.Image{Name: "bob", Kind: xen.GuestLinux, MemMiB: 64, BinaryMiB: 20.5},
		TTL:         120,
		IdleTimeout: 45 * time.Second,
		StateMiB:    12,
	}
	cp := &core.Checkpoint{
		Image:    unikernel.Image{Name: "bob", MemMiB: 16, BinaryMiB: 1},
		StateMiB: 4,
	}
	stats := api.StatsResponse{
		Services: []api.ServiceStats{{
			Name: "bob.family.name", State: core.StateRunning,
			Launches: 3, ColdStarts: 1, Handoffs: 2, ServFails: 1,
			Reaps: 1, Restores: 2, DiskRestores: 1, Demotions: 1,
		}},
		Triggers: []api.TriggerStats{{Name: "dns", Fired: 9}},
		Registries: []obs.Snapshot{{
			Name:     "cluster",
			Counters: []obs.CounterSnap{{Name: "sched.placed", Value: 7}},
			Gauges:   []obs.GaugeSnap{{Name: "members.alive", Value: 3}},
			Hists: []obs.HistSnap{{
				Name: "deleg.rtt", Count: 2, Sum: 3 * time.Millisecond,
				Max: 2 * time.Millisecond, Buckets: []uint64{0, 1, 1},
			}},
		}},
	}
	return []struct {
		typ byte
		msg any
	}{
		{THello, Hello{Min: 1, Max: 3}},
		{THelloAck, HelloAck{Version: 1}},
		{TRegisterReq, api.RegisterRequest{Config: cfg, MinWarm: 2, Policy: "round-robin"}},
		{TActivateReq, ActivateReq{Name: "bob.family.name", Speculative: true, WantReady: true}},
		{TCheckpointReq, api.CheckpointRequest{Name: "bob.family.name", Board: api.OnBoard(2)}},
		{TRestoreReq, RestoreReq{Name: "bob.family.name", Checkpoint: cp,
			Board: api.OnBoard(1), ToDisk: true, WantReady: true}},
		{TMigrateReq, MigrateReq{Name: "bob.family.name", From: api.OnBoard(0),
			To: api.OnBoard(2), WantDone: true}},
		{TTransferReq, TransferReq{Config: cfg, MinWarm: 1, Policy: "first-fit",
			Checkpoint: cp, ToDisk: true, WantReady: true}},
		{TDemoteReq, api.DemoteRequest{Name: "bob.family.name", Board: api.AnyBoard}},
		{TPromoteReq, PromoteReq{Name: "bob.family.name", Board: api.OnBoard(1), WantReady: true}},
		{TStopReq, api.StopRequest{Name: "bob.family.name"}},
		{TStatsReq, api.StatsRequest{}},
		{TWatchReq, WatchReq{Every: 500 * time.Millisecond}},
		{TWatchCancel, struct{}{}},

		{TRegisterResp, api.RegisterResponse{Name: "bob.family.name"}},
		{TActivateResp, api.ActivateResponse{IP: netstack.IPv4(10, 0, 0, 21),
			Board: 2, State: core.StateWarmMemory}},
		{TCheckpointResp, api.CheckpointResponse{Checkpoint: cp, Board: 1}},
		{TRestoreResp, api.RestoreResponse{}},
		{TMigrateResp, api.MigrateResponse{Started: true}},
		{TTransferResp, api.TransferResponse{Board: -1}},
		{TDemoteResp, api.DemoteResponse{Demoted: 2}},
		{TPromoteResp, api.PromoteResponse{Board: 0}},
		{TStopResp, api.StopResponse{Stopped: 3}},
		{TStatsResp, stats},
		{TWatchResp, WatchResp{}},

		{TReadyEvent, ReadyEvent{Err: api.Errf("activate", api.CodeNoMemory, "image does not fit")}},
		{TDoneEvent, DoneEvent{OK: false}},
		{TStatsEvent, stats},
	}
}

// TestRoundTripAllVerbs encodes and re-decodes one fully-populated
// message per frame type.
func TestRoundTripAllVerbs(t *testing.T) {
	for _, m := range allMessages() {
		buf, err := Append(nil, m.typ, 42, m.msg)
		if err != nil {
			t.Fatalf("type 0x%02x: encode: %v", m.typ, err)
		}
		typ, id, got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("type 0x%02x: decode: %v", m.typ, err)
		}
		if typ != m.typ || id != 42 || n != len(buf) {
			t.Fatalf("type 0x%02x: got typ=0x%02x id=%d n=%d (len %d)", m.typ, typ, id, n, len(buf))
		}
		want := m.msg
		if m.typ == TStatsReq {
			want = api.StatsRequest{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("type 0x%02x round trip:\n got  %#v\n want %#v", m.typ, got, want)
		}
	}
}

// TestRoundTripErrorCodes runs every typed error code through a
// response frame.
func TestRoundTripErrorCodes(t *testing.T) {
	codes := []api.Code{api.CodeBadRequest, api.CodeNotFound, api.CodeNoMemory,
		api.CodeConflict, api.CodeUnavailable, api.CodeMoved}
	for _, code := range codes {
		in := api.RegisterResponse{Err: api.Errf("register", code, "detail for %s", code)}
		buf, err := Append(nil, TRegisterResp, 7, in)
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		_, _, got, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		out := got.(api.RegisterResponse)
		if out.Err == nil || out.Err.Code != code || out.Err.Op != "register" ||
			out.Err.Detail != in.Err.Detail {
			t.Errorf("%s did not survive: %#v", code, out.Err)
		}
	}
}

// TestDecodeRejections: every malformed input is refused with the
// right sentinel, and truncation at any byte is resumable (ErrShort),
// never a misparse.
func TestDecodeRejections(t *testing.T) {
	valid, err := Append(nil, TStopReq, 9, api.StopRequest{Name: "alice.family.name"})
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(valid); cut++ {
		if _, _, _, _, err := Decode(valid[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("truncation at %d/%d: got %v, want ErrShort", cut, len(valid), err)
		}
	}

	oversize := append([]byte(nil), valid...)
	oversize[0], oversize[1], oversize[2], oversize[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, _, err := Decode(oversize); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize length: got %v, want ErrFrameTooBig", err)
	}

	shortHdr := append([]byte(nil), valid...)
	shortHdr[3] = 2 // length 2 cannot even hold ver+typ+id
	if _, _, _, _, err := Decode(shortHdr); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("sub-header length: got %v, want ErrBadFrame", err)
	}

	badVer := append([]byte(nil), valid...)
	badVer[4] = 99
	if _, _, _, _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("unknown version: got %v, want ErrBadVersion", err)
	}

	badType := append([]byte(nil), valid...)
	badType[5] = 0xEE
	if _, _, _, _, err := Decode(badType); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}

	// Body one byte short of its announced string length.
	clipped := append([]byte(nil), valid[:len(valid)-1]...)
	clipped[3] -= 1
	if _, _, _, _, err := Decode(clipped); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("clipped body: got %v, want ErrBadFrame", err)
	}

	// Trailing garbage inside the announced frame length.
	padded, err := Append(nil, TStopReq, 9, api.StopRequest{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	padded = append(padded, 0x00)
	padded[3] += 1
	if _, _, _, _, err := Decode(padded); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("padded body: got %v, want ErrBadFrame", err)
	}

	// Unknown-version rejection must win even for a Hello — the only
	// frame a pre-negotiation peer may send.
	hello, err := Append(nil, THello, 1, Hello{Min: 1, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	hello[4] = 2
	if _, _, _, _, err := Decode(hello); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("hello with v2 header: got %v, want ErrBadVersion", err)
	}
}

// TestEncodeRejections: unencodable messages fail loudly.
func TestEncodeRejections(t *testing.T) {
	if _, err := Append(nil, 0xEE, 1, nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}
	long := make([]byte, 1<<17)
	if _, err := Append(nil, TStopReq, 1, api.StopRequest{Name: string(long)}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong string: got %v, want ErrBadFrame", err)
	}
}
