package wire

import (
	"bytes"
	"testing"

	"jitsu/internal/api"
)

// FuzzWireCodec feeds arbitrary bytes to the frame decoder: it must
// never panic, and whatever it accepts must survive a canonical
// re-encode / re-decode round trip — the re-encoded frame is a fixed
// point (encode∘decode on it is byte-identity). The comparison is on
// bytes, not decoded structs: inputs may be non-canonical (a bool byte
// of 2) and may carry NaN floats, which compare unequal to themselves
// while still round-tripping bit-exactly.
func FuzzWireCodec(f *testing.F) {
	for _, m := range allMessages() {
		buf, err := Append(nil, m.typ, 77, m.msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	bad, _ := Append(nil, TStopReq, 9, api.StopRequest{Name: "alice"})
	f.Add(bad[:len(bad)-2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, id, msg, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		reenc, err := Append(nil, typ, id, msg)
		if err != nil {
			t.Fatalf("decoded frame type 0x%02x failed to re-encode: %v", typ, err)
		}
		typ2, id2, msg2, _, err := Decode(reenc)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if typ2 != typ || id2 != id {
			t.Fatalf("round trip moved the header: 0x%02x/%d vs 0x%02x/%d", typ, id, typ2, id2)
		}
		reenc2, err := Append(nil, typ2, id2, msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(reenc, reenc2) {
			t.Fatalf("canonical form is not a fixed point for type 0x%02x:\n%x\nvs\n%x", typ, reenc, reenc2)
		}
	})
}
