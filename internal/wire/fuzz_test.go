package wire

import (
	"bytes"
	"testing"

	"jitsu/internal/api"
)

// FuzzWireCodec feeds arbitrary bytes to the frame decoder: it must
// never panic, and whatever it accepts must survive a canonical
// re-encode / re-decode round trip — the re-encoded frame is a fixed
// point (encode∘decode on it is byte-identity). Both protocol
// framings are seeded and exercised: the re-encode always uses the
// version the decoder reported, so V1 and V2 canonical forms are each
// fixed points of their own framing. The comparison is on bytes, not
// decoded structs: inputs may be non-canonical (a bool byte of 2) and
// may carry NaN floats, which compare unequal to themselves while
// still round-tripping bit-exactly.
func FuzzWireCodec(f *testing.F) {
	for _, ver := range []byte{V1, V2} {
		for _, m := range allMessages() {
			buf, err := Append(nil, ver, m.typ, 77, m.msg)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(buf)
		}
	}
	// The V2-only handshake bodies: token, scope, refusal error.
	v2hello, _ := Append(nil, V2, THello, 1, Hello{Min: 1, Max: 2, Token: "jitsu-admin"})
	f.Add(v2hello)
	v2ack, _ := Append(nil, V2, THelloAck, 1, HelloAck{Version: 2, Scope: api.ScopeOperator})
	f.Add(v2ack)
	v2refusal, _ := Append(nil, V2, THelloAck, 1, HelloAck{Version: 0,
		Err: api.Errf("hello", api.CodeUnauthorized, "unknown capability token")})
	f.Add(v2refusal)
	bad, _ := Append(nil, V1, TStopReq, 9, api.StopRequest{Name: "alice"})
	f.Add(bad[:len(bad)-2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ver, typ, id, msg, n, err := Decode(data)
		if err != nil {
			return
		}
		if ver < MinVersion || ver > MaxVersion {
			t.Fatalf("accepted frame version %d outside [%d,%d]", ver, MinVersion, MaxVersion)
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		reenc, err := Append(nil, ver, typ, id, msg)
		if err != nil {
			t.Fatalf("decoded v%d frame type 0x%02x failed to re-encode: %v", ver, typ, err)
		}
		ver2, typ2, id2, msg2, _, err := Decode(reenc)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if ver2 != ver || typ2 != typ || id2 != id {
			t.Fatalf("round trip moved the header: v%d 0x%02x/%d vs v%d 0x%02x/%d",
				ver, typ, id, ver2, typ2, id2)
		}
		reenc2, err := Append(nil, ver2, typ2, id2, msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(reenc, reenc2) {
			t.Fatalf("canonical form is not a fixed point for v%d type 0x%02x:\n%x\nvs\n%x", ver, typ, reenc, reenc2)
		}
	})
}
