package wire_test

import (
	"errors"
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/blockdev"
	"jitsu/internal/cluster"
	"jitsu/internal/core"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
	"jitsu/internal/wire"
	"jitsu/internal/xen"
)

const (
	wirePort = wire.DefaultPort

	tokAdmin = "jitsu-admin"
	tokOps   = "jitsu-ops"
	tokRO    = "jitsu-ro"
)

var serverIP = netstack.IPv4(10, 255, 0, 10)

func testKeyring() map[string]api.Scope {
	return map[string]api.Scope{
		tokAdmin: api.ScopeAdmin,
		tokOps:   api.ScopeOperator,
		tokRO:    api.ScopeReadOnly,
	}
}

func staticApps(name string, _ xen.GuestKind) unikernel.App {
	return unikernel.NewStaticSiteApp(name)
}

// wiredCluster builds a disk-tiered cluster serving its control plane
// over the wire with the test keyring; anonymous sessions are refused.
func wiredCluster(t *testing.T, seed int64) (*cluster.Cluster, *wire.Server) {
	t.Helper()
	c := cluster.NewCluster(
		cluster.WithBoards(3),
		cluster.WithSeed(seed),
		cluster.WithBoardOptions(core.WithDisk(blockdev.DefaultConfig())),
	)
	srv, err := c.ServeWire(cluster.WireConfig{
		Apps:    staticApps,
		Keyring: testKeyring(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

// dialOp attaches a fresh operator console to the management bridge
// and opens a session with the given token.
func dialOp(t *testing.T, c *cluster.Cluster, name string, octet byte, token string) *wire.Client {
	t.Helper()
	console := c.AttachMgmtHost(name, octet)
	cl, err := wire.DialSession(c.Eng(), console, serverIP, wirePort,
		wire.SessionConfig{Token: token})
	if err != nil {
		t.Fatalf("dial %s: %v", name, err)
	}
	return cl
}

// TestRemoteSessionDrivesCluster walks a full admin session over the
// wire: register, activate (remote OnReady), stats, demote, promote,
// migrate (remote OnDone), stop — every response carried as frames
// across the simulated management network.
func TestRemoteSessionDrivesCluster(t *testing.T) {
	c, srv := wiredCluster(t, 1)
	cl := dialOp(t, c, "console", 200, tokAdmin)
	if cl.Version() != wire.V2 {
		t.Fatalf("negotiated version %d, want %d", cl.Version(), wire.V2)
	}
	if cl.Scope() != api.ScopeAdmin {
		t.Fatalf("granted scope %s, want admin", cl.Scope())
	}
	zone := c.Cfg.Board.Zone
	name := "alice." + zone

	reg := cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}})
	if reg.Err != nil || reg.Name != name {
		t.Fatalf("register: %v %q", reg.Err, reg.Name)
	}

	// Registering the same name again must carry the typed conflict
	// back across the wire.
	if dup := cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}}); dup.Err == nil || dup.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate register: %v, want CodeConflict", dup.Err)
	}
	if miss := cl.Activate(api.ActivateRequest{Name: "ghost." + zone}); miss.Err == nil || miss.Err.Code != api.CodeNotFound {
		t.Fatalf("activate unknown: %v, want CodeNotFound", miss.Err)
	}

	readyErr := error(api.Errf("x", api.CodeUnavailable, "never fired"))
	readyFired := false
	act := cl.Activate(api.ActivateRequest{Name: name, OnReady: func(err error) {
		readyFired, readyErr = true, err
	}})
	if act.Err != nil {
		t.Fatalf("activate: %v", act.Err)
	}
	c.Eng().RunFor(5 * time.Second)
	if !readyFired || readyErr != nil {
		t.Fatalf("remote OnReady: fired=%v err=%v", readyFired, readyErr)
	}

	stats := cl.Stats(api.StatsRequest{})
	if stats.Err != nil || len(stats.Services) != 1 || stats.Services[0].Name != name {
		t.Fatalf("stats: %v %+v", stats.Err, stats.Services)
	}
	if stats.Services[0].Launches != 1 || len(stats.Registries) == 0 {
		t.Fatalf("stats content: launches=%d registries=%d",
			stats.Services[0].Launches, len(stats.Registries))
	}

	dem := cl.Demote(api.DemoteRequest{Name: name, Board: api.OnBoard(act.Board)})
	if dem.Err != nil || dem.Demoted != 1 {
		t.Fatalf("demote: %v demoted=%d", dem.Err, dem.Demoted)
	}
	c.Eng().RunFor(2 * time.Second)

	promoted := false
	pro := cl.Promote(api.PromoteRequest{Name: name, OnReady: func(err error) {
		if err == nil {
			promoted = true
		}
	}})
	if pro.Err != nil || pro.Board != act.Board {
		t.Fatalf("promote: %v board=%d want %d", pro.Err, pro.Board, act.Board)
	}
	c.Eng().RunFor(5 * time.Second)
	if !promoted {
		t.Fatal("remote promote OnReady never fired")
	}

	migrated, migrateOK := false, false
	mig := cl.Migrate(api.MigrateRequest{Name: name, From: api.OnBoard(act.Board),
		OnDone: func(ok bool) { migrated, migrateOK = true, ok }})
	if mig.Err != nil || !mig.Started {
		t.Fatalf("migrate: %v started=%v", mig.Err, mig.Started)
	}
	c.Eng().RunFor(20 * time.Second)
	if !migrated || !migrateOK {
		t.Fatalf("remote OnDone: fired=%v ok=%v", migrated, migrateOK)
	}
	if c.Migrations != 1 || c.Chunks == 0 {
		t.Fatalf("migrations=%d chunks=%d — the CC-paced mover should have run", c.Migrations, c.Chunks)
	}

	stop := cl.Stop(api.StopRequest{Name: name})
	if stop.Err != nil || stop.Stopped == 0 {
		t.Fatalf("stop: %v stopped=%d", stop.Err, stop.Stopped)
	}
	if srv.Conns != 1 || srv.ProtoErrs != 0 || srv.Unauthorized != 0 {
		t.Fatalf("server saw conns=%d protoerrs=%d unauthorized=%d",
			srv.Conns, srv.ProtoErrs, srv.Unauthorized)
	}
}

// TestRemoteWatchStatsStream subscribes over the wire, collects three
// snapshots at the deployment's virtual-time cadence, then ends the
// stream from the OnStats return value — the client must cancel
// upstream and no further snapshots may arrive.
func TestRemoteWatchStatsStream(t *testing.T) {
	c, _ := wiredCluster(t, 1)
	cl := dialOp(t, c, "console", 200, tokRO)

	if bad := cl.WatchStats(api.WatchStatsRequest{Every: -time.Second,
		OnStats: func(api.StatsResponse) bool { return true }}); bad.Err == nil ||
		bad.Err.Code != api.CodeBadRequest {
		t.Fatalf("negative period: %v, want CodeBadRequest", bad.Err)
	}

	snaps := 0
	resp := cl.WatchStats(api.WatchStatsRequest{Every: time.Second,
		OnStats: func(s api.StatsResponse) bool {
			if s.Err != nil {
				t.Fatalf("stream snapshot error: %v", s.Err)
			}
			snaps++
			return snaps < 3
		}})
	if resp.Err != nil {
		t.Fatalf("watch-stats: %v", resp.Err)
	}
	c.Eng().RunFor(10 * time.Second)
	if snaps != 3 {
		t.Fatalf("snapshots = %d, want exactly 3 (stream must stop)", snaps)
	}
}

// TestFailedVerbsDropCallbackRegistrations: a verb that comes back
// with an application error will never be followed by its Ready/Done
// event, so the client must drop the registration instead of holding
// it for the connection's lifetime.
func TestFailedVerbsDropCallbackRegistrations(t *testing.T) {
	c, _ := wiredCluster(t, 1)
	cl := dialOp(t, c, "console", 200, tokAdmin)
	zone := c.Cfg.Board.Zone
	ghost := "ghost." + zone

	fired := false
	if resp := cl.Activate(api.ActivateRequest{Name: ghost,
		OnReady: func(error) { fired = true }}); resp.Err == nil {
		t.Fatal("activate unknown succeeded")
	}
	if resp := cl.Promote(api.PromoteRequest{Name: ghost,
		OnReady: func(error) { fired = true }}); resp.Err == nil {
		t.Fatal("promote unknown succeeded")
	}
	if resp := cl.Migrate(api.MigrateRequest{Name: ghost,
		OnDone: func(bool) { fired = true }}); resp.Err == nil {
		t.Fatal("migrate unknown succeeded")
	}
	c.Eng().RunFor(2 * time.Second)
	if fired {
		t.Fatal("a failed verb fired its callback")
	}
	if n := cl.Pending(); n != 0 {
		t.Fatalf("pending callback registrations = %d, want 0", n)
	}
}

// TestScopedVerbRefusals: a session's out-of-scope verbs come back
// CodeUnauthorized through the verb's own response — and the session
// keeps working afterwards. The ladder is checked at every rung.
func TestScopedVerbRefusals(t *testing.T) {
	c, srv := wiredCluster(t, 1)
	zone := c.Cfg.Board.Zone
	name := "alice." + zone

	admin := dialOp(t, c, "admin", 200, tokAdmin)
	ops := dialOp(t, c, "ops", 201, tokOps)
	ro := dialOp(t, c, "viewer", 202, tokRO)
	if ops.Scope() != api.ScopeOperator || ro.Scope() != api.ScopeReadOnly {
		t.Fatalf("granted scopes: ops=%s ro=%s", ops.Scope(), ro.Scope())
	}

	if reg := admin.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}}); reg.Err != nil {
		t.Fatalf("admin register: %v", reg.Err)
	}

	// read-only: observation allowed, lifecycle and reshaping refused.
	if s := ro.Stats(api.StatsRequest{}); s.Err != nil {
		t.Fatalf("ro stats: %v", s.Err)
	}
	if a := ro.Activate(api.ActivateRequest{Name: name}); a.Err == nil ||
		a.Err.Code != api.CodeUnauthorized {
		t.Fatalf("ro activate: %v, want CodeUnauthorized", a.Err)
	}
	if r := ro.Register(api.RegisterRequest{}); r.Err == nil ||
		r.Err.Code != api.CodeUnauthorized {
		t.Fatalf("ro register: %v, want CodeUnauthorized", r.Err)
	}

	// operator: lifecycle allowed, reshaping refused.
	if a := ops.Activate(api.ActivateRequest{Name: name}); a.Err != nil {
		t.Fatalf("ops activate: %v", a.Err)
	}
	c.Eng().RunFor(5 * time.Second)
	if m := ops.Migrate(api.MigrateRequest{Name: name}); m.Err == nil ||
		m.Err.Code != api.CodeUnauthorized {
		t.Fatalf("ops migrate: %v, want CodeUnauthorized", m.Err)
	}
	if tr := ops.Transfer(api.TransferRequest{}); tr.Err == nil ||
		tr.Err.Code != api.CodeUnauthorized {
		t.Fatalf("ops transfer: %v, want CodeUnauthorized", tr.Err)
	}

	// Refusals must not have killed either session.
	if s := ro.Stats(api.StatsRequest{}); s.Err != nil {
		t.Fatalf("ro session died after refusal: %v", s.Err)
	}
	if st := ops.Stop(api.StopRequest{Name: name}); st.Err != nil {
		t.Fatalf("ops session died after refusal: %v", st.Err)
	}
	if srv.Unauthorized != 4 {
		t.Fatalf("server unauthorized count = %d, want 4", srv.Unauthorized)
	}
	if srv.ProtoErrs != 0 || srv.ActiveConns() != 3 {
		t.Fatalf("refusals disturbed sessions: protoerrs=%d conns=%d",
			srv.ProtoErrs, srv.ActiveConns())
	}
}

// TestConcurrentWatchersSurviveSiblingDrop: two operators stream stats
// while a third connection dies mid-stream — the survivors' watches
// keep delivering, and only the dead session's subscriptions are
// reclaimed.
func TestConcurrentWatchersSurviveSiblingDrop(t *testing.T) {
	c, srv := wiredCluster(t, 2)
	zone := c.Cfg.Board.Zone
	name := "alice." + zone

	admin := dialOp(t, c, "admin", 200, tokAdmin)
	w1 := dialOp(t, c, "watcher1", 201, tokRO)
	w2 := dialOp(t, c, "watcher2", 202, tokRO)
	if srv.ActiveConns() != 3 {
		t.Fatalf("active conns = %d, want 3", srv.ActiveConns())
	}

	if reg := admin.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}}); reg.Err != nil {
		t.Fatalf("register: %v", reg.Err)
	}

	snaps1, snaps2, doomed := 0, 0, 0
	for _, w := range []struct {
		cl *wire.Client
		n  *int
	}{{w1, &snaps1}, {w2, &snaps2}, {admin, &doomed}} {
		n := w.n
		if resp := w.cl.WatchStats(api.WatchStatsRequest{Every: time.Second,
			OnStats: func(api.StatsResponse) bool { *n++; return true }}); resp.Err != nil {
			t.Fatalf("watch: %v", resp.Err)
		}
	}
	if srv.ActiveWatches() != 3 {
		t.Fatalf("active watches = %d, want 3", srv.ActiveWatches())
	}

	c.Eng().RunFor(3 * time.Second)
	if snaps1 == 0 || snaps2 == 0 || doomed == 0 {
		t.Fatalf("streams idle: %d %d %d", snaps1, snaps2, doomed)
	}

	// The admin console vanishes mid-stream (RST, no courtesy cancel).
	admin.Abort()
	doomedAt := doomed
	c.Eng().RunFor(5 * time.Second)

	if srv.ActiveConns() != 2 || srv.ActiveWatches() != 2 {
		t.Fatalf("after drop: conns=%d watches=%d, want 2/2",
			srv.ActiveConns(), srv.ActiveWatches())
	}
	if doomed != doomedAt {
		t.Fatalf("dead session kept receiving: %d -> %d", doomedAt, doomed)
	}
	// Siblings kept streaming at the 1s cadence through the teardown.
	if snaps1 < 5 || snaps2 < 5 {
		t.Fatalf("sibling watches stalled: %d %d", snaps1, snaps2)
	}
	if w1.Pending() != 1 || w2.Pending() != 1 {
		t.Fatalf("survivor registrations: %d %d", w1.Pending(), w2.Pending())
	}
}

// TestClientCloseCancelsWatches: an explicit Close sends TWatchCancel
// for every outstanding watch — the server reclaims them through the
// cancel path, not the connection-teardown path — and Pending reads 0.
func TestClientCloseCancelsWatches(t *testing.T) {
	c, srv := wiredCluster(t, 1)
	cl := dialOp(t, c, "console", 200, tokRO)

	for i := 0; i < 2; i++ {
		if resp := cl.WatchStats(api.WatchStatsRequest{Every: time.Second,
			OnStats: func(api.StatsResponse) bool { return true }}); resp.Err != nil {
			t.Fatalf("watch %d: %v", i, resp.Err)
		}
	}
	c.Eng().RunFor(2 * time.Second)
	if srv.ActiveWatches() != 2 || cl.Pending() != 2 {
		t.Fatalf("watches: server=%d client=%d, want 2/2", srv.ActiveWatches(), cl.Pending())
	}

	cl.Close()
	if cl.Pending() != 0 {
		t.Fatalf("pending after close = %d, want 0", cl.Pending())
	}
	c.Eng().RunFor(2 * time.Second)
	if srv.ActiveWatches() != 0 {
		t.Fatalf("server watches after close = %d, want 0", srv.ActiveWatches())
	}
	if srv.WatchCancels != 2 {
		t.Fatalf("cancels = %d, want 2 (reclaim must ride TWatchCancel)", srv.WatchCancels)
	}
	if srv.ProtoErrs != 0 {
		t.Fatalf("close tripped protocol errors: %d", srv.ProtoErrs)
	}
}

// TestInteropMatrix pins every cell of the version/credential matrix:
// v2↔v2 with a good, bad and missing token; v2 client against a
// v1-only server (downgrade, token elided, anonymous policy applies);
// v1 client against a v2 server (policy-controlled accept/refuse).
func TestInteropMatrix(t *testing.T) {
	type cell struct {
		name      string
		srvMax    uint16    // 0 = full range
		anonymous api.Scope // server anonymous policy
		session   wire.SessionConfig
		wantVer   uint16 // 0 = dial must fail
		wantCode  api.Code
		wantScope api.Scope
	}
	cells := []cell{
		{name: "v2-v2-token", session: wire.SessionConfig{Token: tokOps},
			wantVer: 2, wantScope: api.ScopeOperator},
		{name: "v2-v2-bad-token", session: wire.SessionConfig{Token: "stolen"},
			wantCode: api.CodeUnauthorized},
		{name: "v2-v2-anonymous-refused", session: wire.SessionConfig{},
			wantCode: api.CodeUnauthorized},
		{name: "v2-v2-anonymous-policy", anonymous: api.ScopeReadOnly,
			session: wire.SessionConfig{}, wantVer: 2, wantScope: api.ScopeReadOnly},
		{name: "v2-client-v1-server", srvMax: 1, anonymous: api.ScopeOperator,
			session: wire.SessionConfig{Token: tokAdmin}, wantVer: 1},
		{name: "v2-client-v1-server-refused", srvMax: 1,
			session: wire.SessionConfig{Token: tokAdmin}},
		{name: "v1-client-v2-server", anonymous: api.ScopeReadOnly,
			session: wire.SessionConfig{Max: 1}, wantVer: 1},
		{name: "v1-client-v2-server-refused",
			session: wire.SessionConfig{Max: 1}},
	}
	for i, cc := range cells {
		t.Run(cc.name, func(t *testing.T) {
			c := cluster.NewCluster(cluster.WithBoards(2), cluster.WithSeed(int64(5)))
			if _, err := c.ServeWire(cluster.WireConfig{
				Apps: staticApps, Keyring: testKeyring(),
				Anonymous: cc.anonymous, MaxVersion: cc.srvMax,
			}); err != nil {
				t.Fatal(err)
			}
			console := c.AttachMgmtHost("console", byte(210+i))
			cl, err := wire.DialSession(c.Eng(), console, serverIP, wirePort, cc.session)

			if cc.wantVer == 0 {
				if err == nil {
					t.Fatalf("dial succeeded at version %d, want refusal", cl.Version())
				}
				if cc.wantCode != 0 {
					var ae *api.Error
					if !errors.As(err, &ae) || ae.Code != cc.wantCode {
						t.Fatalf("refusal = %v, want %s", err, cc.wantCode)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			if cl.Version() != cc.wantVer {
				t.Fatalf("negotiated %d, want %d", cl.Version(), cc.wantVer)
			}
			if cl.Version() >= wire.V2 && cl.Scope() != cc.wantScope {
				t.Fatalf("scope %s, want %s", cl.Scope(), cc.wantScope)
			}
			// Every accepted session can observe...
			if s := cl.Stats(api.StatsRequest{}); s.Err != nil {
				t.Fatalf("stats: %v", s.Err)
			}
			// ...and the downgraded/anonymous read-only ones cannot act.
			effective := cc.wantScope
			if cl.Version() < wire.V2 {
				effective = cc.anonymous
			}
			act := cl.Activate(api.ActivateRequest{Name: "nobody.example"})
			if effective.Allows(api.ScopeOperator) {
				if act.Err == nil || act.Err.Code != api.CodeNotFound {
					t.Fatalf("activate: %v, want CodeNotFound", act.Err)
				}
			} else {
				if act.Err == nil || act.Err.Code != api.CodeUnauthorized {
					t.Fatalf("activate: %v, want CodeUnauthorized", act.Err)
				}
			}
		})
	}
}

// TestRemoteSessionDeterministic runs the same scripted multi-session
// exchange twice under the same seed and demands bit-identical console
// traffic: the capture fingerprint covers every frame byte and
// delivery instant.
func TestRemoteSessionDeterministic(t *testing.T) {
	run := func() uint64 {
		c := cluster.NewCluster(
			cluster.WithBoards(3),
			cluster.WithSeed(7),
			cluster.WithBoardOptions(core.WithDisk(blockdev.DefaultConfig())),
		)
		if _, err := c.ServeWire(cluster.WireConfig{
			Apps: staticApps, Keyring: testKeyring(),
		}); err != nil {
			t.Fatal(err)
		}
		console := c.AttachMgmtHost("console", 200)
		tap := netsim.NewCapture(c.Eng(), 1<<14)
		console.NIC.Link().Tap(tap)
		cl, err := wire.DialSession(c.Eng(), console, serverIP, wirePort,
			wire.SessionConfig{Token: tokAdmin})
		if err != nil {
			t.Fatal(err)
		}
		viewer := dialOp(t, c, "viewer", 201, tokRO)
		viewer.WatchStats(api.WatchStatsRequest{Every: time.Second,
			OnStats: func(api.StatsResponse) bool { return true }})

		name := "alice." + c.Cfg.Board.Zone
		cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
			Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
			Image: unikernel.UnikernelImage("alice", nil),
		}})
		cl.Activate(api.ActivateRequest{Name: name})
		c.Eng().RunFor(5 * time.Second)
		cl.Demote(api.DemoteRequest{Name: name})
		c.Eng().RunFor(2 * time.Second)
		cl.Promote(api.PromoteRequest{Name: name})
		c.Eng().RunFor(5 * time.Second)
		cl.Stats(api.StatsRequest{})
		cl.Close()
		viewer.Close()
		c.Eng().RunFor(5 * time.Second)
		return tap.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("console capture fingerprints differ: %016x vs %016x", a, b)
	}
	if a == 0 {
		t.Fatal("empty capture — the tap saw no frames")
	}
}

// TestVersionNegotiationRejectsStranger: a client offering only a
// future protocol range is turned away with HelloAck{0}.
func TestVersionNegotiationRejectsStranger(t *testing.T) {
	c := cluster.NewCluster(cluster.WithBoards(2), cluster.WithSeed(3))
	if _, err := c.ServeWire(cluster.WireConfig{Anonymous: api.ScopeAdmin}); err != nil {
		t.Fatal(err)
	}
	console := c.AttachMgmtHost("console", 201)

	var conn *netstack.TCPConn
	console.DialTCP(serverIP, wirePort, func(tc *netstack.TCPConn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn = tc
	})
	c.Eng().RunFor(time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}
	// A v1-framed Hello offering only versions 5..9.
	buf, err := wire.Append(nil, wire.V1, wire.THello, 1, wire.Hello{Min: 5, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	var got *wire.HelloAck
	rx := []byte{}
	conn.OnData(func(b []byte) {
		rx = append(rx, b...)
		if _, typ, _, msg, _, err := wire.Decode(rx); err == nil && typ == wire.THelloAck {
			ack := msg.(wire.HelloAck)
			got = &ack
		}
	})
	conn.Send(buf)
	c.Eng().RunFor(time.Second)
	if got == nil || got.Version != 0 {
		t.Fatalf("hello-ack = %+v, want version 0 refusal", got)
	}
}
