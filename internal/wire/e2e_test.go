package wire_test

import (
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/blockdev"
	"jitsu/internal/cluster"
	"jitsu/internal/core"
	"jitsu/internal/netsim"
	"jitsu/internal/netstack"
	"jitsu/internal/unikernel"
	"jitsu/internal/wire"
	"jitsu/internal/xen"
)

const wirePort = 7900

// dialedCluster builds a disk-tiered cluster with a wire server on
// board 0's management host and a Client dialled in from an operator
// console attached to the same bridge. The optional tap captures every
// frame the console exchanges with the cluster.
func dialedCluster(t *testing.T, seed int64, tap *netsim.Capture) (*cluster.Cluster, *wire.Client, *wire.Server) {
	t.Helper()
	c := cluster.NewCluster(
		cluster.WithBoards(3),
		cluster.WithSeed(seed),
		cluster.WithBoardOptions(core.WithDisk(blockdev.DefaultConfig())),
	)
	srv, err := wire.Serve(c.MgmtHost(0), wirePort, c.API(),
		func(name string, _ xen.GuestKind) unikernel.App { return unikernel.NewStaticSiteApp(name) })
	if err != nil {
		t.Fatal(err)
	}
	console := c.AttachMgmtHost("console", 200)
	if tap != nil {
		console.NIC.Link().Tap(tap)
	}
	cl, err := wire.Dial(c.Eng(), console, netstack.IPv4(10, 255, 0, 10), wirePort)
	if err != nil {
		t.Fatal(err)
	}
	return c, cl, srv
}

// TestRemoteSessionDrivesCluster walks a full operator session over
// the wire: register, activate (remote OnReady), stats, demote,
// promote, migrate (remote OnDone), stop — every response carried as
// frames across the simulated management network.
func TestRemoteSessionDrivesCluster(t *testing.T) {
	c, cl, srv := dialedCluster(t, 1, nil)
	if cl.Version() != wire.Version {
		t.Fatalf("negotiated version %d, want %d", cl.Version(), wire.Version)
	}
	zone := c.Cfg.Board.Zone
	name := "alice." + zone

	reg := cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}})
	if reg.Err != nil || reg.Name != name {
		t.Fatalf("register: %v %q", reg.Err, reg.Name)
	}

	// Registering the same name again must carry the typed conflict
	// back across the wire.
	if dup := cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
		Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
		Image: unikernel.UnikernelImage("alice", nil),
	}}); dup.Err == nil || dup.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate register: %v, want CodeConflict", dup.Err)
	}
	if miss := cl.Activate(api.ActivateRequest{Name: "ghost." + zone}); miss.Err == nil || miss.Err.Code != api.CodeNotFound {
		t.Fatalf("activate unknown: %v, want CodeNotFound", miss.Err)
	}

	readyErr := error(api.Errf("x", api.CodeUnavailable, "never fired"))
	readyFired := false
	act := cl.Activate(api.ActivateRequest{Name: name, OnReady: func(err error) {
		readyFired, readyErr = true, err
	}})
	if act.Err != nil {
		t.Fatalf("activate: %v", act.Err)
	}
	c.Eng().RunFor(5 * time.Second)
	if !readyFired || readyErr != nil {
		t.Fatalf("remote OnReady: fired=%v err=%v", readyFired, readyErr)
	}

	stats := cl.Stats(api.StatsRequest{})
	if stats.Err != nil || len(stats.Services) != 1 || stats.Services[0].Name != name {
		t.Fatalf("stats: %v %+v", stats.Err, stats.Services)
	}
	if stats.Services[0].Launches != 1 || len(stats.Registries) == 0 {
		t.Fatalf("stats content: launches=%d registries=%d",
			stats.Services[0].Launches, len(stats.Registries))
	}

	dem := cl.Demote(api.DemoteRequest{Name: name, Board: api.OnBoard(act.Board)})
	if dem.Err != nil || dem.Demoted != 1 {
		t.Fatalf("demote: %v demoted=%d", dem.Err, dem.Demoted)
	}
	c.Eng().RunFor(2 * time.Second)

	promoted := false
	pro := cl.Promote(api.PromoteRequest{Name: name, OnReady: func(err error) {
		if err == nil {
			promoted = true
		}
	}})
	if pro.Err != nil || pro.Board != act.Board {
		t.Fatalf("promote: %v board=%d want %d", pro.Err, pro.Board, act.Board)
	}
	c.Eng().RunFor(5 * time.Second)
	if !promoted {
		t.Fatal("remote promote OnReady never fired")
	}

	migrated, migrateOK := false, false
	mig := cl.Migrate(api.MigrateRequest{Name: name, From: api.OnBoard(act.Board),
		OnDone: func(ok bool) { migrated, migrateOK = true, ok }})
	if mig.Err != nil || !mig.Started {
		t.Fatalf("migrate: %v started=%v", mig.Err, mig.Started)
	}
	c.Eng().RunFor(20 * time.Second)
	if !migrated || !migrateOK {
		t.Fatalf("remote OnDone: fired=%v ok=%v", migrated, migrateOK)
	}
	if c.Migrations != 1 || c.Chunks == 0 {
		t.Fatalf("migrations=%d chunks=%d — the CC-paced mover should have run", c.Migrations, c.Chunks)
	}

	stop := cl.Stop(api.StopRequest{Name: name})
	if stop.Err != nil || stop.Stopped == 0 {
		t.Fatalf("stop: %v stopped=%d", stop.Err, stop.Stopped)
	}
	if srv.Conns != 1 || srv.ProtoErrs != 0 {
		t.Fatalf("server saw conns=%d protoerrs=%d", srv.Conns, srv.ProtoErrs)
	}
}

// TestRemoteWatchStatsStream subscribes over the wire, collects three
// snapshots at the deployment's virtual-time cadence, then ends the
// stream from the OnStats return value — the client must cancel
// upstream and no further snapshots may arrive.
func TestRemoteWatchStatsStream(t *testing.T) {
	c, cl, _ := dialedCluster(t, 1, nil)

	if bad := cl.WatchStats(api.WatchStatsRequest{Every: -time.Second,
		OnStats: func(api.StatsResponse) bool { return true }}); bad.Err == nil ||
		bad.Err.Code != api.CodeBadRequest {
		t.Fatalf("negative period: %v, want CodeBadRequest", bad.Err)
	}

	snaps := 0
	resp := cl.WatchStats(api.WatchStatsRequest{Every: time.Second,
		OnStats: func(s api.StatsResponse) bool {
			if s.Err != nil {
				t.Fatalf("stream snapshot error: %v", s.Err)
			}
			snaps++
			return snaps < 3
		}})
	if resp.Err != nil {
		t.Fatalf("watch-stats: %v", resp.Err)
	}
	c.Eng().RunFor(10 * time.Second)
	if snaps != 3 {
		t.Fatalf("snapshots = %d, want exactly 3 (stream must stop)", snaps)
	}
}

// TestFailedVerbsDropCallbackRegistrations: a verb that comes back
// with an application error will never be followed by its Ready/Done
// event, so the client must drop the registration instead of holding
// it for the connection's lifetime.
func TestFailedVerbsDropCallbackRegistrations(t *testing.T) {
	c, cl, _ := dialedCluster(t, 1, nil)
	zone := c.Cfg.Board.Zone
	ghost := "ghost." + zone

	fired := false
	if resp := cl.Activate(api.ActivateRequest{Name: ghost,
		OnReady: func(error) { fired = true }}); resp.Err == nil {
		t.Fatal("activate unknown succeeded")
	}
	if resp := cl.Promote(api.PromoteRequest{Name: ghost,
		OnReady: func(error) { fired = true }}); resp.Err == nil {
		t.Fatal("promote unknown succeeded")
	}
	if resp := cl.Migrate(api.MigrateRequest{Name: ghost,
		OnDone: func(bool) { fired = true }}); resp.Err == nil {
		t.Fatal("migrate unknown succeeded")
	}
	c.Eng().RunFor(2 * time.Second)
	if fired {
		t.Fatal("a failed verb fired its callback")
	}
	if n := cl.Pending(); n != 0 {
		t.Fatalf("pending callback registrations = %d, want 0", n)
	}
}

// TestRemoteSessionDeterministic runs the same scripted session twice
// under the same seed and demands bit-identical console traffic: the
// capture fingerprint covers every frame byte and delivery instant.
func TestRemoteSessionDeterministic(t *testing.T) {
	run := func() uint64 {
		c := cluster.NewCluster(
			cluster.WithBoards(3),
			cluster.WithSeed(7),
			cluster.WithBoardOptions(core.WithDisk(blockdev.DefaultConfig())),
		)
		if _, err := wire.Serve(c.MgmtHost(0), wirePort, c.API(),
			func(name string, _ xen.GuestKind) unikernel.App { return unikernel.NewStaticSiteApp(name) }); err != nil {
			t.Fatal(err)
		}
		console := c.AttachMgmtHost("console", 200)
		tap := netsim.NewCapture(c.Eng(), 1<<14)
		console.NIC.Link().Tap(tap)
		cl, err := wire.Dial(c.Eng(), console, netstack.IPv4(10, 255, 0, 10), wirePort)
		if err != nil {
			t.Fatal(err)
		}
		name := "alice." + c.Cfg.Board.Zone
		cl.Register(api.RegisterRequest{Config: core.ServiceConfig{
			Name: name, IP: netstack.IPv4(10, 0, 0, 20), Port: 80,
			Image: unikernel.UnikernelImage("alice", nil),
		}})
		cl.Activate(api.ActivateRequest{Name: name})
		c.Eng().RunFor(5 * time.Second)
		cl.Demote(api.DemoteRequest{Name: name})
		c.Eng().RunFor(2 * time.Second)
		cl.Promote(api.PromoteRequest{Name: name})
		c.Eng().RunFor(5 * time.Second)
		cl.Stats(api.StatsRequest{})
		cl.Close()
		c.Eng().RunFor(5 * time.Second)
		return tap.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("console capture fingerprints differ: %016x vs %016x", a, b)
	}
	if a == 0 {
		t.Fatal("empty capture — the tap saw no frames")
	}
}

// TestVersionNegotiationRejectsStranger: a client offering only a
// future protocol range is turned away with HelloAck{0}.
func TestVersionNegotiationRejectsStranger(t *testing.T) {
	c := cluster.NewCluster(cluster.WithBoards(2), cluster.WithSeed(3))
	if _, err := wire.Serve(c.MgmtHost(0), wirePort, c.API(), nil); err != nil {
		t.Fatal(err)
	}
	console := c.AttachMgmtHost("console", 201)

	var conn *netstack.TCPConn
	console.DialTCP(netstack.IPv4(10, 255, 0, 10), wirePort, func(tc *netstack.TCPConn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn = tc
	})
	c.Eng().RunFor(time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}
	// A v1-framed Hello offering only versions 5..9.
	buf, err := wire.Append(nil, wire.THello, 1, wire.Hello{Min: 5, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	var got *wire.HelloAck
	rx := []byte{}
	conn.OnData(func(b []byte) {
		rx = append(rx, b...)
		if typ, _, msg, _, err := wire.Decode(rx); err == nil && typ == wire.THelloAck {
			ack := msg.(wire.HelloAck)
			got = &ack
		}
	})
	conn.Send(buf)
	c.Eng().RunFor(time.Second)
	if got == nil || got.Version != 0 {
		t.Fatalf("hello-ack = %+v, want version 0 refusal", got)
	}
}
