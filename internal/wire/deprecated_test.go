package wire_test

import (
	"testing"
	"time"

	"jitsu/internal/api"
	"jitsu/internal/cluster"
	"jitsu/internal/wire"
)

// TestDeprecatedAnonymousEntryPoints pins the wire.Serve / wire.Dial
// shims until their callers migrate: Serve accepts every anonymous
// session with full admin authority (the pre-keyring behaviour), and
// Dial opens a tokenless session offering the full version range.
// This file is the only sanctioned caller — `make deprecations` greps
// everything else.
func TestDeprecatedAnonymousEntryPoints(t *testing.T) {
	c := cluster.NewCluster(cluster.WithBoards(2), cluster.WithSeed(11))
	srv, err := wire.Serve(c.MgmtHost(0), wirePort, c.API(), staticApps)
	if err != nil {
		t.Fatal(err)
	}
	console := c.AttachMgmtHost("console", 230)
	cl, err := wire.Dial(c.Eng(), console, serverIP, wirePort)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Version() != wire.Version {
		t.Fatalf("negotiated %d, want the preferred version %d", cl.Version(), wire.Version)
	}
	// The shim's defining property: anonymous, yet unrestricted.
	if cl.Scope() != api.ScopeAdmin {
		t.Fatalf("anonymous shim scope = %s, want admin", cl.Scope())
	}
	if s := cl.Stats(api.StatsRequest{}); s.Err != nil {
		t.Fatalf("stats over shim session: %v", s.Err)
	}
	cl.Close()
	c.Eng().RunFor(time.Second)
	if srv.Conns != 1 || srv.ProtoErrs != 0 {
		t.Fatalf("server saw conns=%d protoerrs=%d", srv.Conns, srv.ProtoErrs)
	}
}
