// Package cc is the per-management-link congestion controller the bulk
// movers acquire window from. Migration pre-copy chunks
// (internal/cluster xfer.go) and federation shed/Transfer checkpoint
// copies used to blast fixed-size chunks with a private doubling RTO —
// exactly the uncoordinated bulk consumer that collapses a shared
// monitoring/control transport (the MDS2 failure mode): on a throttled
// management link an unpaced copy parks seconds of queue in front of
// the gossip probes and delegated resolutions sharing the wire.
//
// A Controller keeps three pieces of classical transport state, all on
// the simulation's virtual clock and therefore bit-deterministic:
//
//   - an RFC 6298 RTT estimator (EWMA srtt + mean deviation → RTO,
//     Karn-ambiguous samples excluded by the callers);
//   - a CUBIC congestion window (Ha/Rhee/Xu): concave-then-convex
//     growth toward the window at the last congestion event, with
//     multiplicative decrease on loss — plus a delay-based backoff
//     (rtt beyond DelayFactor × the observed base RTT counts as
//     congestion) so a lossless-but-throttled link converges to a
//     bounded standing queue instead of bufferbloat;
//   - in-flight byte accounting with a FIFO grant queue: senders
//     Acquire window before every chunk and release it via
//     OnAck/OnLoss/OnTimeout, so however many transfers share one
//     uplink, their aggregate in-flight bytes track one window.
//
// The package sits below the movers and beside the transports: it
// never touches the wire itself, it only decides when the next chunk
// may.
package cc

import (
	"math"
	"time"

	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

// Config tunes one controller. The zero value takes every default.
type Config struct {
	// MSS is the chunk/segment size in bytes the window is scaled
	// against (default 256 KiB — the movers' chunk size).
	MSS int
	// InitWindow is the initial congestion window in bytes (default
	// 4×MSS, RFC 6928 style).
	InitWindow int
	// MinWindow floors the window after timeouts (default 1×MSS).
	MinWindow int
	// MaxWindow caps growth; 0 = uncapped.
	MaxWindow int
	// Beta is the CUBIC multiplicative-decrease factor (default 0.7).
	Beta float64
	// C is the CUBIC aggressiveness constant (default 0.4, in
	// MSS/second³ like the paper's).
	C float64
	// DelayFactor arms the delay-based backoff: an RTT sample above
	// DelayFactor × the minimum observed RTT is treated as a congestion
	// event (at most once per RTT). 0 takes the default 4; negative
	// disables delay backoff entirely (pure loss-based CUBIC).
	DelayFactor float64
	// RTOMin/RTOMax clamp the retransmission timeout (defaults
	// 20ms / 10s).
	RTOMin sim.Duration
	RTOMax sim.Duration
	// InitRTO is the timeout before the first RTT sample (default
	// 200ms).
	InitRTO sim.Duration
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 256 * 1024
	}
	if c.InitWindow <= 0 {
		c.InitWindow = 4 * c.MSS
	}
	if c.MinWindow <= 0 {
		c.MinWindow = c.MSS
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.7
	}
	if c.C <= 0 {
		c.C = 0.4
	}
	if c.DelayFactor == 0 {
		c.DelayFactor = 4
	}
	if c.RTOMin <= 0 {
		c.RTOMin = 20 * time.Millisecond
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 10 * time.Second
	}
	if c.InitRTO <= 0 {
		c.InitRTO = 200 * time.Millisecond
	}
	return c
}

// waiter is one queued window request.
type waiter struct {
	bytes int
	grant func()
}

// Controller paces every bulk transfer sharing one management uplink.
type Controller struct {
	eng *sim.Engine
	cfg Config

	// RTT estimator state (RFC 6298).
	srtt   sim.Duration
	rttvar sim.Duration
	minRTT sim.Duration
	hasRTT bool
	// rtoScale doubles per back-to-back timeout (Karn backoff) and
	// resets on the next valid sample.
	rtoScale int

	// CUBIC state, in float64 bytes.
	cwnd       float64
	ssthresh   float64
	wMax       float64
	epochStart sim.Duration // virtual instant of the last decrease; -1 = fresh epoch pending
	hasEpoch   bool
	lastDecr   sim.Duration // decrease cooldown anchor
	hasDecr    bool

	inFlight int
	queue    []waiter
	pumping  bool

	// Acks counts OnAck calls; Losses counts loss-signalled decreases;
	// Timeouts counts RTO collapses; DelayBackoffs counts decreases the
	// delay signal triggered.
	Acks          uint64
	Losses        uint64
	Timeouts      uint64
	DelayBackoffs uint64
}

// New builds a controller on the engine's virtual clock.
func New(eng *sim.Engine, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{eng: eng, cfg: cfg, rtoScale: 1}
	c.cwnd = float64(cfg.InitWindow)
	c.ssthresh = math.Inf(1)
	if cfg.MaxWindow > 0 {
		c.ssthresh = float64(cfg.MaxWindow)
	}
	return c
}

// Cwnd is the current congestion window in bytes.
func (c *Controller) Cwnd() int { return int(c.cwnd) }

// InFlight is the number of granted-but-unacknowledged bytes.
func (c *Controller) InFlight() int { return c.inFlight }

// SRTT is the smoothed RTT estimate (0 before the first sample).
func (c *Controller) SRTT() sim.Duration { return c.srtt }

// RTO is the current retransmission timeout: srtt + 4×rttvar clamped
// to [RTOMin, RTOMax], doubled per back-to-back timeout.
func (c *Controller) RTO() sim.Duration {
	rto := c.cfg.InitRTO
	if c.hasRTT {
		rto = c.srtt + 4*c.rttvar
	}
	for i := 1; i < c.rtoScale; i *= 2 {
		rto *= 2
	}
	if rto < c.cfg.RTOMin {
		rto = c.cfg.RTOMin
	}
	if rto > c.cfg.RTOMax {
		rto = c.cfg.RTOMax
	}
	return rto
}

// Acquire queues a window request for bytes and calls grant once the
// in-flight account has room (immediately when it already does).
// Grants are strictly FIFO so concurrent transfers sharing the link
// interleave deterministically. The granted bytes join the in-flight
// account and must be returned through exactly one of OnAck, OnLoss,
// OnTimeout or Release.
func (c *Controller) Acquire(bytes int, grant func()) {
	c.queue = append(c.queue, waiter{bytes: bytes, grant: grant})
	c.pump()
}

// pump grants queued waiters while the window has room. The head
// waiter is always granted when nothing is in flight, so a request
// larger than the whole window cannot deadlock.
func (c *Controller) pump() {
	if c.pumping {
		return
	}
	c.pumping = true
	for len(c.queue) > 0 {
		w := c.queue[0]
		if c.inFlight > 0 && float64(c.inFlight+w.bytes) > c.cwnd {
			break
		}
		c.queue = c.queue[1:]
		c.inFlight += w.bytes
		w.grant()
	}
	c.pumping = false
}

// Release returns granted bytes without any congestion signal (a
// transfer torn down mid-flight).
func (c *Controller) Release(bytes int) {
	c.release(bytes)
	c.pump()
}

func (c *Controller) release(bytes int) {
	c.inFlight -= bytes
	if c.inFlight < 0 {
		c.inFlight = 0
	}
}

// OnAck returns bytes to the window and feeds one RTT sample (rtt <= 0
// means "no sample" — the Karn rule for retransmitted chunks). The
// window grows per slow start below ssthresh and per the CUBIC curve
// above it; an RTT sample far above the base RTT triggers the
// delay-based decrease instead.
func (c *Controller) OnAck(bytes int, rtt sim.Duration) {
	c.Acks++
	c.release(bytes)
	now := c.eng.Now()
	if rtt > 0 {
		c.sample(rtt)
		c.rtoScale = 1
		if c.cfg.DelayFactor > 0 && c.minRTT > 0 &&
			rtt > sim.Duration(c.cfg.DelayFactor*float64(c.minRTT)) &&
			(!c.hasDecr || now-c.lastDecr > c.srtt) {
			c.DelayBackoffs++
			c.decrease(now)
			c.pump()
			return
		}
	}
	c.grow(bytes, now)
	c.pump()
}

// OnLoss signals a lost chunk (duplicate-ack style, not a timeout):
// the bytes leave the in-flight account and the window takes one
// multiplicative decrease (at most once per RTT).
func (c *Controller) OnLoss(bytes int) {
	c.Losses++
	c.release(bytes)
	now := c.eng.Now()
	if !c.hasDecr || now-c.lastDecr > c.srtt {
		c.decrease(now)
	}
	c.pump()
}

// OnTimeout signals an RTO expiry: the window collapses to MinWindow,
// ssthresh remembers the Beta-scaled window, and the RTO doubles until
// the next valid sample.
func (c *Controller) OnTimeout(bytes int) {
	c.Timeouts++
	c.release(bytes)
	c.wMax = c.cwnd
	c.ssthresh = math.Max(c.cwnd*c.cfg.Beta, float64(2*c.cfg.MSS))
	c.cwnd = float64(c.cfg.MinWindow)
	c.hasEpoch = false
	c.lastDecr = c.eng.Now()
	c.hasDecr = true
	if c.rtoScale < 1<<16 {
		c.rtoScale *= 2
	}
	c.pump()
}

// sample folds one RTT measurement into the estimator.
func (c *Controller) sample(rtt sim.Duration) {
	if !c.hasRTT {
		c.hasRTT = true
		c.srtt = rtt
		c.rttvar = rtt / 2
		c.minRTT = rtt
		return
	}
	if rtt < c.minRTT {
		c.minRTT = rtt
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

// decrease is one multiplicative congestion response (loss or delay).
func (c *Controller) decrease(now sim.Duration) {
	c.wMax = c.cwnd
	c.cwnd = math.Max(c.cwnd*c.cfg.Beta, float64(c.cfg.MinWindow))
	c.ssthresh = c.cwnd
	c.hasEpoch = false
	c.lastDecr = now
	c.hasDecr = true
}

// grow advances the window for bytes newly acknowledged.
func (c *Controller) grow(bytes int, now sim.Duration) {
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(bytes) // slow start: one MSS per MSS acked
	} else {
		// CUBIC: W(t) = C·(t−K)³ + Wmax with K = ∛(Wmax·(1−β)/C),
		// computed in MSS units and scaled back to bytes.
		if !c.hasEpoch {
			c.hasEpoch = true
			c.epochStart = now
			if c.wMax < c.cwnd {
				c.wMax = c.cwnd
			}
		}
		mss := float64(c.cfg.MSS)
		t := (now - c.epochStart).Seconds()
		wmax := c.wMax / mss
		k := math.Cbrt(wmax * (1 - c.cfg.Beta) / c.cfg.C)
		target := (c.cfg.C*math.Pow(t-k, 3) + wmax) * mss
		if target > c.cwnd {
			// Approach the cubic target over one RTT's worth of acks.
			c.cwnd += (target - c.cwnd) * float64(bytes) / c.cwnd
		} else {
			// TCP-friendly floor: keep probing gently below the curve.
			c.cwnd += 0.05 * float64(bytes)
		}
	}
	if c.cfg.MaxWindow > 0 && c.cwnd > float64(c.cfg.MaxWindow) {
		c.cwnd = float64(c.cfg.MaxWindow)
	}
}

// QueueLen is the number of ungranted window requests (tests, gauges).
func (c *Controller) QueueLen() int { return len(c.queue) }

// Register exports the controller's live state into reg under prefix:
// cwnd/in-flight/srtt-µs/rto-µs gauges and ack/loss/timeout/
// delay-backoff counters — the cc.* rows the Stampede experiment and
// jitsud -stats-every surface.
func (c *Controller) Register(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".cwnd_bytes", func() int64 { return int64(c.cwnd) })
	reg.GaugeFunc(prefix+".inflight_bytes", func() int64 { return int64(c.inFlight) })
	reg.GaugeFunc(prefix+".srtt_us", func() int64 { return int64(c.srtt / time.Microsecond) })
	reg.GaugeFunc(prefix+".rto_us", func() int64 { return int64(c.RTO() / time.Microsecond) })
	reg.CounterFunc(prefix+".acks", func() uint64 { return c.Acks })
	reg.CounterFunc(prefix+".losses", func() uint64 { return c.Losses })
	reg.CounterFunc(prefix+".timeouts", func() uint64 { return c.Timeouts })
	reg.CounterFunc(prefix+".delay_backoffs", func() uint64 { return c.DelayBackoffs })
}
