package cc

import (
	"testing"
	"time"

	"jitsu/internal/obs"
	"jitsu/internal/sim"
)

func newTest() (*sim.Engine, *Controller) {
	eng := sim.New(1)
	return eng, New(eng, Config{MSS: 1000, InitWindow: 4000})
}

// Acquire within the initial window grants immediately; past it, the
// grant waits for acks, in FIFO order.
func TestAcquireWindowing(t *testing.T) {
	_, c := newTest()
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		c.Acquire(1000, func() { order = append(order, i) })
	}
	if len(order) != 4 {
		t.Fatalf("initial grants = %v, want first 4", order)
	}
	if c.InFlight() != 4000 {
		t.Fatalf("inFlight = %d, want 4000", c.InFlight())
	}
	c.OnAck(1000, 10*time.Millisecond)
	if len(order) < 5 || order[4] != 4 {
		t.Fatalf("after ack grants = %v, want 4 appended", order)
	}
	c.OnAck(1000, 10*time.Millisecond)
	if len(order) != 6 {
		t.Fatalf("after 2 acks grants = %v, want all 6", order)
	}
}

// A request larger than the whole window must still be granted when
// nothing is in flight — otherwise a big chunk on a collapsed window
// deadlocks forever.
func TestOversizeRequestNoDeadlock(t *testing.T) {
	_, c := newTest()
	granted := false
	c.Acquire(100000, func() { granted = true })
	if !granted {
		t.Fatal("oversize request not granted on an idle window")
	}
}

// Slow start doubles per window; loss takes a Beta decrease; timeout
// collapses to MinWindow.
func TestWindowDynamics(t *testing.T) {
	eng, c := newTest()
	start := c.Cwnd()
	for i := 0; i < 8; i++ {
		c.Acquire(1000, func() {})
		c.OnAck(1000, 10*time.Millisecond)
	}
	if c.Cwnd() <= start {
		t.Fatalf("cwnd did not grow in slow start: %d -> %d", start, c.Cwnd())
	}
	grown := c.Cwnd()
	eng.After(time.Second, func() {})
	eng.Run() // move the clock past the decrease cooldown
	c.Acquire(1000, func() {})
	c.OnLoss(1000)
	if want := int(float64(grown) * 0.7); c.Cwnd() > want+1 {
		t.Fatalf("cwnd after loss = %d, want <= %d", c.Cwnd(), want)
	}
	c.Acquire(1000, func() {})
	c.OnTimeout(1000)
	if c.Cwnd() != 1000 {
		t.Fatalf("cwnd after timeout = %d, want MinWindow 1000", c.Cwnd())
	}
	if c.Timeouts != 1 || c.Losses != 1 {
		t.Fatalf("counters: timeouts=%d losses=%d", c.Timeouts, c.Losses)
	}
}

// The RTO follows RFC 6298 (srtt + 4*rttvar) and doubles per
// back-to-back timeout until the next sample.
func TestRTOEstimator(t *testing.T) {
	_, c := newTest()
	if got := c.RTO(); got != 200*time.Millisecond {
		t.Fatalf("initial RTO = %v, want 200ms", got)
	}
	c.Acquire(1000, func() {})
	c.OnAck(1000, 40*time.Millisecond)
	// First sample: srtt = 40ms, rttvar = 20ms => RTO = 120ms.
	if got := c.RTO(); got != 120*time.Millisecond {
		t.Fatalf("RTO after first sample = %v, want 120ms", got)
	}
	c.Acquire(1000, func() {})
	c.OnTimeout(1000)
	if got := c.RTO(); got != 240*time.Millisecond {
		t.Fatalf("RTO after timeout = %v, want doubled 240ms", got)
	}
	c.Acquire(1000, func() {})
	c.OnAck(1000, 40*time.Millisecond)
	if got := c.RTO(); got >= 240*time.Millisecond {
		t.Fatalf("RTO did not reset after a valid sample: %v", got)
	}
	if c.SRTT() == 0 {
		t.Fatal("SRTT not tracked")
	}
}

// RTT samples far above the observed base trigger the delay-based
// decrease that keeps a throttled-but-lossless link from bufferbloat.
func TestDelayBackoff(t *testing.T) {
	eng, c := newTest()
	c.Acquire(1000, func() {})
	c.OnAck(1000, 5*time.Millisecond) // base RTT
	for i := 0; i < 4; i++ {
		c.Acquire(1000, func() {})
		c.OnAck(1000, 5*time.Millisecond)
	}
	before := c.Cwnd()
	eng.After(time.Second, func() {})
	eng.Run()
	c.Acquire(1000, func() {})
	c.OnAck(1000, 50*time.Millisecond) // 10x base: way past DelayFactor 4
	if c.DelayBackoffs != 1 {
		t.Fatalf("DelayBackoffs = %d, want 1", c.DelayBackoffs)
	}
	if c.Cwnd() >= before {
		t.Fatalf("cwnd did not back off on delay: %d -> %d", before, c.Cwnd())
	}
}

// Above ssthresh the window follows the cubic curve: growth resumes
// and eventually passes the pre-decrease Wmax.
func TestCubicRegrowth(t *testing.T) {
	eng := sim.New(1)
	c := New(eng, Config{MSS: 1000, InitWindow: 4000, DelayFactor: -1})
	for i := 0; i < 16; i++ {
		c.Acquire(1000, func() {})
		c.OnAck(1000, 10*time.Millisecond)
	}
	wmax := c.Cwnd()
	c.Acquire(1000, func() {})
	c.OnLoss(1000)
	after := c.Cwnd()
	if after >= wmax {
		t.Fatalf("no decrease: %d -> %d", wmax, after)
	}
	// Ack a window's worth every 10ms of virtual time for 4 seconds.
	for step := 0; step < 400; step++ {
		eng.After(10*time.Millisecond, func() {
			for i := 0; i < 8; i++ {
				c.Acquire(1000, func() {})
				c.OnAck(1000, 10*time.Millisecond)
			}
		})
		eng.Run()
	}
	if c.Cwnd() <= wmax {
		t.Fatalf("cubic regrowth stalled: wmax %d, now %d", wmax, c.Cwnd())
	}
}

// Release returns bytes without a congestion signal and unblocks
// waiters.
func TestRelease(t *testing.T) {
	_, c := newTest()
	granted := 0
	for i := 0; i < 5; i++ {
		c.Acquire(1000, func() { granted++ })
	}
	if granted != 4 {
		t.Fatalf("granted = %d, want 4", granted)
	}
	before := c.Cwnd()
	c.Release(1000)
	if granted != 5 {
		t.Fatalf("Release did not pump: granted = %d", granted)
	}
	if c.Cwnd() != before {
		t.Fatalf("Release moved cwnd: %d -> %d", before, c.Cwnd())
	}
}

// Register exports gauges and counters under the prefix.
func TestRegister(t *testing.T) {
	_, c := newTest()
	reg := obs.NewRegistry("test")
	c.Register(reg, "cc.b0")
	c.Acquire(1000, func() {})
	c.OnAck(1000, 10*time.Millisecond)
	snap := reg.Snapshot()
	foundGauge, foundCounter := false, false
	for _, g := range snap.Gauges {
		if g.Name == "cc.b0.cwnd_bytes" && g.Value > 0 {
			foundGauge = true
		}
	}
	for _, cn := range snap.Counters {
		if cn.Name == "cc.b0.acks" && cn.Value == 1 {
			foundCounter = true
		}
	}
	if !foundGauge || !foundCounter {
		t.Fatalf("missing cc rows in snapshot: %+v", snap)
	}
}
