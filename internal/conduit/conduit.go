package conduit

import (
	"errors"
	"fmt"

	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

// Rendezvous errors.
var (
	ErrNoSuchEndpoint = errors.New("conduit: no such named endpoint")
	ErrClosed         = errors.New("conduit: endpoint closed")
)

// Endpoint is one side of an established vchan: a bidirectional,
// flow-controlled byte stream over two grant-mapped rings and one event
// channel.
type Endpoint struct {
	// Local and Peer identify the two domains.
	Local, Peer xenstore.DomID
	// Name is the rendezvous name this channel was established under.
	Name string
	// Port is the per-connection name chosen by the client (Fig 5's
	// "conn1").
	Port string

	hyp     *xen.Hypervisor
	tx, rx  *ring
	channel *xen.EventChannel
	onData  func([]byte)
	onClose func()
	pending []byte // writes waiting for ring space
	closed  bool

	// BytesIn/BytesOut count stream payload.
	BytesIn, BytesOut uint64
}

// OnData installs the receive callback and drains anything already in
// the ring.
func (e *Endpoint) OnData(fn func([]byte)) {
	e.onData = fn
	e.drainRx()
}

// OnClose installs the teardown callback.
func (e *Endpoint) OnClose(fn func()) { e.onClose = fn }

// Write queues data for the peer. It never blocks: bytes beyond the ring
// capacity wait in an unbounded local buffer and drain as the peer
// consumes (the simulation analogue of blocking writes).
func (e *Endpoint) Write(data []byte) error {
	if e.closed {
		return ErrClosed
	}
	e.BytesOut += uint64(len(data))
	e.pending = append(e.pending, data...)
	e.pump()
	return nil
}

// pump moves pending bytes into the tx ring and notifies the peer.
func (e *Endpoint) pump() {
	if len(e.pending) == 0 {
		return
	}
	n := e.tx.write(e.pending)
	if n > 0 {
		e.pending = e.pending[n:]
		_ = e.channel.Notify(e.Local)
	}
}

// drainRx delivers readable bytes to the app and credits the peer.
func (e *Endpoint) drainRx() {
	if e.onData == nil || e.closed {
		return
	}
	data := e.rx.read(-1)
	if len(data) == 0 {
		return
	}
	e.BytesIn += uint64(len(data))
	// Tell the peer there is ring space again (it may have writes parked).
	_ = e.channel.Notify(e.Local)
	e.onData(data)
}

// event is the upcall handler: new data to read and/or space to write,
// and possibly a peer-closed flag once the ring is drained.
func (e *Endpoint) event() {
	if e.closed {
		return
	}
	e.drainRx()
	e.pump()
	if e.rx.closedFlag() && e.rx.used() == 0 {
		e.closeFromPeer()
	}
}

// Close tears the channel down. A closed flag in the shared page plus a
// final notification let the peer drain remaining bytes and then observe
// closure — no metadata service needed, true to the vchan protocol.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.tx.setClosedFlag()
	_ = e.channel.Notify(e.Local)
	if e.onClose != nil {
		e.onClose()
	}
}

// closeFromPeer handles remote closure.
func (e *Endpoint) closeFromPeer() {
	if e.closed {
		return
	}
	e.closed = true
	if e.onClose != nil {
		e.onClose()
	}
}

// Registry is the rendezvous service: names under /conduit map to
// domains; the listen queue carries connection requests (Figure 5).
type Registry struct {
	hyp   *xen.Hypervisor
	store *xenstore.Store

	nextFlow int
	nextConn int
}

// NewRegistry builds the rendezvous layer over a hypervisor's store.
func NewRegistry(hyp *xen.Hypervisor) *Registry {
	return &Registry{hyp: hyp, store: hyp.Store}
}

// Listener is a registered named endpoint.
type Listener struct {
	reg    *Registry
	Name   string
	Dom    xenstore.DomID
	onConn func(*Endpoint)
	watch  *xenstore.Watch
	closed bool
}

// Register claims name for dom and watches its listen queue. The listen
// directory uses the §3.2.3 RestrictCreate extension so clients cannot
// observe or interfere with each other's connection attempts.
func (r *Registry) Register(dom xenstore.DomID, name string, onConn func(*Endpoint)) (*Listener, error) {
	st := r.store
	base := "/conduit/" + name
	if err := st.Write(dom, nil, base, fmt.Sprint(int(dom))); err != nil {
		return nil, err
	}
	for _, sub := range []string{"/listen", "/established"} {
		if err := st.Mkdir(dom, nil, base+sub); err != nil {
			return nil, err
		}
	}
	if err := st.SetPerms(dom, nil, base+"/listen", xenstore.Perms{
		Owner: dom, Others: xenstore.AccessWrite, RestrictCreate: true,
	}); err != nil {
		return nil, err
	}
	// The name itself and the established table are world-readable so
	// peers can resolve us, but only we may change them.
	for _, p := range []string{base, base + "/established"} {
		if err := st.SetPerms(dom, nil, p, xenstore.Perms{Owner: dom, Others: xenstore.AccessRead}); err != nil {
			return nil, err
		}
	}
	l := &Listener{reg: r, Name: name, Dom: dom, onConn: onConn}
	w, err := st.WatchPath(dom, base+"/listen", "conduit-listen", func(path, _ string) {
		l.checkListen(path)
	})
	if err != nil {
		return nil, err
	}
	l.watch = w
	return l, nil
}

// Close unregisters the endpoint name.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.reg.store.Unwatch(l.watch)
	_ = l.reg.store.Rm(l.Dom, nil, "/conduit/"+l.Name)
}

// checkListen inspects a listen-queue write and completes the server
// half of the rendezvous.
func (l *Listener) checkListen(path string) {
	if l.closed {
		return
	}
	st := l.reg.store
	base := "/conduit/" + l.Name + "/listen"
	if path == base || xenstore.ParentPath(path) != base {
		return // registration echo or a write below a connection key
	}
	port := xenstore.Basename(path)
	val, err := st.Read(l.Dom, nil, path)
	if err != nil || val == "" {
		return
	}
	// The connection request value carries the client's metadata:
	// "domid=<n> ring-tx=<ref> ring-rx=<ref> evtchn=<id>".
	var clientDom, ringTx, ringRx, evtchn int
	if _, err := fmt.Sscanf(val, "domid=%d ring-tx=%d ring-rx=%d evtchn=%d",
		&clientDom, &ringTx, &ringRx, &evtchn); err != nil {
		return
	}
	// Map the client's grants. Server tx = client rx and vice versa.
	pageTx, err1 := l.reg.hyp.MapGrant(xen.GrantRef(ringRx))
	pageRx, err2 := l.reg.hyp.MapGrant(xen.GrantRef(ringTx))
	ch, err3 := l.reg.hyp.LookupEventChannel(xen.ChannelID(evtchn))
	if err1 != nil || err2 != nil || err3 != nil {
		_ = st.Rm(l.Dom, nil, path)
		return
	}
	ep := &Endpoint{
		Local: l.Dom, Peer: xenstore.DomID(clientDom), Name: l.Name, Port: port,
		hyp: l.reg.hyp, tx: &ring{page: pageTx}, rx: &ring{page: pageRx}, channel: ch,
	}
	_ = ch.SetHandler(l.Dom, ep.event)

	// Record the established flow (Fig 5's /conduit/.../established and
	// /conduit/flows) in one transaction so management tools never see a
	// half-written flow.
	l.reg.nextFlow++
	flowID := l.reg.nextFlow
	tx := st.Begin(l.Dom)
	estPath := fmt.Sprintf("/conduit/%s/established/%s", l.Name, port)
	_ = st.Write(l.Dom, tx, estPath, fmt.Sprint(flowID))
	_ = st.Write(l.Dom, tx, fmt.Sprintf("/conduit/flows/%d", flowID),
		fmt.Sprintf("(established (name %s)(port %s)(client %d)(server %d))",
			l.Name, port, clientDom, int(l.Dom)))
	if err := tx.Commit(); err != nil {
		// A conflict here is harmless: flow metadata is advisory.
		_ = err
	}
	// Consume the listen entry.
	_ = st.Rm(l.Dom, nil, path)
	l.onConn(ep)
}

// Connect resolves name and establishes a vchan to its owner. The
// returned endpoint is live immediately; the server's onConn fires after
// its watch event.
func (r *Registry) Connect(dom xenstore.DomID, name string) (*Endpoint, error) {
	st := r.store
	base := "/conduit/" + name
	val, err := st.Read(dom, nil, base)
	if err != nil {
		return nil, ErrNoSuchEndpoint
	}
	var serverDom int
	if _, err := fmt.Sscanf(val, "%d", &serverDom); err != nil {
		return nil, ErrNoSuchEndpoint
	}
	// Client allocates the shared pages and the event channel.
	refTx, pageTx := r.hyp.Grant(dom)
	refRx, pageRx := r.hyp.Grant(dom)
	ch := r.hyp.BindEventChannel(dom, xenstore.DomID(serverDom))
	ep := &Endpoint{
		Local: dom, Peer: xenstore.DomID(serverDom), Name: name,
		hyp: r.hyp, tx: &ring{page: pageTx}, rx: &ring{page: pageRx}, channel: ch,
	}
	_ = ch.SetHandler(dom, ep.event)
	r.nextConn++
	port := fmt.Sprintf("conn%d", r.nextConn)
	ep.Port = port
	// Publish the request in the listen queue; the RestrictCreate perms
	// make it visible only to us and the server.
	req := fmt.Sprintf("domid=%d ring-tx=%d ring-rx=%d evtchn=%d",
		int(dom), int(refTx), int(refRx), int(ch.ID))
	if err := st.Write(dom, nil, base+"/listen/"+port, req); err != nil {
		ch.Close()
		r.hyp.EndGrant(refTx)
		r.hyp.EndGrant(refRx)
		return nil, err
	}
	return ep, nil
}

// Resolve returns the domain owning a conduit name, or an error — the
// "rendezvous facility for VMs to discover named peers".
func (r *Registry) Resolve(dom xenstore.DomID, name string) (xenstore.DomID, error) {
	val, err := r.store.Read(dom, nil, "/conduit/"+name)
	if err != nil {
		return 0, ErrNoSuchEndpoint
	}
	var d int
	if _, err := fmt.Sscanf(val, "%d", &d); err != nil {
		return 0, ErrNoSuchEndpoint
	}
	return xenstore.DomID(d), nil
}

// Names lists registered endpoint names (diagnostics).
func (r *Registry) Names() []string {
	names, err := r.store.List(xenstore.Dom0, nil, "/conduit")
	if err != nil {
		return nil
	}
	out := names[:0]
	for _, n := range names {
		if n != "flows" {
			out = append(out, n)
		}
	}
	return out
}
