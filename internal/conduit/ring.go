// Package conduit implements the paper's §3.2: vchan shared-memory
// rings between domains, plus the Plan9-like rendezvous layer that lets
// a VM connect to a *named* endpoint ("http_server") through the
// /conduit XenStore tree without knowing where the peer runs.
//
// Data travels through grant-mapped ring buffers synchronised by event
// channels — after rendezvous, XenStore is out of the picture, exactly
// as §3.2.3 requires: "established channels are zero-copy shared memory
// endpoints that no longer require any interaction with XenStore".
package conduit

import (
	"encoding/binary"
	"errors"

	"jitsu/internal/xen"
)

// Ring errors.
var (
	ErrRingClosed = errors.New("conduit: ring closed")
)

// Ring layout inside one grant page:
//
//	[0:4)   producer counter (total bytes ever written, mod 2^32)
//	[4:8)   consumer counter (total bytes ever read)
//	[8:16)  reserved
//	[16:)   data region
const (
	ringHdr  = 16
	RingSize = xen.PageSize - ringHdr
)

// ring is one unidirectional byte ring over a shared page. Producer and
// consumer each hold a *ring over the same *xen.Page — that aliasing IS
// the shared memory.
type ring struct {
	page *xen.Page
}

func (r *ring) prod() uint32     { return binary.LittleEndian.Uint32(r.page.Data[0:4]) }
func (r *ring) cons() uint32     { return binary.LittleEndian.Uint32(r.page.Data[4:8]) }
func (r *ring) setProd(v uint32) { binary.LittleEndian.PutUint32(r.page.Data[0:4], v) }
func (r *ring) setCons(v uint32) { binary.LittleEndian.PutUint32(r.page.Data[4:8], v) }

// closedFlag occupies one reserved byte: the producer sets it to signal
// end-of-stream to the consumer.
func (r *ring) closedFlag() bool { return r.page.Data[8] == 1 }
func (r *ring) setClosedFlag()   { r.page.Data[8] = 1 }

// free returns writable space.
func (r *ring) free() int { return RingSize - int(r.prod()-r.cons()) }

// used returns readable bytes.
func (r *ring) used() int { return int(r.prod() - r.cons()) }

// write copies as much of data as fits and returns the count.
func (r *ring) write(data []byte) int {
	n := r.free()
	if n > len(data) {
		n = len(data)
	}
	w := r.prod()
	for i := 0; i < n; i++ {
		r.page.Data[ringHdr+int(w+uint32(i))%RingSize] = data[i]
	}
	r.setProd(w + uint32(n))
	return n
}

// read drains up to max bytes (all, if max < 0).
func (r *ring) read(max int) []byte {
	n := r.used()
	if max >= 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	c := r.cons()
	for i := 0; i < n; i++ {
		out[i] = r.page.Data[ringHdr+int(c+uint32(i))%RingSize]
	}
	r.setCons(c + uint32(n))
	return out
}
