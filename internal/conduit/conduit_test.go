package conduit

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"jitsu/internal/sim"
	"jitsu/internal/xen"
	"jitsu/internal/xenstore"
)

func newRig() (*sim.Engine, *xen.Hypervisor, *Registry) {
	eng := sim.New(11)
	st := xenstore.NewStore(xenstore.JitsuReconciler{})
	hyp := xen.NewHypervisor(eng, st, xen.CubieboardARM(), 1024)
	return eng, hyp, NewRegistry(hyp)
}

func TestRingReadWrite(t *testing.T) {
	pg := &xen.Page{}
	r := &ring{page: pg}
	if r.used() != 0 || r.free() != RingSize {
		t.Fatal("fresh ring not empty")
	}
	n := r.write([]byte("hello"))
	if n != 5 || r.used() != 5 {
		t.Fatalf("write n=%d used=%d", n, r.used())
	}
	if got := r.read(-1); string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if r.used() != 0 {
		t.Fatal("ring not drained")
	}
}

func TestRingWraparound(t *testing.T) {
	pg := &xen.Page{}
	r := &ring{page: pg}
	chunk := make([]byte, RingSize/2+100)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	// Fill, drain, fill again: the second fill wraps the index.
	for round := 0; round < 3; round++ {
		if n := r.write(chunk); n != len(chunk) {
			t.Fatalf("round %d: wrote %d", round, n)
		}
		got := r.read(-1)
		if !bytes.Equal(got, chunk) {
			t.Fatalf("round %d: wraparound corrupted data", round)
		}
	}
}

func TestRingFullPartialWrite(t *testing.T) {
	pg := &xen.Page{}
	r := &ring{page: pg}
	big := make([]byte, RingSize+500)
	n := r.write(big)
	if n != RingSize {
		t.Fatalf("wrote %d, want %d", n, RingSize)
	}
	if r.write([]byte("x")) != 0 {
		t.Fatal("wrote into a full ring")
	}
	r.read(100)
	if r.write([]byte("x")) != 1 {
		t.Fatal("space not reclaimed after read")
	}
}

// Property: any sequence of interleaved writes and reads preserves the
// byte stream (FIFO, no loss, no reordering).
func TestRingStreamProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		pg := &xen.Page{}
		r := &ring{page: pg}
		var want, got []byte
		pending := []byte{}
		for _, c := range chunks {
			if len(c) > 600 {
				c = c[:600]
			}
			want = append(want, c...)
			pending = append(pending, c...)
			n := r.write(pending)
			pending = pending[n:]
			got = append(got, r.read(-1)...)
		}
		got = append(got, r.read(-1)...)
		// Anything still pending never entered the ring.
		want = want[:len(want)-len(pending)]
		return bytes.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousAndEcho(t *testing.T) {
	eng, _, reg := newRig()
	// Server (dom 3) registers http_server and echoes upper-cased data.
	var serverEP *Endpoint
	_, err := reg.Register(3, "http_server", func(ep *Endpoint) {
		serverEP = ep
		ep.OnData(func(b []byte) {
			ep.Write(bytes.ToUpper(b))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Client (dom 7) connects and sends.
	ep, err := reg.Connect(7, "http_server")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	ep.OnData(func(b []byte) { got = append(got, b...) })
	ep.Write([]byte("hello conduit"))
	eng.Run()
	if string(got) != "HELLO CONDUIT" {
		t.Fatalf("echo = %q", got)
	}
	if serverEP == nil || serverEP.Peer != 7 || ep.Peer != 3 {
		t.Fatalf("peer ids: server=%+v client=%+v", serverEP, ep)
	}
	if ep.Port != serverEP.Port {
		t.Fatalf("port mismatch %q vs %q", ep.Port, serverEP.Port)
	}
}

func TestXenStoreLayoutMatchesFigure5(t *testing.T) {
	eng, hyp, reg := newRig()
	reg.Register(3, "http_server", func(ep *Endpoint) { ep.OnData(func([]byte) {}) })
	ep, err := reg.Connect(7, "http_server")
	if err != nil {
		t.Fatal(err)
	}
	ep.Write([]byte("x"))
	eng.Run()
	st := hyp.Store
	// Name registration.
	if v, _ := st.Read(xenstore.Dom0, nil, "/conduit/http_server"); v != "3" {
		t.Fatalf("/conduit/http_server = %q", v)
	}
	// Established connection recorded.
	est, err := st.List(xenstore.Dom0, nil, "/conduit/http_server/established")
	if err != nil || len(est) != 1 {
		t.Fatalf("established = %v, %v", est, err)
	}
	// Flow metadata present and s-expression shaped.
	flows, _ := st.List(xenstore.Dom0, nil, "/conduit/flows")
	if len(flows) != 1 {
		t.Fatalf("flows = %v", flows)
	}
	fv, _ := st.Read(xenstore.Dom0, nil, "/conduit/flows/"+flows[0])
	if !strings.Contains(fv, "(established") || !strings.Contains(fv, "(client 7)") {
		t.Fatalf("flow metadata = %q", fv)
	}
	// The listen entry was consumed.
	listen, _ := st.List(xenstore.Dom0, nil, "/conduit/http_server/listen")
	if len(listen) != 0 {
		t.Fatalf("listen queue not drained: %v", listen)
	}
}

func TestThirdPartyCannotSeeListenEntries(t *testing.T) {
	// §3.2.3's security property, end to end: while a connection request
	// is in flight, only the server and the client can read it.
	eng, hyp, reg := newRig()
	st := hyp.Store
	reg.Register(3, "secret_svc", func(ep *Endpoint) { ep.OnData(func([]byte) {}) })
	// Intercept: write a listen entry manually as dom 7 (client side of
	// Connect) and check dom 9 cannot read it before the server consumes
	// it. We must check before the watch fires, so write without Connect.
	if err := st.Write(7, nil, "/conduit/secret_svc/listen/conn99", "domid=7 ring-tx=0 ring-rx=0 evtchn=0"); err != nil {
		t.Fatal(err)
	}
	// The server's watch fired synchronously and may have removed it
	// (invalid refs) — write again with the watch disabled by reading
	// the permission state directly instead.
	st.Write(7, nil, "/conduit/secret_svc/listen/conn98", "probe")
	if _, err := st.Read(9, nil, "/conduit/secret_svc/listen/conn98"); !errors.Is(err, xenstore.ErrPerm) && !errors.Is(err, xenstore.ErrNotFound) {
		t.Fatalf("third party read = %v, want EACCES/ENOENT", err)
	}
	eng.Run()
}

func TestLargeTransferThroughRing(t *testing.T) {
	// 64 KiB through a 4 KiB ring: exercises backpressure + credits.
	eng, _, reg := newRig()
	var received []byte
	reg.Register(3, "bulk", func(ep *Endpoint) {
		ep.OnData(func(b []byte) { received = append(received, b...) })
	})
	ep, err := reg.Connect(7, "bulk")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	ep.Write(payload)
	eng.Run()
	if !bytes.Equal(received, payload) {
		t.Fatalf("bulk transfer corrupted: %d/%d bytes", len(received), len(payload))
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	eng, _, reg := newRig()
	var atServer, atClient []byte
	reg.Register(3, "duplex", func(ep *Endpoint) {
		ep.OnData(func(b []byte) { atServer = append(atServer, b...) })
		ep.Write([]byte("from-server"))
	})
	ep, _ := reg.Connect(7, "duplex")
	ep.OnData(func(b []byte) { atClient = append(atClient, b...) })
	ep.Write([]byte("from-client"))
	eng.Run()
	if string(atServer) != "from-client" || string(atClient) != "from-server" {
		t.Fatalf("duplex: server=%q client=%q", atServer, atClient)
	}
}

func TestCloseSignalsPeer(t *testing.T) {
	eng, _, reg := newRig()
	serverClosed := false
	var serverEP *Endpoint
	reg.Register(3, "closing", func(ep *Endpoint) {
		serverEP = ep
		ep.OnData(func([]byte) {})
		ep.OnClose(func() { serverClosed = true })
	})
	ep, _ := reg.Connect(7, "closing")
	ep.Write([]byte("last words"))
	eng.Run()
	ep.Close()
	eng.Run()
	if !serverClosed {
		t.Fatal("peer did not observe close")
	}
	if err := ep.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
	// Data sent before close arrived first.
	if serverEP.BytesIn != uint64(len("last words")) {
		t.Fatalf("bytes in = %d", serverEP.BytesIn)
	}
}

func TestConnectUnknownName(t *testing.T) {
	_, _, reg := newRig()
	if _, err := reg.Connect(7, "nonexistent"); !errors.Is(err, ErrNoSuchEndpoint) {
		t.Fatalf("err = %v", err)
	}
	if _, err := reg.Resolve(7, "nonexistent"); !errors.Is(err, ErrNoSuchEndpoint) {
		t.Fatalf("resolve err = %v", err)
	}
}

func TestResolveAndNames(t *testing.T) {
	eng, _, reg := newRig()
	reg.Register(3, "http_server", func(*Endpoint) {})
	reg.Register(5, "jitsud", func(*Endpoint) {})
	eng.Run()
	d, err := reg.Resolve(7, "jitsud")
	if err != nil || d != 5 {
		t.Fatalf("resolve = %v, %v", d, err)
	}
	names := reg.Names()
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
}

func TestMultipleClientsOneServer(t *testing.T) {
	eng, _, reg := newRig()
	conns := 0
	reg.Register(3, "popular", func(ep *Endpoint) {
		conns++
		ep.OnData(func(b []byte) { ep.Write(b) })
	})
	var replies [][]byte
	for i := 0; i < 5; i++ {
		ep, err := reg.Connect(xenstore.DomID(10+i), "popular")
		if err != nil {
			t.Fatal(err)
		}
		idx := len(replies)
		replies = append(replies, nil)
		ep.OnData(func(b []byte) { replies[idx] = append(replies[idx], b...) })
		ep.Write([]byte{byte('a' + i)})
	}
	eng.Run()
	if conns != 5 {
		t.Fatalf("server accepted %d conns", conns)
	}
	for i, r := range replies {
		if len(r) != 1 || r[0] != byte('a'+i) {
			t.Fatalf("client %d echo = %q", i, r)
		}
	}
}
