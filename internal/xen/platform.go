// Package xen simulates the Xen hypervisor control plane that Jitsu
// re-architects: domains and their lifecycle, the domain builder, grant
// tables, event channels, virtual devices and the toolstack that
// sequences them (§3.1 of the paper).
//
// Latency calibration. The per-step costs below are fitted to the
// numbers reported in the paper so that Figure 4 reproduces:
//
//   - "a 256MB domain taking a full second to create, and a 16MB domain
//     ... still taking a significant 650ms"               (vanilla ARM)
//   - "rewriting the networking hotplug scripts to use ... dash ...
//     reduces boot time to 300ms"
//   - "invoking ioctl calls directly rather than running shell scripts
//     further reduces boot time to 200ms"
//   - "parallelise vif setup and asynchronously attach the console give
//     the end result of 120ms to boot on ARM"
//   - "the most optimised VM creation time was just 20ms on x86 —
//     around 6 times faster than the lower powered ARM board"
package xen

import (
	"time"

	"jitsu/internal/sim"
)

// HotplugMechanism selects how the vif hotplug step is executed — the
// single biggest lever in Figure 4.
type HotplugMechanism int

const (
	// HotplugBash is the stock Xen 4.4 hotplug path: a forked bash
	// interpreting the distribution's shell scripts.
	HotplugBash HotplugMechanism = iota
	// HotplugDash replaces bash with the minimal dash interpreter.
	HotplugDash
	// HotplugIoctl eliminates the fork entirely: the toolstack issues
	// the bridge ioctls in-process (and, per §4, removes shell scripts
	// from the security-critical toolstack altogether).
	HotplugIoctl
)

func (h HotplugMechanism) String() string {
	switch h {
	case HotplugBash:
		return "bash"
	case HotplugDash:
		return "dash"
	default:
		return "ioctl"
	}
}

// Arch is the CPU architecture of a platform profile.
type Arch string

// Supported architectures.
const (
	ARM   Arch = "arm32"
	X8664 Arch = "x86_64"
)

// Platform captures the per-board cost model. All durations are means;
// the builder adds log-normal jitter so distributions, not just means,
// match the figures.
type Platform struct {
	Name string
	Arch Arch

	// Cores bounds CPU parallelism; concurrent control-plane work is
	// scaled by the processor-sharing factor in CPU.
	Cores int

	// MemZeroPerMiB is the domain builder's dominant cost: initialising
	// and zeroing guest pages.
	MemZeroPerMiB sim.Duration
	// BaseBuild is the irreducible hypercall + bookkeeping work of the
	// domain builder at zero memory.
	BaseBuild sim.Duration
	// ImageLoadPerMiB is the cost of copying the kernel image into the
	// new domain.
	ImageLoadPerMiB sim.Duration
	// ConsoleAttach is the cost of synchronously attaching the console
	// to xenconsoled (eliminated by the "remove primary console" stage).
	ConsoleAttach sim.Duration
	// SerialAttachPenalty is the extra latency of running the vif chain
	// strictly after the domain build instead of in parallel with it.
	SerialAttachPenalty sim.Duration
	// HotplugCost is the vif hotplug cost per mechanism.
	HotplugCost map[HotplugMechanism]sim.Duration
	// VifCreate is the backend vif-device creation cost (always paid).
	VifCreate sim.Duration
	// XSOpCost is the per-operation round-trip cost of a XenStore RPC
	// against the in-memory OCaml/Jitsu daemons (socket hop + daemon
	// processing). Conflicted transactions re-pay this for every op —
	// the "cancel and retry a large set of domain building RPCs" cost
	// that makes Figure 3 blow up.
	XSOpCost sim.Duration
	// XSOpCostC is the per-operation cost for the C daemon, whose
	// transactions additionally hit the filesystem.
	XSOpCostC sim.Duration
	// Jitter is the multiplicative log-normal sigma applied to step
	// costs (0 disables jitter).
	Jitter float64

	// UnikernelBoot is the guest-side boot cost of a MirageOS unikernel
	// after domain construction: assembler bring-up, C bindings, OCaml
	// runtime start, netfront attach. ~180ms on ARM so that cold start
	// lands in the paper's 300–350ms band; ~8ms on x86.
	UnikernelBoot sim.Duration
	// LinuxBoot is the guest-side boot cost of a full Linux VM
	// ("over 5s with the default distribution image", §4).
	LinuxBoot sim.Duration
}

// CubieboardARM is the Cubieboard2 profile used for every ARM number in
// the paper.
func CubieboardARM() *Platform {
	return &Platform{
		Name:                "cubieboard2",
		Arch:                ARM,
		Cores:               2,
		MemZeroPerMiB:       1350 * time.Microsecond, // 256MiB ≈ 346ms of zeroing
		BaseBuild:           60 * time.Millisecond,
		ImageLoadPerMiB:     8 * time.Millisecond,
		ConsoleAttach:       40 * time.Millisecond,
		SerialAttachPenalty: 40 * time.Millisecond,
		HotplugCost: map[HotplugMechanism]sim.Duration{
			HotplugBash:  450 * time.Millisecond,
			HotplugDash:  100 * time.Millisecond,
			HotplugIoctl: 0,
		},
		VifCreate:     18 * time.Millisecond,
		XSOpCost:      600 * time.Microsecond,
		XSOpCostC:     1300 * time.Microsecond,
		Jitter:        0.06,
		UnikernelBoot: 180 * time.Millisecond,
		LinuxBoot:     5 * time.Second,
	}
}

// AMDx86 is the 2.4GHz quad-core AMD server used for the x86 comparison;
// per §3.1 everything is about 6x faster.
func AMDx86() *Platform {
	const f = 6.0
	arm := CubieboardARM()
	return &Platform{
		Name:                "amd-x86_64",
		Arch:                X8664,
		Cores:               4,
		MemZeroPerMiB:       scale(arm.MemZeroPerMiB, f),
		BaseBuild:           scale(arm.BaseBuild, f),
		ImageLoadPerMiB:     scale(arm.ImageLoadPerMiB, f),
		ConsoleAttach:       scale(arm.ConsoleAttach, f),
		SerialAttachPenalty: scale(arm.SerialAttachPenalty, f),
		HotplugCost: map[HotplugMechanism]sim.Duration{
			HotplugBash:  scale(arm.HotplugCost[HotplugBash], f),
			HotplugDash:  scale(arm.HotplugCost[HotplugDash], f),
			HotplugIoctl: 0,
		},
		VifCreate:     scale(arm.VifCreate, f),
		XSOpCost:      scale(arm.XSOpCost, f),
		XSOpCostC:     scale(arm.XSOpCostC, f),
		Jitter:        0.06,
		UnikernelBoot: scale(arm.UnikernelBoot, 22), // ≈8ms: x86 "20–30ms response" incl. build
		LinuxBoot:     scale(arm.LinuxBoot, f),
	}
}

func scale(d sim.Duration, f float64) sim.Duration {
	return sim.Duration(float64(d) / f)
}
