package xen

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jitsu/internal/sim"
	"jitsu/internal/xenstore"
)

func newHost(rec xenstore.Reconciler, p *Platform) (*sim.Engine, *Hypervisor) {
	eng := sim.New(42)
	st := xenstore.NewStore(rec)
	return eng, NewHypervisor(eng, st, p, 1024)
}

// buildOne creates one 16MiB unikernel domain and returns the elapsed
// virtual build time.
func buildOne(t *testing.T, ts *Toolstack, name string) sim.Duration {
	t.Helper()
	eng := ts.Hypervisor().Eng
	start := eng.Now()
	var elapsed sim.Duration
	var buildErr error
	done := false
	ts.CreateDomain(DomainConfig{Name: name, Kind: GuestUnikernel, MemMiB: 16, ImageMiB: 1},
		func(d *Domain, err error) {
			done, buildErr, elapsed = true, err, eng.Now()-start
		})
	eng.Run()
	if !done {
		t.Fatal("CreateDomain never completed")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return elapsed
}

func within(d, lo, hi sim.Duration) bool { return d >= lo && d <= hi }

// TestFig4Calibration checks each toolstack variant hits the paper's
// reported ballpark at 16MiB on ARM (jitter gives ±15%).
func TestFig4Calibration(t *testing.T) {
	cases := []struct {
		name   string
		opts   ToolstackOpts
		lo, hi time.Duration
	}{
		{"vanilla-bash", ToolstackOpts{Hotplug: HotplugBash, Console: true}, 520 * time.Millisecond, 800 * time.Millisecond},
		{"dash", ToolstackOpts{Hotplug: HotplugDash, Console: true}, 240 * time.Millisecond, 380 * time.Millisecond},
		{"ioctl", ToolstackOpts{Hotplug: HotplugIoctl, Console: true}, 160 * time.Millisecond, 250 * time.Millisecond},
		{"parallel", ToolstackOpts{Hotplug: HotplugIoctl, ParallelAttach: true, Console: true}, 120 * time.Millisecond, 210 * time.Millisecond},
		{"no-console", OptimisedOpts(), 90 * time.Millisecond, 160 * time.Millisecond},
	}
	var prev time.Duration
	for i, c := range cases {
		_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
		ts := NewToolstack(hyp, c.opts)
		got := buildOne(t, ts, "vm")
		if !within(got, c.lo, c.hi) {
			t.Errorf("%s: build = %v, want [%v, %v]", c.name, got, c.lo, c.hi)
		}
		if i > 0 && got >= prev {
			t.Errorf("%s: optimisation did not reduce build time (%v >= %v)", c.name, got, prev)
		}
		prev = got
	}
}

func TestFig4X86SixTimesFaster(t *testing.T) {
	_, hypARM := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	arm := buildOne(t, NewToolstack(hypARM, OptimisedOpts()), "vm")
	_, hypX86 := newHost(xenstore.JitsuReconciler{}, AMDx86())
	x86 := buildOne(t, NewToolstack(hypX86, OptimisedOpts()), "vm")
	ratio := float64(arm) / float64(x86)
	if ratio < 4 || ratio > 9 {
		t.Errorf("ARM/x86 build ratio = %.1f, want ~6 (arm=%v x86=%v)", ratio, arm, x86)
	}
	if x86 > 40*time.Millisecond {
		t.Errorf("x86 optimised build = %v, want ~20ms", x86)
	}
}

func TestBuildTimeGrowsWithMemory(t *testing.T) {
	var prev sim.Duration
	for i, mem := range []int{16, 64, 256} {
		_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
		hyp.TotalMemMiB = 2048
		ts := NewToolstack(hyp, VanillaOpts())
		eng := hyp.Eng
		start := eng.Now()
		var elapsed sim.Duration
		ts.CreateDomain(DomainConfig{Name: "vm", MemMiB: mem, ImageMiB: 1},
			func(d *Domain, err error) {
				if err != nil {
					t.Fatal(err)
				}
				elapsed = eng.Now() - start
			})
		eng.Run()
		if i > 0 && elapsed <= prev {
			t.Errorf("mem=%d: build %v not slower than smaller domain %v", mem, elapsed, prev)
		}
		prev = elapsed
	}
	// Vanilla 256MiB should be around a second (paper: "a full second").
	if !within(prev, 800*time.Millisecond, 1300*time.Millisecond) {
		t.Errorf("vanilla 256MiB build = %v, want ≈1s", prev)
	}
}

func TestDomainLifecycle(t *testing.T) {
	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	ts := NewToolstack(hyp, OptimisedOpts())
	eng := hyp.Eng

	var dom *Domain
	ts.CreateDomain(DomainConfig{Name: "web", MemMiB: 16, ImageMiB: 1}, func(d *Domain, err error) {
		if err != nil {
			t.Fatal(err)
		}
		dom = d
	})
	eng.Run()
	if dom == nil || dom.State != StateRunning {
		t.Fatalf("domain = %+v", dom)
	}
	if hyp.DomainByName("web") != dom {
		t.Fatal("DomainByName lookup failed")
	}
	if hyp.FreeMemMiB() != 1024-16 {
		t.Fatalf("free mem = %d", hyp.FreeMemMiB())
	}
	// The XenStore records exist.
	for _, p := range []string{
		dom.XSPath() + "/name",
		fmt.Sprintf("/local/domain/0/backend/vif/%d/0/state", int(dom.ID)),
	} {
		if ok, _ := hyp.Store.Exists(Dom0, nil, p); !ok {
			t.Errorf("missing xenstore record %s", p)
		}
	}

	destroyed := false
	ts.DestroyDomain(dom.ID, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		destroyed = true
	})
	eng.Run()
	if !destroyed {
		t.Fatal("destroy never completed")
	}
	if hyp.FreeMemMiB() != 1024 {
		t.Fatalf("memory not released: %d", hyp.FreeMemMiB())
	}
	if ok, _ := hyp.Store.Exists(Dom0, nil, dom.XSPath()); ok {
		t.Error("xenstore records not cleaned up")
	}
	if _, err := hyp.Domain(dom.ID); !errors.Is(err, ErrNoSuchDomain) {
		t.Error("domain still registered")
	}
}

func TestCreateDomainOutOfMemory(t *testing.T) {
	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	hyp.TotalMemMiB = 32
	ts := NewToolstack(hyp, OptimisedOpts())
	var gotErr error
	ts.CreateDomain(DomainConfig{Name: "big", MemMiB: 64, ImageMiB: 1}, func(d *Domain, err error) {
		gotErr = err
	})
	hyp.Eng.Run()
	if !errors.Is(gotErr, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", gotErr)
	}
}

func TestCreateDomainDuplicateName(t *testing.T) {
	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	ts := NewToolstack(hyp, OptimisedOpts())
	ts.CreateDomain(DomainConfig{Name: "dup", MemMiB: 16, ImageMiB: 1}, func(*Domain, error) {})
	hyp.Eng.Run()
	var gotErr error
	ts.CreateDomain(DomainConfig{Name: "dup", MemMiB: 16, ImageMiB: 1}, func(d *Domain, err error) {
		gotErr = err
	})
	hyp.Eng.Run()
	if !errors.Is(gotErr, ErrAlreadyExists) {
		t.Fatalf("err = %v, want ErrAlreadyExists", gotErr)
	}
}

func TestParallelBuildsContendOnCPU(t *testing.T) {
	// Building N domains at once on a 2-core board must take longer per
	// domain than building one, but far less than N× serial.
	single := func() sim.Duration {
		_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
		ts := NewToolstack(hyp, OptimisedOpts())
		return buildOne(t, ts, "vm")
	}()

	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	hyp.TotalMemMiB = 4096
	ts := NewToolstack(hyp, OptimisedOpts())
	eng := hyp.Eng
	const n = 8
	doneCount := 0
	start := eng.Now()
	for i := 0; i < n; i++ {
		ts.CreateDomain(DomainConfig{Name: fmt.Sprintf("vm%d", i), MemMiB: 16, ImageMiB: 1},
			func(d *Domain, err error) {
				if err != nil {
					t.Errorf("parallel build: %v", err)
				}
				doneCount++
			})
	}
	eng.Run()
	total := eng.Now() - start
	if doneCount != n {
		t.Fatalf("completed %d/%d", doneCount, n)
	}
	if total <= single {
		t.Errorf("8 parallel builds (%v) not slower than 1 build (%v)", total, single)
	}
	if total >= sim.Duration(n)*single {
		t.Errorf("8 parallel builds (%v) slower than fully serial (%v)", total, sim.Duration(n)*single)
	}
}

func TestTxRetriesByReconciler(t *testing.T) {
	// Parallel creates under the C reconciler must retry transactions;
	// under Jitsu they must not.
	run := func(rec xenstore.Reconciler) uint64 {
		_, hyp := newHost(rec, CubieboardARM())
		hyp.TotalMemMiB = 4096
		ts := NewToolstack(hyp, OptimisedOpts())
		for i := 0; i < 12; i++ {
			ts.CreateDomain(DomainConfig{Name: fmt.Sprintf("vm%d", i), MemMiB: 16, ImageMiB: 1},
				func(d *Domain, err error) {
					if err != nil {
						t.Errorf("%T: %v", rec, err)
					}
				})
		}
		hyp.Eng.Run()
		return ts.TxRetries
	}
	cRetries := run(xenstore.CReconciler{})
	jRetries := run(xenstore.JitsuReconciler{})
	if cRetries == 0 {
		t.Error("C reconciler produced no retries under parallel builds")
	}
	if jRetries > cRetries/2 {
		t.Errorf("Jitsu retries (%d) not much lower than C (%d)", jRetries, cRetries)
	}
}

func TestPrecreatedPoolFastClaim(t *testing.T) {
	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	opts := OptimisedOpts()
	opts.PrecreatePool = 2
	opts.PoolMemMiB = 16
	ts := NewToolstack(hyp, opts)
	hyp.Eng.Run() // let pool refills finish
	if ts.PoolSize() != 2 {
		t.Fatalf("pool size = %d", ts.PoolSize())
	}
	memBefore := hyp.FreeMemMiB()
	claim := buildOne(t, ts, "svc")
	// Claim must be far faster than a cold build (~120ms): image load only.
	if claim > 30*time.Millisecond {
		t.Errorf("pooled claim took %v, want ≈10ms", claim)
	}
	// The pool refilled itself, so free memory shrank by one more domain.
	if hyp.FreeMemMiB() >= memBefore {
		t.Error("pool refill did not reserve memory (the cost the paper avoids)")
	}
}

func TestEventChannels(t *testing.T) {
	eng, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	ch := hyp.BindEventChannel(3, 7)
	got := 0
	if err := ch.SetHandler(7, func() { got++ }); err != nil {
		t.Fatal(err)
	}
	if err := ch.Notify(3); err != nil {
		t.Fatal(err)
	}
	// Coalescing: a second notify before delivery folds into one upcall.
	if err := ch.Notify(3); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1 (coalesced)", got)
	}
	ch.Notify(3)
	eng.Run()
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2", got)
	}
	// Wrong domain.
	if err := ch.Notify(99); !errors.Is(err, ErrBadChannel) {
		t.Fatalf("notify from stranger = %v", err)
	}
	// Lookup by id from the peer side.
	peer, err := hyp.LookupEventChannel(ch.ID)
	if err != nil {
		t.Fatal(err)
	}
	peerGot := 0
	peer.SetHandler(3, func() { peerGot++ })
	peer.Notify(7)
	eng.Run()
	if peerGot != 1 {
		t.Fatalf("peer deliveries = %d", peerGot)
	}
	ch.Close()
	if err := ch.Notify(3); !errors.Is(err, ErrBadChannel) {
		t.Fatalf("notify after close = %v", err)
	}
}

func TestGrantTable(t *testing.T) {
	_, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	ref, pg := hyp.Grant(3)
	pg.Data[0] = 0xAB
	mapped, err := hyp.MapGrant(ref)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Data[0] != 0xAB {
		t.Fatal("grant mapping does not share memory")
	}
	// Shared both ways.
	mapped.Data[1] = 0xCD
	if pg.Data[1] != 0xCD {
		t.Fatal("grant mapping not bidirectional")
	}
	hyp.EndGrant(ref)
	if _, err := hyp.MapGrant(ref); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("map after end = %v", err)
	}
}

func TestDestroyRevokesGrantsAndChannels(t *testing.T) {
	eng, hyp := newHost(xenstore.JitsuReconciler{}, CubieboardARM())
	ts := NewToolstack(hyp, OptimisedOpts())
	var dom *Domain
	ts.CreateDomain(DomainConfig{Name: "g", MemMiB: 16, ImageMiB: 1}, func(d *Domain, err error) { dom = d })
	eng.Run()
	ref, _ := hyp.Grant(dom.ID)
	ch := hyp.BindEventChannel(dom.ID, Dom0)
	ts.DestroyDomain(dom.ID, func(err error) {})
	eng.Run()
	if _, err := hyp.MapGrant(ref); err == nil {
		t.Error("grant survived domain destruction")
	}
	if _, err := hyp.LookupEventChannel(ch.ID); err == nil {
		t.Error("event channel survived domain destruction")
	}
}
