package xen

import (
	"errors"
	"fmt"
	"time"

	"jitsu/internal/sim"
	"jitsu/internal/xenstore"
)

// DomID aliases the XenStore domain identifier so the two packages share
// one identity space, as on a real host.
type DomID = xenstore.DomID

// Dom0 is the privileged control domain.
const Dom0 = xenstore.Dom0

// Errors reported by the hypervisor layer.
var (
	ErrNoSuchDomain  = errors.New("xen: no such domain")
	ErrBadGrant      = errors.New("xen: bad grant reference")
	ErrBadChannel    = errors.New("xen: bad event channel")
	ErrOutOfMemory   = errors.New("xen: insufficient host memory")
	ErrAlreadyExists = errors.New("xen: domain name already exists")
)

// DomState is a domain's lifecycle state.
type DomState int

// Lifecycle states, in the order a successful boot passes through them.
const (
	StateBuilding DomState = iota
	StatePaused
	StateRunning
	StateShutdown
	StateDead
)

func (s DomState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StatePaused:
		return "paused"
	case StateRunning:
		return "running"
	case StateShutdown:
		return "shutdown"
	default:
		return "dead"
	}
}

// GuestKind distinguishes the two guest flavours the paper compares.
type GuestKind int

// Guest kinds.
const (
	GuestUnikernel GuestKind = iota
	GuestLinux
)

// Domain is one virtual machine under the hypervisor's control.
type Domain struct {
	ID      DomID
	Name    string
	Kind    GuestKind
	MemMiB  int
	State   DomState
	Created sim.Duration // virtual time the domain finished building

	hyp *Hypervisor
}

// XSPath returns the domain's XenStore subtree root.
func (d *Domain) XSPath() string { return xenstore.DomainPath(d.ID) }

// PageSize is the granularity of grant mappings.
const PageSize = 4096

// Page is one grantable machine page.
type Page struct {
	Data  [PageSize]byte
	owner DomID
}

// GrantRef names an entry in the grant table.
type GrantRef uint32

// Hypervisor owns the domains, grant tables and event channels of one
// physical host. Everything runs on the host's simulation engine.
type Hypervisor struct {
	Eng      *sim.Engine
	Store    *xenstore.Store
	Platform *Platform

	TotalMemMiB int // host RAM available to guests
	usedMemMiB  int

	domains  map[DomID]*Domain
	nextDom  DomID
	grants   map[GrantRef]*Page
	nextRef  GrantRef
	channels map[ChannelID]*eventChannel
	nextChan ChannelID

	// cpuLoad counts concurrently executing control-plane jobs for the
	// processor-sharing contention factor.
	cpuLoad int
}

// NewHypervisor boots a host: dom0 exists, the store holds the standard
// tree, no guests yet.
func NewHypervisor(eng *sim.Engine, store *xenstore.Store, p *Platform, totalMemMiB int) *Hypervisor {
	h := &Hypervisor{
		Eng:         eng,
		Store:       store,
		Platform:    p,
		TotalMemMiB: totalMemMiB,
		domains:     make(map[DomID]*Domain),
		grants:      make(map[GrantRef]*Page),
		channels:    make(map[ChannelID]*eventChannel),
		nextDom:     1,
	}
	dom0 := &Domain{ID: Dom0, Name: "Domain-0", Kind: GuestLinux, MemMiB: 256, State: StateRunning, hyp: h}
	h.domains[Dom0] = dom0
	return h
}

// Domain returns a domain by id.
func (h *Hypervisor) Domain(id DomID) (*Domain, error) {
	d, ok := h.domains[id]
	if !ok {
		return nil, ErrNoSuchDomain
	}
	return d, nil
}

// DomainByName finds a live domain by name (nil if absent).
func (h *Hypervisor) DomainByName(name string) *Domain {
	for _, d := range h.domains {
		if d.Name == name && d.State != StateDead {
			return d
		}
	}
	return nil
}

// Domains returns the number of live domains including dom0.
func (h *Hypervisor) Domains() int { return len(h.domains) }

// FreeMemMiB reports unallocated guest memory.
func (h *Hypervisor) FreeMemMiB() int { return h.TotalMemMiB - h.usedMemMiB }

// allocDomain reserves the descriptor and memory; the toolstack drives
// the rest of construction.
func (h *Hypervisor) allocDomain(name string, kind GuestKind, memMiB int) (*Domain, error) {
	if h.DomainByName(name) != nil {
		return nil, ErrAlreadyExists
	}
	if memMiB > h.FreeMemMiB() {
		return nil, ErrOutOfMemory
	}
	id := h.nextDom
	h.nextDom++
	d := &Domain{ID: id, Name: name, Kind: kind, MemMiB: memMiB, State: StateBuilding, hyp: h}
	h.domains[id] = d
	h.usedMemMiB += memMiB
	return d, nil
}

// DestroyDomain tears a domain down immediately, releasing memory,
// grants and channels. The toolstack's Destroy adds the XenStore
// cleanup transaction on top.
func (h *Hypervisor) DestroyDomain(id DomID) error {
	d, ok := h.domains[id]
	if !ok || id == Dom0 {
		return ErrNoSuchDomain
	}
	d.State = StateDead
	delete(h.domains, id)
	h.usedMemMiB -= d.MemMiB
	for ref, pg := range h.grants {
		if pg.owner == id {
			delete(h.grants, ref)
		}
	}
	for cid, ch := range h.channels {
		if ch.a == id || ch.b == id {
			delete(h.channels, cid)
		}
	}
	return nil
}

// ---- grant tables (§2.3 / §3.2.1) ----

// Grant shares a fresh page owned by dom and returns its reference for a
// peer to map. The page outlives nothing: destroying the owner revokes it.
func (h *Hypervisor) Grant(dom DomID) (GrantRef, *Page) {
	h.nextRef++
	pg := &Page{owner: dom}
	h.grants[h.nextRef] = pg
	return h.nextRef, pg
}

// MapGrant maps a granted page. In a real hypervisor this checks the
// grantee; our simulation trusts the XenStore rendezvous to have shared
// the reference only with the intended peer.
func (h *Hypervisor) MapGrant(ref GrantRef) (*Page, error) {
	pg, ok := h.grants[ref]
	if !ok {
		return nil, ErrBadGrant
	}
	return pg, nil
}

// EndGrant revokes a grant reference.
func (h *Hypervisor) EndGrant(ref GrantRef) {
	delete(h.grants, ref)
}

// ---- event channels ----

// ChannelID names an inter-domain event channel.
type ChannelID uint32

// notifyLatency is the virtual-interrupt delivery cost: a hypercall plus
// an upcall into the peer.
const notifyLatency = 5 * time.Microsecond

type eventChannel struct {
	a, b           DomID
	handlerA       func()
	handlerB       func()
	pendingA       bool
	pendingB       bool
	closed         bool
	notifiesA      uint64
	notifiesB      uint64
	deliveredTotal uint64
}

// EventChannel is a bound inter-domain notification channel, the
// synchronisation half of a vchan.
type EventChannel struct {
	ID  ChannelID
	hyp *Hypervisor
	ec  *eventChannel
}

// BindEventChannel creates a channel between two domains.
func (h *Hypervisor) BindEventChannel(a, b DomID) *EventChannel {
	h.nextChan++
	ec := &eventChannel{a: a, b: b}
	h.channels[h.nextChan] = ec
	return &EventChannel{ID: h.nextChan, hyp: h, ec: ec}
}

// LookupEventChannel rebinds an existing channel id (the peer side,
// having learned the id via XenStore).
func (h *Hypervisor) LookupEventChannel(id ChannelID) (*EventChannel, error) {
	ec, ok := h.channels[id]
	if !ok {
		return nil, ErrBadChannel
	}
	return &EventChannel{ID: id, hyp: h, ec: ec}, nil
}

// SetHandler installs dom's upcall handler.
func (c *EventChannel) SetHandler(dom DomID, fn func()) error {
	switch dom {
	case c.ec.a:
		c.ec.handlerA = fn
	case c.ec.b:
		c.ec.handlerB = fn
	default:
		return ErrBadChannel
	}
	return nil
}

// Notify signals the peer of dom. Delivery is asynchronous (one virtual
// interrupt latency) and coalescing: multiple notifies before delivery
// collapse into one upcall, as real event channels do.
func (c *EventChannel) Notify(dom DomID) error {
	ec := c.ec
	if ec.closed {
		return ErrBadChannel
	}
	var pending *bool
	var handler *func()
	switch dom {
	case ec.a:
		pending, handler = &ec.pendingB, &ec.handlerB
		ec.notifiesA++
	case ec.b:
		pending, handler = &ec.pendingA, &ec.handlerA
		ec.notifiesB++
	default:
		return ErrBadChannel
	}
	if *pending {
		return nil
	}
	*pending = true
	c.hyp.Eng.After(notifyLatency, func() {
		*pending = false
		if ec.closed {
			return
		}
		if h := *handler; h != nil {
			ec.deliveredTotal++
			h()
		}
	})
	return nil
}

// Close tears the channel down; pending deliveries are dropped.
func (c *EventChannel) Close() {
	c.ec.closed = true
	delete(c.hyp.channels, c.ID)
}

// ---- CPU contention model ----

// cpuEnter/cpuExit bracket a control-plane job; factor scales costs by
// processor sharing when more jobs than cores are runnable.
func (h *Hypervisor) cpuEnter() { h.cpuLoad++ }
func (h *Hypervisor) cpuExit() {
	if h.cpuLoad > 0 {
		h.cpuLoad--
	}
}

// cpuFactor is the current processor-sharing slowdown.
func (h *Hypervisor) cpuFactor() float64 {
	if h.cpuLoad <= h.Platform.Cores {
		return 1
	}
	return float64(h.cpuLoad) / float64(h.Platform.Cores)
}

// charge scales a mean cost by jitter and CPU contention.
func (h *Hypervisor) charge(mean sim.Duration) sim.Duration {
	d := mean
	if h.Platform.Jitter > 0 && mean > 0 {
		d = sim.LogNormal{Median: mean, Sigma: h.Platform.Jitter}.Sample(h.Eng.Rand())
	}
	return sim.Duration(float64(d) * h.cpuFactor())
}

func (h *Hypervisor) String() string {
	return fmt.Sprintf("xen[%s doms=%d free=%dMiB]", h.Platform.Name, len(h.domains), h.FreeMemMiB())
}
