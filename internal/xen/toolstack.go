package xen

import (
	"errors"
	"fmt"
	"time"

	"jitsu/internal/sim"
	"jitsu/internal/xenstore"
)

// ToolstackOpts selects which of the §3.1 optimisations are active.
// VanillaOpts is stock Xen 4.4; OptimisedOpts is the full Jitsu
// toolstack. The intermediate combinations are the lines of Figure 4.
type ToolstackOpts struct {
	// Hotplug selects the vif hotplug mechanism.
	Hotplug HotplugMechanism
	// ParallelAttach runs vif creation in parallel with the domain
	// builder instead of strictly after it.
	ParallelAttach bool
	// Console synchronously attaches the primary console; the final
	// optimisation removes it (attaching lazily after boot).
	Console bool
	// PrecreatePool keeps this many pre-built, paused domains around so
	// launch is just image load + unpause. The paper declines this
	// ("we prefer not to pay the cost of increased memory usage") but
	// we implement it for the ablation bench.
	PrecreatePool int
	// PoolMemMiB is the memory size of pre-created domains.
	PoolMemMiB int
}

// VanillaOpts is the stock Xen 4.4.0 toolstack configuration.
func VanillaOpts() ToolstackOpts {
	return ToolstackOpts{Hotplug: HotplugBash, ParallelAttach: false, Console: true}
}

// OptimisedOpts is the fully optimised Jitsu toolstack configuration.
func OptimisedOpts() ToolstackOpts {
	return ToolstackOpts{Hotplug: HotplugIoctl, ParallelAttach: true, Console: false}
}

// ErrTooManyRetries guards against a livelocked transaction loop.
var ErrTooManyRetries = errors.New("xen: xenstore transaction retried too many times")

const maxTxRetries = 100000

// Toolstack drives domain construction and destruction against the
// hypervisor and XenStore, charging virtual time per the platform cost
// model. It is the component Figure 4 measures.
type Toolstack struct {
	hyp  *Hypervisor
	opts ToolstackOpts
	pool []*Domain

	// TxRetries counts EAGAIN retries, the quantity that explodes in
	// Figure 3 under the C reconciler.
	TxRetries uint64
}

// NewToolstack creates a toolstack over hyp with the given options.
func NewToolstack(hyp *Hypervisor, opts ToolstackOpts) *Toolstack {
	ts := &Toolstack{hyp: hyp, opts: opts}
	for i := 0; i < opts.PrecreatePool; i++ {
		ts.refillPool()
	}
	return ts
}

// Hypervisor returns the hypervisor this toolstack drives.
func (ts *Toolstack) Hypervisor() *Hypervisor { return ts.hyp }

// Opts returns the active options.
func (ts *Toolstack) Opts() ToolstackOpts { return ts.opts }

// xsOpCost picks the per-operation cost for the store's daemon flavour.
func (ts *Toolstack) xsOpCost() sim.Duration {
	if _, isC := ts.hyp.Store.Reconciler().(xenstore.CReconciler); isC {
		return ts.hyp.Platform.XSOpCostC
	}
	return ts.hyp.Platform.XSOpCost
}

// runTx executes body inside a XenStore transaction, charging per-op
// time, and retries from scratch on ErrAgain exactly like libxl's
// EAGAIN loop. done receives the terminal error (nil on success).
func (ts *Toolstack) runTx(dom DomID, body func(tx *xenstore.Tx) error, done func(error)) {
	eng := ts.hyp.Eng
	attempts := 0
	var attempt func()
	attempt = func() {
		attempts++
		if attempts > maxTxRetries {
			done(ErrTooManyRetries)
			return
		}
		st := ts.hyp.Store
		before := st.Stats().Ops
		tx := st.Begin(dom)
		if err := body(tx); err != nil {
			tx.Abort()
			done(err)
			return
		}
		ops := st.Stats().Ops - before
		cost := ts.hyp.charge(sim.Duration(ops) * ts.xsOpCost())
		eng.After(cost, func() {
			err := tx.Commit()
			if errors.Is(err, xenstore.ErrAgain) {
				ts.TxRetries++
				eng.After(0, attempt)
				return
			}
			done(err)
		})
	}
	attempt()
}

// DomainConfig describes a guest to create.
type DomainConfig struct {
	Name     string
	Kind     GuestKind
	MemMiB   int
	ImageMiB float64 // kernel image size: ~1 MiB unikernel, ~20 MiB Linux
}

// CreateDomain builds a domain: allocates it, zeroes memory, loads the
// image, writes the XenStore control records, creates and plugs the vif
// backend, optionally attaches the console, and unpauses. done fires
// when the domain is running (from the toolstack's perspective — guest
// boot is the guest's problem; see internal/unikernel).
func (ts *Toolstack) CreateDomain(cfg DomainConfig, done func(*Domain, error)) {
	// Pool fast path: claim a pre-created domain.
	if len(ts.pool) > 0 {
		d := ts.pool[len(ts.pool)-1]
		ts.pool = ts.pool[:len(ts.pool)-1]
		ts.claimPooled(d, cfg, done)
		ts.refillPool()
		return
	}

	h := ts.hyp
	d, err := h.allocDomain(cfg.Name, cfg.Kind, cfg.MemMiB)
	if err != nil {
		done(nil, err)
		return
	}
	h.cpuEnter()
	finish := func(err error) {
		h.cpuExit()
		if err != nil {
			h.DestroyDomain(d.ID)
			done(nil, err)
			return
		}
		d.State = StateRunning
		d.Created = h.Eng.Now()
		h.Store.FireSpecial(xenstore.SpecialIntroduceDomain)
		done(d, nil)
	}

	buildDone, vifDone := false, !ts.opts.ParallelAttach
	var failed error
	joined := false
	join := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		if buildDone && vifDone && !joined {
			joined = true
			if failed != nil {
				finish(failed)
				return
			}
			if ts.opts.ParallelAttach {
				ts.consoleThenRun(d, finish)
			} else {
				// Serial mode: vif chain runs only now, after the build.
				ts.vifChain(d, true, func(err error) {
					if err != nil {
						finish(err)
						return
					}
					ts.consoleThenRun(d, finish)
				})
			}
		}
	}

	ts.domainBuild(d, cfg, func(err error) { buildDone = true; join(err) })
	if ts.opts.ParallelAttach {
		ts.vifChain(d, false, func(err error) { vifDone = true; join(err) })
	}
}

// domainBuild is the domain builder proper: memory init plus the
// XenStore build transaction.
func (ts *Toolstack) domainBuild(d *Domain, cfg DomainConfig, done func(error)) {
	h := ts.hyp
	p := h.Platform
	buildCost := h.charge(p.BaseBuild +
		sim.Duration(float64(p.MemZeroPerMiB)*float64(cfg.MemMiB)) +
		sim.Duration(float64(p.ImageLoadPerMiB)*cfg.ImageMiB))
	h.Eng.After(buildCost, func() {
		ts.runTx(Dom0, func(tx *xenstore.Tx) error {
			return writeBuildRecords(h.Store, tx, d)
		}, done)
	})
}

// vifChain creates the backend vif and runs the hotplug step that adds
// it to the bridge. serial adds the blocking RPC round-trip penalty the
// parallel path hides.
func (ts *Toolstack) vifChain(d *Domain, serial bool, done func(error)) {
	h := ts.hyp
	p := h.Platform
	cost := p.VifCreate + p.HotplugCost[ts.opts.Hotplug]
	if serial {
		cost += p.SerialAttachPenalty
	}
	h.Eng.After(h.charge(cost), func() {
		ts.runTx(Dom0, func(tx *xenstore.Tx) error {
			return writeVifRecords(h.Store, tx, d)
		}, done)
	})
}

// consoleThenRun optionally attaches the console, then reports success.
func (ts *Toolstack) consoleThenRun(d *Domain, done func(error)) {
	h := ts.hyp
	if !ts.opts.Console {
		done(nil)
		return
	}
	h.Eng.After(h.charge(h.Platform.ConsoleAttach), func() {
		ts.runTx(Dom0, func(tx *xenstore.Tx) error {
			return writeConsoleRecords(h.Store, tx, d)
		}, done)
	})
}

// DestroyDomain tears down a guest: XenStore cleanup transaction plus
// the hypercall work.
func (ts *Toolstack) DestroyDomain(id DomID, done func(error)) {
	h := ts.hyp
	d, err := h.Domain(id)
	if err != nil || id == Dom0 {
		done(ErrNoSuchDomain)
		return
	}
	d.State = StateShutdown
	h.cpuEnter()
	h.Eng.After(h.charge(25*time.Millisecond), func() {
		ts.runTx(Dom0, func(tx *xenstore.Tx) error {
			return removeDomainRecords(h.Store, tx, d)
		}, func(txErr error) {
			h.cpuExit()
			if txErr == nil {
				txErr = h.DestroyDomain(id)
				h.Store.FireSpecial(xenstore.SpecialReleaseDomain)
			}
			done(txErr)
		})
	})
}

// ---- pre-created domain pool (ablation) ----

func (ts *Toolstack) refillPool() {
	if ts.opts.PrecreatePool == 0 || len(ts.pool) >= ts.opts.PrecreatePool {
		return
	}
	mem := ts.opts.PoolMemMiB
	if mem == 0 {
		mem = 16
	}
	name := fmt.Sprintf("pool-%d-%d", len(ts.pool), ts.hyp.Eng.Now())
	d, err := ts.hyp.allocDomain(name, GuestUnikernel, mem)
	if err != nil {
		return // pool refill is best-effort: host may be full
	}
	d.State = StatePaused
	ts.runTx(Dom0, func(tx *xenstore.Tx) error {
		if err := writeBuildRecords(ts.hyp.Store, tx, d); err != nil {
			return err
		}
		return writeVifRecords(ts.hyp.Store, tx, d)
	}, func(error) {})
	ts.pool = append(ts.pool, d)
}

// claimPooled turns a pre-created paused domain into the requested
// guest: only the image load and unpause remain on the critical path.
func (ts *Toolstack) claimPooled(d *Domain, cfg DomainConfig, done func(*Domain, error)) {
	h := ts.hyp
	d.Name = cfg.Name
	d.Kind = cfg.Kind
	cost := h.charge(sim.Duration(float64(h.Platform.ImageLoadPerMiB)*cfg.ImageMiB) + 2*time.Millisecond)
	h.Eng.After(cost, func() {
		ts.runTx(Dom0, func(tx *xenstore.Tx) error {
			return h.Store.Write(Dom0, tx, d.XSPath()+"/name", cfg.Name)
		}, func(err error) {
			if err != nil {
				done(nil, err)
				return
			}
			d.State = StateRunning
			d.Created = h.Eng.Now()
			done(d, nil)
		})
	})
}

// PoolSize reports the number of pre-created domains standing by.
func (ts *Toolstack) PoolSize() int { return len(ts.pool) }

// ---- XenStore record sets ----
//
// These are the transactional write sets whose conflict behaviour drives
// Figure 3. Writes under the domain's own subtree are private; the
// backend entries under dom0's tree are the shared contention point.

func writeBuildRecords(st *xenstore.Store, tx *xenstore.Tx, d *Domain) error {
	base := d.XSPath()
	records := map[string]string{
		base + "/name":              d.Name,
		base + "/domid":             fmt.Sprint(int(d.ID)),
		base + "/memory/target":     fmt.Sprint(d.MemMiB * 1024),
		base + "/memory/static-max": fmt.Sprint(d.MemMiB * 1024),
		base + "/vm":                "/vm/" + d.Name,
		base + "/control/shutdown":  "",
		base + "/console/ring-ref":  "8",
		base + "/console/port":      "2",
		base + "/console/limit":     "1048576",
		base + "/console/type":      "xenconsoled",
		base + "/store/ring-ref":    "1",
		base + "/store/port":        "1",
	}
	for k, v := range records {
		if err := st.Write(Dom0, tx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func writeVifRecords(st *xenstore.Store, tx *xenstore.Tx, d *Domain) error {
	front := fmt.Sprintf("%s/device/vif/0", d.XSPath())
	back := fmt.Sprintf("/local/domain/0/backend/vif/%d/0", int(d.ID))
	records := []struct{ k, v string }{
		{front + "/backend", back},
		{front + "/backend-id", "0"},
		{front + "/mac", macFor(d.ID)},
		{front + "/state", "1"},
		{back + "/frontend", front},
		{back + "/frontend-id", fmt.Sprint(int(d.ID))},
		{back + "/mac", macFor(d.ID)},
		{back + "/bridge", "xenbr0"},
		{back + "/handle", "0"},
		{back + "/state", "4"},
	}
	for _, r := range records {
		if err := st.Write(Dom0, tx, r.k, r.v); err != nil {
			return err
		}
	}
	return nil
}

func writeConsoleRecords(st *xenstore.Store, tx *xenstore.Tx, d *Domain) error {
	base := d.XSPath() + "/console"
	for k, v := range map[string]string{
		base + "/tty":    fmt.Sprintf("/dev/pts/%d", int(d.ID)),
		base + "/state":  "4",
		base + "/output": "pty",
	} {
		if err := st.Write(Dom0, tx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func removeDomainRecords(st *xenstore.Store, tx *xenstore.Tx, d *Domain) error {
	if err := st.Rm(Dom0, tx, d.XSPath()); err != nil && !errors.Is(err, xenstore.ErrNotFound) {
		return err
	}
	back := fmt.Sprintf("/local/domain/0/backend/vif/%d", int(d.ID))
	if err := st.Rm(Dom0, tx, back); err != nil && !errors.Is(err, xenstore.ErrNotFound) {
		return err
	}
	return nil
}

// macFor derives a stable locally administered MAC for a domain's vif.
func macFor(id DomID) string {
	return fmt.Sprintf("00:16:3e:00:%02x:%02x", (int(id)>>8)&0xff, int(id)&0xff)
}
