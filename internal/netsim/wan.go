package netsim

import (
	"time"

	"jitsu/internal/sim"
)

// WAN path presets: federation management links in the paper's
// deployment stories cross real wide-area paths, not the flat
// micro-latency LAN the default bridges model. A WANProfile bundles the
// RTT/loss/throughput triple of one such path and installs it on a link
// as a symmetric impairment, so the retry, congestion-control and
// skew-rebalance machinery above is exercised against WAN-shaped
// physics while staying exactly as seeded-deterministic as a clean run.

// WANProfile characterises one wide-area path.
type WANProfile struct {
	// Name identifies the preset ("wan50ms", ...).
	Name string
	// RTT is the round-trip propagation time; each direction gets half
	// as extra one-way latency.
	RTT sim.Duration
	// Loss is the per-frame, per-direction drop probability.
	Loss float64
	// BitsPerSec throttles each direction's throughput.
	BitsPerSec float64
}

// WAN20ms is a regional path: 20ms RTT, 50 Mb/s, light loss.
func WAN20ms() WANProfile {
	return WANProfile{Name: "wan20ms", RTT: 20 * time.Millisecond, Loss: 0.0005, BitsPerSec: 50e6}
}

// WAN50ms is a continental path: 50ms RTT, 20 Mb/s, 0.1% loss.
func WAN50ms() WANProfile {
	return WANProfile{Name: "wan50ms", RTT: 50 * time.Millisecond, Loss: 0.001, BitsPerSec: 20e6}
}

// WAN100ms is an intercontinental path: 100ms RTT, 10 Mb/s, 0.2% loss.
func WAN100ms() WANProfile {
	return WANProfile{Name: "wan100ms", RTT: 100 * time.Millisecond, Loss: 0.002, BitsPerSec: 10e6}
}

// WANProfiles lists every preset, name-sorted.
func WANProfiles() []WANProfile {
	return []WANProfile{WAN100ms(), WAN20ms(), WAN50ms()}
}

// WANByName resolves a preset by its Name (ok=false when unknown).
func WANByName(name string) (WANProfile, bool) {
	for _, p := range WANProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return WANProfile{}, false
}

// Apply installs the profile on both directions of l as an impairment
// (replacing any previous one): RTT/2 extra latency, the loss rate, and
// the throughput cap per direction, each direction's RNG seeded from
// seed so two same-seed runs draw identical loss streams.
func (p WANProfile) Apply(l *Link, seed int64) {
	l.Impair(Impairment{
		Latency:    p.RTT / 2,
		Loss:       p.Loss,
		BitsPerSec: p.BitsPerSec,
	}, seed)
}
