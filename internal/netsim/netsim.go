// Package netsim simulates the layer-2 fabric of one edge network: NICs,
// point-to-point links with latency and bandwidth, and the learning
// bridge (xenbr0) that dom0 runs. The Synjitsu proxy's promiscuous tap is
// modelled as a bridge mirror port (§3.3.1).
//
// Frames are opaque byte slices; internal/netstack gives them meaning.
// Per the gopacket-inspired guidance, the fabric never copies frames on
// the fast path — receivers must treat frames as read-only.
//
// Hostile-network behaviour lives here too, strictly below the bridge:
// impairments (impair.go — seeded loss, extra latency and jitter,
// reordering, duplication, throttling, partitions) and packet capture
// (capture.go) decorate the Link between two ports, never the NICs or
// the protocol endpoints above them. Endpoints observe only the
// consequences — missing, delayed or duplicated frames — so the
// retry/backoff machinery upstream (ARP and TCP in netstack, the DNS
// client, gossip's indirect probes, migration's chunk retransmits) is
// exercised by exactly the fault model the experiments script, and a
// seeded hostile run stays as bit-reproducible as a perfect one.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"jitsu/internal/sim"
)

// MTU is the Ethernet payload limit enforced by links.
const MTU = 1500

// MaxFrame is MTU plus the Ethernet header.
const MaxFrame = MTU + 14

// ErrFrameTooBig is returned when a frame exceeds MaxFrame.
var ErrFrameTooBig = errors.New("netsim: frame exceeds MTU")

// MAC is an Ethernet address, comparable and usable as a map key.
type MAC [6]byte

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the usual colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is broadcast or multicast.
func (m MAC) IsBroadcast() bool { return m == Broadcast || m[0]&1 == 1 }

// MACFor derives a stable locally administered unicast MAC from an
// integer id, in the Xen OUI (00:16:3e) like real vifs.
func MACFor(id int) MAC {
	return MAC{0x00, 0x16, 0x3e, byte(id >> 16), byte(id >> 8), byte(id)}
}

// Handler consumes a received frame. The frame buffer is owned by the
// sender; handlers must not retain or mutate it.
type Handler func(frame []byte)

// Port is anything a link can deliver frames to.
type Port interface {
	// Deliver hands a frame to the port at the current virtual instant.
	Deliver(frame []byte)
}

// NIC is a network interface: it transmits onto whatever it is attached
// to and delivers received frames to its handler.
type NIC struct {
	Name    string
	Addr    MAC
	eng     *sim.Engine
	handler Handler
	peer    Port         // where transmitted frames go (a Link endpoint)
	txBusy  sim.Duration // serialisation: when the NIC is next free
	TxCount uint64
	RxCount uint64
	TxBytes uint64
	RxBytes uint64
	// Drops counts frames this NIC discarded instead of delivering:
	// transmits while Down or unplugged, receives while Down or with no
	// handler installed. Tx/Rx counters only ever reflect frames that
	// actually moved.
	Drops uint64
	// Down drops all traffic (guest not booted / unplugged).
	Down bool
}

// NewNIC creates an unattached NIC.
func NewNIC(eng *sim.Engine, name string, addr MAC) *NIC {
	return &NIC{Name: name, Addr: addr, eng: eng}
}

// SetHandler installs the receive callback.
func (n *NIC) SetHandler(h Handler) { n.handler = h }

// Deliver implements Port: frames arriving from the fabric.
func (n *NIC) Deliver(frame []byte) {
	if n.Down || n.handler == nil {
		n.Drops++
		return
	}
	n.RxCount++
	n.RxBytes += uint64(len(frame))
	n.handler(frame)
}

// Send transmits a frame toward the attached link. Frames are copied
// once at the sender so in-flight frames are immutable.
func (n *NIC) Send(frame []byte) error {
	return n.SendBulk(frame, len(frame))
}

// SendBulk transmits a frame that stands in for wireBytes bytes on the
// wire: the frame itself (a chunk header, typically) is what the far
// end receives, but the link charges its serialisation — and any
// throttle in the fault model — for the full wireBytes. This is how
// the bulk movers put multi-MiB checkpoint copies onto the management
// fabric without exploding a copy into thousands of MTU-sized events:
// one header datagram per chunk occupies the shared link for exactly
// as long as the chunk's bytes would, so gossip probes and delegated
// resolutions queue behind it just as they would behind the real
// burst. wireBytes below the frame length is clamped up.
func (n *NIC) SendBulk(frame []byte, wireBytes int) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	if wireBytes < len(frame) {
		wireBytes = len(frame)
	}
	if n.Down || n.peer == nil {
		n.Drops++
		return nil // cable unplugged: dropped, like real life — but counted
	}
	n.TxCount++
	n.TxBytes += uint64(wireBytes)
	buf := append([]byte(nil), frame...)
	if end, ok := n.peer.(*linkEnd); ok {
		end.deliver(buf, wireBytes)
		return nil
	}
	n.peer.Deliver(buf)
	return nil
}

// Link is a full-duplex point-to-point cable with propagation latency
// and serialisation bandwidth. It connects two Ports. Hostile-network
// behaviour (loss, jitter, reorder, duplication, partition — see
// impair.go) and packet capture (capture.go) both live here, in the
// link between the NICs, never in the endpoints.
type Link struct {
	eng     *sim.Engine
	Latency sim.Duration // one-way propagation
	// BitsPerSec is the serialisation rate; 0 means infinite.
	BitsPerSec float64
	// Stats accumulates what the fault model did (zero on clean links).
	Stats LinkStats

	aEnd, bEnd *linkEnd
}

type linkEnd struct {
	link *Link
	dst  Port
	busy sim.Duration // virtual instant the wire in this direction frees up
	// fault, when non-nil, is this direction's impairment state.
	fault *impairState
	// cap, when non-nil, records frames this direction delivers.
	cap    *Capture
	capDir string
}

// Deliver implements Port: a frame entering this end of the cable.
func (e *linkEnd) Deliver(frame []byte) { e.deliver(frame, len(frame)) }

// deliver runs one frame through serialisation, the fault model and
// delivery scheduling. wireBytes is the on-wire size the direction is
// charged for — len(frame) on the normal path, larger for bulk stand-in
// frames (NIC.SendBulk).
func (e *linkEnd) deliver(frame []byte, wireBytes int) {
	l := e.link
	delay := l.Latency
	if l.BitsPerSec > 0 {
		ser := sim.Duration(float64(wireBytes*8) / l.BitsPerSec * float64(time.Second))
		now := l.eng.Now()
		if e.busy < now {
			e.busy = now
		}
		e.busy += ser
		delay += e.busy - now
	}
	if e.fault != nil {
		extra, ok := e.deliverImpaired(frame, wireBytes, delay)
		if !ok {
			return
		}
		delay += extra
	}
	e.scheduleDelivery(frame, delay)
}

// scheduleDelivery books the frame's arrival at the far port, running
// it through the capture tap (if any) at the delivery instant.
func (e *linkEnd) scheduleDelivery(frame []byte, delay sim.Duration) {
	e.link.Stats.Delivered++
	dst := e.dst
	if e.cap != nil {
		tap, dir := e.cap, e.capDir
		e.link.eng.After(delay, func() { tap.record(dir, frame); dst.Deliver(frame) })
		return
	}
	e.link.eng.After(delay, func() { dst.Deliver(frame) })
}

// NewLink wires a and b together with the given characteristics.
// Typical values: local edge network — 180µs latency, 100Mb/s
// (Cubieboard2) or 1Gb/s (Cubietruck); intra-host virtual link — 20µs,
// effectively infinite bandwidth.
func NewLink(eng *sim.Engine, a, b Port, latency sim.Duration, bitsPerSec float64) *Link {
	l := &Link{eng: eng, Latency: latency, BitsPerSec: bitsPerSec}
	l.aEnd = &linkEnd{link: l, dst: b}
	l.bEnd = &linkEnd{link: l, dst: a}
	return l
}

// AEnd returns the port that delivers toward b (give it to a as peer).
func (l *Link) AEnd() Port { return l.aEnd }

// BEnd returns the port that delivers toward a (give it to b as peer).
func (l *Link) BEnd() Port { return l.bEnd }

// Attach wires a NIC to one end of a new link toward dst and returns the
// link. Convenience for the common NIC—bridge case.
func Attach(eng *sim.Engine, nic *NIC, dst Port, latency sim.Duration, bitsPerSec float64) *Link {
	l := NewLink(eng, nic, dst, latency, bitsPerSec)
	nic.peer = l.AEnd()
	return l
}

// Link returns the cable this NIC transmits into (nil when unplugged).
// For NICs wired by Attach or Bridge.ConnectNIC the NIC sits at the A
// end: ImpairAtoB/PartitionAtoB affect its transmit direction,
// ImpairBtoA/PartitionBtoA its receive direction.
func (n *NIC) Link() *Link {
	if e, ok := n.peer.(*linkEnd); ok {
		return e.link
	}
	return nil
}
