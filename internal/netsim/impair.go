package netsim

import (
	"math/rand"
	"time"

	"jitsu/internal/sim"
)

// Fault injection lives in the link, between the NICs — the netem
// shape: a healthy Link delivers every frame after latency +
// serialisation, an impaired Link additionally consults a per-direction
// Impairment before scheduling the delivery. Every random decision
// (loss, jitter, reorder, duplication) is drawn from a per-link RNG
// seeded by the caller and advanced in deterministic event order on the
// sim virtual clock, so a faulty run is exactly as bit-reproducible as
// a perfect one.

// Impairment describes one direction of a hostile link. The zero value
// is a perfect wire.
type Impairment struct {
	// Loss is the probability (0..1) that a frame is silently dropped.
	Loss float64
	// Latency is extra one-way propagation added to every frame.
	Latency sim.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per frame.
	Jitter sim.Duration
	// ReorderProb is the probability a frame is additionally held for
	// ReorderBy, letting frames sent after it overtake it.
	ReorderProb float64
	// ReorderBy is the hold applied to reordered frames (default 1ms).
	ReorderBy sim.Duration
	// DupProb is the probability a frame is delivered twice (the copy
	// arrives one Jitter-draw later).
	DupProb float64
	// BitsPerSec throttles the direction below the link's native rate;
	// 0 leaves the link rate alone.
	BitsPerSec float64
}

// impaired reports whether any knob is set.
func (im Impairment) impaired() bool {
	return im.Loss > 0 || im.Latency > 0 || im.Jitter > 0 ||
		im.ReorderProb > 0 || im.DupProb > 0 || im.BitsPerSec > 0
}

// LinkStats counts what an impaired link did to the traffic that
// crossed it (both directions summed).
type LinkStats struct {
	// Delivered counts frames handed to the far port.
	Delivered uint64
	// Dropped counts frames lost to Loss or a partition.
	Dropped uint64
	// Duplicated counts extra copies delivered by DupProb.
	Duplicated uint64
	// Reordered counts frames held back by ReorderProb.
	Reordered uint64
}

// impairState is one direction's fault model: the impairment, its RNG,
// its partition flag, and its throttle serialisation point.
type impairState struct {
	imp         Impairment
	rng         *rand.Rand
	partitioned bool
	busy        sim.Duration // throttle: when this direction frees up
}

// state lazily allocates the per-direction fault state.
func (e *linkEnd) state() *impairState {
	if e.fault == nil {
		e.fault = &impairState{rng: rand.New(rand.NewSource(1))}
	}
	return e.fault
}

// Impair installs imp on both directions of the link, each with its own
// RNG stream derived from seed so the two directions' draws never
// interleave. Calling Impair again replaces the model and reseeds.
func (l *Link) Impair(imp Impairment, seed int64) {
	l.ImpairAtoB(imp, seed)
	l.ImpairBtoA(imp, seed+1)
}

// ImpairAtoB installs imp on the a->b direction only (the direction
// AEnd delivers). For a NIC attached via Attach/ConnectNIC this is the
// NIC's transmit direction.
func (l *Link) ImpairAtoB(imp Impairment, seed int64) {
	s := l.aEnd.state()
	s.imp = imp
	s.rng = rand.New(rand.NewSource(seed))
}

// ImpairBtoA installs imp on the b->a direction only — a NIC's receive
// direction when the NIC sits at the A end.
func (l *Link) ImpairBtoA(imp Impairment, seed int64) {
	s := l.bEnd.state()
	s.imp = imp
	s.rng = rand.New(rand.NewSource(seed))
}

// Partition cuts both directions: every frame is dropped (and counted)
// until Heal. The impairment model underneath is preserved.
func (l *Link) Partition() {
	l.aEnd.state().partitioned = true
	l.bEnd.state().partitioned = true
}

// PartitionAtoB cuts only the a->b direction — the asymmetric failure
// where one side can hear but not be heard.
func (l *Link) PartitionAtoB() { l.aEnd.state().partitioned = true }

// PartitionBtoA cuts only the b->a direction.
func (l *Link) PartitionBtoA() { l.bEnd.state().partitioned = true }

// Heal reconnects both directions, restoring whatever impairment (if
// any) was installed before the partition.
func (l *Link) Heal() {
	if l.aEnd.fault != nil {
		l.aEnd.fault.partitioned = false
	}
	if l.bEnd.fault != nil {
		l.bEnd.fault.partitioned = false
	}
}

// Partitioned reports whether either direction is currently cut.
func (l *Link) Partitioned() bool {
	return (l.aEnd.fault != nil && l.aEnd.fault.partitioned) ||
		(l.bEnd.fault != nil && l.bEnd.fault.partitioned)
}

// deliverImpaired runs one frame through the direction's fault model
// and returns the extra delay to add on top of the link's own
// latency/serialisation, or ok=false when the frame is dropped.
// wireBytes is the on-wire size the throttle charges (len(frame)
// except for bulk stand-in frames). Duplication is handled by
// scheduling the copy directly.
func (e *linkEnd) deliverImpaired(frame []byte, wireBytes int, baseDelay sim.Duration) (extra sim.Duration, ok bool) {
	s := e.fault
	l := e.link
	if s.partitioned {
		l.Stats.Dropped++
		return 0, false
	}
	im := s.imp
	if im.Loss > 0 && s.rng.Float64() < im.Loss {
		l.Stats.Dropped++
		return 0, false
	}
	extra = im.Latency
	if im.Jitter > 0 {
		extra += sim.Duration(s.rng.Int63n(int64(im.Jitter)))
	}
	if im.BitsPerSec > 0 {
		ser := sim.Duration(float64(wireBytes*8) / im.BitsPerSec * float64(time.Second))
		now := l.eng.Now()
		if s.busy < now {
			s.busy = now
		}
		s.busy += ser
		extra += s.busy - now
	}
	if im.ReorderProb > 0 && s.rng.Float64() < im.ReorderProb {
		hold := im.ReorderBy
		if hold <= 0 {
			hold = 1 * time.Millisecond
		}
		extra += hold
		l.Stats.Reordered++
	}
	if im.DupProb > 0 && s.rng.Float64() < im.DupProb {
		var dup sim.Duration
		if im.Jitter > 0 {
			dup = sim.Duration(s.rng.Int63n(int64(im.Jitter)))
		}
		l.Stats.Duplicated++
		e.scheduleDelivery(frame, baseDelay+extra+dup)
	}
	return extra, true
}
