package netsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"jitsu/internal/sim"
)

// hostilePair wires two NICs over one direct link and returns both plus
// the link, with b counting arrivals.
func hostilePair(eng *sim.Engine, latency sim.Duration) (a, b *NIC, l *Link, got *[][]byte) {
	a = NewNIC(eng, "a", MACFor(1))
	b = NewNIC(eng, "b", MACFor(2))
	frames := &[][]byte{}
	b.SetHandler(func(f []byte) { *frames = append(*frames, append([]byte(nil), f...)) })
	l = NewLink(eng, a, b, latency, 0)
	a.peer = l.AEnd()
	return a, b, l, frames
}

func TestImpairLoss(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
	l.ImpairAtoB(Impairment{Loss: 0.3}, 42)

	const n = 2000
	for i := 0; i < n; i++ {
		eng.At(sim.Duration(i)*time.Millisecond, func() {
			a.Send(frame(b.Addr, a.Addr, "x"))
		})
	}
	eng.Run()
	if l.Stats.Dropped == 0 {
		t.Fatal("no drops at 30% loss")
	}
	if b.RxCount+l.Stats.Dropped != n {
		t.Fatalf("rx %d + dropped %d != %d", b.RxCount, l.Stats.Dropped, n)
	}
	// 30% ± a generous band.
	if l.Stats.Dropped < n/5 || l.Stats.Dropped > n/2 {
		t.Fatalf("dropped %d of %d, want ~30%%", l.Stats.Dropped, n)
	}
	if a.Drops != 0 {
		t.Fatalf("link loss charged to NIC: Drops=%d", a.Drops)
	}
}

func TestImpairLatencyAndJitter(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
	l.ImpairAtoB(Impairment{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond}, 7)

	var ats []sim.Duration
	b.SetHandler(func([]byte) { ats = append(ats, eng.Now()) })
	for i := 0; i < 50; i++ {
		eng.At(sim.Duration(i)*time.Second, func() {
			a.Send(frame(b.Addr, a.Addr, "x"))
		})
	}
	eng.Run()
	if len(ats) != 50 {
		t.Fatalf("got %d arrivals", len(ats))
	}
	var sawJitter bool
	for i, at := range ats {
		off := at - sim.Duration(i)*time.Second
		lo := 100*time.Microsecond + 5*time.Millisecond
		hi := lo + 2*time.Millisecond
		if off < lo || off >= hi {
			t.Fatalf("arrival %d offset %v outside [%v,%v)", i, off, lo, hi)
		}
		if off != lo {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter never drew a nonzero delay")
	}
}

func TestImpairDuplication(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
	l.ImpairAtoB(Impairment{DupProb: 1.0}, 3)

	for i := 0; i < 10; i++ {
		eng.At(sim.Duration(i)*time.Millisecond, func() {
			a.Send(frame(b.Addr, a.Addr, "x"))
		})
	}
	eng.Run()
	if b.RxCount != 20 {
		t.Fatalf("rx %d, want 20 (every frame duplicated)", b.RxCount)
	}
	if l.Stats.Duplicated != 10 || l.Stats.Delivered != 20 {
		t.Fatalf("stats dup=%d delivered=%d", l.Stats.Duplicated, l.Stats.Delivered)
	}
}

func TestImpairReorder(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
	// Every other frame held 10ms: with 1ms spacing, held frames are
	// overtaken by several successors.
	l.ImpairAtoB(Impairment{ReorderProb: 0.5, ReorderBy: 10 * time.Millisecond}, 11)

	var order []int
	b.SetHandler(func(f []byte) {
		order = append(order, int(f[14]))
	})
	for i := 0; i < 40; i++ {
		i := i
		eng.At(sim.Duration(i)*time.Millisecond, func() {
			f := frame(b.Addr, a.Addr, "s")
			f[14] = byte(i)
			a.Send(f)
		})
	}
	eng.Run()
	if len(order) != 40 {
		t.Fatalf("got %d arrivals", len(order))
	}
	inverted := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("no reordering observed")
	}
	if l.Stats.Reordered == 0 {
		t.Fatal("Reordered counter not incremented")
	}
}

func TestImpairThrottle(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 0)
	// 8 kb/s: a 100-byte frame (800 bits) serialises in 100ms.
	l.ImpairAtoB(Impairment{BitsPerSec: 8000}, 1)

	var ats []sim.Duration
	b.SetHandler(func([]byte) { ats = append(ats, eng.Now()) })
	payload := make([]byte, 86) // 86+14 = 100 bytes on the wire
	for i := 0; i < 3; i++ {
		eng.At(0, func() { a.Send(frame(b.Addr, a.Addr, string(payload))) })
	}
	eng.Run()
	want := []sim.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	if len(ats) != 3 {
		t.Fatalf("got %d arrivals", len(ats))
	}
	for i := range want {
		if ats[i] != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, ats[i], want[i])
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)

	eng.At(0, func() { a.Send(frame(b.Addr, a.Addr, "1")) })
	eng.At(1*time.Millisecond, func() { l.Partition() })
	eng.At(2*time.Millisecond, func() { a.Send(frame(b.Addr, a.Addr, "2")) })
	eng.At(3*time.Millisecond, func() { l.Heal() })
	eng.At(4*time.Millisecond, func() { a.Send(frame(b.Addr, a.Addr, "3")) })
	eng.Run()

	if b.RxCount != 2 {
		t.Fatalf("rx %d, want 2 (frame during partition dropped)", b.RxCount)
	}
	if l.Stats.Dropped != 1 {
		t.Fatalf("dropped %d, want 1", l.Stats.Dropped)
	}
	if l.Partitioned() {
		t.Fatal("still partitioned after Heal")
	}
}

func TestAsymmetricPartition(t *testing.T) {
	eng := sim.New(1)
	a := NewNIC(eng, "a", MACFor(1))
	b := NewNIC(eng, "b", MACFor(2))
	var aGot, bGot int
	a.SetHandler(func([]byte) { aGot++ })
	b.SetHandler(func([]byte) { bGot++ })
	l := NewLink(eng, a, b, 100*time.Microsecond, 0)
	a.peer = l.AEnd()
	b.peer = l.BEnd()

	// Cut only a->b: a is mute but not deaf.
	l.PartitionAtoB()
	eng.At(0, func() { a.Send(frame(b.Addr, a.Addr, "x")) })
	eng.At(0, func() { b.Send(frame(a.Addr, b.Addr, "y")) })
	eng.Run()
	if bGot != 0 {
		t.Fatal("a->b frame crossed a one-way partition")
	}
	if aGot != 1 {
		t.Fatal("b->a frame lost on a one-way a->b partition")
	}
}

func TestImpairedRunDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.New(99)
		a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
		l.Impair(Impairment{
			Loss: 0.1, Jitter: 500 * time.Microsecond,
			ReorderProb: 0.05, DupProb: 0.05,
		}, 1234)
		cap := NewCapture(eng, 0)
		l.Tap(cap)
		for i := 0; i < 500; i++ {
			i := i
			eng.At(sim.Duration(i)*300*time.Microsecond, func() {
				f := frame(b.Addr, a.Addr, fmt.Sprintf("frame-%03d", i))
				a.Send(f)
			})
		}
		eng.Run()
		return cap.Fingerprint(), l.Stats.Dropped
	}
	fp1, d1 := run()
	fp2, d2 := run()
	if d1 == 0 {
		t.Fatal("no drops at 10% loss")
	}
	if fp1 != fp2 || d1 != d2 {
		t.Fatalf("impaired run not deterministic: fp %x vs %x, dropped %d vs %d", fp1, fp2, d1, d2)
	}
}

func TestCaptureRecordsBothDirections(t *testing.T) {
	eng := sim.New(1)
	a := NewNIC(eng, "a", MACFor(1))
	b := NewNIC(eng, "b", MACFor(2))
	a.SetHandler(func([]byte) {})
	b.SetHandler(func([]byte) {})
	l := NewLink(eng, a, b, 250*time.Microsecond, 0)
	a.peer = l.AEnd()
	b.peer = l.BEnd()
	cap := NewCapture(eng, 0)
	l.Tap(cap)

	eng.At(0, func() { a.Send(frame(b.Addr, a.Addr, "ping")) })
	eng.At(1*time.Millisecond, func() { b.Send(frame(a.Addr, b.Addr, "pong")) })
	eng.Run()

	if len(cap.Records) != 2 {
		t.Fatalf("captured %d frames, want 2", len(cap.Records))
	}
	r0, r1 := cap.Records[0], cap.Records[1]
	if r0.Dir != "a->b" || string(r0.Frame[14:]) != "ping" || r0.At != 250*time.Microsecond {
		t.Fatalf("record 0 = %v %q at %v", r0.Dir, r0.Frame[14:], r0.At)
	}
	if r1.Dir != "b->a" || string(r1.Frame[14:]) != "pong" {
		t.Fatalf("record 1 = %v %q", r1.Dir, r1.Frame[14:])
	}
	var buf bytes.Buffer
	if err := cap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("a->b")) {
		t.Fatalf("WriteText output %q", buf.String())
	}
}

func TestCaptureDropsBeyondCap(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 0)
	cap := NewCapture(eng, 3)
	l.Tap(cap)
	for i := 0; i < 5; i++ {
		eng.At(sim.Duration(i)*time.Millisecond, func() {
			a.Send(frame(b.Addr, a.Addr, "x"))
		})
	}
	eng.Run()
	if len(cap.Records) != 3 || cap.Truncated != 2 {
		t.Fatalf("records=%d truncated=%d, want 3/2", len(cap.Records), cap.Truncated)
	}
}

func TestCapturePortDecorator(t *testing.T) {
	eng := sim.New(1)
	b := NewNIC(eng, "b", MACFor(2))
	var got int
	b.SetHandler(func([]byte) { got++ })
	cap := NewCapture(eng, 0)
	p := cap.Port("tap", b)
	p.Deliver(frame(b.Addr, MACFor(1), "via-port"))
	if got != 1 || len(cap.Records) != 1 || cap.Records[0].Dir != "tap" {
		t.Fatalf("decorator: got=%d records=%v", got, cap.Records)
	}
}

func TestCaptureSeesDuplicates(t *testing.T) {
	eng := sim.New(1)
	a, b, l, _ := hostilePair(eng, 100*time.Microsecond)
	l.ImpairAtoB(Impairment{DupProb: 1.0}, 5)
	cap := NewCapture(eng, 0)
	l.Tap(cap)
	eng.At(0, func() { a.Send(frame(b.Addr, a.Addr, "x")) })
	eng.Run()
	if len(cap.Records) != 2 {
		t.Fatalf("captured %d frames, want 2 (original + duplicate)", len(cap.Records))
	}
	if b.RxCount != 2 {
		t.Fatalf("rx %d, want 2", b.RxCount)
	}
}

func TestNICDropCounters(t *testing.T) {
	eng := sim.New(1)
	a, b, _, _ := hostilePair(eng, 100*time.Microsecond)

	// TX while down: dropped and counted, not transmitted.
	a.Down = true
	if err := a.Send(frame(b.Addr, a.Addr, "x")); err != nil {
		t.Fatal(err)
	}
	if a.TxCount != 0 || a.Drops != 1 {
		t.Fatalf("down NIC: tx=%d drops=%d, want 0/1", a.TxCount, a.Drops)
	}
	a.Down = false

	// RX while down.
	b.Down = true
	a.Send(frame(b.Addr, a.Addr, "x"))
	eng.Run()
	if b.RxCount != 0 || b.Drops != 1 {
		t.Fatalf("down RX: rx=%d drops=%d, want 0/1", b.RxCount, b.Drops)
	}
	b.Down = false

	// RX with no handler.
	b.SetHandler(nil)
	a.Send(frame(b.Addr, a.Addr, "x"))
	eng.Run()
	if b.Drops != 2 {
		t.Fatalf("no-handler RX: drops=%d, want 2", b.Drops)
	}

	// Unplugged TX.
	c := NewNIC(eng, "c", MACFor(3))
	c.Send(frame(b.Addr, c.Addr, "x"))
	if c.Drops != 1 || c.TxCount != 0 {
		t.Fatalf("unplugged: tx=%d drops=%d, want 0/1", c.TxCount, c.Drops)
	}
}

func TestNICLinkAccessor(t *testing.T) {
	eng := sim.New(1)
	a, _, l, _ := hostilePair(eng, 0)
	if a.Link() != l {
		t.Fatal("NIC.Link() did not return the attached link")
	}
	c := NewNIC(eng, "c", MACFor(3))
	if c.Link() != nil {
		t.Fatal("unplugged NIC.Link() != nil")
	}
}
