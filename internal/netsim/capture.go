package netsim

import (
	"fmt"
	"hash/fnv"
	"io"

	"jitsu/internal/sim"
)

// Packet capture is a decorator at the Port.Deliver interposition
// point: a Capture wraps the port a link delivers to (Link.Tap) or any
// other Port (Capture.Port) and records a (virtual-time, direction,
// frame) tuple for every frame that actually arrives — after loss, so
// a capture on an impaired link shows what the receiver saw, exactly
// like a pcap taken on the far NIC. Records are appended in event
// order on the virtual clock, so a seeded run's capture stream is
// bit-reproducible and feeds the determinism fingerprint gate.

// CaptureRecord is one delivered frame.
type CaptureRecord struct {
	// At is the virtual instant the frame reached the port.
	At sim.Duration
	// Dir labels the direction or tap point ("a->b", "mgmt-rx", ...).
	Dir string
	// Frame is a private copy of the frame bytes.
	Frame []byte
}

// Capture is a bounded in-memory packet recorder.
type Capture struct {
	eng *sim.Engine
	// Records holds the captured frames in arrival order.
	Records []CaptureRecord
	// Truncated counts frames not recorded because the cap was hit.
	Truncated uint64
	max       int
}

// NewCapture creates a recorder bounded to max frames (<=0 means a
// 64Ki-frame default).
func NewCapture(eng *sim.Engine, max int) *Capture {
	if max <= 0 {
		max = 1 << 16
	}
	return &Capture{eng: eng, max: max}
}

// record appends one delivered frame (copied — in-flight frames are
// owned by their sender).
func (c *Capture) record(dir string, frame []byte) {
	if len(c.Records) >= c.max {
		c.Truncated++
		return
	}
	c.Records = append(c.Records, CaptureRecord{
		At: c.eng.Now(), Dir: dir, Frame: append([]byte(nil), frame...),
	})
}

// capturePort decorates an arbitrary Port.
type capturePort struct {
	cap  *Capture
	dir  string
	next Port
}

// Deliver implements Port: record, then pass through.
func (p *capturePort) Deliver(frame []byte) {
	p.cap.record(p.dir, frame)
	p.next.Deliver(frame)
}

// Port wraps next so every Deliver is recorded under dir before being
// passed through — the generic interposition for ports that are not
// link ends (bridge ports, NICs used directly).
func (c *Capture) Port(dir string, next Port) Port {
	return &capturePort{cap: c, dir: dir, next: next}
}

// Tap records both directions of a link at their delivery instants:
// frames entering at AEnd are recorded as "a->b" when they reach the B
// port, and vice versa. Tapping an impaired link records survivors
// only — dropped frames never reach the far port, so they never reach
// the capture either.
func (l *Link) Tap(c *Capture) {
	l.aEnd.cap, l.aEnd.capDir = c, "a->b"
	l.bEnd.cap, l.bEnd.capDir = c, "b->a"
}

// Fingerprint hashes the capture stream (FNV-1a over every record's
// instant, direction and bytes, plus the truncation count). Two
// seeded runs over the same topology must produce identical values —
// the same contract experiment series and trace streams honour.
func (c *Capture) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, rec := range c.Records {
		writeU64(uint64(rec.At))
		h.Write([]byte(rec.Dir))
		writeU64(uint64(len(rec.Frame)))
		h.Write(rec.Frame)
	}
	writeU64(c.Truncated)
	return h.Sum64()
}

// WriteText dumps the capture in a tcpdump-ish text form — one line
// per frame: virtual time, direction, length, and the first bytes hex.
func (c *Capture) WriteText(w io.Writer) error {
	for _, rec := range c.Records {
		head := rec.Frame
		if len(head) > 16 {
			head = head[:16]
		}
		if _, err := fmt.Fprintf(w, "%12d %-8s len=%-5d %x\n",
			int64(rec.At), rec.Dir, len(rec.Frame), head); err != nil {
			return err
		}
	}
	return nil
}
